package experiments

import (
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pepc/internal/core"
	"pepc/internal/gtp"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/sockio"
	"pepc/internal/workload"
)

// sockioWindows is the number of independent measurement windows folded
// (by max) into each data point.
const sockioWindows = 3

// Sockio measures the syscall tax of the real-socket data plane and what
// vectorized I/O buys back (DESIGN.md §4.13): a traffic source and the
// node's event loops run as concurrent goroutines over loopback UDP —
// the deployed daemon shape, so the per-syscall baseline pays what the
// old per-packet loop really paid (one rx syscall, one tx syscall, and a
// netpoller park/unpark per datagram), while the batched path amortizes
// all three across each burst: recvmmsg into pool buffers, the batched
// demux steer, the slice pipeline, and a coalesced sendmmsg egress. The
// sweep runs 64-byte packets at burst sizes 1-64; the in-memory series
// is the no-socket ceiling both wire paths converge toward.
func Sockio(sc Scale) (Result, error) {
	batches := []int{1, 2, 4, 8, 16, 32, 64}
	total := sc.PacketsPerPoint / 4
	if total < 2048 {
		total = 2048
	}
	nUsers := sc.users(1024)

	wire := sim.Series{Name: "PEPC loopback batched"}
	legacy := sim.Series{Name: "PEPC loopback per-packet"}
	mem := sim.Series{Name: "PEPC in-memory"}
	sys := sim.Series{Name: "syscalls per packet"}
	var totalLost int

	// The per-packet baseline is the system this subsystem replaced: the
	// old serveGTPU loop (one ReadFrom per datagram into a scratch
	// buffer, allocate-and-copy into the packet pool, per-packet locked
	// steer, one WriteTo per egress packet) driven by a per-packet
	// source, the pre-burst-mode enbsim. It has no burst dependence, so
	// it is measured once and drawn as a flat reference across the sweep.
	legacyMpps, legacyLost, err := sockioLegacyRun(total, nUsers)
	if err != nil {
		return Result{}, err
	}
	totalLost += legacyLost

	for _, b := range batches {
		mppsWire, sysPerPkt, lost, err := sockioWireRun(b, total, nUsers)
		if err != nil {
			return Result{}, err
		}
		totalLost += lost
		mppsMem, err := sockioMemRun(b, total, nUsers)
		if err != nil {
			return Result{}, err
		}
		x := float64(b)
		wire.Points = append(wire.Points, sim.Point{X: x, Y: mppsWire})
		legacy.Points = append(legacy.Points, sim.Point{X: x, Y: legacyMpps})
		mem.Points = append(mem.Points, sim.Point{X: x, Y: mppsMem})
		sys.Points = append(sys.Points, sim.Point{X: x, Y: sysPerPkt})
		gcNow()
	}

	bestWire := 0.0
	for _, p := range wire.Points {
		if p.Y > bestWire {
			bestWire = p.Y
		}
	}

	// Multi-queue sweep: aggregate rate over an SO_REUSEPORT group of
	// share-nothing queue lanes at the default burst size, the -rxqueues
	// scaling axis of cmd/pepcd.
	mq := sim.Series{Name: "PEPC loopback multi-queue"}
	qmode, qsteered := "", true
	for _, q := range []int{1, 2, 4} {
		rate, m, steered, lost, err := sockioQueueRun(q, total, nUsers, sc.SockioQMode)
		if err != nil {
			return Result{}, err
		}
		totalLost += lost
		qmode = m
		if !steered {
			qsteered = false
		}
		mq.Points = append(mq.Points, sim.Point{X: float64(q), Y: rate})
		gcNow()
	}

	mode := "portable fallback: one datagram per syscall regardless of burst"
	if sockio.Batched() {
		mode = "recvmmsg/sendmmsg: one kernel crossing per burst and direction"
	}
	steerNote := "multi-queue lanes share one address via SO_REUSEPORT with cBPF flow steering (TEID mod n)"
	if !qsteered {
		steerNote = "reuseport flow steering unavailable: multi-queue lanes emulated on separate sockets"
	}
	qmodeNote := fmt.Sprintf("multi-queue %s mode: every lane's rx loop and source run concurrently (GOMAXPROCS=%d)", qmode, runtime.GOMAXPROCS(0))
	if qmode == "sum" {
		qmodeNote = "multi-queue sum mode: share-nothing lanes measured independently and added (single-CPU methodology, as Figure 7)"
	}
	notes := []string{
		"closed loop over loopback UDP: source and node event loops run concurrently (the deployed daemon shape), flow-controlled one burst in flight",
		fmt.Sprintf("each point is the fastest of %d measurement windows (shields against scheduler interference)", sockioWindows),
		"syscalls/packet counts both directions of the node socket (rx reads incl. readiness probes + egress writes)",
		"per-packet reference: the replaced loop (ReadFrom + alloc/copy + locked steer + WriteTo, per-packet source), one syscall and one wakeup per datagram per direction",
		fmt.Sprintf("batched best %.3f Mpps = %.2fx the per-packet reference (%.3f Mpps)", bestWire, bestWire/legacyMpps, legacyMpps),
		mode,
		steerNote,
		qmodeNote,
		fmt.Sprintf("multi-queue aggregate at burst %d: %.3f Mpps at 1 queue, %.3f at 4 (%.2fx)",
			sockio.DefaultBatch, mq.Points[0].Y, mq.Points[2].Y, mq.Points[2].Y/mq.Points[0].Y),
	}
	if totalLost > 0 {
		notes = append(notes, fmt.Sprintf("%d datagrams lost on loopback across the sweep (excluded from rates)", totalLost))
	}
	return Result{
		Figure: "sockio",
		Title:  "Socket I/O batching: loopback Mpps and syscall tax vs burst size",
		XLabel: "burst (datagrams/syscall)",
		YLabel: "Mpps",
		Series: []sim.Series{wire, legacy, mem, sys, mq},
		Notes:  notes,
	}, nil
}

// sockioQueueLane is one share-nothing lane of the multi-queue sweep:
// its own node-side socket (a queue of the reuseport group), its own
// slice, Receiver, WireSteer, egress Sender, and its own traffic source
// socket generating only flows steered to this lane (TEID ≡ lane mod
// queues, matching the group's cBPF program).
type sockioQueueLane struct {
	slice    *core.Slice
	node     *core.Node
	gen      *workload.TrafficGen
	nodeConn *sockio.Conn
	srcConn  *sockio.Conn
	srcAddr  netip.AddrPort
	srcSnd   *sockio.Sender
	back     []sockio.Message
	batch    int
	lost     int
	done     chan struct{}
}

// start spawns the lane's node-side event loop — the same per-queue rx +
// inline pipeline + coalesced egress shape cmd/pepcd runs — which exits
// when the lane's node socket closes.
func (l *sockioQueueLane) start(pool *pkt.Pool) {
	l.done = make(chan struct{})
	go func() {
		defer close(l.done)
		rcv := sockio.NewReceiver(l.nodeConn, pool, l.batch)
		defer rcv.Close()
		ws := l.node.NewWireSteer(l.batch, rcv.Cache())
		egSnd := sockio.NewSender(l.nodeConn, l.batch, time.Hour)
		defer egSnd.Close()
		scratch := make([]*pkt.Buf, 0, l.batch)
		proc := make([]*pkt.Buf, l.batch)
		for {
			k, err := rcv.Recv()
			if k == 0 {
				if err != nil {
					return // socket closed by the measuring side
				}
				continue
			}
			scratch = rcv.TakeAll(scratch[:0])
			ws.Steer(scratch)
			for {
				m := l.slice.Uplink.DequeueBatch(proc)
				if m == 0 {
					break
				}
				l.slice.Data().ProcessUplinkBatch(proc[:m], sim.Now())
			}
			for {
				eb, ok := l.slice.Egress.Dequeue()
				if !ok {
					break
				}
				if egSnd.Queue(eb, l.srcAddr) != nil {
					return
				}
			}
			if egSnd.Flush() != nil {
				return
			}
		}
	}()
}

// iterate offers one burst of n uplink packets from the lane's source and
// waits for the echo, returning how many completed the round trip.
func (l *sockioQueueLane) iterate(n int) (int, error) {
	for i := 0; i < n; i++ {
		if err := l.srcSnd.Queue(l.gen.NextUplink(), netip.AddrPort{}); err != nil {
			return 0, err
		}
	}
	if err := l.srcSnd.Flush(); err != nil {
		return 0, err
	}
	l.srcConn.UDPConn().SetReadDeadline(time.Now().Add(2 * time.Second))
	returned := 0
	for returned < n {
		k, err := l.srcConn.ReadBatch(l.back[:min(l.batch, n-returned)])
		if err != nil {
			l.lost += n - returned
			break
		}
		returned += k
	}
	return returned, nil
}

// measure runs the lane's closed loop for quota packets and returns how
// many completed round trips.
func (l *sockioQueueLane) measure(quota int) (int, error) {
	processed := 0
	for processed < quota {
		n := l.batch
		if rem := quota - processed; rem < n {
			n = rem
		}
		returned, err := l.iterate(n)
		if err != nil {
			return processed, err
		}
		if returned == 0 {
			return processed, fmt.Errorf("sockio: loopback burst fully lost on a queue lane")
		}
		processed += returned
	}
	return processed, nil
}

// sockioQueueSetup builds the node (one slice per queue), the socket
// group, and the per-queue lanes. When the platform provides a steered
// reuseport group, all lanes share one local address and the kernel's
// cBPF program delivers each lane's flows to its queue; otherwise the
// lanes fall back to separate sockets (steered=false), preserving the
// share-nothing shape without the shared address.
func sockioQueueSetup(queues, nUsers, batch int) ([]*sockioQueueLane, func(), bool, error) {
	cfgs := make([]core.SliceConfig, queues)
	for i := range cfgs {
		cfgs[i] = core.SliceConfig{ID: i + 1, UserHint: nUsers}
	}
	node := core.NewNode(cfgs...)
	lanes := make([]*sockioQueueLane, queues)
	for s := 0; s < queues; s++ {
		sl := node.Slice(s)
		users, err := attachPopulation(sl, nUsers, 1+uint64(s)*uint64(nUsers))
		if err != nil {
			return nil, nil, false, err
		}
		for _, u := range users {
			node.Demux().Register(u.UplinkTEID, u.UEAddr, u.IMSI, s)
		}
		// Lane s sources only flows the steering program sends to queue
		// s: sequential TEID allocation spans every residue class, so
		// the subset with TEID ≡ s (mod queues) is about 1/queues of the
		// attached population.
		lane := users[:0:0]
		for _, u := range users {
			if int(u.UplinkTEID%uint32(queues)) == s {
				lane = append(lane, u)
			}
		}
		if len(lane) == 0 {
			return nil, nil, false, fmt.Errorf("sockio: no flows with TEID residue %d of %d", s, queues)
		}
		lanes[s] = &sockioQueueLane{
			slice: sl,
			node:  node,
			batch: batch,
			gen: workload.NewTrafficGen(workload.TrafficConfig{
				ENBAddr:    pkt.IPv4Addr(192, 168, 0, 1),
				CoreAddr:   sl.Config().CoreAddr,
				UplinkSize: 64,
			}, lane),
		}
	}

	var closers []func()
	cleanup := func() {
		for _, c := range closers {
			c()
		}
	}
	group, err := sockio.ListenGroup("udp4", "127.0.0.1:0", queues)
	if err != nil {
		return nil, nil, false, fmt.Errorf("sockio: loopback unavailable: %w", err)
	}
	steered := group.Size() == queues && (queues == 1 || group.Steered())
	if steered {
		closers = append(closers, func() { group.Close() })
		for q, l := range lanes {
			l.nodeConn = group.Queue(q)
		}
	} else {
		// No steered reuseport group on this platform: one plain socket
		// per lane instead (distinct ports).
		group.Close()
		for _, l := range lanes {
			npc, err := net.ListenPacket("udp4", "127.0.0.1:0")
			if err != nil {
				cleanup()
				return nil, nil, false, fmt.Errorf("sockio: loopback unavailable: %w", err)
			}
			nc, err := sockio.NewConn(npc.(*net.UDPConn))
			if err != nil {
				npc.Close()
				cleanup()
				return nil, nil, false, err
			}
			l.nodeConn = nc
			closers = append(closers, func() { nc.Close() })
		}
	}
	for _, l := range lanes {
		euc, err := net.Dial("udp4", l.nodeConn.LocalAddrPort().String())
		if err != nil {
			cleanup()
			return nil, nil, false, err
		}
		sc, err := sockio.NewConn(euc.(*net.UDPConn))
		if err != nil {
			euc.Close()
			cleanup()
			return nil, nil, false, err
		}
		l.srcConn = sc
		l.srcAddr = euc.LocalAddr().(*net.UDPAddr).AddrPort()
		l.srcSnd = sockio.NewSender(sc, batch, time.Hour)
		l.back = make([]sockio.Message, batch)
		for i := range l.back {
			l.back[i].Buf = make([]byte, 2048)
		}
		closers = append(closers, func() { sc.Close() })
	}
	return lanes, cleanup, steered, nil
}

// sockioQueueRun measures one queue-count point of the multi-queue sweep:
// aggregate Mpps across the group's share-nothing lanes at the default
// burst size. Two aggregation modes (Scale.SockioQMode): "parallel" runs
// every lane's node loop and source concurrently and divides the total
// completed round trips by the shared wall clock; "sum" measures each
// lane alone and adds the rates — the Figure 7 single-CPU methodology,
// honest because the lanes share no mutable state beyond the wait-free
// PeerTable analog (none here) and the kernel's socket layer. ""/"auto"
// picks parallel when GOMAXPROCS can host every lane's two goroutines.
func sockioQueueRun(queues, total, nUsers int, mode string) (float64, string, bool, int, error) {
	batch := sockio.DefaultBatch
	if mode == "" || mode == "auto" {
		if runtime.GOMAXPROCS(0) >= 2*queues {
			mode = "parallel"
		} else {
			mode = "sum"
		}
	}
	lanes, cleanup, steered, err := sockioQueueSetup(queues, nUsers, batch)
	if err != nil {
		return 0, mode, false, 0, err
	}
	stopLanes := func() {
		cleanup()
		for _, l := range lanes {
			if l.done != nil {
				<-l.done
			}
		}
	}

	pool := pkt.NewPool(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	for _, l := range lanes {
		l.start(pool)
	}
	laneQuota := total / sockioWindows / queues
	if laneQuota < batch {
		laneQuota = batch
	}
	warm := laneQuota / 4
	if warm > 1024 {
		warm = 1024
	}
	for _, l := range lanes {
		if _, err := l.measure(warm); err != nil {
			stopLanes()
			return 0, mode, steered, 0, err
		}
	}
	gcNow()

	best := 0.0
	var ferr error
	if mode == "parallel" {
		for w := 0; w < sockioWindows && ferr == nil; w++ {
			var wg sync.WaitGroup
			var processed atomic.Int64
			var errMu sync.Mutex
			start := time.Now()
			for _, l := range lanes {
				wg.Add(1)
				go func(l *sockioQueueLane) {
					defer wg.Done()
					p, err := l.measure(laneQuota)
					processed.Add(int64(p))
					if err != nil {
						errMu.Lock()
						ferr = err
						errMu.Unlock()
					}
				}(l)
			}
			wg.Wait()
			if r := mpps(int(processed.Load()), time.Since(start)); r > best {
				best = r
			}
		}
	} else {
		// Sum mode: each lane measured alone (the other lanes' node
		// loops stay parked in Recv), fastest of the windows per lane,
		// rates added.
		agg := 0.0
		for _, l := range lanes {
			laneBest := 0.0
			for w := 0; w < sockioWindows && ferr == nil; w++ {
				start := time.Now()
				p, err := l.measure(laneQuota)
				if err != nil {
					ferr = err
					break
				}
				if r := mpps(p, time.Since(start)); r > laneBest {
					laneBest = r
				}
			}
			agg += laneBest
		}
		best = agg
	}

	lost := 0
	for _, l := range lanes {
		lost += l.lost
	}
	stopLanes()
	if ferr != nil {
		return 0, mode, steered, lost, ferr
	}
	return best, mode, steered, lost, nil
}

// sockioNode builds the single-slice node and attached population every
// sockio point runs against.
func sockioNode(nUsers int) (*core.Node, *workload.TrafficGen, error) {
	node := core.NewNode(core.SliceConfig{ID: 1, UserHint: nUsers})
	s := node.Slice(0)
	users, err := attachPopulation(s, nUsers, 1)
	if err != nil {
		return nil, nil, err
	}
	// Re-register through the node demux so steering resolves (the bulk
	// attach path registers with the slice only).
	for _, u := range users {
		node.Demux().Register(u.UplinkTEID, u.UEAddr, u.IMSI, 0)
	}
	gen := workload.NewTrafficGen(workload.TrafficConfig{
		ENBAddr:    pkt.IPv4Addr(192, 168, 0, 1),
		CoreAddr:   s.Config().CoreAddr,
		UplinkSize: 64,
	}, users)
	return node, gen, nil
}

// sockioSockets opens the node-side and source-side loopback sockets.
func sockioSockets() (*sockio.Conn, *sockio.Conn, netip.AddrPort, error) {
	npc, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		return nil, nil, netip.AddrPort{}, fmt.Errorf("sockio: loopback unavailable: %w", err)
	}
	nodeConn, err := sockio.NewConn(npc.(*net.UDPConn))
	if err != nil {
		npc.Close()
		return nil, nil, netip.AddrPort{}, err
	}
	euc, err := net.Dial("udp4", npc.LocalAddr().String())
	if err != nil {
		nodeConn.Close()
		return nil, nil, netip.AddrPort{}, err
	}
	srcConn, err := sockio.NewConn(euc.(*net.UDPConn))
	if err != nil {
		nodeConn.Close()
		euc.Close()
		return nil, nil, netip.AddrPort{}, err
	}
	return nodeConn, srcConn, euc.LocalAddr().(*net.UDPAddr).AddrPort(), nil
}

// sockioWireRun measures one burst-size point: the node's rx and egress
// loops run in a goroutine exactly as cmd/pepcd runs them (blocking
// batched Recv, batched steer, inline pipeline, coalesced egress send
// back to the learned source endpoint), while this goroutine plays
// cmd/enbsim in burst mode — send a burst, read the echoed burst back,
// repeat. One burst in flight keeps the loop flow-controlled; the wall
// clock at the source divided into the packets that completed the round
// trip is the system rate. Returns Mpps, syscalls/packet on the node
// socket, and datagrams lost.
func sockioWireRun(batch, total, nUsers int) (float64, float64, int, error) {
	node, gen, err := sockioNode(nUsers)
	if err != nil {
		return 0, 0, 0, err
	}
	s := node.Slice(0)
	nodeConn, srcConn, srcAddr, err := sockioSockets()
	if err != nil {
		return 0, 0, 0, err
	}
	defer srcConn.Close()

	pool := pkt.NewPool(pkt.DefaultBufSize, pkt.DefaultHeadroom)

	// Node event loop: the daemon side.
	done := make(chan struct{})
	go func() {
		defer close(done)
		rcv := sockio.NewReceiver(nodeConn, pool, batch)
		defer rcv.Close()
		ws := node.NewWireSteer(batch, rcv.Cache())
		egSnd := sockio.NewSender(nodeConn, batch, time.Hour)
		defer egSnd.Close()
		scratch := make([]*pkt.Buf, 0, batch)
		proc := make([]*pkt.Buf, batch)
		for {
			k, err := rcv.Recv()
			if k == 0 {
				if err != nil {
					return // socket closed by the measuring side
				}
				continue
			}
			scratch = rcv.TakeAll(scratch[:0])
			ws.Steer(scratch)
			for {
				m := s.Uplink.DequeueBatch(proc)
				if m == 0 {
					break
				}
				s.Data().ProcessUplinkBatch(proc[:m], sim.Now())
			}
			for {
				eb, ok := s.Egress.Dequeue()
				if !ok {
					break
				}
				if egSnd.Queue(eb, srcAddr) != nil {
					return
				}
			}
			if egSnd.Flush() != nil {
				return
			}
		}
	}()

	// Source side: enbsim in burst mode.
	srcSnd := sockio.NewSender(srcConn, batch, time.Hour)
	back := make([]sockio.Message, batch)
	for i := range back {
		back[i].Buf = make([]byte, 2048)
	}
	lost := 0
	// iterate offers one burst of n and waits for the echo, returning how
	// many packets completed the round trip.
	iterate := func(n int) (int, error) {
		for i := 0; i < n; i++ {
			if err := srcSnd.Queue(gen.NextUplink(), netip.AddrPort{}); err != nil {
				return 0, err
			}
		}
		if err := srcSnd.Flush(); err != nil {
			return 0, err
		}
		srcConn.UDPConn().SetReadDeadline(time.Now().Add(2 * time.Second))
		returned := 0
		for returned < n {
			k, err := srcConn.ReadBatch(back[:min(batch, n-returned)])
			if err != nil {
				lost += n - returned
				break
			}
			returned += k
		}
		return returned, nil
	}

	warm := total / 10
	if warm > 2048 {
		warm = 2048
	}
	for w := 0; w < warm; w += batch {
		if _, err := iterate(batch); err != nil {
			nodeConn.Close()
			<-done
			return 0, 0, 0, err
		}
	}
	warmStats := nodeConn.Stats()
	warmCalls := warmStats.RxCalls + warmStats.TxCalls
	warmPkts := warmStats.RxPackets + warmStats.TxPackets

	// Measure in sockioWindows independent windows and keep the fastest:
	// on a shared host a scheduler-contention epoch can halve one
	// window's rate, and a single long window would fold that noise into
	// the point. The syscall tally spans all windows (counts, not rates,
	// so contention cannot skew it).
	gcNow()
	best := 0.0
	var ferr error
	for w := 0; w < sockioWindows && ferr == nil; w++ {
		processed := 0
		start := time.Now()
		for processed < total/sockioWindows {
			n := batch
			if rem := total/sockioWindows - processed; rem < n {
				n = rem
			}
			returned, err := iterate(n)
			if err != nil {
				ferr = err
				break
			}
			processed += returned
			if returned == 0 {
				// Persistent loss: bail rather than loop forever.
				ferr = fmt.Errorf("sockio: loopback burst fully lost at batch %d", batch)
				break
			}
		}
		if r := mpps(processed, time.Since(start)); r > best {
			best = r
		}
	}

	st := nodeConn.Stats()
	nodeConn.Close()
	<-done
	if ferr != nil {
		return 0, 0, lost, ferr
	}
	calls := (st.RxCalls + st.TxCalls) - warmCalls
	pkts := (st.RxPackets + st.TxPackets) - warmPkts
	sysPerPkt := 0.0
	if pkts > 0 {
		// Two packet traversals (rx + tx) per end-to-end packet.
		sysPerPkt = float64(calls) / (float64(pkts) / 2)
	}
	return best, sysPerPkt, lost, nil
}

// sockioLegacyRun measures the replaced system over the same loopback
// closed loop: the node goroutine runs the old per-packet serveGTPU shape
// (one ReadFrom per datagram into a scratch buffer, copy into a pool
// buffer, per-packet locked steer, same inline pipeline, one WriteTo per
// egress packet) and the source offers one datagram per syscall, as the
// pre-burst-mode enbsim did.
func sockioLegacyRun(total, nUsers int) (float64, int, error) {
	node, gen, err := sockioNode(nUsers)
	if err != nil {
		return 0, 0, err
	}
	s := node.Slice(0)
	nodeConn, srcConn, srcAddr, err := sockioSockets()
	if err != nil {
		return 0, 0, err
	}
	defer srcConn.Close()
	nodeUDP := nodeConn.UDPConn()
	srcUDP := srcConn.UDPConn()

	pool := pkt.NewPool(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	done := make(chan struct{})
	go func() {
		defer close(done)
		raw := make([]byte, 64*1024)
		proc := make([]*pkt.Buf, 32)
		for {
			k, _, err := nodeUDP.ReadFrom(raw)
			if err != nil {
				return // socket closed by the measuring side
			}
			b := pool.Get()
			if err := b.SetBytes(raw[:k]); err != nil {
				b.Free()
				continue
			}
			if _, err := gtp.PeekTEID(b.Bytes()); err == nil {
				node.SteerUplink(b)
			} else {
				node.SteerDownlink(b)
			}
			for {
				m := s.Uplink.DequeueBatch(proc)
				if m == 0 {
					break
				}
				s.Data().ProcessUplinkBatch(proc[:m], sim.Now())
			}
			for {
				eb, ok := s.Egress.Dequeue()
				if !ok {
					break
				}
				_, werr := nodeUDP.WriteToUDPAddrPort(eb.Bytes(), srcAddr)
				eb.Free()
				if werr != nil {
					return
				}
			}
		}
	}()

	back := make([]byte, 2048)
	lost := 0
	iterate := func() (int, error) {
		up := gen.NextUplink()
		_, err := srcUDP.Write(up.Bytes())
		up.Free()
		if err != nil {
			return 0, err
		}
		srcUDP.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := srcUDP.Read(back); rerr != nil {
			lost++
			return 0, nil
		}
		return 1, nil
	}

	warm := total / 10
	if warm > 2048 {
		warm = 2048
	}
	for w := 0; w < warm; w++ {
		if _, err := iterate(); err != nil {
			nodeConn.Close()
			<-done
			return 0, 0, err
		}
	}
	gcNow()
	best := 0.0
	var ferr error
	for w := 0; w < sockioWindows && ferr == nil; w++ {
		processed := 0
		misses := 0
		start := time.Now()
		for processed < total/sockioWindows {
			returned, err := iterate()
			if err != nil {
				ferr = err
				break
			}
			processed += returned
			if returned == 0 {
				if misses++; misses > 3 {
					ferr = fmt.Errorf("sockio: loopback unresponsive in per-packet run")
					break
				}
			}
		}
		if r := mpps(processed, time.Since(start)); r > best {
			best = r
		}
	}
	nodeConn.Close()
	<-done
	if ferr != nil {
		return 0, lost, ferr
	}
	return best, lost, nil
}

// sockioMemRun is the same closed loop without sockets: generate a burst,
// steer it through the demux, run the pipeline inline, recycle egress.
func sockioMemRun(batch, total, nUsers int) (float64, error) {
	node, gen, err := sockioNode(nUsers)
	if err != nil {
		return 0, err
	}
	s := node.Slice(0)
	ws := node.NewWireSteer(batch, nil)
	burst := make([]*pkt.Buf, batch)
	proc := make([]*pkt.Buf, batch)

	iterate := func(n int) {
		for i := 0; i < n; i++ {
			burst[i] = gen.NextUplink()
		}
		ws.Steer(burst[:n])
		for {
			m := s.Uplink.DequeueBatch(proc)
			if m == 0 {
				break
			}
			s.Data().ProcessUplinkBatch(proc[:m], sim.Now())
		}
		drainRing(s)
	}

	warm := total / 10
	if warm > 2048 {
		warm = 2048
	}
	for w := 0; w < warm; w += batch {
		iterate(batch)
	}
	gcNow()
	best := 0.0
	for w := 0; w < sockioWindows; w++ {
		processed := 0
		start := time.Now()
		for processed < total/sockioWindows {
			n := batch
			if rem := total/sockioWindows - processed; rem < n {
				n = rem
			}
			iterate(n)
			processed += n
		}
		if r := mpps(processed, time.Since(start)); r > best {
			best = r
		}
	}
	return best, nil
}
