package experiments

import (
	"fmt"
	"runtime"
	"time"

	"pepc/internal/core"
	"pepc/internal/gtp"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/workload"
)

// Fig8 dispatches between the paper's migration-impact sweep (the
// default, Fig8Mode ""/"paper") and the header-engine packet-size sweep
// (Fig8Mode "pktsize") measuring what the zero-copy header engine buys:
// template-stamped vs field-serialized downlink encapsulation, and
// single-parse (demux records, slice consumes) vs double-parse (demux
// peeks, slice re-walks) uplink steering.
func Fig8(sc Scale) (Result, error) {
	if sc.Fig8Mode == "pktsize" {
		return fig8PktSize(sc)
	}
	return fig8Migration(sc)
}

// fig8Sizes are the swept inner IP packet sizes in bytes, 64B minimum to
// Ethernet-MTU-sized payloads.
var fig8Sizes = []int{64, 128, 256, 512, 1024, 1500}

// fig8PktSize is the packet-size sweep of the header engine
// (Fig8Mode="pktsize"). Four configurations per size:
//
//   - "PEPC DL encap template": downlink with the per-user precomputed
//     outer-header template (EncapTemplate.Apply — one 36-byte copy plus
//     three length stores and an incremental checksum patch per packet).
//   - "PEPC DL encap serialize": the same pipeline with field-by-field
//     outer serialization and a full header checksum per packet
//     (EncapSerialize), the pre-template behaviour.
//   - "PEPC UL single-parse": uplink where the steering demux validates
//     the outer headers once (gtp.ParseOuter), records the result in the
//     packet metadata, and the slice's decap consumes it — the
//     parse-once discipline.
//   - "PEPC UL double-parse": uplink where the demux peeks the TEID and
//     throws the parse away, so the slice re-walks the outer headers —
//     the pre-metadata behaviour.
//
// Mpps isolates the per-packet header work (the smallest size is the
// hardest: header cost is the whole packet); the Gbps series report the
// same runs as wire throughput, where the large sizes show the engine
// saturating on payload rather than header overhead. The population is
// kept small enough to be cache-resident so header-engine cost, not
// state-walk misses, dominates what the sweep compares.
func fig8PktSize(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 8 (pktsize)",
		Title:  "Header engine throughput vs packet size: template vs serialize, parse-once vs re-parse",
		XLabel: "inner packet bytes",
		YLabel: "Mpps",
	}
	users := sc.users(4096)
	variants := []fig8Variant{
		{"PEPC DL encap template", true, core.EncapTemplate, false},
		{"PEPC DL encap serialize", true, core.EncapSerialize, false},
		{"PEPC UL single-parse", false, core.EncapTemplate, true},
		{"PEPC UL double-parse", false, core.EncapTemplate, false},
	}
	pts := make([][]sim.Point, len(variants))
	gbps := make([][]sim.Point, len(variants))
	// Sweep sizes in the outer loop and measure the four variants
	// round-robin within each size: what the figure compares are the
	// variant *ratios*, and host load drifts over seconds, so variants
	// must be measured adjacent in time, not series-at-a-time. Each
	// variant's value is its best round — external interference only
	// ever slows a closed inline loop down, so the fastest observation
	// is the closest to the true per-packet cost.
	for _, size := range fig8Sizes {
		best := make([]float64, len(variants))
		cells := make([]*fig8Cell, len(variants))
		for vi, v := range variants {
			c, err := newFig8Cell(sc, users, size, v)
			if err != nil {
				return r, err
			}
			cells[vi] = c
		}
		const rounds = 5
		for round := 0; round < rounds; round++ {
			for vi := range variants {
				if m := cells[vi].measure(sc); m > best[vi] {
					best[vi] = m
				}
			}
		}
		for vi := range variants {
			pts[vi] = append(pts[vi], sim.Point{X: float64(size), Y: best[vi]})
			// Wire throughput counts the encapsulated packet: inner
			// bytes plus the outer IPv4+UDP+GTP-U envelope the uplink
			// carries in and the downlink carries out.
			wire := float64(size + gtp.EncapOverhead)
			gbps[vi] = append(gbps[vi], sim.Point{X: float64(size), Y: best[vi] * 1e6 * wire * 8 / 1e9})
		}
		gcNow()
	}
	for vi, v := range variants {
		r.Series = append(r.Series, sim.Series{Name: v.name, Points: pts[vi]})
		r.Notes = append(r.Notes, fmt.Sprintf("%s Gbps (wire, +%dB outer): %s",
			v.name, gtp.EncapOverhead, sim.FormatPoints(gbps[vi])))
	}
	if len(r.Series) == 4 {
		at := func(s sim.Series, i int) float64 { return s.Points[i].Y }
		r.Notes = append(r.Notes, fmt.Sprintf(
			"64B gains: DL template %+.1f%% over serialize, UL single-parse %+.1f%% over double-parse",
			(at(r.Series[0], 0)/at(r.Series[1], 0)-1)*100,
			(at(r.Series[2], 0)/at(r.Series[3], 0)-1)*100))
	}
	r.Notes = append(r.Notes,
		"expected shape: template and single-parse lead by the most at 64B where header work is the whole packet; the gap narrows with size as payload copy dominates")
	return r, nil
}

// fig8Variant names one measured configuration of the sweep.
type fig8Variant struct {
	name        string
	downlink    bool
	mode        core.EncapMode
	singleParse bool
}

// fig8Cell is one (size, variant) cell: a warmed slice with its attached
// population and generator, ready to be measured repeatedly. Uplink
// variants charge the demux parse (record or peek) to the measured loop
// exactly as the node's steering thread would pay it.
type fig8Cell struct {
	s     *core.Slice
	gen   *workload.TrafficGen
	v     fig8Variant
	batch []*pkt.Buf
}

func newFig8Cell(sc Scale, users, size int, v fig8Variant) (*fig8Cell, error) {
	s := core.NewSlice(core.SliceConfig{ID: 1, UserHint: users, EncapMode: v.mode})
	pop, err := attachPopulation(s, users, 1)
	if err != nil {
		return nil, err
	}
	gen := workload.NewTrafficGen(workload.TrafficConfig{
		CoreAddr:     s.Config().CoreAddr,
		UplinkSize:   size,
		DownlinkSize: size,
		// Per-user bursts so run coalescing amortizes state lookups and
		// the per-packet header work under comparison dominates.
		Burst: 8,
	}, pop)
	c := &fig8Cell{s: s, gen: gen, v: v, batch: make([]*pkt.Buf, 0, 32)}
	runtime.GC()
	for w := 0; w < 4096; w += cap(c.batch) {
		c.fill(cap(c.batch))
		c.process()
	}
	return c, nil
}

func (c *fig8Cell) fill(limit int) {
	c.batch = c.batch[:0]
	for i := 0; i < cap(c.batch) && i < limit; i++ {
		if c.v.downlink {
			c.batch = append(c.batch, c.gen.NextDownlink())
			continue
		}
		b := c.gen.NextUplink()
		if c.v.singleParse {
			if teid, hdrLen, perr := gtp.ParseOuter(b.Bytes()); perr == nil {
				b.Meta.TEID = teid
				b.Meta.OuterLen = uint16(hdrLen)
				b.Meta.OuterParsed = true
			}
		} else {
			// The pre-metadata demux: peek the TEID for steering,
			// discard the parse, let decap re-walk the headers.
			gtp.PeekTEID(b.Bytes())
		}
		c.batch = append(c.batch, b)
	}
}

func (c *fig8Cell) process() {
	if c.v.downlink {
		c.s.Data().ProcessDownlinkBatch(c.batch, sim.Now())
	} else {
		c.s.Data().ProcessUplinkBatch(c.batch, sim.Now())
	}
	drainRing(c.s)
}

// measure runs one closed-loop pass of PacketsPerPoint packets and
// returns the observed rate.
func (c *fig8Cell) measure(sc Scale) float64 {
	processed := 0
	start := time.Now()
	for processed < sc.PacketsPerPoint {
		c.fill(sc.PacketsPerPoint - processed)
		c.process()
		processed += len(c.batch)
	}
	return mpps(processed, time.Since(start))
}
