package experiments

import (
	"net"
	"testing"
)

// TestPFCPFigSmoke runs the N4 churn sweep at a tiny scale end to end:
// both series must produce a nonzero rate at every worker count, and
// skipping the modification exchange must never be slower than the full
// cycle at the single-worker point (it is a strict subset of the work).
func TestPFCPFigSmoke(t *testing.T) {
	if pc, err := net.ListenPacket("udp", "127.0.0.1:0"); err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	} else {
		pc.Close()
	}
	sc := Quick
	sc.EventsPerPoint = 256
	res, err := PFCPFig(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 4 {
			t.Fatalf("series %q: want 4 points, got %d", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("series %q: zero rate at %v workers", s.Name, p.X)
			}
		}
	}
	full, nomod := res.Series[0], res.Series[1]
	if full.Name != "establish+modify+delete" || nomod.Name != "establish+delete" {
		t.Fatalf("unexpected series names %q, %q", full.Name, nomod.Name)
	}
	// One-worker comparison is deterministic enough to assert even on a
	// noisy host: the no-modify cycle does strictly less work and one
	// fewer round trip per session.
	if nomod.Points[0].Y < full.Points[0].Y*0.8 {
		t.Errorf("establish+delete (%.0f/s) slower than the full cycle (%.0f/s) at 1 worker",
			nomod.Points[0].Y, full.Points[0].Y)
	}
}
