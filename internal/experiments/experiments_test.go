package experiments

import (
	"strings"
	"testing"
)

// micro keeps smoke tests fast while staying above the population where
// the paper's scale effects exist at all: below ~20K users every state
// table is cache-resident and the PEPC-vs-legacy gap compresses to
// noise (the gap IS a scale effect, §2.2). Shape assertions use relative
// comparisons only where the effect survives this downscaling.
var micro = Scale{
	MaxUsers:        50_000,
	PacketsPerPoint: 60_000,
	EventsPerPoint:  200,
}

func seriesNonEmpty(t *testing.T, r Result) {
	t.Helper()
	checkSeries(t, r, false)
}

// seriesNonEmptySigned allows negative Y values (percent-improvement
// figures can legitimately dip below zero at smoke-test scales where the
// cache effects under study do not exist).
func seriesNonEmptySigned(t *testing.T, r Result) {
	t.Helper()
	checkSeries(t, r, true)
}

func checkSeries(t *testing.T, r Result, signed bool) {
	t.Helper()
	if len(r.Series) == 0 {
		t.Fatalf("%s: no series", r.Figure)
	}
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: series %q empty", r.Figure, s.Name)
		}
		for _, p := range s.Points {
			if !signed && p.Y < 0 {
				t.Fatalf("%s %q: negative value %f", r.Figure, s.Name, p.Y)
			}
		}
	}
	if out := r.Render(); !strings.Contains(out, r.Figure) {
		t.Fatalf("render missing figure name: %s", out)
	}
}

func TestTable1Renders(t *testing.T) {
	r := Table1()
	if len(r.Notes) != 7 { // header + 6 rows
		t.Fatalf("table 1 rows = %d", len(r.Notes))
	}
	if !strings.Contains(r.Notes[6], "per-packet") {
		t.Fatalf("bandwidth counters row: %s", r.Notes[6])
	}
}

func TestTable2Renders(t *testing.T) {
	r := Table2()
	joined := strings.Join(r.Notes, "\n")
	for _, want := range []string{"1:3", "64 bytes", "128 bytes", "attach request", "100K", "1M"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, joined)
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	r, err := Fig4(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	// PEPC must beat every baseline even at micro scale.
	pepcRate := r.Series[0].Points[0].Y
	for _, s := range r.Series[1:] {
		if s.Points[0].Y >= pepcRate {
			t.Fatalf("%s (%.2f) >= PEPC (%.2f)", s.Name, s.Points[0].Y, pepcRate)
		}
	}
}

func TestFig5Smoke(t *testing.T) {
	r, err := Fig5(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
}

func TestFig6Smoke(t *testing.T) {
	r, err := Fig6(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	// PEPC throughput must fall as the signaling ratio rises toward 1:1
	// and remain above Industrial#1 at 1:1.
	first := r.Series[0]
	if first.Points[0].Y <= first.Points[len(first.Points)-1].Y {
		t.Fatalf("PEPC did not degrade with signaling: %v", first.Points)
	}
	last := r.Series[len(r.Series)-1] // Industrial#1
	if !strings.Contains(last.Name, "Industrial") {
		t.Fatalf("series order changed: %s", last.Name)
	}
	if last.Points[len(last.Points)-1].Y >= first.Points[len(first.Points)-1].Y {
		t.Fatal("Industrial#1 not worse than PEPC at 1:1")
	}
}

func TestFig7Smoke(t *testing.T) {
	r, err := Fig7(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	pts := r.Series[0].Points
	if len(pts) != 4 {
		t.Fatalf("cores points = %d", len(pts))
	}
	// Aggregate must increase with cores (share-nothing sum).
	for i := 1; i < len(pts); i++ {
		if pts[i].Y <= pts[i-1].Y {
			t.Fatalf("aggregate not increasing: %v", pts)
		}
	}
}

func TestFig8Smoke(t *testing.T) {
	r, err := Fig8(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	pts := r.Series[0].Points
	// Throughput at the highest migration rate must be below baseline.
	if pts[len(pts)-1].Y >= pts[0].Y {
		t.Fatalf("migrations did not cost throughput: %v", pts)
	}
}

func TestFig8PktSizeSmoke(t *testing.T) {
	sc := micro
	sc.Fig8Mode = "pktsize"
	r, err := Fig8(sc)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	if len(r.Series) != 4 {
		t.Fatalf("variant series = %d, want 4", len(r.Series))
	}
	for i, want := range []string{"PEPC DL encap template", "PEPC DL encap serialize",
		"PEPC UL single-parse", "PEPC UL double-parse"} {
		if r.Series[i].Name != want {
			t.Fatalf("series %d = %q, want %q", i, r.Series[i].Name, want)
		}
		if got := r.Series[i].Points[0].X; got != 64 {
			t.Fatalf("first swept size = %v, want 64", got)
		}
	}
	// The template must not lose to field serialization at 64B, where
	// header work dominates; 0.95 leaves margin for shared-CPU noise
	// (the benchdiff ratchet tracks the real >=15% gain).
	tmpl, ser := r.Series[0].Points[0].Y, r.Series[1].Points[0].Y
	if tmpl < 0.95*ser {
		t.Fatalf("64B template %.2f Mpps below serialize %.2f Mpps", tmpl, ser)
	}
}

func TestFig9Smoke(t *testing.T) {
	r, err := Fig9(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	if len(r.Series) != 3 {
		t.Fatalf("latency series = %d", len(r.Series))
	}
}

func TestFig10Smoke(t *testing.T) {
	r, err := Fig10(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	// More signaling (smaller 1:N) must never need fewer cores.
	pts := r.Series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X && pts[i].Y < pts[i-1].Y {
			t.Fatalf("cores decreased with more signaling: %v", pts)
		}
	}
	// Lightest ratio needs exactly 1 data + 1 control core.
	if pts[0].Y != 2 {
		t.Fatalf("1:10000 needs %v cores, want 2", pts[0].Y)
	}
}

func TestFig11Smoke(t *testing.T) {
	r, err := Fig11(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	pts := r.Series[0].Points
	if len(pts) != 8 || pts[7].Y <= pts[0].Y {
		t.Fatalf("control scaling: %v", pts)
	}
}

func TestFig12Smoke(t *testing.T) {
	r, err := Fig12(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
}

func TestFig13Smoke(t *testing.T) {
	r, err := Fig13(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
}

func TestFig14Smoke(t *testing.T) {
	r, err := Fig14(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmptySigned(t, r)
}

func TestFig15Smoke(t *testing.T) {
	r, err := Fig15(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmptySigned(t, r)
}

func TestRatioEvents(t *testing.T) {
	if ratioEvents(0) != 0 || ratioEvents(-1) != 0 {
		t.Fatal("zero ratio must emit no events")
	}
	if ratioEvents(1000) != 1 || ratioEvents(1) != 1000 || ratioEvents(10) != 100 {
		t.Fatal("ratio conversion wrong")
	}
	if ratioEvents(10000) != 1 {
		t.Fatal("sub-1 event rates must clamp to 1 per 1000")
	}
}

func TestClusterSmoke(t *testing.T) {
	sc := micro
	sc.ClusterMode = "sum"
	r, err := ClusterFig(sc)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	if len(r.Series) != 3 {
		t.Fatalf("series = %d, want aggregate + rebalance + recovery", len(r.Series))
	}
	agg := r.Series[0].Points
	if len(agg) != 3 {
		t.Fatalf("node-count points = %d", len(agg))
	}
	// Share-nothing lanes summed: 4 nodes must clearly out-aggregate 1.
	if agg[2].Y < 2.5*agg[0].Y {
		t.Fatalf("4-node aggregate %.2f < 2.5x 1-node %.2f", agg[2].Y, agg[0].Y)
	}
	// One membership change moves a bounded fraction of the population
	// (Maglev remap bound; the experiment itself errors past the bound,
	// this guards gross regressions).
	for _, p := range r.Series[1].Points {
		if p.Y <= 0 || p.Y > 60 {
			t.Fatalf("rebalance moved %.1f%% of users", p.Y)
		}
	}
}

// TestLatFigSmoke covers the gated tail-latency figure: every scenario
// must produce a populated latency distribution, the quantile series
// must be ordered (p50 ≤ p99 ≤ p99.9 at every scenario), and the series
// must declare the lower-is-better direction benchdiff gates on.
func TestLatFigSmoke(t *testing.T) {
	r, err := LatFig(micro)
	if err != nil {
		t.Fatal(err)
	}
	seriesNonEmpty(t, r)
	if len(r.Series) != 3 {
		t.Fatalf("quantile series = %d, want p50/p99/p99.9", len(r.Series))
	}
	for _, s := range r.Series {
		if s.Direction != "down" {
			t.Fatalf("series %q direction = %q, want down", s.Name, s.Direction)
		}
		if len(s.Points) != 5 {
			t.Fatalf("series %q scenarios = %d, want 5", s.Name, len(s.Points))
		}
	}
	p50, p99, p999 := r.Series[0].Points, r.Series[1].Points, r.Series[2].Points
	for i := range p50 {
		if p50[i].Y <= 0 {
			t.Fatalf("scenario %d: p50 = %f, want > 0", i+1, p50[i].Y)
		}
		if p99[i].Y < p50[i].Y || p999[i].Y < p99[i].Y {
			t.Fatalf("scenario %d: quantiles not ordered: p50=%f p99=%f p99.9=%f",
				i+1, p50[i].Y, p99[i].Y, p999[i].Y)
		}
	}
}
