package experiments

import (
	"fmt"
	"math"
	"time"

	"pepc/internal/core"
	"pepc/internal/enb"
	"pepc/internal/hss"
	"pepc/internal/pcrf"
	"pepc/internal/pkt"
	"pepc/internal/sctp"
	"pepc/internal/sim"
	"pepc/internal/workload"
)

// measureAttachRate runs the full signaling stack — eNodeB emulator,
// SCTP-lite association, S1AP/NAS parsing, Diameter AIR/ULA against the
// HSS, Gx session toward the PCRF — and measures completed attach
// procedures per second on one control core (one S1AP server loop).
func measureAttachRate(events int) (float64, error) {
	hssDB := hss.New()
	hssDB.ProvisionRange(1, events+1, 10e6, 50e6)
	policy := pcrf.New()

	node := core.NewNode(core.SliceConfig{ID: 1, UserHint: events * 2})
	node.AttachProxy(core.NewProxy(hssDB, policy))

	cw, sw := sctp.Pipe(4096)
	acceptDone := make(chan *sctp.Assoc, 1)
	go func() {
		a, _ := sctp.Accept(sw, sctp.Config{Tag: 2})
		acceptDone <- a
	}()
	client, err := sctp.Dial(cw, sctp.Config{Tag: 1})
	if err != nil {
		return 0, err
	}
	server := <-acceptDone
	if server == nil {
		return 0, fmt.Errorf("experiments: SCTP accept failed")
	}
	defer client.Close()

	srv := core.NewS1APServer(node.Slice(0).Control(), server)
	stop := make(chan struct{})
	defer close(stop)
	go srv.Serve(stop)

	base := enb.New(pkt.IPv4Addr(192, 168, 9, 1), 7, 0xabc, client)
	start := time.Now()
	for i := 0; i < events; i++ {
		ue := enb.NewUE(uint64(i + 1))
		if err := base.Attach(ue); err != nil {
			return 0, fmt.Errorf("attach %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)
	return float64(events) / elapsed.Seconds(), nil
}

// Fig10 regenerates Figure 10: the number of cores needed to handle a
// given signaling:data ratio, with full S1AP/NAS handling over SCTP. The
// data load is the maximum rate one data core sustains; the control
// capacity is the measured full-stack attach rate per control core.
func Fig10(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 10",
		Title:  "Cores needed vs signaling:data ratio (full S1AP/NAS over SCTP)",
		XLabel: "signaling:data (1:N)",
		YLabel: "total cores",
	}
	// One data core's packet rate (no signaling).
	users := sc.users(10_000)
	s := core.NewSlice(core.SliceConfig{ID: 1, UserHint: users})
	pop, err := attachPopulation(s, users, 1)
	if err != nil {
		return r, err
	}
	gen := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s.Config().CoreAddr}, pop)
	dataMpps := pepcRun(s, gen, sc.PacketsPerPoint, 0, nil)
	dataPPS := dataMpps * 1e6

	attachRate, err := measureAttachRate(sc.EventsPerPoint)
	if err != nil {
		return r, err
	}

	var pts []sim.Point
	for _, n := range []int{10000, 1000, 304, 100, 50, 25} {
		signalingRate := dataPPS / float64(n)
		ctrlCores := int(math.Ceil(signalingRate / attachRate))
		if ctrlCores < 1 {
			ctrlCores = 1
		}
		pts = append(pts, sim.Point{X: float64(n), Y: float64(1 + ctrlCores)})
	}
	r.Series = append(r.Series, sim.Series{Name: "PEPC", Points: pts})
	r.Notes = append(r.Notes,
		fmt.Sprintf("measured: %.2f Mpps per data core, %.0f attaches/s per control core", dataPPS/1e6, attachRate),
		"paper shape: ratio 1:304 needs 1 data + 1 control core")
	return r, nil
}

// Fig11 regenerates Figure 11: the attach-request rate sustained as the
// number of control cores grows. Control cores are independent S1AP
// server loops with their own associations; on this single-CPU host they
// are measured one at a time and summed (the paper's sublinearity came
// from the shared kernel SCTP stack, which this userspace transport does
// not have — noted in EXPERIMENTS.md).
func Fig11(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 11",
		Title:  "Attach requests/s vs control cores (S1AP/NAS over SCTP)",
		XLabel: "control cores",
		YLabel: "attach requests/s",
	}
	perCore, err := measureAttachRate(sc.EventsPerPoint)
	if err != nil {
		return r, err
	}
	// A second independent instance, to average instance variance
	// rather than trusting one run.
	perCore2, err := measureAttachRate(sc.EventsPerPoint)
	if err != nil {
		return r, err
	}
	avg := (perCore + perCore2) / 2
	var pts []sim.Point
	for cores := 1; cores <= 8; cores++ {
		pts = append(pts, sim.Point{X: float64(cores), Y: avg * float64(cores)})
	}
	r.Series = append(r.Series, sim.Series{Name: "PEPC", Points: pts})
	r.Notes = append(r.Notes,
		fmt.Sprintf("measured %.0f attaches/s per control core (full S1AP/NAS/SCTP/Diameter stack)", avg),
		"paper shape: ~20K/s at 1 core to ~120K/s at 8 (kernel-SCTP-bound sublinearity not reproduced; see EXPERIMENTS.md)")
	return r, nil
}
