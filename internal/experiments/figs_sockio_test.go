package experiments

import (
	"net"
	"testing"
)

// TestSockioSmoke runs the sockio sweep at a tiny scale end to end: every
// point must produce a nonzero rate on all three series, and the wire
// series must report fewer syscalls per packet at burst 64 than at
// burst 1 on platforms with vectorized I/O.
func TestSockioSmoke(t *testing.T) {
	if pc, err := net.ListenPacket("udp4", "127.0.0.1:0"); err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	} else {
		pc.Close()
	}
	sc := Quick
	sc.PacketsPerPoint = 8192 * 4 // 8192 packets per point after the /4
	sc.MaxUsers = 4096
	res, err := Sockio(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("want 5 series, got %d", len(res.Series))
	}
	for i, s := range res.Series {
		wantPts := 7
		if i == 4 {
			wantPts = 3 // multi-queue sweep: 1/2/4 queues
		}
		if len(s.Points) != wantPts {
			t.Fatalf("series %q: want %d points, got %d", s.Name, wantPts, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("series %q: zero rate at x=%.0f", s.Name, p.X)
			}
		}
	}
	mq := res.Series[4]
	if mq.Name != "PEPC loopback multi-queue" {
		t.Fatalf("unexpected multi-queue series %q", mq.Name)
	}
	if mq.Points[2].Y < mq.Points[0].Y {
		t.Errorf("aggregate rate fell with queues: %.3f Mpps at 1 queue vs %.3f at 4",
			mq.Points[0].Y, mq.Points[2].Y)
	}
	sys := res.Series[3]
	if sys.Name != "syscalls per packet" {
		t.Fatalf("unexpected last series %q", sys.Name)
	}
	first, last := sys.Points[0].Y, sys.Points[len(sys.Points)-1].Y
	if last >= first {
		t.Errorf("syscalls/packet did not fall with burst size: %.3f at 1 vs %.3f at 64", first, last)
	}

	// The batched path must beat the per-packet loop it replaced. The
	// full-scale margin (>=2x, tracked in EXPERIMENTS.md and ratcheted in
	// BENCH_sockio.json) is checked loosely here: this tiny smoke scale
	// runs on shared CI hosts where absolute rates swing.
	wire, legacy := res.Series[0], res.Series[1]
	best := 0.0
	for _, p := range wire.Points {
		if p.Y > best {
			best = p.Y
		}
	}
	if best < legacy.Points[0].Y*1.2 {
		t.Errorf("batched best %.3f Mpps not ahead of per-packet baseline %.3f Mpps", best, legacy.Points[0].Y)
	}
}
