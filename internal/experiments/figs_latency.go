package experiments

import (
	"fmt"
	"runtime"
	"time"

	"pepc/internal/core"
	"pepc/internal/fault"
	"pepc/internal/hdr"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/workload"
)

// latScenario is one tail-latency stress mode the "lat" experiment
// sweeps: a steady-state baseline and the four interference sources the
// paper's consolidation argument says must not wreck the data plane's
// tail — signaling storms against the same state tables, injected
// worker stalls, GC pressure from a large resident population, and
// migration bursts.
type latScenario struct {
	name string
	// users is the attached population (GC pressure scales with it).
	users int
	// eventsPerK interleaves attach-storm signaling at this rate per
	// 1000 packets through the batched control fast path.
	eventsPerK int
	// stall arms deterministic WorkerStall injection between batches.
	stall bool
	// garbage allocates transient per-batch garbage to force GC cycles
	// through the measured window.
	garbage bool
	// migrationsPerK drives the two-slice migration harness instead of
	// the single-slice loop.
	migrationsPerK float64
}

// latRun measures one scenario: a closed inline loop over one slice
// with verdict-stage latency recording armed, each generated batch
// stamped with one clock read (the batched-timestamp discipline the
// planes use on the wire). Returns throughput and the merged histogram.
func latRun(sc Scale, sn latScenario, record bool) (float64, *hdr.Histogram, error) {
	s := core.NewSlice(core.SliceConfig{ID: 1, UserHint: sn.users, RecordLatency: record})
	pop, err := attachPopulation(s, sn.users, 1)
	if err != nil {
		return 0, nil, err
	}
	gen := workload.NewTrafficGen(workload.TrafficConfig{}, pop)
	sg := workload.NewSignalingGen(workload.EventAttach, pop)
	var fj *fault.Injector
	if sn.stall {
		seed := sc.FaultSeed
		if seed == 0 {
			seed = 1
		}
		fj = fault.New(seed)
		// ~1 stall per 2048 decisions, 50µs each: rare enough to leave
		// the median alone, frequent enough to own the p99.9.
		fj.ArmDelay(fault.WorkerStall, fault.RateMax/2048, 50*time.Microsecond)
	}

	const batchSize = 32
	up := make([]*pkt.Buf, 0, batchSize)
	down := make([]*pkt.Buf, 0, batchSize)
	runtime.GC()
	warm := 4096
	for w := 0; w < warm; w += batchSize {
		up = up[:0]
		for i := 0; i < batchSize; i++ {
			up = append(up, gen.NextUplink())
		}
		s.Data().ProcessUplinkBatch(up, sim.Now())
		drainRing(s)
	}
	total := sc.PacketsPerPoint
	processed := 0
	eventDebt := 0.0
	eventRate := float64(sn.eventsPerK) / 1000.0
	var ballast [][]byte
	start := time.Now()
	for processed < total {
		up = up[:0]
		down = down[:0]
		// One clock read stamps the whole generated batch; the verdict
		// stage in DataPlane.forward records now−stamp per packet.
		ts := sim.Now()
		for i := 0; i < batchSize && processed+len(up)+len(down) < total; i++ {
			b, isUp := gen.Next()
			if record {
				b.Meta.TSNanos = ts
			}
			if isUp {
				up = append(up, b)
			} else {
				down = append(down, b)
			}
		}
		// Injected worker stall lands between stamping and processing —
		// exactly where a preempted data core delays real packets.
		if d := fj.FireDelay(fault.WorkerStall); d > 0 {
			time.Sleep(d)
		}
		now := sim.Now()
		if len(up) > 0 {
			s.Data().ProcessUplinkBatch(up, now)
		}
		if len(down) > 0 {
			s.Data().ProcessDownlinkBatch(down, now)
		}
		n := len(up) + len(down)
		processed += n
		if sn.garbage {
			// Transient allocations retained briefly so the collector
			// has live heap to trace across the large population.
			ballast = append(ballast, make([]byte, 16<<10))
			if len(ballast) > 64 {
				ballast = ballast[:0]
			}
		}
		if eventRate > 0 {
			eventDebt += float64(n) * eventRate
			for eventDebt >= 1 {
				ev := sg.Next()
				s.Control().EnqueueSignal(core.SigEvent{Kind: core.SigAttachEvent, IMSI: ev.IMSI})
				eventDebt--
			}
			for s.Control().DrainSignaling(0) > 0 {
			}
		}
		drainRing(s)
	}
	elapsed := time.Since(start)
	_ = ballast
	lat := hdr.New()
	lat.Merge(s.Data().LatencyUplink())
	lat.Merge(s.Data().LatencyDownlink())
	return mpps(processed, elapsed), lat, nil
}

// LatFig regenerates the tail-latency figure gated in CI: per-packet
// p50/p99/p99.9 (µs, lower is better) across the five interference
// scenarios. The series carry Direction "down" so benchdiff ratchets a
// ceiling and fails on tail inflation, the mirror image of the
// throughput gates.
func LatFig(sc Scale) (Result, error) {
	r := Result{
		Figure: "Lat",
		Title:  "Tail latency under interference (µs, lower is better)",
		XLabel: "scenario",
		YLabel: "latency µs",
	}
	scenarios := []latScenario{
		{name: "baseline", users: sc.users(10_000)},
		{name: "signaling-storm", users: sc.users(10_000), eventsPerK: 100},
		{name: "faults", users: sc.users(10_000), stall: true},
		{name: "gc-pressure", users: sc.users(250_000), garbage: true},
		{name: "migration-burst", users: sc.users(10_000), migrationsPerK: 5},
	}
	quantiles := []struct {
		name string
		p    float64
	}{{"p50", 50}, {"p99", 99}, {"p99.9", 99.9}}
	pts := make([][]sim.Point, len(quantiles))

	// Recording-overhead proof rides on the baseline scenario: the same
	// loop with recording off vs on must stay within the issue's ≤2%
	// budget. Both sides are sampled best-of-2 in interleaved pairs up
	// front — before the stress scenarios grow the heap — so scheduler
	// noise on a shared host doesn't masquerade as recording cost.
	var offMpps, onMpps float64
	for i := 0; i < 2; i++ {
		m, _, err := latRun(sc, scenarios[0], false)
		if err != nil {
			return r, err
		}
		if m > offMpps {
			offMpps = m
		}
		gcNow()
		if m, _, err = latRun(sc, scenarios[0], true); err == nil && m > onMpps {
			onMpps = m
		}
		gcNow()
	}
	var baseMpps float64
	var err error
	for xi, sn := range scenarios {
		var (
			m   float64
			lat *hdr.Histogram
		)
		if sn.migrationsPerK > 0 {
			m, lat, err = migrationRun(sc, sn.users, sn.migrationsPerK, true)
		} else {
			m, lat, err = latRun(sc, sn, true)
		}
		if err != nil {
			return r, fmt.Errorf("lat scenario %s: %w", sn.name, err)
		}
		if xi == 0 {
			baseMpps = m
		}
		for qi, q := range quantiles {
			pts[qi] = append(pts[qi], sim.Point{X: float64(xi + 1), Y: float64(lat.Percentile(q.p)) / 1e3})
		}
		r.Notes = append(r.Notes, fmt.Sprintf("x=%d %s: %s (%.3f Mpps)", xi+1, sn.name, lat.Summary(), m))
		gcNow()
	}
	for qi, q := range quantiles {
		r.Series = append(r.Series, sim.Series{Name: q.name, Points: pts[qi], Direction: "down"})
	}
	if onMpps > baseMpps {
		baseMpps = onMpps
	}
	if offMpps > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"recording overhead on baseline: %.3f Mpps off vs %.3f Mpps on (%+.1f%%; budget ≤2%%)",
			offMpps, baseMpps, (baseMpps-offMpps)/offMpps*100))
	}
	return r, nil
}
