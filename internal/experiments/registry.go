package experiments

import (
	"fmt"
	"sort"
)

// runner regenerates one table or figure.
type runner func(Scale) (Result, error)

var registry = map[string]runner{
	"table1": func(Scale) (Result, error) { return Table1(), nil },
	"table2": func(Scale) (Result, error) { return Table2(), nil },
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
	"faults":  Faults,
	"sockio":  Sockio,
	"cluster": ClusterFig,
	"lat":     LatFig,
	"pfcp":    PFCPFig,
}

// Run regenerates the named table or figure.
func Run(name string, sc Scale) (Result, error) {
	r, ok := registry[name]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(sc)
}

// Names lists every registered experiment in order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		// tables first, then figures numerically.
		ti, tj := out[i][0] == 't', out[j][0] == 't'
		if ti != tj {
			return ti
		}
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}
