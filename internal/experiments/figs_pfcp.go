package experiments

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pepc/internal/core"
	"pepc/internal/pfcp"
	"pepc/internal/pkt"
	"pepc/internal/sim"
)

// pfcpWindows is the number of independent measurement windows folded
// (by max) into each data point.
const pfcpWindows = 3

// PFCPFig measures N4 session churn over loopback UDP (DESIGN.md
// §4.17): a UPF node serving PFCP exactly as cmd/pepcd's serveN4 loop
// does (burst gather, handle, one signaling flush, then respond), driven
// by concurrent SMF workers — each a pfcp.Client running establishment →
// modification → deletion cycles, the cmd/smfsim shape. The sweep is
// sessions/s against worker count for the full cycle and for
// establish/delete only; the gap between the two series is the
// modification cost, which rides the batched signaling path.
func PFCPFig(sc Scale) (Result, error) {
	workers := []int{1, 2, 4, 8}
	cycles := sc.EventsPerPoint
	if cycles < 256 {
		cycles = 256
	}

	full := sim.Series{Name: "establish+modify+delete"}
	nomod := sim.Series{Name: "establish+delete"}
	var retransmits uint64

	for _, w := range workers {
		rFull, rtx, err := pfcpChurnRun(w, cycles, true)
		if err != nil {
			return Result{}, err
		}
		retransmits += rtx
		rNomod, rtx2, err := pfcpChurnRun(w, cycles, false)
		if err != nil {
			return Result{}, err
		}
		retransmits += rtx2
		full.Points = append(full.Points, sim.Point{X: float64(w), Y: rFull})
		nomod.Points = append(nomod.Points, sim.Point{X: float64(w), Y: rNomod})
		gcNow()
	}

	bestFull := full.Points[len(full.Points)-1].Y
	for _, p := range full.Points {
		if p.Y > bestFull {
			bestFull = p.Y
		}
	}
	notes := []string{
		"closed loop over loopback UDP: one UPF service goroutine (burst gather + one signaling flush per burst, the cmd/pepcd serveN4 shape), one PFCP endpoint per SMF worker",
		"each cycle is a full session life: establishment installs PDR/FAR/QER onto the slice machinery, modification rewrites the tunnel and the rate bounds through the batched signaling path, deletion tears the user down",
		fmt.Sprintf("each point is the fastest of %d measurement windows of %d cycles", pfcpWindows, cycles),
		fmt.Sprintf("best full-cycle rate %.0f sessions/s; establish+delete omits the modification exchange", bestFull),
	}
	if retransmits > 0 {
		notes = append(notes, fmt.Sprintf("%d retransmits across the sweep (loopback drops under contention; retried within the measured window)", retransmits))
	}
	return Result{
		Figure: "pfcp",
		Title:  "N4 (PFCP) session churn: sessions/s vs concurrent SMF workers",
		XLabel: "SMF workers",
		YLabel: "sessions/s",
		Series: []sim.Series{full, nomod},
		Notes:  notes,
	}, nil
}

// pfcpServe is the experiment's copy of the daemon's N4 service loop:
// gather a burst, handle each datagram, flush the batched signaling
// once, then answer. Exits when the socket closes.
func pfcpServe(upf *core.UPF, pc net.PacketConn) {
	type reply struct {
		to   net.Addr
		resp []byte
	}
	const burst = 64
	rd := make([]byte, 64*1024)
	replies := make([]reply, 0, burst)
	var respBuf []byte
	for {
		pc.SetReadDeadline(time.Now().Add(time.Second))
		n, from, err := pc.ReadFrom(rd)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
		replies = replies[:0]
		respBuf = respBuf[:0]
		for {
			mark := len(respBuf)
			respBuf = upf.Handle(rd[:n], respBuf)
			if len(respBuf) > mark {
				replies = append(replies, reply{to: from, resp: respBuf[mark:]})
			}
			if len(replies) >= burst {
				break
			}
			pc.SetReadDeadline(time.Now())
			if n, from, err = pc.ReadFrom(rd); err != nil {
				break
			}
		}
		upf.Flush()
		for i := range replies {
			pc.WriteTo(replies[i].resp, replies[i].to)
		}
	}
}

// pfcpChurnRun measures one (workers, modify) point: total cycles split
// across the workers, fastest of pfcpWindows windows, returning
// sessions/s and the retransmit count.
func pfcpChurnRun(workers, cycles int, modify bool) (float64, uint64, error) {
	node := core.NewNode(core.SliceConfig{ID: 1, UserHint: 4 * workers})
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, fmt.Errorf("pfcp: loopback unavailable: %w", err)
	}
	upf := core.NewUPF(node, pkt.IPv4Addr(127, 0, 0, 1))
	done := make(chan struct{})
	go func() { defer close(done); pfcpServe(upf, pc) }()
	stop := func() { pc.Close(); <-done }

	clients := make([]*pfcp.Client, workers)
	for w := range clients {
		c, err := pfcp.Dial(pc.LocalAddr().String(), pkt.IPv4Addr(10, 255, 0, uint8(w+1)))
		if err != nil {
			stop()
			return 0, 0, err
		}
		defer c.Close()
		c.SetRetransmit(200*time.Millisecond, 5)
		if err := c.Associate(); err != nil {
			stop()
			return 0, 0, fmt.Errorf("pfcp: associate: %w", err)
		}
		clients[w] = c
	}

	perWorker := cycles / workers
	if perWorker < 8 {
		perWorker = 8
	}
	// churn runs one worker's share of a window. Identifiers embed the
	// worker and iteration so concurrent sessions never collide; every
	// cycle deletes its session, so windows reuse them cleanly.
	churn := func(c *pfcp.Client, w int) error {
		for i := 0; i < perWorker; i++ {
			teid := 0x5E00_0000 | uint32(w+1)<<20 | uint32(i)
			req := &pfcp.SessionRequest{
				CreatePDRs: []pfcp.PDR{
					{ID: 1, Precedence: 100, SourceInterface: pfcp.InterfaceAccess,
						TEID: teid, TEIDAddr: pkt.IPv4Addr(127, 0, 0, 1),
						OuterHeaderRemoval: true, FARID: 2, QERID: 1},
					{ID: 2, Precedence: 100, SourceInterface: pfcp.InterfaceCore,
						UEAddr: pkt.IPv4Addr(45, uint8(w+1), uint8(i>>8), uint8(i)), FARID: 1, QERID: 1},
				},
				CreateFARs: []pfcp.FAR{
					{ID: 1, DestinationInterface: pfcp.InterfaceAccess,
						OuterHeaderCreation: true, TEID: 0xD000_0000 | uint32(i), Addr: pkt.IPv4Addr(192, 168, 50, uint8(w+1))},
					{ID: 2, DestinationInterface: pfcp.InterfaceCore},
				},
				CreateQERs: []pfcp.QER{{ID: 1, MBRUplinkKbps: 50_000, MBRDownlinkKbps: 100_000}},
			}
			seid, err := c.Establish(req)
			if err != nil {
				return fmt.Errorf("pfcp: establish: %w", err)
			}
			if modify {
				if err := c.Modify(&pfcp.SessionRequest{
					SEID: seid,
					UpdateFARs: []pfcp.FAR{{ID: 1, DestinationInterface: pfcp.InterfaceAccess,
						OuterHeaderCreation: true, TEID: 0xD100_0000 | uint32(i), Addr: pkt.IPv4Addr(192, 168, 51, uint8(w+1))}},
					UpdateQERs: []pfcp.QER{{ID: 1, MBRUplinkKbps: 20_000, MBRDownlinkKbps: 40_000}},
				}); err != nil {
					return fmt.Errorf("pfcp: modify: %w", err)
				}
			}
			if err := c.Delete(seid); err != nil {
				return fmt.Errorf("pfcp: delete: %w", err)
			}
		}
		return nil
	}

	// Warm one short round so pool and map growth stay out of the windows.
	if err := func() error {
		save := perWorker
		perWorker = 8
		defer func() { perWorker = save }()
		return churn(clients[0], 0)
	}(); err != nil {
		stop()
		return 0, 0, err
	}
	gcNow()

	best := 0.0
	var ferr error
	for win := 0; win < pfcpWindows && ferr == nil; win++ {
		var wg sync.WaitGroup
		var completed atomic.Int64
		var errMu sync.Mutex
		start := time.Now()
		for w, c := range clients {
			wg.Add(1)
			go func(c *pfcp.Client, w int) {
				defer wg.Done()
				if err := churn(c, w); err != nil {
					errMu.Lock()
					ferr = err
					errMu.Unlock()
					return
				}
				completed.Add(int64(perWorker))
			}(c, w)
		}
		wg.Wait()
		if el := time.Since(start); el > 0 {
			if r := float64(completed.Load()) / el.Seconds(); r > best {
				best = r
			}
		}
	}

	var rtx uint64
	for _, c := range clients {
		rtx += c.Retransmits
	}
	stop()
	if ferr != nil {
		return 0, rtx, ferr
	}
	return best, rtx, nil
}
