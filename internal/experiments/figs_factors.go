package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"pepc/internal/core"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
	"pepc/internal/workload"
)

// Table1 renders the paper's Table 1 (state taxonomy), straight from the
// encoded taxonomy the state package tests against.
func Table1() Result {
	r := Result{
		Figure: "Table 1",
		Title:  "State taxonomy for current EPC functions and PEPC",
	}
	r.Notes = state.FormatTaxonomy()
	return r
}

// Table2 renders the default evaluation parameters.
func Table2() Result {
	r := Result{
		Figure: "Table 2",
		Title:  "Evaluation parameters and default values",
	}
	r.Notes = []string{
		fmt.Sprintf("Ratio of uplink to downlink traffic   %d:%d", workload.DefaultUplinkRatio, workload.DefaultDownlinkRatio),
		fmt.Sprintf("Downlink packet size                  %d bytes", workload.DefaultDownlinkSize),
		fmt.Sprintf("Uplink packet size                    %d bytes", workload.DefaultUplinkSize),
		fmt.Sprintf("Signaling event type                  %s", workload.DefaultSignalingEvent),
		fmt.Sprintf("Signaling events per second           %s", sim.FormatQty(workload.DefaultSignalingRate)),
		fmt.Sprintf("Number of users                       %s", sim.FormatQty(workload.DefaultUsers)),
	}
	return r
}

// Fig12 regenerates Figure 12: the comparison of shared-state designs —
// giant lock, datapath-writer, and PEPC's single-writer split — as the
// control-plane update rate grows. A control goroutine issues state
// updates concurrently with the measured data loop, so lock contention
// (the phenomenon under test) is real.
func Fig12(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 12",
		Title:  "Comparison of shared state implementations",
		XLabel: "state updates during run",
		YLabel: "Mpps",
	}
	users := sc.users(100_000)
	updateCounts := []int{0, 10_000, 100_000, 1_000_000, 3_000_000}
	for _, mode := range []state.LockMode{state.LockModeGiant, state.LockModeDatapathWriter, state.LockModePEPC} {
		tb := state.NewTable(mode, users)
		ues := make([]*state.UE, users)
		for i := range ues {
			ue := &state.UE{}
			ue.WriteCtrl(func(c *state.ControlState) {
				c.IMSI = uint64(i + 1)
				c.UplinkTEID = uint32(i + 1)
				c.UEAddr = 0x0a000000 + uint32(i+1)
			})
			if err := tb.Insert(ue); err != nil {
				return r, err
			}
			ues[i] = ue
		}
		var pts []sim.Point
		for _, updates := range updateCounts {
			// Median of three runs: OS timeslicing on shared-CPU hosts
			// makes single runs noisy.
			vs := []float64{
				fig12Point(tb, ues, sc.PacketsPerPoint, updates),
				fig12Point(tb, ues, sc.PacketsPerPoint, updates),
				fig12Point(tb, ues, sc.PacketsPerPoint, updates),
			}
			sort.Float64s(vs)
			pts = append(pts, sim.Point{X: float64(updates), Y: vs[1]})
		}
		name := mode.String()
		if mode == state.LockModeGiant {
			name = "Giant lock"
		} else if mode == state.LockModeDatapathWriter {
			name = "Datapath writer"
		}
		r.Series = append(r.Series, sim.Series{Name: name, Points: pts})
		gcNow()
	}
	r.Notes = append(r.Notes,
		"paper shape: giant lock collapses toward ~1 Mpps at 3M updates; datapath-writer trails PEPC by ≤0.3 Mpps; PEPC flat")
	return r, nil
}

// fig12Point measures data-path throughput over the table while a
// concurrent control goroutine performs the given number of updates.
//
// Single-CPU methodology: GOMAXPROCS is raised to 2 for the measurement
// so the updater runs on a second OS thread timesharing the CPU — lock
// contention (the phenomenon under test) is then physically real: in
// giant-lock mode every update excludes all data-path readers table-wide
// and a preempted writer strands them; per-user-lock modes only collide
// on the one user being updated. The data loop keeps processing until
// the updater finishes, so the reported rate reflects the full update
// load, like the paper's updates-per-second axis.
func fig12Point(tb *state.Table, ues []*state.UE, packets, updates int) float64 {
	users := len(ues)
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	// Warm the lookup path over the whole table before timing.
	for i := 0; i < users; i++ {
		tb.DataPathTEID(uint32(i+1), func(_ *state.ControlState, cnt *state.CounterState) {
			cnt.UplinkPackets++
		})
	}
	runtime.GC()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for u := 0; u < updates; u++ {
			ue := ues[u%users]
			tb.CtrlWrite(ue, func(c *state.ControlState) {
				c.ECGI++
				c.DownlinkTEID++
			})
		}
	}()
	processed := 0
	start := time.Now()
	updaterDone := false
	for processed < packets || !updaterDone {
		// Deliberately per-access (DataPathTEID, not DataPathTEIDBatch):
		// this figure isolates the cost of the locking discipline per state
		// access. The batched entry point takes the giant lock once per
		// batch, which amortizes exactly the contention under test and
		// would mask the collapse the paper demonstrates; the slice fast
		// path uses the batched form, this figure measures the primitive.
		for i := 0; i < 256; i++ {
			teid := uint32((processed+i)%users + 1)
			tb.DataPathTEID(teid, func(_ *state.ControlState, cnt *state.CounterState) {
				cnt.UplinkPackets++
				cnt.UplinkBytes += 128
			})
		}
		processed += 256
		if !updaterDone {
			select {
			case <-done:
				updaterDone = true
			default:
			}
		}
	}
	return mpps(processed, time.Since(start))
}

// Fig13 regenerates Figure 13: the benefit of batching control→data
// updates (sync every 32 packets vs every packet) under attach-heavy
// signaling.
func Fig13(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 13",
		Title:  "Impact of batching updates to the data plane",
		XLabel: "signaling:data (1:N)",
		YLabel: "Mpps",
	}
	users := sc.users(100_000)
	ratios := []int{100, 10, 2, 1}
	for _, batched := range []bool{true, false} {
		syncEvery := state.DefaultSyncEvery
		name := "batched (sync/32)"
		if !batched {
			syncEvery = 1
			name = "unbatched (sync/1)"
		}
		s := core.NewSlice(core.SliceConfig{ID: 1, UserHint: users, SyncEvery: syncEvery})
		pop, err := attachPopulation(s, users, 1)
		if err != nil {
			return r, err
		}
		gen := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s.Config().CoreAddr}, pop)
		sg := workload.NewSignalingGen(workload.EventAttach, pop)
		var pts []sim.Point
		for _, ratio := range ratios {
			v := pepcRun(s, gen, sc.PacketsPerPoint, ratioEvents(ratio), sg)
			pts = append(pts, sim.Point{X: float64(ratio), Y: v})
		}
		r.Series = append(r.Series, sim.Series{Name: name, Points: pts})
		gcNow()
	}
	r.Notes = append(r.Notes,
		"paper shape: batching gains >1 Mpps at 1:1 signaling:data")
	return r, nil
}

// Fig14 regenerates Figure 14: the two-level state table's improvement
// over a single table as a function of the always-on device fraction,
// under low (1%/s) and high (10%/s) churn.
func Fig14(sc Scale) (Result, error) {
	if sc.Fig14Mode == "population" {
		return fig14Population(sc)
	}
	r := Result{
		Figure: "Figure 14",
		Title:  "Two-level state table improvement over single table (%)",
		XLabel: "% always-on devices",
		YLabel: "% improvement",
	}
	total := sc.users(1_000_000)
	fractions := []float64{0.01, 0.10, 0.25, 0.50, 1.00}
	churns := map[string]float64{"low churn (1%/s)": 0.01, "high churn (10%/s)": 0.10}
	for churnName, churn := range churns {
		var pts []sim.Point
		for _, f := range fractions {
			single, err := fig14Point(sc, core.TableSingle, total, f, churn)
			if err != nil {
				return r, err
			}
			gcNow()
			two, err := fig14Point(sc, core.TableTwoLevel, total, f, churn)
			if err != nil {
				return r, err
			}
			gcNow()
			improvement := (two - single) / single * 100
			pts = append(pts, sim.Point{X: f * 100, Y: improvement})
		}
		r.Series = append(r.Series, sim.Series{Name: churnName, Points: pts})
	}
	r.Notes = append(r.Notes,
		"paper shape: ~29%/27% at 1% always-on, 1-3% at 50%, ~0% at 100%; churn effect ≤2%")
	return r, nil
}

// fig14Point measures data-plane throughput for one table mode with the
// given always-on fraction and churn rate.
//
// Traffic follows the paper's workload: it targets the always-on set
// plus the devices currently churned into the active population, so the
// single-table configuration's working set rotates across the whole
// population over time (the cache effect under study) while the
// two-level primary holds only the instantaneously active devices.
// Churn converts the paper's per-second fractions to per-packet debts
// against an assumed ~3 Mpps base rate.
func fig14Point(sc Scale, mode core.TableMode, total int, alwaysOn, churnPerSec float64) (float64, error) {
	activeCount := int(float64(total) * alwaysOn)
	if activeCount < 1 {
		activeCount = 1
	}
	// The churn window: devices considered active at any instant beyond
	// the always-on set (sized like one second of churn, capped).
	window := int(float64(total) * churnPerSec)
	if window > total-activeCount {
		window = total - activeCount
	}
	if window < 0 {
		window = 0
	}
	s := core.NewSlice(core.SliceConfig{
		ID: 1, TableMode: mode, UserHint: total,
		PrimaryHint: activeCount + window + 16,
	})
	pop, err := attachPopulation(s, total, 1)
	if err != nil {
		return 0, err
	}
	// In two-level mode, demote everyone beyond the initial active set
	// (always-on + the first churn window).
	if mode == core.TableTwoLevel {
		for i := activeCount + window; i < total; i++ {
			s.Control().Demote(pop[i].IMSI)
			if i%1024 == 1023 {
				s.Data().SyncUpdates() // keep the update queue bounded
			}
		}
		s.Data().SyncUpdates()
	}

	// The traffic target set: always-on devices plus the rotating churn
	// window. The generator reads this slice by index, so rotating a
	// window entry in place redirects subsequent traffic.
	targets := make([]workload.User, activeCount+window)
	copy(targets, pop[:activeCount+window])
	gen := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s.Config().CoreAddr}, targets)

	churnPool := pop[activeCount:] // devices that rotate through
	nextIn := window               // index into churnPool of the next device to churn in
	slot := 0                      // which window slot rotates next

	batch := make([]*pkt.Buf, 0, 32)
	runtime.GC()
	for w := 0; w < 4096; w += 32 {
		batch = batch[:0]
		for i := 0; i < 32; i++ {
			batch = append(batch, gen.NextUplink())
		}
		s.Data().ProcessUplinkBatch(batch, sim.Now())
		drainRing(s)
	}

	measure := func() float64 {
		processed := 0
		churnDebt := 0.0
		start := time.Now()
		for processed < sc.PacketsPerPoint {
			batch = batch[:0]
			for i := 0; i < 32 && processed+len(batch) < sc.PacketsPerPoint; i++ {
				batch = append(batch, gen.NextUplink())
			}
			s.Data().ProcessUplinkBatch(batch, sim.Now())
			processed += len(batch)
			drainRing(s)
			if churnPerSec > 0 && window > 0 && len(churnPool) > 0 {
				churnDebt += float64(len(batch)) / 3e6 * churnPerSec * float64(total)
				for churnDebt >= 1 {
					out := targets[activeCount+slot]
					in := churnPool[nextIn%len(churnPool)]
					nextIn++
					if mode == core.TableTwoLevel {
						s.Control().Demote(out.IMSI)
						s.Control().Promote(in.IMSI)
					}
					targets[activeCount+slot] = in
					slot = (slot + 1) % window
					churnDebt--
				}
			}
		}
		return mpps(processed, time.Since(start))
	}
	vs := []float64{measure(), measure(), measure()}
	sort.Float64s(vs)
	return vs[1], nil
}

// fig14Population is the population-scaling variant of Figure 14
// (Fig14Mode="population"): throughput of the two-level store at a
// fixed active set as the total population grows, for both state
// layouts. The paper's claim behind the two-level table is that state
// for millions of devices must not tax the per-packet path; this sweep
// checks what the runtime adds to that story — in the pointer layout
// every cold device is a heap object the garbage collector marks and
// an index entry full of pointers it traverses, while the handle
// layout keeps the population in pointer-free index arrays plus dense
// arena slabs the collector skips. Forced collections inside the timed
// window (4 per point, as a steadily-allocating production process
// would see) charge each layout its real GC bill.
func fig14Population(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 14 (population)",
		Title:  "Population scaling at fixed active set: pointer vs handle layout",
		XLabel: "total devices",
		YLabel: "Mpps",
	}
	var pops []int
	for _, p := range []int{10_000, 50_000, 250_000, 1_000_000, 2_000_000} {
		if p <= sc.MaxUsers {
			pops = append(pops, p)
		}
	}
	if len(pops) == 0 {
		pops = []int{sc.MaxUsers}
	}
	layouts := []struct {
		name   string
		layout core.StateLayout
	}{
		{"PEPC pointer layout", core.LayoutPointer},
		{"PEPC handle layout", core.LayoutHandle},
	}
	for _, l := range layouts {
		var pts []sim.Point
		for _, total := range pops {
			v, gcMs, err := fig14PopPoint(sc, l.layout, total)
			if err != nil {
				return r, err
			}
			gcNow()
			pts = append(pts, sim.Point{X: float64(total), Y: v})
			r.Notes = append(r.Notes, fmt.Sprintf("%s @ %s devices: %.3f Mpps, forced-GC pause %.2f ms",
				l.name, sim.FormatQty(float64(total)), v, gcMs))
		}
		r.Series = append(r.Series, sim.Series{Name: l.name, Points: pts})
	}
	if len(r.Series) == 2 && len(r.Series[0].Points) > 1 {
		deg := func(s sim.Series) float64 {
			last := s.Points[len(s.Points)-1].Y
			if last <= 0 {
				return 0
			}
			return s.Points[0].Y / last
		}
		p := r.Series[0].Points
		r.Notes = append(r.Notes, fmt.Sprintf("measured degradation %s→%s devices: pointer %.1fx, handle %.1fx",
			sim.FormatQty(p[0].X), sim.FormatQty(p[len(p)-1].X), deg(r.Series[0]), deg(r.Series[1])))
	}
	r.Notes = append(r.Notes,
		"expected shape: handle layout degrades less than pointer layout from the smallest to the largest population — pointer-free indexes and slab-resident hot state shrink the collector's mark workload (cold contexts stay on the heap in both layouts, so the pause still grows with population)")
	return r, nil
}

// fig14PopPoint measures one population point: a two-level slice in the
// given layout with a fixed 2048-device always-on set and a 1024-slot
// churn window rotating at one promotion/demotion per kilopacket, so
// the signaling work is identical across populations and only the
// resident population varies.
func fig14PopPoint(sc Scale, layout core.StateLayout, total int) (float64, float64, error) {
	act, win := 2048, 1024
	if act > total {
		act = total
	}
	if win > total-act {
		win = total - act
	}
	s := core.NewSlice(core.SliceConfig{
		ID: 1, TableMode: core.TableTwoLevel, StateLayout: layout,
		UserHint: total, PrimaryHint: act + win + 16,
	})
	pop, err := attachPopulation(s, total, 1)
	if err != nil {
		return 0, 0, err
	}
	for i := act + win; i < total; i++ {
		s.Control().Demote(pop[i].IMSI)
		if i%1024 == 1023 {
			s.Data().SyncUpdates()
		}
	}
	s.Data().SyncUpdates()

	targets := make([]workload.User, act+win)
	copy(targets, pop[:act+win])
	gen := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s.Config().CoreAddr}, targets)
	churnPool := pop[act:]
	nextIn := win
	slot := 0

	batch := make([]*pkt.Buf, 0, 32)
	runtime.GC()
	for w := 0; w < 4096; w += 32 {
		batch = batch[:0]
		for i := 0; i < 32; i++ {
			batch = append(batch, gen.NextUplink())
		}
		s.Data().ProcessUplinkBatch(batch, sim.Now())
		drainRing(s)
	}

	gcQuantum := sc.PacketsPerPoint / 4
	if gcQuantum < 1 {
		gcQuantum = 1
	}
	measure := func() (float64, float64) {
		processed := 0
		churnDebt := 0.0
		var gcPause time.Duration
		gcs := 0
		nextGC := gcQuantum
		start := time.Now()
		for processed < sc.PacketsPerPoint {
			batch = batch[:0]
			for i := 0; i < 32 && processed+len(batch) < sc.PacketsPerPoint; i++ {
				batch = append(batch, gen.NextUplink())
			}
			s.Data().ProcessUplinkBatch(batch, sim.Now())
			processed += len(batch)
			drainRing(s)
			if win > 0 && len(churnPool) > 0 {
				churnDebt += float64(len(batch)) / 1024.0
				for churnDebt >= 1 {
					out := targets[act+slot]
					in := churnPool[nextIn%len(churnPool)]
					nextIn++
					s.Control().Demote(out.IMSI)
					s.Control().Promote(in.IMSI)
					targets[act+slot] = in
					slot = (slot + 1) % win
					churnDebt--
				}
			}
			if processed >= nextGC {
				g0 := time.Now()
				runtime.GC()
				gcPause += time.Since(g0)
				gcs++
				nextGC += gcQuantum
			}
		}
		elapsed := time.Since(start)
		pause := 0.0
		if gcs > 0 {
			pause = gcPause.Seconds() * 1000 / float64(gcs)
		}
		return mpps(processed, elapsed), pause
	}
	type run struct{ v, gc float64 }
	var runs []run
	for i := 0; i < 3; i++ {
		v, gc := measure()
		runs = append(runs, run{v, gc})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].v < runs[j].v })
	return runs[1].v, runs[1].gc, nil
}

// Fig15 regenerates Figure 15: the benefit of the stateless-IoT
// customization as the IoT share of devices grows.
func Fig15(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 15",
		Title:  "Benefit of IoT customization (%)",
		XLabel: "% IoT devices",
		YLabel: "% improvement",
	}
	total := sc.users(1_000_000) // paper: 10M
	fractions := []float64{0.05, 0.25, 0.50, 0.75, 1.00}
	var pts []sim.Point
	for _, f := range fractions {
		custom, err := fig15Point(sc, total, f, true)
		if err != nil {
			return r, err
		}
		gcNow()
		plain, err := fig15Point(sc, total, f, false)
		if err != nil {
			return r, err
		}
		gcNow()
		pts = append(pts, sim.Point{X: f * 100, Y: (custom - plain) / plain * 100})
	}
	r.Series = []sim.Series{{Name: "PEPC IoT customization", Points: pts}}
	r.Notes = append(r.Notes,
		"paper shape: ~3% at 5% IoT rising to ~38% at 100% IoT")
	return r, nil
}

// fig15Point measures throughput with an IoT device fraction f, either
// with the stateless-IoT customization (pool TEIDs, no per-user state)
// or without it (IoT devices attached as ordinary users).
func fig15Point(sc Scale, total int, iotFraction float64, customized bool) (float64, error) {
	iotCount := int(float64(total) * iotFraction)
	regularCount := total - iotCount
	cfg := core.SliceConfig{ID: 1, UserHint: total}
	if customized {
		cfg.IoTTEIDBase = 0xE000_0000
		cfg.IoTTEIDCount = uint32(iotCount + 1)
	}
	s := core.NewSlice(cfg)
	var users []workload.User
	if regularCount > 0 {
		pop, err := attachPopulation(s, regularCount, 1)
		if err != nil {
			return 0, err
		}
		users = pop
	}
	var iotUsers []workload.User
	if customized {
		for i := 0; i < iotCount; i++ {
			teid, ok := s.Control().AllocateIoT()
			if !ok {
				return 0, fmt.Errorf("IoT pool exhausted at %d", i)
			}
			iotUsers = append(iotUsers, workload.User{IMSI: uint64(2_000_000 + i), UplinkTEID: teid, UEAddr: 0x63000000 + uint32(i+1)})
		}
	} else if iotCount > 0 {
		pop, err := attachPopulation(s, iotCount, 2_000_000)
		if err != nil {
			return 0, err
		}
		iotUsers = pop
	}
	genRegular := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s.Config().CoreAddr}, orOne(users, iotUsers))
	genIoT := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s.Config().CoreAddr}, orOne(iotUsers, users))

	// Traffic mix proportional to the device mix; all uplink for the
	// IoT-style workload.
	iotPerK := int(iotFraction * 1000)
	batch := make([]*pkt.Buf, 0, 32)
	next := func(pos int) *pkt.Buf {
		if pos%1000 < iotPerK {
			return genIoT.NextUplink()
		}
		return genRegular.NextUplink()
	}
	runtime.GC()
	for w := 0; w < 4096; w += 32 {
		batch = batch[:0]
		for i := 0; i < 32; i++ {
			batch = append(batch, next(w+i))
		}
		s.Data().ProcessUplinkBatch(batch, sim.Now())
		drainRing(s)
	}
	measure := func() float64 {
		processed := 0
		start := time.Now()
		for processed < sc.PacketsPerPoint {
			batch = batch[:0]
			for i := 0; i < 32 && processed+len(batch) < sc.PacketsPerPoint; i++ {
				batch = append(batch, next(processed+len(batch)))
			}
			s.Data().ProcessUplinkBatch(batch, sim.Now())
			processed += len(batch)
			drainRing(s)
		}
		return mpps(processed, time.Since(start))
	}
	vs := []float64{measure(), measure(), measure()}
	sort.Float64s(vs)
	return vs[1], nil
}

func orOne(primary, fallback []workload.User) []workload.User {
	if len(primary) > 0 {
		return primary
	}
	return fallback
}
