package experiments

import (
	"fmt"
	"time"

	"pepc/internal/core"
	"pepc/internal/hdr"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/workload"
)

// migrationRun measures data-plane throughput (and optionally latency)
// while migrations execute at a target per-packet rate. The node steers
// traffic (so migration buffering engages) and the harness drives both
// slices' data planes inline; migrations interleave like signaling
// events, ping-ponging users between the two slices.
func migrationRun(sc Scale, users int, migrationsPerKPackets float64, recordLatency bool) (float64, *hdr.Histogram, error) {
	n := core.NewNode(
		core.SliceConfig{ID: 1, UserHint: users, RecordLatency: recordLatency},
		core.SliceConfig{ID: 2, UserHint: users, RecordLatency: recordLatency},
	)
	pop := make([]workload.User, users)
	where := make([]int, users) // current slice per user
	for i := 0; i < users; i++ {
		res, err := n.AttachUser(0, core.AttachSpec{
			IMSI:         uint64(i + 1),
			ENBAddr:      pkt.IPv4Addr(192, 168, 0, 1),
			DownlinkTEID: 0x0100_0000 | uint32(i+1),
		})
		if err != nil {
			return 0, nil, err
		}
		pop[i] = workload.User{IMSI: uint64(i + 1), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}
	}
	n.Slice(0).Data().SyncUpdates()
	n.Slice(1).Data().SyncUpdates()

	gen := workload.NewTrafficGen(workload.TrafficConfig{}, pop)
	batch := make([]*pkt.Buf, 32)
	total := sc.PacketsPerPoint
	processed := 0
	migDebt := 0.0
	migIdx := 0
	start := time.Now()
	for processed < total {
		// Generate and steer a batch through the node (the demux is
		// where migration buffering lives).
		bn := 32
		if rem := total - processed; rem < bn {
			bn = rem
		}
		// One clock read stamps the generated batch (per-packet reads
		// here were themselves a tail source: the vDSO call cost landed
		// inside the measured span of the last packets of each batch).
		ts := sim.Now()
		for i := 0; i < bn; i++ {
			b := gen.NextUplink()
			if recordLatency {
				b.Meta.TSNanos = ts
			}
			n.SteerUplink(b)
		}
		// Drive both data planes inline, one clock read per dequeued
		// batch. A single read hoisted over the whole drain (as this
		// loop used to do) under-measures exactly the packets that
		// matter: ones buffered mid-migration are dequeued later in
		// wall time than the stale `now` claims, flattening the tail
		// the figure exists to show.
		for sliceIdx := 0; sliceIdx < 2; sliceIdx++ {
			s := n.Slice(sliceIdx)
			for {
				k := s.Uplink.DequeueBatch(batch)
				if k == 0 {
					break
				}
				s.Data().ProcessUplinkBatch(batch[:k], sim.Now())
			}
			drainRing(s)
		}
		processed += bn
		// Interleave migrations at the configured rate.
		migDebt += float64(bn) * migrationsPerKPackets / 1000.0
		for migDebt >= 1 {
			u := migIdx % users
			migIdx++
			from := where[u]
			to := 1 - from
			if err := n.Scheduler().MigrateUser(pop[u].IMSI, from, to); err != nil {
				return 0, nil, fmt.Errorf("migrating user %d: %w", pop[u].IMSI, err)
			}
			where[u] = to
			migDebt--
		}
	}
	elapsed := time.Since(start)
	lat := hdr.New()
	for i := 0; i < 2; i++ {
		lat.Merge(n.Slice(i).Data().LatencyUplink())
		lat.Merge(n.Slice(i).Data().LatencyDownlink())
	}
	return mpps(processed, elapsed), lat, nil
}

// fig8Migration regenerates the paper's Figure 8: the impact of state
// migrations on data-plane throughput. The x axis is migrations per
// second normalized against the measured packet rate, expressed as the
// paper's migrations/second by assuming the measured base throughput.
// Fig8 (figs_header.go) dispatches here for Fig8Mode ""/"paper".
func fig8Migration(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 8",
		Title:  "Impact of state migrations on data plane throughput",
		XLabel: "migrations/s (at measured rate)",
		YLabel: "Mpps",
	}
	users := sc.users(10_000)
	// Baseline without migrations.
	base, _, err := migrationRun(sc, users, 0, false)
	if err != nil {
		return r, err
	}
	// The paper's 10K and 100K migrations/s map onto the measured packet
	// rate: migrations per 1000 packets = rate / (pps/1000).
	basePPS := base * 1e6
	var pts []sim.Point
	pts = append(pts, sim.Point{X: 0, Y: base})
	for _, rate := range []float64{1_000, 10_000, 50_000, 100_000} {
		perK := rate / (basePPS / 1000.0)
		v, _, err := migrationRun(sc, users, perK, false)
		if err != nil {
			return r, err
		}
		pts = append(pts, sim.Point{X: rate, Y: v})
		gcNow()
	}
	r.Series = []sim.Series{{Name: "PEPC", Points: pts}}
	r.Notes = append(r.Notes,
		"paper shape: ~5% drop at 10K migrations/s, ~37% at 100K/s")
	return r, nil
}

// Fig9 regenerates Figure 9: the per-packet latency distribution during
// state migrations. Latency is measured from generation to forwarding;
// packets buffered mid-migration carry the transfer delay.
func Fig9(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 9",
		Title:  "Impact of state migrations on per-packet latency (µs)",
		XLabel: "percentile",
		YLabel: "latency µs",
	}
	users := sc.users(10_000)
	base, baseLat, err := migrationRun(sc, users, 0, true)
	if err != nil {
		return r, err
	}
	basePPS := base * 1e6
	percentiles := []float64{50, 90, 99, 99.9, 100}
	mkSeries := func(name string, h *hdr.Histogram) sim.Series {
		var pts []sim.Point
		for _, p := range percentiles {
			pts = append(pts, sim.Point{X: p, Y: float64(h.Percentile(p)) / 1e3})
		}
		return sim.Series{Name: name, Points: pts}
	}
	r.Series = append(r.Series, mkSeries("no migrations", baseLat))
	for _, rate := range []float64{10_000, 25_000} {
		perK := rate / (basePPS / 1000.0)
		_, lat, err := migrationRun(sc, users, perK, true)
		if err != nil {
			return r, err
		}
		r.Series = append(r.Series, mkSeries(fmt.Sprintf("%s migrations/s", sim.FormatQty(rate)), lat))
		gcNow()
	}
	r.Notes = append(r.Notes,
		"paper shape: median unchanged; worst case +4µs at 25K migrations/s")
	return r, nil
}
