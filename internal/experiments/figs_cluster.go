package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"pepc/internal/cluster"
	"pepc/internal/core"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/workload"
)

// ClusterFig is the multi-node evaluation the paper's §3.3 Demux layer
// implies but never measures: N PEPC nodes behind one Maglev table
// serving a single (up to million-user) population. Three series:
//
//   - aggregate Mpps vs node count (1/2/4), the Fig-7 linearity
//     argument lifted from cores to nodes — every packet pays the full
//     cluster steering cost (classify once, Maglev batch pick, per-node
//     demux) before its slice processes it;
//   - rebalance disruption: the fraction of users moved by one
//     membership change, against Maglev's remap bound;
//   - recovery time vs population after a node kill, via checkpoint
//     restore + update-queue reconcile + scatter to survivors.
//
// Scale.ClusterMode selects the aggregation like Fig7Mode: "parallel"
// runs one closed-loop driver lane per node concurrently, "sum"
// measures each node's lane alone and adds the rates (the single-CPU
// methodology), ""/"auto" picks parallel when GOMAXPROCS can host every
// lane.
func ClusterFig(sc Scale) (Result, error) {
	r := Result{
		Figure: "cluster",
		Title:  "Maglev-sharded multi-node data plane: scaling, rebalance, recovery",
		XLabel: "nodes",
		YLabel: "aggregate Mpps / percent / ms",
	}
	const maxNodes = 4
	totalUsers := sc.users(1_000_000)
	mode := sc.ClusterMode
	if mode == "" || mode == "auto" {
		if runtime.GOMAXPROCS(0) >= maxNodes+1 {
			mode = "parallel"
		} else {
			mode = "sum"
		}
	}

	var agg []sim.Point
	for _, k := range []int{1, 2, 4} {
		vs := make([]float64, 0, 3)
		for rep := 0; rep < 3; rep++ {
			v, err := clusterAggregate(sc, k, totalUsers, mode)
			if err != nil {
				return r, err
			}
			vs = append(vs, v)
			gcNow()
		}
		sort.Float64s(vs)
		agg = append(agg, sim.Point{X: float64(k), Y: vs[1]})
	}
	r.Series = append(r.Series, sim.Series{
		Name:   fmt.Sprintf("PEPC cluster aggregate (%s users)", sim.FormatQty(float64(totalUsers))),
		Points: agg,
	})
	r.Notes = append(r.Notes, fmt.Sprintf("cluster mode: %s (GOMAXPROCS=%d)", mode, runtime.GOMAXPROCS(0)))

	disruption, notes, err := clusterRebalance(sc, totalUsers)
	if err != nil {
		return r, err
	}
	r.Series = append(r.Series, disruption)
	r.Notes = append(r.Notes, notes...)

	recovery, rnotes, err := clusterRecovery(sc, totalUsers)
	if err != nil {
		return r, err
	}
	r.Series = append(r.Series, recovery)
	r.Notes = append(r.Notes, rnotes...)
	r.Notes = append(r.Notes, "expected shape: aggregate Mpps ≥3x from 1 to 4 nodes; moved users bounded by the Maglev remap fraction; recovery time linear in population")
	return r, nil
}

// buildCluster attaches totalUsers across k nodes and returns the
// cluster plus the population partitioned by owning node (balancer
// order).
func buildCluster(k, totalUsers int) (*cluster.Cluster, [][]workload.User, error) {
	c, err := cluster.New(cluster.Config{
		Nodes:    k,
		UserHint: totalUsers/k + 1,
	})
	if err != nil {
		return nil, nil, err
	}
	names := c.Names()
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	pops := make([][]workload.User, len(names))
	for i := 0; i < totalUsers; i++ {
		imsi := uint64(i + 1)
		res, owner, err := c.Attach(core.AttachSpec{
			IMSI: imsi, ENBAddr: 1, DownlinkTEID: 0x0200_0000 | uint32(imsi),
		})
		if err != nil {
			return nil, nil, err
		}
		oi := index[owner]
		pops[oi] = append(pops[oi], workload.User{
			IMSI: imsi, UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr,
		})
	}
	c.SyncAll()
	return c, pops, nil
}

// clusterLane is one node's closed-loop driver: it generates traffic
// for the node's own users, steers it through the full cluster path
// (classify + Maglev pick + per-node wire steer), then runs the node's
// slices inline and recycles buffers. Lanes are share-nothing: each
// owns its generator, steerer and node, so k lanes model k servers.
type clusterLane struct {
	node *core.Node
	st   *cluster.Steerer
	gen  *workload.TrafficGen
	sg   *workload.SignalingGen
}

func newClusterLane(c *cluster.Cluster, name string, pop []workload.User) *clusterLane {
	return &clusterLane{
		node: c.Node(name),
		st:   c.NewSteerer(32, nil),
		gen:  workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: 1, CoreAddr: 2, Burst: 8}, pop),
		sg:   workload.NewSignalingGen(workload.EventAttach, pop),
	}
}

// run drives total packets through the lane with signaling interleaved
// at the Fig-7 rate (2 events per 1000 packets) and returns when done.
func (l *clusterLane) run(total int) {
	const batchSize = 32
	var burst [batchSize]*pkt.Buf
	var scratch [batchSize]*pkt.Buf
	drain := func() {
		for i := 0; i < l.node.NumSlices(); i++ {
			s := l.node.Slice(i)
			for {
				k := s.Uplink.DequeueBatch(scratch[:])
				if k == 0 {
					break
				}
				s.Data().ProcessUplinkBatch(scratch[:k], sim.Now())
			}
			for {
				k := s.Downlink.DequeueBatch(scratch[:])
				if k == 0 {
					break
				}
				s.Data().ProcessDownlinkBatch(scratch[:k], sim.Now())
			}
			drainRing(s)
		}
	}
	processed := 0
	eventDebt := 0.0
	for processed < total {
		n := batchSize
		if rem := total - processed; rem < n {
			n = rem
		}
		for i := 0; i < n; i++ {
			burst[i], _ = l.gen.Next()
		}
		l.st.Steer(burst[:n])
		drain()
		processed += n
		eventDebt += float64(n) * 2 / 1000.0
		for eventDebt >= 1 {
			ev := l.sg.Next()
			if si, ok := l.node.Demux().LookupSliceByIMSI(ev.IMSI); ok {
				l.node.Slice(si).Control().AttachEvent(ev.IMSI)
			}
			eventDebt--
		}
	}
	drain()
}

// clusterAggregate measures aggregate throughput for a k-node cluster.
func clusterAggregate(sc Scale, k, totalUsers int, mode string) (float64, error) {
	c, pops, err := buildCluster(k, totalUsers)
	if err != nil {
		return 0, err
	}
	names := c.Names()
	lanes := make([]*clusterLane, k)
	for i := range lanes {
		lanes[i] = newClusterLane(c, names[i], pops[i])
	}
	perLane := sc.PacketsPerPoint / k
	warm := perLane / 10
	if warm > 4096 {
		warm = 4096
	}
	runtime.GC()
	if mode == "parallel" {
		for _, l := range lanes {
			l.run(warm)
		}
		var wg sync.WaitGroup
		start := time.Now()
		for _, l := range lanes {
			wg.Add(1)
			go func(l *clusterLane) {
				defer wg.Done()
				l.run(perLane)
			}(l)
		}
		wg.Wait()
		return mpps(perLane*k, time.Since(start)), nil
	}
	// sum: each lane measured alone; the aggregate is the sum of rates.
	total := 0.0
	for _, l := range lanes {
		l.run(warm)
		start := time.Now()
		l.run(perLane)
		total += mpps(perLane, time.Since(start))
	}
	return total, nil
}

// clusterRebalance measures membership-change disruption: the percent
// of the population moved by one AddNode (3→4) and one RemoveNode
// (4→3), against Maglev's table remap fraction.
func clusterRebalance(sc Scale, totalUsers int) (sim.Series, []string, error) {
	s := sim.Series{Name: "rebalance moved users (% of population)"}
	users := totalUsers / 4
	if users < 1000 {
		users = 1000
	}
	c, _, err := buildCluster(3, users)
	if err != nil {
		return s, nil, err
	}
	added, addRep, err := c.AddNode()
	if err != nil {
		return s, nil, err
	}
	addPct := float64(addRep.Moved) / float64(users) * 100
	s.Points = append(s.Points, sim.Point{X: 1, Y: addPct})

	remRep, err := c.RemoveNode(added)
	if err != nil {
		return s, nil, err
	}
	remPct := float64(remRep.Moved) / float64(users) * 100
	s.Points = append(s.Points, sim.Point{X: 2, Y: remPct})

	addBound := 2.0 * float64(addRep.RemappedEntries) / float64(addRep.TableSize) * 100
	notes := []string{
		fmt.Sprintf("rebalance (x=1 add 3→4, x=2 remove 4→3) over %s users: add moved %.1f%% (table remapped %.1f%%, Maglev bound ~2·M/N = 50%% of 1/4), remove moved %.1f%%; %d failed transfers",
			sim.FormatQty(float64(users)), addPct,
			float64(addRep.RemappedEntries)/float64(addRep.TableSize)*100, remPct,
			addRep.Failed+remRep.Failed),
	}
	if addRep.Failed+remRep.Failed > 0 {
		return s, notes, fmt.Errorf("experiments: cluster rebalance lost %d users", addRep.Failed+remRep.Failed)
	}
	// The moved fraction must track the remapped-entry fraction (the
	// Maglev guarantee), not the population size.
	if addPct > addBound+5 {
		return s, notes, fmt.Errorf("experiments: add moved %.1f%% of users, Maglev remap bound %.1f%%", addPct, addBound)
	}
	return s, notes, nil
}

// clusterRecovery measures node-failure recovery time against
// population: checkpoint, kill one of two nodes, rebuild its slices
// from the checkpoints and scatter the users to the survivor.
func clusterRecovery(sc Scale, totalUsers int) (sim.Series, []string, error) {
	s := sim.Series{Name: "node recovery time (ms)"}
	var notes []string
	for _, frac := range []int{8, 4, 2} {
		users := totalUsers / frac
		if users < 1000 {
			users = 1000
		}
		c, _, err := buildCluster(2, users)
		if err != nil {
			return s, nil, err
		}
		if _, err := c.CheckpointAll(); err != nil {
			return s, nil, err
		}
		victim := c.Names()[0]
		if err := c.KillNode(victim); err != nil {
			return s, nil, err
		}
		start := time.Now()
		rep, err := c.RecoverNode(victim)
		if err != nil {
			return s, nil, err
		}
		elapsed := time.Since(start)
		if rep.ImportFailed > 0 || rep.Orphans > 0 {
			return s, nil, fmt.Errorf("experiments: recovery lost users: %+v", rep)
		}
		if got := c.Users(); got != users {
			return s, nil, fmt.Errorf("experiments: population after recovery %d, want %d", got, users)
		}
		s.Points = append(s.Points, sim.Point{X: float64(users), Y: float64(elapsed.Milliseconds())})
		notes = append(notes, fmt.Sprintf("recovery of %s users' node: %d restored + %d replayed scattered in %.0fms (%.2fµs/user)",
			sim.FormatQty(float64(users)), rep.Restored, rep.Replayed,
			float64(elapsed.Milliseconds()), float64(elapsed.Microseconds())/float64(rep.UsersScattered+1)))
		gcNow()
	}
	return s, notes, nil
}
