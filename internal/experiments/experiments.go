// Package experiments contains the harness that regenerates every table
// and figure of the paper's evaluation (§5–§7). Each FigN function
// returns a Result with the same series the paper plots; cmd/pepcbench
// prints them and bench_test.go wraps them as Go benchmarks.
//
// Measurement methodology on shared-CPU hosts (see DESIGN.md): runs are
// closed-loop and inline — the harness generates a batch, runs the
// pipeline to completion, and recycles buffers — so per-core throughput
// is work-per-packet, independent of scheduler noise. Signaling work is
// interleaved into the same loop for every system (the paper's
// industrial baselines process signaling against the same state tables
// as data; PEPC's far cheaper consolidated-state events are exactly the
// effect under test). Multi-core figures measure share-nothing shards
// independently and sum them, which is the paper's own linearity
// argument for Fig 7.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"pepc/internal/core"
	"pepc/internal/legacy"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/workload"
)

// Result is one regenerated table or figure.
type Result struct {
	Figure string
	Title  string
	XLabel string
	YLabel string
	Series []sim.Series
	Notes  []string
}

// Render formats the result as the harness's text output.
func (r Result) Render() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.Figure, r.Title)
	out += sim.Table(r.XLabel, r.YLabel, r.Series...)
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Scale bounds experiment cost so the full suite runs in reasonable time
// on a development machine while keeping the paper's parameters reachable.
type Scale struct {
	// MaxUsers caps population sweeps (memory bound: each user context
	// is ~600B).
	MaxUsers int
	// PacketsPerPoint is the measured packet count per data point.
	PacketsPerPoint int
	// EventsPerPoint is the measured signaling event count per
	// control-plane data point.
	EventsPerPoint int
	// Fig7Mode selects how Figure 7 aggregates across data cores:
	// "parallel" runs the shards as genuinely concurrent workers behind
	// the RSS-style spray (core.ShardedData), "sum" measures each
	// share-nothing shard alone and adds the rates (the single-CPU
	// methodology), and ""/"auto" picks parallel when GOMAXPROCS can
	// host all workers plus the driver.
	Fig7Mode string
	// Fig5Mode/Fig6Mode select how PEPC executes the interleaved
	// signaling in those sweeps: ""/"batched" (default) enqueues events
	// on the control ring and drains them as grouped procedure batches
	// (the control fast path), "inline" calls the per-procedure entry
	// points directly (the pre-batching behaviour, kept for comparison).
	Fig5Mode string
	Fig6Mode string
	// Fig8Mode selects the Figure 8 experiment: ""/"paper" reproduces
	// the paper's migration-impact sweep, "pktsize" runs the
	// header-engine packet-size sweep comparing template-stamped vs
	// field-serialized downlink encap and single-parse vs double-parse
	// uplink demux across packet sizes (DESIGN.md §4.11).
	Fig8Mode string
	// Fig14Mode selects the Figure 14 sweep: ""/"paper" reproduces the
	// paper's always-on-fraction sweep, "population" runs the
	// population-scaling sweep comparing the pointer and handle state
	// layouts at a fixed active set as the total population grows
	// (DESIGN.md §4.10).
	Fig14Mode string
	// SockioQMode selects how the sockio experiment's multi-queue sweep
	// aggregates across its share-nothing queue lanes: "parallel" runs
	// every lane's rx loop and traffic source concurrently over one
	// SO_REUSEPORT group, "sum" measures each lane alone and adds the
	// rates (the single-CPU methodology, as Fig7Mode "sum"), and
	// ""/"auto" picks parallel when GOMAXPROCS can host every lane's
	// node loop plus its source.
	SockioQMode string
	// ClusterMode selects how the "cluster" experiment aggregates its
	// per-node driver lanes: "parallel" runs one closed-loop lane per
	// node concurrently, "sum" measures each lane alone and adds the
	// rates (the single-CPU methodology, as Fig7Mode "sum"), and
	// ""/"auto" picks parallel when GOMAXPROCS can host every lane.
	ClusterMode string
	// FaultSeed seeds the "faults" experiment's deterministic injector
	// (0 means seed 1); the same seed reproduces the same fault stream.
	FaultSeed uint64
	// FaultEpochs is the number of chaos-soak epochs the "faults"
	// experiment runs (0 means 3).
	FaultEpochs int
}

// Quick is the default scale used by `go test -bench` and CI: every
// figure's shape is visible in seconds.
var Quick = Scale{
	MaxUsers:        250_000,
	PacketsPerPoint: 200_000,
	EventsPerPoint:  2_000,
}

// Full approximates the paper's populations (needs several GB of memory
// and minutes of runtime).
var Full = Scale{
	MaxUsers:        3_000_000,
	PacketsPerPoint: 2_000_000,
	EventsPerPoint:  20_000,
}

func (s Scale) users(want int) int {
	if want > s.MaxUsers {
		return s.MaxUsers
	}
	return want
}

// mpps converts (packets, elapsed) to millions of packets per second.
func mpps(packets int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(packets) / elapsed.Seconds() / 1e6
}

// attachPopulation attaches n users to a slice and returns their
// generator coordinates. Data-plane indexes are synced afterwards.
func attachPopulation(s *core.Slice, n int, baseIMSI uint64) ([]workload.User, error) {
	users := make([]workload.User, n)
	for i := 0; i < n; i++ {
		res, err := s.Control().Attach(core.AttachSpec{
			IMSI:         baseIMSI + uint64(i),
			ENBAddr:      pkt.IPv4Addr(192, 168, 0, 1),
			DownlinkTEID: 0x0100_0000 | uint32(i+1),
			ECGI:         1, TAI: 1,
		})
		if err != nil {
			return nil, err
		}
		users[i] = workload.User{IMSI: baseIMSI + uint64(i), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}
		// Keep the update queue bounded during bulk attach.
		if i%1024 == 1023 {
			s.Data().SyncUpdates()
		}
	}
	s.Data().SyncUpdates()
	return users, nil
}

// attachLegacyPopulation attaches n users to a baseline EPC.
func attachLegacyPopulation(e *legacy.EPC, n int, baseIMSI uint64) ([]workload.User, error) {
	users := make([]workload.User, n)
	for i := 0; i < n; i++ {
		teid, ip, err := e.Attach(baseIMSI+uint64(i), 0x0100_0000|uint32(i+1), pkt.IPv4Addr(192, 168, 0, 1))
		if err != nil {
			return nil, err
		}
		users[i] = workload.User{IMSI: baseIMSI + uint64(i), UplinkTEID: teid, UEAddr: ip}
	}
	return users, nil
}

// pepcRun measures PEPC data-plane throughput: total packets in the
// configured UL:DL mix, with signaling events (synthetic attach updates)
// interleaved at eventsPerKPackets per 1000 packets, executed inline one
// procedure at a time. It returns Mpps over the measured loop.
func pepcRun(s *core.Slice, gen *workload.TrafficGen, total, eventsPerKPackets int, sg *workload.SignalingGen) float64 {
	return pepcRunSig(s, gen, total, eventsPerKPackets, sg, false)
}

// pepcRunBatched is pepcRun with the interleaved signaling submitted to
// the control plane's event ring and drained as grouped procedure
// batches once per driver iteration — the control fast path Figs 5/6
// measure by default.
func pepcRunBatched(s *core.Slice, gen *workload.TrafficGen, total, eventsPerKPackets int, sg *workload.SignalingGen) float64 {
	return pepcRunSig(s, gen, total, eventsPerKPackets, sg, true)
}

func pepcRunSig(s *core.Slice, gen *workload.TrafficGen, total, eventsPerKPackets int, sg *workload.SignalingGen, batched bool) float64 {
	const batchSize = 32
	up := make([]*pkt.Buf, 0, batchSize)
	down := make([]*pkt.Buf, 0, batchSize)
	// Collect setup garbage (bulk attach allocates the population) so a
	// GC pause does not land inside the timed window, then warm caches,
	// pools and branch predictors so the first-measured system is not
	// penalized.
	runtime.GC()
	warm := total / 10
	if warm > 4096 {
		warm = 4096
	}
	for w := 0; w < warm; w += batchSize {
		up = up[:0]
		for i := 0; i < batchSize; i++ {
			up = append(up, gen.NextUplink())
		}
		s.Data().ProcessUplinkBatch(up, sim.Now())
		drainRing(s)
	}
	processed := 0
	eventDebt := 0.0
	eventRate := float64(eventsPerKPackets) / 1000.0
	start := time.Now()
	for processed < total {
		up = up[:0]
		down = down[:0]
		for i := 0; i < batchSize && processed+len(up)+len(down) < total; i++ {
			b, isUp := gen.Next()
			if isUp {
				up = append(up, b)
			} else {
				down = append(down, b)
			}
		}
		now := sim.Now()
		if len(up) > 0 {
			s.Data().ProcessUplinkBatch(up, now)
		}
		if len(down) > 0 {
			s.Data().ProcessDownlinkBatch(down, now)
		}
		n := len(up) + len(down)
		processed += n
		// Signaling interleave.
		if sg != nil && eventRate > 0 {
			eventDebt += float64(n) * eventRate
			for eventDebt >= 1 {
				ev := sg.Next()
				switch ev.Kind {
				case workload.EventS1Handover:
					addr, teid, ecgi := sg.NextHandoverTarget()
					if batched {
						s.Control().EnqueueSignal(core.SigEvent{
							Kind: core.SigS1Handover, IMSI: ev.IMSI,
							ENBAddr: addr, DownlinkTEID: teid, ECGI: ecgi,
						})
					} else {
						s.Control().S1Handover(ev.IMSI, addr, teid, ecgi)
					}
				default:
					if batched {
						s.Control().EnqueueSignal(core.SigEvent{Kind: core.SigAttachEvent, IMSI: ev.IMSI})
					} else {
						s.Control().AttachEvent(ev.IMSI)
					}
				}
				eventDebt--
			}
			if batched {
				for s.Control().DrainSignaling(0) > 0 {
				}
			}
		}
		drainRing(s)
	}
	return mpps(processed, time.Since(start))
}

// legacyRun is pepcRun for the baseline EPC.
func legacyRun(e *legacy.EPC, gen *workload.TrafficGen, total, eventsPerKPackets int, sg *workload.SignalingGen) float64 {
	const batchSize = 32
	up := make([]*pkt.Buf, 0, batchSize)
	down := make([]*pkt.Buf, 0, batchSize)
	e.Egress = func(b *pkt.Buf) { b.Free() }
	runtime.GC()
	warm := total / 10
	if warm > 4096 {
		warm = 4096
	}
	for w := 0; w < warm; w += batchSize {
		up = up[:0]
		for i := 0; i < batchSize; i++ {
			up = append(up, gen.NextUplink())
		}
		e.ProcessUplinkBatch(up, 0)
	}
	processed := 0
	eventDebt := 0.0
	eventRate := float64(eventsPerKPackets) / 1000.0
	start := time.Now()
	for processed < total {
		up = up[:0]
		down = down[:0]
		for i := 0; i < batchSize && processed+len(up)+len(down) < total; i++ {
			b, isUp := gen.Next()
			if isUp {
				up = append(up, b)
			} else {
				down = append(down, b)
			}
		}
		if len(up) > 0 {
			e.ProcessUplinkBatch(up, 0)
		}
		if len(down) > 0 {
			e.ProcessDownlinkBatch(down, 0)
		}
		n := len(up) + len(down)
		processed += n
		if sg != nil && eventRate > 0 {
			eventDebt += float64(n) * eventRate
			for eventDebt >= 1 {
				ev := sg.Next()
				switch ev.Kind {
				case workload.EventS1Handover:
					addr, teid, _ := sg.NextHandoverTarget()
					e.S1Handover(ev.IMSI, teid, addr)
				default:
					e.AttachEvent(ev.IMSI)
				}
				eventDebt--
			}
		}
	}
	return mpps(processed, time.Since(start))
}

func drainRing(s *core.Slice) {
	for {
		b, ok := s.Egress.Dequeue()
		if !ok {
			return
		}
		b.Free()
	}
}

// ratioEvents converts a signaling:data ratio of 1:n to events per 1000
// packets.
func ratioEvents(n int) int {
	if n <= 0 {
		return 0
	}
	e := 1000 / n
	if e < 1 {
		e = 1
	}
	return e
}

// gcNow forces a collection between points so one sweep's garbage does
// not tax the next measurement.
func gcNow() { runtime.GC() }
