package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"pepc/internal/core"
	"pepc/internal/legacy"
	"pepc/internal/sim"
	"pepc/internal/workload"
)

// Fig4 regenerates Figure 4: data-plane throughput comparison between
// PEPC, Industrial#1, Industrial#2, OpenAirInterface and OpenEPC under
// the paper's configurations (250K users + 10K attach/s for PEPC and
// Industrial#1; 292K users + 3K events/s for Industrial#2; a single user
// for OAI/OpenEPC).
func Fig4(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 4",
		Title:  "Data plane performance comparison (Mpps/core)",
		XLabel: "system",
		YLabel: "Mpps per core",
	}
	// The 10K attach/s against the paper's data rate is ~1:500
	// signaling:data; express it per 1000 packets.
	const pepcEvents = 2 // 1:500

	// PEPC @ 250K users.
	{
		users := sc.users(250_000)
		s := core.NewSlice(core.SliceConfig{ID: 1, UserHint: users})
		pop, err := attachPopulation(s, users, 1_000_000)
		if err != nil {
			return r, err
		}
		gen := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s.Config().CoreAddr}, pop)
		sg := workload.NewSignalingGen(workload.EventAttach, pop)
		v := pepcRun(s, gen, sc.PacketsPerPoint, pepcEvents, sg)
		r.Series = append(r.Series, sim.Series{Name: "PEPC", Points: []sim.Point{{X: 1, Y: v}}})
	}
	// Legacy presets.
	for i, preset := range []legacy.Preset{legacy.Industrial1, legacy.Industrial2, legacy.OAI, legacy.OpenEPC} {
		users := sc.users(250_000)
		events := pepcEvents
		switch preset {
		case legacy.Industrial2:
			users = sc.users(292_000)
			events = 1 // 3K events/s against their data rate
		case legacy.OAI, legacy.OpenEPC:
			users = 1
			events = 0
		}
		e := legacy.New(legacy.Config{Preset: preset, UserHint: users})
		pop, err := attachLegacyPopulation(e, users, 1)
		if err != nil {
			return r, err
		}
		gen := workload.NewTrafficGen(workload.TrafficConfig{}, pop)
		sg := workload.NewSignalingGen(workload.EventAttach, pop)
		total := sc.PacketsPerPoint
		if preset == legacy.OAI || preset == legacy.OpenEPC {
			total = sc.PacketsPerPoint / 10 // kernel path is slow; same statistics
		}
		v := legacyRun(e, gen, total, events, sg)
		r.Series = append(r.Series, sim.Series{Name: preset.String(), Points: []sim.Point{{X: float64(i + 2), Y: v}}})
		gcNow()
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("populations capped at %d users by scale", sc.MaxUsers),
		"paper shape: PEPC > 3x Industrial#2, ~6x Industrial#1, >10x OAI/OpenEPC")
	return r, nil
}

// Fig5 regenerates Figure 5: data-plane throughput as the user population
// grows, for PEPC and Industrial#1 (10K attach/s interleaved) and
// Industrial#2 reference points (no signaling).
func Fig5(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 5",
		Title:  "Data plane performance with number of users",
		XLabel: "users",
		YLabel: "Mpps per core",
	}
	populations := []int{100_000, 250_000, 500_000, 1_000_000, 2_000_000, 3_000_000}
	if populations[0] > sc.MaxUsers {
		// Scaled-down sweep preserving the shape at small scales.
		populations = []int{sc.MaxUsers / 10, sc.MaxUsers / 4, sc.MaxUsers / 2, sc.MaxUsers}
	}
	pepcSig := pepcRunBatched
	sigMode := "batched"
	if sc.Fig5Mode == "inline" {
		pepcSig = pepcRun
		sigMode = "inline"
	}
	var pepcPts, ind1Pts []sim.Point
	for _, want := range populations {
		if want > sc.MaxUsers || want < 1 {
			continue
		}
		// PEPC.
		{
			s := core.NewSlice(core.SliceConfig{ID: 1, UserHint: want})
			pop, err := attachPopulation(s, want, 1_000_000)
			if err != nil {
				return r, err
			}
			gen := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s.Config().CoreAddr}, pop)
			sg := workload.NewSignalingGen(workload.EventAttach, pop)
			v := pepcSig(s, gen, sc.PacketsPerPoint, 2 /* 10K attach/s : ~5Mpps */, sg)
			pepcPts = append(pepcPts, sim.Point{X: float64(want), Y: v})
		}
		gcNow()
		// Industrial#1.
		{
			e := legacy.New(legacy.Config{Preset: legacy.Industrial1, UserHint: want})
			pop, err := attachLegacyPopulation(e, want, 1)
			if err != nil {
				return r, err
			}
			gen := workload.NewTrafficGen(workload.TrafficConfig{}, pop)
			sg := workload.NewSignalingGen(workload.EventAttach, pop)
			v := legacyRun(e, gen, sc.PacketsPerPoint, 10 /* same 10K attach/s against ~1Mpps */, sg)
			ind1Pts = append(ind1Pts, sim.Point{X: float64(want), Y: v})
		}
		gcNow()
	}
	// Industrial#2 reference points from [37]: 128K and 292K users, no
	// signaling.
	var ind2Pts []sim.Point
	for _, want := range []int{128_000, 292_000} {
		n := sc.users(want)
		e := legacy.New(legacy.Config{Preset: legacy.Industrial2, UserHint: n})
		pop, err := attachLegacyPopulation(e, n, 1)
		if err != nil {
			return r, err
		}
		gen := workload.NewTrafficGen(workload.TrafficConfig{UplinkRatio: 3, DownlinkRatio: 1}, pop)
		v := legacyRun(e, gen, sc.PacketsPerPoint, 0, nil)
		ind2Pts = append(ind2Pts, sim.Point{X: float64(n), Y: v})
		gcNow()
	}
	r.Series = []sim.Series{
		{Name: "PEPC", Points: pepcPts},
		{Name: "Industrial#1", Points: ind1Pts},
		{Name: "Industrial#2", Points: ind2Pts},
	}
	r.Notes = append(r.Notes,
		"paper shape: PEPC sustains throughput to millions of users; Industrial#1 collapses >90% by 1M",
		fmt.Sprintf("population sweep capped at %d users by scale/memory", sc.MaxUsers),
		fmt.Sprintf("PEPC signaling mode: %s", sigMode))
	return r, nil
}

// Fig6 regenerates Figure 6: PEPC data-plane throughput against the
// signaling:data ratio for three population sizes, with the Industrial#1
// reference behaviour.
func Fig6(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 6",
		Title:  "Data plane performance vs signaling/data ratio",
		XLabel: "signaling:data (1:N)",
		YLabel: "Mpps per core",
	}
	ratios := []int{10000, 1000, 100, 10, 1} // 1:N
	pops := []int{1, 10_000, 1_000_000}
	pepcSig := pepcRunBatched
	sigMode := "batched"
	if sc.Fig6Mode == "inline" {
		pepcSig = pepcRun
		sigMode = "inline"
	}
	for _, p := range pops {
		n := sc.users(p)
		if n < 1 {
			n = 1
		}
		s := core.NewSlice(core.SliceConfig{ID: 1, UserHint: n})
		pop, err := attachPopulation(s, n, 5_000_000)
		if err != nil {
			return r, err
		}
		gen := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s.Config().CoreAddr}, pop)
		sg := workload.NewSignalingGen(workload.EventAttach, pop)
		var pts []sim.Point
		for _, ratio := range ratios {
			v := pepcSig(s, gen, sc.PacketsPerPoint, ratioEvents(ratio), sg)
			pts = append(pts, sim.Point{X: float64(ratio), Y: v})
		}
		r.Series = append(r.Series, sim.Series{Name: fmt.Sprintf("PEPC %s users", sim.FormatQty(float64(n))), Points: pts})
		gcNow()
	}
	// Industrial#1 under the same ratio sweep (collapses long before 1:1).
	{
		n := sc.users(250_000)
		e := legacy.New(legacy.Config{Preset: legacy.Industrial1, UserHint: n})
		pop, err := attachLegacyPopulation(e, n, 1)
		if err != nil {
			return r, err
		}
		gen := workload.NewTrafficGen(workload.TrafficConfig{}, pop)
		sg := workload.NewSignalingGen(workload.EventAttach, pop)
		var pts []sim.Point
		for _, ratio := range ratios {
			total := sc.PacketsPerPoint
			if ratio <= 10 {
				total = sc.PacketsPerPoint / 10 // the point is the collapse; cap runtime
			}
			v := legacyRun(e, gen, total, ratioEvents(ratio), sg)
			pts = append(pts, sim.Point{X: float64(ratio), Y: v})
		}
		r.Series = append(r.Series, sim.Series{Name: "Industrial#1", Points: pts})
	}
	r.Notes = append(r.Notes,
		"paper shape: PEPC ~7 Mpps at 1:10 and 2.6 Mpps at 1:1; Industrial#1 near 0 beyond 1:100",
		fmt.Sprintf("PEPC signaling mode: %s", sigMode))
	return r, nil
}

// Fig7 regenerates Figure 7: aggregate data-plane throughput with the
// number of data cores. Two modes (Scale.Fig7Mode): "parallel" runs the
// share-nothing shards as genuinely concurrent data goroutines behind
// core.ShardedData's RSS-style spray; "sum" measures each shard
// independently and adds the rates — the same argument the paper itself
// makes for linear scaling, and the only honest option on a single-CPU
// host (see DESIGN.md). "auto" (default) picks parallel when GOMAXPROCS
// can host every worker plus the spraying driver.
func Fig7(sc Scale) (Result, error) {
	r := Result{
		Figure: "Figure 7",
		Title:  "Data plane performance with number of cores (aggregate)",
		XLabel: "data cores",
		YLabel: "aggregate Mpps",
	}
	const maxCores = 4
	totalUsers := sc.users(1_000_000) // paper: 10M across 4 cores
	perCore := totalUsers / maxCores
	mode := sc.Fig7Mode
	if mode == "" || mode == "auto" {
		if runtime.GOMAXPROCS(0) >= maxCores+1 {
			mode = "parallel"
		} else {
			mode = "sum"
		}
	}
	var pts []sim.Point
	if mode == "parallel" {
		for k := 1; k <= maxCores; k++ {
			vs := make([]float64, 0, 3)
			for rep := 0; rep < 3; rep++ {
				v, err := fig7Parallel(sc, k, perCore)
				if err != nil {
					return r, err
				}
				vs = append(vs, v)
				gcNow()
			}
			sort.Float64s(vs)
			pts = append(pts, sim.Point{X: float64(k), Y: vs[1]})
		}
		r.Notes = append(r.Notes,
			fmt.Sprintf("parallel mode: k concurrent data workers behind an RSS-style spray (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)))
	} else {
		// Measure each shard (median of three runs); aggregate for k
		// cores is the sum of the first k shard rates.
		shardRates := make([]float64, maxCores)
		for i := 0; i < maxCores; i++ {
			s := core.NewSlice(core.SliceConfig{ID: i + 1, UserHint: perCore})
			pop, err := attachPopulation(s, perCore, uint64(10_000_000*(i+1)))
			if err != nil {
				return r, err
			}
			gen := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s.Config().CoreAddr}, pop)
			sg := workload.NewSignalingGen(workload.EventAttach, pop)
			vs := []float64{
				pepcRun(s, gen, sc.PacketsPerPoint, 2, sg),
				pepcRun(s, gen, sc.PacketsPerPoint, 2, sg),
				pepcRun(s, gen, sc.PacketsPerPoint, 2, sg),
			}
			sort.Float64s(vs)
			shardRates[i] = vs[1]
			gcNow()
		}
		sum := 0.0
		for k := 1; k <= maxCores; k++ {
			sum += shardRates[k-1]
			pts = append(pts, sim.Point{X: float64(k), Y: sum})
		}
		r.Notes = append(r.Notes,
			"share-nothing shards measured independently and summed (single-CPU host)")
	}
	r.Series = []sim.Series{{Name: fmt.Sprintf("PEPC (%s users, 100K events)", sim.FormatQty(float64(totalUsers))), Points: pts}}
	r.Notes = append(r.Notes, "paper shape: linear scaling to 14 Mpps at 4 cores")
	return r, nil
}

// fig7Parallel measures aggregate throughput over k genuinely concurrent
// data workers: one slice per worker, an interleaved population so
// round-robin traffic alternates shards packet by packet, and a single
// driver goroutine spraying through core.ShardedData with backpressure
// (full spray rings stall the driver, they never drop). Signaling events
// are interleaved at the same 2-per-1000-packets rate as the sum mode,
// issued from the driver against the owning slice's control plane — the
// control/data concurrency PEPC's lock split is designed for.
func fig7Parallel(sc Scale, k, perCore int) (float64, error) {
	slices := make([]*core.Slice, k)
	pops := make([][]workload.User, k)
	for i := 0; i < k; i++ {
		s := core.NewSlice(core.SliceConfig{ID: i + 1, UserHint: perCore})
		pop, err := attachPopulation(s, perCore, uint64(10_000_000*(i+1)))
		if err != nil {
			return 0, err
		}
		slices[i] = s
		pops[i] = pop
	}
	users := make([]workload.User, 0, k*perCore)
	for j := 0; j < perCore; j++ {
		for i := 0; i < k; i++ {
			users = append(users, pops[i][j])
		}
	}
	sd, err := core.NewShardedData(slices, 0)
	if err != nil {
		return 0, err
	}
	gen := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: slices[0].Config().CoreAddr}, users)
	sg := workload.NewSignalingGen(workload.EventAttach, users)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { sd.Run(stop); close(done) }()
	defer func() {
		close(stop)
		<-done
		sd.DrainEgress()
	}()

	spray := func(n int) {
		for i := 0; i < n; i++ {
			b, isUp := gen.Next()
			if isUp {
				for !sd.SprayUplink(b) {
					sd.DrainEgress()
					runtime.Gosched()
				}
			} else {
				for !sd.SprayDownlink(b) {
					sd.DrainEgress()
					runtime.Gosched()
				}
			}
		}
	}
	settle := func(target uint64) {
		for sd.Terminal() < target {
			sd.DrainEgress()
			runtime.Gosched()
		}
	}

	runtime.GC()
	warm := sc.PacketsPerPoint / 10
	if warm > 4096 {
		warm = 4096
	}
	spray(warm)
	settle(uint64(warm))

	total := sc.PacketsPerPoint
	base := sd.Terminal()
	const eventsPerK = 2
	eventDebt := 0.0
	sprayed := 0
	start := time.Now()
	for sprayed < total {
		n := 32
		if rem := total - sprayed; rem < n {
			n = rem
		}
		spray(n)
		sprayed += n
		eventDebt += float64(n) * eventsPerK / 1000.0
		for eventDebt >= 1 {
			ev := sg.Next()
			owner := int(ev.IMSI/10_000_000) - 1
			if owner >= 0 && owner < k {
				slices[owner].Control().AttachEvent(ev.IMSI)
			}
			eventDebt--
		}
		sd.DrainEgress()
	}
	settle(base + uint64(total))
	elapsed := time.Since(start)
	return mpps(total, elapsed), nil
}
