package experiments

import (
	"bytes"
	"fmt"
	"time"

	"pepc/internal/bpf"
	"pepc/internal/core"
	"pepc/internal/fault"
	"pepc/internal/hss"
	"pepc/internal/pcef"
	"pepc/internal/pcrf"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
	"pepc/internal/workload"
)

// This file implements the robustness evaluation (DESIGN.md §4.12) the
// paper's §8 failure discussion motivates but does not measure: a PCRF
// outage sweep (how long a backend can be dark before signaling outcome
// degrades, and how fully the control thread repairs afterwards) and a
// chaos soak that churns attach/detach/handover/migration and
// crash-recovery cycles under randomized injected faults while checking
// the slice's structural invariants every epoch.

// soakPolicy is the deadline/retry budget faults experiments run the
// Diameter proxy under: worst case per round trip is
// Deadline*(MaxRetries+1) plus backoff, ~5ms.
var soakPolicy = core.CallPolicy{
	Deadline:         2 * time.Millisecond,
	MaxRetries:       1,
	Backoff:          100 * time.Microsecond,
	BackoffMax:       time.Millisecond,
	BreakerThreshold: 2,
	BreakerCooldown:  5 * time.Millisecond,
}

// soakDrainBudget bounds any single DrainSignaling call during a fault
// epoch: the per-procedure worst case under soakPolicy with CI slack.
const soakDrainBudget = 250 * time.Millisecond

func soakRules() []pcef.Rule {
	return []pcef.Rule{{
		ID: 1, Precedence: 1, Action: pcef.ActionDrop,
		Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP, DstPortLo: 25, DstPortHi: 25},
	}}
}

// Faults regenerates the robustness table: attach outcome vs PCRF
// outage duration, followed by a chaos soak. Registered as "faults".
func Faults(sc Scale) (Result, error) {
	durations := []int{0, 2, 5, 10, 20}
	degraded := sim.Series{Name: "degraded_attach_%"}
	repaired := sim.Series{Name: "repaired_%"}
	shorted := sim.Series{Name: "gx_short_circuits"}

	users := sc.users(400)
	for _, ms := range durations {
		d, r, s, err := outagePoint(ms, users)
		if err != nil {
			return Result{}, err
		}
		degraded.Points = append(degraded.Points, sim.Point{X: float64(ms), Y: d})
		repaired.Points = append(repaired.Points, sim.Point{X: float64(ms), Y: r})
		shorted.Points = append(shorted.Points, sim.Point{X: float64(ms), Y: float64(s)})
		gcNow()
	}

	epochs := sc.FaultEpochs
	if epochs <= 0 {
		epochs = 3
	}
	seed := sc.FaultSeed
	if seed == 0 {
		seed = 1
	}
	stats, violations := runChaosSoak(seed, epochs, sc.users(256))
	notes := []string{
		fmt.Sprintf("attaches during outage complete degraded (default bearer) and are repaired by Maintain once the breaker closes; budget per Gx round trip %v", soakPolicy.Deadline*time.Duration(soakPolicy.MaxRetries+1)),
		fmt.Sprintf("chaos soak: %d epochs, %d attaches, %d detaches, %d handovers, %d migrations, %d cross-node moves, %d recoveries, %d injected stalls, %d sig drops — %d invariant violations",
			stats.Epochs, stats.Attaches, stats.Detaches, stats.Handovers, stats.Migrations, stats.NodeMoves, stats.Recoveries, stats.Stalls, stats.SigDrops, len(violations)),
	}
	for _, v := range violations {
		notes = append(notes, "VIOLATION: "+v)
	}
	if len(violations) > 0 {
		return Result{}, fmt.Errorf("experiments: chaos soak found %d invariant violations: %s", len(violations), violations[0])
	}
	return Result{
		Figure: "faults",
		Title:  "Robustness: PCRF outage duration vs attach outcome, plus chaos soak",
		XLabel: "outage (ms)",
		YLabel: "percent / count",
		Series: []sim.Series{degraded, repaired, shorted},
		Notes:  notes,
	}, nil
}

// outagePoint attaches `users` devices while the PCRF is dark for the
// first `ms` milliseconds, then lets maintenance repair the backlog.
// Returns (degraded %, repaired % of degraded, breaker short circuits).
func outagePoint(ms, users int) (float64, float64, uint64, error) {
	h := hss.New()
	h.ProvisionRange(1, users, 10e6, 50e6)
	policy := pcrf.New()
	policy.SetDefaultRules(soakRules())
	p := core.NewProxy(h, policy)
	p.SetPolicy(soakPolicy)
	inj := fault.New(uint64(ms)*7919 + 13)
	p.SetGxFaults(inj)

	s := core.NewSlice(core.SliceConfig{ID: 1, UserHint: users * 2})
	s.Control().SetProxy(p)

	if ms > 0 {
		inj.Arm(fault.DiameterDrop, fault.RateMax)
	}
	start := time.Now()
	dark := ms > 0
	for i := 1; i <= users; i++ {
		if dark && time.Since(start) >= time.Duration(ms)*time.Millisecond {
			inj.DisarmAll()
			dark = false
		}
		if _, err := s.Control().Attach(core.AttachSpec{IMSI: uint64(i)}); err != nil {
			return 0, 0, 0, fmt.Errorf("attach %d during outage: %w", i, err)
		}
	}
	inj.DisarmAll()
	time.Sleep(soakPolicy.BreakerCooldown + time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for s.Control().DegradedBacklog() > 0 && time.Now().Before(deadline) {
		s.Control().Maintain(0, 0)
	}
	st := s.Control().Stats()
	ps := p.Stats()
	degPct := float64(st.DegradedAttaches) / float64(users) * 100
	repPct := 100.0
	if st.DegradedAttaches > 0 {
		repPct = float64(st.Repairs) / float64(st.DegradedAttaches) * 100
	}
	return degPct, repPct, ps.ShortCircuits, nil
}

// SoakStats summarizes one chaos soak run.
type SoakStats struct {
	Epochs     int
	Attaches   int
	Detaches   int
	Handovers  int
	Migrations int
	// NodeMoves counts cross-node export/import transfers (the cluster
	// migration path) exercised during the soak.
	NodeMoves  int
	Recoveries int
	Stalls     uint64
	SigDrops   uint64
}

// runChaosSoak is the chaos harness: per epoch it derives a randomized
// fault plan from the seed (deterministic per (seed, epoch)), arms it
// across the Diameter proxy, the signaling ring and the data worker,
// churns the population with attaches, traffic, handovers, detaches and
// cross-slice migrations, runs a checkpoint/crash/recover cycle, then
// disarms and validates invariants: user-count conservation, no leaked
// arena slots, bounded signaling drains, and a drained repair backlog.
// Returns the violations found (empty on a clean soak).
func runChaosSoak(seed uint64, epochs, usersPerEpoch int) (SoakStats, []string) {
	var stats SoakStats
	var violations []string
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	h := hss.New()
	h.ProvisionRange(1, epochs*usersPerEpoch+1, 10e6, 50e6)
	policy := pcrf.New()
	policy.SetDefaultRules(soakRules())
	proxy := core.NewProxy(h, policy)
	proxy.SetPolicy(soakPolicy)

	inj := fault.New(seed)
	n := core.NewNode(
		core.SliceConfig{ID: 1, UserHint: 1 << 12, StateLayout: core.LayoutHandle},
		core.SliceConfig{ID: 2, UserHint: 1 << 12, StateLayout: core.LayoutHandle},
	)
	n.AttachProxy(proxy)
	proxy.SetGxFaults(inj)
	s0, s1 := n.Slice(0), n.Slice(1)
	s0.SetFaults(inj)

	// A peer node receives cross-node moves (the cluster migration
	// path), extending the conservation invariants across the node
	// boundary.
	peer := core.NewNode(core.SliceConfig{ID: 3, UserHint: 1 << 12, StateLayout: core.LayoutHandle})
	peerLive := map[uint64]struct{}{}

	// The data worker for slice 0 runs for the whole soak; slice 1 (the
	// migration target) is driven inline by the driver.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { s0.RunData(stop); close(done) }()
	defer func() { close(stop); <-done }()

	// live tracks which slice each attached user is in (driver view).
	live := map[uint64]int{}
	var nextIMSI uint64 = 1

	drainTimed := func(cp *core.ControlPlane) {
		for {
			start := time.Now()
			got := cp.DrainSignaling(0)
			if el := time.Since(start); el > soakDrainBudget {
				fail("DrainSignaling blocked %v (> %v)", el, soakDrainBudget)
			}
			if got == 0 {
				return
			}
		}
	}

	for e := 0; e < epochs; e++ {
		stats.Epochs++
		plan := fault.EpochPlan(seed, e, fault.RateMax/8, 300*time.Microsecond,
			fault.DiameterDrop, fault.DiameterDelay, fault.DiameterError,
			fault.RingOverflow, fault.WorkerStall)
		inj.Apply(plan)

		// Attach churn (degraded attaches allowed while Gx faults fire).
		epochUsers := make([]workload.User, 0, usersPerEpoch)
		for i := 0; i < usersPerEpoch; i++ {
			imsi := nextIMSI
			nextIMSI++
			res, err := n.AttachUser(0, core.AttachSpec{
				IMSI: imsi, ENBAddr: pkt.IPv4Addr(192, 168, 0, 1),
				DownlinkTEID: 0x0200_0000 | uint32(imsi),
			})
			if err != nil {
				fail("epoch %d: attach %d failed: %v", e, imsi, err)
				continue
			}
			live[imsi] = 0
			stats.Attaches++
			epochUsers = append(epochUsers, workload.User{IMSI: imsi, UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr})
		}

		// Traffic through the (possibly stalling) worker.
		gen := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s0.Config().CoreAddr}, epochUsers)
		for i := 0; i < 1024; i++ {
			b := gen.NextUplink()
			if !s0.Uplink.Enqueue(b) {
				b.Free()
			}
		}
		// Handovers and detaches through the (possibly overflowing)
		// signaling ring; a shed event keeps the old state, which the
		// conservation check below must reflect — so only count what was
		// actually enqueued.
		for i, u := range epochUsers {
			if i%3 == 0 {
				if s0.Control().EnqueueSignal(core.SigEvent{
					Kind: core.SigS1Handover, IMSI: u.IMSI,
					ENBAddr: pkt.IPv4Addr(192, 168, 1, byte(i)), DownlinkTEID: u.UplinkTEID ^ 0xffff,
				}) {
					stats.Handovers++
				}
			}
			if i%5 == 4 {
				if s0.Control().EnqueueSignal(core.SigEvent{Kind: core.SigDetach, IMSI: u.IMSI}) {
					delete(live, u.IMSI)
					stats.Detaches++
				}
			}
		}
		drainTimed(s0.Control())

		// Cross-slice migrations of a few surviving users.
		moved := 0
		for _, u := range epochUsers {
			if moved >= 8 {
				break
			}
			if sl, ok := live[u.IMSI]; ok && sl == 0 {
				if err := n.Scheduler().MigrateUser(u.IMSI, 0, 1); err != nil {
					fail("epoch %d: migrate %d: %v", e, u.IMSI, err)
					continue
				}
				live[u.IMSI] = 1
				stats.Migrations++
				moved++
			}
		}
		s1.Data().SyncUpdates()

		// Cross-node moves: ship a few slice-1 users to the peer node
		// through the serialized export/import path, checking exact
		// counter conservation across the node boundary.
		exported := 0
		for _, u := range epochUsers {
			if exported >= 4 {
				break
			}
			if sl, ok := live[u.IMSI]; !ok || sl != 1 {
				continue
			}
			var want state.CounterState
			if ue := s1.Control().Lookup(u.IMSI); ue != nil {
				ue.ReadCounters(func(c *state.CounterState) { want = *c })
			}
			msg, err := n.Scheduler().ExportUser(u.IMSI, 1)
			if err != nil {
				fail("epoch %d: export %d: %v", e, u.IMSI, err)
				continue
			}
			delete(live, u.IMSI)
			if err := peer.Scheduler().ImportUser(msg, 0); err != nil {
				fail("epoch %d: import %d: %v", e, u.IMSI, err)
				continue
			}
			peerLive[u.IMSI] = struct{}{}
			ue := peer.Slice(0).Control().Lookup(u.IMSI)
			if ue == nil {
				fail("epoch %d: user %d lost crossing nodes", e, u.IMSI)
				continue
			}
			var got state.CounterState
			ue.ReadCounters(func(c *state.CounterState) { got = *c })
			if got != want {
				fail("epoch %d: user %d counters diverged crossing nodes: %+v → %+v", e, u.IMSI, want, got)
			}
			stats.NodeMoves++
			exported++
		}
		peer.Slice(0).Data().SyncUpdates()

		// Crash/recovery cycle on an independent slice, seeded per epoch.
		if v := crashCycle(seed, uint64(e)); v != "" { // per-epoch deterministic seed
			fail("epoch %d: %s", e, v)
		}
		stats.Recoveries++

		// Epoch end: disarm, settle, verify invariants.
		inj.DisarmAll()
		drainTimed(s0.Control())
		deadline := time.Now().Add(5 * time.Second)
		for s0.Control().DegradedBacklog() > 0 && time.Now().Before(deadline) {
			time.Sleep(soakPolicy.BreakerCooldown)
			s0.Control().Maintain(0, 0)
		}
		if bl := s0.Control().DegradedBacklog(); bl > 0 {
			fail("epoch %d: repair backlog stuck at %d", e, bl)
		}

		want0, want1 := 0, 0
		for _, sl := range live {
			if sl == 0 {
				want0++
			} else {
				want1++
			}
		}
		if got := s0.Users(); got != want0 {
			fail("epoch %d: slice0 users = %d, want %d (conservation)", e, got, want0)
		}
		if got := s1.Users(); got != want1 {
			fail("epoch %d: slice1 users = %d, want %d (conservation)", e, got, want1)
		}
		if al := s0.ArenaLive(); al != s0.Users() {
			fail("epoch %d: slice0 arena live = %d, users = %d (leak)", e, al, s0.Users())
		}
		if al := s1.ArenaLive(); al != s1.Users() {
			fail("epoch %d: slice1 arena live = %d, users = %d (leak)", e, al, s1.Users())
		}
		if got := peer.Slice(0).Users(); got != len(peerLive) {
			fail("epoch %d: peer users = %d, want %d (cross-node conservation)", e, got, len(peerLive))
		}
		if al := peer.Slice(0).ArenaLive(); al != peer.Slice(0).Users() {
			fail("epoch %d: peer arena live = %d, users = %d (leak)", e, al, peer.Slice(0).Users())
		}
	}
	stats.SigDrops = s0.Control().SigDrops.Load()
	// Worker stalls are reported through the injector (the worker's own
	// counter is private to RunData's worker instance).
	stats.Stalls = inj.Fired(fault.WorkerStall)
	return stats, violations
}

// crashCycle runs one deterministic checkpoint/crash/recover round on a
// standalone handle-layout slice and verifies the recovery invariants.
// Returns "" on success, a violation description otherwise.
func crashCycle(seed, epoch uint64) string {
	const base, ckpUsers, extra, drops = 100_000, 32, 8, 4
	mk := func() *core.Slice {
		return core.NewSlice(core.SliceConfig{ID: 3, UserHint: 128, StateLayout: core.LayoutHandle})
	}
	src := mk()
	off := base + int(fault.Hash64(seed^epoch)%1000)*64
	attach := func(i int) error {
		_, err := src.Control().Attach(core.AttachSpec{
			IMSI: uint64(off + i), ENBAddr: 1, DownlinkTEID: uint32(i + 1),
		})
		return err
	}
	for i := 1; i <= ckpUsers; i++ {
		if err := attach(i); err != nil {
			return fmt.Sprintf("crash cycle attach: %v", err)
		}
	}
	src.Data().SyncUpdates()
	var ckp bytes.Buffer
	if _, err := src.Checkpoint(&ckp); err != nil {
		return fmt.Sprintf("checkpoint: %v", err)
	}
	for i := ckpUsers + 1; i <= ckpUsers+extra; i++ {
		if err := attach(i); err != nil {
			return fmt.Sprintf("post-checkpoint attach: %v", err)
		}
	}
	for i := 1; i <= drops; i++ {
		if err := src.Control().Detach(uint64(off + i)); err != nil {
			return fmt.Sprintf("post-checkpoint detach: %v", err)
		}
	}
	dst := mk()
	rep, err := dst.RecoverFrom(bytes.NewReader(ckp.Bytes()), src)
	if err != nil {
		return fmt.Sprintf("recover: %v", err)
	}
	want := ckpUsers + extra - drops
	if dst.Users() != want {
		return fmt.Sprintf("recovered users = %d, want %d (restored=%d replayed=%d detached=%d)",
			dst.Users(), want, rep.Restored, rep.Replayed, rep.CompletedDetaches)
	}
	if al := dst.ArenaLive(); al != dst.Users() {
		return fmt.Sprintf("recovered arena live = %d, users = %d (leak)", al, dst.Users())
	}
	if rep.Replayed != extra || rep.CompletedDetaches != drops {
		return fmt.Sprintf("recovery report off: %+v", rep)
	}
	return ""
}
