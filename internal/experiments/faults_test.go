package experiments

import "testing"

// TestChaosSoakShort is the CI-facing soak smoke: a short, race-enabled
// (scripts/soak.sh -short runs it under -race) chaos run that must
// complete with zero invariant violations. Determinism note: the fault
// plan is a pure function of (seed, epoch); wall-clock interleaving
// varies, but the invariants must hold under any interleaving.
func TestChaosSoakShort(t *testing.T) {
	stats, violations := runChaosSoak(1, 2, 64)
	for _, v := range violations {
		t.Errorf("invariant violation: %s", v)
	}
	if stats.Epochs != 2 {
		t.Fatalf("epochs = %d", stats.Epochs)
	}
	if stats.Attaches == 0 || stats.Detaches == 0 || stats.Handovers == 0 || stats.Migrations == 0 {
		t.Fatalf("soak did no work: %+v", stats)
	}
	if stats.Recoveries != 2 {
		t.Fatalf("recoveries = %d", stats.Recoveries)
	}
}

// The outage sweep's zero-duration point is the control: no outage, no
// degraded attaches, nothing to repair.
func TestOutagePointHealthy(t *testing.T) {
	deg, _, short, err := outagePoint(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if deg != 0 {
		t.Fatalf("degraded %% = %v with healthy PCRF", deg)
	}
	if short != 0 {
		t.Fatalf("short circuits = %d with healthy PCRF", short)
	}
}

// A long outage relative to the attach storm degrades everyone, and
// repair brings everyone back.
func TestOutagePointDark(t *testing.T) {
	deg, rep, _, err := outagePoint(1000, 30)
	if err != nil {
		t.Fatal(err)
	}
	if deg != 100 {
		t.Fatalf("degraded %% = %v, want 100 (outage outlasts the storm)", deg)
	}
	if rep != 100 {
		t.Fatalf("repaired %% = %v, want 100", rep)
	}
}
