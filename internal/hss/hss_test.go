package hss

import (
	"testing"

	"pepc/internal/diameter"
)

func TestGenerateVectorDeterministic(t *testing.T) {
	k := KeyForIMSI(1001)
	var rand [16]byte
	rand[0] = 7
	v1 := GenerateVector(k, rand, 5)
	v2 := GenerateVector(k, rand, 5)
	if v1 != v2 {
		t.Fatal("vector generation not deterministic")
	}
	v3 := GenerateVector(k, rand, 6)
	if v1.XRES == v3.XRES {
		t.Fatal("XRES does not depend on SQN")
	}
}

func TestVerifyAUTNWindow(t *testing.T) {
	k := KeyForIMSI(2002)
	var rand [16]byte
	rand[5] = 9
	v := GenerateVector(k, rand, 10)
	sqn, ok := VerifyAUTN(k, rand, v.AUTN, 5, 32)
	if !ok || sqn != 10 {
		t.Fatalf("verify: sqn=%d ok=%v", sqn, ok)
	}
	// Out of window fails.
	if _, ok := VerifyAUTN(k, rand, v.AUTN, 10, 32); ok {
		t.Fatal("stale SQN accepted")
	}
	// Wrong key fails.
	if _, ok := VerifyAUTN(KeyForIMSI(3), rand, v.AUTN, 5, 32); ok {
		t.Fatal("wrong key accepted")
	}
}

func TestProvisionAndLookup(t *testing.T) {
	h := New()
	h.Provision(Subscriber{IMSI: 42, AMBRUplink: 1e6, DefaultQCI: 9})
	s, err := h.Lookup(42)
	if err != nil || s.AMBRUplink != 1e6 {
		t.Fatalf("lookup: %+v %v", s, err)
	}
	if _, err := h.Lookup(43); err != ErrUnknownSubscriber {
		t.Fatalf("unknown: %v", err)
	}
}

func TestProvisionRange(t *testing.T) {
	h := New()
	h.ProvisionRange(1000, 500, 10e6, 50e6)
	if h.NumSubscribers() != 500 {
		t.Fatalf("subscribers = %d", h.NumSubscribers())
	}
	s, err := h.Lookup(1250)
	if err != nil || s.K != KeyForIMSI(1250) || s.AMBRDownlink != 50e6 {
		t.Fatalf("range subscriber: %+v %v", s, err)
	}
}

func TestNextVectorAdvancesSQN(t *testing.T) {
	h := New()
	h.ProvisionRange(1, 1, 0, 0)
	v1, sqn1, err := h.NextVector(1)
	if err != nil {
		t.Fatal(err)
	}
	v2, sqn2, err := h.NextVector(1)
	if err != nil {
		t.Fatal(err)
	}
	if sqn2 != sqn1+1 || v1.RAND == v2.RAND || v1.XRES == v2.XRES {
		t.Fatalf("vectors not advancing: sqn %d->%d", sqn1, sqn2)
	}
	if _, _, err := h.NextVector(99); err != ErrUnknownSubscriber {
		t.Fatalf("unknown: %v", err)
	}
}

func TestBarredSubscriberRejected(t *testing.T) {
	h := New()
	h.Provision(Subscriber{IMSI: 5, Barred: true})
	if _, _, err := h.NextVector(5); err != ErrUnknownSubscriber {
		t.Fatalf("barred: %v", err)
	}
}

func TestS6aAIRFlow(t *testing.T) {
	h := New()
	h.ProvisionRange(7000, 1, 8e6, 16e6)
	req := diameter.NewRequest(diameter.CmdAuthenticationInformation, diameter.AppS6a, 1, 1,
		diameter.U64AVP(diameter.AVPUserName, 7000))
	ans, err := diameter.Call(h, req)
	if err != nil {
		t.Fatal(err)
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		t.Fatalf("result: %d", ans.ResultCode())
	}
	vec, err := ParseVectorAVP(ans)
	if err != nil {
		t.Fatal(err)
	}
	// The vector must verify with the UE-side derivation.
	k := KeyForIMSI(7000)
	sqn, ok := VerifyAUTN(k, vec.RAND, vec.AUTN, 0, 32)
	if !ok {
		t.Fatal("AUTN does not verify on the UE side")
	}
	ueVec := GenerateVector(k, vec.RAND, sqn)
	if ueVec.XRES != vec.XRES || ueVec.KASME != vec.KASME {
		t.Fatal("UE-derived XRES/KASME mismatch")
	}
}

func TestS6aULRFlow(t *testing.T) {
	h := New()
	h.ProvisionRange(8000, 1, 5e6, 10e6)
	req := diameter.NewRequest(diameter.CmdUpdateLocation, diameter.AppS6a, 2, 2,
		diameter.U64AVP(diameter.AVPUserName, 8000))
	ans, err := diameter.Call(h, req)
	if err != nil {
		t.Fatal(err)
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		t.Fatalf("result: %d", ans.ResultCode())
	}
	sd, ok := ans.Find(diameter.AVPSubscriptionData)
	if !ok {
		t.Fatal("missing subscription data")
	}
	subs, err := sd.SubAVPs()
	if err != nil || len(subs) != 2 {
		t.Fatalf("subscription data: %v %v", subs, err)
	}
}

func TestS6aErrors(t *testing.T) {
	h := New()
	// Unknown user.
	req := diameter.NewRequest(diameter.CmdAuthenticationInformation, diameter.AppS6a, 1, 1,
		diameter.U64AVP(diameter.AVPUserName, 404))
	ans, _ := diameter.Call(h, req)
	if ans.ResultCode() != diameter.ResultUserUnknown {
		t.Fatalf("unknown user: %d", ans.ResultCode())
	}
	// Missing user AVP.
	req2 := diameter.NewRequest(diameter.CmdAuthenticationInformation, diameter.AppS6a, 1, 1)
	ans2, _ := diameter.Call(h, req2)
	if ans2.ResultCode() != diameter.ResultUnableToComply {
		t.Fatalf("missing AVP: %d", ans2.ResultCode())
	}
	// Wrong application.
	req3 := diameter.NewRequest(diameter.CmdAuthenticationInformation, diameter.AppGx, 1, 1,
		diameter.U64AVP(diameter.AVPUserName, 1))
	ans3, _ := diameter.Call(h, req3)
	if ans3.ResultCode() != diameter.ResultUnableToComply {
		t.Fatalf("wrong app: %d", ans3.ResultCode())
	}
}

func BenchmarkNextVector(b *testing.B) {
	h := New()
	h.ProvisionRange(1, 1, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.NextVector(1); err != nil {
			b.Fatal(err)
		}
	}
}
