// Package hss implements the Home Subscriber Server: the subscriber
// database and authentication-vector generation the EPC control plane
// queries over S6a at every attach. PEPC leaves the HSS unchanged
// (paper §3) and reaches it through the node proxy.
//
// Substitution note: vector generation uses HMAC-SHA256 in place of
// Milenage/TUAK. The attach procedure's shape — RAND/AUTN challenge,
// XRES comparison, KASME derivation, SQN resynchronization — is
// preserved; only the PRF differs (see DESIGN.md).
package hss

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sync"

	"pepc/internal/diameter"
)

// Errors.
var (
	ErrUnknownSubscriber = errors.New("hss: unknown subscriber")
)

// Subscriber is one HSS database record.
type Subscriber struct {
	IMSI uint64
	// K is the permanent subscriber key shared with the USIM.
	K [16]byte
	// SQN is the next sequence number for vector generation.
	SQN uint64
	// Subscription profile.
	AMBRUplink   uint64 // bits/s
	AMBRDownlink uint64
	DefaultQCI   uint8
	// Barred subscribers fail authorization (test hook and a real HSS
	// behaviour).
	Barred bool
}

// Vector is one EPS authentication vector.
type Vector struct {
	RAND  [16]byte
	XRES  [8]byte
	AUTN  [16]byte
	KASME [32]byte
}

// GenerateVector derives an authentication vector from K, RAND and SQN
// using the HMAC-SHA256 construction standing in for Milenage. The same
// function runs on the UE side (enb package) so challenge/response
// verification is end-to-end real.
func GenerateVector(k [16]byte, rand [16]byte, sqn uint64) Vector {
	var v Vector
	v.RAND = rand
	mac := hmac.New(sha256.New, k[:])
	mac.Write(rand[:])
	var sqnb [8]byte
	binary.BigEndian.PutUint64(sqnb[:], sqn)
	mac.Write(sqnb[:])
	sum := mac.Sum(nil) // 32 bytes
	copy(v.XRES[:], sum[0:8])
	// AUTN = SQN ⊕ AK (sum[8:16]) || MAC-A (sum[16:24])
	for i := 0; i < 8; i++ {
		v.AUTN[i] = sqnb[i] ^ sum[8+i]
	}
	copy(v.AUTN[8:], sum[16:24])
	kd := hmac.New(sha256.New, k[:])
	kd.Write([]byte("kasme"))
	kd.Write(rand[:])
	kd.Write(sqnb[:])
	copy(v.KASME[:], kd.Sum(nil))
	return v
}

// VerifyAUTN lets the UE side check network authenticity. The USIM
// tracks its own SQN, so it verifies against a small forward window
// starting at its last-seen value (resynchronization tolerance) and
// returns the accepted SQN.
func VerifyAUTN(k [16]byte, rand [16]byte, autn [16]byte, lastSQN uint64, window int) (uint64, bool) {
	if window <= 0 {
		window = 32
	}
	for sqn := lastSQN + 1; sqn <= lastSQN+uint64(window); sqn++ {
		if GenerateVector(k, rand, sqn).AUTN == autn {
			return sqn, true
		}
	}
	return 0, false
}

// HSS is the subscriber database plus the S6a request handler.
type HSS struct {
	mu   sync.RWMutex
	subs map[uint64]*Subscriber

	// randCounter makes vector RANDs unique and deterministic for
	// reproducible experiments.
	randCounter uint64
}

// New returns an empty HSS.
func New() *HSS {
	return &HSS{subs: make(map[uint64]*Subscriber)}
}

// Provision adds or replaces a subscriber record.
func (h *HSS) Provision(s Subscriber) {
	h.mu.Lock()
	cp := s
	h.subs[s.IMSI] = &cp
	h.mu.Unlock()
}

// ProvisionRange bulk-provisions count subscribers with IMSIs starting at
// base, deriving per-subscriber keys; used by workload setup.
func (h *HSS) ProvisionRange(base uint64, count int, ambrUp, ambrDown uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := 0; i < count; i++ {
		imsi := base + uint64(i)
		s := &Subscriber{IMSI: imsi, AMBRUplink: ambrUp, AMBRDownlink: ambrDown, DefaultQCI: 9}
		s.K = KeyForIMSI(imsi)
		h.subs[imsi] = s
	}
}

// KeyForIMSI derives the deterministic per-subscriber permanent key used
// by ProvisionRange; the eNodeB/UE emulator uses the same derivation.
func KeyForIMSI(imsi uint64) [16]byte {
	var k [16]byte
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], imsi)
	sum := sha256.Sum256(b[:])
	copy(k[:], sum[:16])
	return k
}

// Lookup returns a copy of the subscriber record.
func (h *HSS) Lookup(imsi uint64) (Subscriber, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s, ok := h.subs[imsi]
	if !ok {
		return Subscriber{}, ErrUnknownSubscriber
	}
	return *s, nil
}

// NumSubscribers returns the database size.
func (h *HSS) NumSubscribers() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.subs)
}

// NextVector generates the next authentication vector for a subscriber,
// advancing its SQN.
func (h *HSS) NextVector(imsi uint64) (Vector, uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[imsi]
	if !ok || s.Barred {
		return Vector{}, 0, ErrUnknownSubscriber
	}
	s.SQN++
	h.randCounter++
	var rand [16]byte
	binary.BigEndian.PutUint64(rand[:8], h.randCounter)
	binary.BigEndian.PutUint64(rand[8:], imsi)
	return GenerateVector(s.K, rand, s.SQN), s.SQN, nil
}

// Handle implements diameter.Handler for S6a: AIR→AIA and ULR→ULA. An
// AIR may carry several User-Name AVPs (the proxy coalesces a batch of
// attaches into one round-trip); the answer then carries one E-UTRAN
// vector group per user, in request order. A single unknown subscriber
// fails the whole batch, as it would the single-user request.
func (h *HSS) Handle(req *diameter.Message) (*diameter.Message, error) {
	if !req.IsRequest() || req.AppID != diameter.AppS6a {
		return req.Answer(diameter.ResultUnableToComply), nil
	}
	switch req.Code {
	case diameter.CmdAuthenticationInformation:
		users := req.FindAll(diameter.AVPUserName)
		if len(users) == 0 {
			return req.Answer(diameter.ResultUnableToComply), nil
		}
		groups := make([]diameter.AVP, 0, len(users))
		for _, ua := range users {
			imsi, err := ua.Uint64()
			if err != nil {
				return req.Answer(diameter.ResultUnableToComply), nil
			}
			vec, _, err := h.NextVector(imsi)
			if err != nil {
				return req.Answer(diameter.ResultUserUnknown), nil
			}
			groups = append(groups, diameter.Grouped(diameter.AVPEUTRANVector,
				diameter.AVP{Code: diameter.AVPRand, Data: vec.RAND[:]},
				diameter.AVP{Code: diameter.AVPXres, Data: vec.XRES[:]},
				diameter.AVP{Code: diameter.AVPAutn, Data: vec.AUTN[:]},
				diameter.AVP{Code: diameter.AVPKasme, Data: vec.KASME[:]},
			))
		}
		return req.Answer(diameter.ResultSuccess, groups...), nil
	case diameter.CmdUpdateLocation:
		userAVP, ok := req.Find(diameter.AVPUserName)
		if !ok {
			return req.Answer(diameter.ResultUnableToComply), nil
		}
		imsi, err := userAVP.Uint64()
		if err != nil {
			return req.Answer(diameter.ResultUnableToComply), nil
		}
		sub, err := h.Lookup(imsi)
		if err != nil || sub.Barred {
			return req.Answer(diameter.ResultUserUnknown), nil
		}
		data := diameter.Grouped(diameter.AVPSubscriptionData,
			diameter.U64AVP(diameter.AVPAMBRUplink, sub.AMBRUplink),
			diameter.U64AVP(diameter.AVPAMBRDownlink, sub.AMBRDownlink),
		)
		return req.Answer(diameter.ResultSuccess, data), nil
	default:
		return req.Answer(diameter.ResultUnableToComply), nil
	}
}

// ParseVectorAVP extracts a Vector from an AIA's grouped AVP (client
// side: the node proxy).
func ParseVectorAVP(m *diameter.Message) (Vector, error) {
	g, ok := m.Find(diameter.AVPEUTRANVector)
	if !ok {
		return Vector{}, errors.New("hss: missing E-UTRAN vector")
	}
	return parseVectorGroup(g)
}

// ParseVectorAVPsInto extracts every E-UTRAN vector group of a batched
// AIA into out, in answer (= request) order. The answer must carry
// exactly len(out) groups.
func ParseVectorAVPsInto(m *diameter.Message, out []Vector) error {
	groups := m.FindAll(diameter.AVPEUTRANVector)
	if len(groups) != len(out) {
		return errors.New("hss: vector count mismatch in batched AIA")
	}
	for i, g := range groups {
		v, err := parseVectorGroup(g)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

func parseVectorGroup(g diameter.AVP) (Vector, error) {
	var v Vector
	subs, err := g.SubAVPs()
	if err != nil {
		return v, err
	}
	for _, a := range subs {
		switch a.Code {
		case diameter.AVPRand:
			copy(v.RAND[:], a.Data)
		case diameter.AVPXres:
			copy(v.XRES[:], a.Data)
		case diameter.AVPAutn:
			copy(v.AUTN[:], a.Data)
		case diameter.AVPKasme:
			copy(v.KASME[:], a.Data)
		}
	}
	return v, nil
}
