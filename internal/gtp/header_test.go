package gtp

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"pepc/internal/pkt"
)

// mkSeqGPDU builds a G-PDU with the sequence flag set and a correct
// 29.281 Length: the field counts every byte after the 8 mandatory ones,
// so the 4 optional bytes are included alongside the payload.
func mkSeqGPDU(seq uint16, payload []byte) []byte {
	b := []byte{
		1<<5 | 1<<4 | flagSequence, MsgGPDU,
		byte((4 + len(payload)) >> 8), byte(4 + len(payload)),
		0, 0, 0, 7, // TEID
		byte(seq >> 8), byte(seq), 0, 0, // seq, npdu, next-ext
	}
	return append(b, payload...)
}

func TestDecodeSeqGPDULengthCoversOptions(t *testing.T) {
	payload := []byte("abcdefgh")
	var d Header
	if err := d.DecodeFromBytes(mkSeqGPDU(0x0102, payload)); err != nil {
		t.Fatal(err)
	}
	if !d.HasSeq || d.Seq != 0x0102 {
		t.Fatalf("seq: %+v", d)
	}
	if d.HdrBytes != HeaderLenOpt {
		t.Fatalf("HdrBytes = %d, want %d", d.HdrBytes, HeaderLenOpt)
	}
	if int(d.Length) != 4+len(payload) {
		t.Fatalf("Length = %d, want %d", d.Length, 4+len(payload))
	}
}

func TestDecodeSeqGPDULengthBelowOptions(t *testing.T) {
	// Regression for the Length-validation fix: the sequence flag claims
	// 4 optional bytes but Length says fewer than 4 bytes follow the
	// mandatory header — the options are not covered and the message is
	// malformed, not silently accepted with a payload-relative Length.
	for _, l := range []int{0, 1, 3} {
		b := mkSeqGPDU(9, make([]byte, 8))
		b[2], b[3] = byte(l>>8), byte(l)
		var d Header
		if err := d.DecodeFromBytes(b); err != ErrBadMessage {
			t.Fatalf("Length=%d: want ErrBadMessage, got %v", l, err)
		}
	}
}

func TestDecodeLengthCheckedBeforeOptions(t *testing.T) {
	// A Length larger than the available bytes must fail as truncated
	// even when the option flags are set (the truncation check runs
	// before option parsing, so the ext walk never reads past Length).
	b := mkSeqGPDU(9, make([]byte, 4))
	b[2], b[3] = 0xff, 0xff
	var d Header
	if err := d.DecodeFromBytes(b); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestDecodeExtGPDUPayloadAfterExt(t *testing.T) {
	// Ext-header G-PDU with payload after the extension: Length covers
	// options (4) + ext (4) + payload; HdrBytes lands on the payload.
	payload := []byte{0xde, 0xad}
	b := []byte{
		1<<5 | 1<<4 | flagExtension, MsgGPDU,
		0, byte(4 + 4 + len(payload)),
		0, 0, 0, 9,
		0, 0, 0, 0x85, // next-ext = 0x85
		1, 0xaa, 0xbb, 0x00, // ext: 1 unit, next=0
	}
	b = append(b, payload...)
	var d Header
	if err := d.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if d.HdrBytes != 16 {
		t.Fatalf("HdrBytes = %d, want 16", d.HdrBytes)
	}
	if !bytes.Equal(b[d.HdrBytes:HeaderLen+int(d.Length)], payload) {
		t.Fatal("payload not where HdrBytes says")
	}
}

func TestDecodeExtWalkBoundedByLength(t *testing.T) {
	// The extension chain claims another header but Length ends first:
	// the walk must stop at the declared message end, not stray into
	// payload bytes that happen to look like an extension.
	b := []byte{
		1<<5 | 1<<4 | flagExtension, MsgGPDU,
		0, 8, // Length: options + one ext only
		0, 0, 0, 9,
		0, 0, 0, 0x85,
		1, 0xaa, 0xbb, 0x32, // next = 0x32, but Length is exhausted
		1, 0xcc, 0xdd, 0x00, // payload bytes beyond the declared end
	}
	var d Header
	if err := d.DecodeFromBytes(b); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestDecapSeqGPDU(t *testing.T) {
	// An encapsulated G-PDU whose GTP header carries a sequence number:
	// ParseOuter/DecapGPDU must account the 4 option bytes to the outer
	// header, returning exactly the inner packet.
	inner := innerPacket("seq-payload")
	orig := append([]byte(nil), inner.Bytes()...)
	g := mkSeqGPDU(0x55, orig)
	outer := make([]byte, pkt.IPv4HeaderLen+pkt.UDPHeaderLen+len(g))
	ip := pkt.IPv4{Length: uint16(len(outer)), TTL: 64, Protocol: pkt.ProtoUDP, Src: 1, Dst: 2}
	ip.SerializeTo(outer)
	u := pkt.UDP{SrcPort: PortGTPU, DstPort: PortGTPU, Length: uint16(pkt.UDPHeaderLen + len(g))}
	u.SerializeTo(outer[pkt.IPv4HeaderLen:])
	copy(outer[pkt.IPv4HeaderLen+pkt.UDPHeaderLen:], g)

	teid, hdrLen, err := ParseOuter(outer)
	if err != nil {
		t.Fatal(err)
	}
	if teid != 7 {
		t.Fatalf("teid = %d", teid)
	}
	if want := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + HeaderLenOpt; hdrLen != want {
		t.Fatalf("hdrLen = %d, want %d", hdrLen, want)
	}
	buf := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	buf.SetBytes(outer)
	got, err := DecapGPDU(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 || !bytes.Equal(buf.Bytes(), orig) {
		t.Fatalf("decap teid=%d innerEqual=%v", got, bytes.Equal(buf.Bytes(), orig))
	}
}

func TestEncapTemplateMatchesEncapGPDU(t *testing.T) {
	src, dst := pkt.IPv4Addr(172, 16, 0, 1), pkt.IPv4Addr(192, 168, 3, 4)
	for _, teid := range []uint32{1, 0xcafe, 0xffff_ffff} {
		var tmpl EncapTemplate
		tmpl.Init(teid, src, dst)
		if !tmpl.Valid() || tmpl.TEID() != teid {
			t.Fatalf("template invalid for teid %#x", teid)
		}
		for _, size := range []int{0, 1, 7, 36, 128, 1472} {
			payload := make([]byte, size)
			rand.New(rand.NewSource(int64(size))).Read(payload)

			a := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
			a.SetBytes(payload)
			if err := EncapGPDU(a, teid, src, dst); err != nil {
				t.Fatal(err)
			}
			b := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
			b.SetBytes(payload)
			if err := tmpl.Apply(b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("teid %#x size %d: template output differs from serialize", teid, size)
			}
			if !pkt.VerifyChecksum(b.Bytes()[:pkt.IPv4HeaderLen]) {
				t.Fatalf("teid %#x size %d: template checksum invalid", teid, size)
			}
		}
	}
}

// checkTemplateUDPChecksum encaps payload through both the
// field-serializing path and the checksummed template and asserts the
// template's incremental UDP checksum equals a full pseudo-header
// recompute, with every other byte identical.
func checkTemplateUDPChecksum(t *testing.T, tmpl *EncapTemplate, teid, src, dst uint32, payload []byte) uint16 {
	t.Helper()
	a := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	a.SetBytes(payload)
	if err := EncapGPDU(a, teid, src, dst); err != nil {
		t.Fatal(err)
	}
	b := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	b.SetBytes(payload)
	if err := tmpl.Apply(b); err != nil {
		t.Fatal(err)
	}
	got, want := b.Bytes(), a.Bytes()
	ck := binary.BigEndian.Uint16(got[tmplUDPSumOff:])
	zeroed := append([]byte(nil), got...)
	zeroed[tmplUDPSumOff], zeroed[tmplUDPSumOff+1] = 0, 0
	if !bytes.Equal(zeroed, want) {
		t.Fatalf("teid %#x size %d: checksummed template differs beyond the UDP checksum field", teid, len(payload))
	}
	full := pkt.PseudoHeaderChecksum(pkt.ProtoUDP, src, dst, want[pkt.IPv4HeaderLen:])
	if full == 0 {
		full = 0xffff // RFC 768: computed zero ships as all-ones
	}
	if ck != full {
		t.Fatalf("teid %#x size %d: incremental checksum %#04x, full recompute %#04x", teid, len(payload), ck, full)
	}
	if ck == 0 {
		t.Fatalf("teid %#x size %d: emitted the RFC 768 'checksum disabled' sentinel", teid, len(payload))
	}
	// Receiver view: summing with the transmitted checksum in place must
	// verify (0xFFFF is one's-complement zero, so the zero-mapped case
	// verifies too).
	if v := pkt.PseudoHeaderChecksum(pkt.ProtoUDP, src, dst, got[pkt.IPv4HeaderLen:]); v != 0 {
		t.Fatalf("teid %#x size %d: transmitted checksum does not verify (residual %#04x)", teid, len(payload), v)
	}
	return ck
}

// TestEncapTemplateUDPChecksum is the incremental-vs-recompute
// equivalence sweep for the optional outer UDP checksum: for each tunnel
// and payload size the template's constant-sum-plus-patch checksum must
// equal a full pseudo-header recompute, and the output must be
// byte-identical to EncapGPDU everywhere else.
func TestEncapTemplateUDPChecksum(t *testing.T) {
	src, dst := pkt.IPv4Addr(10, 0, 0, 9), pkt.IPv4Addr(10, 9, 0, 200)
	for _, teid := range []uint32{1, 0xcafe, 0xffff_ffff} {
		var tmpl EncapTemplate
		tmpl.EnableUDPChecksum()
		tmpl.Init(teid, src, dst) // the mode must be sticky across Init
		if !tmpl.Valid() {
			t.Fatalf("template invalid for teid %#x", teid)
		}
		for _, size := range []int{0, 1, 7, 36, 128, 1472} {
			payload := make([]byte, size)
			rand.New(rand.NewSource(int64(size)<<8 | int64(teid&0xff))).Read(payload)
			checkTemplateUDPChecksum(t, &tmpl, teid, src, dst, payload)
		}
	}
}

// TestEncapTemplateUDPChecksumZeroFold crafts a payload whose UDP
// checksum computes to exactly 0x0000 and proves the template transmits
// 0xFFFF for it — the RFC 768 rule the pre-fix fold violated (a plain
// fold would write the 'checksum disabled' sentinel and the packet would
// cross the network unprotected).
func TestEncapTemplateUDPChecksumZeroFold(t *testing.T) {
	src, dst := pkt.IPv4Addr(172, 16, 4, 4), pkt.IPv4Addr(172, 16, 9, 9)
	const teid = 0xbeef
	var tmpl EncapTemplate
	tmpl.Init(teid, src, dst)
	tmpl.EnableUDPChecksum() // enable-after-Init must work too

	// Encap once with a zeroed tweak word; the checksum returned for that
	// segment is exactly the word value that drives the folded sum to
	// 0xFFFF, i.e. the computed checksum to 0x0000.
	payload := make([]byte, 32)
	probe := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	probe.SetBytes(payload)
	if err := EncapGPDU(probe, teid, src, dst); err != nil {
		t.Fatal(err)
	}
	tweak := pkt.PseudoHeaderChecksum(pkt.ProtoUDP, src, dst, probe.Bytes()[pkt.IPv4HeaderLen:])
	binary.BigEndian.PutUint16(payload[30:], tweak)

	ck := checkTemplateUDPChecksum(t, &tmpl, teid, src, dst, payload)
	if ck != 0xffff {
		t.Fatalf("zero-fold payload transmitted %#04x, want 0xffff", ck)
	}
}

// TestCloneDemuxedGPDUAcrossPools is the end-to-end regression for the
// clone-time metadata audit: a G-PDU that went through the demux's
// parse-once path (Meta.OuterParsed recorded) is cloned into a pool of a
// different buffer class and must still decap by metadata; a clone taken
// after the envelope was already consumed must NOT inherit the stale
// claim — before the audit, the metadata-trusting DecapGPDU would
// TrimFront OuterLen bytes of pure payload off the copy and hand the
// corrupted remainder on as "the inner packet".
func TestCloneDemuxedGPDUAcrossPools(t *testing.T) {
	src, dst := pkt.IPv4Addr(1, 2, 3, 4), pkt.IPv4Addr(5, 6, 7, 8)
	inner := make([]byte, 64)
	rand.New(rand.NewSource(64)).Read(inner)
	inner[0] = 0x60 // "IPv6" inner: visibly not an IPv4 outer envelope
	pool := pkt.NewPool(2048, 128)
	b := pool.Get()
	if err := b.SetBytes(inner); err != nil {
		t.Fatal(err)
	}
	if err := EncapGPDU(b, 0x77, src, dst); err != nil {
		t.Fatal(err)
	}
	teid, hdrLen, err := ParseOuter(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Record the parse-once result exactly as the demux does.
	b.Meta.TEID = teid
	b.Meta.OuterLen = uint16(hdrLen)
	b.Meta.OuterParsed = true

	// Cross-pool clone before decap: the claim holds for the copied
	// bytes, so the copy decaps by metadata in a differing buffer class.
	c := b.ClonePooled(pkt.NewPool(1024, 16))
	if !c.Meta.OuterParsed {
		t.Fatal("valid outer parse dropped by cross-pool clone")
	}
	if got, err := DecapGPDU(c); err != nil || got != 0x77 {
		t.Fatalf("clone decap: teid=%#x err=%v", got, err)
	}
	if !bytes.Equal(c.Bytes(), inner) {
		t.Fatal("clone decap yields wrong inner bytes")
	}

	// Consume the original's envelope, then re-arm the stale claim as a
	// buggy stage holding the old metadata would: the clone must shed it
	// and fall back to a real parse (which correctly rejects the payload)
	// instead of trimming 36 payload bytes.
	if _, err := DecapGPDU(b); err != nil {
		t.Fatal(err)
	}
	b.Meta.TEID = teid
	b.Meta.OuterLen = uint16(hdrLen)
	b.Meta.OuterParsed = true
	stale := b.Clone()
	if stale.Meta.OuterParsed {
		t.Fatal("stale outer parse survived the clone")
	}
	if _, err := DecapGPDU(stale); err == nil {
		t.Fatal("stale clone decapped payload bytes as an envelope")
	}
	if !bytes.Equal(stale.Bytes(), inner) {
		t.Fatal("failed decap must leave the clone's contents intact")
	}
}

func TestEncapTemplateZeroTEIDInvalid(t *testing.T) {
	var tmpl EncapTemplate
	tmpl.Init(0, 1, 2)
	if tmpl.Valid() {
		t.Fatal("teid-0 template must be invalid")
	}
	b := innerPacket("x")
	if err := tmpl.Apply(b); err != ErrBadMessage {
		t.Fatalf("want ErrBadMessage, got %v", err)
	}
}

// TestEncapTemplateApplyZeroAlloc guards the downlink hot path: stamping
// the template must not allocate.
func TestEncapTemplateApplyZeroAlloc(t *testing.T) {
	var tmpl EncapTemplate
	tmpl.Init(0xbeef, 1, 2)
	b := innerPacket("hot-path")
	if avg := testing.AllocsPerRun(200, func() {
		if err := tmpl.Apply(b); err != nil {
			t.Fatal(err)
		}
		if err := b.TrimFront(EncapOverhead); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("EncapTemplate.Apply allocates %.1f/op", avg)
	}
	// The checksummed variant sums the payload but must still not
	// allocate.
	tmpl.EnableUDPChecksum()
	if avg := testing.AllocsPerRun(200, func() {
		if err := tmpl.Apply(b); err != nil {
			t.Fatal(err)
		}
		if err := b.TrimFront(EncapOverhead); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("checksummed EncapTemplate.Apply allocates %.1f/op", avg)
	}
}

// TestParseOuterZeroAlloc guards the demux hot path: the single-pass
// outer parse must not allocate.
func TestParseOuterZeroAlloc(t *testing.T) {
	b := innerPacket("demux")
	if err := EncapGPDU(b, 0xbeef, 1, 2); err != nil {
		t.Fatal(err)
	}
	data := b.Bytes()
	if avg := testing.AllocsPerRun(200, func() {
		if _, _, err := ParseOuter(data); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("ParseOuter allocates %.1f/op", avg)
	}
}

// TestDecapConsumesRecordedParse checks the parse-once handoff: when the
// demux records its parse in the metadata, decap trims without
// re-walking, clears the flag, and yields the same inner packet.
func TestDecapConsumesRecordedParse(t *testing.T) {
	mk := func() (*pkt.Buf, []byte) {
		b := innerPacket("once")
		orig := append([]byte(nil), b.Bytes()...)
		if err := EncapGPDU(b, 0x77, 1, 2); err != nil {
			t.Fatal(err)
		}
		return b, orig
	}
	plain, orig := mk()
	t1, err := DecapGPDU(plain)
	if err != nil {
		t.Fatal(err)
	}
	recorded, _ := mk()
	teid, hdrLen, err := ParseOuter(recorded.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	recorded.Meta.TEID = teid
	recorded.Meta.OuterLen = uint16(hdrLen)
	recorded.Meta.OuterParsed = true
	t2, err := DecapGPDU(recorded)
	if err != nil {
		t.Fatal(err)
	}
	if recorded.Meta.OuterParsed {
		t.Fatal("OuterParsed not cleared by decap")
	}
	if t1 != t2 || !bytes.Equal(plain.Bytes(), orig) || !bytes.Equal(recorded.Bytes(), orig) {
		t.Fatalf("recorded-parse decap diverged: teid %#x vs %#x", t1, t2)
	}
}
