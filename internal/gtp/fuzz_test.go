package gtp

import (
	"bytes"
	"testing"

	"pepc/internal/pkt"
)

// FuzzOuterParse holds the parse-once surface to two invariants over
// arbitrary bytes:
//
//  1. Agreement: ParseOuter, PeekTEID and DecapGPDU accept exactly the
//     same packets and report the same tunnel id; when ParseOuter
//     succeeds its header length is within the packet and DecapGPDU
//     leaves exactly the bytes beyond it.
//  2. Round-trip: re-encapsulating the decapped inner packet with an
//     EncapTemplate built from the parsed coordinates, then decapping
//     again, reproduces the inner bytes (and a valid outer checksum).
func FuzzOuterParse(f *testing.F) {
	seed := func(teid uint32, payload string) []byte {
		b := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
		inner := innerPacket(payload)
		b.SetBytes(inner.Bytes())
		if err := EncapGPDU(b, teid, pkt.IPv4Addr(172, 16, 0, 1), pkt.IPv4Addr(192, 168, 0, 9)); err != nil {
			f.Fatal(err)
		}
		return append([]byte(nil), b.Bytes()...)
	}
	f.Add(seed(1, "a"))
	f.Add(seed(0xcafe, "longer-payload-for-the-fuzzer"))
	// A seq-flagged encapsulated G-PDU (hand-built outer).
	g := mkSeqGPDU(3, []byte("seqqed"))
	outer := make([]byte, pkt.IPv4HeaderLen+pkt.UDPHeaderLen+len(g))
	ip := pkt.IPv4{Length: uint16(len(outer)), TTL: 64, Protocol: pkt.ProtoUDP, Src: 5, Dst: 6}
	ip.SerializeTo(outer)
	u := pkt.UDP{SrcPort: PortGTPU, DstPort: PortGTPU, Length: uint16(pkt.UDPHeaderLen + len(g))}
	u.SerializeTo(outer[pkt.IPv4HeaderLen:])
	copy(outer[pkt.IPv4HeaderLen+pkt.UDPHeaderLen:], g)
	f.Add(outer)
	// Truncations and non-GTP traffic.
	f.Add(seed(7, "x")[:10])
	f.Add([]byte{0x45, 0, 0, 20})
	// Fragmented outer envelopes: an MF-flagged first fragment, a
	// non-initial fragment, and a middle fragment of an otherwise valid
	// encapsulated G-PDU (checksum fixed so fragmentation is the only
	// defect). All three must be rejected by the whole surface.
	f.Add(refragment(seed(9, "frag-first"), pkt.IPv4MoreFragments, 0))
	f.Add(refragment(seed(9, "frag-tail"), 0, 185))
	f.Add(refragment(seed(9, "frag-middle"), pkt.IPv4MoreFragments, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > pkt.DefaultBufSize-pkt.DefaultHeadroom {
			return
		}
		teid, hdrLen, perr := ParseOuter(data)
		pteid, qerr := PeekTEID(data)
		if (perr == nil) != (qerr == nil) || (perr == nil && teid != pteid) {
			t.Fatalf("ParseOuter (%v, teid %#x) disagrees with PeekTEID (%v, teid %#x)",
				perr, teid, qerr, pteid)
		}
		buf := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
		if err := buf.SetBytes(data); err != nil {
			t.Fatal(err)
		}
		dteid, derr := DecapGPDU(buf)
		if (perr == nil) != (derr == nil) {
			t.Fatalf("ParseOuter err %v but DecapGPDU err %v", perr, derr)
		}
		if perr != nil {
			return
		}
		if dteid != teid {
			t.Fatalf("decap teid %#x != parse teid %#x", dteid, teid)
		}
		if hdrLen < EncapOverhead || hdrLen > len(data) {
			t.Fatalf("hdrLen %d out of range (packet %d)", hdrLen, len(data))
		}
		inner := buf.Bytes()
		if !bytes.Equal(inner, data[hdrLen:]) {
			t.Fatal("decap did not leave exactly the post-header bytes")
		}
		// Round-trip through a template built from the parsed tunnel.
		var oip pkt.IPv4
		if err := oip.DecodeFromBytes(data); err != nil {
			t.Fatal(err)
		}
		var tmpl EncapTemplate
		tmpl.Init(teid, oip.Src, oip.Dst)
		if teid == 0 {
			return // paging convention: no template for teid 0
		}
		re := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
		if err := re.SetBytes(inner); err != nil {
			t.Fatal(err)
		}
		if err := tmpl.Apply(re); err != nil {
			t.Fatal(err)
		}
		if !pkt.VerifyChecksum(re.Bytes()[:pkt.IPv4HeaderLen]) {
			t.Fatal("template outer checksum invalid")
		}
		teid2, err := DecapGPDU(re)
		if err != nil || teid2 != teid {
			t.Fatalf("re-decap: teid %#x err %v", teid2, err)
		}
		if !bytes.Equal(re.Bytes(), inner) {
			t.Fatal("encap→decap round trip corrupted inner packet")
		}
	})
}
