package gtp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"pepc/internal/pkt"
)

// refragment patches the outer IPv4 fragment field of an encapsulated
// packet and rewrites the header checksum, so fragmentation is the only
// thing wrong with the envelope.
func refragment(p []byte, flags uint8, off uint16) []byte {
	binary.BigEndian.PutUint16(p[6:8], uint16(flags)<<13|off&0x1fff)
	binary.BigEndian.PutUint16(p[10:12], 0)
	binary.BigEndian.PutUint16(p[10:12], pkt.Checksum(p[:pkt.IPv4HeaderLen]))
	return p
}

// TestParseOuterRejectsFragments pins the envelope-fragmentation fix: a
// fragmented outer IPv4 datagram must be rejected by all three parse
// entry points (ParseOuter, PeekTEID, DecapGPDU). Before the guard, the
// first fragment of a fragmented envelope decapped into a silently
// truncated inner packet.
func TestParseOuterRejectsFragments(t *testing.T) {
	mk := func() []byte {
		b := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
		inner := innerPacket("fragment-me")
		b.SetBytes(inner.Bytes())
		if err := EncapGPDU(b, 0x4242, pkt.IPv4Addr(10, 0, 0, 1), pkt.IPv4Addr(10, 0, 0, 2)); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), b.Bytes()...)
	}

	// The unfragmented baseline parses; checksum stays valid after the
	// no-op refragment so the helper itself is sound.
	base := refragment(mk(), 0, 0)
	if !pkt.VerifyChecksum(base[:pkt.IPv4HeaderLen]) {
		t.Fatal("refragment corrupted the header checksum")
	}
	if teid, _, err := ParseOuter(base); err != nil || teid != 0x4242 {
		t.Fatalf("unfragmented baseline: teid %#x err %v", teid, err)
	}

	cases := []struct {
		name  string
		flags uint8
		off   uint16
	}{
		{"MF-flagged first fragment", pkt.IPv4MoreFragments, 0},
		{"non-initial fragment", 0, 185},
		{"MF-flagged middle fragment", pkt.IPv4MoreFragments, 64},
		{"last fragment", 0, 0x1fff},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := refragment(mk(), c.flags, c.off)
			if _, _, err := ParseOuter(p); !errors.Is(err, ErrFragmented) {
				t.Fatalf("ParseOuter err = %v, want ErrFragmented", err)
			}
			if _, err := PeekTEID(p); !errors.Is(err, ErrFragmented) {
				t.Fatalf("PeekTEID err = %v, want ErrFragmented", err)
			}
			buf := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
			if err := buf.SetBytes(p); err != nil {
				t.Fatal(err)
			}
			if _, err := DecapGPDU(buf); !errors.Is(err, ErrFragmented) {
				t.Fatalf("DecapGPDU err = %v, want ErrFragmented", err)
			}
			// A failed decap must not consume bytes.
			if !bytes.Equal(buf.Bytes(), p) {
				t.Fatal("DecapGPDU modified the buffer on rejection")
			}
		})
	}
}
