package gtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// GTP-C v2 message types (3GPP 29.274 §6.1) used on S11 and S5/S8. The
// legacy baseline EPC uses these messages to synchronize per-user state
// between MME, S-GW and P-GW — the synchronization PEPC eliminates.
const (
	GTPCEchoRequest           uint8 = 1
	GTPCEchoResponse          uint8 = 2
	GTPCCreateSessionRequest  uint8 = 32
	GTPCCreateSessionResponse uint8 = 33
	GTPCModifyBearerRequest   uint8 = 34
	GTPCModifyBearerResponse  uint8 = 35
	GTPCDeleteSessionRequest  uint8 = 36
	GTPCDeleteSessionResponse uint8 = 37
	GTPCReleaseAccessBearers  uint8 = 170
	GTPCDownlinkDataNotif     uint8 = 176
)

// GTP-C v2 Information Element types (subset).
const (
	IEIMSI          uint8 = 1
	IECause         uint8 = 2
	IEAMBR          uint8 = 72
	IEEPSBearerID   uint8 = 73
	IEMobileEquipID uint8 = 75
	IEPAA           uint8 = 79 // PDN Address Allocation
	IEBearerQoS     uint8 = 80
	IEFTEID         uint8 = 87 // Fully-qualified TEID
	IEBearerContext uint8 = 93
)

// GTP-C cause values (subset).
const (
	CauseAccepted        uint8 = 16
	CauseContextNotFound uint8 = 64
	CauseMissingIE       uint8 = 70
)

// GTPC codec errors.
var (
	ErrGTPCShort = errors.New("gtp: GTP-C message too short")
	ErrGTPCVer   = errors.New("gtp: unsupported GTP-C version")
	ErrIEFormat  = errors.New("gtp: malformed information element")
)

const gtpcHeaderLen = 12 // v2 header with TEID present

// GTPCMessage is a decoded GTP-C v2 message: a typed header plus a list of
// TLV information elements. Unlike the GTP-U fast path this codec may
// allocate; GTP-C volume is signaling-rate, not packet-rate.
type GTPCMessage struct {
	Type uint8
	TEID uint32
	Seq  uint32 // 24-bit on the wire
	IEs  []IE
}

// IE is a GTP-C v2 information element.
type IE struct {
	Type     uint8
	Instance uint8
	Data     []byte
}

// Uint32 interprets the IE payload as a big-endian uint32.
func (ie IE) Uint32() (uint32, error) {
	if len(ie.Data) != 4 {
		return 0, ErrIEFormat
	}
	return binary.BigEndian.Uint32(ie.Data), nil
}

// Uint64 interprets the IE payload as a big-endian uint64 (e.g. IMSI).
func (ie IE) Uint64() (uint64, error) {
	if len(ie.Data) != 8 {
		return 0, ErrIEFormat
	}
	return binary.BigEndian.Uint64(ie.Data), nil
}

// NewIEUint32 builds a 4-byte IE.
func NewIEUint32(t uint8, v uint32) IE {
	d := make([]byte, 4)
	binary.BigEndian.PutUint32(d, v)
	return IE{Type: t, Data: d}
}

// NewIEUint64 builds an 8-byte IE.
func NewIEUint64(t uint8, v uint64) IE {
	d := make([]byte, 8)
	binary.BigEndian.PutUint64(d, v)
	return IE{Type: t, Data: d}
}

// FindIE returns the first IE of the given type.
func (m *GTPCMessage) FindIE(t uint8) (IE, bool) {
	for _, ie := range m.IEs {
		if ie.Type == t {
			return ie, true
		}
	}
	return IE{}, false
}

// Marshal encodes the message.
func (m *GTPCMessage) Marshal() []byte {
	bodyLen := 0
	for _, ie := range m.IEs {
		bodyLen += 4 + len(ie.Data)
	}
	// length field counts everything after the first 4 header bytes
	msgLen := 8 + bodyLen
	b := make([]byte, 4+msgLen)
	b[0] = 2<<5 | 1<<3 // version 2, TEID flag
	b[1] = m.Type
	binary.BigEndian.PutUint16(b[2:4], uint16(msgLen))
	binary.BigEndian.PutUint32(b[4:8], m.TEID)
	b[8] = byte(m.Seq >> 16)
	b[9] = byte(m.Seq >> 8)
	b[10] = byte(m.Seq)
	b[11] = 0
	off := gtpcHeaderLen
	for _, ie := range m.IEs {
		b[off] = ie.Type
		binary.BigEndian.PutUint16(b[off+1:off+3], uint16(len(ie.Data)))
		b[off+3] = ie.Instance & 0x0f
		copy(b[off+4:], ie.Data)
		off += 4 + len(ie.Data)
	}
	return b
}

// UnmarshalGTPC decodes a GTP-C v2 message.
func UnmarshalGTPC(b []byte) (*GTPCMessage, error) {
	if len(b) < gtpcHeaderLen {
		return nil, ErrGTPCShort
	}
	if b[0]>>5 != 2 {
		return nil, ErrGTPCVer
	}
	if b[0]&(1<<3) == 0 {
		return nil, fmt.Errorf("%w: TEID flag required", ErrGTPCVer)
	}
	msgLen := int(binary.BigEndian.Uint16(b[2:4]))
	if len(b) < 4+msgLen {
		return nil, ErrGTPCShort
	}
	m := &GTPCMessage{
		Type: b[1],
		TEID: binary.BigEndian.Uint32(b[4:8]),
		Seq:  uint32(b[8])<<16 | uint32(b[9])<<8 | uint32(b[10]),
	}
	off := gtpcHeaderLen
	end := 4 + msgLen
	for off < end {
		if off+4 > end {
			return nil, ErrIEFormat
		}
		ieLen := int(binary.BigEndian.Uint16(b[off+1 : off+3]))
		if off+4+ieLen > end {
			return nil, ErrIEFormat
		}
		data := make([]byte, ieLen)
		copy(data, b[off+4:off+4+ieLen])
		m.IEs = append(m.IEs, IE{Type: b[off], Instance: b[off+3] & 0x0f, Data: data})
		off += 4 + ieLen
	}
	return m, nil
}

// SessionRequest is the decoded semantic content of a Create Session /
// Modify Bearer request as the legacy S-GW and P-GW consume it.
type SessionRequest struct {
	IMSI     uint64
	TEID     uint32 // peer's data TEID (F-TEID)
	PeerAddr uint32 // peer's data-plane address
	UEAddr   uint32 // allocated UE address (PAA)
	BearerID uint8
	Seq      uint32
}

// BuildCreateSession encodes a Create Session Request carrying the fields
// the baseline needs to duplicate state downstream.
func BuildCreateSession(r SessionRequest) *GTPCMessage {
	return &GTPCMessage{
		Type: GTPCCreateSessionRequest,
		Seq:  r.Seq,
		IEs: []IE{
			NewIEUint64(IEIMSI, r.IMSI),
			NewIEUint32(IEFTEID, r.TEID),
			NewIEUint32(IEPAA, r.UEAddr),
			{Type: IEEPSBearerID, Data: []byte{r.BearerID}},
		},
	}
}

// BuildModifyBearer encodes a Modify Bearer Request for a handover: the
// new eNodeB F-TEID and address.
func BuildModifyBearer(r SessionRequest) *GTPCMessage {
	return &GTPCMessage{
		Type: GTPCModifyBearerRequest,
		TEID: r.TEID,
		Seq:  r.Seq,
		IEs: []IE{
			NewIEUint64(IEIMSI, r.IMSI),
			NewIEUint32(IEFTEID, r.TEID),
			NewIEUint32(IEPAA, r.PeerAddr),
			{Type: IEEPSBearerID, Data: []byte{r.BearerID}},
		},
	}
}

// BuildResponse encodes the accept/reject response for a request message.
func BuildResponse(reqType uint8, seq uint32, cause uint8) *GTPCMessage {
	return &GTPCMessage{
		Type: reqType + 1, // response types are request+1 for this subset
		Seq:  seq,
		IEs:  []IE{{Type: IECause, Data: []byte{cause}}},
	}
}

// ParseSessionRequest extracts the semantic fields from a decoded message.
func ParseSessionRequest(m *GTPCMessage) (SessionRequest, error) {
	var r SessionRequest
	r.Seq = m.Seq
	if ie, ok := m.FindIE(IEIMSI); ok {
		v, err := ie.Uint64()
		if err != nil {
			return r, err
		}
		r.IMSI = v
	}
	if ie, ok := m.FindIE(IEFTEID); ok {
		v, err := ie.Uint32()
		if err != nil {
			return r, err
		}
		r.TEID = v
	}
	if ie, ok := m.FindIE(IEPAA); ok {
		v, err := ie.Uint32()
		if err != nil {
			return r, err
		}
		r.UEAddr = v
	}
	if ie, ok := m.FindIE(IEEPSBearerID); ok && len(ie.Data) == 1 {
		r.BearerID = ie.Data[0]
	}
	return r, nil
}
