package gtp

import (
	"bytes"
	"testing"
	"testing/quick"

	"pepc/internal/pkt"
)

func innerPacket(payload string) *pkt.Buf {
	b := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	total := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + len(payload)
	data, _ := b.Append(total)
	ip := pkt.IPv4{Length: uint16(total), TTL: 64, Protocol: pkt.ProtoUDP,
		Src: pkt.IPv4Addr(10, 20, 0, 1), Dst: pkt.IPv4Addr(8, 8, 8, 8)}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: 5555, DstPort: 53, Length: uint16(pkt.UDPHeaderLen + len(payload))}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	copy(data[pkt.IPv4HeaderLen+pkt.UDPHeaderLen:], payload)
	return b
}

func TestHeaderRoundTripMinimal(t *testing.T) {
	h := Header{Type: MsgGPDU, Length: 100, TEID: 0xdeadbeef}
	var b [HeaderLen]byte
	n, err := h.SerializeTo(b[:])
	if err != nil || n != HeaderLen {
		t.Fatalf("serialize: n=%d err=%v", n, err)
	}
	var d Header
	if err := d.DecodeFromBytes(append(b[:], make([]byte, 100)...)); err != nil {
		t.Fatal(err)
	}
	if d.Type != MsgGPDU || d.TEID != 0xdeadbeef || d.Length != 100 || d.HdrBytes != HeaderLen {
		t.Fatalf("decode: %+v", d)
	}
}

func TestHeaderRoundTripWithSeq(t *testing.T) {
	h := Header{Type: MsgGPDU, Length: 4, TEID: 7, HasSeq: true, Seq: 0x1234}
	var b [HeaderLenOpt + 4]byte
	n, err := h.SerializeTo(b[:])
	if err != nil || n != HeaderLenOpt {
		t.Fatalf("serialize: n=%d err=%v", n, err)
	}
	var d Header
	if err := d.DecodeFromBytes(b[:]); err != nil {
		t.Fatal(err)
	}
	if !d.HasSeq || d.Seq != 0x1234 || d.HdrBytes != HeaderLenOpt {
		t.Fatalf("decode: %+v", d)
	}
}

func TestHeaderRejectsWrongVersion(t *testing.T) {
	b := make([]byte, HeaderLen)
	b[0] = 2 << 5 // GTPv2
	var d Header
	if err := d.DecodeFromBytes(b); err != ErrVersion {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestHeaderRejectsTruncatedLength(t *testing.T) {
	h := Header{Type: MsgGPDU, Length: 1000, TEID: 1}
	var b [HeaderLen]byte
	h.SerializeTo(b[:])
	var d Header
	if err := d.DecodeFromBytes(b[:]); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestHeaderExtensionWalk(t *testing.T) {
	// Header with extension flag and one 4-byte extension header.
	b := []byte{
		1<<5 | 1<<4 | 1<<2, MsgGPDU, 0, 8, // flags(ext), type, length=8
		0, 0, 0, 9, // TEID
		0, 1, 0, 0x85, // seq, npdu, next-ext = 0x85
		1, 0xaa, 0xbb, 0x00, // ext: len=1 unit, content, next=0
	}
	var d Header
	if err := d.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if d.HdrBytes != 16 {
		t.Fatalf("HdrBytes = %d, want 16", d.HdrBytes)
	}
}

func TestHeaderExtensionTruncated(t *testing.T) {
	b := []byte{
		1<<5 | 1<<4 | 1<<2, MsgGPDU, 0, 20,
		0, 0, 0, 9,
		0, 1, 0, 0x85,
		5, // claims 20 bytes of extension, buffer ends
	}
	var d Header
	if err := d.DecodeFromBytes(b); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestEncapDecapRoundTrip(t *testing.T) {
	buf := innerPacket("hello-epc")
	orig := append([]byte(nil), buf.Bytes()...)
	src, dst := pkt.IPv4Addr(172, 16, 0, 1), pkt.IPv4Addr(172, 16, 0, 2)
	if err := EncapGPDU(buf, 0xcafe, src, dst); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(orig)+pkt.IPv4HeaderLen+pkt.UDPHeaderLen+HeaderLen {
		t.Fatalf("encap length = %d", buf.Len())
	}
	// The outer headers must parse as valid IPv4/UDP/GTP-U.
	var oip pkt.IPv4
	if err := oip.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if oip.Src != src || oip.Dst != dst || oip.Protocol != pkt.ProtoUDP {
		t.Fatalf("outer IP: %+v", oip)
	}
	if !pkt.VerifyChecksum(buf.Bytes()[:pkt.IPv4HeaderLen]) {
		t.Fatal("outer IP checksum invalid")
	}
	teid, err := DecapGPDU(buf)
	if err != nil {
		t.Fatal(err)
	}
	if teid != 0xcafe {
		t.Fatalf("teid = %#x", teid)
	}
	if !bytes.Equal(buf.Bytes(), orig) {
		t.Fatal("inner packet corrupted by encap/decap")
	}
}

func TestPeekTEIDMatchesDecap(t *testing.T) {
	buf := innerPacket("x")
	EncapGPDU(buf, 42, 1, 2)
	teid, err := PeekTEID(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if teid != 42 {
		t.Fatalf("peek teid = %d", teid)
	}
	// Peek must not modify the buffer.
	got, err := DecapGPDU(buf)
	if err != nil || got != 42 {
		t.Fatalf("decap after peek: %d, %v", got, err)
	}
}

func TestDecapRejectsNonGTP(t *testing.T) {
	buf := innerPacket("plain") // dst port 53, not GTP-U
	if _, err := DecapGPDU(buf); err != ErrBadMessage {
		t.Fatalf("want ErrBadMessage, got %v", err)
	}
}

func TestDecapRejectsEcho(t *testing.T) {
	buf := pkt.NewBuf(512, 128)
	data, _ := buf.Append(pkt.IPv4HeaderLen + pkt.UDPHeaderLen + HeaderLen)
	ip := pkt.IPv4{Length: uint16(len(data)), TTL: 64, Protocol: pkt.ProtoUDP, Src: 1, Dst: 2}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: PortGTPU, DstPort: PortGTPU, Length: uint16(pkt.UDPHeaderLen + HeaderLen)}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	h := Header{Type: MsgEchoRequest, TEID: 0}
	h.SerializeTo(data[pkt.IPv4HeaderLen+pkt.UDPHeaderLen:])
	if _, err := DecapGPDU(buf); err != ErrNotGPDU {
		t.Fatalf("want ErrNotGPDU, got %v", err)
	}
}

// Property: encap then decap is the identity on packet contents and TEID
// for arbitrary payloads and tunnel ids.
func TestEncapDecapProperty(t *testing.T) {
	f := func(teid uint32, payload []byte) bool {
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		buf := pkt.NewBuf(2048, 128)
		if buf.SetBytes(payload) != nil {
			return false
		}
		if EncapGPDU(buf, teid, 1, 2) != nil {
			return false
		}
		got, err := DecapGPDU(buf)
		return err == nil && got == teid && bytes.Equal(buf.Bytes(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGTPCRoundTrip(t *testing.T) {
	req := BuildCreateSession(SessionRequest{
		IMSI: 1234567890, TEID: 0xabc, UEAddr: pkt.IPv4Addr(10, 0, 0, 9), BearerID: 5, Seq: 99,
	})
	wire := req.Marshal()
	m, err := UnmarshalGTPC(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != GTPCCreateSessionRequest || m.Seq != 99 {
		t.Fatalf("header: %+v", m)
	}
	r, err := ParseSessionRequest(m)
	if err != nil {
		t.Fatal(err)
	}
	if r.IMSI != 1234567890 || r.TEID != 0xabc || r.UEAddr != pkt.IPv4Addr(10, 0, 0, 9) || r.BearerID != 5 {
		t.Fatalf("parsed: %+v", r)
	}
}

func TestGTPCResponse(t *testing.T) {
	resp := BuildResponse(GTPCCreateSessionRequest, 7, CauseAccepted)
	m, err := UnmarshalGTPC(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != GTPCCreateSessionResponse || m.Seq != 7 {
		t.Fatalf("response: %+v", m)
	}
	ie, ok := m.FindIE(IECause)
	if !ok || len(ie.Data) != 1 || ie.Data[0] != CauseAccepted {
		t.Fatalf("cause IE: %+v ok=%v", ie, ok)
	}
}

func TestGTPCRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalGTPC([]byte{1, 2, 3}); err != ErrGTPCShort {
		t.Fatalf("short: %v", err)
	}
	b := make([]byte, 16)
	b[0] = 1 << 5 // version 1
	if _, err := UnmarshalGTPC(b); err != ErrGTPCVer {
		t.Fatalf("version: %v", err)
	}
	// Truncated IE: claims more bytes than the message has.
	msg := &GTPCMessage{Type: GTPCEchoRequest, IEs: []IE{NewIEUint32(IEFTEID, 1)}}
	wire := msg.Marshal()
	wire[gtpcHeaderLen+1] = 0xff // corrupt IE length
	if _, err := UnmarshalGTPC(wire); err != ErrIEFormat {
		t.Fatalf("bad IE: %v", err)
	}
}

// Property: GTP-C marshal/unmarshal round-trips arbitrary session fields.
func TestGTPCRoundTripProperty(t *testing.T) {
	f := func(imsi uint64, teid, ueaddr uint32, bearer uint8, seq uint32) bool {
		seq &= 0xffffff // 24-bit on the wire
		req := BuildCreateSession(SessionRequest{IMSI: imsi, TEID: teid, UEAddr: ueaddr, BearerID: bearer, Seq: seq})
		m, err := UnmarshalGTPC(req.Marshal())
		if err != nil {
			return false
		}
		r, err := ParseSessionRequest(m)
		return err == nil && r.IMSI == imsi && r.TEID == teid && r.UEAddr == ueaddr &&
			r.BearerID == bearer && m.Seq == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncapDecap(b *testing.B) {
	buf := innerPacket("64-byte-ish-payload-for-benchmarking-gtpu-encap")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := EncapGPDU(buf, 1, 2, 3); err != nil {
			b.Fatal(err)
		}
		if _, err := DecapGPDU(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPeekTEIDRejectsPlainUDP(t *testing.T) {
	// A decapsulated inner packet (UDP to port 53) must not be mistaken
	// for GTP-U even though it is IP/UDP.
	buf := innerPacket("hello from the UE")
	if _, err := PeekTEID(buf.Bytes()); err == nil {
		t.Fatal("plain UDP peeked as GTP-U")
	}
	// Wrong GTP version behind the right port is also rejected.
	b2 := pkt.NewBuf(512, 128)
	data, _ := b2.Append(pkt.IPv4HeaderLen + pkt.UDPHeaderLen + HeaderLen)
	ip := pkt.IPv4{Length: uint16(len(data)), TTL: 64, Protocol: pkt.ProtoUDP, Src: 1, Dst: 2}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: PortGTPU, DstPort: PortGTPU, Length: uint16(pkt.UDPHeaderLen + HeaderLen)}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	data[pkt.IPv4HeaderLen+pkt.UDPHeaderLen] = 2 << 5 // GTPv2
	if _, err := PeekTEID(b2.Bytes()); err == nil {
		t.Fatal("GTPv2 peeked as GTP-U v1")
	}
}
