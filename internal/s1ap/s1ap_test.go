package s1ap

import (
	"bytes"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, wire []byte) *PDU {
	t.Helper()
	p, err := Unmarshal(wire)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return p
}

func TestInitialUEMessageRoundTrip(t *testing.T) {
	nas := []byte{0x07, 0x41, 1, 2, 3}
	m := &InitialUEMessage{ENBUEID: 17, NASPDU: nas, TAI: 9, ECGI: 0x00facade}
	got, err := ParseInitialUEMessage(roundTrip(t, m.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if got.ENBUEID != 17 || got.TAI != 9 || got.ECGI != 0x00facade || !bytes.Equal(got.NASPDU, nas) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestNASTransportBothDirections(t *testing.T) {
	for _, uplink := range []bool{false, true} {
		m := &NASTransport{MMEUEID: 1, ENBUEID: 2, NASPDU: []byte{9}, Uplink: uplink}
		got, err := ParseNASTransport(roundTrip(t, m.Marshal()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Uplink != uplink || got.MMEUEID != 1 || got.ENBUEID != 2 {
			t.Fatalf("uplink=%v: %+v", uplink, got)
		}
	}
}

func TestInitialContextSetupRoundTrip(t *testing.T) {
	req := &InitialContextSetupRequest{MMEUEID: 5, ENBUEID: 6, UplinkTEID: 0xabc, CoreAddr: 0x0a000001, NASPDU: []byte{1}}
	gotReq, err := ParseInitialContextSetupRequest(roundTrip(t, req.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if gotReq.UplinkTEID != 0xabc || gotReq.CoreAddr != 0x0a000001 {
		t.Fatalf("req: %+v", gotReq)
	}
	resp := &InitialContextSetupResponse{MMEUEID: 5, ENBUEID: 6, DownlinkTEID: 0xdef, ENBAddr: 0x0b000001}
	gotResp, err := ParseInitialContextSetupResponse(roundTrip(t, resp.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if *gotResp != *resp {
		t.Fatalf("resp: %+v", gotResp)
	}
	// A request does not parse as a response and vice versa.
	if _, err := ParseInitialContextSetupResponse(roundTrip(t, req.Marshal())); err != ErrBadPDUType {
		t.Fatalf("type confusion: %v", err)
	}
}

func TestPathSwitchRoundTrip(t *testing.T) {
	m := &PathSwitchRequest{MMEUEID: 9, ENBUEID: 10, DownlinkTEID: 0x77, ENBAddr: 0x0c000001, ECGI: 3, TAI: 4}
	got, err := ParsePathSwitchRequest(roundTrip(t, m.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("round trip: %+v", got)
	}
	ack := &PathSwitchAck{MMEUEID: 9, ENBUEID: 10}
	p := roundTrip(t, ack.Marshal())
	if p.Type != PDUSuccessful || p.Procedure != ProcPathSwitchRequest {
		t.Fatalf("ack pdu: %+v", p)
	}
}

func TestHandoverMessages(t *testing.T) {
	req := &HandoverRequired{MMEUEID: 1, ENBUEID: 2, TargetENB: 3}
	gotReq, err := ParseHandoverRequired(roundTrip(t, req.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if *gotReq != *req {
		t.Fatalf("required: %+v", gotReq)
	}
	notify := &HandoverNotify{MMEUEID: 1, ENBUEID: 2, DownlinkTEID: 5, ENBAddr: 6, ECGI: 7}
	gotN, err := ParseHandoverNotify(roundTrip(t, notify.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if *gotN != *notify {
		t.Fatalf("notify: %+v", gotN)
	}
}

func TestUEContextReleaseRoundTrip(t *testing.T) {
	m := &UEContextRelease{MMEUEID: 1, ENBUEID: 2, Cause: 3}
	got, err := ParseUEContextRelease(roundTrip(t, m.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	if _, err := Unmarshal(append([]byte{9}, make([]byte, 16)...)); err != ErrBadPDUType {
		t.Fatalf("bad type: %v", err)
	}
	// Corrupt an IE length.
	wire := (&PathSwitchAck{MMEUEID: 1, ENBUEID: 2}).Marshal()
	wire[12] = 0xff
	wire[13] = 0xff
	if _, err := Unmarshal(wire); err != ErrIEFormat {
		t.Fatalf("bad IE: %v", err)
	}
}

func TestMissingIEDetected(t *testing.T) {
	p := &PDU{Type: PDUInitiating, Procedure: ProcInitialUEMessage, IEs: []IE{
		{ID: IENASPDU, Data: []byte{1}},
	}}
	if _, err := ParseInitialUEMessage(roundTrip(t, p.Marshal())); err == nil {
		t.Fatal("missing ENB UE id accepted")
	}
}

// Property: PDU marshal/unmarshal round-trips arbitrary IE sets.
func TestPDURoundTripProperty(t *testing.T) {
	f := func(proc uint8, ieIDs []uint16, blob []byte) bool {
		if len(ieIDs) > 16 {
			ieIDs = ieIDs[:16]
		}
		p := &PDU{Type: PDUInitiating, Procedure: proc}
		for i, id := range ieIDs {
			start := (i * 7) % (len(blob) + 1)
			end := start + i%5
			if end > len(blob) {
				end = len(blob)
			}
			p.IEs = append(p.IEs, IE{ID: id, Data: blob[start:end]})
		}
		got, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		if got.Procedure != proc || len(got.IEs) != len(p.IEs) {
			return false
		}
		for i := range p.IEs {
			if got.IEs[i].ID != p.IEs[i].ID || !bytes.Equal(got.IEs[i].Data, p.IEs[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics on arbitrary input.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInitialUEMessageParse(b *testing.B) {
	nas := make([]byte, 64)
	wire := (&InitialUEMessage{ENBUEID: 1, NASPDU: nas, TAI: 2, ECGI: 3}).Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := Unmarshal(wire)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseInitialUEMessage(p); err != nil {
			b.Fatal(err)
		}
	}
}
