// Package s1ap implements the S1 Application Protocol (3GPP 36.413) that
// eNodeBs speak to the EPC over the S1-MME interface. PEPC terminates
// S1AP on its control threads (paper §4.2: "we have built support for
// S1AP protocol for parsing request messages and sending response
// messages").
//
// Substitution note: real S1AP is ASN.1 PER encoded. This codec keeps the
// standard's procedure codes, IE ids, and message structure (PDU type +
// procedure code + criticality + IE list) but encodes IEs as binary TLVs.
// The paper's control-plane results depend on procedure semantics and
// per-message parse/build cost, not PER bit packing; see DESIGN.md.
package s1ap

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PDU types (initiating / successful outcome / unsuccessful outcome).
const (
	PDUInitiating   uint8 = 0
	PDUSuccessful   uint8 = 1
	PDUUnsuccessful uint8 = 2
)

// Procedure codes (3GPP 36.413 §9.3.7).
const (
	ProcHandoverPreparation   uint8 = 0
	ProcHandoverResourceAlloc uint8 = 1
	ProcHandoverNotification  uint8 = 2
	ProcPathSwitchRequest     uint8 = 3
	ProcERABSetup             uint8 = 5
	ProcInitialContextSetup   uint8 = 9
	ProcDownlinkNASTransport  uint8 = 11
	ProcInitialUEMessage      uint8 = 12
	ProcUplinkNASTransport    uint8 = 13
	ProcUEContextRelease      uint8 = 23
	ProcS1Setup               uint8 = 17
)

// IE ids (3GPP 36.413 §9.3.7, subset).
const (
	IEMMEUES1APID            uint16 = 0
	IEENBUES1APID            uint16 = 8
	IENASPDU                 uint16 = 26
	IETAI                    uint16 = 67
	IEEUTRANCGI              uint16 = 100
	IEERABToBeSetup          uint16 = 24
	IEERABSetupList          uint16 = 28
	IECause                  uint16 = 2
	IESourceTargetContainer  uint16 = 104
	IETargetENBID            uint16 = 4
	IEGTPTEID                uint16 = 105 // within E-RAB IEs
	IETransportLayerAddress  uint16 = 106
	IEUESecurityCapabilities uint16 = 107
	IEGlobalENBID            uint16 = 59
)

// Codec errors.
var (
	ErrShort      = errors.New("s1ap: message too short")
	ErrIEFormat   = errors.New("s1ap: malformed information element")
	ErrMissingIE  = errors.New("s1ap: required IE missing")
	ErrBadPDUType = errors.New("s1ap: unknown PDU type")
)

const headerLen = 8 // pduType(1) procCode(1) criticality(1) pad(1) bodyLen(4)

// IE is one S1AP information element.
type IE struct {
	ID   uint16
	Data []byte
}

// PDU is a decoded S1AP message.
type PDU struct {
	Type      uint8
	Procedure uint8
	IEs       []IE
}

// FindIE returns the first IE with the given id.
func (p *PDU) FindIE(id uint16) ([]byte, bool) {
	for _, ie := range p.IEs {
		if ie.ID == id {
			return ie.Data, true
		}
	}
	return nil, false
}

// Uint32IE extracts a 4-byte IE value.
func (p *PDU) Uint32IE(id uint16) (uint32, error) {
	d, ok := p.FindIE(id)
	if !ok {
		return 0, fmt.Errorf("%w: ie %d", ErrMissingIE, id)
	}
	if len(d) != 4 {
		return 0, ErrIEFormat
	}
	return binary.BigEndian.Uint32(d), nil
}

// Marshal encodes the PDU.
func (p *PDU) Marshal() []byte {
	bodyLen := 2 // IE count
	for _, ie := range p.IEs {
		bodyLen += 4 + len(ie.Data)
	}
	b := make([]byte, headerLen+bodyLen)
	b[0] = p.Type
	b[1] = p.Procedure
	b[2] = 0 // criticality: reject
	binary.BigEndian.PutUint32(b[4:8], uint32(bodyLen))
	binary.BigEndian.PutUint16(b[8:10], uint16(len(p.IEs)))
	o := 10
	for _, ie := range p.IEs {
		binary.BigEndian.PutUint16(b[o:], ie.ID)
		binary.BigEndian.PutUint16(b[o+2:], uint16(len(ie.Data)))
		copy(b[o+4:], ie.Data)
		o += 4 + len(ie.Data)
	}
	return b
}

// Unmarshal decodes one PDU from b.
func Unmarshal(b []byte) (*PDU, error) {
	if len(b) < headerLen+2 {
		return nil, ErrShort
	}
	if b[0] > PDUUnsuccessful {
		return nil, ErrBadPDUType
	}
	bodyLen := int(binary.BigEndian.Uint32(b[4:8]))
	if len(b) < headerLen+bodyLen || bodyLen < 2 {
		return nil, ErrShort
	}
	p := &PDU{Type: b[0], Procedure: b[1]}
	n := int(binary.BigEndian.Uint16(b[8:10]))
	o := 10
	end := headerLen + bodyLen
	for i := 0; i < n; i++ {
		if o+4 > end {
			return nil, ErrIEFormat
		}
		id := binary.BigEndian.Uint16(b[o:])
		l := int(binary.BigEndian.Uint16(b[o+2:]))
		if o+4+l > end {
			return nil, ErrIEFormat
		}
		data := append([]byte(nil), b[o+4:o+4+l]...)
		p.IEs = append(p.IEs, IE{ID: id, Data: data})
		o += 4 + l
	}
	return p, nil
}

func u32IE(id uint16, v uint32) IE {
	d := make([]byte, 4)
	binary.BigEndian.PutUint32(d, v)
	return IE{ID: id, Data: d}
}

func u16IE(id uint16, v uint16) IE {
	d := make([]byte, 2)
	binary.BigEndian.PutUint16(d, v)
	return IE{ID: id, Data: d}
}

// --- Procedure message builders/parsers ---

// InitialUEMessage carries the first NAS message (attach request) from an
// eNodeB, identifying the UE by the eNB's S1AP id and its location.
type InitialUEMessage struct {
	ENBUEID uint32
	NASPDU  []byte
	TAI     uint16
	ECGI    uint32
}

// Marshal encodes the message.
func (m *InitialUEMessage) Marshal() []byte {
	p := PDU{Type: PDUInitiating, Procedure: ProcInitialUEMessage, IEs: []IE{
		u32IE(IEENBUES1APID, m.ENBUEID),
		{ID: IENASPDU, Data: m.NASPDU},
		u16IE(IETAI, m.TAI),
		u32IE(IEEUTRANCGI, m.ECGI),
	}}
	return p.Marshal()
}

// ParseInitialUEMessage extracts the typed fields from a decoded PDU.
func ParseInitialUEMessage(p *PDU) (*InitialUEMessage, error) {
	if p.Procedure != ProcInitialUEMessage || p.Type != PDUInitiating {
		return nil, ErrBadPDUType
	}
	m := &InitialUEMessage{}
	var err error
	if m.ENBUEID, err = p.Uint32IE(IEENBUES1APID); err != nil {
		return nil, err
	}
	nas, ok := p.FindIE(IENASPDU)
	if !ok {
		return nil, ErrMissingIE
	}
	m.NASPDU = nas
	if tai, ok := p.FindIE(IETAI); ok && len(tai) == 2 {
		m.TAI = binary.BigEndian.Uint16(tai)
	}
	if ecgi, err := p.Uint32IE(IEEUTRANCGI); err == nil {
		m.ECGI = ecgi
	}
	return m, nil
}

// NASTransport carries a NAS PDU in either direction once both S1AP ids
// are established.
type NASTransport struct {
	MMEUEID uint32
	ENBUEID uint32
	NASPDU  []byte
	Uplink  bool
}

// Marshal encodes the message.
func (m *NASTransport) Marshal() []byte {
	proc := ProcDownlinkNASTransport
	if m.Uplink {
		proc = ProcUplinkNASTransport
	}
	p := PDU{Type: PDUInitiating, Procedure: proc, IEs: []IE{
		u32IE(IEMMEUES1APID, m.MMEUEID),
		u32IE(IEENBUES1APID, m.ENBUEID),
		{ID: IENASPDU, Data: m.NASPDU},
	}}
	return p.Marshal()
}

// ParseNASTransport extracts the typed fields from a decoded PDU.
func ParseNASTransport(p *PDU) (*NASTransport, error) {
	if p.Procedure != ProcDownlinkNASTransport && p.Procedure != ProcUplinkNASTransport {
		return nil, ErrBadPDUType
	}
	m := &NASTransport{Uplink: p.Procedure == ProcUplinkNASTransport}
	var err error
	if m.MMEUEID, err = p.Uint32IE(IEMMEUES1APID); err != nil {
		return nil, err
	}
	if m.ENBUEID, err = p.Uint32IE(IEENBUES1APID); err != nil {
		return nil, err
	}
	nas, ok := p.FindIE(IENASPDU)
	if !ok {
		return nil, ErrMissingIE
	}
	m.NASPDU = nas
	return m, nil
}

// InitialContextSetupRequest establishes the UE context at the eNodeB:
// the core's data-plane tunnel endpoint plus the attach accept NAS PDU.
type InitialContextSetupRequest struct {
	MMEUEID uint32
	ENBUEID uint32
	// UplinkTEID and CoreAddr tell the eNodeB where to send uplink GTP-U.
	UplinkTEID uint32
	CoreAddr   uint32
	NASPDU     []byte
}

// Marshal encodes the message.
func (m *InitialContextSetupRequest) Marshal() []byte {
	p := PDU{Type: PDUInitiating, Procedure: ProcInitialContextSetup, IEs: []IE{
		u32IE(IEMMEUES1APID, m.MMEUEID),
		u32IE(IEENBUES1APID, m.ENBUEID),
		u32IE(IEGTPTEID, m.UplinkTEID),
		u32IE(IETransportLayerAddress, m.CoreAddr),
		{ID: IENASPDU, Data: m.NASPDU},
	}}
	return p.Marshal()
}

// ParseInitialContextSetupRequest extracts the typed fields.
func ParseInitialContextSetupRequest(p *PDU) (*InitialContextSetupRequest, error) {
	if p.Procedure != ProcInitialContextSetup || p.Type != PDUInitiating {
		return nil, ErrBadPDUType
	}
	m := &InitialContextSetupRequest{}
	var err error
	if m.MMEUEID, err = p.Uint32IE(IEMMEUES1APID); err != nil {
		return nil, err
	}
	if m.ENBUEID, err = p.Uint32IE(IEENBUES1APID); err != nil {
		return nil, err
	}
	if m.UplinkTEID, err = p.Uint32IE(IEGTPTEID); err != nil {
		return nil, err
	}
	if m.CoreAddr, err = p.Uint32IE(IETransportLayerAddress); err != nil {
		return nil, err
	}
	if nas, ok := p.FindIE(IENASPDU); ok {
		m.NASPDU = nas
	}
	return m, nil
}

// InitialContextSetupResponse returns the eNodeB's downlink tunnel
// endpoint.
type InitialContextSetupResponse struct {
	MMEUEID      uint32
	ENBUEID      uint32
	DownlinkTEID uint32
	ENBAddr      uint32
}

// Marshal encodes the message.
func (m *InitialContextSetupResponse) Marshal() []byte {
	p := PDU{Type: PDUSuccessful, Procedure: ProcInitialContextSetup, IEs: []IE{
		u32IE(IEMMEUES1APID, m.MMEUEID),
		u32IE(IEENBUES1APID, m.ENBUEID),
		u32IE(IEGTPTEID, m.DownlinkTEID),
		u32IE(IETransportLayerAddress, m.ENBAddr),
	}}
	return p.Marshal()
}

// ParseInitialContextSetupResponse extracts the typed fields.
func ParseInitialContextSetupResponse(p *PDU) (*InitialContextSetupResponse, error) {
	if p.Procedure != ProcInitialContextSetup || p.Type != PDUSuccessful {
		return nil, ErrBadPDUType
	}
	m := &InitialContextSetupResponse{}
	var err error
	if m.MMEUEID, err = p.Uint32IE(IEMMEUES1APID); err != nil {
		return nil, err
	}
	if m.ENBUEID, err = p.Uint32IE(IEENBUES1APID); err != nil {
		return nil, err
	}
	if m.DownlinkTEID, err = p.Uint32IE(IEGTPTEID); err != nil {
		return nil, err
	}
	if m.ENBAddr, err = p.Uint32IE(IETransportLayerAddress); err != nil {
		return nil, err
	}
	return m, nil
}

// PathSwitchRequest reports an X2 handover that already happened: the UE
// now sits behind a new eNodeB whose downlink endpoint must replace the
// old one.
type PathSwitchRequest struct {
	MMEUEID      uint32
	ENBUEID      uint32
	DownlinkTEID uint32
	ENBAddr      uint32
	ECGI         uint32
	TAI          uint16
}

// Marshal encodes the message.
func (m *PathSwitchRequest) Marshal() []byte {
	p := PDU{Type: PDUInitiating, Procedure: ProcPathSwitchRequest, IEs: []IE{
		u32IE(IEMMEUES1APID, m.MMEUEID),
		u32IE(IEENBUES1APID, m.ENBUEID),
		u32IE(IEGTPTEID, m.DownlinkTEID),
		u32IE(IETransportLayerAddress, m.ENBAddr),
		u32IE(IEEUTRANCGI, m.ECGI),
		u16IE(IETAI, m.TAI),
	}}
	return p.Marshal()
}

// ParsePathSwitchRequest extracts the typed fields.
func ParsePathSwitchRequest(p *PDU) (*PathSwitchRequest, error) {
	if p.Procedure != ProcPathSwitchRequest || p.Type != PDUInitiating {
		return nil, ErrBadPDUType
	}
	m := &PathSwitchRequest{}
	var err error
	if m.MMEUEID, err = p.Uint32IE(IEMMEUES1APID); err != nil {
		return nil, err
	}
	if m.ENBUEID, err = p.Uint32IE(IEENBUES1APID); err != nil {
		return nil, err
	}
	if m.DownlinkTEID, err = p.Uint32IE(IEGTPTEID); err != nil {
		return nil, err
	}
	if m.ENBAddr, err = p.Uint32IE(IETransportLayerAddress); err != nil {
		return nil, err
	}
	if ecgi, err := p.Uint32IE(IEEUTRANCGI); err == nil {
		m.ECGI = ecgi
	}
	if tai, ok := p.FindIE(IETAI); ok && len(tai) == 2 {
		m.TAI = binary.BigEndian.Uint16(tai)
	}
	return m, nil
}

// PathSwitchAck acknowledges a path switch.
type PathSwitchAck struct {
	MMEUEID uint32
	ENBUEID uint32
}

// Marshal encodes the message.
func (m *PathSwitchAck) Marshal() []byte {
	p := PDU{Type: PDUSuccessful, Procedure: ProcPathSwitchRequest, IEs: []IE{
		u32IE(IEMMEUES1APID, m.MMEUEID),
		u32IE(IEENBUES1APID, m.ENBUEID),
	}}
	return p.Marshal()
}

// HandoverRequired starts an S1 handover: the source eNodeB asks the core
// to move the UE to the target eNodeB (used when eNodeBs are not directly
// connected, the case the paper's S1-handover workload models).
type HandoverRequired struct {
	MMEUEID   uint32
	ENBUEID   uint32
	TargetENB uint32
}

// Marshal encodes the message.
func (m *HandoverRequired) Marshal() []byte {
	p := PDU{Type: PDUInitiating, Procedure: ProcHandoverPreparation, IEs: []IE{
		u32IE(IEMMEUES1APID, m.MMEUEID),
		u32IE(IEENBUES1APID, m.ENBUEID),
		u32IE(IETargetENBID, m.TargetENB),
	}}
	return p.Marshal()
}

// ParseHandoverRequired extracts the typed fields.
func ParseHandoverRequired(p *PDU) (*HandoverRequired, error) {
	if p.Procedure != ProcHandoverPreparation || p.Type != PDUInitiating {
		return nil, ErrBadPDUType
	}
	m := &HandoverRequired{}
	var err error
	if m.MMEUEID, err = p.Uint32IE(IEMMEUES1APID); err != nil {
		return nil, err
	}
	if m.ENBUEID, err = p.Uint32IE(IEENBUES1APID); err != nil {
		return nil, err
	}
	if m.TargetENB, err = p.Uint32IE(IETargetENBID); err != nil {
		return nil, err
	}
	return m, nil
}

// HandoverNotify completes an S1 handover: the target eNodeB reports the
// UE arrived and supplies its new downlink endpoint.
type HandoverNotify struct {
	MMEUEID      uint32
	ENBUEID      uint32
	DownlinkTEID uint32
	ENBAddr      uint32
	ECGI         uint32
}

// Marshal encodes the message.
func (m *HandoverNotify) Marshal() []byte {
	p := PDU{Type: PDUInitiating, Procedure: ProcHandoverNotification, IEs: []IE{
		u32IE(IEMMEUES1APID, m.MMEUEID),
		u32IE(IEENBUES1APID, m.ENBUEID),
		u32IE(IEGTPTEID, m.DownlinkTEID),
		u32IE(IETransportLayerAddress, m.ENBAddr),
		u32IE(IEEUTRANCGI, m.ECGI),
	}}
	return p.Marshal()
}

// ParseHandoverNotify extracts the typed fields.
func ParseHandoverNotify(p *PDU) (*HandoverNotify, error) {
	if p.Procedure != ProcHandoverNotification || p.Type != PDUInitiating {
		return nil, ErrBadPDUType
	}
	m := &HandoverNotify{}
	var err error
	if m.MMEUEID, err = p.Uint32IE(IEMMEUES1APID); err != nil {
		return nil, err
	}
	if m.ENBUEID, err = p.Uint32IE(IEENBUES1APID); err != nil {
		return nil, err
	}
	if m.DownlinkTEID, err = p.Uint32IE(IEGTPTEID); err != nil {
		return nil, err
	}
	if m.ENBAddr, err = p.Uint32IE(IETransportLayerAddress); err != nil {
		return nil, err
	}
	if ecgi, err := p.Uint32IE(IEEUTRANCGI); err == nil {
		m.ECGI = ecgi
	}
	return m, nil
}

// UEContextRelease asks the eNodeB to drop the UE context (detach or
// inactivity).
type UEContextRelease struct {
	MMEUEID uint32
	ENBUEID uint32
	Cause   uint8
}

// Marshal encodes the message.
func (m *UEContextRelease) Marshal() []byte {
	p := PDU{Type: PDUInitiating, Procedure: ProcUEContextRelease, IEs: []IE{
		u32IE(IEMMEUES1APID, m.MMEUEID),
		u32IE(IEENBUES1APID, m.ENBUEID),
		{ID: IECause, Data: []byte{m.Cause}},
	}}
	return p.Marshal()
}

// ParseUEContextRelease extracts the typed fields.
func ParseUEContextRelease(p *PDU) (*UEContextRelease, error) {
	if p.Procedure != ProcUEContextRelease {
		return nil, ErrBadPDUType
	}
	m := &UEContextRelease{}
	var err error
	if m.MMEUEID, err = p.Uint32IE(IEMMEUES1APID); err != nil {
		return nil, err
	}
	if m.ENBUEID, err = p.Uint32IE(IEENBUES1APID); err != nil {
		return nil, err
	}
	if c, ok := p.FindIE(IECause); ok && len(c) == 1 {
		m.Cause = c[0]
	}
	return m, nil
}
