package pcrf

import (
	"testing"

	"pepc/internal/bpf"
	"pepc/internal/diameter"
	"pepc/internal/pcef"
)

func sampleRules() []pcef.Rule {
	return []pcef.Rule{
		{ID: 1, Precedence: 10, Action: pcef.ActionDrop,
			Filter: bpf.FilterSpec{Proto: 6, DstPortLo: 25, DstPortHi: 25}},
		{ID: 2, Precedence: 20, Action: pcef.ActionRateLimit, RateBitsPerSec: 2e6, ChargingKey: 7,
			Filter: bpf.FilterSpec{Proto: 17}},
	}
}

func ccr(imsi uint64, reqType uint32) *diameter.Message {
	return diameter.NewRequest(diameter.CmdCreditControl, diameter.AppGx, 1, 1,
		diameter.U64AVP(diameter.AVPUserName, imsi),
		diameter.U32AVP(diameter.AVPCCRequestType, reqType),
	)
}

func TestCCRInitialReturnsRules(t *testing.T) {
	p := New()
	p.SetProfile(100, sampleRules())
	ans, err := diameter.Call(p, ccr(100, CCRInitial))
	if err != nil {
		t.Fatal(err)
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		t.Fatalf("result: %d", ans.ResultCode())
	}
	rules, err := ParseRuleInstalls(ans)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules: %d", len(rules))
	}
	if rules[0].ID != 1 || rules[0].Action != pcef.ActionDrop || rules[0].Precedence != 10 {
		t.Fatalf("rule 0: %+v", rules[0])
	}
	if rules[1].RateBitsPerSec != 2e6 || rules[1].ChargingKey != 7 {
		t.Fatalf("rule 1: %+v", rules[1])
	}
	if rules[0].Filter.DstPortLo != 25 || rules[1].Filter.Proto != 17 {
		t.Fatalf("filters: %+v %+v", rules[0].Filter, rules[1].Filter)
	}
	if p.ActiveSessions() != 1 {
		t.Fatalf("sessions: %d", p.ActiveSessions())
	}
}

func TestDefaultRulesApply(t *testing.T) {
	p := New()
	p.SetDefaultRules(sampleRules()[:1])
	ans, _ := diameter.Call(p, ccr(555, CCRInitial))
	rules, err := ParseRuleInstalls(ans)
	if err != nil || len(rules) != 1 {
		t.Fatalf("default rules: %d %v", len(rules), err)
	}
}

func TestCCRTerminationClosesSession(t *testing.T) {
	p := New()
	diameter.Call(p, ccr(1, CCRInitial))
	if p.ActiveSessions() != 1 {
		t.Fatal("session not opened")
	}
	ans, _ := diameter.Call(p, ccr(1, CCRTermination))
	if ans.ResultCode() != diameter.ResultSuccess || p.ActiveSessions() != 0 {
		t.Fatalf("termination: rc=%d sessions=%d", ans.ResultCode(), p.ActiveSessions())
	}
}

func TestCCRUpdateAccepted(t *testing.T) {
	p := New()
	diameter.Call(p, ccr(1, CCRInitial))
	ans, _ := diameter.Call(p, ccr(1, CCRUpdate))
	if ans.ResultCode() != diameter.ResultSuccess {
		t.Fatalf("update: %d", ans.ResultCode())
	}
}

func TestPushRequiresSession(t *testing.T) {
	p := New()
	var pushed []pcef.Rule
	p.OnPush(func(imsi uint64, rules []pcef.Rule) { pushed = rules })
	if err := p.Push(9, sampleRules()); err != ErrUnknownProfile {
		t.Fatalf("push without session: %v", err)
	}
	diameter.Call(p, ccr(9, CCRInitial))
	if err := p.Push(9, sampleRules()[:1]); err != nil {
		t.Fatal(err)
	}
	if len(pushed) != 1 {
		t.Fatalf("push listener got %d rules", len(pushed))
	}
	// Pushed rules become part of the profile.
	if got := len(p.RulesFor(9)); got != 1 {
		t.Fatalf("profile after push: %d", got)
	}
}

func TestHandleRejectsWrongApp(t *testing.T) {
	p := New()
	req := diameter.NewRequest(diameter.CmdCreditControl, diameter.AppS6a, 1, 1,
		diameter.U64AVP(diameter.AVPUserName, 1))
	ans, _ := diameter.Call(p, req)
	if ans.ResultCode() != diameter.ResultUnableToComply {
		t.Fatalf("wrong app: %d", ans.ResultCode())
	}
}

func TestFilterMarshalRoundTrip(t *testing.T) {
	f := bpf.FilterSpec{SrcAddr: 1, SrcPrefix: 8, DstAddr: 2, DstPrefix: 24,
		Proto: 6, SrcPortLo: 1, SrcPortHi: 2, DstPortLo: 3, DstPortHi: 4, Ret: 5}
	b := marshalFilter(f, pcef.ActionMark, 999, 0x2e)
	got, action, rate, dscp, err := unmarshalFilter(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != f || action != pcef.ActionMark || rate != 999 || dscp != 0x2e {
		t.Fatalf("round trip: %+v %v %d %d", got, action, rate, dscp)
	}
	if _, _, _, _, err := unmarshalFilter(b[:10]); err == nil {
		t.Fatal("short filter accepted")
	}
}
