// Package pcrf implements the Policy and Charging Rules Function: the
// backend that authorizes sessions and installs PCC rules into the PCEF
// over the Gx interface. PEPC leaves the PCRF unchanged (paper §3) and
// reaches it through the node proxy ("the interface between the proxy
// and PCRF is the same as the current interface between the P-GW and
// PCRF ... referred to as Gx", §3.3).
package pcrf

import (
	"encoding/binary"
	"errors"
	"sync"

	"pepc/internal/bpf"
	"pepc/internal/diameter"
	"pepc/internal/pcef"
)

// Errors.
var ErrUnknownProfile = errors.New("pcrf: no policy profile for subscriber")

// CC-Request-Type values (RFC 4006).
const (
	CCRInitial     uint32 = 1
	CCRUpdate      uint32 = 2
	CCRTermination uint32 = 3
)

// PCRF holds per-subscriber policy profiles and serves Gx.
type PCRF struct {
	mu       sync.RWMutex
	profiles map[uint64][]pcef.Rule
	// defaultRules apply to subscribers without an explicit profile.
	defaultRules []pcef.Rule

	// push delivers unsolicited rule installs (RAR) to the registered
	// listener (the node proxy).
	pushMu   sync.RWMutex
	pushFn   func(imsi uint64, rules []pcef.Rule)
	sessions map[uint64]bool
}

// New returns a PCRF with an empty rule base.
func New() *PCRF {
	return &PCRF{
		profiles: make(map[uint64][]pcef.Rule),
		sessions: make(map[uint64]bool),
	}
}

// SetDefaultRules installs rules that apply to any subscriber lacking a
// profile.
func (p *PCRF) SetDefaultRules(rules []pcef.Rule) {
	p.mu.Lock()
	p.defaultRules = append([]pcef.Rule(nil), rules...)
	p.mu.Unlock()
}

// SetProfile installs a subscriber-specific rule profile.
func (p *PCRF) SetProfile(imsi uint64, rules []pcef.Rule) {
	p.mu.Lock()
	p.profiles[imsi] = append([]pcef.Rule(nil), rules...)
	p.mu.Unlock()
}

// RulesFor resolves the rules for a subscriber.
func (p *PCRF) RulesFor(imsi uint64) []pcef.Rule {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if r, ok := p.profiles[imsi]; ok {
		return r
	}
	return p.defaultRules
}

// OnPush registers the listener for unsolicited RAR rule installs.
func (p *PCRF) OnPush(fn func(imsi uint64, rules []pcef.Rule)) {
	p.pushMu.Lock()
	p.pushFn = fn
	p.pushMu.Unlock()
}

// Push installs rules for a subscriber immediately (the RAR path),
// notifying the registered listener. The subscriber must have an active
// Gx session.
func (p *PCRF) Push(imsi uint64, rules []pcef.Rule) error {
	p.mu.Lock()
	active := p.sessions[imsi]
	if active {
		p.profiles[imsi] = append(p.profiles[imsi], rules...)
	}
	p.mu.Unlock()
	if !active {
		return ErrUnknownProfile
	}
	p.pushMu.RLock()
	fn := p.pushFn
	p.pushMu.RUnlock()
	if fn != nil {
		fn(imsi, rules)
	}
	return nil
}

// ActiveSessions returns the number of open Gx sessions.
func (p *PCRF) ActiveSessions() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, v := range p.sessions {
		if v {
			n++
		}
	}
	return n
}

// Handle implements diameter.Handler for Gx CCR messages.
func (p *PCRF) Handle(req *diameter.Message) (*diameter.Message, error) {
	if !req.IsRequest() || req.AppID != diameter.AppGx || req.Code != diameter.CmdCreditControl {
		return req.Answer(diameter.ResultUnableToComply), nil
	}
	userAVP, ok := req.Find(diameter.AVPUserName)
	if !ok {
		return req.Answer(diameter.ResultUnableToComply), nil
	}
	imsi, err := userAVP.Uint64()
	if err != nil {
		return req.Answer(diameter.ResultUnableToComply), nil
	}
	reqType := CCRInitial
	if a, ok := req.Find(diameter.AVPCCRequestType); ok {
		if v, err := a.Uint32(); err == nil {
			reqType = v
		}
	}
	switch reqType {
	case CCRInitial:
		p.mu.Lock()
		p.sessions[imsi] = true
		p.mu.Unlock()
		rules := p.RulesFor(imsi)
		avps := make([]diameter.AVP, 0, len(rules))
		for _, r := range rules {
			avps = append(avps, ruleInstallAVP(r))
		}
		return req.Answer(diameter.ResultSuccess, avps...), nil
	case CCRUpdate:
		// Usage report; accept and return success (quota management is
		// out of scope).
		return req.Answer(diameter.ResultSuccess), nil
	case CCRTermination:
		// A CCR-T may carry several User-Name AVPs: the node proxy
		// coalesces a detach batch into one termination round-trip.
		p.mu.Lock()
		delete(p.sessions, imsi)
		for _, ua := range req.FindAll(diameter.AVPUserName)[1:] {
			if extra, err := ua.Uint64(); err == nil {
				delete(p.sessions, extra)
			}
		}
		p.mu.Unlock()
		return req.Answer(diameter.ResultSuccess), nil
	default:
		return req.Answer(diameter.ResultUnableToComply), nil
	}
}

// ruleInstallAVP encodes a PCC rule as a Charging-Rule-Install grouped
// AVP.
func ruleInstallAVP(r pcef.Rule) diameter.AVP {
	return diameter.Grouped(diameter.AVPChargingRuleInstall,
		diameter.Grouped(diameter.AVPChargingRuleDefinition,
			diameter.U32AVP(diameter.AVPChargingRuleName, r.ID),
			diameter.U32AVP(diameter.AVPPrecedence, uint32(r.Precedence)),
			diameter.U32AVP(diameter.AVPRatingGroup, r.ChargingKey),
			diameter.AVP{Code: diameter.AVPFlowDescription, Data: marshalFilter(r.Filter, r.Action, r.RateBitsPerSec, r.DSCP)},
		),
	)
}

// ParseRuleInstalls decodes every Charging-Rule-Install AVP in a CCA/RAR
// back into PCC rules (client side: the node proxy).
func ParseRuleInstalls(m *diameter.Message) ([]pcef.Rule, error) {
	return ParseRuleInstallsAppend(m, nil)
}

// ParseRuleInstallsAppend is ParseRuleInstalls appending into a
// caller-provided slice, so the control plane's attach path can reuse a
// preallocated rule scratch across procedures.
func ParseRuleInstallsAppend(m *diameter.Message, rules []pcef.Rule) ([]pcef.Rule, error) {
	for _, inst := range m.FindAll(diameter.AVPChargingRuleInstall) {
		defs, err := inst.SubAVPs()
		if err != nil {
			return nil, err
		}
		for _, def := range defs {
			if def.Code != diameter.AVPChargingRuleDefinition {
				continue
			}
			subs, err := def.SubAVPs()
			if err != nil {
				return nil, err
			}
			var r pcef.Rule
			for _, a := range subs {
				switch a.Code {
				case diameter.AVPChargingRuleName:
					v, err := a.Uint32()
					if err != nil {
						return nil, err
					}
					r.ID = v
				case diameter.AVPPrecedence:
					v, err := a.Uint32()
					if err != nil {
						return nil, err
					}
					r.Precedence = uint16(v)
				case diameter.AVPRatingGroup:
					v, err := a.Uint32()
					if err != nil {
						return nil, err
					}
					r.ChargingKey = v
				case diameter.AVPFlowDescription:
					f, action, rate, dscp, err := unmarshalFilter(a.Data)
					if err != nil {
						return nil, err
					}
					r.Filter, r.Action, r.RateBitsPerSec, r.DSCP = f, action, rate, dscp
				}
			}
			rules = append(rules, r)
		}
	}
	return rules, nil
}

// marshalFilter serializes a filter spec + action compactly (the
// Flow-Description AVP is free text IPFilterRule in the standard; a
// binary layout keeps the proxy paths allocation-light).
func marshalFilter(f bpf.FilterSpec, action pcef.Action, rate uint64, dscp uint8) []byte {
	b := make([]byte, 33)
	be := binary.BigEndian
	be.PutUint32(b[0:], f.SrcAddr)
	b[4] = f.SrcPrefix
	be.PutUint32(b[5:], f.DstAddr)
	b[9] = f.DstPrefix
	b[10] = f.Proto
	be.PutUint16(b[11:], f.SrcPortLo)
	be.PutUint16(b[13:], f.SrcPortHi)
	be.PutUint16(b[15:], f.DstPortLo)
	be.PutUint16(b[17:], f.DstPortHi)
	be.PutUint32(b[19:], f.Ret)
	b[23] = uint8(action)
	be.PutUint64(b[24:], rate)
	b[32] = dscp
	return b
}

func unmarshalFilter(b []byte) (bpf.FilterSpec, pcef.Action, uint64, uint8, error) {
	var f bpf.FilterSpec
	if len(b) != 33 {
		return f, 0, 0, 0, diameter.ErrAVP
	}
	be := binary.BigEndian
	f.SrcAddr = be.Uint32(b[0:])
	f.SrcPrefix = b[4]
	f.DstAddr = be.Uint32(b[5:])
	f.DstPrefix = b[9]
	f.Proto = b[10]
	f.SrcPortLo = be.Uint16(b[11:])
	f.SrcPortHi = be.Uint16(b[13:])
	f.DstPortLo = be.Uint16(b[15:])
	f.DstPortHi = be.Uint16(b[17:])
	f.Ret = be.Uint32(b[19:])
	return f, pcef.Action(b[23]), be.Uint64(b[24:]), b[32], nil
}
