package enb

import (
	"sync"
	"testing"
	"time"

	"pepc/internal/core"
	"pepc/internal/hss"
	"pepc/internal/pcrf"
	"pepc/internal/pkt"
	"pepc/internal/sctp"
	"pepc/internal/state"
)

// harness brings up a slice + proxy + S1AP server and returns an eNodeB
// bound to it.
func harness(t *testing.T, provision int) (*ENB, *core.S1APServer, *core.Node) {
	t.Helper()
	hssDB := hss.New()
	hssDB.ProvisionRange(1, provision, 10e6, 50e6)
	node := core.NewNode(core.SliceConfig{ID: 1, UserHint: 256})
	node.AttachProxy(core.NewProxy(hssDB, pcrf.New()))

	cw, sw := sctp.Pipe(1024)
	acceptDone := make(chan *sctp.Assoc, 1)
	go func() {
		a, _ := sctp.Accept(sw, sctp.Config{Tag: 2})
		acceptDone <- a
	}()
	client, err := sctp.Dial(cw, sctp.Config{Tag: 1})
	if err != nil {
		t.Fatal(err)
	}
	server := <-acceptDone
	if server == nil {
		t.Fatal("accept failed")
	}
	srv, err := node.ServeS1AP(0, server)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go srv.Serve(stop)
	t.Cleanup(func() {
		close(stop)
		client.Close()
	})
	return New(pkt.IPv4Addr(192, 168, 7, 1), 5, 0x500, client), srv, node
}

func TestAttachGrantsSession(t *testing.T) {
	base, srv, node := harness(t, 10)
	ue := NewUE(3)
	if err := base.Attach(ue); err != nil {
		t.Fatal(err)
	}
	if !ue.Attached || ue.UplinkTEID == 0 || ue.UEAddr == 0 || ue.GUTI == 0 || ue.DownlinkTEID == 0 {
		t.Fatalf("session: %+v", ue)
	}
	if ue.KASME == [32]byte{} {
		t.Fatal("no key established")
	}
	// The core registered the user with the node demux.
	if idx, ok := node.Demux().LookupSlice(ue.UplinkTEID); !ok || idx != 0 {
		t.Fatalf("demux: %d %v", idx, ok)
	}
	if base.Attaches.Load() != 1 {
		t.Fatalf("enb counter = %d", base.Attaches.Load())
	}
	deadline := time.After(time.Second)
	for srv.AttachesCompleted.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("server never saw attach complete")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestSequentialAttachesShareAssociation(t *testing.T) {
	base, _, _ := harness(t, 20)
	for i := 1; i <= 5; i++ {
		ue := NewUE(uint64(i))
		if err := base.Attach(ue); err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
	}
	if base.Attaches.Load() != 5 {
		t.Fatalf("attaches = %d", base.Attaches.Load())
	}
}

func TestAttachUnknownSubscriberTimesOut(t *testing.T) {
	base, srv, _ := harness(t, 5)
	base.Timeout = 100 * time.Millisecond
	ue := NewUE(999) // not provisioned
	if err := base.Attach(ue); err == nil {
		t.Fatal("unknown subscriber attached")
	}
	if ue.Attached {
		t.Fatal("session marked attached")
	}
	if srv.AttachesFailed.Load() != 1 {
		t.Fatalf("server failed counter = %d", srv.AttachesFailed.Load())
	}
}

func TestUEVerifiesNetworkAUTN(t *testing.T) {
	// A UE with the wrong key must reject the network's challenge (the
	// mutual part of AKA) — the client side fails before sending RES.
	base, _, _ := harness(t, 10)
	base.Timeout = 200 * time.Millisecond
	ue := NewUE(4)
	ue.K = [16]byte{0xde, 0xad} // corrupt USIM key
	err := base.Attach(ue)
	if err == nil {
		t.Fatal("attach succeeded with wrong key")
	}
}

func TestPathSwitchMovesDownlink(t *testing.T) {
	base, _, node := harness(t, 10)
	ue := NewUE(6)
	if err := base.Attach(ue); err != nil {
		t.Fatal(err)
	}
	oldTEID := ue.DownlinkTEID
	base2 := New(pkt.IPv4Addr(192, 168, 7, 2), 6, 0x600, base.Assoc())
	if err := base2.PathSwitch(ue); err != nil {
		t.Fatal(err)
	}
	if ue.DownlinkTEID == oldTEID {
		t.Fatal("downlink TEID unchanged after path switch")
	}
	ctx := node.Slice(0).Control().Lookup(6)
	if ctx == nil {
		t.Fatal("user lost")
	}
	var enbAddr uint32
	ctx.ReadCtrl(func(c *state.ControlState) { enbAddr = c.ENBAddr })
	if enbAddr != base2.Addr {
		t.Fatalf("core eNB addr = %s, want %s", pkt.FormatIPv4(enbAddr), pkt.FormatIPv4(base2.Addr))
	}
	if base2.Handovers.Load() != 1 {
		t.Fatalf("handover counter = %d", base2.Handovers.Load())
	}
}

func TestReleaseDetaches(t *testing.T) {
	base, _, node := harness(t, 10)
	ue := NewUE(7)
	if err := base.Attach(ue); err != nil {
		t.Fatal(err)
	}
	if err := base.Release(ue); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(time.Second)
	for node.Slice(0).Control().Lookup(7) != nil {
		select {
		case <-deadline:
			t.Fatal("release not processed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if ue.Attached {
		t.Fatal("UE still marked attached")
	}
}

func TestS1HandoverViaCore(t *testing.T) {
	base, _, node := harness(t, 10)
	ue := NewUE(8)
	if err := base.Attach(ue); err != nil {
		t.Fatal(err)
	}
	// Target eNodeB shares the association in this harness (one wire);
	// distinct identity and endpoints.
	target := New(pkt.IPv4Addr(192, 168, 7, 99), 9, 0x900, base.Assoc())
	oldTEID := ue.DownlinkTEID
	if err := base.S1Handover(ue, target); err != nil {
		t.Fatal(err)
	}
	if ue.DownlinkTEID == oldTEID {
		t.Fatal("downlink TEID unchanged")
	}
	// The core's tunnel state follows the UE once the notify processes.
	deadline := time.After(time.Second)
	for {
		ctx := node.Slice(0).Control().Lookup(8)
		var addr uint32
		ctx.ReadCtrl(func(c *state.ControlState) { addr = c.ENBAddr })
		if addr == target.Addr {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("core eNB addr = %s, want %s", pkt.FormatIPv4(addr), pkt.FormatIPv4(target.Addr))
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestAttachSurvivesPacketLoss(t *testing.T) {
	// The full attach procedure completes over a wire dropping 20% of
	// DATA packets in both directions: SCTP-lite's retransmission
	// carries the S1AP/NAS exchange through.
	hssDB := hss.New()
	hssDB.ProvisionRange(1, 10, 10e6, 50e6)
	node := core.NewNode(core.SliceConfig{ID: 1, UserHint: 64})
	node.AttachProxy(core.NewProxy(hssDB, pcrf.New()))

	cw, sw := sctp.Pipe(1024)
	acceptDone := make(chan *sctp.Assoc, 1)
	go func() {
		a, _ := sctp.Accept(sw, sctp.Config{Tag: 2, RTO: 10 * time.Millisecond})
		acceptDone <- a
	}()
	client, err := sctp.Dial(cw, sctp.Config{Tag: 1, RTO: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	server := <-acceptDone
	srv, err := node.ServeS1AP(0, server)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go srv.Serve(stop)
	t.Cleanup(func() {
		close(stop)
		client.Close()
	})

	// Loss injection AFTER establishment, deterministic pattern: every
	// 5th DATA packet is dropped. Only data packets advance the counter —
	// if control chunks (SACKs, heartbeats) counted too, a retransmission
	// cycle emitting a multiple-of-5 packets could phase-lock so the SAME
	// chunk is dropped on every retransmit until the limit trips; counting
	// data only makes that impossible (the retransmitted chunk itself
	// advances the phase).
	var mu sync.Mutex
	n := 0
	dropData := func(b []byte) bool {
		if !isDataPacket(b) {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		n++
		return n%5 == 0
	}
	cw.SetDropFn(dropData)
	sw.SetDropFn(dropData)

	base := New(pkt.IPv4Addr(192, 168, 7, 50), 5, 0x550, client)
	base.Timeout = 10 * time.Second
	for i := 1; i <= 3; i++ {
		ue := NewUE(uint64(i))
		if err := base.Attach(ue); err != nil {
			t.Fatalf("attach %d under loss: %v", i, err)
		}
	}
	if client.Stats().Retransmits == 0 && server.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions despite injected loss")
	}
}

// isDataPacket reports whether an SCTP packet's first chunk is DATA (so
// loss injection spares control chunks like SACKs, keeping the test
// focused and fast).
func isDataPacket(b []byte) bool {
	return len(b) > 12 && b[12] == 0 // ChunkData
}
