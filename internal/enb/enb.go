// Package enb emulates the radio access network side of the EPC: an
// eNodeB with attached UEs that speaks S1AP/NAS over SCTP-lite to the
// core's control plane and sources/sinks GTP-U user traffic — the role
// the paper fills with OpenAirInterface traces and the ng4T RAN emulator
// (§5.1).
package enb

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"pepc/internal/hss"
	"pepc/internal/nas"
	"pepc/internal/s1ap"
	"pepc/internal/sctp"
)

// Errors.
var (
	ErrAuthFailed    = errors.New("enb: network authentication failed (AUTN)")
	ErrUnexpectedMsg = errors.New("enb: unexpected message")
	ErrTimeout       = errors.New("enb: procedure timeout")
)

// UE is one emulated device: its USIM credentials and, after attach, the
// session the network granted.
type UE struct {
	IMSI uint64
	K    [16]byte
	// LastSQN tracks the USIM sequence number for AUTN verification.
	LastSQN uint64

	// Session state after a successful attach.
	Attached     bool
	GUTI         uint64
	UEAddr       uint32
	UplinkTEID   uint32 // core's TEID: where the eNodeB sends uplink
	CoreAddr     uint32
	DownlinkTEID uint32 // this eNodeB's TEID for the UE's downlink
	ENBUEID      uint32
	MMEUEID      uint32
	KASME        [32]byte
}

// NewUE creates a UE whose key matches the HSS bulk-provisioning
// derivation.
func NewUE(imsi uint64) *UE {
	return &UE{IMSI: imsi, K: hss.KeyForIMSI(imsi)}
}

// ENB is an emulated eNodeB: one S1AP association toward the core plus
// local identifiers.
type ENB struct {
	// Addr is the eNodeB's data-plane address (GTP-U endpoint).
	Addr uint32
	// TAI/ECGI describe the cell.
	TAI  uint16
	ECGI uint32

	assoc *sctp.Assoc

	nextENBUEID uint32
	nextDLTEID  uint32

	// Timeout bounds each procedure step (default 5s).
	Timeout time.Duration

	// Counters.
	Attaches  atomic.Uint64
	Handovers atomic.Uint64
}

// New returns an eNodeB bound to an established association. Downlink
// TEIDs are drawn from a per-cell block derived from the ECGI so two
// eNodeBs never hand out the same tunnel id.
func New(addr uint32, tai uint16, ecgi uint32, assoc *sctp.Assoc) *ENB {
	return &ENB{Addr: addr, TAI: tai, ECGI: ecgi, assoc: assoc, Timeout: 5 * time.Second,
		nextDLTEID: 0x0100_0000 | (ecgi&0xfff)<<12}
}

// Assoc returns the eNodeB's S1AP association.
func (e *ENB) Assoc() *sctp.Assoc { return e.assoc }

func (e *ENB) recvPDU() (*s1ap.PDU, error) {
	msg, err := e.assoc.RecvTimeout(e.Timeout)
	if err != nil {
		return nil, err
	}
	return s1ap.Unmarshal(msg.Data)
}

// Attach runs the full attach procedure for a UE: attach request,
// authentication challenge/response (with real AUTN verification and RES
// computation against the UE key), security mode, initial context setup,
// attach complete. On success the UE carries its granted session.
func (e *ENB) Attach(ue *UE) error {
	e.nextENBUEID++
	ue.ENBUEID = e.nextENBUEID

	// 1. Attach request inside InitialUEMessage.
	req := &nas.AttachRequest{IMSI: ue.IMSI, UENetworkCapability: 0x8020}
	init := &s1ap.InitialUEMessage{ENBUEID: ue.ENBUEID, NASPDU: req.Marshal(), TAI: e.TAI, ECGI: e.ECGI}
	if err := e.assoc.Send(0, sctp.PPIDS1AP, init.Marshal()); err != nil {
		return err
	}

	// 2. Authentication challenge.
	pdu, err := e.recvPDU()
	if err != nil {
		return err
	}
	dl, err := s1ap.ParseNASTransport(pdu)
	if err != nil {
		return err
	}
	ue.MMEUEID = dl.MMEUEID
	challenge, err := nas.UnmarshalAuthenticationRequest(dl.NASPDU)
	if err != nil {
		return fmt.Errorf("%w: expected authentication request", ErrUnexpectedMsg)
	}
	sqn, ok := hss.VerifyAUTN(ue.K, challenge.RAND, challenge.AUTN, ue.LastSQN, 64)
	if !ok {
		return ErrAuthFailed
	}
	ue.LastSQN = sqn
	vec := hss.GenerateVector(ue.K, challenge.RAND, sqn)
	ue.KASME = vec.KASME

	// 3. Authentication response.
	resp := &nas.AuthenticationResponse{RES: vec.XRES}
	ul := &s1ap.NASTransport{MMEUEID: ue.MMEUEID, ENBUEID: ue.ENBUEID, NASPDU: resp.Marshal(), Uplink: true}
	if err := e.assoc.Send(0, sctp.PPIDS1AP, ul.Marshal()); err != nil {
		return err
	}

	// 4. Security mode command → complete (verify the network's MAC).
	pdu, err = e.recvPDU()
	if err != nil {
		return err
	}
	dl, err = s1ap.ParseNASTransport(pdu)
	if err != nil {
		return err
	}
	inner, mac, seq, protected, err := nas.UnwrapProtected(dl.NASPDU)
	if err != nil {
		return err
	}
	if !protected || nas.ComputeMAC(ue.KASME, seq, inner) != mac {
		return fmt.Errorf("%w: security mode command integrity", ErrAuthFailed)
	}
	if _, err := nas.UnmarshalSecurityModeCommand(inner); err != nil {
		return fmt.Errorf("%w: expected security mode command", ErrUnexpectedMsg)
	}
	smcDone := (&nas.SecurityModeComplete{}).Marshal()
	ul = &s1ap.NASTransport{MMEUEID: ue.MMEUEID, ENBUEID: ue.ENBUEID, NASPDU: smcDone, Uplink: true}
	if err := e.assoc.Send(0, sctp.PPIDS1AP, ul.Marshal()); err != nil {
		return err
	}

	// 5. Initial context setup (carries attach accept).
	pdu, err = e.recvPDU()
	if err != nil {
		return err
	}
	ics, err := s1ap.ParseInitialContextSetupRequest(pdu)
	if err != nil {
		return fmt.Errorf("%w: expected initial context setup", ErrUnexpectedMsg)
	}
	ue.UplinkTEID = ics.UplinkTEID
	ue.CoreAddr = ics.CoreAddr
	acceptInner, mac, seq, protected, err := nas.UnwrapProtected(ics.NASPDU)
	if err != nil {
		return err
	}
	if !protected || nas.ComputeMAC(ue.KASME, seq, acceptInner) != mac {
		return fmt.Errorf("%w: attach accept integrity", ErrAuthFailed)
	}
	accept, err := nas.UnmarshalAttachAccept(acceptInner)
	if err != nil {
		return err
	}
	ue.GUTI = accept.GUTI
	if len(accept.ESMContainer) > 0 {
		bearer, err := nas.UnmarshalActivateDefaultBearerRequest(accept.ESMContainer)
		if err != nil {
			return err
		}
		ue.UEAddr = bearer.UEAddr
	}

	// 6. Context setup response with this eNodeB's downlink endpoint.
	e.nextDLTEID++
	ue.DownlinkTEID = e.nextDLTEID
	icsResp := &s1ap.InitialContextSetupResponse{
		MMEUEID: ue.MMEUEID, ENBUEID: ue.ENBUEID,
		DownlinkTEID: ue.DownlinkTEID, ENBAddr: e.Addr,
	}
	if err := e.assoc.Send(0, sctp.PPIDS1AP, icsResp.Marshal()); err != nil {
		return err
	}

	// 7. Attach complete.
	complete := (&nas.AttachComplete{}).Marshal()
	ul = &s1ap.NASTransport{MMEUEID: ue.MMEUEID, ENBUEID: ue.ENBUEID, NASPDU: complete, Uplink: true}
	if err := e.assoc.Send(0, sctp.PPIDS1AP, ul.Marshal()); err != nil {
		return err
	}
	ue.Attached = true
	e.Attaches.Add(1)
	return nil
}

// PathSwitch reports an X2 handover of a UE onto this eNodeB: the UE
// keeps its session but downlink must now arrive here.
func (e *ENB) PathSwitch(ue *UE) error {
	e.nextENBUEID++
	ue.ENBUEID = e.nextENBUEID
	e.nextDLTEID++
	ue.DownlinkTEID = e.nextDLTEID
	req := &s1ap.PathSwitchRequest{
		MMEUEID: ue.MMEUEID, ENBUEID: ue.ENBUEID,
		DownlinkTEID: ue.DownlinkTEID, ENBAddr: e.Addr,
		ECGI: e.ECGI, TAI: e.TAI,
	}
	if err := e.assoc.Send(0, sctp.PPIDS1AP, req.Marshal()); err != nil {
		return err
	}
	pdu, err := e.recvPDU()
	if err != nil {
		return err
	}
	if pdu.Procedure != s1ap.ProcPathSwitchRequest || pdu.Type != s1ap.PDUSuccessful {
		return ErrUnexpectedMsg
	}
	e.Handovers.Add(1)
	return nil
}

// S1Handover performs an S1-based handover of ue from this eNodeB to
// target (the eNodeBs are not directly connected, so the core mediates):
// this eNodeB sends Handover Required and waits for the command; the
// target then reports the UE's arrival with Handover Notify carrying its
// new downlink endpoint.
func (e *ENB) S1Handover(ue *UE, target *ENB) error {
	req := &s1ap.HandoverRequired{MMEUEID: ue.MMEUEID, ENBUEID: ue.ENBUEID, TargetENB: target.ECGI}
	if err := e.assoc.Send(0, sctp.PPIDS1AP, req.Marshal()); err != nil {
		return err
	}
	pdu, err := e.recvPDU()
	if err != nil {
		return err
	}
	if pdu.Procedure != s1ap.ProcHandoverPreparation || pdu.Type != s1ap.PDUSuccessful {
		return ErrUnexpectedMsg
	}
	// The UE moves; the target allocates its local identifiers and
	// notifies the core.
	target.nextENBUEID++
	ue.ENBUEID = target.nextENBUEID
	target.nextDLTEID++
	ue.DownlinkTEID = target.nextDLTEID
	notify := &s1ap.HandoverNotify{
		MMEUEID: ue.MMEUEID, ENBUEID: ue.ENBUEID,
		DownlinkTEID: ue.DownlinkTEID, ENBAddr: target.Addr, ECGI: target.ECGI,
	}
	if err := target.assoc.Send(0, sctp.PPIDS1AP, notify.Marshal()); err != nil {
		return err
	}
	e.Handovers.Add(1)
	return nil
}

// Release asks the core to drop the UE's context (detach).
func (e *ENB) Release(ue *UE) error {
	rel := &s1ap.UEContextRelease{MMEUEID: ue.MMEUEID, ENBUEID: ue.ENBUEID, Cause: 0}
	if err := e.assoc.Send(0, sctp.PPIDS1AP, rel.Marshal()); err != nil {
		return err
	}
	ue.Attached = false
	return nil
}
