package qos

import "testing"

// TestAllowRunAllOrNothing: the aggregate run check either admits the
// whole run (debiting every governing bucket) or consumes nothing at all,
// so the caller's per-packet fallback starts from an untouched state.
func TestAllowRunAllOrNothing(t *testing.T) {
	var ul UserLimiter
	ul.ConfigureUser(8*100_000, 8*100_000) // 100 KB/s → 3000 B burst floor
	now := int64(0)

	if !ul.AllowUplinkRun(now, -1, 3000) {
		t.Fatal("run within burst denied")
	}
	if got := ul.AMBRUp.Tokens(now); got != 0 {
		t.Fatalf("tokens after admitted run = %d, want 0", got)
	}

	// Fresh limiter: reapplying an unchanged configuration deliberately
	// does NOT refill (see configurePreserving).
	ul = UserLimiter{}
	ul.ConfigureUser(8*100_000, 8*100_000)
	if ul.AllowUplinkRun(now, -1, 3001) {
		t.Fatal("run beyond burst admitted")
	}
	if got := ul.AMBRUp.Tokens(now); got != 3000 {
		t.Fatalf("denied run consumed tokens: %d left, want 3000", got)
	}
	// Downlink mirrors the uplink behaviour.
	if ul.AllowDownlinkRun(now, -1, 3001) {
		t.Fatal("downlink run beyond burst admitted")
	}
	if got := ul.AMBRDown.Tokens(now); got != 3000 {
		t.Fatalf("denied downlink run consumed tokens: %d left", got)
	}
	// Unconfigured limiter admits everything.
	var free UserLimiter
	if !free.AllowUplinkRun(now, 0, 1<<40) || !free.AllowDownlinkRun(now, 0, 1<<40) {
		t.Fatal("unpoliced run denied")
	}
}

// TestConfigurePreservesTokens: reapplying an unchanged QoS profile
// keeps the accumulated token level (the data plane reconfigures on
// every control-epoch bump, and a signaling storm must not refill the
// buckets for free); an actually changed profile starts full at the new
// depth.
func TestConfigurePreservesTokens(t *testing.T) {
	var ul UserLimiter
	ul.ConfigureUser(8*100_000, 0) // 100 KB/s → 3000 B burst floor
	ul.ConfigureBearer(0, 8*100_000, 0)
	now := int64(0)
	if !ul.AllowUplink(now, 0, 2000) {
		t.Fatal("packet within burst denied")
	}
	// Same profile again — as rebuildPriv does after e.g. a handover.
	ul.ConfigureUser(8*100_000, 0)
	ul.ConfigureBearer(0, 8*100_000, 0)
	if got := ul.AMBRUp.Tokens(now); got != 1000 {
		t.Fatalf("AMBR tokens after unchanged reconfigure = %d, want 1000", got)
	}
	if got := ul.BearerUp[0].Tokens(now); got != 1000 {
		t.Fatalf("bearer tokens after unchanged reconfigure = %d, want 1000", got)
	}
	// A genuine rate change starts the bucket full at the new depth.
	ul.ConfigureUser(8*1_000_000, 0) // 1 MB/s → 20000 B burst
	if got := ul.AMBRUp.Tokens(now); got != 20000 {
		t.Fatalf("AMBR tokens after rate change = %d, want 20000", got)
	}
}

// TestAllowRunMatchesPerPacket: an admitted run leaves the buckets in
// exactly the state N per-packet Allow calls would, for both the AMBR and
// a bearer MBR bucket.
func TestAllowRunMatchesPerPacket(t *testing.T) {
	mk := func() *UserLimiter {
		var ul UserLimiter
		ul.ConfigureUser(8*1_000_000, 0) // 1 MB/s → 20 KB burst
		ul.ConfigureBearer(1, 8*500_000, 0)
		return &ul
	}
	run, pp := mk(), mk()
	now := int64(0)
	const n, size = 10, 700

	if !run.AllowUplinkRun(now, 1, n*size) {
		t.Fatal("aggregate run denied")
	}
	for i := 0; i < n; i++ {
		if !pp.AllowUplink(now, 1, size) {
			t.Fatalf("per-packet call %d denied", i)
		}
	}
	if a, b := run.AMBRUp.Tokens(now), pp.AMBRUp.Tokens(now); a != b {
		t.Fatalf("AMBR diverges: run=%d per-packet=%d", a, b)
	}
	if a, b := run.BearerUp[1].Tokens(now), pp.BearerUp[1].Tokens(now); a != b {
		t.Fatalf("bearer MBR diverges: run=%d per-packet=%d", a, b)
	}
}

// TestAllowRunBearerShortfallConsumesNothing pins the asymmetry the
// all-or-nothing contract exists for: per-packet AllowUplink debits the
// AMBR even when the bearer bucket then denies, so a failed aggregate
// check must leave BOTH buckets untouched for the fallback to reproduce
// that exact partial-consumption behaviour.
func TestAllowRunBearerShortfallConsumesNothing(t *testing.T) {
	var ul UserLimiter
	ul.ConfigureUser(8*1_000_000, 0)     // AMBR burst 20000 B — plenty
	ul.ConfigureBearer(0, 8*100_000, 0)  // bearer burst 3000 B — the bottleneck
	now := int64(0)

	if ul.AllowUplinkRun(now, 0, 5000) {
		t.Fatal("run beyond bearer burst admitted")
	}
	if got := ul.AMBRUp.Tokens(now); got != 20000 {
		t.Fatalf("AMBR debited on failed run: %d left, want 20000", got)
	}
	if got := ul.BearerUp[0].Tokens(now); got != 3000 {
		t.Fatalf("bearer debited on failed run: %d left, want 3000", got)
	}
	// The fallback path then behaves exactly like pure per-packet
	// policing: each denied packet still costs AMBR tokens.
	var ref UserLimiter
	ref.ConfigureUser(8*1_000_000, 0)
	ref.ConfigureBearer(0, 8*100_000, 0)
	for i := 0; i < 5; i++ {
		a := ul.AllowUplink(now, 0, 1000)
		b := ref.AllowUplink(now, 0, 1000)
		if a != b {
			t.Fatalf("packet %d: fallback=%v reference=%v", i, a, b)
		}
	}
	if a, b := ul.AMBRUp.Tokens(now), ref.AMBRUp.Tokens(now); a != b {
		t.Fatalf("AMBR state diverges after fallback: %d vs %d", a, b)
	}
}
