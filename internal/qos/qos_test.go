package qos

import (
	"testing"
	"testing/quick"
)

const second = int64(1_000_000_000)

func TestNewTokenBucketValidation(t *testing.T) {
	if _, err := NewTokenBucket(0, 100); err != ErrBadRate {
		t.Fatalf("zero rate: %v", err)
	}
	if _, err := NewTokenBucket(100, 0); err != ErrBadRate {
		t.Fatalf("zero burst: %v", err)
	}
	tb, err := NewTokenBucket(1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Tokens(0) != 100 {
		t.Fatalf("new bucket not full: %d", tb.Tokens(0))
	}
}

func TestTokenBucketEnforcesRate(t *testing.T) {
	// 1000 B/s with burst 100: after draining the burst, one second of
	// traffic must admit ~1000 bytes.
	tb, _ := NewTokenBucket(1000, 100)
	now := int64(0)
	if !tb.Allow(now, 100) {
		t.Fatal("initial burst rejected")
	}
	if tb.Allow(now, 1) {
		t.Fatal("over-burst packet admitted")
	}
	// Send 10-byte packets every 10ms for 1 second: exactly rate-limited.
	admitted := 0
	for i := 0; i < 100; i++ {
		now += second / 100
		if tb.Allow(now, 10) {
			admitted++
		}
	}
	if admitted != 100 { // 1000 B over 1 s at 1000 B/s
		t.Fatalf("admitted %d/100 packets", admitted)
	}
	// Doubling the offered load must admit only ~half.
	admitted = 0
	for i := 0; i < 200; i++ {
		now += second / 200
		if tb.Allow(now, 10) {
			admitted++
		}
	}
	if admitted < 95 || admitted > 105 {
		t.Fatalf("at 2x load admitted %d, want ~100", admitted)
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	tb, _ := NewTokenBucket(1_000_000, 500)
	// A long idle period must not accrue more than burst.
	if got := tb.Tokens(100 * second); got != 500 {
		t.Fatalf("tokens after idle = %d, want 500", got)
	}
}

func TestTokenBucketLargeGapNoOverflow(t *testing.T) {
	tb, _ := NewTokenBucket(10_000_000_000, 1<<30) // 80 Gb/s
	if got := tb.Tokens(3600 * second); got != 1<<30 {
		t.Fatalf("tokens = %d", got)
	}
	if !tb.Allow(3600*second, 1<<29) {
		t.Fatal("half-burst rejected")
	}
}

func TestTokenBucketTimeGoingBackwards(t *testing.T) {
	tb, _ := NewTokenBucket(1000, 100)
	tb.Allow(second, 100)
	// Clock replay must not mint tokens.
	if tb.Allow(second-1, 1) {
		t.Fatal("backwards time minted tokens")
	}
}

func TestTokenBucketConfigureClamps(t *testing.T) {
	tb, _ := NewTokenBucket(1000, 1000)
	if err := tb.Configure(1000, 10); err != nil {
		t.Fatal(err)
	}
	if got := tb.Tokens(0); got != 10 {
		t.Fatalf("tokens after shrink = %d", got)
	}
	if err := tb.Configure(0, 10); err != ErrBadRate {
		t.Fatalf("bad configure: %v", err)
	}
}

// Property: admitted bytes over any interval never exceed burst + rate*dt.
func TestTokenBucketNeverExceedsEnvelope(t *testing.T) {
	f := func(seed uint32) bool {
		rate, burst := uint64(5000), uint64(500)
		tb, _ := NewTokenBucket(rate, burst)
		rng := seed
		now := int64(0)
		var admitted uint64
		for i := 0; i < 2000; i++ {
			rng = rng*1664525 + 1013904223
			now += int64(rng % 2_000_000) // 0-2ms steps
			size := uint64(rng%1400) + 1
			if tb.Allow(now, size) {
				admitted += size
			}
		}
		envelope := burst + rate*uint64(now)/uint64(second) + 1
		return admitted <= envelope
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityOrdering(t *testing.T) {
	// IMS signaling outranks voice, voice outranks video, all GBR classes
	// outrank best effort.
	if !(Priority(5) < Priority(1) && Priority(1) < Priority(2) && Priority(2) < Priority(9)) {
		t.Fatal("QCI priority ordering broken")
	}
	for qci := uint8(1); qci <= 4; qci++ {
		if !IsGBR(qci) {
			t.Fatalf("QCI %d should be GBR", qci)
		}
	}
	for _, qci := range []uint8{5, 6, 7, 8, 9, 0, 100} {
		if IsGBR(qci) {
			t.Fatalf("QCI %d should not be GBR", qci)
		}
	}
}

func TestUserLimiterDirectionsIndependent(t *testing.T) {
	var ul UserLimiter
	ul.ConfigureUser(8_000 /* 1000 B/s up */, 80_000 /* 10 KB/s down */)
	now := int64(0)
	// Drain uplink completely.
	for ul.AllowUplink(now, 0, 1000) {
	}
	// Downlink must still be open.
	if !ul.AllowDownlink(now, 0, 1000) {
		t.Fatal("downlink starved by uplink policing")
	}
}

func TestUserLimiterBearerMBR(t *testing.T) {
	var ul UserLimiter
	ul.ConfigureUser(0, 0) // no AMBR
	ul.ConfigureBearer(0, 8_000, 8_000)
	ul.ConfigureBearer(1, 0, 0) // unpoliced bearer
	now := int64(0)
	for ul.AllowUplink(now, 0, 500) {
	}
	if ul.AllowUplink(now, 0, 500) {
		t.Fatal("bearer 0 not policed")
	}
	if !ul.AllowUplink(now, 1, 500) {
		t.Fatal("unpoliced bearer rejected")
	}
	// Out-of-range bearer index falls back to AMBR-only policing.
	if !ul.AllowUplink(now, 99, 500) {
		t.Fatal("out-of-range bearer rejected")
	}
}

func TestUserLimiterUnconfiguredAllowsAll(t *testing.T) {
	var ul UserLimiter
	if !ul.AllowUplink(0, 0, 1<<20) || !ul.AllowDownlink(0, 0, 1<<20) {
		t.Fatal("zero-value limiter must not police")
	}
}

func TestDefaultBurstBytes(t *testing.T) {
	if got := DefaultBurstBytes(50_000_000); got != 1_000_000 {
		t.Fatalf("burst for 50MB/s = %d", got)
	}
	if got := DefaultBurstBytes(1000); got != 3000 {
		t.Fatalf("minimum burst = %d", got)
	}
}

func BenchmarkTokenBucketAllow(b *testing.B) {
	tb, _ := NewTokenBucket(1<<30, 1<<20)
	b.ReportAllocs()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now += 100
		tb.Allow(now, 64)
	}
}

func BenchmarkUserLimiterUplink(b *testing.B) {
	var ul UserLimiter
	ul.ConfigureUser(100e9, 100e9)
	ul.ConfigureBearer(0, 100e9, 100e9)
	b.ReportAllocs()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now += 100
		ul.AllowUplink(now, 0, 64)
	}
}
