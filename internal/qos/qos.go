// Package qos implements the QoS primitives the EPC data plane enforces
// per bearer and per user: token-bucket rate limiters for MBR/AMBR
// policing and GBR admission, and priority mapping from QCI values.
// Everything here runs on the data thread's fast path, so the limiter is
// integer-only, allocation free, and driven by caller-supplied monotonic
// timestamps rather than time.Now (the pipeline stamps packets once per
// batch).
package qos

import "errors"

// ErrBadRate reports a non-positive rate configuration.
var ErrBadRate = errors.New("qos: rate and burst must be positive")

// TokenBucket is a classic token bucket: Rate tokens (bytes) accrue per
// second up to Burst. It is not internally synchronized; each bucket
// belongs to exactly one data thread.
type TokenBucket struct {
	rate   uint64 // tokens per second (bytes/s)
	burst  uint64 // bucket depth in bytes
	tokens uint64
	last   int64 // monotonic nanos of the last refill
}

// NewTokenBucket returns a full bucket enforcing rate bytes/s with the
// given burst depth in bytes.
func NewTokenBucket(rate, burst uint64) (*TokenBucket, error) {
	if rate == 0 || burst == 0 {
		return nil, ErrBadRate
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}, nil
}

// Configure atomically replaces rate and burst (control updates via PCRF),
// clamping stored tokens to the new depth. Call only from the owning
// thread.
func (tb *TokenBucket) Configure(rate, burst uint64) error {
	if rate == 0 || burst == 0 {
		return ErrBadRate
	}
	tb.rate = rate
	tb.burst = burst
	if tb.tokens > burst {
		tb.tokens = burst
	}
	return nil
}

// Allow consumes n bytes of budget at time now (monotonic nanos),
// reporting whether the packet conforms. Non-conforming packets consume
// nothing (strict policing, as the PCEF gate requires).
func (tb *TokenBucket) Allow(now int64, n uint64) bool {
	tb.refill(now)
	if tb.tokens < n {
		return false
	}
	tb.tokens -= n
	return true
}

// Tokens reports the current budget after refilling at now.
func (tb *TokenBucket) Tokens(now int64) uint64 {
	tb.refill(now)
	return tb.tokens
}

func (tb *TokenBucket) refill(now int64) {
	if now <= tb.last {
		return
	}
	elapsed := uint64(now - tb.last)
	tb.last = now
	// tokens += rate * elapsed / 1e9 without overflow for rates up to
	// ~18 Gb/s and gaps up to ~1s; split the multiply for larger gaps.
	if elapsed > 1_000_000_000 {
		whole := elapsed / 1_000_000_000
		tb.credit(tb.rate * whole)
		elapsed %= 1_000_000_000
	}
	tb.credit(tb.rate/1_000_000_000*elapsed + (tb.rate%1_000_000_000)*elapsed/1_000_000_000)
}

func (tb *TokenBucket) credit(n uint64) {
	tb.tokens += n
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
}

// BitsPerSecond converts a bits/s rate (how 3GPP expresses MBR/AMBR) to
// the bucket's bytes/s unit.
func BitsPerSecond(bps uint64) uint64 { return bps / 8 }

// Priority maps a QCI value to a scheduling priority (lower is more
// urgent), following the 3GPP 23.203 standardized characteristics table.
func Priority(qci uint8) uint8 {
	switch qci {
	case 1: // conversational voice
		return 2
	case 2: // conversational video
		return 4
	case 3: // real-time gaming
		return 3
	case 4: // buffered video
		return 5
	case 5: // IMS signaling
		return 1
	case 6:
		return 6
	case 7:
		return 7
	case 8:
		return 8
	default: // 9 and operator-specific: best effort
		return 9
	}
}

// IsGBR reports whether a QCI denotes a guaranteed-bit-rate class.
func IsGBR(qci uint8) bool { return qci >= 1 && qci <= 4 }

// UserLimiter bundles the per-user policing state the data thread keeps
// alongside each UE: aggregate (AMBR) buckets per direction plus one MBR
// bucket per bearer. Sized for the fast path: fixed arrays, no maps.
type UserLimiter struct {
	AMBRUp   TokenBucket
	AMBRDown TokenBucket
	// Per-bearer MBR buckets indexed like the UE's bearer array (the
	// state package's MaxBearers; asserted equal by tests).
	BearerUp   [4]TokenBucket
	BearerDown [4]TokenBucket
	configured bool
}

// DefaultBurstBytes sizes bucket depth when the operator does not
// configure one: 20 ms at line rate, a common policing default.
func DefaultBurstBytes(rateBytesPerSec uint64) uint64 {
	b := rateBytesPerSec / 50
	if b < 3000 {
		b = 3000 // at least two full-size frames
	}
	return b
}

// configurePreserving applies (rate, burst) only when they actually
// changed, starting a changed bucket full; an unchanged bucket keeps its
// accumulated token level. The data plane rebuilds limiters whenever a
// user's control epoch advances, and most control writes (handovers,
// attach refreshes) leave the QoS profile untouched — a signaling storm
// must not turn into a stream of free bucket refills that defeats
// policing.
func (tb *TokenBucket) configurePreserving(rate, burst uint64) {
	if tb.rate == rate && tb.burst == burst {
		return
	}
	tb.rate = rate
	tb.burst = burst
	tb.tokens = burst
}

// Levels is a flat export of a UserLimiter's current token levels, in
// bucket bytes: the state a migrating user carries so policing budget is
// conserved across the move (a user must not earn a fresh burst of
// tokens by migrating, nor lose budget it had accrued).
type Levels struct {
	AMBRUp     uint64
	AMBRDown   uint64
	BearerUp   [4]uint64
	BearerDown [4]uint64
}

// ExportLevels refills every bucket at now and returns the levels.
// Owning thread only (migration extract runs after the data-plane
// fence).
func (ul *UserLimiter) ExportLevels(now int64) Levels {
	return Levels{
		AMBRUp:   ul.AMBRUp.Tokens(now),
		AMBRDown: ul.AMBRDown.Tokens(now),
		BearerUp: [4]uint64{
			ul.BearerUp[0].Tokens(now), ul.BearerUp[1].Tokens(now),
			ul.BearerUp[2].Tokens(now), ul.BearerUp[3].Tokens(now),
		},
		BearerDown: [4]uint64{
			ul.BearerDown[0].Tokens(now), ul.BearerDown[1].Tokens(now),
			ul.BearerDown[2].Tokens(now), ul.BearerDown[3].Tokens(now),
		},
	}
}

// SeedLevels overwrites every bucket's token level (clamped to its
// configured depth) and stamps its refill clock to now, so a seeded
// bucket resumes accruing from the seed rather than treating the epoch
// gap as elapsed time and instantly refilling. Call after Configure*
// on the owning thread, before the limiter serves packets.
func (ul *UserLimiter) SeedLevels(lv Levels, now int64) {
	ul.AMBRUp.seed(lv.AMBRUp, now)
	ul.AMBRDown.seed(lv.AMBRDown, now)
	for i := range ul.BearerUp {
		ul.BearerUp[i].seed(lv.BearerUp[i], now)
		ul.BearerDown[i].seed(lv.BearerDown[i], now)
	}
}

func (tb *TokenBucket) seed(tokens uint64, now int64) {
	if tokens > tb.burst {
		tokens = tb.burst
	}
	tb.tokens = tokens
	tb.last = now
}

// ConfigureUser initializes the limiter from AMBR values in bits/s.
// Zero-valued rates disable the corresponding bucket (no policing).
// Reapplying an unchanged configuration preserves token levels (see
// configurePreserving).
func (ul *UserLimiter) ConfigureUser(ambrUpBits, ambrDownBits uint64) {
	if ambrUpBits > 0 {
		r := BitsPerSecond(ambrUpBits)
		ul.AMBRUp.configurePreserving(r, DefaultBurstBytes(r))
	} else {
		ul.AMBRUp.rate = 0
	}
	if ambrDownBits > 0 {
		r := BitsPerSecond(ambrDownBits)
		ul.AMBRDown.configurePreserving(r, DefaultBurstBytes(r))
	} else {
		ul.AMBRDown.rate = 0
	}
	ul.configured = true
}

// ConfigureBearer sets bearer i's MBR policing in bits/s (0 disables).
// Reapplying an unchanged configuration preserves token levels.
func (ul *UserLimiter) ConfigureBearer(i int, mbrUpBits, mbrDownBits uint64) {
	if i < 0 || i >= len(ul.BearerUp) {
		return
	}
	if mbrUpBits > 0 {
		r := BitsPerSecond(mbrUpBits)
		ul.BearerUp[i].configurePreserving(r, DefaultBurstBytes(r))
	} else {
		ul.BearerUp[i].rate = 0
	}
	if mbrDownBits > 0 {
		r := BitsPerSecond(mbrDownBits)
		ul.BearerDown[i].configurePreserving(r, DefaultBurstBytes(r))
	} else {
		ul.BearerDown[i].rate = 0
	}
}

// AllowUplink polices an uplink packet of n bytes on bearer i.
func (ul *UserLimiter) AllowUplink(now int64, i int, n uint64) bool {
	if ul.AMBRUp.rate > 0 && !ul.AMBRUp.Allow(now, n) {
		return false
	}
	if i >= 0 && i < len(ul.BearerUp) && ul.BearerUp[i].rate > 0 && !ul.BearerUp[i].Allow(now, n) {
		return false
	}
	return true
}

// AllowDownlink polices a downlink packet of n bytes on bearer i.
func (ul *UserLimiter) AllowDownlink(now int64, i int, n uint64) bool {
	if ul.AMBRDown.rate > 0 && !ul.AMBRDown.Allow(now, n) {
		return false
	}
	if i >= 0 && i < len(ul.BearerDown) && ul.BearerDown[i].rate > 0 && !ul.BearerDown[i].Allow(now, n) {
		return false
	}
	return true
}

// AllowUplinkRun polices a run of uplink packets totalling n bytes on
// bearer i in one aggregate operation, all or nothing: when both buckets
// hold n tokens the whole run conforms and n is debited from each,
// matching what per-packet policing would have done; when either bucket
// is short NOTHING is consumed and the caller must fall back to
// per-packet AllowUplink, which reproduces the exact partial-consumption
// semantics (AMBR debited even when the bearer bucket denies).
func (ul *UserLimiter) AllowUplinkRun(now int64, i int, n uint64) bool {
	ambr := ul.AMBRUp.rate > 0
	bearer := i >= 0 && i < len(ul.BearerUp) && ul.BearerUp[i].rate > 0
	if ambr {
		ul.AMBRUp.refill(now)
		if ul.AMBRUp.tokens < n {
			return false
		}
	}
	if bearer {
		ul.BearerUp[i].refill(now)
		if ul.BearerUp[i].tokens < n {
			return false
		}
	}
	if ambr {
		ul.AMBRUp.tokens -= n
	}
	if bearer {
		ul.BearerUp[i].tokens -= n
	}
	return true
}

// AllowDownlinkRun is AllowUplinkRun for the downlink direction.
func (ul *UserLimiter) AllowDownlinkRun(now int64, i int, n uint64) bool {
	ambr := ul.AMBRDown.rate > 0
	bearer := i >= 0 && i < len(ul.BearerDown) && ul.BearerDown[i].rate > 0
	if ambr {
		ul.AMBRDown.refill(now)
		if ul.AMBRDown.tokens < n {
			return false
		}
	}
	if bearer {
		ul.BearerDown[i].refill(now)
		if ul.BearerDown[i].tokens < n {
			return false
		}
	}
	if ambr {
		ul.AMBRDown.tokens -= n
	}
	if bearer {
		ul.BearerDown[i].tokens -= n
	}
	return true
}
