package cluster

import (
	"bytes"

	"pepc/internal/core"
)

// RecoveryReport summarizes one node recovery.
type RecoveryReport struct {
	// SlicesRecovered counts slices rebuilt from checkpoints.
	SlicesRecovered int
	// Restored/Replayed/Refreshed aggregate the per-slice RecoverFrom
	// reports (checkpointed users, post-checkpoint attaches resurrected
	// from the surviving update queues, and refreshed copies).
	Restored  int
	Replayed  int
	Refreshed int
	// UsersScattered counts recovered users re-homed onto surviving
	// nodes at their Maglev picks.
	UsersScattered int
	// ImportFailed counts users whose re-home failed; they are dropped
	// from the directory.
	ImportFailed int
	// Orphans counts directory entries that pointed at the dead node
	// but were recovered by neither checkpoint nor queue replay (lost
	// attaches younger than both); they are detached from the
	// directory.
	Orphans int
}

// CheckpointAll captures a checkpoint stream for every slice of every
// live node and retains it in memory — the recovery source KillNode/
// RecoverNode replays. Returns the total number of users captured.
func (c *Cluster) CheckpointAll() (int, error) {
	c.mu.RLock()
	members := append([]*member(nil), c.members...)
	c.mu.RUnlock()
	total := 0
	for _, m := range members {
		cks := make([][]byte, m.node.NumSlices())
		for i := 0; i < m.node.NumSlices(); i++ {
			var buf bytes.Buffer
			m.attachMu.Lock()
			users, err := m.node.Slice(i).Checkpoint(&buf)
			m.attachMu.Unlock()
			if err != nil {
				return total, err
			}
			cks[i] = buf.Bytes()
			total += users
		}
		m.checkpoints = cks
	}
	return total, nil
}

// KillNode simulates a node crash: the member drops out of the Maglev
// table immediately (its users' packets surface as Unknown drops on the
// re-picked owners), but its in-memory carcass and last checkpoints are
// kept for RecoverNode. No user state is migrated — that is the point.
func (c *Cluster) KillNode(name string) error {
	c.mu.Lock()
	m := c.byName[name]
	if m == nil {
		c.mu.Unlock()
		return ErrUnknownNode
	}
	if m.dead.Load() {
		c.mu.Unlock()
		return ErrNodeDead
	}
	if len(c.members) == 1 {
		c.mu.Unlock()
		return ErrLastNode
	}
	if err := c.bal.Remove(name); err != nil {
		c.mu.Unlock()
		return err
	}
	m.dead.Store(true)
	c.rebuildView()
	c.mu.Unlock()
	// Barrier: an attach that picked this member before the flip may
	// still be writing into it; wait it out so the carcass is quiescent
	// by the time KillNode returns and RecoverNode reads its queues.
	// (Such last-gasp attaches are replayed or counted as orphans by
	// RecoverNode — never silently leaked.)
	attachBarrier([]*member{m})
	return nil
}

// RecoverNode restores a killed node's population onto the surviving
// members: each dead slice is rebuilt from its last checkpoint plus the
// crashed slice's surviving update queue and signaling ring
// (core.RecoverFrom), then drained user-by-user and imported at each
// user's current Maglev pick. Counters are exact for every user the
// queue still referenced and stale by at most the checkpoint age for
// the rest — the paper's per-user crash consistency, extended across
// the cluster. The dead member is discarded on return.
func (c *Cluster) RecoverNode(name string) (RecoveryReport, error) {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()

	var rep RecoveryReport
	c.mu.RLock()
	m := c.byName[name]
	c.mu.RUnlock()
	if m == nil {
		return rep, ErrUnknownNode
	}
	if !m.dead.Load() {
		return rep, ErrNodeAlive
	}
	if m.checkpoints == nil {
		return rep, ErrNoCheckpoint
	}

	recovered := make(map[uint64]struct{})
	cfgs := c.sliceConfigs()
	for i := 0; i < m.node.NumSlices(); i++ {
		fresh := core.NewSlice(cfgs[i])
		crashed := m.node.Slice(i)
		sliceRep, err := fresh.RecoverFrom(bytes.NewReader(m.checkpoints[i]), crashed)
		if err != nil {
			return rep, err
		}
		rep.SlicesRecovered++
		rep.Restored += sliceRep.Restored
		rep.Replayed += sliceRep.Replayed
		rep.Refreshed += sliceRep.Refreshed

		// Scatter: every recovered user goes to its current Maglev
		// pick (the dead node is out of the table, so picks are all
		// survivors).
		_, err = fresh.DrainUsers(func(msg core.StateTransferMessage) bool {
			recovered[msg.IMSI] = struct{}{}
			seq, ok := c.SeqOf(msg.IMSI)
			if !ok {
				// Recovered a user the directory no longer knows
				// (detached after the checkpoint, delete outlived by
				// the snapshot). Drop it.
				return true
			}
			dst, perr := c.pickMember(seq)
			if perr != nil {
				rep.ImportFailed++
				return true
			}
			sliceIdx := int(seq) % c.cfg.SlicesPerNode
			dst.attachMu.Lock()
			ierr := dst.node.Scheduler().ImportUser(msg, sliceIdx)
			dst.attachMu.Unlock()
			if ierr != nil {
				rep.ImportFailed++
				c.forgetUser(msg.IMSI, seq)
				return true
			}
			rep.UsersScattered++
			return true
		})
		if err != nil {
			return rep, err
		}
	}

	// Directory entries that lived on the dead node (its demux still
	// maps its whole pre-crash population) but were recovered by
	// neither checkpoint nor queue replay are unrecoverable; detach
	// them so signaling fails fast instead of blackholing.
	type userRef struct {
		imsi uint64
		seq  uint32
	}
	var orphans []userRef
	c.dirMu.RLock()
	for imsi, seq := range c.byIMSI {
		if _, ok := recovered[imsi]; ok {
			continue
		}
		if _, onDead := m.node.Demux().LookupSliceByIMSI(imsi); onDead {
			orphans = append(orphans, userRef{imsi, seq})
		}
	}
	c.dirMu.RUnlock()
	for _, o := range orphans {
		c.forgetUser(o.imsi, o.seq)
		rep.Orphans++
	}

	c.SyncAll()

	c.mu.Lock()
	delete(c.byName, name)
	c.mu.Unlock()
	return rep, nil
}
