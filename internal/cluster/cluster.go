// Package cluster runs N in-process PEPC nodes behind a Maglev
// steering table, scaling the single-node data plane of internal/core
// to a multi-node deployment (the paper's §3.3 Demux generalized across
// servers): every user is assigned a cluster-global 24-bit sequence
// number at attach, embedded in the low bits of both its uplink TEID
// and its UE address, so one consistent-hash lookup over `key & 0xFFFFFF`
// steers both directions of the user's traffic to its owning node.
//
// Membership changes (AddNode/RemoveNode) migrate exactly the users
// whose Maglev table slots remapped, through the existing
// ExportUser/ImportUser state-transfer path — Maglev's disruption bound
// (~2·M/N table entries per single change) therefore bounds the moved
// population and the in-flight packet loss. Node failure is handled by
// restoring the dead node's slices from their last checkpoints
// (RecoverFrom, which also reconciles the crashed slices' surviving
// update queues) and scattering the recovered users to their new
// Maglev-picked owners.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pepc/internal/core"
	"pepc/internal/hdr"
	"pepc/internal/lb"
)

// Identifier scheme: the cluster owns a global 24-bit user sequence
// space. A user's uplink TEID is (teidBase+slice)<<24 | seq and its UE
// address is (addrBase+slice)<<24 | seq, with slice = seq mod
// slices-per-node — stable across nodes, so a migrated user keeps its
// identifiers and lands on the same slice index everywhere. The bases
// keep the two key spaces (and the per-slice allocator's own ranges)
// disjoint.
const (
	seqBits  = 24
	seqMask  = 1<<seqBits - 1
	teidBase = 0x40
	addrBase = 10
)

// MaxSlicesPerNode bounds the per-node slice count so the TEID and UE
// address high-byte ranges cannot collide.
const MaxSlicesPerNode = 32

var (
	// ErrNoSeq is returned when the 24-bit user sequence space is
	// exhausted.
	ErrNoSeq = errors.New("cluster: user sequence space exhausted")
	// ErrUnknownNode is returned for operations naming no member.
	ErrUnknownNode = errors.New("cluster: unknown node")
	// ErrNodeDead is returned when an operation requires a live node.
	ErrNodeDead = errors.New("cluster: node is dead")
	// ErrNodeAlive is returned when recovery is requested for a node
	// that was never killed.
	ErrNodeAlive = errors.New("cluster: node is alive")
	// ErrUserUnknown is returned for signaling about unattached users.
	ErrUserUnknown = errors.New("cluster: user unknown")
	// ErrNoCheckpoint is returned when recovery finds no stored
	// checkpoint for a dead node.
	ErrNoCheckpoint = errors.New("cluster: no checkpoint for node")
	// ErrLastNode is returned when removing the only member. It wraps
	// lb.ErrNoBackends: removing the last node would rebuild the Maglev
	// table over an empty backend set, leaving the Steerer a stale
	// table, so the refusal surfaces the same typed cause the balancer
	// itself reports for an empty set (errors.Is works for both).
	ErrLastNode = fmt.Errorf("cluster: cannot remove the last node: %w", lb.ErrNoBackends)
)

// UplinkTEIDFor returns the uplink TEID the cluster assigns to seq.
func UplinkTEIDFor(seq uint32, slicesPerNode int) uint32 {
	return uint32(teidBase+int(seq)%slicesPerNode)<<seqBits | (seq & seqMask)
}

// UEAddrFor returns the UE address the cluster assigns to seq.
func UEAddrFor(seq uint32, slicesPerNode int) uint32 {
	return uint32(addrBase+int(seq)%slicesPerNode)<<seqBits | (seq & seqMask)
}

// SteerKey reduces a wire key (uplink TEID or downlink UE address) to
// the cluster-global user key Maglev hashes over: both directions of
// one user yield the same value.
func SteerKey(wireKey uint32) uint64 { return uint64(wireKey & seqMask) }

// Config parameterizes a cluster.
type Config struct {
	// Nodes is the initial member count (minimum 1).
	Nodes int
	// SlicesPerNode is the per-node slice count (default 1, max
	// MaxSlicesPerNode).
	SlicesPerNode int
	// UserHint sizes each slice's tables.
	UserHint int
	// StateLayout selects pointer vs handle per-user state storage.
	StateLayout core.StateLayout
	// TableSize is the Maglev table size (0 → lb.DefaultTableSize).
	// Must comfortably exceed the expected user population for the
	// disruption bound to hold per-key.
	TableSize int
	// MigrateChunk is the number of users moved per rebalance chunk
	// (default 256); between chunks the target slices sync their update
	// queues so migrated users become steerable promptly.
	MigrateChunk int
	// RecordLatency arms per-packet latency recording on every slice's
	// verdict stage (see core.SliceConfig.RecordLatency); pair it with
	// Steerer ingress stamping and read the merged tail via Latency.
	RecordLatency bool
}

func (cfg Config) withDefaults() Config {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.SlicesPerNode <= 0 {
		cfg.SlicesPerNode = 1
	}
	if cfg.SlicesPerNode > MaxSlicesPerNode {
		cfg.SlicesPerNode = MaxSlicesPerNode
	}
	if cfg.UserHint <= 0 {
		cfg.UserHint = 1024
	}
	if cfg.MigrateChunk <= 0 {
		cfg.MigrateChunk = 256
	}
	return cfg
}

// member is one node plus its cluster-side bookkeeping.
type member struct {
	name string
	node *core.Node
	// attachMu serializes control-plane entry points (attach, detach,
	// import/export) per node, preserving the single-control-writer
	// discipline the slices assume without a control loop running.
	attachMu sync.Mutex
	dead     atomic.Bool
	// checkpoints holds the last CheckpointAll capture, one stream per
	// slice, for crash recovery.
	checkpoints [][]byte
}

// Cluster is a set of PEPC nodes behind one Maglev table.
type Cluster struct {
	cfg Config

	// mu guards the membership view: the balancer and the index-aligned
	// members slice flip together under the write lock, so a steer pass
	// under the read lock sees a consistent pick→node mapping.
	mu      sync.RWMutex
	bal     *lb.Balancer
	members []*member // members[i] serves balancer backend index i
	byName  map[string]*member
	epoch   atomic.Uint64 // bumped on every membership change
	nextID  int

	// rebalanceMu serializes whole-cluster reshapes (add/remove/
	// recover) so at most one bulk migration is in flight.
	rebalanceMu sync.Mutex

	// dir is the signaling directory: IMSI → seq and back. Owners are
	// never stored — they are always derived from the balancer, so the
	// directory stays valid across rebalances and recoveries.
	dirMu    sync.RWMutex
	byIMSI   map[uint64]uint32
	bySeq    map[uint32]uint64
	nextSeq  uint32
	freeSeqs []uint32
}

// New builds a cluster with cfg.Nodes members named node-0..node-N-1.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:     cfg,
		byName:  make(map[string]*member),
		byIMSI:  make(map[uint64]uint32),
		bySeq:   make(map[uint32]uint64),
		nextSeq: 1,
	}
	names := make([]string, cfg.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node-%d", i)
	}
	bal, err := lb.New(names, cfg.TableSize)
	if err != nil {
		return nil, err
	}
	c.bal = bal
	c.nextID = cfg.Nodes
	for _, name := range names {
		c.byName[name] = c.newMember(name)
	}
	c.rebuildView()
	return c, nil
}

func (c *Cluster) newMember(name string) *member {
	return &member{name: name, node: core.NewNode(c.sliceConfigs()...)}
}

func (c *Cluster) sliceConfigs() []core.SliceConfig {
	cfgs := make([]core.SliceConfig, c.cfg.SlicesPerNode)
	for i := range cfgs {
		cfgs[i] = core.SliceConfig{
			ID:            i + 1,
			UserHint:      c.cfg.UserHint,
			StateLayout:   c.cfg.StateLayout,
			RecordLatency: c.cfg.RecordLatency,
		}
	}
	return cfgs
}

// rebuildView realigns members with the balancer's backend order.
// Callers hold c.mu.
func (c *Cluster) rebuildView() {
	names := c.bal.Backends()
	c.members = c.members[:0]
	for _, name := range names {
		c.members = append(c.members, c.byName[name])
	}
	c.epoch.Add(1)
}

// Size returns the live member count.
func (c *Cluster) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.members)
}

// Names returns the live member names in balancer order.
func (c *Cluster) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, len(c.members))
	for i, m := range c.members {
		names[i] = m.name
	}
	return names
}

// Node returns the named member's node (including dead ones, for
// post-mortem inspection), or nil.
func (c *Cluster) Node(name string) *core.Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if m := c.byName[name]; m != nil {
		return m.node
	}
	return nil
}

// Users returns the attached-user count from the signaling directory.
func (c *Cluster) Users() int {
	c.dirMu.RLock()
	defer c.dirMu.RUnlock()
	return len(c.byIMSI)
}

// SeqOf returns the cluster sequence number assigned to imsi.
func (c *Cluster) SeqOf(imsi uint64) (uint32, bool) {
	c.dirMu.RLock()
	defer c.dirMu.RUnlock()
	seq, ok := c.byIMSI[imsi]
	return seq, ok
}

// Owner returns the name of the node currently responsible for imsi
// per the balancer (which the data path also consults).
func (c *Cluster) Owner(imsi uint64) (string, bool) {
	seq, ok := c.SeqOf(imsi)
	if !ok {
		return "", false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, name, err := c.bal.Pick(uint64(seq))
	if err != nil {
		return "", false
	}
	return name, true
}

// pickMember resolves seq to its owning member under the read lock.
func (c *Cluster) pickMember(seq uint32) (*member, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	idx, _, err := c.bal.Pick(uint64(seq))
	if err != nil {
		return nil, err
	}
	return c.members[idx], nil
}

func (c *Cluster) allocSeq() (uint32, error) {
	c.dirMu.Lock()
	defer c.dirMu.Unlock()
	if n := len(c.freeSeqs); n > 0 {
		seq := c.freeSeqs[n-1]
		c.freeSeqs = c.freeSeqs[:n-1]
		return seq, nil
	}
	if c.nextSeq > seqMask {
		return 0, ErrNoSeq
	}
	seq := c.nextSeq
	c.nextSeq++
	return seq, nil
}

// Attach admits a user somewhere in the cluster: it allocates a global
// sequence number, embeds it in the assigned TEID/UE address pair, and
// runs the attach procedure on the Maglev-picked node. Returns the
// owning node's name alongside the attach result.
func (c *Cluster) Attach(spec core.AttachSpec) (core.AttachResult, string, error) {
	c.dirMu.RLock()
	_, dup := c.byIMSI[spec.IMSI]
	c.dirMu.RUnlock()
	if dup {
		return core.AttachResult{}, "", fmt.Errorf("cluster: IMSI %d already attached", spec.IMSI)
	}
	seq, err := c.allocSeq()
	if err != nil {
		return core.AttachResult{}, "", err
	}
	sliceIdx := int(seq) % c.cfg.SlicesPerNode
	spec.AssignedUplinkTEID = UplinkTEIDFor(seq, c.cfg.SlicesPerNode)
	spec.AssignedUEAddr = UEAddrFor(seq, c.cfg.SlicesPerNode)
	for {
		m, err := c.pickMember(seq)
		if err != nil {
			c.releaseSeq(seq)
			return core.AttachResult{}, "", err
		}
		m.attachMu.Lock()
		// Revalidate under the attach lock: a membership change between
		// the pick and the lock would otherwise land the user on a node
		// the balancer no longer maps its key to (or on a killed node's
		// carcass), stranding it where neither steering nor a rebalance
		// snapshot can see it. Reshapes barrier on attachMu after every
		// balancer flip, so a pick that validates here is final.
		if m2, err2 := c.pickMember(seq); err2 != nil || m2 != m || m.dead.Load() {
			m.attachMu.Unlock()
			if err2 != nil {
				c.releaseSeq(seq)
				return core.AttachResult{}, "", err2
			}
			continue
		}
		res, err := m.node.AttachUser(sliceIdx, spec)
		if err != nil {
			m.attachMu.Unlock()
			c.releaseSeq(seq)
			return core.AttachResult{}, "", err
		}
		// The directory insert stays inside the attach lock so a reshape
		// that barriers on it sees node state and directory move together.
		c.dirMu.Lock()
		c.byIMSI[spec.IMSI] = seq
		c.bySeq[seq] = spec.IMSI
		c.dirMu.Unlock()
		m.attachMu.Unlock()
		return res, m.name, nil
	}
}

// Detach removes a user wherever it lives and recycles its sequence
// number.
func (c *Cluster) Detach(imsi uint64) error {
	c.dirMu.RLock()
	seq, ok := c.byIMSI[imsi]
	c.dirMu.RUnlock()
	if !ok {
		return ErrUserUnknown
	}
	sliceIdx := int(seq) % c.cfg.SlicesPerNode
	for {
		m, err := c.pickMember(seq)
		if err != nil {
			return err
		}
		m.attachMu.Lock()
		// Same revalidation as Attach: detach on the node the balancer
		// maps the user to right now, not the one picked a moment ago.
		// A detach that still misses (the user is mid-export in a
		// concurrent reshape) errors and leaves the directory intact.
		if m2, err2 := c.pickMember(seq); err2 != nil || m2 != m || m.dead.Load() {
			m.attachMu.Unlock()
			if err2 != nil {
				return err2
			}
			continue
		}
		err = m.node.DetachUser(sliceIdx, imsi)
		if err != nil {
			m.attachMu.Unlock()
			return err
		}
		c.dirMu.Lock()
		delete(c.byIMSI, imsi)
		delete(c.bySeq, seq)
		c.dirMu.Unlock()
		m.attachMu.Unlock()
		c.releaseSeq(seq)
		return nil
	}
}

func (c *Cluster) releaseSeq(seq uint32) {
	c.dirMu.Lock()
	c.freeSeqs = append(c.freeSeqs, seq)
	c.dirMu.Unlock()
}

// SyncAll applies pending control→data updates on every live slice —
// the inline-harness substitute for running data workers.
func (c *Cluster) SyncAll() {
	c.mu.RLock()
	members := append([]*member(nil), c.members...)
	c.mu.RUnlock()
	for _, m := range members {
		for i := 0; i < m.node.NumSlices(); i++ {
			m.node.Slice(i).Data().SyncUpdates()
		}
	}
}

// Stats aggregates demux counters across live members.
type Stats struct {
	Steered uint64
	Unknown uint64
}

// Stats returns cluster-wide steering counters. Unknown counts packets
// that arrived at a node not (or not yet) serving their user — the
// disruption currency of rebalancing and failures.
func (c *Cluster) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var st Stats
	for _, m := range c.members {
		st.Steered += m.node.Demux().Steered.Load()
		st.Unknown += m.node.Demux().Unknown.Load()
	}
	return st
}

// Latency merges ingress-to-verdict latency histograms from every live
// member's slices into one cluster-wide readout snapshot (populated
// when Config.RecordLatency is set and the feeding Steerers stamp
// ingress). Lock-free against running data workers — each slice's
// per-direction recorders are merged atomically; dead members are
// skipped, so a readout spanning a failure reflects only what survivors
// measured.
func (c *Cluster) Latency() *hdr.Histogram {
	c.mu.RLock()
	members := append([]*member(nil), c.members...)
	c.mu.RUnlock()
	m := hdr.New()
	for _, mb := range members {
		if mb.dead.Load() {
			continue
		}
		for i := 0; i < mb.node.NumSlices(); i++ {
			dp := mb.node.Slice(i).Data()
			m.Merge(dp.LatencyUplink())
			m.Merge(dp.LatencyDownlink())
		}
	}
	return m
}

// TotalAttached sums Users() over every live node's slices — the
// ground truth the directory is checked against in tests.
func (c *Cluster) TotalAttached() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, m := range c.members {
		for i := 0; i < m.node.NumSlices(); i++ {
			total += m.node.Slice(i).Users()
		}
	}
	return total
}
