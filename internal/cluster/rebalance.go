package cluster

import (
	"pepc/internal/core"
	"pepc/internal/pkt"
)

// RebalanceReport summarizes one membership change.
type RebalanceReport struct {
	// Moved counts users migrated to their new owner.
	Moved int
	// Failed counts users whose export or import failed (they are
	// detached from the directory rather than left dangling).
	Failed int
	// RemappedEntries counts Maglev table entries whose backend changed
	// — the disruption bound: only users hashing into these entries
	// moved.
	RemappedEntries int
	// TableSize is the Maglev table size the bound is relative to.
	TableSize int
	// Chunks is the number of migration chunks the move was split into.
	Chunks int
}

// AddNode grows the cluster by one freshly built node and migrates
// exactly the users whose Maglev slots remapped onto it. The balancer
// flips before migration starts: new attaches route to the new node
// immediately, and remapped users' in-flight packets surface as Unknown
// drops on the new owner until their chunk lands — the bounded
// disruption window.
func (c *Cluster) AddNode() (string, RebalanceReport, error) {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()

	c.mu.Lock()
	name := c.freshName()
	m := c.newMember(name)
	before := c.bal.TableSnapshot()
	beforeView := append([]*member(nil), c.members...)
	if err := c.bal.Add(name); err != nil {
		c.mu.Unlock()
		return "", RebalanceReport{}, err
	}
	c.byName[name] = m
	c.rebuildView()
	after := c.bal.TableSnapshot()
	afterView := append([]*member(nil), c.members...)
	c.mu.Unlock()

	rep := c.migrateRemapped(before, beforeView, after, afterView)
	return name, rep, nil
}

// RemoveNode drains the named (still live) node gracefully: the
// balancer flips first, so every user of the node is "remapped" and
// migrated to its surviving owner; then the node is dropped from the
// cluster. Per Maglev, survivors' users do not move.
func (c *Cluster) RemoveNode(name string) (RebalanceReport, error) {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()

	c.mu.Lock()
	m := c.byName[name]
	if m == nil {
		c.mu.Unlock()
		return RebalanceReport{}, ErrUnknownNode
	}
	if m.dead.Load() {
		c.mu.Unlock()
		return RebalanceReport{}, ErrNodeDead
	}
	if len(c.members) == 1 {
		c.mu.Unlock()
		return RebalanceReport{}, ErrLastNode
	}
	before := c.bal.TableSnapshot()
	beforeView := append([]*member(nil), c.members...)
	if err := c.bal.Remove(name); err != nil {
		c.mu.Unlock()
		return RebalanceReport{}, err
	}
	c.rebuildView()
	after := c.bal.TableSnapshot()
	afterView := append([]*member(nil), c.members...)
	c.mu.Unlock()

	rep := c.migrateRemapped(before, beforeView, after, afterView)

	c.mu.Lock()
	delete(c.byName, name)
	c.mu.Unlock()
	return rep, nil
}

func (c *Cluster) freshName() string {
	for {
		name := nodeName(c.nextID)
		c.nextID++
		if c.byName[name] == nil {
			return name
		}
	}
}

func nodeName(id int) string {
	// fmt.Sprintf-free to keep the call cheap under c.mu.
	var buf [20]byte
	n := len(buf)
	for {
		n--
		buf[n] = byte('0' + id%10)
		id /= 10
		if id == 0 {
			break
		}
	}
	return "node-" + string(buf[n:])
}

// migrateRemapped moves every attached user whose Maglev slot changed
// backend between the before/after snapshots, in chunks, via the
// export/import state-transfer path. Users that vanished mid-walk (a
// concurrent detach) are skipped; users whose transfer fails are
// removed from the directory and counted.
func (c *Cluster) migrateRemapped(before []int32, beforeView []*member, after []int32, afterView []*member) RebalanceReport {
	rep := RebalanceReport{TableSize: len(before)}
	for i := range before {
		var oldM, newM *member
		if before[i] >= 0 && int(before[i]) < len(beforeView) {
			oldM = beforeView[before[i]]
		}
		if after[i] >= 0 && int(after[i]) < len(afterView) {
			newM = afterView[after[i]]
		}
		if oldM != newM {
			rep.RemappedEntries++
		}
	}
	if rep.RemappedEntries == 0 {
		return rep
	}

	// Barrier: any attach that validated its pick against the old table
	// holds its member's attachMu until its directory insert lands, so
	// acquiring and releasing every pre-flip member's lock here
	// guarantees the snapshot below sees those users. Attaches locking
	// after the barrier revalidate against the new table and route
	// themselves correctly.
	attachBarrier(beforeView)
	attachBarrier(afterView)

	// Snapshot the population once; users attached after the flip are
	// already routed by the new table.
	c.dirMu.RLock()
	type userRef struct {
		imsi uint64
		seq  uint32
	}
	users := make([]userRef, 0, len(c.byIMSI))
	for imsi, seq := range c.byIMSI {
		users = append(users, userRef{imsi, seq})
	}
	c.dirMu.RUnlock()

	size := uint64(len(before))
	chunk := 0
	var dirty map[*member]struct{}
	for _, u := range users {
		slot := pkt.HashUint64(uint64(u.seq)) % size
		var oldM, newM *member
		if bi := before[slot]; bi >= 0 && int(bi) < len(beforeView) {
			oldM = beforeView[bi]
		}
		if ai := after[slot]; ai >= 0 && int(ai) < len(afterView) {
			newM = afterView[ai]
		}
		if oldM == newM || oldM == nil || newM == nil {
			continue
		}
		switch c.transferUser(u.imsi, u.seq, oldM, newM) {
		case transferOK:
			rep.Moved++
			if dirty == nil {
				dirty = make(map[*member]struct{})
			}
			dirty[newM] = struct{}{}
			chunk++
			if chunk >= c.cfg.MigrateChunk {
				rep.Chunks++
				chunk = 0
				for m := range dirty {
					syncMember(m)
					delete(dirty, m)
				}
			}
		case transferGone:
			// Concurrently detached; nothing to do.
		case transferFailed:
			rep.Failed++
			c.forgetUser(u.imsi, u.seq)
		}
	}
	if chunk > 0 {
		rep.Chunks++
	}
	for m := range dirty {
		syncMember(m)
	}
	return rep
}

type transferResult int

const (
	transferOK transferResult = iota
	transferGone
	transferFailed
)

// transferUser ships one user src→dst through the serialized snapshot.
// Both nodes' control entry points are serialized per node; src is
// always locked first — safe because reshapes (the only two-node
// lockers) are themselves serialized by rebalanceMu.
func (c *Cluster) transferUser(imsi uint64, seq uint32, src, dst *member) transferResult {
	sliceIdx := int(seq) % c.cfg.SlicesPerNode
	src.attachMu.Lock()
	msg, err := src.node.Scheduler().ExportUser(imsi, sliceIdx)
	src.attachMu.Unlock()
	if err == core.ErrUserUnknown {
		return transferGone
	}
	if err != nil {
		return transferFailed
	}
	dst.attachMu.Lock()
	err = dst.node.Scheduler().ImportUser(msg, sliceIdx)
	dst.attachMu.Unlock()
	if err != nil {
		return transferFailed
	}
	return transferOK
}

// forgetUser drops a user from the directory (failed transfer: its
// state is lost, keeping it routable would blackhole signaling).
func (c *Cluster) forgetUser(imsi uint64, seq uint32) {
	c.dirMu.Lock()
	delete(c.byIMSI, imsi)
	delete(c.bySeq, seq)
	c.freeSeqs = append(c.freeSeqs, seq)
	c.dirMu.Unlock()
}

// attachBarrier acquires and releases each member's attach lock in
// turn, forcing every in-flight control-plane entry (attach/detach/
// transfer) on those members to complete before the caller proceeds.
func attachBarrier(members []*member) {
	for _, m := range members {
		m.attachMu.Lock()
		//lint:ignore SA2001 empty critical section is the barrier.
		m.attachMu.Unlock()
	}
}

func syncMember(m *member) {
	for i := 0; i < m.node.NumSlices(); i++ {
		m.node.Slice(i).Data().SyncUpdates()
	}
}
