package cluster

import (
	"sync"
	"testing"

	"pepc/internal/core"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
	"pepc/internal/workload"
)

// processAll inline-runs every queued packet through its slice's data
// plane and drains egress, returning the number forwarded.
func processAll(c *Cluster) int {
	batch := make([]*pkt.Buf, 64)
	forwarded := 0
	for _, name := range c.Names() {
		n := c.Node(name)
		for i := 0; i < n.NumSlices(); i++ {
			s := n.Slice(i)
			before := s.Data().Forwarded.Load()
			for {
				k := s.Uplink.DequeueBatch(batch)
				if k == 0 {
					break
				}
				s.Data().ProcessUplinkBatch(batch[:k], sim.Now())
			}
			forwarded += int(s.Data().Forwarded.Load() - before)
			for {
				b, ok := s.Egress.Dequeue()
				if !ok {
					break
				}
				b.Free()
			}
		}
	}
	return forwarded
}

// arenaInvariant asserts every handle-layout slice's live arena slots
// equal its attached users.
func arenaInvariant(t *testing.T, c *Cluster) {
	t.Helper()
	for _, name := range c.Names() {
		n := c.Node(name)
		for i := 0; i < n.NumSlices(); i++ {
			s := n.Slice(i)
			if live := s.ArenaLive(); live >= 0 && live != s.Users() {
				t.Fatalf("%s slice %d: arena live %d != users %d", name, i, live, s.Users())
			}
		}
	}
}

// TestKillRecoverConservation is the cluster failure drill: a node dies
// with pre-checkpoint users (with traffic counters), post-checkpoint
// attaches surviving only in its update queues, and the whole
// population must come back on the survivors with counters intact and
// arena accounting balanced.
func TestKillRecoverConservation(t *testing.T) {
	c, err := New(Config{Nodes: 3, SlicesPerNode: 2, UserHint: 1024, StateLayout: core.LayoutHandle})
	if err != nil {
		t.Fatal(err)
	}
	const base = 600
	users := attachN(t, c, base)

	// Traffic so recovered counters are non-trivial.
	gen := workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: 1, CoreAddr: 2, Burst: 4}, users)
	st := c.NewSteerer(32, nil)
	var burst [32]*pkt.Buf
	const rounds = 40
	for round := 0; round < rounds; round++ {
		for i := range burst {
			burst[i] = gen.NextUplink()
		}
		st.Steer(burst[:])
	}
	if got := processAll(c); got != rounds*len(burst) {
		t.Fatalf("forwarded %d of %d before the crash", got, rounds*len(burst))
	}

	if _, err := c.CheckpointAll(); err != nil {
		t.Fatal(err)
	}

	// Post-checkpoint attaches: no SyncAll, so on the victim they live
	// only in its control stores and update queues.
	const extra = 60
	for i := base + 1; i <= base+extra; i++ {
		res, _, err := c.Attach(core.AttachSpec{
			IMSI: uint64(i), ENBAddr: 1, DownlinkTEID: uint32(0x9000 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		users = append(users, workload.User{
			IMSI: uint64(i), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr,
		})
	}

	victim := c.Names()[0]
	victimUsers := make(map[uint64]state.CounterState)
	vnode := c.Node(victim)
	for _, u := range users {
		if owner, _ := c.Owner(u.IMSI); owner == victim {
			var cnt state.CounterState
			si, _ := vnode.Demux().LookupSliceByIMSI(u.IMSI)
			ue := vnode.Slice(si).Control().Lookup(u.IMSI)
			ue.ReadCounters(func(cs *state.CounterState) { cnt = *cs })
			victimUsers[u.IMSI] = cnt
		}
	}
	if len(victimUsers) == 0 {
		t.Fatal("victim held no users")
	}

	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	// Mid-outage traffic for dead-node users drops as Unknown on the
	// re-picked owners — measurable, not fatal. (The burst mixes victim
	// and survivor users, so only part of it drops.)
	for i := range burst {
		burst[i] = gen.NextUplink()
	}
	st.Steer(burst[:])
	drainAll(c)
	outageUnknown := c.Stats().Unknown

	rep, err := c.RecoverNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SlicesRecovered != 2 {
		t.Fatalf("slices recovered: %d", rep.SlicesRecovered)
	}
	if rep.ImportFailed != 0 || rep.Orphans != 0 {
		t.Fatalf("recovery lost users: %+v", rep)
	}
	if rep.UsersScattered != len(victimUsers) {
		t.Fatalf("scattered %d, victim held %d", rep.UsersScattered, len(victimUsers))
	}
	if rep.Replayed == 0 {
		t.Fatal("no post-checkpoint attach was replayed from the update queue")
	}
	total := base + extra
	if c.Users() != total || c.TotalAttached() != total {
		t.Fatalf("population after recovery: dir=%d attached=%d want %d", c.Users(), c.TotalAttached(), total)
	}
	checkRoutable(t, c, users)
	arenaInvariant(t, c)

	// Counters survived the crash for every user the queue still
	// referenced; checkpointed-only users are at worst checkpoint-stale
	// (here: identical, no traffic ran between checkpoint and crash).
	for imsi, want := range victimUsers {
		owner, _ := c.Owner(imsi)
		n := c.Node(owner)
		si, ok := n.Demux().LookupSliceByIMSI(imsi)
		if !ok {
			t.Fatalf("user %d unreachable after recovery", imsi)
		}
		ue := n.Slice(si).Control().Lookup(imsi)
		var got state.CounterState
		ue.ReadCounters(func(cs *state.CounterState) { got = *cs })
		if got != want {
			t.Fatalf("user %d counters diverged:\n pre  %+v\n post %+v", imsi, want, got)
		}
	}

	// Recovered users serve traffic at their new homes: no further
	// Unknown drops after recovery.
	for i := range burst {
		burst[i] = gen.NextUplink()
	}
	st.Steer(burst[:])
	if got := c.Stats().Unknown; got != outageUnknown {
		t.Fatalf("post-recovery traffic dropped: unknown %d → %d", outageUnknown, got)
	}
	processAll(c)
}

// TestClusterConcurrentChurn is the race-detector drill: an attach
// storm, a steering loop, and membership churn (grow, kill, recover)
// run concurrently against one cluster. Invariants are checked at the
// end; the test's value under -race is the interleaving itself.
func TestClusterConcurrentChurn(t *testing.T) {
	c, err := New(Config{Nodes: 2, SlicesPerNode: 2, UserHint: 2048, StateLayout: core.LayoutHandle})
	if err != nil {
		t.Fatal(err)
	}
	const warm = 400
	users := attachN(t, c, warm)
	if _, err := c.CheckpointAll(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Attach storm.
	const storm = 1200
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := warm + 1; i <= warm+storm; i++ {
			if _, _, err := c.Attach(core.AttachSpec{
				IMSI: uint64(i), ENBAddr: 1, DownlinkTEID: uint32(0x9000 + i),
			}); err != nil {
				t.Errorf("storm attach %d: %v", i, err)
				return
			}
		}
	}()

	// Steering loop over the warm population.
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: 1, CoreAddr: 2, Burst: 4}, users)
		st := c.NewSteerer(16, nil)
		var burst [16]*pkt.Buf
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range burst {
				burst[i], _ = gen.Next()
			}
			st.Steer(burst[:])
			drainAll(c)
		}
	}()

	// Membership churn: grow, drain one away, kill one, recover it.
	added, _, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveNode(added); err != nil {
		t.Fatal(err)
	}
	victim := c.Names()[1]
	if _, err := c.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}

	close(stop)
	wg.Wait()
	drainAll(c)

	// The kill window can orphan users attached to the victim after its
	// checkpoint (that is what checkpoint lag means); everyone else
	// survives, and the directory agrees with the nodes.
	if c.TotalAttached() != c.Users() {
		t.Fatalf("directory %d != attached %d", c.Users(), c.TotalAttached())
	}
	if c.Users() < warm {
		t.Fatalf("population collapsed: %d", c.Users())
	}
	c.SyncAll()
	arenaInvariant(t, c)
	for _, u := range users {
		if _, ok := c.Owner(u.IMSI); !ok {
			continue // orphaned in the kill window
		}
	}
	// Delivery check from this thread: counters on removed carcasses die
	// with them, so the goroutine's deliveries may be invisible in
	// Stats() by now. The warm users were all checkpointed before the
	// churn, so every one survives it and a fresh burst must land.
	before := c.Stats()
	gen := workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: 1, CoreAddr: 2, Burst: 4}, users)
	st := c.NewSteerer(16, nil)
	var burst [16]*pkt.Buf
	for i := range burst {
		burst[i], _ = gen.Next()
	}
	st.Steer(burst[:])
	drainAll(c)
	after := c.Stats()
	if after.Steered-before.Steered != uint64(len(burst)) {
		t.Fatalf("post-churn burst: steered %d of %d (unknown +%d)",
			after.Steered-before.Steered, len(burst), after.Unknown-before.Unknown)
	}
}
