package cluster

import (
	"errors"
	"testing"

	"pepc/internal/core"
	"pepc/internal/lb"
	"pepc/internal/pkt"
	"pepc/internal/workload"
)

// attachN admits n users (IMSI 1..n) and returns their generator
// coordinates.
func attachN(t *testing.T, c *Cluster, n int) []workload.User {
	t.Helper()
	users := make([]workload.User, 0, n)
	for i := 1; i <= n; i++ {
		res, _, err := c.Attach(core.AttachSpec{
			IMSI: uint64(i), ENBAddr: 1, DownlinkTEID: uint32(0x9000 + i),
		})
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		users = append(users, workload.User{
			IMSI: uint64(i), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr,
		})
	}
	c.SyncAll()
	return users
}

// drainAll empties every slice ring in the cluster, freeing buffers,
// and returns how many packets were queued.
func drainAll(c *Cluster) int {
	batch := make([]*pkt.Buf, 64)
	total := 0
	for _, name := range c.Names() {
		n := c.Node(name)
		if n == nil { // removed between the Names snapshot and the lookup
			continue
		}
		for i := 0; i < n.NumSlices(); i++ {
			s := n.Slice(i)
			for {
				k := s.Uplink.DequeueBatch(batch)
				if k == 0 {
					break
				}
				for j := 0; j < k; j++ {
					batch[j].Free()
				}
				total += k
			}
			for {
				k := s.Downlink.DequeueBatch(batch)
				if k == 0 {
					break
				}
				for j := 0; j < k; j++ {
					batch[j].Free()
				}
				total += k
			}
		}
	}
	return total
}

// checkRoutable asserts every directory user is found on its
// balancer-picked owner's demux.
func checkRoutable(t *testing.T, c *Cluster, users []workload.User) {
	t.Helper()
	for _, u := range users {
		owner, ok := c.Owner(u.IMSI)
		if !ok {
			t.Fatalf("user %d lost from directory", u.IMSI)
		}
		n := c.Node(owner)
		if n == nil {
			t.Fatalf("user %d owned by unknown node %s", u.IMSI, owner)
		}
		if _, ok := n.Demux().LookupSliceByIMSI(u.IMSI); !ok {
			t.Fatalf("user %d not registered on owner %s", u.IMSI, owner)
		}
	}
}

func TestClusterAttachAndSteer(t *testing.T) {
	c, err := New(Config{Nodes: 2, SlicesPerNode: 2, UserHint: 512})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	users := attachN(t, c, n)
	if c.Users() != n || c.TotalAttached() != n {
		t.Fatalf("users: dir=%d attached=%d", c.Users(), c.TotalAttached())
	}
	checkRoutable(t, c, users)

	// Identifiers embed the steering key in both directions.
	for _, u := range users {
		if SteerKey(u.UplinkTEID) != SteerKey(u.UEAddr) {
			t.Fatalf("user %d: TEID %#x and addr %#x disagree on key", u.IMSI, u.UplinkTEID, u.UEAddr)
		}
	}

	gen := workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: 1, CoreAddr: 2, Burst: 4}, users)
	st := c.NewSteerer(32, nil)
	sent := 0
	var burst [16]*pkt.Buf
	for round := 0; round < 50; round++ {
		for i := range burst {
			burst[i], _ = gen.Next()
		}
		st.Steer(burst[:])
		sent += len(burst)
	}
	stats := c.Stats()
	queued := drainAll(c)
	if stats.Unknown != 0 || st.Drops != 0 {
		t.Fatalf("drops on a stable cluster: unknown=%d steererDrops=%d", stats.Unknown, st.Drops)
	}
	if stats.Steered != uint64(sent) || queued != sent {
		t.Fatalf("steered %d, queued %d, sent %d", stats.Steered, queued, sent)
	}
}

func TestClusterSteerZeroAlloc(t *testing.T) {
	c, err := New(Config{Nodes: 2, UserHint: 64})
	if err != nil {
		t.Fatal(err)
	}
	users := attachN(t, c, 4)
	gen := workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: 1, CoreAddr: 2}, users)

	const batch = 8
	st := c.NewSteerer(batch, nil)
	u := users[0]
	owner, _ := c.Owner(u.IMSI)
	s := c.Node(owner).Slice(int(mustSeq(t, c, u.IMSI)) % c.cfg.SlicesPerNode)

	bufs := make([]*pkt.Buf, batch)
	for i := range bufs {
		bufs[i] = gen.UplinkFor(u)
	}
	scratch := make([]*pkt.Buf, batch)
	round := func() {
		st.Steer(bufs)
		got := 0
		for got < batch {
			got += s.Uplink.DequeueBatch(scratch[got:])
		}
		copy(bufs, scratch[:batch])
	}
	round() // warm scratch and the per-node steer view
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Fatalf("cluster steer steady state allocates %.1f allocs/burst, want 0", allocs)
	}
	drainAll(c)
}

func mustSeq(t *testing.T, c *Cluster, imsi uint64) uint32 {
	t.Helper()
	seq, ok := c.SeqOf(imsi)
	if !ok {
		t.Fatalf("no seq for %d", imsi)
	}
	return seq
}

func TestAddNodeMigratesOnlyRemapped(t *testing.T) {
	c, err := New(Config{Nodes: 3, UserHint: 2048, TableSize: 65537})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	users := attachN(t, c, n)
	ownerBefore := make(map[uint64]string, n)
	for _, u := range users {
		ownerBefore[u.IMSI], _ = c.Owner(u.IMSI)
	}

	name, rep, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 4 {
		t.Fatalf("size %d after add", c.Size())
	}
	// Maglev disruption bound on the table itself: a single membership
	// change remaps at most ~2·M/N entries (N after the change).
	bound := 2 * rep.TableSize / 4
	if rep.RemappedEntries == 0 || rep.RemappedEntries > bound {
		t.Fatalf("remapped %d of %d entries, bound %d", rep.RemappedEntries, rep.TableSize, bound)
	}
	if rep.Failed != 0 {
		t.Fatalf("failed transfers: %d", rep.Failed)
	}
	// The moved population tracks the remapped key fraction.
	expect := n * rep.RemappedEntries / rep.TableSize
	if rep.Moved < expect/2 || rep.Moved > expect*2 {
		t.Fatalf("moved %d users, expected ≈%d (remapped fraction)", rep.Moved, expect)
	}
	if c.Users() != n || c.TotalAttached() != n {
		t.Fatalf("population changed: dir=%d attached=%d", c.Users(), c.TotalAttached())
	}
	checkRoutable(t, c, users)
	// Nearly every move landed on the new node: Maglev minimizes (but
	// does not fully eliminate) cross-survivor remaps, so allow a small
	// residue.
	movedTo, movedElse := 0, 0
	for _, u := range users {
		owner, _ := c.Owner(u.IMSI)
		if owner != ownerBefore[u.IMSI] {
			if owner == name {
				movedTo++
			} else {
				movedElse++
			}
		}
	}
	if movedTo+movedElse != rep.Moved {
		t.Fatalf("owner diff %d != report moved %d", movedTo+movedElse, rep.Moved)
	}
	if movedElse > rep.Moved/5 {
		t.Fatalf("%d of %d moves went to survivors, want a small residue", movedElse, rep.Moved)
	}
}

func TestRemoveNodeDrains(t *testing.T) {
	c, err := New(Config{Nodes: 3, UserHint: 1024})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1200
	users := attachN(t, c, n)
	victim := c.Names()[1]
	onVictim := 0
	for _, u := range users {
		if owner, _ := c.Owner(u.IMSI); owner == victim {
			onVictim++
		}
	}

	rep, err := c.RemoveNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved != onVictim || rep.Failed != 0 {
		t.Fatalf("moved %d (failed %d), victim held %d", rep.Moved, rep.Failed, onVictim)
	}
	if c.Size() != 2 || c.Node(victim) != nil {
		t.Fatalf("victim still present: size=%d", c.Size())
	}
	if c.Users() != n || c.TotalAttached() != n {
		t.Fatalf("population changed: dir=%d attached=%d", c.Users(), c.TotalAttached())
	}
	checkRoutable(t, c, users)

	// Shrinking to zero is refused.
	if _, err := c.RemoveNode(c.Names()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveNode(c.Names()[0]); err != ErrLastNode {
		t.Fatalf("removing the last node: %v", err)
	}
	if c.Users() != n {
		t.Fatalf("users lost shrinking to one node: %d", c.Users())
	}
	checkRoutable(t, c, users)
}

func TestDetachRecyclesSeq(t *testing.T) {
	c, err := New(Config{Nodes: 1, UserHint: 64})
	if err != nil {
		t.Fatal(err)
	}
	res1, _, err := c.Attach(core.AttachSpec{IMSI: 1, ENBAddr: 1, DownlinkTEID: 0x100})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Attach(core.AttachSpec{IMSI: 1, ENBAddr: 1, DownlinkTEID: 0x100}); err == nil {
		t.Fatal("duplicate IMSI attached")
	}
	if err := c.Detach(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Detach(1); err != ErrUserUnknown {
		t.Fatalf("double detach: %v", err)
	}
	if c.Users() != 0 || c.TotalAttached() != 0 {
		t.Fatalf("population after detach: dir=%d attached=%d", c.Users(), c.TotalAttached())
	}
	res2, _, err := c.Attach(core.AttachSpec{IMSI: 2, ENBAddr: 1, DownlinkTEID: 0x101})
	if err != nil {
		t.Fatal(err)
	}
	if res2.UplinkTEID != res1.UplinkTEID || res2.UEAddr != res1.UEAddr {
		t.Fatalf("seq not recycled: %#x/%#x then %#x/%#x",
			res1.UplinkTEID, res1.UEAddr, res2.UplinkTEID, res2.UEAddr)
	}
}

// TestLastNodeRemovalFailsClosed pins both halves of the empty-backend
// contract. Refusal: RemoveNode down to zero nodes returns ErrLastNode,
// which errors.Is-matches lb.ErrNoBackends — the typed cause an empty
// Maglev rebuild would surface — and leaves the population routable.
// Fail-closed: if the balancer nonetheless goes empty under in-flight
// steering, every buffer of the burst is freed and counted as a drop;
// nothing is delivered off a stale table.
func TestLastNodeRemovalFailsClosed(t *testing.T) {
	c, err := New(Config{Nodes: 1, UserHint: 64})
	if err != nil {
		t.Fatal(err)
	}
	users := attachN(t, c, 4)

	_, rmErr := c.RemoveNode(c.Names()[0])
	if rmErr != ErrLastNode {
		t.Fatalf("removing the last node: %v, want ErrLastNode", rmErr)
	}
	if !errors.Is(rmErr, lb.ErrNoBackends) {
		t.Fatalf("ErrLastNode does not wrap lb.ErrNoBackends: %v", rmErr)
	}
	if c.Users() != len(users) {
		t.Fatalf("refused removal lost users: %d", c.Users())
	}
	checkRoutable(t, c, users)

	// Steering still works after the refused removal.
	gen := workload.NewTrafficGen(workload.TrafficConfig{ENBAddr: 1, CoreAddr: 2, Burst: 4}, users)
	st := c.NewSteerer(16, nil)
	var burst [16]*pkt.Buf
	for i := range burst {
		burst[i], _ = gen.Next()
	}
	st.Steer(burst[:])
	if st.Drops != 0 {
		t.Fatalf("drops on a healthy single-node cluster: %d", st.Drops)
	}
	if queued := drainAll(c); queued != len(burst) {
		t.Fatalf("queued %d of %d on a healthy cluster", queued, len(burst))
	}

	// Force the hazard the refusal guards against: an empty backend set
	// under a live Steerer. The in-flight burst must fail closed.
	if err := c.bal.Remove(c.Names()[0]); err != nil {
		t.Fatal(err)
	}
	for i := range burst {
		burst[i], _ = gen.Next()
	}
	st.Steer(burst[:])
	if st.Drops != uint64(len(burst)) {
		t.Fatalf("empty-balancer burst: %d drops, want %d", st.Drops, len(burst))
	}
	if queued := drainAll(c); queued != 0 {
		t.Fatalf("%d packet(s) delivered off a stale table", queued)
	}
}
