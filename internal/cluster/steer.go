package cluster

import (
	"pepc/internal/core"
	"pepc/internal/pkt"
	"pepc/internal/sim"
)

// Steerer is the cluster's batched steering hot path: one rx burst is
// classified exactly once (the parse is recorded in packet metadata and
// trusted downstream), hashed through the Maglev table in one PickBatch
// call, and handed to per-node WireSteers in maximal runs of packets
// bound for the same node — the same compact/resolve/run-coalesce shape
// as core.WireSteer, lifted one level. Zero allocations at steady
// membership; a membership change (epoch bump) re-derives the per-node
// steerer array once.
//
// Single goroutine per Steerer, like WireSteer: one rx loop owns one
// Steerer. Several Steerers may feed one cluster concurrently — node
// demux locks and MPSC slice rings absorb the fan-in.
type Steerer struct {
	c     *Cluster
	cache *pkt.PoolCache
	batch int

	// view pinned at the current epoch: ws[i] steers into the node at
	// balancer backend index i.
	epoch uint64
	ws    []*core.WireSteer

	live  []*pkt.Buf
	keys  []uint64
	picks []int32
	stamp bool

	// Drops counts packets freed here: unparsable, or no backend.
	Drops uint64
}

// NewSteerer returns a steering context for bursts of up to batch
// packets (scratch grows if larger bursts arrive). cache, when non-nil,
// recycles dropped packets into the caller's pool cache.
func (c *Cluster) NewSteerer(batch int, cache *pkt.PoolCache) *Steerer {
	if batch <= 0 {
		batch = 32
	}
	st := &Steerer{c: c, cache: cache, batch: batch}
	st.ensure(batch)
	return st
}

// StampIngress enables cluster-ingress timestamping: every classified
// packet of a Steer burst gets Meta.TSNanos from one clock read per
// burst, arming the owning slice's verdict-stage latency recording
// (Config.RecordLatency). Read the merged result via Cluster.Latency.
func (st *Steerer) StampIngress(on bool) { st.stamp = on }

func (st *Steerer) ensure(n int) {
	if cap(st.live) >= n {
		return
	}
	st.live = make([]*pkt.Buf, 0, n)
	st.keys = make([]uint64, n)
	st.picks = make([]int32, n)
}

// refresh re-derives the per-node WireSteer array for the current
// membership. Callers hold c.mu.RLock.
func (st *Steerer) refresh(epoch uint64) {
	st.ws = st.ws[:0]
	for _, m := range st.c.members {
		st.ws = append(st.ws, m.node.NewWireSteer(st.batch, st.cache))
	}
	st.epoch = epoch
}

func (st *Steerer) free(b *pkt.Buf) {
	st.Drops++
	if st.cache != nil {
		st.cache.Put(b)
		return
	}
	b.Free()
}

// Steer classifies and routes one rx burst across the cluster, taking
// ownership of every buffer.
func (st *Steerer) Steer(bufs []*pkt.Buf) {
	c := st.c
	st.ensure(len(bufs))

	// Stage 1: classify once and compact. The validated parse lands in
	// each packet's metadata, so the per-node WireSteer below trusts it
	// instead of re-walking headers.
	live := st.live[:0]
	for _, b := range bufs {
		key, _, ok := core.ClassifyWire(b)
		if !ok {
			st.free(b)
			continue
		}
		st.keys[len(live)] = SteerKey(key)
		live = append(live, b)
	}
	if len(live) == 0 {
		return
	}
	if st.stamp {
		// One clock read stamps the whole classified burst; the owning
		// node's verdict stage records now−stamp, so the measured span
		// covers cluster steer + demux + ring residency + processing.
		now := sim.Now()
		for _, b := range live {
			b.Meta.TSNanos = now
		}
	}

	// Stage 2: one Maglev batch lookup under the membership read lock;
	// the pick→node view cannot flip mid-burst.
	c.mu.RLock()
	if ep := c.epoch.Load(); ep != st.epoch || st.ws == nil {
		st.refresh(ep)
	}
	err := c.bal.PickBatch(st.keys[:len(live)], st.picks[:len(live)])
	if err != nil {
		c.mu.RUnlock()
		for _, b := range live {
			st.free(b)
		}
		st.reset(live)
		return
	}

	// Stage 3: hand maximal runs of same-node packets to that node's
	// WireSteer — eNodeB bursts are per-user runs, and a user maps to
	// one node, so runs are long in practice.
	i := 0
	for i < len(live) {
		p := st.picks[i]
		j := i + 1
		for j < len(live) && st.picks[j] == p {
			j++
		}
		if p < 0 || int(p) >= len(st.ws) {
			for k := i; k < j; k++ {
				st.free(live[k])
			}
		} else {
			st.ws[p].Steer(live[i:j])
		}
		i = j
	}
	c.mu.RUnlock()
	st.reset(live)
}

func (st *Steerer) reset(live []*pkt.Buf) {
	for i := range live {
		live[i] = nil
	}
	st.live = live[:0]
}
