package pcef

import (
	"testing"

	"pepc/internal/bpf"
	"pepc/internal/pkt"
)

// TestSnapshotIsStableView: a RuleSet agrees with the live table at
// capture time and keeps classifying against that state after later
// installs and removals (the copy-on-write contract the lock-free batch
// fast path relies on).
func TestSnapshotIsStableView(t *testing.T) {
	tb := NewTable()
	if err := tb.Install(Rule{
		ID: 1, Precedence: 10, Action: ActionDrop,
		Filter: bpf.FilterSpec{Proto: pkt.ProtoUDP, DstPortLo: 53, DstPortHi: 53},
	}); err != nil {
		t.Fatal(err)
	}
	snap := tb.Snapshot()

	dns := flowTo(2, 53, pkt.ProtoUDP)
	web := flowTo(2, 80, pkt.ProtoTCP)
	if v := snap.ClassifyFlow(dns); !v.Matched || v.Action != ActionDrop || v.RuleID != 1 {
		t.Fatalf("snapshot verdict = %+v", v)
	}
	if v := snap.ClassifyFlow(web); v.Matched || v.Action != ActionAllow {
		t.Fatalf("snapshot default verdict = %+v", v)
	}

	// Mutate the table: the snapshot must not move.
	if err := tb.Install(Rule{
		ID: 2, Precedence: 1, Action: ActionDrop,
		Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP, DstPortLo: 80, DstPortHi: 80},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Remove(1); err != nil {
		t.Fatal(err)
	}
	tb.SetDefault(Verdict{Action: ActionDrop})

	if v := snap.ClassifyFlow(dns); !v.Matched || v.RuleID != 1 {
		t.Fatalf("snapshot lost its rule after table mutation: %+v", v)
	}
	if v := snap.ClassifyFlow(web); v.Matched || v.Action != ActionAllow {
		t.Fatalf("snapshot saw later install or default change: %+v", v)
	}
	// A fresh snapshot sees the new state.
	snap2 := tb.Snapshot()
	if v := snap2.ClassifyFlow(web); !v.Matched || v.RuleID != 2 {
		t.Fatalf("fresh snapshot verdict = %+v", v)
	}
	if v := snap2.ClassifyFlow(dns); v.Matched || v.Action != ActionDrop {
		t.Fatalf("fresh snapshot default = %+v", v)
	}
	// Snapshot and live table agree when taken at the same instant.
	if a, b := snap2.ClassifyFlow(web), tb.ClassifyFlow(web); a != b {
		t.Fatalf("snapshot %+v vs table %+v", a, b)
	}
}
