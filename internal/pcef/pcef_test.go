package pcef

import (
	"sync"
	"testing"

	"pepc/internal/bpf"
	"pepc/internal/pkt"
)

func flowTo(dst uint32, dport uint16, proto uint8) pkt.Flow {
	return pkt.Flow{Src: pkt.IPv4Addr(10, 0, 0, 1), Dst: dst, SrcPort: 40000, DstPort: dport, Proto: proto}
}

func ipv4Packet(f pkt.Flow) []byte {
	total := pkt.IPv4HeaderLen + pkt.UDPHeaderLen
	b := make([]byte, total)
	ip := pkt.IPv4{Length: uint16(total), TTL: 64, Protocol: f.Proto, Src: f.Src, Dst: f.Dst}
	ip.SerializeTo(b)
	u := pkt.UDP{SrcPort: f.SrcPort, DstPort: f.DstPort, Length: pkt.UDPHeaderLen}
	u.SerializeTo(b[pkt.IPv4HeaderLen:])
	return b
}

func TestInstallClassifyRemove(t *testing.T) {
	tb := NewTable()
	err := tb.Install(Rule{
		ID:         1,
		Precedence: 10,
		Filter:     bpf.FilterSpec{Proto: pkt.ProtoUDP, DstPortLo: 53, DstPortHi: 53},
		Action:     ActionDrop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	v := tb.ClassifyFlow(flowTo(2, 53, pkt.ProtoUDP))
	if !v.Matched || v.Action != ActionDrop || v.RuleID != 1 {
		t.Fatalf("verdict = %+v", v)
	}
	// Non-matching traffic falls through to default allow.
	v = tb.ClassifyFlow(flowTo(2, 80, pkt.ProtoTCP))
	if v.Matched || v.Action != ActionAllow {
		t.Fatalf("default verdict = %+v", v)
	}
	if err := tb.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Remove(1); err != ErrUnknownRule {
		t.Fatalf("double remove: %v", err)
	}
	v = tb.ClassifyFlow(flowTo(2, 53, pkt.ProtoUDP))
	if v.Matched {
		t.Fatal("removed rule still matches")
	}
}

func TestDuplicateInstall(t *testing.T) {
	tb := NewTable()
	r := Rule{ID: 7, Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP}}
	if err := tb.Install(r); err != nil {
		t.Fatal(err)
	}
	if err := tb.Install(r); err != ErrDuplicateRule {
		t.Fatalf("duplicate: %v", err)
	}
}

func TestInstallRejectsBadFilter(t *testing.T) {
	tb := NewTable()
	err := tb.Install(Rule{ID: 1, Filter: bpf.FilterSpec{SrcPrefix: 60}})
	if err == nil {
		t.Fatal("bad filter accepted")
	}
}

func TestPrecedenceOrder(t *testing.T) {
	tb := NewTable()
	// Broad low-priority allow vs narrow high-priority drop.
	tb.Install(Rule{ID: 2, Precedence: 100, Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP}, Action: ActionAllow, ChargingKey: 9})
	tb.Install(Rule{ID: 1, Precedence: 1, Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP, DstPortLo: 25, DstPortHi: 25}, Action: ActionDrop})
	v := tb.ClassifyFlow(flowTo(5, 25, pkt.ProtoTCP))
	if v.RuleID != 1 || v.Action != ActionDrop {
		t.Fatalf("high-precedence rule lost: %+v", v)
	}
	v = tb.ClassifyFlow(flowTo(5, 80, pkt.ProtoTCP))
	if v.RuleID != 2 || v.ChargingKey != 9 {
		t.Fatalf("fallthrough rule: %+v", v)
	}
	// Rules() reports evaluation order.
	rules := tb.Rules()
	if len(rules) != 2 || rules[0].ID != 1 || rules[1].ID != 2 {
		t.Fatalf("rules order: %+v", rules)
	}
}

func TestClassifyPacketAgreesWithFlow(t *testing.T) {
	tb := NewTable()
	tb.Install(Rule{ID: 3, Filter: bpf.FilterSpec{
		DstAddr: pkt.IPv4Addr(10, 9, 0, 0), DstPrefix: 16, Proto: pkt.ProtoUDP,
	}, Action: ActionRateLimit, RateBitsPerSec: 1e6})
	flows := []pkt.Flow{
		flowTo(pkt.IPv4Addr(10, 9, 1, 1), 53, pkt.ProtoUDP),
		flowTo(pkt.IPv4Addr(10, 8, 1, 1), 53, pkt.ProtoUDP),
		flowTo(pkt.IPv4Addr(10, 9, 1, 1), 53, pkt.ProtoTCP),
	}
	for _, f := range flows {
		byFlow := tb.ClassifyFlow(f)
		byPkt := tb.ClassifyPacket(ipv4Packet(f))
		if byFlow.Matched != byPkt.Matched || byFlow.RuleID != byPkt.RuleID {
			t.Fatalf("flow %v: ClassifyFlow=%+v ClassifyPacket=%+v", f, byFlow, byPkt)
		}
	}
}

func TestSetDefault(t *testing.T) {
	tb := NewTable()
	tb.SetDefault(Verdict{Action: ActionDrop, Matched: true})
	v := tb.ClassifyFlow(flowTo(1, 1, pkt.ProtoTCP))
	if v.Action != ActionDrop || v.Matched {
		t.Fatalf("default: %+v (Matched must be forced false)", v)
	}
}

func TestVerdictCarriesRuleAttributes(t *testing.T) {
	tb := NewTable()
	tb.Install(Rule{
		ID: 4, Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP},
		Action: ActionMark, DSCP: 0x2e, ChargingKey: 3, RateBitsPerSec: 5e6,
	})
	v := tb.ClassifyFlow(flowTo(1, 80, pkt.ProtoTCP))
	if v.DSCP != 0x2e || v.ChargingKey != 3 || v.RateBitsPerSec != 5e6 {
		t.Fatalf("verdict attrs: %+v", v)
	}
}

func TestConcurrentInstallAndClassify(t *testing.T) {
	tb := NewTable()
	tb.Install(Rule{ID: 1, Filter: bpf.FilterSpec{Proto: pkt.ProtoUDP}})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint32(2); i < 200; i++ {
			tb.Install(Rule{ID: i, Precedence: uint16(i), Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP, DstPortLo: uint16(i), DstPortHi: uint16(i)}})
		}
	}()
	go func() {
		defer wg.Done()
		f := flowTo(1, 53, pkt.ProtoUDP)
		for i := 0; i < 20000; i++ {
			if v := tb.ClassifyFlow(f); !v.Matched {
				t.Error("stable rule lost during concurrent install")
				return
			}
		}
	}()
	wg.Wait()
	if tb.Len() != 199 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestActionStrings(t *testing.T) {
	for a, want := range map[Action]string{
		ActionAllow: "allow", ActionDrop: "drop", ActionRateLimit: "rate-limit", ActionMark: "mark",
	} {
		if a.String() != want {
			t.Fatalf("%d.String() = %q", a, a.String())
		}
	}
}

func BenchmarkClassifyFlow10Rules(b *testing.B) {
	tb := NewTable()
	for i := uint32(1); i <= 10; i++ {
		tb.Install(Rule{ID: i, Precedence: uint16(i),
			Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP, DstPortLo: uint16(i * 1000), DstPortHi: uint16(i*1000 + 10)}})
	}
	f := flowTo(2, 5005, pkt.ProtoTCP) // matches rule 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v := tb.ClassifyFlow(f); !v.Matched {
			b.Fatal("no match")
		}
	}
}

func BenchmarkClassifyPacket10Rules(b *testing.B) {
	tb := NewTable()
	for i := uint32(1); i <= 10; i++ {
		tb.Install(Rule{ID: i, Precedence: uint16(i),
			Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP, DstPortLo: uint16(i * 1000), DstPortHi: uint16(i*1000 + 10)}})
	}
	data := ipv4Packet(flowTo(2, 5005, pkt.ProtoTCP))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v := tb.ClassifyPacket(data); !v.Matched {
			b.Fatal("no match")
		}
	}
}
