// Package pcef implements the Policy and Charging Enforcement Function:
// "a match-action table, consisting of BPF programs over the 5-tuple and
// operator specified actions" (paper §4.2). Rules are installed by the
// PCRF through the node proxy onto the slice control thread; the data
// thread classifies each packet against the table and applies the first
// matching rule's action.
package pcef

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"pepc/internal/bpf"
	"pepc/internal/pkt"
)

// Action is what a matching rule does to a packet.
type Action uint8

// Actions.
const (
	// ActionAllow forwards the packet and counts it against the rule.
	ActionAllow Action = iota
	// ActionDrop discards the packet (gating).
	ActionDrop
	// ActionRateLimit forwards subject to the rule's rate limiter.
	ActionRateLimit
	// ActionMark rewrites the DSCP/TOS field for downstream QoS.
	ActionMark
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionAllow:
		return "allow"
	case ActionDrop:
		return "drop"
	case ActionRateLimit:
		return "rate-limit"
	case ActionMark:
		return "mark"
	}
	return "action(?)"
}

// Rule is one PCC (policy and charging control) rule.
type Rule struct {
	ID         uint32
	Precedence uint16 // lower evaluates first, like 3GPP PCC precedence
	Filter     bpf.FilterSpec
	Action     Action

	// RateBitsPerSec applies to ActionRateLimit.
	RateBitsPerSec uint64
	// DSCP applies to ActionMark.
	DSCP uint8
	// ChargingKey groups usage for offline charging (maps to the UE's
	// RuleBytes slot via the slice's rule installation).
	ChargingKey uint32

	prog *bpf.Program // compiled at install time
}

// Verdict is the classification result for one packet.
type Verdict struct {
	RuleID         uint32
	Action         Action
	ChargingKey    uint32
	DSCP           uint8
	RateBitsPerSec uint64
	Matched        bool
}

// Table errors.
var (
	ErrDuplicateRule = errors.New("pcef: rule id already installed")
	ErrUnknownRule   = errors.New("pcef: rule id not installed")
)

// Table is a PCEF match-action table. Installation happens on the control
// side under a write lock; classification happens on the data side under a
// read lock over an immutable rule slice, so the fast path takes one
// RLock and no allocation.
type Table struct {
	mu    sync.RWMutex
	rules []*Rule // sorted by precedence, then id
	byID  map[uint32]*Rule
	// defaultVerdict applies when no rule matches; operators typically
	// configure allow-with-default-charging.
	defaultVerdict Verdict
}

// NewTable returns an empty table whose default (no-match) verdict allows
// traffic with charging key 0.
func NewTable() *Table {
	return &Table{
		byID:           make(map[uint32]*Rule),
		defaultVerdict: Verdict{Action: ActionAllow},
	}
}

// SetDefault replaces the no-match verdict.
func (t *Table) SetDefault(v Verdict) {
	t.mu.Lock()
	v.Matched = false
	t.defaultVerdict = v
	t.mu.Unlock()
}

// Install compiles and adds a rule. The rule is evaluated in precedence
// order relative to existing rules.
func (t *Table) Install(r Rule) error {
	prog, err := bpf.Compile(r.Filter)
	if err != nil {
		return fmt.Errorf("pcef: compiling rule %d: %w", r.ID, err)
	}
	r.prog = prog
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.byID[r.ID]; dup {
		return ErrDuplicateRule
	}
	rc := r // private copy
	t.byID[r.ID] = &rc
	// Copy-on-write: readers hold the old slice without blocking.
	rules := make([]*Rule, 0, len(t.rules)+1)
	rules = append(rules, t.rules...)
	rules = append(rules, &rc)
	sort.SliceStable(rules, func(i, j int) bool {
		if rules[i].Precedence != rules[j].Precedence {
			return rules[i].Precedence < rules[j].Precedence
		}
		return rules[i].ID < rules[j].ID
	})
	t.rules = rules
	return nil
}

// Remove uninstalls a rule by id.
func (t *Table) Remove(id uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; !ok {
		return ErrUnknownRule
	}
	delete(t.byID, id)
	rules := make([]*Rule, 0, len(t.rules)-1)
	for _, r := range t.rules {
		if r.ID != id {
			rules = append(rules, r)
		}
	}
	t.rules = rules
	return nil
}

// Len returns the installed rule count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rules)
}

// ClassifyFlow matches a parsed 5-tuple against the table (the fast path:
// the parse stage already extracted the flow, so the direct evaluation is
// used; the compiled BPF programs are behaviourally identical, which
// bpf's tests verify).
func (t *Table) ClassifyFlow(f pkt.Flow) Verdict {
	t.mu.RLock()
	rules := t.rules
	def := t.defaultVerdict
	t.mu.RUnlock()
	for _, r := range rules {
		if r.Filter.MatchFlow(f) {
			return verdictFor(r)
		}
	}
	return def
}

// RuleSet is an immutable point-in-time view of the table. The rule
// slice is copy-on-write (Install/Remove replace it wholesale), so a
// snapshot stays valid indefinitely and classifies without any locking —
// the staged data plane takes one Snapshot per batch instead of one
// RLock per packet.
type RuleSet struct {
	rules []*Rule
	def   Verdict
}

// Snapshot captures the current rules and default verdict.
func (t *Table) Snapshot() RuleSet {
	t.mu.RLock()
	rs := RuleSet{rules: t.rules, def: t.defaultVerdict}
	t.mu.RUnlock()
	return rs
}

// ClassifyFlow matches a parsed 5-tuple against the snapshot, lock-free.
func (rs RuleSet) ClassifyFlow(f pkt.Flow) Verdict {
	for _, r := range rs.rules {
		if r.Filter.MatchFlow(f) {
			return verdictFor(r)
		}
	}
	return rs.def
}

// ClassifyPacket matches raw inner-IPv4 packet bytes by running the
// compiled BPF programs — the general path for packets the parse stage
// could not pre-digest (unusual protocols, options).
func (t *Table) ClassifyPacket(data []byte) Verdict {
	t.mu.RLock()
	rules := t.rules
	def := t.defaultVerdict
	t.mu.RUnlock()
	for _, r := range rules {
		if r.prog.Run(data) != 0 {
			return verdictFor(r)
		}
	}
	return def
}

func verdictFor(r *Rule) Verdict {
	return Verdict{
		RuleID:         r.ID,
		Action:         r.Action,
		ChargingKey:    r.ChargingKey,
		DSCP:           r.DSCP,
		RateBitsPerSec: r.RateBitsPerSec,
		Matched:        true,
	}
}

// Rules returns a snapshot of installed rules in evaluation order, for
// diagnostics and the epcctl tool.
func (t *Table) Rules() []Rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Rule, len(t.rules))
	for i, r := range t.rules {
		out[i] = *r
	}
	return out
}
