// Package ring provides lock-free rings used as the I/O substrate between
// PEPC pipeline stages, standing in for DPDK rings/vports. The SPSC ring is
// the data-plane workhorse: single producer, single consumer, batched
// enqueue/dequeue with acquire/release atomics and no allocation. The MPSC
// ring carries control-plane updates (many control sources, one data
// thread).
package ring

import (
	"errors"
	"sync/atomic"
)

// ErrBadCapacity is returned when a requested capacity is not a power of
// two greater than one.
var ErrBadCapacity = errors.New("ring: capacity must be a power of two >= 2")

// SPSC is a bounded single-producer single-consumer queue of T. Exactly
// one goroutine may call the producer methods (Enqueue, EnqueueBatch) and
// exactly one may call the consumer methods (Dequeue, DequeueBatch, Len);
// the two may differ. Head and tail live on separate cache lines to avoid
// false sharing between the producer and consumer cores.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    [64]byte // padding: keep head and tail on separate cache lines
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
	_    [64]byte

	// Producer-local and consumer-local cached copies of the opposite
	// index reduce cross-core traffic: the producer only re-reads head
	// when the ring appears full, the consumer only re-reads tail when it
	// appears empty.
	cachedHead uint64
	_          [64]byte
	cachedTail uint64
}

// NewSPSC returns an SPSC ring holding up to capacity items. Capacity must
// be a power of two.
func NewSPSC[T any](capacity int) (*SPSC[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, ErrBadCapacity
	}
	return &SPSC[T]{buf: make([]T, capacity), mask: uint64(capacity - 1)}, nil
}

// MustSPSC is NewSPSC that panics on bad capacity; for package-internal
// construction with constant capacities.
func MustSPSC[T any](capacity int) *SPSC[T] {
	r, err := NewSPSC[T](capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Cap returns the ring capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued items. Exact only from the consumer
// side; advisory elsewhere.
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Enqueue adds one item, reporting false if the ring is full.
func (r *SPSC[T]) Enqueue(v T) bool {
	tail := r.tail.Load()
	if tail-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if tail-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	return true
}

// EnqueueBatch adds as many items from vs as fit, returning the count.
func (r *SPSC[T]) EnqueueBatch(vs []T) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.cachedHead)
	if free < uint64(len(vs)) {
		r.cachedHead = r.head.Load()
		free = uint64(len(r.buf)) - (tail - r.cachedHead)
	}
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask] = vs[i]
	}
	r.tail.Store(tail + n)
	return int(n)
}

// Dequeue removes one item, reporting false if the ring is empty.
func (r *SPSC[T]) Dequeue() (T, bool) {
	var zero T
	head := r.head.Load()
	if head == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if head == r.cachedTail {
			return zero, false
		}
	}
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero // release references for GC
	r.head.Store(head + 1)
	return v, true
}

// DequeueBatch fills vs with up to len(vs) items, returning the count.
func (r *SPSC[T]) DequeueBatch(vs []T) int {
	var zero T
	head := r.head.Load()
	avail := r.cachedTail - head
	if avail < uint64(len(vs)) {
		r.cachedTail = r.tail.Load()
		avail = r.cachedTail - head
	}
	n := uint64(len(vs))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		idx := (head + i) & r.mask
		vs[i] = r.buf[idx]
		r.buf[idx] = zero
	}
	r.head.Store(head + n)
	return int(n)
}

// MPSC is a bounded multi-producer single-consumer queue of T, used for
// control-plane update channels where several sources (node scheduler,
// proxy, control thread) feed one data thread. Producers contend on a CAS;
// the single consumer is wait-free against a committed slot.
type MPSC[T any] struct {
	buf  []slot[T]
	mask uint64

	// FaultHook, when non-nil, is consulted before each enqueue; returning
	// true makes the enqueue report a full ring, driving the producers'
	// backpressure paths (signaling sheds, tail drops) under fault
	// injection. Install it before concurrent use; nil costs one
	// predictable branch.
	FaultHook func() bool

	_    [64]byte
	head atomic.Uint64 // consumer position
	_    [64]byte
	tail atomic.Uint64 // next producer position
}

type slot[T any] struct {
	seq atomic.Uint64
	v   T
}

// NewMPSC returns an MPSC ring holding up to capacity items. Capacity must
// be a power of two.
func NewMPSC[T any](capacity int) (*MPSC[T], error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, ErrBadCapacity
	}
	q := &MPSC[T]{buf: make([]slot[T], capacity), mask: uint64(capacity - 1)}
	for i := range q.buf {
		q.buf[i].seq.Store(uint64(i))
	}
	return q, nil
}

// MustMPSC is NewMPSC that panics on bad capacity.
func MustMPSC[T any](capacity int) *MPSC[T] {
	q, err := NewMPSC[T](capacity)
	if err != nil {
		panic(err)
	}
	return q
}

// Cap returns the ring capacity.
func (q *MPSC[T]) Cap() int { return len(q.buf) }

// Len returns the approximate number of queued items.
func (q *MPSC[T]) Len() int {
	n := int(q.tail.Load()) - int(q.head.Load())
	if n < 0 {
		return 0
	}
	return n
}

// Enqueue adds one item, reporting false if the ring is full. Safe for
// concurrent producers (Vyukov bounded MPMC algorithm, producer side).
func (q *MPSC[T]) Enqueue(v T) bool {
	if q.FaultHook != nil && q.FaultHook() {
		return false // injected overflow
	}
	for {
		tail := q.tail.Load()
		s := &q.buf[tail&q.mask]
		seq := s.seq.Load()
		switch {
		case seq == tail:
			if q.tail.CompareAndSwap(tail, tail+1) {
				s.v = v
				s.seq.Store(tail + 1)
				return true
			}
		case seq < tail:
			return false // full
		}
		// Another producer claimed this slot; retry.
	}
}

// EnqueueBatch adds as many items from vs as fit, returning the count.
// Safe for concurrent producers; slots are claimed one CAS at a time
// (Vyukov producers cannot reserve ranges), so the batching here saves
// call overhead rather than synchronization.
func (q *MPSC[T]) EnqueueBatch(vs []T) int {
	for i, v := range vs {
		if !q.Enqueue(v) {
			return i
		}
	}
	return len(vs)
}

// Dequeue removes one item. Only one consumer goroutine may call it.
func (q *MPSC[T]) Dequeue() (T, bool) {
	var zero T
	head := q.head.Load()
	s := &q.buf[head&q.mask]
	if s.seq.Load() != head+1 {
		return zero, false // empty or producer not yet committed
	}
	v := s.v
	s.v = zero
	s.seq.Store(head + uint64(len(q.buf)))
	q.head.Store(head + 1)
	return v, true
}

// DequeueBatch fills vs with up to len(vs) items, returning the count.
func (q *MPSC[T]) DequeueBatch(vs []T) int {
	n := 0
	for n < len(vs) {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		vs[n] = v
		n++
	}
	return n
}
