package ring

import (
	"runtime"
	"sync"
	"testing"
)

func TestSPSCRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{0, 1, 3, 100} {
		if _, err := NewSPSC[int](c); err != ErrBadCapacity {
			t.Fatalf("capacity %d: want ErrBadCapacity, got %v", c, err)
		}
	}
	if _, err := NewSPSC[int](64); err != nil {
		t.Fatalf("capacity 64: %v", err)
	}
}

func TestSPSCFIFOOrder(t *testing.T) {
	r := MustSPSC[int](8)
	for i := 0; i < 8; i++ {
		if !r.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.Enqueue(99) {
		t.Fatal("enqueue into full ring succeeded")
	}
	for i := 0; i < 8; i++ {
		v, ok := r.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d,%v", i, v, ok)
		}
	}
	if _, ok := r.Dequeue(); ok {
		t.Fatal("dequeue from empty ring succeeded")
	}
}

func TestSPSCWrapAround(t *testing.T) {
	r := MustSPSC[int](4)
	next := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !r.Enqueue(next + i) {
				t.Fatalf("round %d enqueue failed", round)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Dequeue()
			if !ok || v != next+i {
				t.Fatalf("round %d: got %d,%v want %d", round, v, ok, next+i)
			}
		}
		next += 3
	}
}

func TestSPSCBatchOps(t *testing.T) {
	r := MustSPSC[int](8)
	in := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	n := r.EnqueueBatch(in)
	if n != 8 {
		t.Fatalf("EnqueueBatch = %d, want 8 (capacity)", n)
	}
	out := make([]int, 16)
	m := r.DequeueBatch(out)
	if m != 8 {
		t.Fatalf("DequeueBatch = %d, want 8", m)
	}
	for i := 0; i < 8; i++ {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], in[i])
		}
	}
	if m := r.DequeueBatch(out); m != 0 {
		t.Fatalf("DequeueBatch on empty = %d", m)
	}
}

func TestSPSCConcurrentStress(t *testing.T) {
	r := MustSPSC[uint64](1024)
	const total = 1 << 16
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.Enqueue(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var sum uint64
	go func() {
		defer wg.Done()
		expect := uint64(0)
		buf := make([]uint64, 64)
		for expect < total {
			n := r.DequeueBatch(buf)
			if n == 0 {
				runtime.Gosched()
			}
			for _, v := range buf[:n] {
				if v != expect {
					t.Errorf("out of order: got %d want %d", v, expect)
					return
				}
				sum += v
				expect++
			}
		}
	}()
	wg.Wait()
	want := uint64(total) * (total - 1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestSPSCReleasesReferences(t *testing.T) {
	r := MustSPSC[*int](4)
	x := new(int)
	r.Enqueue(x)
	r.Dequeue()
	// The slot behind head must no longer hold the pointer.
	if r.buf[0] != nil {
		t.Fatal("dequeued slot still references value")
	}
}

func TestMPSCBasic(t *testing.T) {
	q := MustMPSC[int](8)
	for i := 0; i < 8; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.Enqueue(99) {
		t.Fatal("enqueue into full MPSC succeeded")
	}
	for i := 0; i < 8; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d,%v", i, v, ok)
		}
	}
}

func TestMPSCManyProducers(t *testing.T) {
	q := MustMPSC[int](1 << 12)
	const producers = 8
	const perProducer = 10000
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for !q.Enqueue(p*perProducer + i) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	seen := make(map[int]bool, producers*perProducer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(seen) < producers*perProducer {
			v, ok := q.Dequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			{
				if seen[v] {
					t.Errorf("duplicate value %d", v)
					return
				}
				seen[v] = true
			}
		}
	}()
	wg.Wait()
	<-done
	if len(seen) != producers*perProducer {
		t.Fatalf("received %d values, want %d", len(seen), producers*perProducer)
	}
}

func TestMPSCPerProducerOrder(t *testing.T) {
	// Values from a single producer must be consumed in that producer's
	// program order even with other producers interleaving.
	q := MustMPSC[[2]int](1 << 10)
	const producers, per = 4, 5000
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for !q.Enqueue([2]int{p, i}) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	last := make([]int, producers)
	for i := range last {
		last[i] = -1
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < producers*per {
			v, ok := q.Dequeue()
			if !ok {
				runtime.Gosched()
				continue
			}
			{
				if v[1] <= last[v[0]] {
					t.Errorf("producer %d out of order: %d after %d", v[0], v[1], last[v[0]])
					return
				}
				last[v[0]] = v[1]
				got++
			}
		}
	}()
	wg.Wait()
	<-done
}

func BenchmarkSPSCEnqueueDequeue(b *testing.B) {
	r := MustSPSC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(i)
		r.Dequeue()
	}
}

func BenchmarkSPSCBatch32(b *testing.B) {
	r := MustSPSC[int](1024)
	in := make([]int, 32)
	out := make([]int, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.EnqueueBatch(in)
		r.DequeueBatch(out)
	}
}

// A FaultHook that reports overflow must make enqueues fail without
// corrupting the ring: items accepted before and after stay FIFO.
func TestMPSCFaultHook(t *testing.T) {
	q := MustMPSC[int](8)
	inject := false
	q.FaultHook = func() bool { return inject }
	if !q.Enqueue(1) {
		t.Fatal("enqueue failed with hook disarmed")
	}
	inject = true
	if q.Enqueue(2) {
		t.Fatal("enqueue succeeded under injected overflow")
	}
	inject = false
	if !q.Enqueue(3) {
		t.Fatal("enqueue failed after hook disarmed")
	}
	if n := q.EnqueueBatch([]int{4, 5}); n != 2 {
		t.Fatalf("EnqueueBatch = %d, want 2", n)
	}
	inject = true
	if n := q.EnqueueBatch([]int{6}); n != 0 {
		t.Fatalf("EnqueueBatch under injection = %d, want 0", n)
	}
	inject = false
	want := []int{1, 3, 4, 5}
	for _, w := range want {
		v, ok := q.Dequeue()
		if !ok || v != w {
			t.Fatalf("dequeue = %d,%v want %d", v, ok, w)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("ring not empty")
	}
}
