package sim

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestNowMonotonic(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	b := Now()
	if b <= a {
		t.Fatalf("clock not monotonic: %d then %d", a, b)
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 16; i++ {
		h.Record(i)
	}
	if h.Count() != 16 || h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	// Median of 0..15 with ceil semantics: the 8th sample is value 7.
	if got := h.Percentile(50); got != 7 {
		t.Fatalf("p50 = %d", got)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(3))
	// Uniform 0..100µs: p50 ≈ 50µs within bucket error (6.25%).
	for i := 0; i < 100000; i++ {
		h.Record(rng.Int63n(100_000))
	}
	p50 := float64(h.Percentile(50))
	if p50 < 45_000 || p50 > 55_000 {
		t.Fatalf("p50 = %.0f, want ~50000", p50)
	}
	p99 := float64(h.Percentile(99))
	if p99 < 92_000 || p99 > 105_000 {
		t.Fatalf("p99 = %.0f, want ~99000", p99)
	}
	mean := h.Mean()
	if mean < 45_000 || mean > 55_000 {
		t.Fatalf("mean = %.0f", mean)
	}
}

func TestHistogramBucketInverse(t *testing.T) {
	// bucketLow(bucketOf(v)) <= v for all v, and relative error < 1/16.
	for _, v := range []uint64{1, 15, 16, 17, 100, 1000, 123456, 1 << 30, 1 << 40} {
		b := bucketOf(v)
		low := bucketLow(b)
		if low > v {
			t.Fatalf("bucketLow(%d)=%d > v=%d", b, low, v)
		}
		if v > 16 && float64(v-low)/float64(v) > 1.0/16 {
			t.Fatalf("bucket error too large for %d: low=%d", v, low)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(100)
	b.Record(1000)
	b.Record(10)
	a.Merge(b)
	if a.Count() != 3 || a.Min() != 10 || a.Max() != 1000 {
		t.Fatalf("merged: n=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
}

func TestHistogramResetAndNegative(t *testing.T) {
	h := NewHistogram()
	h.Record(-5) // clamped to 0
	if h.Max() != 0 {
		t.Fatalf("negative clamp: %d", h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Percentile(50) != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogramSummaryRenders(t *testing.T) {
	h := NewHistogram()
	h.Record(1500)
	if !strings.Contains(h.Summary(), "n=1") {
		t.Fatalf("summary: %s", h.Summary())
	}
}

func TestPacerRate(t *testing.T) {
	p := NewPacer(1000, 200) // 1000/s, burst 200
	now := Now()
	// Drain the initial burst.
	if got := p.Take(now, 1000); got != 200 {
		t.Fatalf("initial burst grant = %d", got)
	}
	// After 100ms, ~100 more credits.
	got := p.Take(now+100_000_000, 1000)
	if got < 95 || got > 105 {
		t.Fatalf("grant after 100ms = %d, want ~100", got)
	}
	// Immediately again: nothing.
	if got := p.Take(now+100_000_000, 10); got != 0 {
		t.Fatalf("immediate regrant = %d", got)
	}
	// Credit never exceeds burst even after a long idle.
	if got := p.Take(now+100_000_000_000, 100000); got != 200 {
		t.Fatalf("post-idle grant = %d, want burst 200", got)
	}
}

func TestPacerUnpaced(t *testing.T) {
	p := NewPacer(0, 1)
	if got := p.Take(Now(), 12345); got != 12345 {
		t.Fatalf("unpaced grant = %d", got)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(10)
	m.Add(5)
	if m.Count() != 15 {
		t.Fatalf("count = %d", m.Count())
	}
	time.Sleep(2 * time.Millisecond)
	if m.Rate() <= 0 {
		t.Fatal("rate not positive")
	}
	if m.Elapsed() <= 0 {
		t.Fatal("elapsed not positive")
	}
}

func TestTableRendersAlignedSeries(t *testing.T) {
	out := Table("users", "Mpps",
		Series{Name: "PEPC", Points: []Point{{X: 1e6, Y: 5.1}, {X: 3e6, Y: 4.0}}},
		Series{Name: "Industrial#1", Points: []Point{{X: 1e6, Y: 0.1}}},
	)
	if !strings.Contains(out, "PEPC") || !strings.Contains(out, "Industrial#1") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "1M") || !strings.Contains(out, "3M") {
		t.Fatalf("missing x labels:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing hole marker:\n%s", out)
	}
}

func TestFormatQty(t *testing.T) {
	cases := map[float64]string{
		500:    "500",
		1500:   "1.5K",
		2e6:    "2M",
		3.25e9: "3.25B",
	}
	for in, want := range cases {
		if got := FormatQty(in); got != want {
			t.Fatalf("FormatQty(%g) = %q, want %q", in, got, want)
		}
	}
}
