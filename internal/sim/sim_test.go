package sim

import (
	"strings"
	"testing"
	"time"
)

func TestNowMonotonic(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	b := Now()
	if b <= a {
		t.Fatalf("clock not monotonic: %d then %d", a, b)
	}
}

func TestPacerRate(t *testing.T) {
	p := NewPacer(1000, 200) // 1000/s, burst 200
	now := Now()
	// Drain the initial burst.
	if got := p.Take(now, 1000); got != 200 {
		t.Fatalf("initial burst grant = %d", got)
	}
	// After 100ms, ~100 more credits.
	got := p.Take(now+100_000_000, 1000)
	if got < 95 || got > 105 {
		t.Fatalf("grant after 100ms = %d, want ~100", got)
	}
	// Immediately again: nothing.
	if got := p.Take(now+100_000_000, 10); got != 0 {
		t.Fatalf("immediate regrant = %d", got)
	}
	// Credit never exceeds burst even after a long idle.
	if got := p.Take(now+100_000_000_000, 100000); got != 200 {
		t.Fatalf("post-idle grant = %d, want burst 200", got)
	}
}

func TestPacerUnpaced(t *testing.T) {
	p := NewPacer(0, 1)
	if got := p.Take(Now(), 12345); got != 12345 {
		t.Fatalf("unpaced grant = %d", got)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(10)
	m.Add(5)
	if m.Count() != 15 {
		t.Fatalf("count = %d", m.Count())
	}
	time.Sleep(2 * time.Millisecond)
	if m.Rate() <= 0 {
		t.Fatal("rate not positive")
	}
	if m.Elapsed() <= 0 {
		t.Fatal("elapsed not positive")
	}
}

func TestTableRendersAlignedSeries(t *testing.T) {
	out := Table("users", "Mpps",
		Series{Name: "PEPC", Points: []Point{{X: 1e6, Y: 5.1}, {X: 3e6, Y: 4.0}}},
		Series{Name: "Industrial#1", Points: []Point{{X: 1e6, Y: 0.1}}},
	)
	if !strings.Contains(out, "PEPC") || !strings.Contains(out, "Industrial#1") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "1M") || !strings.Contains(out, "3M") {
		t.Fatalf("missing x labels:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing hole marker:\n%s", out)
	}
}

func TestFormatQty(t *testing.T) {
	cases := map[float64]string{
		500:    "500",
		1500:   "1.5K",
		2e6:    "2M",
		3.25e9: "3.25B",
	}
	for in, want := range cases {
		if got := FormatQty(in); got != want {
			t.Fatalf("FormatQty(%g) = %q, want %q", in, got, want)
		}
	}
}
