// Package sim provides the measurement substrate the experiment harness
// uses: a monotonic nanosecond clock, an HDR-style log-bucketed latency
// histogram, a token-bucket event pacer for offered-load control, and a
// throughput meter.
package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

var epoch = time.Now()

// Now returns monotonic nanoseconds since process start. All latency
// measurement and token buckets use this scale.
func Now() int64 { return int64(time.Since(epoch)) }

// Histogram records durations into logarithmic buckets: 64 major octaves
// × 16 linear sub-buckets, covering 1ns to ~500s with ≤6.25% relative
// error — the HDR-histogram trade-off without the dependency. Not
// internally synchronized: one recorder per thread, merge for reporting.
type Histogram struct {
	counts [64 * 16]uint64
	n      uint64
	sum    uint64
	max    uint64
	min    uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxUint64}
}

// Record adds one duration in nanoseconds.
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

func bucketOf(v uint64) int {
	if v < 16 {
		return int(v)
	}
	// Major = position of the highest set bit; minor = next 4 bits.
	major := 63 - leadingZeros(v)
	minor := (v >> (uint(major) - 4)) & 0xf
	return int(major-3)*16 + int(minor)
}

// bucketLow returns the smallest value mapping to bucket i (inverse of
// bucketOf for reporting).
func bucketLow(i int) uint64 {
	if i < 16 {
		return uint64(i)
	}
	major := uint(i/16 + 3)
	minor := uint64(i % 16)
	return (1 << major) | minor<<(major-4)
}

func leadingZeros(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the average in nanoseconds.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest recorded value.
func (h *Histogram) Max() uint64 { return h.max }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Percentile returns the value at or below which p percent (0-100) of
// samples fall, to bucket resolution.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if p >= 100 {
		return h.max
	}
	target := uint64(math.Ceil(float64(h.n) * p / 100))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return bucketLow(i)
		}
	}
	return h.max
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	if other.n > 0 && other.min < h.min {
		h.min = other.min
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	*h = Histogram{min: math.MaxUint64}
}

// Summary renders p50/p90/p99/p99.9/max in microseconds.
func (h *Histogram) Summary() string {
	us := func(v uint64) float64 { return float64(v) / 1e3 }
	return fmt.Sprintf("n=%d p50=%.1fµs p90=%.1fµs p99=%.1fµs p99.9=%.1fµs max=%.1fµs",
		h.n, us(h.Percentile(50)), us(h.Percentile(90)), us(h.Percentile(99)),
		us(h.Percentile(99.9)), us(h.max))
}

// Pacer releases events at a fixed rate against the sim clock: Take(n)
// reports how many of n requested events may fire now. Single-threaded.
type Pacer struct {
	ratePerSec float64
	credit     float64
	burst      float64
	last       int64
}

// NewPacer returns a pacer for rate events/second with the given burst.
func NewPacer(ratePerSec float64, burst int) *Pacer {
	if burst <= 0 {
		burst = 1
	}
	return &Pacer{ratePerSec: ratePerSec, burst: float64(burst), credit: float64(burst), last: Now()}
}

// Take requests up to n event credits at time now, returning the granted
// count.
func (p *Pacer) Take(now int64, n int) int {
	if p.ratePerSec <= 0 {
		return n // unpaced
	}
	dt := float64(now-p.last) / 1e9
	if dt > 0 {
		p.credit += dt * p.ratePerSec
		if p.credit > p.burst {
			p.credit = p.burst
		}
		p.last = now
	}
	grant := int(p.credit)
	if grant > n {
		grant = n
	}
	if grant > 0 {
		p.credit -= float64(grant)
	}
	return grant
}

// Meter accumulates event counts over a measured interval and reports
// rates.
type Meter struct {
	start int64
	count uint64
}

// NewMeter starts a meter at the current time.
func NewMeter() *Meter { return &Meter{start: Now()} }

// Add records n events.
func (m *Meter) Add(n uint64) { m.count += n }

// Rate returns events/second since start.
func (m *Meter) Rate() float64 {
	dt := float64(Now()-m.start) / 1e9
	if dt <= 0 {
		return 0
	}
	return float64(m.count) / dt
}

// Count returns total events.
func (m *Meter) Count() uint64 { return m.count }

// Elapsed returns seconds since start.
func (m *Meter) Elapsed() float64 { return float64(Now()-m.start) / 1e9 }

// Series is a labelled result column for figure output: a sequence of
// (x, y) points with a name, rendered as aligned text by Table.
type Series struct {
	Name   string
	Points []Point
}

// Point is one measurement.
type Point struct {
	X float64
	Y float64
}

// Table renders series against a shared X axis as an aligned text table,
// the pepcbench output format.
func Table(xLabel, yLabel string, series ...Series) string {
	// Collect the union of X values in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %18s", s.Name)
	}
	fmt.Fprintf(&b, "   (%s)\n", yLabel)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14s", FormatQty(x))
		for _, s := range series {
			y, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, " %18.3f", y)
			} else {
				fmt.Fprintf(&b, " %18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// FormatPoints renders a point list as "x=y x=y ..." for notes that
// carry a secondary series (e.g. a Gbps view of an Mpps sweep).
func FormatPoints(pts []Point) string {
	var b strings.Builder
	for i, p := range pts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3f", FormatQty(p.X), p.Y)
	}
	return b.String()
}

// FormatQty renders 1500000 as "1.5M" etc. for axis labels.
func FormatQty(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gK", v/1e3)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
