// Package sim provides the measurement substrate the experiment harness
// uses: a monotonic nanosecond clock, a token-bucket event pacer for
// offered-load control, and a throughput meter. (Latency histograms
// live in internal/hdr, shared with the fast path.)
package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

var epoch = time.Now()

// Now returns monotonic nanoseconds since process start. All latency
// measurement and token buckets use this scale.
func Now() int64 { return int64(time.Since(epoch)) }

// Pacer releases events at a fixed rate against the sim clock: Take(n)
// reports how many of n requested events may fire now. Single-threaded.
type Pacer struct {
	ratePerSec float64
	credit     float64
	burst      float64
	last       int64
}

// NewPacer returns a pacer for rate events/second with the given burst.
func NewPacer(ratePerSec float64, burst int) *Pacer {
	if burst <= 0 {
		burst = 1
	}
	return &Pacer{ratePerSec: ratePerSec, burst: float64(burst), credit: float64(burst), last: Now()}
}

// Take requests up to n event credits at time now, returning the granted
// count.
func (p *Pacer) Take(now int64, n int) int {
	if p.ratePerSec <= 0 {
		return n // unpaced
	}
	dt := float64(now-p.last) / 1e9
	if dt > 0 {
		p.credit += dt * p.ratePerSec
		if p.credit > p.burst {
			p.credit = p.burst
		}
		p.last = now
	}
	grant := int(p.credit)
	if grant > n {
		grant = n
	}
	if grant > 0 {
		p.credit -= float64(grant)
	}
	return grant
}

// Meter accumulates event counts over a measured interval and reports
// rates.
type Meter struct {
	start int64
	count uint64
}

// NewMeter starts a meter at the current time.
func NewMeter() *Meter { return &Meter{start: Now()} }

// Add records n events.
func (m *Meter) Add(n uint64) { m.count += n }

// Rate returns events/second since start.
func (m *Meter) Rate() float64 {
	dt := float64(Now()-m.start) / 1e9
	if dt <= 0 {
		return 0
	}
	return float64(m.count) / dt
}

// Count returns total events.
func (m *Meter) Count() uint64 { return m.count }

// Elapsed returns seconds since start.
func (m *Meter) Elapsed() float64 { return float64(Now()-m.start) / 1e9 }

// Series is a labelled result column for figure output: a sequence of
// (x, y) points with a name, rendered as aligned text by Table.
// Direction declares which way is better for gating: "" or "up" means
// higher values win (throughput), "down" means lower values win
// (latency) — benchdiff flips its ratchet and regression test
// accordingly.
type Series struct {
	Name      string
	Points    []Point
	Direction string `json:",omitempty"`
}

// Point is one measurement.
type Point struct {
	X float64
	Y float64
}

// Table renders series against a shared X axis as an aligned text table,
// the pepcbench output format.
func Table(xLabel, yLabel string, series ...Series) string {
	// Collect the union of X values in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %18s", s.Name)
	}
	fmt.Fprintf(&b, "   (%s)\n", yLabel)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14s", FormatQty(x))
		for _, s := range series {
			y, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, " %18.3f", y)
			} else {
				fmt.Fprintf(&b, " %18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// FormatPoints renders a point list as "x=y x=y ..." for notes that
// carry a secondary series (e.g. a Gbps view of an Mpps sweep).
func FormatPoints(pts []Point) string {
	var b strings.Builder
	for i, p := range pts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3f", FormatQty(p.X), p.Y)
	}
	return b.String()
}

// FormatQty renders 1500000 as "1.5M" etc. for axis labels.
func FormatQty(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gK", v/1e3)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
