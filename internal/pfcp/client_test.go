package pfcp

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// fakeUPF is a scriptable PFCP responder on a loopback UDP socket. Its
// behavior function sees every datagram and decides what (if anything)
// goes back.
type fakeUPF struct {
	pc   *net.UDPConn
	done chan struct{}
}

// newFakeUPF starts a responder; behave returns the datagrams to send
// back for each request (nil = stay silent).
func newFakeUPF(t *testing.T, behave func(m Message) []Message) *fakeUPF {
	t.Helper()
	pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	f := &fakeUPF{pc: pc, done: make(chan struct{})}
	go func() {
		defer close(f.done)
		buf := make([]byte, 64*1024)
		for {
			n, raddr, err := pc.ReadFromUDP(buf)
			if err != nil {
				return
			}
			m, err := Unmarshal(buf[:n])
			if err != nil {
				continue
			}
			for _, r := range behave(m) {
				pc.WriteToUDP(r.Marshal(nil), raddr)
			}
		}
	}()
	t.Cleanup(func() { pc.Close(); <-f.done })
	return f
}

func (f *fakeUPF) addr() string { return f.pc.LocalAddr().String() }

// accept answers any request affirmatively — the baseline behavior.
func accept(m Message) []Message {
	switch m.Type {
	case MsgHeartbeatRequest:
		return []Message{BuildHeartbeatResponse(m.Seq, 1)}
	case MsgAssociationSetupRequest:
		return []Message{BuildAssociationSetupResponse(m.Seq, 1, CauseAccepted, 1)}
	case MsgSessionEstablishmentRequest:
		return []Message{BuildSessionResponse(MsgSessionEstablishmentResponse, m.Seq, 0, CauseAccepted, 0x99, 1)}
	case MsgSessionModificationRequest:
		return []Message{BuildSessionResponse(MsgSessionModificationResponse, m.Seq, 0, CauseAccepted, 0, 0)}
	case MsgSessionDeletionRequest:
		return []Message{BuildSessionResponse(MsgSessionDeletionResponse, m.Seq, 0, CauseAccepted, 0, 0)}
	}
	return nil
}

func dialFake(t *testing.T, f *fakeUPF) *Client {
	t.Helper()
	c, err := Dial(f.addr(), 0x0AFF_0001)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetRetransmit(50*time.Millisecond, 3)
	return c
}

// TestClientSessionCycle runs the full procedure set against an
// always-accepting responder.
func TestClientSessionCycle(t *testing.T) {
	f := newFakeUPF(t, accept)
	c := dialFake(t, f)

	if err := c.Associate(); err != nil {
		t.Fatalf("associate: %v", err)
	}
	if err := c.Heartbeat(); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	seid, err := c.Establish(&SessionRequest{
		CreatePDRs: []PDR{{ID: 1, SourceInterface: InterfaceAccess, TEID: 5, TEIDAddr: 1}},
	})
	if err != nil || seid != 0x99 {
		t.Fatalf("establish: seid %#x err %v", seid, err)
	}
	if err := c.Modify(&SessionRequest{SEID: seid}); err != nil {
		t.Fatalf("modify: %v", err)
	}
	if err := c.Delete(seid); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if c.Transactions != 5 || c.Retransmits != 0 {
		t.Fatalf("counters: %d transactions, %d retransmits", c.Transactions, c.Retransmits)
	}
}

// TestClientRetransmit drops the first copy of every request: each
// procedure succeeds on the retransmission and the counter shows it.
func TestClientRetransmit(t *testing.T) {
	var n atomic.Uint64
	f := newFakeUPF(t, func(m Message) []Message {
		if n.Add(1)%2 == 1 {
			return nil // lose the first copy
		}
		return accept(m)
	})
	c := dialFake(t, f)

	if err := c.Associate(); err != nil {
		t.Fatalf("associate through loss: %v", err)
	}
	if err := c.Heartbeat(); err != nil {
		t.Fatalf("heartbeat through loss: %v", err)
	}
	if c.Retransmits != 2 {
		t.Fatalf("retransmits = %d, want 2", c.Retransmits)
	}
}

// TestClientTimeout verifies a silent peer is declared dead after the
// retry budget, and quickly.
func TestClientTimeout(t *testing.T) {
	f := newFakeUPF(t, func(Message) []Message { return nil })
	c := dialFake(t, f)
	c.SetRetransmit(20*time.Millisecond, 2)

	start := time.Now()
	err := c.Heartbeat()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("silent peer: %v", err)
	}
	// 1 try + 2 retries at 20ms each: well under a second.
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("timeout took %v", el)
	}
	if c.Retransmits != 2 {
		t.Fatalf("retransmits = %d, want 2", c.Retransmits)
	}
}

// TestClientRejectedCause maps a non-accepted cause to ErrRejected.
func TestClientRejectedCause(t *testing.T) {
	f := newFakeUPF(t, func(m Message) []Message {
		if m.Type == MsgSessionEstablishmentRequest {
			return []Message{BuildSessionResponse(MsgSessionEstablishmentResponse, m.Seq, 0, CauseNoEstablishedAssociation, 0, 0)}
		}
		return accept(m)
	})
	c := dialFake(t, f)

	_, err := c.Establish(&SessionRequest{})
	var rej *ErrRejected
	if !errors.As(err, &rej) || rej.Cause != CauseNoEstablishedAssociation {
		t.Fatalf("establish: %v", err)
	}
}

// TestClientDiscardsStale feeds the client a stale answer (wrong seq)
// and garbage before the real response; the transaction still pairs.
func TestClientDiscardsStale(t *testing.T) {
	f := newFakeUPF(t, func(m Message) []Message {
		if m.Type == MsgHeartbeatRequest {
			return []Message{
				BuildHeartbeatResponse(m.Seq+7, 1),             // stale sequence
				{Type: MsgSessionDeletionResponse, Seq: m.Seq}, // wrong type
				BuildHeartbeatResponse(m.Seq, 1),               // the real one
			}
		}
		return accept(m)
	})
	c := dialFake(t, f)
	if err := c.Heartbeat(); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if c.Retransmits != 0 {
		t.Fatalf("stale traffic caused %d retransmits", c.Retransmits)
	}
}

// TestClientAnswersPeerHeartbeat verifies a heartbeat request from the
// UPF arriving mid-transaction is answered inline and does not kill the
// transaction.
func TestClientAnswersPeerHeartbeat(t *testing.T) {
	gotHB := make(chan struct{}, 1)
	f := newFakeUPF(t, func(m Message) []Message {
		switch m.Type {
		case MsgAssociationSetupRequest:
			return []Message{
				BuildHeartbeatRequest(42, 1), // probe the SMF first
				BuildAssociationSetupResponse(m.Seq, 1, CauseAccepted, 1),
			}
		case MsgHeartbeatResponse:
			select {
			case gotHB <- struct{}{}:
			default:
			}
		}
		return nil
	})
	c := dialFake(t, f)
	if err := c.Associate(); err != nil {
		t.Fatalf("associate with interleaved heartbeat: %v", err)
	}
	select {
	case <-gotHB:
	case <-time.After(time.Second):
		t.Fatal("client never answered the peer's heartbeat request")
	}
}

// TestClientKeepAlive runs the keepalive loop against a live responder,
// then kills the responder and expects the loop to report the death.
func TestClientKeepAlive(t *testing.T) {
	var beats atomic.Uint64
	f := newFakeUPF(t, func(m Message) []Message {
		if m.Type == MsgHeartbeatRequest {
			beats.Add(1)
		}
		return accept(m)
	})
	c := dialFake(t, f)
	c.SetRetransmit(20*time.Millisecond, 1)

	stop := make(chan struct{})
	errCh := make(chan error, 1)
	go func() { errCh <- c.KeepAlive(stop, 10*time.Millisecond) }()

	deadline := time.Now().Add(2 * time.Second)
	for beats.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if beats.Load() < 3 {
		t.Fatal("keepalive never beat")
	}

	// Silence the UPF: the next probe exhausts its budget and the loop
	// exits with the probe error.
	f.pc.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrTimeout) && err == nil {
			t.Fatalf("keepalive exit: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("keepalive did not notice the dead peer")
	}
	close(stop)
}
