package pfcp

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the semantic layer over the TLV codec: PDR/FAR/QER rule
// structs encoded to (and decoded from) grouped IEs, whole session
// messages, and the SDF flow-description grammar. It is deliberately the
// minimal UPF subset — one F-TEID/UE-IP PDI per PDR, GTP-U/UDP/IPv4
// outer headers, MBR-only QERs — matching what a PEPC slice enforces.

// PDR is a Packet Detection Rule: which packets belong to the session,
// and which FAR/QER apply to them. An Access-side PDR detects uplink by
// local F-TEID (and usually requests outer header removal); a Core-side
// PDR detects downlink by UE IP address.
type PDR struct {
	ID              uint16
	Precedence      uint32
	SourceInterface uint8

	// PDI: TEID/TEIDAddr for Access (uplink tunnel endpoint), UEAddr
	// for Core, SDF an optional flow-description filter.
	TEID     uint32
	TEIDAddr uint32
	UEAddr   uint32
	SDF      string

	OuterHeaderRemoval bool
	FARID              uint32
	QERID              uint32
}

// FAR is a Forwarding Action Rule: drop or forward, and for forwarded
// downlink traffic the GTP-U outer header to create toward the RAN.
type FAR struct {
	ID                   uint32
	Drop                 bool
	DestinationInterface uint8

	// OuterHeaderCreation, when set, wraps matching packets in a
	// GTP-U/UDP/IPv4 header toward TEID@Addr (the eNodeB/gNB endpoint).
	OuterHeaderCreation bool
	TEID                uint32
	Addr                uint32
}

// QER is a QoS Enforcement Rule: per-direction gates and maximum bit
// rates (kbps, per 29.244).
type QER struct {
	ID              uint32
	GateClosedUL    bool
	GateClosedDL    bool
	MBRUplinkKbps   uint64
	MBRDownlinkKbps uint64
}

// Encode renders the PDR as a Create PDR grouped IE.
func (p *PDR) Encode() IE {
	pdi := []IE{NewIEUint8(IESourceInterface, p.SourceInterface)}
	if p.TEID != 0 {
		pdi = append(pdi, NewFTEID(p.TEID, p.TEIDAddr))
	}
	if p.UEAddr != 0 {
		pdi = append(pdi, NewUEIPAddress(p.UEAddr))
	}
	if p.SDF != "" {
		pdi = append(pdi, NewSDFFilter(p.SDF))
	}
	sub := []IE{
		NewIEUint16(IEPDRID, p.ID),
		NewIEUint32(IEPrecedence, p.Precedence),
		NewGrouped(IEPDI, pdi...),
	}
	if p.OuterHeaderRemoval {
		sub = append(sub, NewIEUint8(IEOuterHeaderRemoval, 0)) // 0 = GTP-U/UDP/IPv4
	}
	if p.FARID != 0 {
		sub = append(sub, NewIEUint32(IEFARID, p.FARID))
	}
	if p.QERID != 0 {
		sub = append(sub, NewIEUint32(IEQERID, p.QERID))
	}
	return NewGrouped(IECreatePDR, sub...)
}

// DecodePDR parses a Create PDR grouped IE.
func DecodePDR(ie *IE) (PDR, error) {
	var p PDR
	sub, err := ParseIEs(ie.Value)
	if err != nil {
		return p, err
	}
	id := FindIE(sub, IEPDRID)
	if id == nil {
		return p, ErrMissingIE
	}
	if p.ID, err = id.uint16(); err != nil {
		return p, err
	}
	for i := range sub {
		s := &sub[i]
		switch s.Type {
		case IEPrecedence:
			if p.Precedence, err = s.uint32(); err != nil {
				return p, err
			}
		case IEPDI:
			pdi, err := ParseIEs(s.Value)
			if err != nil {
				return p, err
			}
			for j := range pdi {
				d := &pdi[j]
				switch d.Type {
				case IESourceInterface:
					if p.SourceInterface, err = d.uint8(); err != nil {
						return p, err
					}
				case IEFTEID:
					if p.TEID, p.TEIDAddr, err = ParseFTEID(d); err != nil {
						return p, err
					}
				case IEUEIPAddress:
					if p.UEAddr, err = ParseUEIPAddress(d); err != nil {
						return p, err
					}
				case IESDFFilter:
					if p.SDF, err = ParseSDFFilter(d); err != nil {
						return p, err
					}
				}
			}
		case IEOuterHeaderRemoval:
			p.OuterHeaderRemoval = true
		case IEFARID:
			if p.FARID, err = s.uint32(); err != nil {
				return p, err
			}
		case IEQERID:
			if p.QERID, err = s.uint32(); err != nil {
				return p, err
			}
		}
	}
	return p, nil
}

// Encode renders the FAR as a Create FAR (or, with update, Update FAR)
// grouped IE.
func (f *FAR) Encode(update bool) IE {
	action := ApplyActionForward
	if f.Drop {
		action = ApplyActionDrop
	}
	fpType, farType := IEForwardingParams, IECreateFAR
	if update {
		fpType, farType = IEUpdateForwardingParams, IEUpdateFAR
	}
	fp := []IE{NewIEUint8(IEDestinationInterface, f.DestinationInterface)}
	if f.OuterHeaderCreation {
		fp = append(fp, NewOuterHeaderCreation(f.TEID, f.Addr))
	}
	return NewGrouped(farType,
		NewIEUint32(IEFARID, f.ID),
		NewIEUint8(IEApplyAction, action),
		NewGrouped(fpType, fp...),
	)
}

// DecodeFAR parses a Create/Update FAR grouped IE.
func DecodeFAR(ie *IE) (FAR, error) {
	var f FAR
	sub, err := ParseIEs(ie.Value)
	if err != nil {
		return f, err
	}
	id := FindIE(sub, IEFARID)
	if id == nil {
		return f, ErrMissingIE
	}
	if f.ID, err = id.uint32(); err != nil {
		return f, err
	}
	for i := range sub {
		s := &sub[i]
		switch s.Type {
		case IEApplyAction:
			a, err := s.uint8()
			if err != nil {
				return f, err
			}
			f.Drop = a&ApplyActionDrop != 0
		case IEForwardingParams, IEUpdateForwardingParams:
			fp, err := ParseIEs(s.Value)
			if err != nil {
				return f, err
			}
			for j := range fp {
				d := &fp[j]
				switch d.Type {
				case IEDestinationInterface:
					if f.DestinationInterface, err = d.uint8(); err != nil {
						return f, err
					}
				case IEOuterHeaderCreation:
					if f.TEID, f.Addr, err = ParseOuterHeaderCreation(d); err != nil {
						return f, err
					}
					f.OuterHeaderCreation = true
				}
			}
		}
	}
	return f, nil
}

// Encode renders the QER as a Create QER (or Update QER) grouped IE.
func (q *QER) Encode(update bool) IE {
	qerType := IECreateQER
	if update {
		qerType = IEUpdateQER
	}
	gate := uint8(0)
	if q.GateClosedUL {
		gate |= GateClosed << 2
	}
	if q.GateClosedDL {
		gate |= GateClosed
	}
	sub := []IE{
		NewIEUint32(IEQERID, q.ID),
		NewIEUint8(IEGateStatus, gate),
	}
	if q.MBRUplinkKbps != 0 || q.MBRDownlinkKbps != 0 {
		sub = append(sub, NewMBR(q.MBRUplinkKbps, q.MBRDownlinkKbps))
	}
	return NewGrouped(qerType, sub...)
}

// DecodeQER parses a Create/Update QER grouped IE.
func DecodeQER(ie *IE) (QER, error) {
	var q QER
	sub, err := ParseIEs(ie.Value)
	if err != nil {
		return q, err
	}
	id := FindIE(sub, IEQERID)
	if id == nil {
		return q, ErrMissingIE
	}
	if q.ID, err = id.uint32(); err != nil {
		return q, err
	}
	for i := range sub {
		s := &sub[i]
		switch s.Type {
		case IEGateStatus:
			g, err := s.uint8()
			if err != nil {
				return q, err
			}
			q.GateClosedUL = g>>2&0x3 != GateOpen
			q.GateClosedDL = g&0x3 != GateOpen
		case IEMBR:
			if q.MBRUplinkKbps, q.MBRDownlinkKbps, err = ParseMBR(s); err != nil {
				return q, err
			}
		}
	}
	return q, nil
}

// SessionRequest is a decoded session establishment or modification
// request (and the deletion request, which carries no rules).
type SessionRequest struct {
	// SEID is the header SEID: zero on establishment (the UPF has not
	// yet assigned one), the UPF-local session id afterwards.
	SEID uint64
	// FSEID/FSEIDAddr identify the SMF's side of the session
	// (establishment only).
	FSEID     uint64
	FSEIDAddr uint32
	NodeID    uint32

	CreatePDRs []PDR
	CreateFARs []FAR
	CreateQERs []QER
	UpdateFARs []FAR
	UpdateQERs []QER
}

// BuildSessionEstablishment encodes an establishment request.
func BuildSessionEstablishment(seq uint32, req *SessionRequest) Message {
	m := Message{Type: MsgSessionEstablishmentRequest, SEID: 0, Seq: seq}
	m.IEs = append(m.IEs, NewNodeID(req.NodeID), NewFSEID(req.FSEID, req.FSEIDAddr))
	m.IEs = appendRules(m.IEs, req)
	return m
}

// BuildSessionModification encodes a modification request against the
// UPF-local session req.SEID.
func BuildSessionModification(seq uint32, req *SessionRequest) Message {
	m := Message{Type: MsgSessionModificationRequest, SEID: req.SEID, Seq: seq}
	m.IEs = appendRules(m.IEs, req)
	return m
}

// BuildSessionDeletion encodes a deletion request for the UPF-local
// session seid.
func BuildSessionDeletion(seq uint32, seid uint64) Message {
	return Message{Type: MsgSessionDeletionRequest, SEID: seid, Seq: seq}
}

func appendRules(ies []IE, req *SessionRequest) []IE {
	for i := range req.CreatePDRs {
		ies = append(ies, req.CreatePDRs[i].Encode())
	}
	for i := range req.CreateFARs {
		ies = append(ies, req.CreateFARs[i].Encode(false))
	}
	for i := range req.CreateQERs {
		ies = append(ies, req.CreateQERs[i].Encode(false))
	}
	for i := range req.UpdateFARs {
		ies = append(ies, req.UpdateFARs[i].Encode(true))
	}
	for i := range req.UpdateQERs {
		ies = append(ies, req.UpdateQERs[i].Encode(true))
	}
	return ies
}

// ParseSessionRequest decodes the rules of a session-level request
// message (the UPF side of Build*).
func ParseSessionRequest(m *Message) (SessionRequest, error) {
	req := SessionRequest{SEID: m.SEID}
	for i := range m.IEs {
		ie := &m.IEs[i]
		var err error
		switch ie.Type {
		case IENodeID:
			req.NodeID, err = ParseNodeID(ie)
		case IEFSEID:
			req.FSEID, req.FSEIDAddr, err = ParseFSEID(ie)
		case IECreatePDR:
			var p PDR
			if p, err = DecodePDR(ie); err == nil {
				req.CreatePDRs = append(req.CreatePDRs, p)
			}
		case IECreateFAR:
			var f FAR
			if f, err = DecodeFAR(ie); err == nil {
				req.CreateFARs = append(req.CreateFARs, f)
			}
		case IECreateQER:
			var q QER
			if q, err = DecodeQER(ie); err == nil {
				req.CreateQERs = append(req.CreateQERs, q)
			}
		case IEUpdateFAR:
			var f FAR
			if f, err = DecodeFAR(ie); err == nil {
				req.UpdateFARs = append(req.UpdateFARs, f)
			}
		case IEUpdateQER:
			var q QER
			if q, err = DecodeQER(ie); err == nil {
				req.UpdateQERs = append(req.UpdateQERs, q)
			}
		}
		if err != nil {
			return req, err
		}
	}
	return req, nil
}

// SessionResponse is a decoded session-level response.
type SessionResponse struct {
	Cause     uint8
	FSEID     uint64 // the responder's session id (establishment)
	FSEIDAddr uint32
}

// BuildSessionResponse encodes a session-level response. seid is the
// header SEID (the requester's session id, zero when unknown); fseid,
// when nonzero, reports the responder's own session id.
func BuildSessionResponse(respType uint8, seq uint32, seid uint64, cause uint8, fseid uint64, fseidAddr uint32) Message {
	m := Message{Type: respType, SEID: seid, Seq: seq}
	m.IEs = append(m.IEs, NewIEUint8(IECause, cause))
	if fseid != 0 {
		m.IEs = append(m.IEs, NewFSEID(fseid, fseidAddr))
	}
	return m
}

// ParseSessionResponse decodes a session-level response.
func ParseSessionResponse(m *Message) (SessionResponse, error) {
	var r SessionResponse
	c := FindIE(m.IEs, IECause)
	if c == nil {
		return r, ErrMissingIE
	}
	var err error
	if r.Cause, err = c.uint8(); err != nil {
		return r, err
	}
	if f := FindIE(m.IEs, IEFSEID); f != nil {
		if r.FSEID, r.FSEIDAddr, err = ParseFSEID(f); err != nil {
			return r, err
		}
	}
	return r, nil
}

// Node-level message builders.

// BuildHeartbeatRequest encodes a heartbeat request.
func BuildHeartbeatRequest(seq, recovery uint32) Message {
	return Message{Type: MsgHeartbeatRequest, Seq: seq,
		IEs: []IE{NewIEUint32(IERecoveryTimeStamp, recovery)}}
}

// BuildHeartbeatResponse encodes a heartbeat response.
func BuildHeartbeatResponse(seq, recovery uint32) Message {
	return Message{Type: MsgHeartbeatResponse, Seq: seq,
		IEs: []IE{NewIEUint32(IERecoveryTimeStamp, recovery)}}
}

// BuildAssociationSetupRequest encodes an association setup request.
func BuildAssociationSetupRequest(seq, nodeAddr, recovery uint32) Message {
	return Message{Type: MsgAssociationSetupRequest, Seq: seq,
		IEs: []IE{NewNodeID(nodeAddr), NewIEUint32(IERecoveryTimeStamp, recovery)}}
}

// BuildAssociationSetupResponse encodes an association setup response.
func BuildAssociationSetupResponse(seq, nodeAddr uint32, cause uint8, recovery uint32) Message {
	return Message{Type: MsgAssociationSetupResponse, Seq: seq,
		IEs: []IE{NewNodeID(nodeAddr), NewIEUint8(IECause, cause),
			NewIEUint32(IERecoveryTimeStamp, recovery)}}
}

// FlowSpec is a parsed SDF flow description in its 3GPP downlink
// orientation (network → UE): Src is the remote end, Dst the UE side.
// The UPF resolves Assigned endpoints to the session's UE address and
// mirrors the spec for uplink-direction PDRs.
type FlowSpec struct {
	Proto uint8 // 0 = any

	SrcAddr     uint32
	SrcPrefix   uint8
	SrcAssigned bool
	SrcPortLo   uint16
	SrcPortHi   uint16

	DstAddr     uint32
	DstPrefix   uint8
	DstAssigned bool
	DstPortLo   uint16
	DstPortHi   uint16
}

// ParseFlowDesc parses the IPFilterRule-style flow description grammar
// of 29.244 §8.2.5 (the subset a PEPC slice enforces):
//
//	permit out <proto|ip> from <addr>[/<len>]|any|assigned [<port>[-<port>]]
//	                      to   <addr>[/<len>]|any|assigned [<port>[-<port>]]
func ParseFlowDesc(flow string) (FlowSpec, error) {
	var fs FlowSpec
	tok := strings.Fields(flow)
	if len(tok) < 6 || tok[0] != "permit" || tok[1] != "out" {
		return fs, fmt.Errorf("pfcp: flow description %q: want \"permit out ...\"", flow)
	}
	if tok[2] != "ip" {
		p, err := strconv.ParseUint(tok[2], 10, 8)
		if err != nil {
			return fs, fmt.Errorf("pfcp: flow description %q: bad protocol %q", flow, tok[2])
		}
		fs.Proto = uint8(p)
	}
	if tok[3] != "from" {
		return fs, fmt.Errorf("pfcp: flow description %q: want \"from\"", flow)
	}
	rest, err := parseEndpoint(tok[4:], &fs.SrcAddr, &fs.SrcPrefix, &fs.SrcAssigned, &fs.SrcPortLo, &fs.SrcPortHi)
	if err != nil {
		return fs, fmt.Errorf("pfcp: flow description %q: %w", flow, err)
	}
	if len(rest) < 2 || rest[0] != "to" {
		return fs, fmt.Errorf("pfcp: flow description %q: want \"to\"", flow)
	}
	rest, err = parseEndpoint(rest[1:], &fs.DstAddr, &fs.DstPrefix, &fs.DstAssigned, &fs.DstPortLo, &fs.DstPortHi)
	if err != nil {
		return fs, fmt.Errorf("pfcp: flow description %q: %w", flow, err)
	}
	if len(rest) != 0 {
		return fs, fmt.Errorf("pfcp: flow description %q: trailing tokens", flow)
	}
	return fs, nil
}

// parseEndpoint consumes "<addr spec> [ports]" and returns the remaining
// tokens.
func parseEndpoint(tok []string, addr *uint32, prefix *uint8, assigned *bool, portLo, portHi *uint16) ([]string, error) {
	if len(tok) == 0 {
		return nil, fmt.Errorf("missing address")
	}
	switch a := tok[0]; a {
	case "any":
	case "assigned":
		*assigned = true
		*prefix = 32
	default:
		spec := a
		if i := strings.IndexByte(spec, '/'); i >= 0 {
			n, err := strconv.ParseUint(spec[i+1:], 10, 8)
			if err != nil || n > 32 {
				return nil, fmt.Errorf("bad prefix length %q", spec[i+1:])
			}
			*prefix = uint8(n)
			spec = spec[:i]
		} else {
			*prefix = 32
		}
		ip, err := parseIPv4(spec)
		if err != nil {
			return nil, err
		}
		*addr = ip
	}
	tok = tok[1:]
	if len(tok) == 0 || tok[0] == "to" {
		return tok, nil
	}
	lo, hi, ok := parsePorts(tok[0])
	if !ok {
		return nil, fmt.Errorf("bad port spec %q", tok[0])
	}
	*portLo, *portHi = lo, hi
	return tok[1:], nil
}

func parsePorts(s string) (lo, hi uint16, ok bool) {
	if i := strings.IndexByte(s, '-'); i >= 0 {
		l, err1 := strconv.ParseUint(s[:i], 10, 16)
		h, err2 := strconv.ParseUint(s[i+1:], 10, 16)
		if err1 != nil || err2 != nil || l > h {
			return 0, 0, false
		}
		return uint16(l), uint16(h), true
	}
	p, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, 0, false
	}
	return uint16(p), uint16(p), true
}

func parseIPv4(s string) (uint32, error) {
	var ip uint32
	part := 0
	acc, digits := 0, 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if digits == 0 || acc > 255 || part > 3 {
				return 0, fmt.Errorf("bad IPv4 address %q", s)
			}
			ip = ip<<8 | uint32(acc)
			part++
			acc, digits = 0, 0
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad IPv4 address %q", s)
		}
		acc = acc*10 + int(c-'0')
		digits++
	}
	if part != 4 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	return ip, nil
}
