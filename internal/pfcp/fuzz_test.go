package pfcp

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns marshaled real messages — the corpus the fuzzer
// mutates — plus a few byte-level corruptions.
func fuzzSeeds() [][]byte {
	est := BuildSessionEstablishment(9, &SessionRequest{
		FSEID: 7, FSEIDAddr: 0x0AFF_0001, NodeID: 0x0AFF_0001,
		CreatePDRs: []PDR{
			{ID: 1, Precedence: 100, SourceInterface: InterfaceAccess,
				TEID: 0x5E00_0001, TEIDAddr: 0x7F00_0001, OuterHeaderRemoval: true, FARID: 2, QERID: 1},
			{ID: 2, Precedence: 100, SourceInterface: InterfaceCore,
				UEAddr: 0x2D01_0001, SDF: "permit out 17 from 8.8.8.8/32 5060 to assigned", FARID: 1, QERID: 1},
		},
		CreateFARs: []FAR{
			{ID: 1, DestinationInterface: InterfaceAccess, OuterHeaderCreation: true, TEID: 0xD000_0001, Addr: 0xC0A8_3201},
			{ID: 2, DestinationInterface: InterfaceCore},
		},
		CreateQERs: []QER{{ID: 1, GateClosedDL: true, MBRUplinkKbps: 50_000, MBRDownlinkKbps: 100_000}},
	})
	mod := BuildSessionModification(10, &SessionRequest{
		SEID:       0x1234,
		UpdateFARs: []FAR{{ID: 1, DestinationInterface: InterfaceAccess, OuterHeaderCreation: true, TEID: 5, Addr: 6}},
		UpdateQERs: []QER{{ID: 1, MBRUplinkKbps: 20_000}},
	})
	del := BuildSessionDeletion(11, 0x1234)
	hb := BuildHeartbeatRequest(1, 42)
	assoc := BuildAssociationSetupRequest(2, 0x0AFF_0001, 42)
	resp := BuildSessionResponse(MsgSessionEstablishmentResponse, 9, 7, CauseAccepted, 99, 0x7F00_0001)

	seeds := [][]byte{
		est.Marshal(nil), mod.Marshal(nil), del.Marshal(nil),
		hb.Marshal(nil), assoc.Marshal(nil), resp.Marshal(nil),
		{}, {0x20}, {0x21, 50, 0xFF, 0xFF},
	}
	// A truncated establishment and one with a corrupted IE length.
	e := est.Marshal(nil)
	seeds = append(seeds, e[:len(e)/2])
	c := append([]byte(nil), e...)
	if len(c) > 20 {
		c[18], c[19] = 0xFF, 0xFF
	}
	seeds = append(seeds, c)
	return seeds
}

// FuzzUnmarshal asserts the decoder never panics, and that anything it
// accepts survives a marshal → unmarshal round trip byte-identically —
// the property the UPF's response path and the client's retransmit
// matching both rely on.
func FuzzUnmarshal(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Re-marshal and re-parse: the decoded form must be stable.
		out := m.Marshal(nil)
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-marshal does not parse: %v", err)
		}
		if m2.Type != m.Type || m2.SEID != m.SEID || m2.Seq != m.Seq || len(m2.IEs) != len(m.IEs) {
			t.Fatalf("round trip diverged: %+v != %+v", m2, m)
		}
		out2 := m2.Marshal(nil)
		if !bytes.Equal(out, out2) {
			t.Fatalf("marshal not stable:\n%x\n%x", out, out2)
		}
		// The semantic layer must also hold up on whatever parses.
		if m.Type == MsgSessionEstablishmentRequest || m.Type == MsgSessionModificationRequest {
			req, err := ParseSessionRequest(&m)
			if err == nil {
				for i := range req.CreatePDRs {
					if req.CreatePDRs[i].SDF != "" {
						_, _ = ParseFlowDesc(req.CreatePDRs[i].SDF)
					}
				}
			}
		}
	})
}

// FuzzParseFlowDesc asserts the SDF grammar parser never panics and
// that accepted specs re-parse identically.
func FuzzParseFlowDesc(f *testing.F) {
	for _, s := range []string{
		"permit out 17 from 8.8.8.8/32 5060 to assigned",
		"permit out ip from any to assigned",
		"permit out 6 from 10.0.0.0/8 to assigned 8000-9000",
		"permit out 6 from 1.2.3.4 80 to 5.6.7.8 443",
		"permit out ip from 255.255.255.255/0 to any 0-65535",
		"deny in garbage",
		"",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, flow string) {
		fs, err := ParseFlowDesc(flow)
		if err != nil {
			return
		}
		if fs.SrcPortLo > fs.SrcPortHi || fs.DstPortLo > fs.DstPortHi {
			t.Fatalf("inverted port range accepted: %+v", fs)
		}
		if fs.SrcPrefix > 32 || fs.DstPrefix > 32 {
			t.Fatalf("prefix > 32 accepted: %+v", fs)
		}
	})
}
