package pfcp

import (
	"errors"
	"reflect"
	"testing"
)

// TestHeaderRoundTrip pins the wire header for both header shapes: the
// 8-byte node form and the 16-byte session form with SEID and the S
// flag.
func TestHeaderRoundTrip(t *testing.T) {
	cases := []Message{
		{Type: MsgHeartbeatRequest, Seq: 1},
		{Type: MsgAssociationSetupRequest, Seq: 0xFFFFFF},
		{Type: MsgSessionEstablishmentRequest, SEID: 0, Seq: 7},
		{Type: MsgSessionModificationRequest, SEID: 0xDEAD_BEEF_CAFE_F00D, Seq: 123456},
		{Type: MsgSessionDeletionResponse, SEID: 1, Seq: 42},
	}
	for _, m := range cases {
		b := m.Marshal(nil)
		wantHdr := headerLenNode
		if HasSEID(m.Type) {
			wantHdr = headerLenSession
		}
		if len(b) != wantHdr {
			t.Errorf("type %d: marshaled %d bytes, want %d", m.Type, len(b), wantHdr)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("type %d: %v", m.Type, err)
		}
		if got.Type != m.Type || got.SEID != m.SEID || got.Seq != m.Seq {
			t.Errorf("type %d: round trip %+v != %+v", m.Type, got, m)
		}
	}
}

// TestMarshalAppends verifies Marshal appends to dst rather than
// clobbering it, the contract the client's retransmit buffer relies on.
func TestMarshalAppends(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	m := BuildHeartbeatRequest(5, 99)
	b := m.Marshal(prefix)
	if b[0] != 0xAA || b[1] != 0xBB {
		t.Fatal("Marshal clobbered the existing prefix")
	}
	if _, err := Unmarshal(b[2:]); err != nil {
		t.Fatalf("appended message does not parse: %v", err)
	}
}

// TestUnmarshalErrors pins the codec's failure modes: short input, a
// wrong version nibble, a length field past the buffer, and torn IEs.
func TestUnmarshalErrors(t *testing.T) {
	hb := BuildHeartbeatRequest(1, 2)
	good := hb.Marshal(nil)

	short := good[:3]
	if _, err := Unmarshal(short); !errors.Is(err, ErrShort) {
		t.Errorf("short: %v", err)
	}

	vers := append([]byte(nil), good...)
	vers[0] = 0x40 | (vers[0] & 0x1f) // version 2
	if _, err := Unmarshal(vers); !errors.Is(err, ErrVersion) {
		t.Errorf("version: %v", err)
	}

	trunc := append([]byte(nil), good...)
	trunc[2], trunc[3] = 0xFF, 0xFF
	if _, err := Unmarshal(trunc); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}

	torn := append([]byte(nil), good...)
	// Shrink the header length so the trailing IE region ends mid-TLV.
	torn[3] -= 2
	if _, err := Unmarshal(torn[:len(torn)-2]); !errors.Is(err, ErrMalformedIE) {
		t.Errorf("torn IE: %v", err)
	}

	// A session header cut off before the SEID.
	del := BuildSessionDeletion(1, 5)
	sess := del.Marshal(nil)
	cut := append([]byte(nil), sess[:10]...)
	cut[2], cut[3] = 0, 6
	if _, err := Unmarshal(cut); !errors.Is(err, ErrShort) {
		t.Errorf("cut session header: %v", err)
	}
}

// TestPDRRoundTrip encodes every PDR shape the UPF consumes and decodes
// it back to an identical struct.
func TestPDRRoundTrip(t *testing.T) {
	cases := []PDR{
		{ID: 1, Precedence: 100, SourceInterface: InterfaceAccess,
			TEID: 0x5E00_0001, TEIDAddr: 0x7F00_0001, OuterHeaderRemoval: true, FARID: 2, QERID: 1},
		{ID: 2, Precedence: 100, SourceInterface: InterfaceCore,
			UEAddr: 0x2D01_0001, FARID: 1, QERID: 1},
		{ID: 3, Precedence: 50, SourceInterface: InterfaceCore,
			UEAddr: 0x2D01_0001, SDF: "permit out 17 from 8.8.8.8/32 5060 to assigned", FARID: 1, QERID: 2},
		{ID: 4, SourceInterface: InterfaceAccess, TEID: 9, TEIDAddr: 1},
	}
	for _, p := range cases {
		ie := p.Encode()
		got, err := DecodePDR(&ie)
		if err != nil {
			t.Fatalf("PDR %d: %v", p.ID, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Errorf("PDR %d: round trip\n got %+v\nwant %+v", p.ID, got, p)
		}
	}
}

// TestFARRoundTrip covers create and update forms, forward and drop
// actions, with and without outer header creation.
func TestFARRoundTrip(t *testing.T) {
	cases := []FAR{
		{ID: 1, DestinationInterface: InterfaceAccess, OuterHeaderCreation: true, TEID: 0xD000_0001, Addr: 0xC0A8_3201},
		{ID: 2, DestinationInterface: InterfaceCore},
		{ID: 3, Drop: true, DestinationInterface: InterfaceCore},
	}
	for _, update := range []bool{false, true} {
		for _, f := range cases {
			ie := f.Encode(update)
			wantType := IECreateFAR
			if update {
				wantType = IEUpdateFAR
			}
			if ie.Type != wantType {
				t.Fatalf("FAR %d update=%v: IE type %d", f.ID, update, ie.Type)
			}
			got, err := DecodeFAR(&ie)
			if err != nil {
				t.Fatalf("FAR %d update=%v: %v", f.ID, update, err)
			}
			if !reflect.DeepEqual(got, f) {
				t.Errorf("FAR %d update=%v: round trip\n got %+v\nwant %+v", f.ID, update, got, f)
			}
		}
	}
}

// TestQERRoundTrip covers gate combinations and the 40-bit MBR field.
func TestQERRoundTrip(t *testing.T) {
	cases := []QER{
		{ID: 1, MBRUplinkKbps: 50_000, MBRDownlinkKbps: 100_000},
		{ID: 2, GateClosedUL: true, GateClosedDL: true},
		{ID: 3, GateClosedDL: true, MBRUplinkKbps: 1, MBRDownlinkKbps: 1},
		// 40-bit boundary: the largest encodable rate.
		{ID: 4, MBRUplinkKbps: 1<<40 - 1, MBRDownlinkKbps: 1<<40 - 1},
	}
	for _, update := range []bool{false, true} {
		for _, q := range cases {
			ie := q.Encode(update)
			got, err := DecodeQER(&ie)
			if err != nil {
				t.Fatalf("QER %d update=%v: %v", q.ID, update, err)
			}
			if !reflect.DeepEqual(got, q) {
				t.Errorf("QER %d update=%v: round trip\n got %+v\nwant %+v", q.ID, update, got, q)
			}
		}
	}
}

// TestSessionRequestRoundTrip builds the canonical establishment and
// modification messages and parses them back whole.
func TestSessionRequestRoundTrip(t *testing.T) {
	est := &SessionRequest{
		FSEID: 7, FSEIDAddr: 0x0AFF_0001, NodeID: 0x0AFF_0001,
		CreatePDRs: []PDR{
			{ID: 1, Precedence: 100, SourceInterface: InterfaceAccess,
				TEID: 0x5E00_0001, TEIDAddr: 0x7F00_0001, OuterHeaderRemoval: true, FARID: 2, QERID: 1},
			{ID: 2, Precedence: 100, SourceInterface: InterfaceCore, UEAddr: 0x2D01_0001, FARID: 1, QERID: 1},
		},
		CreateFARs: []FAR{
			{ID: 1, DestinationInterface: InterfaceAccess, OuterHeaderCreation: true, TEID: 0xD000_0001, Addr: 0xC0A8_3201},
			{ID: 2, DestinationInterface: InterfaceCore},
		},
		CreateQERs: []QER{{ID: 1, MBRUplinkKbps: 50_000, MBRDownlinkKbps: 100_000}},
	}
	estMsg := BuildSessionEstablishment(9, est)
	m, err := Unmarshal(estMsg.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSessionRequest(&m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, *est) {
		t.Errorf("establishment round trip\n got %+v\nwant %+v", got, *est)
	}

	mod := &SessionRequest{
		SEID:       0x1234,
		UpdateFARs: []FAR{{ID: 1, DestinationInterface: InterfaceAccess, OuterHeaderCreation: true, TEID: 5, Addr: 6}},
		UpdateQERs: []QER{{ID: 1, MBRUplinkKbps: 20_000, MBRDownlinkKbps: 40_000}},
	}
	modMsg := BuildSessionModification(10, mod)
	m, err = Unmarshal(modMsg.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err = ParseSessionRequest(&m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, *mod) {
		t.Errorf("modification round trip\n got %+v\nwant %+v", got, *mod)
	}
}

// TestSessionResponseRoundTrip covers accepted-with-FSEID and
// rejected-without.
func TestSessionResponseRoundTrip(t *testing.T) {
	ok := BuildSessionResponse(MsgSessionEstablishmentResponse, 3, 7, CauseAccepted, 99, 0x7F00_0001)
	m, err := Unmarshal(ok.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	r, err := ParseSessionResponse(&m)
	if err != nil || r.Cause != CauseAccepted || r.FSEID != 99 || r.FSEIDAddr != 0x7F00_0001 {
		t.Fatalf("accepted: %+v err %v", r, err)
	}
	if m.SEID != 7 || m.Seq != 3 {
		t.Fatalf("header: %+v", m)
	}

	rej := BuildSessionResponse(MsgSessionEstablishmentResponse, 4, 0, CauseNoEstablishedAssociation, 0, 0)
	m, err = Unmarshal(rej.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	r, err = ParseSessionResponse(&m)
	if err != nil || r.Cause != CauseNoEstablishedAssociation || r.FSEID != 0 {
		t.Fatalf("rejected: %+v err %v", r, err)
	}

	// A response with no Cause at all is a protocol violation.
	bad := Message{Type: MsgSessionEstablishmentResponse, Seq: 5}
	m, _ = Unmarshal(bad.Marshal(nil))
	if _, err := ParseSessionResponse(&m); !errors.Is(err, ErrMissingIE) {
		t.Fatalf("missing cause: %v", err)
	}
}

// TestNodeMessages pins the node-level builders (heartbeat, association)
// and their IE payloads.
func TestNodeMessages(t *testing.T) {
	asr := BuildAssociationSetupRequest(1, 0x0AFF_0001, 1234)
	m, err := Unmarshal(asr.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if addr, err := ParseNodeID(FindIE(m.IEs, IENodeID)); err != nil || addr != 0x0AFF_0001 {
		t.Fatalf("association node id: %#x err %v", addr, err)
	}
	if rec := FindIE(m.IEs, IERecoveryTimeStamp); rec == nil || len(rec.Value) != 4 {
		t.Fatal("association recovery timestamp missing")
	}

	hbr := BuildHeartbeatResponse(2, 1234)
	m, err = Unmarshal(hbr.Marshal(nil))
	if err != nil || m.Type != MsgHeartbeatResponse || m.Seq != 2 {
		t.Fatalf("heartbeat response: %+v err %v", m, err)
	}
}

// TestIEValueCodecs pins the per-IE codecs against malformed values the
// fuzzer likes to find: wrong flags, short payloads.
func TestIEValueCodecs(t *testing.T) {
	fseid := NewFSEID(5, 6)
	if s, a, err := ParseFSEID(&fseid); err != nil || s != 5 || a != 6 {
		t.Fatalf("fseid: %d %d %v", s, a, err)
	}
	noV4 := IE{Type: IEFSEID, Value: append([]byte{0x1}, fseid.Value[1:]...)}
	if _, _, err := ParseFSEID(&noV4); err == nil {
		t.Fatal("fseid without V4 flag accepted")
	}
	shortF := IE{Type: IEFSEID, Value: fseid.Value[:9]}
	if _, _, err := ParseFSEID(&shortF); err == nil {
		t.Fatal("fseid without address accepted")
	}

	fteid := NewFTEID(7, 8)
	if te, a, err := ParseFTEID(&fteid); err != nil || te != 7 || a != 8 {
		t.Fatalf("fteid: %d %d %v", te, a, err)
	}
	ohc := NewOuterHeaderCreation(9, 10)
	if te, a, err := ParseOuterHeaderCreation(&ohc); err != nil || te != 9 || a != 10 {
		t.Fatalf("ohc: %d %d %v", te, a, err)
	}
	badDesc := IE{Type: IEOuterHeaderCreation, Value: make([]byte, 10)}
	if _, _, err := ParseOuterHeaderCreation(&badDesc); err == nil {
		t.Fatal("non-GTP-U outer header description accepted")
	}

	sdf := NewSDFFilter("permit out ip from any to assigned")
	if s, err := ParseSDFFilter(&sdf); err != nil || s != "permit out ip from any to assigned" {
		t.Fatalf("sdf: %q %v", s, err)
	}
	lying := IE{Type: IESDFFilter, Value: []byte{0x1, 0, 0xFF, 0xFF, 'x'}}
	if _, err := ParseSDFFilter(&lying); err == nil {
		t.Fatal("sdf with lying length accepted")
	}
}

// TestParseFlowDesc walks the SDF grammar: full specs, wildcards,
// assigned endpoints, port ranges, and the rejects.
func TestParseFlowDesc(t *testing.T) {
	good := []struct {
		flow string
		want FlowSpec
	}{
		{"permit out 17 from 8.8.8.8/32 5060 to assigned",
			FlowSpec{Proto: 17, SrcAddr: 0x0808_0808, SrcPrefix: 32, SrcPortLo: 5060, SrcPortHi: 5060, DstAssigned: true, DstPrefix: 32}},
		{"permit out ip from any to assigned",
			FlowSpec{DstAssigned: true, DstPrefix: 32}},
		{"permit out 6 from 10.0.0.0/8 to assigned 8000-9000",
			FlowSpec{Proto: 6, SrcAddr: 0x0A00_0000, SrcPrefix: 8, DstAssigned: true, DstPrefix: 32, DstPortLo: 8000, DstPortHi: 9000}},
		{"permit out 6 from 1.2.3.4 80 to 5.6.7.8 443",
			FlowSpec{Proto: 6, SrcAddr: 0x0102_0304, SrcPrefix: 32, SrcPortLo: 80, SrcPortHi: 80,
				DstAddr: 0x0506_0708, DstPrefix: 32, DstPortLo: 443, DstPortHi: 443}},
	}
	for _, c := range good {
		got, err := ParseFlowDesc(c.flow)
		if err != nil {
			t.Errorf("%q: %v", c.flow, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q:\n got %+v\nwant %+v", c.flow, got, c.want)
		}
	}

	bad := []string{
		"",
		"deny out ip from any to any",
		"permit in ip from any to any",
		"permit out ip from any",
		"permit out 256 from any to any",
		"permit out ip from 1.2.3 to any",
		"permit out ip from 1.2.3.4/40 to any",
		"permit out ip from any 99999 to any",
		"permit out ip from any 90-80 to any",
		"permit out ip from any to any trailing",
	}
	for _, flow := range bad {
		if _, err := ParseFlowDesc(flow); err == nil {
			t.Errorf("%q: accepted", flow)
		}
	}
}
