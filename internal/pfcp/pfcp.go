// Package pfcp implements the Packet Forwarding Control Protocol (3GPP
// 29.244), the N4 reference point of the 5G CUPS split: an SMF drives a
// user-plane function by installing Packet Detection Rules, Forwarding
// Action Rules and QoS Enforcement Rules into per-session contexts. The
// package has three layers: this file is the wire codec (header + TLV
// information elements, grouped IEs nesting); rules.go is the semantic
// layer mapping IE trees to PDR/FAR/QER structs and session messages;
// client.go is the SMF side (association, heartbeat keepalive, session
// procedures with retransmit). The UPF side lives in internal/core,
// where sessions map onto PEPC's slice state machinery.
package pfcp

import (
	"encoding/binary"
	"errors"
)

// Port is the well-known PFCP UDP port.
const Port = 8805

// PFCP message types (29.244 §7.3): node-level messages carry no SEID,
// session-level messages (type >= 50) carry the 8-byte SEID of the
// receiver's session context.
const (
	MsgHeartbeatRequest             uint8 = 1
	MsgHeartbeatResponse            uint8 = 2
	MsgAssociationSetupRequest      uint8 = 5
	MsgAssociationSetupResponse     uint8 = 6
	MsgSessionEstablishmentRequest  uint8 = 50
	MsgSessionEstablishmentResponse uint8 = 51
	MsgSessionModificationRequest   uint8 = 52
	MsgSessionModificationResponse  uint8 = 53
	MsgSessionDeletionRequest       uint8 = 54
	MsgSessionDeletionResponse      uint8 = 55
)

// HasSEID reports whether a message type carries a session endpoint id
// in its header (the S flag).
func HasSEID(t uint8) bool { return t >= 50 }

// Information element types (29.244 §8.1).
const (
	IECreatePDR              uint16 = 1
	IEPDI                    uint16 = 2
	IECreateFAR              uint16 = 3
	IEForwardingParams       uint16 = 4
	IECreateQER              uint16 = 7
	IEUpdateFAR              uint16 = 10
	IEUpdateForwardingParams uint16 = 11
	IEUpdateQER              uint16 = 14
	IERemovePDR              uint16 = 15
	IERemoveFAR              uint16 = 16
	IECause                  uint16 = 19
	IESourceInterface        uint16 = 20
	IEFTEID                  uint16 = 21
	IESDFFilter              uint16 = 23
	IEGateStatus             uint16 = 25
	IEMBR                    uint16 = 26
	IEPrecedence             uint16 = 29
	IEDestinationInterface   uint16 = 42
	IEApplyAction            uint16 = 44
	IEPDRID                  uint16 = 56
	IEFSEID                  uint16 = 57
	IENodeID                 uint16 = 60
	IEOuterHeaderCreation    uint16 = 84
	IEUEIPAddress            uint16 = 93
	IEOuterHeaderRemoval     uint16 = 95
	IERecoveryTimeStamp      uint16 = 96
	IEFARID                  uint16 = 108
	IEQERID                  uint16 = 109
)

// Cause values (29.244 §8.2.1).
const (
	CauseAccepted                 uint8 = 1
	CauseRequestRejected          uint8 = 64
	CauseSessionContextNotFound   uint8 = 65
	CauseMandatoryIEMissing       uint8 = 66
	CauseNoEstablishedAssociation uint8 = 72
)

// Source/Destination Interface values (29.244 §8.2.2/§8.2.24): Access is
// the RAN side (uplink arrives here), Core the SGi/N6 side.
const (
	InterfaceAccess uint8 = 0
	InterfaceCore   uint8 = 1
)

// Apply Action bits (29.244 §8.2.26).
const (
	ApplyActionDrop    uint8 = 0x1
	ApplyActionForward uint8 = 0x2
)

// Gate Status bits (29.244 §8.2.7): 1 = closed. DL gate occupies bits
// 0-1, UL gate bits 2-3.
const (
	GateOpen   uint8 = 0
	GateClosed uint8 = 1
)

// Codec errors.
var (
	ErrShort       = errors.New("pfcp: message too short")
	ErrVersion     = errors.New("pfcp: unsupported PFCP version")
	ErrTruncated   = errors.New("pfcp: length field exceeds available bytes")
	ErrMalformedIE = errors.New("pfcp: malformed information element")
	ErrMissingIE   = errors.New("pfcp: mandatory information element missing")
)

// IE is one information element: a type and its raw value. Grouped IEs
// carry nested marshaled IEs as their value.
type IE struct {
	Type  uint16
	Value []byte
}

// Message is a decoded PFCP message. SEID is meaningful only for
// session-level types (HasSEID); Seq is the 24-bit sequence number that
// pairs responses to requests.
type Message struct {
	Type uint8
	SEID uint64
	Seq  uint32
	IEs  []IE
}

const (
	headerLenNode    = 8
	headerLenSession = 16
	version1         = 1 << 5
	flagSEID         = 1 << 0
)

// headerLen returns the wire header length of the message.
func (m *Message) headerLen() int {
	if HasSEID(m.Type) {
		return headerLenSession
	}
	return headerLenNode
}

// Marshal encodes the message, appending to dst (pass nil for a fresh
// buffer) and returning the extended slice.
func (m *Message) Marshal(dst []byte) []byte {
	hdr := m.headerLen()
	body := 0
	for i := range m.IEs {
		body += 4 + len(m.IEs[i].Value)
	}
	total := hdr + body
	off := len(dst)
	dst = append(dst, make([]byte, total)...)
	b := dst[off:]
	flags := byte(version1)
	if HasSEID(m.Type) {
		flags |= flagSEID
	}
	b[0] = flags
	b[1] = m.Type
	// Length excludes the first 4 octets (flags, type, length itself).
	binary.BigEndian.PutUint16(b[2:4], uint16(total-4))
	p := 4
	if HasSEID(m.Type) {
		binary.BigEndian.PutUint64(b[4:12], m.SEID)
		p = 12
	}
	b[p] = byte(m.Seq >> 16)
	b[p+1] = byte(m.Seq >> 8)
	b[p+2] = byte(m.Seq)
	// b[p+3] is the spare octet.
	p += 4
	for i := range m.IEs {
		ie := &m.IEs[i]
		binary.BigEndian.PutUint16(b[p:], ie.Type)
		binary.BigEndian.PutUint16(b[p+2:], uint16(len(ie.Value)))
		copy(b[p+4:], ie.Value)
		p += 4 + len(ie.Value)
	}
	return dst
}

// Unmarshal decodes a PFCP message from data.
func Unmarshal(data []byte) (Message, error) {
	var m Message
	if len(data) < headerLenNode {
		return m, ErrShort
	}
	flags := data[0]
	if flags&0xe0 != version1 {
		return m, ErrVersion
	}
	m.Type = data[1]
	length := int(binary.BigEndian.Uint16(data[2:4]))
	if length+4 > len(data) {
		return m, ErrTruncated
	}
	data = data[:length+4]
	p := 4
	if flags&flagSEID != 0 {
		if len(data) < headerLenSession {
			return m, ErrShort
		}
		m.SEID = binary.BigEndian.Uint64(data[4:12])
		p = 12
	}
	if len(data) < p+4 {
		return m, ErrShort
	}
	m.Seq = uint32(data[p])<<16 | uint32(data[p+1])<<8 | uint32(data[p+2])
	p += 4
	ies, err := ParseIEs(data[p:])
	if err != nil {
		return m, err
	}
	m.IEs = ies
	return m, nil
}

// ParseIEs walks a TLV region into its information elements. It is also
// the decoder for grouped IE values.
func ParseIEs(data []byte) ([]IE, error) {
	var ies []IE
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, ErrMalformedIE
		}
		t := binary.BigEndian.Uint16(data[0:2])
		l := int(binary.BigEndian.Uint16(data[2:4]))
		if len(data) < 4+l {
			return nil, ErrMalformedIE
		}
		ies = append(ies, IE{Type: t, Value: data[4 : 4+l]})
		data = data[4+l:]
	}
	return ies, nil
}

// FindIE returns the first IE of the given type, or nil.
func FindIE(ies []IE, t uint16) *IE {
	for i := range ies {
		if ies[i].Type == t {
			return &ies[i]
		}
	}
	return nil
}

// Fixed-width IE value constructors.

// NewIEUint8 builds a 1-byte IE.
func NewIEUint8(t uint16, v uint8) IE { return IE{Type: t, Value: []byte{v}} }

// NewIEUint16 builds a 2-byte big-endian IE.
func NewIEUint16(t uint16, v uint16) IE {
	b := make([]byte, 2)
	binary.BigEndian.PutUint16(b, v)
	return IE{Type: t, Value: b}
}

// NewIEUint32 builds a 4-byte big-endian IE.
func NewIEUint32(t uint16, v uint32) IE {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, v)
	return IE{Type: t, Value: b}
}

// NewGrouped builds a grouped IE whose value is the concatenation of the
// nested IEs.
func NewGrouped(t uint16, sub ...IE) IE {
	n := 0
	for i := range sub {
		n += 4 + len(sub[i].Value)
	}
	b := make([]byte, n)
	p := 0
	for i := range sub {
		binary.BigEndian.PutUint16(b[p:], sub[i].Type)
		binary.BigEndian.PutUint16(b[p+2:], uint16(len(sub[i].Value)))
		copy(b[p+4:], sub[i].Value)
		p += 4 + len(sub[i].Value)
	}
	return IE{Type: t, Value: b}
}

// IE value accessors with bounds checks.

func (ie *IE) uint8() (uint8, error) {
	if len(ie.Value) < 1 {
		return 0, ErrMalformedIE
	}
	return ie.Value[0], nil
}

func (ie *IE) uint16() (uint16, error) {
	if len(ie.Value) < 2 {
		return 0, ErrMalformedIE
	}
	return binary.BigEndian.Uint16(ie.Value), nil
}

func (ie *IE) uint32() (uint32, error) {
	if len(ie.Value) < 4 {
		return 0, ErrMalformedIE
	}
	return binary.BigEndian.Uint32(ie.Value), nil
}

// Node ID (29.244 §8.2.38): type octet (0 = IPv4) + address.

// NewNodeID builds an IPv4 Node ID IE from a host-order address.
func NewNodeID(addr uint32) IE {
	b := make([]byte, 5)
	binary.BigEndian.PutUint32(b[1:], addr)
	return IE{Type: IENodeID, Value: b}
}

// ParseNodeID extracts the IPv4 address of a Node ID IE.
func ParseNodeID(ie *IE) (uint32, error) {
	if len(ie.Value) < 5 || ie.Value[0] != 0 {
		return 0, ErrMalformedIE
	}
	return binary.BigEndian.Uint32(ie.Value[1:5]), nil
}

// F-SEID (29.244 §8.2.37): flags (0x2 = V4) + SEID + IPv4 address.

// NewFSEID builds an IPv4 F-SEID IE.
func NewFSEID(seid uint64, addr uint32) IE {
	b := make([]byte, 13)
	b[0] = 0x2 // V4
	binary.BigEndian.PutUint64(b[1:9], seid)
	binary.BigEndian.PutUint32(b[9:13], addr)
	return IE{Type: IEFSEID, Value: b}
}

// ParseFSEID extracts the SEID and IPv4 address of an F-SEID IE.
func ParseFSEID(ie *IE) (seid uint64, addr uint32, err error) {
	if len(ie.Value) < 9 || ie.Value[0]&0x2 == 0 {
		return 0, 0, ErrMalformedIE
	}
	seid = binary.BigEndian.Uint64(ie.Value[1:9])
	if len(ie.Value) < 13 {
		return 0, 0, ErrMalformedIE
	}
	return seid, binary.BigEndian.Uint32(ie.Value[9:13]), nil
}

// F-TEID (29.244 §8.2.3): flags (0x1 = V4) + TEID + IPv4 address.

// NewFTEID builds an IPv4 F-TEID IE.
func NewFTEID(teid, addr uint32) IE {
	b := make([]byte, 9)
	b[0] = 0x1 // V4
	binary.BigEndian.PutUint32(b[1:5], teid)
	binary.BigEndian.PutUint32(b[5:9], addr)
	return IE{Type: IEFTEID, Value: b}
}

// ParseFTEID extracts the TEID and IPv4 address of an F-TEID IE.
func ParseFTEID(ie *IE) (teid, addr uint32, err error) {
	if len(ie.Value) < 9 || ie.Value[0]&0x1 == 0 {
		return 0, 0, ErrMalformedIE
	}
	return binary.BigEndian.Uint32(ie.Value[1:5]), binary.BigEndian.Uint32(ie.Value[5:9]), nil
}

// UE IP Address (29.244 §8.2.62): flags (0x2 = V4) + address.

// NewUEIPAddress builds an IPv4 UE IP Address IE.
func NewUEIPAddress(addr uint32) IE {
	b := make([]byte, 5)
	b[0] = 0x2 // V4
	binary.BigEndian.PutUint32(b[1:], addr)
	return IE{Type: IEUEIPAddress, Value: b}
}

// ParseUEIPAddress extracts the IPv4 address of a UE IP Address IE.
func ParseUEIPAddress(ie *IE) (uint32, error) {
	if len(ie.Value) < 5 || ie.Value[0]&0x2 == 0 {
		return 0, ErrMalformedIE
	}
	return binary.BigEndian.Uint32(ie.Value[1:5]), nil
}

// Outer Header Creation (29.244 §8.2.56): 2-byte description (0x0100 =
// GTP-U/UDP/IPv4) + TEID + IPv4 address.

// OuterHeaderCreationGTPUUDPIPv4 is the description bitmask for a
// GTP-U/UDP/IPv4 outer header.
const OuterHeaderCreationGTPUUDPIPv4 uint16 = 0x0100

// NewOuterHeaderCreation builds a GTP-U/UDP/IPv4 Outer Header Creation IE.
func NewOuterHeaderCreation(teid, addr uint32) IE {
	b := make([]byte, 10)
	binary.BigEndian.PutUint16(b[0:2], OuterHeaderCreationGTPUUDPIPv4)
	binary.BigEndian.PutUint32(b[2:6], teid)
	binary.BigEndian.PutUint32(b[6:10], addr)
	return IE{Type: IEOuterHeaderCreation, Value: b}
}

// ParseOuterHeaderCreation extracts the TEID and IPv4 address of a
// GTP-U/UDP/IPv4 Outer Header Creation IE.
func ParseOuterHeaderCreation(ie *IE) (teid, addr uint32, err error) {
	if len(ie.Value) < 10 {
		return 0, 0, ErrMalformedIE
	}
	if binary.BigEndian.Uint16(ie.Value[0:2])&OuterHeaderCreationGTPUUDPIPv4 == 0 {
		return 0, 0, ErrMalformedIE
	}
	return binary.BigEndian.Uint32(ie.Value[2:6]), binary.BigEndian.Uint32(ie.Value[6:10]), nil
}

// MBR (29.244 §8.2.8): two 40-bit kbps values (UL then DL).

// NewMBR builds an MBR IE from kbps values.
func NewMBR(ulKbps, dlKbps uint64) IE {
	b := make([]byte, 10)
	put40(b[0:5], ulKbps)
	put40(b[5:10], dlKbps)
	return IE{Type: IEMBR, Value: b}
}

// ParseMBR extracts the UL and DL kbps of an MBR IE.
func ParseMBR(ie *IE) (ulKbps, dlKbps uint64, err error) {
	if len(ie.Value) < 10 {
		return 0, 0, ErrMalformedIE
	}
	return get40(ie.Value[0:5]), get40(ie.Value[5:10]), nil
}

func put40(b []byte, v uint64) {
	b[0] = byte(v >> 32)
	b[1] = byte(v >> 24)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 8)
	b[4] = byte(v)
}

func get40(b []byte) uint64 {
	return uint64(b[0])<<32 | uint64(b[1])<<24 | uint64(b[2])<<16 | uint64(b[3])<<8 | uint64(b[4])
}

// SDF Filter (29.244 §8.2.5): flags (0x1 = FD) + spare + 2-byte flow
// description length + flow description.

// NewSDFFilter builds an SDF Filter IE from a flow description.
func NewSDFFilter(flow string) IE {
	b := make([]byte, 4+len(flow))
	b[0] = 0x1 // FD
	binary.BigEndian.PutUint16(b[2:4], uint16(len(flow)))
	copy(b[4:], flow)
	return IE{Type: IESDFFilter, Value: b}
}

// ParseSDFFilter extracts the flow description of an SDF Filter IE.
func ParseSDFFilter(ie *IE) (string, error) {
	if len(ie.Value) < 4 || ie.Value[0]&0x1 == 0 {
		return "", ErrMalformedIE
	}
	n := int(binary.BigEndian.Uint16(ie.Value[2:4]))
	if len(ie.Value) < 4+n {
		return "", ErrMalformedIE
	}
	return string(ie.Value[4 : 4+n]), nil
}
