package pfcp

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// This file is the SMF side of N4: a client that associates with a UPF,
// keeps the association alive with heartbeats, and drives session
// establishment/modification/deletion — each request retransmitted on a
// timer until its response arrives or the peer is declared dead, per
// 29.244 §6 (PFCP runs over UDP; reliability is the endpoints' job).
//
// A Client is single-goroutine: one outstanding request at a time, with
// responses paired to requests by (type, sequence number). Load
// generators wanting concurrency run one Client per worker — PFCP
// sequence spaces are per-association pair, and the UPF treats every
// source port as its own peer transport.

// Client defaults.
const (
	// DefaultRetransmit is the retransmission timeout (29.244 calls it
	// N1/T1; real deployments run ~1-5s, loopback wants much less).
	DefaultRetransmit = 500 * time.Millisecond
	// DefaultRetries is how many times a request is re-sent before the
	// peer is declared unreachable.
	DefaultRetries = 3
)

// ErrTimeout reports a request whose every (re)transmission went
// unanswered.
var ErrTimeout = errors.New("pfcp: request timed out after retries")

// ErrRejected wraps a non-accepted cause in a response.
type ErrRejected struct {
	Cause uint8
}

func (e *ErrRejected) Error() string {
	return fmt.Sprintf("pfcp: request rejected, cause %d", e.Cause)
}

// Client is one SMF-side PFCP endpoint speaking to a single UPF.
type Client struct {
	conn     *net.UDPConn
	nodeAddr uint32
	recovery uint32

	seq      uint32
	nextSEID uint64

	rto     time.Duration
	retries int

	rx  []byte
	out []byte

	// Retransmits counts re-sent requests; Transactions completed
	// request/response exchanges.
	Retransmits  uint64
	Transactions uint64
}

// Dial connects a client to the UPF at raddr. nodeAddr is this SMF's
// node identity (IPv4, host order), carried in Node ID IEs and F-SEIDs.
func Dial(raddr string, nodeAddr uint32) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn:     conn,
		nodeAddr: nodeAddr,
		recovery: uint32(time.Now().Unix()),
		rto:      DefaultRetransmit,
		retries:  DefaultRetries,
		rx:       make([]byte, 64*1024),
	}, nil
}

// SetRetransmit overrides the retransmission timeout and retry budget.
func (c *Client) SetRetransmit(rto time.Duration, retries int) {
	if rto > 0 {
		c.rto = rto
	}
	if retries >= 0 {
		c.retries = retries
	}
}

// Close releases the client's socket.
func (c *Client) Close() error { return c.conn.Close() }

// LocalAddr returns the client's bound UDP address.
func (c *Client) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// transact sends req and waits for the response of type wantType with
// req's sequence number, retransmitting on timeout. Responses that do
// not pair (stale retransmission answers) are discarded; heartbeat
// requests from the UPF arriving between responses are answered inline
// so a keepalive probe from the peer never kills a transaction.
func (c *Client) transact(req Message, wantType uint8) (Message, error) {
	c.seq = c.seq&0xffffff + 1
	req.Seq = c.seq
	c.out = req.Marshal(c.out[:0])
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.Retransmits++
		}
		if _, err := c.conn.Write(c.out); err != nil {
			return Message{}, err
		}
		deadline := time.Now().Add(c.rto)
		c.conn.SetReadDeadline(deadline)
		for {
			n, err := c.conn.Read(c.rx)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break // retransmit
				}
				return Message{}, err
			}
			m, err := Unmarshal(c.rx[:n])
			if err != nil {
				continue // garbage on the wire; keep waiting
			}
			if m.Type == MsgHeartbeatRequest {
				hb := BuildHeartbeatResponse(m.Seq, c.recovery)
				c.conn.Write(hb.Marshal(nil))
				continue
			}
			if m.Type != wantType || m.Seq != req.Seq {
				continue // stale response from an earlier retransmission
			}
			c.Transactions++
			return m, nil
		}
	}
	return Message{}, ErrTimeout
}

// Associate sets up (or refreshes) the node-level association the UPF
// requires before accepting session requests.
func (c *Client) Associate() error {
	m, err := c.transact(BuildAssociationSetupRequest(0, c.nodeAddr, c.recovery), MsgAssociationSetupResponse)
	if err != nil {
		return err
	}
	return causeOf(&m)
}

// Heartbeat probes the association once; ErrTimeout after the retry
// budget means the UPF should be considered down.
func (c *Client) Heartbeat() error {
	_, err := c.transact(BuildHeartbeatRequest(0, c.recovery), MsgHeartbeatResponse)
	return err
}

// KeepAlive sends heartbeats every interval until stop closes or a probe
// exhausts its retries, returning nil on stop and the probe error when
// the association died. Run it on a dedicated Client: a keepalive and a
// session procedure sharing one socket would steal each other's
// responses.
func (c *Client) KeepAlive(stop <-chan struct{}, interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-t.C:
			if err := c.Heartbeat(); err != nil {
				return err
			}
		}
	}
}

// Establish creates a session from req's Create rules. The client fills
// in its node identity and, when req.FSEID is zero, allocates the SMF
// side's session id. It returns the UPF's session id, which addresses
// every later request against this session.
func (c *Client) Establish(req *SessionRequest) (upfSEID uint64, err error) {
	req.NodeID = c.nodeAddr
	if req.FSEID == 0 {
		c.nextSEID++
		req.FSEID = c.nextSEID
	}
	if req.FSEIDAddr == 0 {
		req.FSEIDAddr = c.nodeAddr
	}
	m, err := c.transact(BuildSessionEstablishment(0, req), MsgSessionEstablishmentResponse)
	if err != nil {
		return 0, err
	}
	r, err := ParseSessionResponse(&m)
	if err != nil {
		return 0, err
	}
	if r.Cause != CauseAccepted {
		return 0, &ErrRejected{Cause: r.Cause}
	}
	if r.FSEID == 0 {
		return 0, ErrMissingIE
	}
	return r.FSEID, nil
}

// Modify applies req's Update rules to the session req.SEID (the UPF
// session id returned by Establish).
func (c *Client) Modify(req *SessionRequest) error {
	m, err := c.transact(BuildSessionModification(0, req), MsgSessionModificationResponse)
	if err != nil {
		return err
	}
	return causeOf(&m)
}

// Delete tears down the session upfSEID.
func (c *Client) Delete(upfSEID uint64) error {
	m, err := c.transact(BuildSessionDeletion(0, upfSEID), MsgSessionDeletionResponse)
	if err != nil {
		return err
	}
	return causeOf(&m)
}

// causeOf extracts the response cause, mapping non-accepted to
// ErrRejected.
func causeOf(m *Message) error {
	r, err := ParseSessionResponse(m)
	if err != nil {
		return err
	}
	if r.Cause != CauseAccepted {
		return &ErrRejected{Cause: r.Cause}
	}
	return nil
}
