// Package nas implements the Non-Access-Stratum messages (3GPP 24.301)
// PEPC handles on its control path: the EMM attach and authentication
// procedure plus the ESM default-bearer activation piggybacked on it.
// Encoding is the standard's plain (non-PER) octet layout for the header
// and a fixed/TLV layout for the bodies; ciphering is out of scope (the
// paper's control-plane experiments exercise parse/build cost and state
// operations, not crypto throughput — integrity is modelled by the MAC
// field which the security-mode procedure fills with an HMAC tag).
package nas

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Protocol discriminators (low nibble of the first octet).
const (
	PDEMM uint8 = 0x07 // EPS mobility management
	PDESM uint8 = 0x02 // EPS session management
)

// Security header types (high nibble of the first octet).
const (
	SecHdrPlain             uint8 = 0x0
	SecHdrIntegrity         uint8 = 0x1
	SecHdrIntegrityCiphered uint8 = 0x2
)

// EMM message types (3GPP 24.301 table 9.8.1).
const (
	MsgAttachRequest          uint8 = 0x41
	MsgAttachAccept           uint8 = 0x42
	MsgAttachComplete         uint8 = 0x43
	MsgAttachReject           uint8 = 0x44
	MsgDetachRequest          uint8 = 0x45
	MsgDetachAccept           uint8 = 0x46
	MsgTAURequest             uint8 = 0x48
	MsgTAUAccept              uint8 = 0x49
	MsgAuthenticationRequest  uint8 = 0x52
	MsgAuthenticationResponse uint8 = 0x53
	MsgAuthenticationReject   uint8 = 0x54
	MsgIdentityRequest        uint8 = 0x55
	MsgIdentityResponse       uint8 = 0x56
	MsgSecurityModeCommand    uint8 = 0x5d
	MsgSecurityModeComplete   uint8 = 0x5e
	MsgServiceRequest         uint8 = 0x4d
)

// ESM message types.
const (
	MsgActivateDefaultBearerRequest uint8 = 0xc1
	MsgActivateDefaultBearerAccept  uint8 = 0xc2
)

// Codec errors.
var (
	ErrShort     = errors.New("nas: message too short")
	ErrBadPD     = errors.New("nas: unexpected protocol discriminator")
	ErrBadType   = errors.New("nas: unexpected message type")
	ErrMalformed = errors.New("nas: malformed message body")
)

// Header is the common NAS header.
type Header struct {
	SecurityHeader uint8
	PD             uint8
	Type           uint8
	// MAC holds the message authentication code for integrity-protected
	// messages (SecurityHeader != SecHdrPlain); 0 when plain.
	MAC uint32
	Seq uint8
	// BodyOff is where the type-specific body starts in the decoded
	// buffer.
	BodyOff int
}

// DecodeHeader parses the security header, optional MAC/sequence, PD and
// message type.
func DecodeHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < 2 {
		return h, ErrShort
	}
	h.SecurityHeader = b[0] >> 4
	h.PD = b[0] & 0x0f
	if h.SecurityHeader == SecHdrPlain {
		h.Type = b[1]
		h.BodyOff = 2
		return h, nil
	}
	// Integrity protected: sec-octet, MAC(4), SEQ(1), then inner PD+type.
	if len(b) < 8 {
		return h, ErrShort
	}
	h.MAC = binary.BigEndian.Uint32(b[1:5])
	h.Seq = b[5]
	h.PD = b[6] & 0x0f
	h.Type = b[7]
	h.BodyOff = 8
	return h, nil
}

// encodeHeader writes a plain NAS header.
func encodeHeader(dst []byte, pd, msgType uint8) int {
	dst[0] = SecHdrPlain<<4 | pd&0x0f
	dst[1] = msgType
	return 2
}

// AttachRequest is the UE's initial EMM message.
type AttachRequest struct {
	IMSI uint64
	// GUTI, when nonzero, is used instead of the IMSI (re-attach).
	GUTI uint64
	// UENetworkCapability advertises supported security algorithms.
	UENetworkCapability uint16
	// ESMContainer carries the piggybacked PDN connectivity request; kept
	// opaque here.
	ESMContainer []byte
}

// Marshal encodes the message.
func (m *AttachRequest) Marshal() []byte {
	b := make([]byte, 2+1+8+8+2+2+len(m.ESMContainer))
	o := encodeHeader(b, PDEMM, MsgAttachRequest)
	idType := byte(1) // IMSI
	if m.GUTI != 0 {
		idType = 6 // GUTI
	}
	b[o] = idType
	o++
	binary.BigEndian.PutUint64(b[o:], m.IMSI)
	o += 8
	binary.BigEndian.PutUint64(b[o:], m.GUTI)
	o += 8
	binary.BigEndian.PutUint16(b[o:], m.UENetworkCapability)
	o += 2
	binary.BigEndian.PutUint16(b[o:], uint16(len(m.ESMContainer)))
	o += 2
	copy(b[o:], m.ESMContainer)
	return b
}

// UnmarshalAttachRequest decodes an attach request body.
func UnmarshalAttachRequest(b []byte) (*AttachRequest, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if h.PD != PDEMM {
		return nil, ErrBadPD
	}
	if h.Type != MsgAttachRequest {
		return nil, ErrBadType
	}
	body := b[h.BodyOff:]
	if len(body) < 1+8+8+2+2 {
		return nil, ErrShort
	}
	m := &AttachRequest{}
	o := 1 // id type octet informs which id is authoritative; both carried
	m.IMSI = binary.BigEndian.Uint64(body[o:])
	o += 8
	m.GUTI = binary.BigEndian.Uint64(body[o:])
	o += 8
	m.UENetworkCapability = binary.BigEndian.Uint16(body[o:])
	o += 2
	esmLen := int(binary.BigEndian.Uint16(body[o:]))
	o += 2
	if len(body) < o+esmLen {
		return nil, ErrMalformed
	}
	if esmLen > 0 {
		m.ESMContainer = append([]byte(nil), body[o:o+esmLen]...)
	}
	return m, nil
}

// AuthenticationRequest carries the network's challenge.
type AuthenticationRequest struct {
	RAND [16]byte
	AUTN [16]byte
	KSI  uint8
}

// Marshal encodes the message.
func (m *AuthenticationRequest) Marshal() []byte {
	b := make([]byte, 2+1+16+16)
	o := encodeHeader(b, PDEMM, MsgAuthenticationRequest)
	b[o] = m.KSI
	o++
	copy(b[o:], m.RAND[:])
	o += 16
	copy(b[o:], m.AUTN[:])
	return b
}

// UnmarshalAuthenticationRequest decodes the challenge.
func UnmarshalAuthenticationRequest(b []byte) (*AuthenticationRequest, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if h.PD != PDEMM || h.Type != MsgAuthenticationRequest {
		return nil, ErrBadType
	}
	body := b[h.BodyOff:]
	if len(body) < 1+16+16 {
		return nil, ErrShort
	}
	m := &AuthenticationRequest{KSI: body[0]}
	copy(m.RAND[:], body[1:17])
	copy(m.AUTN[:], body[17:33])
	return m, nil
}

// AuthenticationResponse carries the UE's RES.
type AuthenticationResponse struct {
	RES [8]byte
}

// Marshal encodes the message.
func (m *AuthenticationResponse) Marshal() []byte {
	b := make([]byte, 2+1+8)
	o := encodeHeader(b, PDEMM, MsgAuthenticationResponse)
	b[o] = 8 // RES length
	copy(b[o+1:], m.RES[:])
	return b
}

// UnmarshalAuthenticationResponse decodes the response.
func UnmarshalAuthenticationResponse(b []byte) (*AuthenticationResponse, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if h.PD != PDEMM || h.Type != MsgAuthenticationResponse {
		return nil, ErrBadType
	}
	body := b[h.BodyOff:]
	if len(body) < 9 || body[0] != 8 {
		return nil, ErrMalformed
	}
	m := &AuthenticationResponse{}
	copy(m.RES[:], body[1:9])
	return m, nil
}

// SecurityModeCommand selects algorithms and proves the network holds
// KASME (the MAC field of the header covers the message in real EPS;
// here the tag travels in the header of an integrity-protected frame the
// caller builds with MarshalProtected).
type SecurityModeCommand struct {
	SelectedAlgorithms uint8 // EEA/EIA nibble pair
	KSI                uint8
}

// Marshal encodes the message.
func (m *SecurityModeCommand) Marshal() []byte {
	b := make([]byte, 2+2)
	o := encodeHeader(b, PDEMM, MsgSecurityModeCommand)
	b[o] = m.SelectedAlgorithms
	b[o+1] = m.KSI
	return b
}

// UnmarshalSecurityModeCommand decodes the message.
func UnmarshalSecurityModeCommand(b []byte) (*SecurityModeCommand, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if h.PD != PDEMM || h.Type != MsgSecurityModeCommand {
		return nil, ErrBadType
	}
	body := b[h.BodyOff:]
	if len(body) < 2 {
		return nil, ErrShort
	}
	return &SecurityModeCommand{SelectedAlgorithms: body[0], KSI: body[1]}, nil
}

// SecurityModeComplete acknowledges the security mode command.
type SecurityModeComplete struct{}

// Marshal encodes the message.
func (m *SecurityModeComplete) Marshal() []byte {
	b := make([]byte, 2)
	encodeHeader(b, PDEMM, MsgSecurityModeComplete)
	return b
}

// AttachAccept finishes the attach: it assigns the GUTI and TAI list and
// carries the piggybacked default-bearer activation.
type AttachAccept struct {
	GUTI         uint64
	TAI          uint16
	TAIList      []uint16
	ESMContainer []byte // ActivateDefaultBearerRequest
}

// Marshal encodes the message.
func (m *AttachAccept) Marshal() []byte {
	b := make([]byte, 2+8+2+1+2*len(m.TAIList)+2+len(m.ESMContainer))
	o := encodeHeader(b, PDEMM, MsgAttachAccept)
	binary.BigEndian.PutUint64(b[o:], m.GUTI)
	o += 8
	binary.BigEndian.PutUint16(b[o:], m.TAI)
	o += 2
	b[o] = uint8(len(m.TAIList))
	o++
	for _, tai := range m.TAIList {
		binary.BigEndian.PutUint16(b[o:], tai)
		o += 2
	}
	binary.BigEndian.PutUint16(b[o:], uint16(len(m.ESMContainer)))
	o += 2
	copy(b[o:], m.ESMContainer)
	return b
}

// UnmarshalAttachAccept decodes the message.
func UnmarshalAttachAccept(b []byte) (*AttachAccept, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if h.PD != PDEMM || h.Type != MsgAttachAccept {
		return nil, ErrBadType
	}
	body := b[h.BodyOff:]
	if len(body) < 8+2+1 {
		return nil, ErrShort
	}
	m := &AttachAccept{}
	m.GUTI = binary.BigEndian.Uint64(body)
	m.TAI = binary.BigEndian.Uint16(body[8:])
	n := int(body[10])
	o := 11
	if len(body) < o+2*n+2 {
		return nil, ErrMalformed
	}
	for i := 0; i < n; i++ {
		m.TAIList = append(m.TAIList, binary.BigEndian.Uint16(body[o:]))
		o += 2
	}
	esmLen := int(binary.BigEndian.Uint16(body[o:]))
	o += 2
	if len(body) < o+esmLen {
		return nil, ErrMalformed
	}
	if esmLen > 0 {
		m.ESMContainer = append([]byte(nil), body[o:o+esmLen]...)
	}
	return m, nil
}

// AttachComplete closes the attach procedure.
type AttachComplete struct{}

// Marshal encodes the message.
func (m *AttachComplete) Marshal() []byte {
	b := make([]byte, 2)
	encodeHeader(b, PDEMM, MsgAttachComplete)
	return b
}

// ActivateDefaultBearerRequest is the ESM payload of an attach accept.
type ActivateDefaultBearerRequest struct {
	EBI             uint8
	QCI             uint8
	UEAddr          uint32
	APNAMBRUplink   uint64
	APNAMBRDownlink uint64
}

// Marshal encodes the message.
func (m *ActivateDefaultBearerRequest) Marshal() []byte {
	b := make([]byte, 2+1+1+4+8+8)
	o := encodeHeader(b, PDESM, MsgActivateDefaultBearerRequest)
	b[o] = m.EBI
	b[o+1] = m.QCI
	binary.BigEndian.PutUint32(b[o+2:], m.UEAddr)
	binary.BigEndian.PutUint64(b[o+6:], m.APNAMBRUplink)
	binary.BigEndian.PutUint64(b[o+14:], m.APNAMBRDownlink)
	return b
}

// UnmarshalActivateDefaultBearerRequest decodes the ESM payload.
func UnmarshalActivateDefaultBearerRequest(b []byte) (*ActivateDefaultBearerRequest, error) {
	h, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if h.PD != PDESM || h.Type != MsgActivateDefaultBearerRequest {
		return nil, ErrBadType
	}
	body := b[h.BodyOff:]
	if len(body) < 1+1+4+8+8 {
		return nil, ErrShort
	}
	return &ActivateDefaultBearerRequest{
		EBI:             body[0],
		QCI:             body[1],
		UEAddr:          binary.BigEndian.Uint32(body[2:]),
		APNAMBRUplink:   binary.BigEndian.Uint64(body[6:]),
		APNAMBRDownlink: binary.BigEndian.Uint64(body[14:]),
	}, nil
}

// MarshalProtected wraps a plain NAS message in an integrity-protected
// frame: security octet, MAC, sequence, inner message. mac is the HMAC
// tag computed by the caller's security context over seq||inner.
func MarshalProtected(inner []byte, mac uint32, seq uint8) []byte {
	b := make([]byte, 6+len(inner))
	b[0] = SecHdrIntegrity<<4 | PDEMM
	binary.BigEndian.PutUint32(b[1:5], mac)
	b[5] = seq
	copy(b[6:], inner)
	return b
}

// UnwrapProtected strips an integrity-protected frame, returning the inner
// plain message, the MAC and the sequence number. Plain messages pass
// through unchanged with ok=false.
func UnwrapProtected(b []byte) (inner []byte, mac uint32, seq uint8, ok bool, err error) {
	if len(b) < 2 {
		return nil, 0, 0, false, ErrShort
	}
	if b[0]>>4 == SecHdrPlain {
		return b, 0, 0, false, nil
	}
	if len(b) < 6 {
		return nil, 0, 0, false, ErrShort
	}
	return b[6:], binary.BigEndian.Uint32(b[1:5]), b[5], true, nil
}

// ComputeMAC derives the 32-bit message authentication code for an
// integrity-protected NAS message: HMAC-SHA256 over seq||message keyed by
// KASME, truncated — the EIA2-shaped construction this reproduction uses
// in place of AES-CMAC.
func ComputeMAC(kasme [32]byte, seq uint8, msg []byte) uint32 {
	mac := hmac.New(sha256.New, kasme[:])
	mac.Write([]byte{seq})
	mac.Write(msg)
	sum := mac.Sum(nil)
	return binary.BigEndian.Uint32(sum[:4])
}
