package nas

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAttachRequestRoundTrip(t *testing.T) {
	esm := []byte{0xde, 0xad}
	m := &AttachRequest{IMSI: 310150123456789, UENetworkCapability: 0x8020, ESMContainer: esm}
	got, err := UnmarshalAttachRequest(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.IMSI != m.IMSI || got.GUTI != 0 || got.UENetworkCapability != m.UENetworkCapability ||
		!bytes.Equal(got.ESMContainer, esm) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestAttachRequestWithGUTI(t *testing.T) {
	m := &AttachRequest{GUTI: 0xfeedface}
	got, err := UnmarshalAttachRequest(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.GUTI != 0xfeedface {
		t.Fatalf("GUTI = %#x", got.GUTI)
	}
}

func TestAttachRequestRejectsWrongType(t *testing.T) {
	m := (&AuthenticationResponse{}).Marshal()
	if _, err := UnmarshalAttachRequest(m); err != ErrBadType {
		t.Fatalf("wrong type: %v", err)
	}
	if _, err := UnmarshalAttachRequest([]byte{0x07}); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	// ESM length beyond the buffer.
	enc := (&AttachRequest{IMSI: 1}).Marshal()
	enc[len(enc)-1] = 0xff // corrupt ESM length low byte
	enc[len(enc)-2] = 0xff
	if _, err := UnmarshalAttachRequest(enc); err != ErrMalformed {
		t.Fatalf("bad esm len: %v", err)
	}
}

func TestAuthenticationRoundTrip(t *testing.T) {
	req := &AuthenticationRequest{KSI: 3}
	copy(req.RAND[:], bytes.Repeat([]byte{0xaa}, 16))
	copy(req.AUTN[:], bytes.Repeat([]byte{0xbb}, 16))
	got, err := UnmarshalAuthenticationRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *req {
		t.Fatalf("round trip: %+v", got)
	}
	resp := &AuthenticationResponse{RES: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}}
	got2, err := UnmarshalAuthenticationResponse(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got2 != *resp {
		t.Fatalf("resp round trip: %+v", got2)
	}
}

func TestSecurityModeRoundTrip(t *testing.T) {
	cmd := &SecurityModeCommand{SelectedAlgorithms: 0x12, KSI: 1}
	got, err := UnmarshalSecurityModeCommand(cmd.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *cmd {
		t.Fatalf("round trip: %+v", got)
	}
	// Complete is an empty body; header must still parse.
	h, err := DecodeHeader((&SecurityModeComplete{}).Marshal())
	if err != nil || h.Type != MsgSecurityModeComplete {
		t.Fatalf("complete: %+v %v", h, err)
	}
}

func TestAttachAcceptRoundTrip(t *testing.T) {
	esm := (&ActivateDefaultBearerRequest{EBI: 5, QCI: 9, UEAddr: 0x0a00002a, APNAMBRUplink: 10e6, APNAMBRDownlink: 50e6}).Marshal()
	m := &AttachAccept{GUTI: 42, TAI: 7, TAIList: []uint16{7, 8, 9}, ESMContainer: esm}
	got, err := UnmarshalAttachAccept(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.GUTI != 42 || got.TAI != 7 || len(got.TAIList) != 3 || got.TAIList[2] != 9 {
		t.Fatalf("round trip: %+v", got)
	}
	bearer, err := UnmarshalActivateDefaultBearerRequest(got.ESMContainer)
	if err != nil {
		t.Fatal(err)
	}
	if bearer.EBI != 5 || bearer.QCI != 9 || bearer.UEAddr != 0x0a00002a ||
		bearer.APNAMBRUplink != 10e6 || bearer.APNAMBRDownlink != 50e6 {
		t.Fatalf("bearer: %+v", bearer)
	}
}

func TestProtectedWrapUnwrap(t *testing.T) {
	inner := (&AttachComplete{}).Marshal()
	wrapped := MarshalProtected(inner, 0xdeadbeef, 7)
	got, mac, seq, ok, err := UnwrapProtected(wrapped)
	if err != nil || !ok {
		t.Fatalf("unwrap: ok=%v err=%v", ok, err)
	}
	if mac != 0xdeadbeef || seq != 7 || !bytes.Equal(got, inner) {
		t.Fatalf("unwrap: mac=%#x seq=%d", mac, seq)
	}
	// Plain messages pass through.
	got2, _, _, ok, err := UnwrapProtected(inner)
	if err != nil || ok || !bytes.Equal(got2, inner) {
		t.Fatalf("plain passthrough: ok=%v err=%v", ok, err)
	}
	// Header of the protected frame decodes with inner type visible.
	h, err := DecodeHeader(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if h.SecurityHeader != SecHdrIntegrity || h.Type != MsgAttachComplete || h.MAC != 0xdeadbeef {
		t.Fatalf("protected header: %+v", h)
	}
}

func TestDecodeHeaderShortInputs(t *testing.T) {
	if _, err := DecodeHeader(nil); err != ErrShort {
		t.Fatalf("nil: %v", err)
	}
	if _, err := DecodeHeader([]byte{SecHdrIntegrity<<4 | PDEMM, 1, 2}); err != ErrShort {
		t.Fatalf("truncated protected: %v", err)
	}
}

// Property: attach request marshal/unmarshal round-trips arbitrary ids and
// containers.
func TestAttachRequestProperty(t *testing.T) {
	f := func(imsi, guti uint64, cap uint16, esm []byte) bool {
		if len(esm) > 4096 {
			esm = esm[:4096]
		}
		m := &AttachRequest{IMSI: imsi, GUTI: guti, UENetworkCapability: cap, ESMContainer: esm}
		got, err := UnmarshalAttachRequest(m.Marshal())
		if err != nil {
			return false
		}
		return got.IMSI == imsi && got.GUTI == guti && got.UENetworkCapability == cap &&
			bytes.Equal(got.ESMContainer, esm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: unmarshal never panics on arbitrary bytes.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		UnmarshalAttachRequest(b)
		UnmarshalAttachAccept(b)
		UnmarshalAuthenticationRequest(b)
		UnmarshalAuthenticationResponse(b)
		UnmarshalSecurityModeCommand(b)
		UnmarshalActivateDefaultBearerRequest(b)
		UnwrapProtected(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAttachRequestParse(b *testing.B) {
	esm := (&ActivateDefaultBearerRequest{EBI: 5, QCI: 9}).Marshal()
	wire := (&AttachRequest{IMSI: 310150123456789, ESMContainer: esm}).Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalAttachRequest(wire); err != nil {
			b.Fatal(err)
		}
	}
}
