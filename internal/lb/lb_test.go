package lb

import (
	"fmt"
	"testing"
	"time"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("pepc-node-%d", i)
	}
	return out
}

func TestPickIsDeterministic(t *testing.T) {
	b, err := New(names(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 100; key++ {
		i1, n1, err := b.Pick(key)
		if err != nil {
			t.Fatal(err)
		}
		i2, n2, _ := b.Pick(key)
		if i1 != i2 || n1 != n2 {
			t.Fatalf("key %d: unstable pick", key)
		}
	}
}

func TestEmptyBalancer(t *testing.T) {
	b, err := New(nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Pick(1); err != ErrNoBackends {
		t.Fatalf("empty pick: %v", err)
	}
}

func TestDuplicateBackendRejected(t *testing.T) {
	if _, err := New([]string{"a", "a"}, 64); err != ErrDuplicate {
		t.Fatalf("dup at construction: %v", err)
	}
	b, _ := New([]string{"a"}, 64)
	if err := b.Add("a"); err != ErrDuplicate {
		t.Fatalf("dup add: %v", err)
	}
	if err := b.Remove("zzz"); err != ErrUnknown {
		t.Fatalf("remove unknown: %v", err)
	}
}

func TestLoadBalanceEvenness(t *testing.T) {
	const nodes = 5
	b, _ := New(names(nodes), 0)
	counts := make([]int, nodes)
	const keys = 100000
	for key := uint64(0); key < keys; key++ {
		i, _, err := b.Pick(key)
		if err != nil {
			t.Fatal(err)
		}
		counts[i]++
	}
	want := keys / nodes
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("node %d holds %d keys, want ~%d (±10%%)", i, c, want)
		}
	}
}

func TestMinimalDisruptionOnMembershipChange(t *testing.T) {
	// Maglev's property: removing one of N backends remaps ~1/N of keys
	// plus a small reshuffle; the vast majority keep their node.
	const nodes = 8
	b, _ := New(names(nodes), 0)
	const keys = 50000
	before := make([]int, keys)
	for k := range before {
		before[k], _, _ = b.Pick(uint64(k))
	}
	if err := b.Remove("pepc-node-3"); err != nil {
		t.Fatal(err)
	}
	// Map old indexes to names for comparison (index 3 removed shifts
	// later indexes).
	oldNames := names(nodes)
	moved := 0
	for k := range before {
		_, name, _ := b.Pick(uint64(k))
		if name != oldNames[before[k]] {
			moved++
		}
	}
	// At least 1/nodes must move (their node is gone); at most ~2/nodes
	// may move for Maglev's table size tradeoff.
	if moved < keys/nodes {
		t.Fatalf("only %d keys moved; the removed node's share is %d", moved, keys/nodes)
	}
	if moved > keys*2/nodes {
		t.Fatalf("%d of %d keys moved, too much disruption", moved, keys)
	}
}

func TestKeySpacesAreIndependent(t *testing.T) {
	b, _ := New(names(3), 0)
	// The same 32-bit value as TEID vs UE IP may map differently
	// (separate key spaces).
	differs := false
	for v := uint32(0); v < 1000; v++ {
		i1, _, _ := b.PickTEID(v)
		i2, _, _ := b.PickUEIP(v)
		if i1 != i2 {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("TEID and UE IP key spaces collide everywhere")
	}
}

func TestAddBackendRebalances(t *testing.T) {
	b, _ := New(names(2), 0)
	if err := b.Add("pepc-node-2"); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for k := uint64(0); k < 30000; k++ {
		_, name, _ := b.Pick(k)
		counts[name]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d backends receive traffic", len(counts))
	}
	for name, c := range counts {
		if c < 8000 {
			t.Fatalf("backend %s underloaded: %d", name, c)
		}
	}
	if got := len(b.Backends()); got != 3 {
		t.Fatalf("backends = %d", got)
	}
}

func BenchmarkPick(b *testing.B) {
	bal, _ := New(names(8), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bal.Pick(uint64(i))
	}
}

func TestNonPrimeTableSizeTerminates(t *testing.T) {
	// A composite requested size (64) must not hang rebuild: the size is
	// rounded up to a prime so every permutation covers the whole table.
	done := make(chan struct{})
	go func() {
		defer close(done)
		b, err := New([]string{"a"}, 64)
		if err != nil {
			t.Errorf("New: %v", err)
			return
		}
		if _, _, err := b.Pick(1); err != nil {
			t.Errorf("Pick: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("rebuild hung on composite table size")
	}
}

func TestNextPrime(t *testing.T) {
	for in, want := range map[int]int{0: 2, 2: 2, 64: 67, 65537: 65537, 100: 101} {
		if got := nextPrime(in); got != want {
			t.Fatalf("nextPrime(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPickBatchMatchesPick(t *testing.T) {
	b, _ := New(names(6), 0)
	const n = 4096
	keys := make([]uint64, n)
	out := make([]int32, n)
	for i := range keys {
		keys[i] = uint64(i) * 2654435761
	}
	if err := b.PickBatch(keys, out); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		want, _, err := b.Pick(k)
		if err != nil {
			t.Fatal(err)
		}
		if int(out[i]) != want {
			t.Fatalf("key %#x: batch picked %d, Pick picked %d", k, out[i], want)
		}
	}
	if err := b.PickBatch(keys, out[:n-1]); err != ErrShortBatch {
		t.Fatalf("short out batch: %v", err)
	}
}

func TestPickBatchZeroAlloc(t *testing.T) {
	b, _ := New(names(8), 0)
	keys := make([]uint64, 64)
	out := make([]int32, 64)
	for i := range keys {
		keys[i] = uint64(i) << 17
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := b.PickBatch(keys, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PickBatch allocates %.1f per burst, want 0", allocs)
	}
}

// tableRemap counts lookup-table entries whose owner changed between two
// snapshots.
func tableRemap(before, after []int32) int {
	moved := 0
	for i := range before {
		if before[i] != after[i] {
			moved++
		}
	}
	return moved
}

func TestDisruptionBoundOverTableEntries(t *testing.T) {
	// Maglev's remap guarantee, asserted over the table itself (not a key
	// sample): removing one of N backends may change at most ~2*M/N of
	// the M table entries (the leaver's ~M/N share plus a reshuffle of
	// comparable size; Eisenbud et al. measure the reshuffle well under
	// the share itself at M >= 100*N). Adding it back is symmetric. Note
	// indices shift on Remove, so the comparison maps indices to names.
	const nodes = 8
	b, _ := New(names(nodes), 0)
	m := b.TableSize()
	nameAt := func(snap []int32, i int, members []string) string {
		if snap[i] < 0 {
			return ""
		}
		return members[snap[i]]
	}
	before := b.TableSnapshot()
	beforeMembers := b.Backends()
	if err := b.Remove("pepc-node-5"); err != nil {
		t.Fatal(err)
	}
	after := b.TableSnapshot()
	afterMembers := b.Backends()
	moved := 0
	for i := 0; i < m; i++ {
		if nameAt(before, i, beforeMembers) != nameAt(after, i, afterMembers) {
			moved++
		}
	}
	bound := 2 * m / nodes
	if moved > bound {
		t.Fatalf("remove: %d of %d table entries remapped, Maglev bound %d", moved, m, bound)
	}
	if moved < m/nodes*9/10 {
		t.Fatalf("remove: only %d entries remapped; the leaver owned ~%d", moved, m/nodes)
	}
	// Adding a new backend to N members claims ~M/(N+1) entries, bounded
	// the same way.
	before, beforeMembers = after, afterMembers
	if err := b.Add("pepc-node-8"); err != nil {
		t.Fatal(err)
	}
	after = b.TableSnapshot()
	afterMembers = b.Backends()
	moved = 0
	for i := 0; i < m; i++ {
		if nameAt(before, i, beforeMembers) != nameAt(after, i, afterMembers) {
			moved++
		}
	}
	if bound := 2 * m / nodes; moved > bound {
		t.Fatalf("add: %d of %d table entries remapped, Maglev bound %d", moved, m, bound)
	}
}

func TestEmptyAddRemoveLifecycle(t *testing.T) {
	// empty → Add → Remove-to-empty: every stage must answer with the
	// typed error rather than panic or steer to a ghost backend.
	b, err := New(nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{1, 2, 3}
	out := make([]int32, 3)
	if err := b.PickBatch(keys, out); err != ErrNoBackends {
		t.Fatalf("empty PickBatch: %v", err)
	}
	for _, e := range b.TableSnapshot() {
		if e != -1 {
			t.Fatalf("empty table entry = %d, want -1", e)
		}
	}
	if err := b.Add("only"); err != nil {
		t.Fatal(err)
	}
	if _, name, err := b.Pick(7); err != nil || name != "only" {
		t.Fatalf("single-backend pick: %q, %v", name, err)
	}
	if err := b.PickBatch(keys, out); err != nil {
		t.Fatal(err)
	}
	for _, o := range out {
		if o != 0 {
			t.Fatalf("single-backend batch pick = %d", o)
		}
	}
	if err := b.Remove("only"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Pick(7); err != ErrNoBackends {
		t.Fatalf("all-removed pick: %v", err)
	}
	if err := b.PickBatch(keys, out); err != ErrNoBackends {
		t.Fatalf("all-removed PickBatch: %v", err)
	}
	if err := b.Remove("only"); err != ErrUnknown {
		t.Fatalf("double remove: %v", err)
	}
	for _, e := range b.TableSnapshot() {
		if e != -1 {
			t.Fatalf("all-removed table entry = %d, want -1", e)
		}
	}
	// The set must be rebuildable after total drain.
	if err := b.Add("again"); err != nil {
		t.Fatal(err)
	}
	if _, name, err := b.Pick(7); err != nil || name != "again" {
		t.Fatalf("re-add pick: %q, %v", name, err)
	}
}
