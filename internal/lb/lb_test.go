package lb

import (
	"fmt"
	"testing"
	"time"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("pepc-node-%d", i)
	}
	return out
}

func TestPickIsDeterministic(t *testing.T) {
	b, err := New(names(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 100; key++ {
		i1, n1, err := b.Pick(key)
		if err != nil {
			t.Fatal(err)
		}
		i2, n2, _ := b.Pick(key)
		if i1 != i2 || n1 != n2 {
			t.Fatalf("key %d: unstable pick", key)
		}
	}
}

func TestEmptyBalancer(t *testing.T) {
	b, err := New(nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Pick(1); err != ErrNoBackends {
		t.Fatalf("empty pick: %v", err)
	}
}

func TestDuplicateBackendRejected(t *testing.T) {
	if _, err := New([]string{"a", "a"}, 64); err != ErrDuplicate {
		t.Fatalf("dup at construction: %v", err)
	}
	b, _ := New([]string{"a"}, 64)
	if err := b.Add("a"); err != ErrDuplicate {
		t.Fatalf("dup add: %v", err)
	}
	if err := b.Remove("zzz"); err != ErrUnknown {
		t.Fatalf("remove unknown: %v", err)
	}
}

func TestLoadBalanceEvenness(t *testing.T) {
	const nodes = 5
	b, _ := New(names(nodes), 0)
	counts := make([]int, nodes)
	const keys = 100000
	for key := uint64(0); key < keys; key++ {
		i, _, err := b.Pick(key)
		if err != nil {
			t.Fatal(err)
		}
		counts[i]++
	}
	want := keys / nodes
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("node %d holds %d keys, want ~%d (±10%%)", i, c, want)
		}
	}
}

func TestMinimalDisruptionOnMembershipChange(t *testing.T) {
	// Maglev's property: removing one of N backends remaps ~1/N of keys
	// plus a small reshuffle; the vast majority keep their node.
	const nodes = 8
	b, _ := New(names(nodes), 0)
	const keys = 50000
	before := make([]int, keys)
	for k := range before {
		before[k], _, _ = b.Pick(uint64(k))
	}
	if err := b.Remove("pepc-node-3"); err != nil {
		t.Fatal(err)
	}
	// Map old indexes to names for comparison (index 3 removed shifts
	// later indexes).
	oldNames := names(nodes)
	moved := 0
	for k := range before {
		_, name, _ := b.Pick(uint64(k))
		if name != oldNames[before[k]] {
			moved++
		}
	}
	// At least 1/nodes must move (their node is gone); at most ~2/nodes
	// may move for Maglev's table size tradeoff.
	if moved < keys/nodes {
		t.Fatalf("only %d keys moved; the removed node's share is %d", moved, keys/nodes)
	}
	if moved > keys*2/nodes {
		t.Fatalf("%d of %d keys moved, too much disruption", moved, keys)
	}
}

func TestKeySpacesAreIndependent(t *testing.T) {
	b, _ := New(names(3), 0)
	// The same 32-bit value as TEID vs UE IP may map differently
	// (separate key spaces).
	differs := false
	for v := uint32(0); v < 1000; v++ {
		i1, _, _ := b.PickTEID(v)
		i2, _, _ := b.PickUEIP(v)
		if i1 != i2 {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("TEID and UE IP key spaces collide everywhere")
	}
}

func TestAddBackendRebalances(t *testing.T) {
	b, _ := New(names(2), 0)
	if err := b.Add("pepc-node-2"); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for k := uint64(0); k < 30000; k++ {
		_, name, _ := b.Pick(k)
		counts[name]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d backends receive traffic", len(counts))
	}
	for name, c := range counts {
		if c < 8000 {
			t.Fatalf("backend %s underloaded: %d", name, c)
		}
	}
	if got := len(b.Backends()); got != 3 {
		t.Fatalf("backends = %d", got)
	}
}

func BenchmarkPick(b *testing.B) {
	bal, _ := New(names(8), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bal.Pick(uint64(i))
	}
}

func TestNonPrimeTableSizeTerminates(t *testing.T) {
	// A composite requested size (64) must not hang rebuild: the size is
	// rounded up to a prime so every permutation covers the whole table.
	done := make(chan struct{})
	go func() {
		defer close(done)
		b, err := New([]string{"a"}, 64)
		if err != nil {
			t.Errorf("New: %v", err)
			return
		}
		if _, _, err := b.Pick(1); err != nil {
			t.Errorf("Pick: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("rebuild hung on composite table size")
	}
}

func TestNextPrime(t *testing.T) {
	for in, want := range map[int]int{0: 2, 2: 2, 64: 67, 65537: 65537, 100: 101} {
		if got := nextPrime(in); got != want {
			t.Fatalf("nextPrime(%d) = %d, want %d", in, got, want)
		}
	}
}
