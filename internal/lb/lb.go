// Package lb implements the cluster load balancer fronting a PEPC
// deployment (§3.4): external traffic reaches the cluster's virtual IP
// and is steered to PEPC nodes consistently by user key. The algorithm is
// Maglev consistent hashing (Eisenbud et al., NSDI'16 — one of the
// paper's cited options for the cluster load balancer): each backend
// generates a permutation of the lookup table and backends take turns
// claiming slots, which balances within ~1% while minimizing disruption
// on membership change.
package lb

import (
	"errors"
	"sync"

	"pepc/internal/pkt"
)

// DefaultTableSize is the Maglev lookup-table size; prime, and much
// larger than any plausible node count.
const DefaultTableSize = 65537

// Errors.
var (
	ErrNoBackends = errors.New("lb: no backends")
	ErrDuplicate  = errors.New("lb: backend already present")
	ErrUnknown    = errors.New("lb: backend not present")
	ErrTableSize  = errors.New("lb: table size must be positive")
	ErrShortBatch = errors.New("lb: output batch shorter than key batch")
)

// Balancer maps user keys (TEIDs, UE addresses, IMSIs) to backend PEPC
// nodes. Lookups are lock-free against a published table; membership
// changes rebuild and republish it.
type Balancer struct {
	mu       sync.RWMutex
	backends []string
	table    []int32
	size     int
}

// New returns a balancer over the given backends. The table size is
// rounded up to the next prime: Maglev's per-backend permutations are
// (offset + n*skip) mod size, which only visit every slot when skip and
// size are coprime — a prime size guarantees that for every skip.
func New(backends []string, tableSize int) (*Balancer, error) {
	if tableSize <= 0 {
		tableSize = DefaultTableSize
	}
	tableSize = nextPrime(tableSize)
	b := &Balancer{size: tableSize}
	for _, name := range backends {
		for _, existing := range b.backends {
			if existing == name {
				return nil, ErrDuplicate
			}
		}
		b.backends = append(b.backends, name)
	}
	b.rebuild()
	return b, nil
}

// Backends returns the current membership.
func (b *Balancer) Backends() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]string(nil), b.backends...)
}

// Add inserts a backend and rebuilds the table.
func (b *Balancer) Add(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, existing := range b.backends {
		if existing == name {
			return ErrDuplicate
		}
	}
	b.backends = append(b.backends, name)
	b.rebuild()
	return nil
}

// Remove deletes a backend and rebuilds the table.
func (b *Balancer) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, existing := range b.backends {
		if existing == name {
			b.backends = append(b.backends[:i], b.backends[i+1:]...)
			b.rebuild()
			return nil
		}
	}
	return ErrUnknown
}

// Pick returns the backend index and name for a key.
func (b *Balancer) Pick(key uint64) (int, string, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.backends) == 0 {
		return 0, "", ErrNoBackends
	}
	idx := b.table[pkt.HashUint64(key)%uint64(b.size)]
	return int(idx), b.backends[idx], nil
}

// PickBatch resolves a burst of keys into backend indices in one lock
// acquisition: out[i] is the index of keys[i]'s owner (as Pick's first
// return). The steering hot path calls this once per rx burst, so it
// must not allocate: out must already have len(keys) entries (the call
// errors otherwise rather than growing it).
func (b *Balancer) PickBatch(keys []uint64, out []int32) error {
	if len(out) < len(keys) {
		return ErrShortBatch
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.backends) == 0 {
		return ErrNoBackends
	}
	tbl, size := b.table, uint64(b.size)
	for i, k := range keys {
		out[i] = tbl[pkt.HashUint64(k)%size]
	}
	return nil
}

// PickTEID steers uplink traffic.
func (b *Balancer) PickTEID(teid uint32) (int, string, error) {
	return b.Pick(uint64(teid) | 1<<40)
}

// PickUEIP steers downlink traffic.
func (b *Balancer) PickUEIP(ip uint32) (int, string, error) {
	return b.Pick(uint64(ip) | 2<<40)
}

// PickIMSI steers signaling.
func (b *Balancer) PickIMSI(imsi uint64) (int, string, error) {
	return b.Pick(imsi)
}

// TableSnapshot copies the current lookup table: entry i is the backend
// index owning table slot i, or -1 when no backends exist. Diagnostics
// and disruption accounting only (the tests assert Maglev's remap bound
// over it); the hot path never calls it.
func (b *Balancer) TableSnapshot() []int32 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]int32, len(b.table))
	if len(b.backends) == 0 {
		for i := range out {
			out[i] = -1
		}
		return out
	}
	copy(out, b.table)
	return out
}

// TableSize returns the (prime-rounded) lookup table size.
func (b *Balancer) TableSize() int { return b.size }

// Len returns the current backend count.
func (b *Balancer) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.backends)
}

// rebuild runs the Maglev population algorithm. Caller holds the write
// lock.
func (b *Balancer) rebuild() {
	n := len(b.backends)
	b.table = make([]int32, b.size)
	if n == 0 {
		// All backends removed: poison the table so any path that
		// bypasses the ErrNoBackends guard fails loudly (index -1)
		// instead of silently steering everything to a stale backend 0.
		for i := range b.table {
			b.table[i] = -1
		}
		return
	}
	// Per-backend permutation parameters derived from the backend name.
	offsets := make([]uint64, n)
	skips := make([]uint64, n)
	for i, name := range b.backends {
		h := hashString(name)
		offsets[i] = h % uint64(b.size)
		skips[i] = h/uint64(b.size)%uint64(b.size-1) + 1
	}
	next := make([]uint64, n)
	for i := range b.table {
		b.table[i] = -1
		_ = i
	}
	filled := 0
	for filled < b.size {
		for i := 0; i < n && filled < b.size; i++ {
			// Walk backend i's permutation to its next unclaimed slot.
			for {
				c := (offsets[i] + next[i]*skips[i]) % uint64(b.size)
				next[i]++
				if b.table[c] < 0 {
					b.table[c] = int32(i)
					filled++
					break
				}
			}
		}
	}
}

// nextPrime returns the smallest prime >= n.
func nextPrime(n int) int {
	if n < 2 {
		return 2
	}
	for {
		if isPrime(n) {
			return n
		}
		n++
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// Avoid degenerate skip values.
	return pkt.HashUint64(h)
}
