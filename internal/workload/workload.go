// Package workload generates the traffic and signaling loads of the
// paper's evaluation (§5): GTP-U encapsulated uplink packets and plain IP
// downlink packets across configurable user populations, packet sizes and
// uplink:downlink ratios (Table 2), plus signaling-event schedules
// (attach requests, S1 handovers) at controlled rates, and the device
// population models of the two-level-table and IoT experiments (§7.3,
// §7.4).
package workload

import (
	"math/rand"

	"pepc/internal/gtp"
	"pepc/internal/pkt"
)

// Table 2: evaluation parameters and default values.
const (
	// DefaultUplinkRatio:DefaultDownlinkRatio is the uplink:downlink
	// traffic mix (1:3).
	DefaultUplinkRatio   = 1
	DefaultDownlinkRatio = 3
	// DefaultDownlinkSize is the downlink packet size in bytes.
	DefaultDownlinkSize = 64
	// DefaultUplinkSize is the uplink (inner) packet size in bytes.
	DefaultUplinkSize = 128
	// DefaultSignalingRate is signaling events per second.
	DefaultSignalingRate = 100_000
	// DefaultUsers is the user population.
	DefaultUsers = 1_000_000
)

// DefaultSignalingEvent is the default signaling event type.
const DefaultSignalingEvent = "attach request"

// User identifies one attached user's data-plane coordinates as the
// generator needs them.
type User struct {
	IMSI       uint64
	UplinkTEID uint32
	UEAddr     uint32
}

// TrafficConfig parameterizes packet generation.
type TrafficConfig struct {
	// UplinkSize/DownlinkSize are inner IP packet sizes in bytes
	// (minimum 28: IPv4 + UDP headers).
	UplinkSize   int
	DownlinkSize int
	// UplinkRatio:DownlinkRatio sets the direction mix of Next.
	UplinkRatio   int
	DownlinkRatio int
	// ENBAddr and CoreAddr form the outer GTP-U addressing.
	ENBAddr  uint32
	CoreAddr uint32
	// Burst emits this many consecutive packets per user before advancing
	// to the next one (eNodeBs and traffic generators emit per-user
	// bursts; flow-run coalescing in the data plane exploits them). 0/1
	// means one packet per user, the fully interleaved worst case.
	Burst int
	// Seed makes user selection deterministic.
	Seed int64
}

func (c TrafficConfig) withDefaults() TrafficConfig {
	if c.UplinkSize < pkt.IPv4HeaderLen+pkt.UDPHeaderLen {
		c.UplinkSize = DefaultUplinkSize
	}
	if c.DownlinkSize < pkt.IPv4HeaderLen+pkt.UDPHeaderLen {
		c.DownlinkSize = DefaultDownlinkSize
	}
	if c.UplinkRatio <= 0 {
		c.UplinkRatio = DefaultUplinkRatio
	}
	if c.DownlinkRatio < 0 {
		c.DownlinkRatio = DefaultDownlinkRatio
	}
	if c.ENBAddr == 0 {
		c.ENBAddr = pkt.IPv4Addr(192, 168, 0, 1)
	}
	if c.CoreAddr == 0 {
		c.CoreAddr = pkt.IPv4Addr(172, 16, 0, 1)
	}
	if c.Burst <= 0 {
		c.Burst = 1
	}
	return c
}

// TrafficGen produces packets for a set of users by stamping prebuilt
// templates — the per-packet cost is one bounded copy plus field patches,
// so generation never dominates what is being measured. Not safe for
// concurrent use; create one generator per driving thread.
type TrafficGen struct {
	cfg   TrafficConfig
	users []User
	pool  *pkt.Pool
	// cache fronts the pool with the generator's level of the two-level
	// allocator: one shared-pool interaction per half-cache of packets
	// (the generator is single-threaded by contract).
	cache *pkt.PoolCache

	upTmpl []byte // full outer+GTPU+inner template
	dnTmpl []byte // inner-only template

	rng     *rand.Rand
	idx     int
	burstAt int
	mixPos  int
	mixUp   int
	mixTot  int
}

// NewTrafficGen builds a generator over the given users.
func NewTrafficGen(cfg TrafficConfig, users []User) *TrafficGen {
	cfg = cfg.withDefaults()
	pool := pkt.NewPool(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	g := &TrafficGen{
		cfg:    cfg,
		users:  users,
		pool:   pool,
		cache:  pool.NewCache(pkt.DefaultCacheSize),
		rng:    rand.New(rand.NewSource(cfg.Seed + 1)),
		mixUp:  cfg.UplinkRatio,
		mixTot: cfg.UplinkRatio + cfg.DownlinkRatio,
	}
	g.upTmpl = buildUplinkTemplate(cfg)
	g.dnTmpl = buildDownlinkTemplate(cfg)
	return g
}

// Users returns the generator's population.
func (g *TrafficGen) Users() []User { return g.users }

func buildUplinkTemplate(cfg TrafficConfig) []byte {
	inner := make([]byte, cfg.UplinkSize)
	ip := pkt.IPv4{Length: uint16(cfg.UplinkSize), TTL: 64, Protocol: pkt.ProtoUDP,
		Src: 0 /* patched */, Dst: pkt.IPv4Addr(8, 8, 8, 8)}
	ip.SerializeTo(inner)
	u := pkt.UDP{SrcPort: 40000, DstPort: 80, Length: uint16(cfg.UplinkSize - pkt.IPv4HeaderLen)}
	u.SerializeTo(inner[pkt.IPv4HeaderLen:])
	// Wrap in outer headers once; per-packet we patch the TEID and the
	// inner source address.
	b := pkt.NewBuf(pkt.DefaultBufSize, pkt.DefaultHeadroom)
	b.SetBytes(inner)
	if err := gtp.EncapGPDU(b, 0, cfg.ENBAddr, cfg.CoreAddr); err != nil {
		panic(err)
	}
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out
}

func buildDownlinkTemplate(cfg TrafficConfig) []byte {
	inner := make([]byte, cfg.DownlinkSize)
	ip := pkt.IPv4{Length: uint16(cfg.DownlinkSize), TTL: 64, Protocol: pkt.ProtoUDP,
		Src: pkt.IPv4Addr(8, 8, 8, 8), Dst: 0 /* patched */}
	ip.SerializeTo(inner)
	u := pkt.UDP{SrcPort: 80, DstPort: 40000, Length: uint16(cfg.DownlinkSize - pkt.IPv4HeaderLen)}
	u.SerializeTo(inner[pkt.IPv4HeaderLen:])
	return inner
}

// Offsets of the patched fields within the uplink template.
const (
	upTEIDOff     = pkt.IPv4HeaderLen + pkt.UDPHeaderLen + 4 // GTP-U TEID
	upInnerSrcOff = pkt.IPv4HeaderLen + pkt.UDPHeaderLen + gtp.HeaderLen + 12
)

// NextUplink emits one uplink packet for the next user (round robin).
func (g *TrafficGen) NextUplink() *pkt.Buf {
	u := g.nextUser()
	return g.UplinkFor(u)
}

// UplinkFor emits an uplink packet for a specific user.
func (g *TrafficGen) UplinkFor(u User) *pkt.Buf {
	b := g.cache.Get()
	if err := b.SetBytes(g.upTmpl); err != nil {
		panic(err)
	}
	data := b.Bytes()
	putU32(data[upTEIDOff:], u.UplinkTEID)
	putU32(data[upInnerSrcOff:], u.UEAddr)
	b.Meta.TEID = u.UplinkTEID
	b.Meta.Uplink = true
	return b
}

// NextDownlink emits one downlink packet for the next user.
func (g *TrafficGen) NextDownlink() *pkt.Buf {
	u := g.nextUser()
	return g.DownlinkFor(u)
}

// DownlinkFor emits a downlink packet for a specific user.
func (g *TrafficGen) DownlinkFor(u User) *pkt.Buf {
	b := g.cache.Get()
	if err := b.SetBytes(g.dnTmpl); err != nil {
		panic(err)
	}
	data := b.Bytes()
	putU32(data[16:], u.UEAddr) // inner dst
	b.Meta.UEIP = u.UEAddr
	return b
}

// Next emits the next packet honoring the uplink:downlink ratio,
// reporting the direction.
func (g *TrafficGen) Next() (*pkt.Buf, bool) {
	up := g.mixPos < g.mixUp
	g.mixPos++
	if g.mixPos >= g.mixTot {
		g.mixPos = 0
	}
	if up {
		return g.NextUplink(), true
	}
	return g.NextDownlink(), false
}

// nextUser cycles the population round robin, emitting cfg.Burst
// consecutive packets per user before advancing. Burst=1 touches every
// user's state in turn, the worst (most cache-hostile) access pattern,
// matching the paper's uniform distribution of traffic across devices;
// Burst>1 models per-user bursts as emitted by real eNodeBs, producing
// the flow runs that the data plane's run coalescing exploits.
func (g *TrafficGen) nextUser() User {
	u := g.users[g.idx]
	g.burstAt++
	if g.burstAt >= g.cfg.Burst {
		g.burstAt = 0
		g.idx++
		if g.idx >= len(g.users) {
			g.idx = 0
		}
	}
	return u
}

// ZipfUser returns a user drawn from a zipfian popularity distribution
// (skewed access patterns for cache-sensitivity experiments).
func (g *TrafficGen) ZipfUser(s float64) User {
	if s <= 1 {
		s = 1.2
	}
	z := rand.NewZipf(g.rng, s, 1, uint64(len(g.users)-1))
	return g.users[z.Uint64()]
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// --- Signaling schedules ---

// EventKind is a signaling event type.
type EventKind uint8

// Signaling event kinds.
const (
	EventAttach EventKind = iota
	EventS1Handover
	EventDetach
)

// Event is one scheduled signaling event.
type Event struct {
	Kind EventKind
	IMSI uint64
}

// SignalingGen produces signaling events uniformly across a population
// (§5.1: "the control updates are uniformly distributed across the number
// of user devices").
type SignalingGen struct {
	kind  EventKind
	users []User
	idx   int
	// enbSeq varies the handover target per event.
	enbSeq uint32
}

// NewSignalingGen builds a generator emitting kind events over users.
func NewSignalingGen(kind EventKind, users []User) *SignalingGen {
	return &SignalingGen{kind: kind, users: users}
}

// Next returns the next event.
func (sg *SignalingGen) Next() Event {
	u := sg.users[sg.idx]
	sg.idx++
	if sg.idx >= len(sg.users) {
		sg.idx = 0
	}
	return Event{Kind: sg.kind, IMSI: u.IMSI}
}

// NextHandoverTarget returns varying eNodeB endpoint parameters for a
// handover event.
func (sg *SignalingGen) NextHandoverTarget() (enbAddr, dlTEID, ecgi uint32) {
	sg.enbSeq++
	return pkt.IPv4Addr(192, 168, byte(sg.enbSeq>>8), byte(sg.enbSeq)),
		0x0200_0000 | sg.enbSeq, sg.enbSeq & 0xffff
}

// --- Population models (§7.3, §7.4) ---

// Population describes the device mix of an experiment.
type Population struct {
	Total int
	// AlwaysOnFraction of devices stay resident in the primary table.
	AlwaysOnFraction float64
	// ChurnPerSecond is the fraction of all devices moving into (and
	// out of) the primary table per second ("low churn" 0.01, "high
	// churn" 0.10 in Fig 14).
	ChurnPerSecond float64
	// IoTFraction of devices are stateless-IoT (§7.4).
	IoTFraction float64
}

// AlwaysOn returns the count of always-on devices.
func (p Population) AlwaysOn() int {
	return int(float64(p.Total) * p.AlwaysOnFraction)
}

// ChurnPerTick returns how many devices churn in a tick of dt seconds.
func (p Population) ChurnPerTick(dt float64) int {
	return int(float64(p.Total) * p.ChurnPerSecond * dt)
}

// IoTCount returns the count of stateless-IoT devices.
func (p Population) IoTCount() int {
	return int(float64(p.Total) * p.IoTFraction)
}
