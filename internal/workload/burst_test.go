package workload

import (
	"testing"

	"pepc/internal/gtp"
)

// TestBurstEmitsRunsPerUser: Burst=n yields n consecutive packets per
// user before advancing, wrapping round-robin over the population — the
// run structure flow-run coalescing feeds on.
func TestBurstEmitsRunsPerUser(t *testing.T) {
	users := testUsers(3)
	g := NewTrafficGen(TrafficConfig{Burst: 4}, users)
	for round := 0; round < 2; round++ {
		for u := 0; u < len(users); u++ {
			for k := 0; k < 4; k++ {
				b := g.NextUplink()
				teid, err := gtp.PeekTEID(b.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				if teid != users[u].UplinkTEID {
					t.Fatalf("round %d user %d pkt %d: teid %#x, want %#x",
						round, u, k, teid, users[u].UplinkTEID)
				}
				b.Free()
			}
		}
	}
}

// TestBurstDefaultIsInterleaved: unset/zero Burst keeps the historical
// one-packet-per-user round robin.
func TestBurstDefaultIsInterleaved(t *testing.T) {
	users := testUsers(3)
	for _, burst := range []int{0, 1} {
		g := NewTrafficGen(TrafficConfig{Burst: burst}, users)
		for i := 0; i < 9; i++ {
			b := g.NextUplink()
			teid, _ := gtp.PeekTEID(b.Bytes())
			if teid != users[i%3].UplinkTEID {
				t.Fatalf("burst=%d pkt %d: teid %#x, want %#x", burst, i, teid, users[i%3].UplinkTEID)
			}
			b.Free()
		}
	}
}

// TestBurstAppliesToDownlink: the downlink direction shares the same
// user-advance state, so bursts hold there too.
func TestBurstAppliesToDownlink(t *testing.T) {
	users := testUsers(2)
	g := NewTrafficGen(TrafficConfig{Burst: 3}, users)
	var seen []uint32
	for i := 0; i < 6; i++ {
		b := g.NextDownlink()
		seen = append(seen, b.Meta.UEIP)
		b.Free()
	}
	for i, ip := range seen {
		want := users[(i/3)%2].UEAddr
		if ip != want {
			t.Fatalf("pkt %d: ueip %#x, want %#x", i, ip, want)
		}
	}
}
