package workload

import (
	"testing"

	"pepc/internal/gtp"
	"pepc/internal/pkt"
)

func testUsers(n int) []User {
	users := make([]User, n)
	for i := range users {
		users[i] = User{
			IMSI:       uint64(1000 + i),
			UplinkTEID: 0x10000000 | uint32(i+1),
			UEAddr:     pkt.IPv4Addr(10, 0, 0, 0) | uint32(i+1),
		}
	}
	return users
}

func TestDefaultParameters(t *testing.T) {
	// Table 2 of the paper.
	if DefaultUplinkRatio != 1 || DefaultDownlinkRatio != 3 {
		t.Fatal("UL:DL default must be 1:3")
	}
	if DefaultDownlinkSize != 64 || DefaultUplinkSize != 128 {
		t.Fatal("packet size defaults must be 64/128 bytes")
	}
	if DefaultSignalingRate != 100_000 {
		t.Fatal("signaling default must be 100K events/s")
	}
	if DefaultUsers != 1_000_000 {
		t.Fatal("user default must be 1M")
	}
	if DefaultSignalingEvent != "attach request" {
		t.Fatal("default signaling event must be attach request")
	}
}

func TestUplinkPacketsAreValidGTPU(t *testing.T) {
	users := testUsers(4)
	g := NewTrafficGen(TrafficConfig{}, users)
	for i := 0; i < 8; i++ {
		b := g.NextUplink()
		want := users[i%4]
		teid, err := gtp.PeekTEID(b.Bytes())
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if teid != want.UplinkTEID {
			t.Fatalf("packet %d: teid %#x, want %#x", i, teid, want.UplinkTEID)
		}
		// Decapsulate and check the inner packet.
		got, err := gtp.DecapGPDU(b)
		if err != nil || got != teid {
			t.Fatalf("decap: %v", err)
		}
		var ip pkt.IPv4
		if err := ip.DecodeFromBytes(b.Bytes()); err != nil {
			t.Fatal(err)
		}
		if ip.Src != want.UEAddr {
			t.Fatalf("inner src = %s, want %s", pkt.FormatIPv4(ip.Src), pkt.FormatIPv4(want.UEAddr))
		}
		if b.Len() != DefaultUplinkSize {
			t.Fatalf("inner size = %d", b.Len())
		}
		b.Free()
	}
}

func TestDownlinkPacketsTargetUser(t *testing.T) {
	users := testUsers(3)
	g := NewTrafficGen(TrafficConfig{DownlinkSize: 64}, users)
	b := g.NextDownlink()
	var ip pkt.IPv4
	if err := ip.DecodeFromBytes(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if ip.Dst != users[0].UEAddr {
		t.Fatalf("dst = %s", pkt.FormatIPv4(ip.Dst))
	}
	if b.Len() != 64 {
		t.Fatalf("size = %d", b.Len())
	}
	b.Free()
}

func TestMixedRatio(t *testing.T) {
	g := NewTrafficGen(TrafficConfig{UplinkRatio: 1, DownlinkRatio: 3}, testUsers(10))
	up, down := 0, 0
	for i := 0; i < 400; i++ {
		b, isUp := g.Next()
		if isUp {
			up++
		} else {
			down++
		}
		b.Free()
	}
	if up != 100 || down != 300 {
		t.Fatalf("mix = %d:%d, want 100:300", up, down)
	}
}

func TestRoundRobinCoversPopulation(t *testing.T) {
	users := testUsers(50)
	g := NewTrafficGen(TrafficConfig{}, users)
	seen := map[uint32]bool{}
	for i := 0; i < 50; i++ {
		b := g.NextUplink()
		teid, _ := gtp.PeekTEID(b.Bytes())
		seen[teid] = true
		b.Free()
	}
	if len(seen) != 50 {
		t.Fatalf("covered %d users", len(seen))
	}
}

func TestZipfUserSkewed(t *testing.T) {
	users := testUsers(1000)
	g := NewTrafficGen(TrafficConfig{Seed: 42}, users)
	counts := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		counts[g.ZipfUser(1.5).IMSI]++
	}
	// The most popular user must dominate a uniform share.
	if counts[users[0].IMSI] < 10000/1000*10 {
		t.Fatalf("zipf head count = %d, not skewed", counts[users[0].IMSI])
	}
}

func TestSignalingGenUniform(t *testing.T) {
	users := testUsers(5)
	sg := NewSignalingGen(EventAttach, users)
	counts := map[uint64]int{}
	for i := 0; i < 100; i++ {
		ev := sg.Next()
		if ev.Kind != EventAttach {
			t.Fatalf("kind = %v", ev.Kind)
		}
		counts[ev.IMSI]++
	}
	for _, u := range users {
		if counts[u.IMSI] != 20 {
			t.Fatalf("user %d got %d events, want 20", u.IMSI, counts[u.IMSI])
		}
	}
}

func TestHandoverTargetsVary(t *testing.T) {
	sg := NewSignalingGen(EventS1Handover, testUsers(2))
	a1, t1, _ := sg.NextHandoverTarget()
	a2, t2, _ := sg.NextHandoverTarget()
	if a1 == a2 || t1 == t2 {
		t.Fatal("handover targets repeat")
	}
}

func TestPopulationModel(t *testing.T) {
	p := Population{Total: 1_000_000, AlwaysOnFraction: 0.01, ChurnPerSecond: 0.10, IoTFraction: 0.25}
	if p.AlwaysOn() != 10_000 {
		t.Fatalf("always-on = %d", p.AlwaysOn())
	}
	if p.ChurnPerTick(0.1) != 10_000 {
		t.Fatalf("churn per 100ms = %d", p.ChurnPerTick(0.1))
	}
	if p.IoTCount() != 250_000 {
		t.Fatalf("IoT = %d", p.IoTCount())
	}
}

func BenchmarkNextUplink(b *testing.B) {
	g := NewTrafficGen(TrafficConfig{}, testUsers(1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := g.NextUplink()
		buf.Free()
	}
}
