package sctp

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"pepc/internal/fault"
)

func establish(t *testing.T, clientCfg, serverCfg Config) (*Assoc, *Assoc, *PipeWire, *PipeWire) {
	t.Helper()
	cw, sw := Pipe(4096)
	var server *Assoc
	var serr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, serr = Accept(sw, serverCfg)
	}()
	client, err := Dial(cw, clientCfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	<-done
	if serr != nil {
		t.Fatalf("accept: %v", serr)
	}
	t.Cleanup(func() {
		client.Close()
		server.Close()
		cw.Close()
	})
	return client, server, cw, sw
}

func TestPacketCodecRoundTrip(t *testing.T) {
	h := Header{SrcPort: 36412, DstPort: 36412, VTag: 0xfeed}
	pktBytes := marshalPacket(h, marshalData(DataChunk{TSN: 5, Stream: 1, Seq: 2, PPID: PPIDS1AP, Payload: []byte("hi")}))
	gh, chunks, err := unmarshalPacket(pktBytes)
	if err != nil {
		t.Fatal(err)
	}
	if gh != h || len(chunks) != 1 || chunks[0].Type != ChunkData {
		t.Fatalf("decode: %+v %+v", gh, chunks)
	}
	d, err := parseData(chunks[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.TSN != 5 || d.Stream != 1 || d.Seq != 2 || d.PPID != PPIDS1AP || string(d.Payload) != "hi" {
		t.Fatalf("data: %+v", d)
	}
}

func TestPacketChecksumDetectsCorruption(t *testing.T) {
	pktBytes := marshalPacket(Header{VTag: 1}, Chunk{Type: ChunkHeartbeat})
	pktBytes[len(pktBytes)-1] ^= 0xff
	if _, _, err := unmarshalPacket(pktBytes); err != ErrBadChecksum {
		t.Fatalf("want ErrBadChecksum, got %v", err)
	}
}

func TestPacketMultipleChunksWithPadding(t *testing.T) {
	// Chunk values of non-multiple-of-4 lengths force padding between
	// chunks.
	h := Header{VTag: 9}
	pktBytes := marshalPacket(h,
		Chunk{Type: ChunkHeartbeat, Value: []byte{1, 2, 3}}, // padded to 4
		Chunk{Type: ChunkSack, Value: make([]byte, 12)},
	)
	_, chunks, err := unmarshalPacket(pktBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 || chunks[0].Type != ChunkHeartbeat || chunks[1].Type != ChunkSack {
		t.Fatalf("chunks: %+v", chunks)
	}
	if !bytes.Equal(chunks[0].Value, []byte{1, 2, 3}) {
		t.Fatalf("value: %v", chunks[0].Value)
	}
}

func TestCookieBakeVerify(t *testing.T) {
	key := []byte("k")
	c := bakeCookie(key, 1, 2, 3, 4)
	pt, ptsn, mt, mtsn, ok := verifyCookie(key, c)
	if !ok || pt != 1 || ptsn != 2 || mt != 3 || mtsn != 4 {
		t.Fatalf("verify: %v %d %d %d %d", ok, pt, ptsn, mt, mtsn)
	}
	c[0] ^= 1
	if _, _, _, _, ok := verifyCookie(key, c); ok {
		t.Fatal("tampered cookie verified")
	}
	if _, _, _, _, ok := verifyCookie(key, c[:10]); ok {
		t.Fatal("short cookie verified")
	}
}

func TestHandshakeAndEcho(t *testing.T) {
	client, server, _, _ := establish(t, Config{Tag: 111, InitTSN: 50}, Config{Tag: 222, InitTSN: 900})
	if err := client.Send(0, PPIDS1AP, []byte("attach request")); err != nil {
		t.Fatal(err)
	}
	m, err := server.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "attach request" || m.PPID != PPIDS1AP {
		t.Fatalf("server got %+v", m)
	}
	if err := server.Send(0, PPIDS1AP, []byte("attach accept")); err != nil {
		t.Fatal(err)
	}
	m, err = client.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "attach accept" {
		t.Fatalf("client got %q", m.Data)
	}
}

func TestOrderedDeliveryManyMessages(t *testing.T) {
	client, server, _, _ := establish(t, Config{}, Config{Tag: 7})
	const n = 2000
	go func() {
		for i := 0; i < n; i++ {
			if err := client.Send(3, PPIDS1AP, []byte(fmt.Sprintf("msg-%06d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := server.RecvTimeout(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		want := fmt.Sprintf("msg-%06d", i)
		if string(m.Data) != want || m.Stream != 3 {
			t.Fatalf("message %d: got %q stream %d", i, m.Data, m.Stream)
		}
	}
}

func TestLossRecoveryRetransmission(t *testing.T) {
	client, server, cw, _ := establish(t, Config{RTO: 20 * time.Millisecond}, Config{Tag: 9})
	// Drop every 3rd outgoing DATA packet after establishment.
	var mu sync.Mutex
	count := 0
	cw.SetDropFn(func(b []byte) bool {
		_, chunks, err := unmarshalPacket(b)
		if err != nil || len(chunks) == 0 || chunks[0].Type != ChunkData {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		count++
		return count%3 == 0
	})
	const n = 300
	go func() {
		for i := 0; i < n; i++ {
			if err := client.Send(0, PPIDS1AP, []byte{byte(i), byte(i >> 8)}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := server.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		got := int(m.Data[0]) | int(m.Data[1])<<8
		if got != i {
			t.Fatalf("out of order after loss: got %d want %d", got, i)
		}
	}
	if client.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions recorded despite injected loss")
	}
}

func TestRetransmissionLimitAborts(t *testing.T) {
	client, _, cw, _ := establish(t, Config{RTO: 5 * time.Millisecond, MaxRetrans: 3}, Config{Tag: 5})
	// Black-hole all DATA from the client.
	cw.SetDropFn(func(b []byte) bool {
		_, chunks, err := unmarshalPacket(b)
		return err == nil && len(chunks) > 0 && chunks[0].Type == ChunkData
	})
	client.Send(0, PPIDS1AP, []byte("doomed"))
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("association did not abort")
		default:
		}
		if client.closed() {
			if err := client.Err(); err != ErrRetransLimit {
				t.Fatalf("terminal error: %v", err)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	client, server, _, _ := establish(t, Config{}, Config{Tag: 3})
	done := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	client.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil error after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	client, _, _, _ := establish(t, Config{}, Config{Tag: 4})
	client.Close()
	time.Sleep(10 * time.Millisecond)
	if err := client.Send(0, PPIDS1AP, []byte("late")); err == nil {
		t.Fatal("send after close succeeded")
	}
}

func TestStatsCount(t *testing.T) {
	client, server, _, _ := establish(t, Config{}, Config{Tag: 8})
	for i := 0; i < 10; i++ {
		client.Send(0, PPIDS1AP, []byte("x"))
	}
	for i := 0; i < 10; i++ {
		if _, err := server.RecvTimeout(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	cs, ss := client.Stats(), server.Stats()
	if cs.MsgsSent != 10 || ss.MsgsReceived != 10 {
		t.Fatalf("stats: client=%+v server=%+v", cs, ss)
	}
	if ss.SacksSent == 0 {
		t.Fatal("server sent no SACKs")
	}
}

func TestWireCloseTerminatesAssociation(t *testing.T) {
	client, _, cw, _ := establish(t, Config{}, Config{Tag: 6})
	cw.Close()
	deadline := time.After(2 * time.Second)
	for !client.closed() {
		select {
		case <-deadline:
			t.Fatal("association survived wire close")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func BenchmarkSendRecv64B(b *testing.B) {
	cw, sw := Pipe(8192)
	var server *Assoc
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, _ = Accept(sw, Config{Tag: 2})
	}()
	client, err := Dial(cw, Config{Tag: 1})
	if err != nil {
		b.Fatal(err)
	}
	<-done
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Send(0, PPIDS1AP, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := server.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	client.Close()
	server.Close()
}

// FaultDropFn threads the deterministic injector into the wire: total
// SCTPLoss black-holes every packet, so the retransmission budget runs
// out and the association reports injected path failure.
func TestFaultInjectedAssociationLoss(t *testing.T) {
	client, _, cw, _ := establish(t, Config{RTO: 5 * time.Millisecond, MaxRetrans: 3}, Config{Tag: 6})
	inj := fault.New(21)
	inj.Arm(fault.SCTPLoss, fault.RateMax)
	cw.SetDropFn(FaultDropFn(inj))
	client.Send(0, PPIDS1AP, []byte("doomed"))
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("association did not abort under injected loss")
		default:
		}
		if client.closed() {
			if err := client.Err(); err != ErrRetransLimit {
				t.Fatalf("terminal error: %v", err)
			}
			if inj.Fired(fault.SCTPLoss) == 0 {
				t.Fatal("injector recorded no drops")
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Partial injected loss must be recovered by retransmission, exactly
// like organic loss.
func TestFaultInjectedLossRecovers(t *testing.T) {
	client, server, cw, _ := establish(t, Config{RTO: 20 * time.Millisecond}, Config{Tag: 11})
	inj := fault.New(5)
	inj.Arm(fault.SCTPLoss, fault.RateMax/5) // ~20% loss
	cw.SetDropFn(FaultDropFn(inj))
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			if err := client.Send(0, PPIDS1AP, []byte{byte(i)}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		m, err := server.RecvTimeout(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if int(m.Data[0]) != i {
			t.Fatalf("out of order: got %d want %d", m.Data[0], i)
		}
	}
}
