package sctp

import (
	"errors"
	"net"
	"sync"

	"pepc/internal/fault"
)

// Wire is the datagram substrate an association runs over. Implementations
// must preserve message boundaries; they may drop or reorder (the
// association's retransmission recovers losses).
type Wire interface {
	// Send transmits one packet. It must not retain b.
	Send(b []byte) error
	// Recv blocks for the next packet.
	Recv() ([]byte, error)
	// Close unblocks pending Recv calls with an error.
	Close() error
}

// ErrWireClosed is returned by Recv/Send on a closed wire.
var ErrWireClosed = errors.New("sctp: wire closed")

// chanWire is an in-memory unidirectional-pair Wire used for in-process
// eNodeB↔core signaling and for tests. DropFn, when set, is consulted per
// packet to inject loss.
type chanWire struct {
	out chan<- []byte
	in  <-chan []byte

	mu     sync.Mutex
	closed chan struct{}
	once   sync.Once

	// DropFn returns true to drop an outgoing packet (loss injection).
	DropFn func(b []byte) bool
}

// Pipe returns two connected in-memory wires with the given queue depth.
func Pipe(depth int) (*PipeWire, *PipeWire) {
	if depth <= 0 {
		depth = 256
	}
	ab := make(chan []byte, depth)
	ba := make(chan []byte, depth)
	closed := make(chan struct{})
	a := &PipeWire{chanWire{out: ab, in: ba, closed: closed}}
	b := &PipeWire{chanWire{out: ba, in: ab, closed: closed}}
	// Each side shares the closed channel: closing either tears down both,
	// matching a broken association.
	return a, b
}

// PipeWire is one end of an in-memory wire pair.
type PipeWire struct {
	chanWire
}

// SetDropFn installs a loss-injection hook (tests).
func (w *PipeWire) SetDropFn(fn func(b []byte) bool) {
	w.mu.Lock()
	w.DropFn = fn
	w.mu.Unlock()
}

// FaultDropFn adapts a fault.Injector to the wire's DropFn hook: each
// outgoing packet consumes one fault.SCTPLoss decision. Persistent loss
// exhausts the association's retransmission budget and surfaces as
// ErrRetransLimit — injected path failure. A nil injector never drops.
func FaultDropFn(inj *fault.Injector) func(b []byte) bool {
	return func([]byte) bool { return inj.Fire(fault.SCTPLoss) }
}

// Send implements Wire.
func (w *chanWire) Send(b []byte) error {
	w.mu.Lock()
	drop := w.DropFn != nil && w.DropFn(b)
	w.mu.Unlock()
	if drop {
		return nil // silently lost, like a network
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	select {
	case w.out <- cp:
		return nil
	case <-w.closed:
		return ErrWireClosed
	}
}

// Recv implements Wire.
func (w *chanWire) Recv() ([]byte, error) {
	select {
	case b := <-w.in:
		return b, nil
	case <-w.closed:
		// Drain anything already queued before reporting closure.
		select {
		case b := <-w.in:
			return b, nil
		default:
			return nil, ErrWireClosed
		}
	}
}

// Close implements Wire.
func (w *chanWire) Close() error {
	w.once.Do(func() { close(w.closed) })
	return nil
}

// UDPWire adapts a connected UDP socket (or any net.Conn with datagram
// semantics) to the Wire interface, for running S1AP across real sockets.
type UDPWire struct {
	Conn net.Conn
	buf  [64 * 1024]byte
}

// NewUDPWire wraps conn.
func NewUDPWire(conn net.Conn) *UDPWire { return &UDPWire{Conn: conn} }

// Send implements Wire.
func (w *UDPWire) Send(b []byte) error {
	_, err := w.Conn.Write(b)
	return err
}

// Recv implements Wire.
func (w *UDPWire) Recv() ([]byte, error) {
	n, err := w.Conn.Read(w.buf[:])
	if err != nil {
		return nil, err
	}
	cp := make([]byte, n)
	copy(cp, w.buf[:n])
	return cp, nil
}

// Close implements Wire.
func (w *UDPWire) Close() error { return w.Conn.Close() }
