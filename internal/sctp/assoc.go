package sctp

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Association errors.
var (
	ErrClosed       = errors.New("sctp: association closed")
	ErrTimeout      = errors.New("sctp: handshake timeout")
	ErrAborted      = errors.New("sctp: association aborted")
	ErrBadCookie    = errors.New("sctp: cookie verification failed")
	ErrRetransLimit = errors.New("sctp: retransmission limit exceeded")
)

// Config parameterizes an association.
type Config struct {
	// SrcPort/DstPort fill the common header (S1AP's registered port is
	// 36412).
	SrcPort, DstPort uint16
	// RTO is the retransmission timeout (default 200ms).
	RTO time.Duration
	// MaxRetrans bounds per-chunk retransmissions before the association
	// aborts (default 8).
	MaxRetrans int
	// HandshakeTimeout bounds Dial/Accept (default 5s).
	HandshakeTimeout time.Duration
	// CookieKey authenticates the stateless INIT-ACK cookie on the
	// server side; a process-wide random key is used when nil.
	CookieKey []byte
	// Window bounds outstanding unacknowledged chunks; Send blocks at
	// the limit (default 4096).
	Window int
	// Tag and InitTSN seed the association identifiers; zero values draw
	// from the config's RNG seed. Deterministic seeding keeps tests and
	// benchmarks reproducible.
	Tag     uint32
	InitTSN uint32
}

func (c Config) withDefaults() Config {
	if c.RTO == 0 {
		c.RTO = 200 * time.Millisecond
	}
	if c.MaxRetrans == 0 {
		c.MaxRetrans = 8
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.Window == 0 {
		c.Window = 4096
	}
	if c.Tag == 0 {
		c.Tag = 0x5ec7b00c
	}
	if c.InitTSN == 0 {
		c.InitTSN = 1000
	}
	if c.CookieKey == nil {
		c.CookieKey = defaultCookieKey[:]
	}
	return c
}

var defaultCookieKey = [32]byte{0x9e, 0x37, 0x79, 0xb9, 0x7f, 0x4a, 0x7c, 0x15}

// Message is one received user message.
type Message struct {
	Stream uint16
	PPID   uint32
	Data   []byte
}

// Stats counts association activity.
type Stats struct {
	MsgsSent      uint64
	MsgsReceived  uint64
	Retransmits   uint64
	DupsReceived  uint64
	SacksSent     uint64
	SacksReceived uint64
}

type outChunk struct {
	tsn     uint32
	bytes   []byte // fully marshalled packet, ready to resend
	sentAt  time.Time
	retries int
}

// Assoc is one established SCTP-lite association.
type Assoc struct {
	wire Wire
	cfg  Config

	myTag   uint32
	peerTag uint32

	sendMu    sync.Mutex
	sendCond  *sync.Cond
	nextTSN   uint32
	streamSeq [64]uint16
	unacked   map[uint32]*outChunk
	lowestOut uint32 // lowest unacked TSN (== cumulative ack + 1)

	cumTSN uint32 // highest cumulatively received TSN
	oo     map[uint32]Message

	recvQ chan Message

	closeOnce sync.Once
	done      chan struct{}
	errMu     sync.Mutex
	err       error

	statsMu sync.Mutex
	stats   Stats
}

// Dial initiates an association over w (client side; the eNodeB role).
func Dial(w Wire, cfg Config) (*Assoc, error) {
	cfg = cfg.withDefaults()
	a := newAssoc(w, cfg)
	deadline := time.Now().Add(cfg.HandshakeTimeout)

	// INIT → INIT-ACK
	init := marshalPacket(Header{SrcPort: cfg.SrcPort, DstPort: cfg.DstPort, VTag: 0},
		marshalInit(a.myTag, a.nextTSN, 64))
	if err := w.Send(init); err != nil {
		return nil, err
	}
	var cookie []byte
	for {
		if time.Now().After(deadline) {
			return nil, ErrTimeout
		}
		pktBytes, err := w.Recv()
		if err != nil {
			return nil, err
		}
		_, chunks, err := unmarshalPacket(pktBytes)
		if err != nil {
			continue
		}
		if len(chunks) == 1 && chunks[0].Type == ChunkInitAck {
			tag, peerTSN, _, ck, perr := parseInitAck(chunks[0])
			if perr != nil {
				continue
			}
			a.peerTag = tag
			a.cumTSN = peerTSN - 1
			cookie = append([]byte(nil), ck...)
			break
		}
	}

	// COOKIE-ECHO → COOKIE-ACK
	echo := marshalPacket(a.header(), Chunk{Type: ChunkCookieEcho, Value: cookie})
	if err := w.Send(echo); err != nil {
		return nil, err
	}
	for {
		if time.Now().After(deadline) {
			return nil, ErrTimeout
		}
		pktBytes, err := w.Recv()
		if err != nil {
			return nil, err
		}
		_, chunks, err := unmarshalPacket(pktBytes)
		if err != nil {
			continue
		}
		if len(chunks) >= 1 && chunks[0].Type == ChunkCookieAck {
			break
		}
	}
	a.start()
	return a, nil
}

// Accept waits for a client handshake on w (server side; the core role).
// The cookie is stateless: no per-INIT state is kept until a valid
// COOKIE-ECHO arrives, SCTP's SYN-flood defence.
func Accept(w Wire, cfg Config) (*Assoc, error) {
	cfg = cfg.withDefaults()
	deadline := time.Now().Add(cfg.HandshakeTimeout)
	var a *Assoc
	for {
		if time.Now().After(deadline) {
			return nil, ErrTimeout
		}
		pktBytes, err := w.Recv()
		if err != nil {
			return nil, err
		}
		hdr, chunks, err := unmarshalPacket(pktBytes)
		if err != nil || len(chunks) == 0 {
			continue
		}
		switch chunks[0].Type {
		case ChunkInit:
			peerTag, peerTSN, _, perr := parseInit(chunks[0])
			if perr != nil {
				continue
			}
			myTag := cfg.Tag ^ peerTag ^ 0xa5a5a5a5
			myTSN := cfg.InitTSN
			cookie := bakeCookie(cfg.CookieKey, peerTag, peerTSN, myTag, myTSN)
			ack := marshalPacket(Header{SrcPort: cfg.SrcPort, DstPort: cfg.DstPort, VTag: peerTag},
				marshalInitAck(myTag, myTSN, 64, cookie))
			if err := w.Send(ack); err != nil {
				return nil, err
			}
		case ChunkCookieEcho:
			peerTag, peerTSN, myTag, myTSN, ok := verifyCookie(cfg.CookieKey, chunks[0].Value)
			if !ok {
				continue
			}
			cfg2 := cfg
			cfg2.Tag = myTag
			cfg2.InitTSN = myTSN
			a = newAssoc(w, cfg2)
			a.peerTag = peerTag
			a.cumTSN = peerTSN - 1
			_ = hdr
			ackPkt := marshalPacket(a.header(), Chunk{Type: ChunkCookieAck})
			if err := w.Send(ackPkt); err != nil {
				return nil, err
			}
			a.start()
			return a, nil
		}
	}
}

func newAssoc(w Wire, cfg Config) *Assoc {
	a := &Assoc{
		wire:    w,
		cfg:     cfg,
		myTag:   cfg.Tag,
		nextTSN: cfg.InitTSN,
		unacked: make(map[uint32]*outChunk),
		oo:      make(map[uint32]Message),
		recvQ:   make(chan Message, 1024),
		done:    make(chan struct{}),
	}
	a.lowestOut = cfg.InitTSN
	a.sendCond = sync.NewCond(&a.sendMu)
	return a
}

func (a *Assoc) header() Header {
	return Header{SrcPort: a.cfg.SrcPort, DstPort: a.cfg.DstPort, VTag: a.peerTag}
}

func (a *Assoc) start() {
	go a.readLoop()
	go a.retransmitLoop()
}

// Send transmits one user message on the given stream. It blocks when the
// retransmission window is full and returns an error once the association
// is closed or aborted.
func (a *Assoc) Send(stream uint16, ppid uint32, data []byte) error {
	a.sendMu.Lock()
	for len(a.unacked) >= a.cfg.Window {
		if a.closed() {
			a.sendMu.Unlock()
			return a.Err()
		}
		a.sendCond.Wait()
	}
	if a.closed() {
		a.sendMu.Unlock()
		return a.Err()
	}
	tsn := a.nextTSN
	a.nextTSN++
	seq := a.streamSeq[stream%64]
	a.streamSeq[stream%64]++
	p := marshalPacket(a.header(), marshalData(DataChunk{
		TSN: tsn, Stream: stream, Seq: seq, PPID: ppid, Payload: data,
	}))
	a.unacked[tsn] = &outChunk{tsn: tsn, bytes: p, sentAt: time.Now()}
	a.sendMu.Unlock()

	a.statsMu.Lock()
	a.stats.MsgsSent++
	a.statsMu.Unlock()
	return a.wire.Send(p)
}

// Recv blocks for the next ordered user message.
func (a *Assoc) Recv() (Message, error) {
	select {
	case m := <-a.recvQ:
		return m, nil
	case <-a.done:
		// Drain already-delivered messages before reporting closure.
		select {
		case m := <-a.recvQ:
			return m, nil
		default:
			return Message{}, a.Err()
		}
	}
}

// RecvTimeout is Recv with a deadline; it returns ErrTimeout when no
// message arrives in time.
func (a *Assoc) RecvTimeout(d time.Duration) (Message, error) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case m := <-a.recvQ:
		return m, nil
	case <-a.done:
		return Message{}, a.Err()
	case <-t.C:
		return Message{}, ErrTimeout
	}
}

// Close shuts the association down (SHUTDOWN is sent best-effort; the
// four-way terminate dance is abbreviated to one exchange).
func (a *Assoc) Close() error {
	a.shutdown(nil)
	return nil
}

// Err returns the terminal error, ErrClosed for a clean close.
func (a *Assoc) Err() error {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	if a.err == nil {
		return ErrClosed
	}
	return a.err
}

// Stats returns a copy of the association counters.
func (a *Assoc) Stats() Stats {
	a.statsMu.Lock()
	defer a.statsMu.Unlock()
	return a.stats
}

func (a *Assoc) closed() bool {
	select {
	case <-a.done:
		return true
	default:
		return false
	}
}

func (a *Assoc) shutdown(err error) {
	a.closeOnce.Do(func() {
		a.errMu.Lock()
		a.err = err
		a.errMu.Unlock()
		if err == nil {
			_ = a.wire.Send(marshalPacket(a.header(), Chunk{Type: ChunkShutdown}))
		}
		close(a.done)
		a.sendMu.Lock()
		a.sendCond.Broadcast()
		a.sendMu.Unlock()
	})
}

func (a *Assoc) readLoop() {
	for {
		pktBytes, err := a.wire.Recv()
		if err != nil {
			a.shutdown(fmt.Errorf("sctp: wire receive: %w", err))
			return
		}
		hdr, chunks, err := unmarshalPacket(pktBytes)
		if err != nil {
			continue // corrupted packet: drop, retransmission recovers
		}
		if hdr.VTag != a.myTag {
			continue // not ours
		}
		for _, c := range chunks {
			switch c.Type {
			case ChunkData:
				a.handleData(c)
			case ChunkSack:
				a.handleSack(c)
			case ChunkHeartbeat:
				_ = a.wire.Send(marshalPacket(a.header(), Chunk{Type: ChunkHeartbeatAck, Value: c.Value}))
			case ChunkShutdown:
				_ = a.wire.Send(marshalPacket(a.header(), Chunk{Type: ChunkShutdownAck}))
				a.shutdown(nil)
				return
			case ChunkShutdownAck:
				a.shutdown(nil)
				return
			case ChunkAbort:
				a.shutdown(ErrAborted)
				return
			}
		}
	}
}

func (a *Assoc) handleData(c Chunk) {
	d, err := parseData(c)
	if err != nil {
		return
	}
	switch {
	case d.Unordered:
		a.deliver(Message{Stream: d.Stream, PPID: d.PPID, Data: append([]byte(nil), d.Payload...)})
	case d.TSN <= a.cumTSN || a.hasOO(d.TSN):
		a.statsMu.Lock()
		a.stats.DupsReceived++
		a.statsMu.Unlock()
	default:
		a.oo[d.TSN] = Message{Stream: d.Stream, PPID: d.PPID, Data: append([]byte(nil), d.Payload...)}
		// Advance the cumulative point, delivering in TSN order (which
		// preserves per-stream order for a single peer).
		for {
			m, ok := a.oo[a.cumTSN+1]
			if !ok {
				break
			}
			delete(a.oo, a.cumTSN+1)
			a.cumTSN++
			a.deliver(m)
		}
	}
	// Acknowledge everything contiguous so far.
	_ = a.wire.Send(marshalPacket(a.header(), marshalSack(a.cumTSN)))
	a.statsMu.Lock()
	a.stats.SacksSent++
	a.statsMu.Unlock()
}

func (a *Assoc) hasOO(tsn uint32) bool {
	_, ok := a.oo[tsn]
	return ok
}

func (a *Assoc) deliver(m Message) {
	a.statsMu.Lock()
	a.stats.MsgsReceived++
	a.statsMu.Unlock()
	select {
	case a.recvQ <- m:
	case <-a.done:
	}
}

func (a *Assoc) handleSack(c Chunk) {
	cum, err := parseSack(c)
	if err != nil {
		return
	}
	a.statsMu.Lock()
	a.stats.SacksReceived++
	a.statsMu.Unlock()
	a.sendMu.Lock()
	if cum >= a.nextTSN {
		// Bogus acknowledgement beyond anything sent; ignore rather than
		// walking an unbounded range.
		a.sendMu.Unlock()
		return
	}
	for tsn := a.lowestOut; tsn <= cum; tsn++ {
		delete(a.unacked, tsn)
	}
	if cum >= a.lowestOut {
		a.lowestOut = cum + 1
	}
	a.sendCond.Broadcast()
	a.sendMu.Unlock()
}

func (a *Assoc) retransmitLoop() {
	tick := time.NewTicker(a.cfg.RTO / 2)
	defer tick.Stop()
	for {
		select {
		case <-a.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		var resend [][]byte
		limit := false
		a.sendMu.Lock()
		for _, oc := range a.unacked {
			if now.Sub(oc.sentAt) < a.cfg.RTO {
				continue
			}
			oc.retries++
			if oc.retries > a.cfg.MaxRetrans {
				limit = true
				break
			}
			oc.sentAt = now
			resend = append(resend, oc.bytes)
		}
		a.sendMu.Unlock()
		if limit {
			a.shutdown(ErrRetransLimit)
			return
		}
		for _, p := range resend {
			a.statsMu.Lock()
			a.stats.Retransmits++
			a.statsMu.Unlock()
			_ = a.wire.Send(p)
		}
	}
}

// --- stateless cookie ---

const cookiePlainLen = 16

func bakeCookie(key []byte, peerTag, peerTSN, myTag, myTSN uint32) []byte {
	b := make([]byte, cookiePlainLen, cookiePlainLen+sha256.Size)
	binary.BigEndian.PutUint32(b[0:4], peerTag)
	binary.BigEndian.PutUint32(b[4:8], peerTSN)
	binary.BigEndian.PutUint32(b[8:12], myTag)
	binary.BigEndian.PutUint32(b[12:16], myTSN)
	mac := hmac.New(sha256.New, key)
	mac.Write(b)
	return mac.Sum(b)
}

func verifyCookie(key, cookie []byte) (peerTag, peerTSN, myTag, myTSN uint32, ok bool) {
	if len(cookie) != cookiePlainLen+sha256.Size {
		return 0, 0, 0, 0, false
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(cookie[:cookiePlainLen])
	if !hmac.Equal(mac.Sum(nil), cookie[cookiePlainLen:]) {
		return 0, 0, 0, 0, false
	}
	peerTag = binary.BigEndian.Uint32(cookie[0:4])
	peerTSN = binary.BigEndian.Uint32(cookie[4:8])
	myTag = binary.BigEndian.Uint32(cookie[8:12])
	myTSN = binary.BigEndian.Uint32(cookie[12:16])
	return peerTag, peerTSN, myTag, myTSN, true
}
