// Package sctp implements a userspace SCTP-lite transport: the
// message-oriented, association-based protocol S1AP requires (3GPP
// recommends SCTP under S1AP; the paper uses the Linux kernel's SCTP and
// notes it as a control-plane bottleneck, §6.5).
//
// The implementation keeps SCTP's packet format — common header with
// verification tag and CRC32c checksum, chunk TLVs, four-way cookie
// handshake, TSN/SACK-based reliable transfer with ordered delivery per
// stream — over any datagram-like Wire (in-memory pair, UDP socket).
// Congestion control and multihoming are out of scope: the paper's
// signaling experiments stress message rate and handshake cost, which
// this preserves (with a per-message cost comparable to a kernel
// round-trip's protocol work, minus the syscall).
package sctp

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Chunk types (RFC 4960 §3.2).
const (
	ChunkData         uint8 = 0
	ChunkInit         uint8 = 1
	ChunkInitAck      uint8 = 2
	ChunkSack         uint8 = 3
	ChunkHeartbeat    uint8 = 4
	ChunkHeartbeatAck uint8 = 5
	ChunkAbort        uint8 = 6
	ChunkShutdown     uint8 = 7
	ChunkShutdownAck  uint8 = 8
	ChunkCookieEcho   uint8 = 10
	ChunkCookieAck    uint8 = 11
)

// DATA chunk flag bits.
const (
	flagUnordered uint8 = 0x04
	flagBeginning uint8 = 0x02
	flagEnding    uint8 = 0x01
)

// PPIDS1AP is the payload protocol identifier assigned to S1AP.
const PPIDS1AP uint32 = 18

// Packet layout constants.
const (
	commonHeaderLen = 12
	chunkHeaderLen  = 4
	dataChunkFixed  = 12 // TSN(4) stream(2) seq(2) ppid(4)
)

// Codec errors.
var (
	ErrShortPacket = errors.New("sctp: packet too short")
	ErrBadChecksum = errors.New("sctp: checksum mismatch")
	ErrBadChunk    = errors.New("sctp: malformed chunk")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the SCTP common header.
type Header struct {
	SrcPort uint16
	DstPort uint16
	VTag    uint32
}

// Chunk is one decoded chunk.
type Chunk struct {
	Type  uint8
	Flags uint8
	Value []byte
}

// DataChunk is a decoded DATA chunk.
type DataChunk struct {
	TSN       uint32
	Stream    uint16
	Seq       uint16
	PPID      uint32
	Payload   []byte
	Unordered bool
}

// marshalPacket assembles common header + chunks and stamps the CRC32c.
func marshalPacket(h Header, chunks ...Chunk) []byte {
	size := commonHeaderLen
	for _, c := range chunks {
		size += chunkHeaderLen + len(c.Value)
		size = pad4(size)
	}
	b := make([]byte, size)
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.VTag)
	o := commonHeaderLen
	for _, c := range chunks {
		b[o] = c.Type
		b[o+1] = c.Flags
		binary.BigEndian.PutUint16(b[o+2:o+4], uint16(chunkHeaderLen+len(c.Value)))
		copy(b[o+4:], c.Value)
		o = pad4(o + chunkHeaderLen + len(c.Value))
	}
	// Checksum computed with the checksum field zeroed.
	sum := crc32.Checksum(b, castagnoli)
	binary.LittleEndian.PutUint32(b[8:12], sum)
	return b
}

// unmarshalPacket verifies the checksum and splits the packet into its
// header and chunks. Chunk values alias the input buffer.
func unmarshalPacket(b []byte) (Header, []Chunk, error) {
	var h Header
	if len(b) < commonHeaderLen {
		return h, nil, ErrShortPacket
	}
	sum := binary.LittleEndian.Uint32(b[8:12])
	binary.LittleEndian.PutUint32(b[8:12], 0)
	if crc32.Checksum(b, castagnoli) != sum {
		return h, nil, ErrBadChecksum
	}
	binary.LittleEndian.PutUint32(b[8:12], sum)
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.VTag = binary.BigEndian.Uint32(b[4:8])
	var chunks []Chunk
	o := commonHeaderLen
	for o < len(b) {
		if o+chunkHeaderLen > len(b) {
			return h, nil, ErrBadChunk
		}
		l := int(binary.BigEndian.Uint16(b[o+2 : o+4]))
		if l < chunkHeaderLen || o+l > len(b) {
			return h, nil, ErrBadChunk
		}
		chunks = append(chunks, Chunk{Type: b[o], Flags: b[o+1], Value: b[o+4 : o+l]})
		o = pad4(o + l)
	}
	return h, chunks, nil
}

// marshalData encodes a DATA chunk value.
func marshalData(d DataChunk) Chunk {
	v := make([]byte, dataChunkFixed+len(d.Payload))
	binary.BigEndian.PutUint32(v[0:4], d.TSN)
	binary.BigEndian.PutUint16(v[4:6], d.Stream)
	binary.BigEndian.PutUint16(v[6:8], d.Seq)
	binary.BigEndian.PutUint32(v[8:12], d.PPID)
	copy(v[12:], d.Payload)
	flags := flagBeginning | flagEnding // no fragmentation support
	if d.Unordered {
		flags |= flagUnordered
	}
	return Chunk{Type: ChunkData, Flags: flags, Value: v}
}

// parseData decodes a DATA chunk value.
func parseData(c Chunk) (DataChunk, error) {
	var d DataChunk
	if len(c.Value) < dataChunkFixed {
		return d, ErrBadChunk
	}
	d.TSN = binary.BigEndian.Uint32(c.Value[0:4])
	d.Stream = binary.BigEndian.Uint16(c.Value[4:6])
	d.Seq = binary.BigEndian.Uint16(c.Value[6:8])
	d.PPID = binary.BigEndian.Uint32(c.Value[8:12])
	d.Payload = c.Value[12:]
	d.Unordered = c.Flags&flagUnordered != 0
	return d, nil
}

// initChunk value: initiate tag(4), a_rwnd(4), out streams(2), in
// streams(2), initial TSN(4).
func marshalInit(tag uint32, initTSN uint32, streams uint16) Chunk {
	v := make([]byte, 16)
	binary.BigEndian.PutUint32(v[0:4], tag)
	binary.BigEndian.PutUint32(v[4:8], 1<<16)
	binary.BigEndian.PutUint16(v[8:10], streams)
	binary.BigEndian.PutUint16(v[10:12], streams)
	binary.BigEndian.PutUint32(v[12:16], initTSN)
	return Chunk{Type: ChunkInit, Value: v}
}

func parseInit(c Chunk) (tag, initTSN uint32, streams uint16, err error) {
	if len(c.Value) < 16 {
		return 0, 0, 0, ErrBadChunk
	}
	tag = binary.BigEndian.Uint32(c.Value[0:4])
	streams = binary.BigEndian.Uint16(c.Value[8:10])
	initTSN = binary.BigEndian.Uint32(c.Value[12:16])
	return tag, initTSN, streams, nil
}

// initAck value: same as init plus a variable cookie appended.
func marshalInitAck(tag, initTSN uint32, streams uint16, cookie []byte) Chunk {
	base := marshalInit(tag, initTSN, streams)
	base.Type = ChunkInitAck
	base.Value = append(base.Value, cookie...)
	return base
}

func parseInitAck(c Chunk) (tag, initTSN uint32, streams uint16, cookie []byte, err error) {
	if len(c.Value) < 16 {
		return 0, 0, 0, nil, ErrBadChunk
	}
	tag, initTSN, streams, err = parseInit(Chunk{Value: c.Value[:16]})
	cookie = c.Value[16:]
	return tag, initTSN, streams, cookie, err
}

// sack value: cumulative TSN ack(4), a_rwnd(4), gap blocks(2)=0, dup(2)=0.
func marshalSack(cumTSN uint32) Chunk {
	v := make([]byte, 12)
	binary.BigEndian.PutUint32(v[0:4], cumTSN)
	binary.BigEndian.PutUint32(v[4:8], 1<<16)
	return Chunk{Type: ChunkSack, Value: v}
}

func parseSack(c Chunk) (cumTSN uint32, err error) {
	if len(c.Value) < 12 {
		return 0, ErrBadChunk
	}
	return binary.BigEndian.Uint32(c.Value[0:4]), nil
}

func pad4(n int) int { return (n + 3) &^ 3 }
