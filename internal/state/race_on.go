//go:build race

package state

// raceEnabled reports whether the race detector instruments this build.
// The seqlock's optimistic control-state copy is a deliberate, validated
// data race at the machine level (the sequence check discards torn
// copies), which the detector would rightly flag; race builds take the
// read lock instead, preserving semantics while keeping `-race` runs
// meaningful for everything else.
const raceEnabled = true
