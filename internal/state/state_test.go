package state

import (
	"math/rand"
	"sync"
	"testing"

	"pepc/internal/bpf"
	"pepc/internal/pkt"
)

func newTestUE(imsi uint64, teid, ip uint32) *UE {
	ue := &UE{}
	ue.WriteCtrl(func(c *ControlState) {
		c.IMSI = imsi
		c.UplinkTEID = teid
		c.UEAddr = ip
		c.Attached = true
		c.AddBearer(Bearer{EBI: 5, QCI: QCIBestEffort, MBRUplink: 10e6, MBRDownlink: 50e6})
	})
	return ue
}

// --- Taxonomy (Table 1) ---

func TestStateTaxonomy(t *testing.T) {
	// Every state group PEPC keeps must have exactly one PEPC writer —
	// the single-writer invariant of §3.2.
	for _, row := range Taxonomy {
		ctl := row.Access[CompPEPCControl]
		dat := row.Access[CompPEPCData]
		if ctl == AccessNA && dat == AccessNA {
			if row.Group != GroupControlTunnel {
				t.Fatalf("%v: dropped by PEPC but is not control tunnel state", row.Group)
			}
			continue
		}
		w, ok := PEPCWriter(row.Group)
		if !ok {
			t.Fatalf("%v: no unique PEPC writer (ctl=%v dat=%v)", row.Group, ctl, dat)
		}
		// Per-packet state is written by the data thread, per-event state
		// by the control thread.
		if row.Updates == PerPacket && w != CompPEPCData {
			t.Fatalf("%v: per-packet state written by %v", row.Group, w)
		}
		if row.Updates == PerEvent && w != CompPEPCControl {
			t.Fatalf("%v: per-event state written by %v", row.Group, w)
		}
	}
	// The legacy design duplicates writable state across components for
	// every group except bandwidth counters and location — that's the
	// duplication the paper blames for sync overhead.
	if LegacyWriters(GroupUserID) != 3 || LegacyWriters(GroupQoSPolicy) != 3 ||
		LegacyWriters(GroupDataTunnel) != 3 {
		t.Fatal("legacy duplication rows do not match Table 1")
	}
	if LegacyWriters(GroupBandwidthCounters) != 2 {
		t.Fatal("bandwidth counters must be held by S-GW and P-GW only")
	}
	if got := len(FormatTaxonomy()); got != int(numGroups)+1 {
		t.Fatalf("FormatTaxonomy rows = %d", got)
	}
}

// --- UE locking discipline ---

func TestUEWriteCtrlBumpsEpoch(t *testing.T) {
	ue := &UE{}
	before := ue.Ctrl.Epoch
	ue.WriteCtrl(func(c *ControlState) { c.GUTI = 1 })
	if ue.Ctrl.Epoch != before+1 {
		t.Fatalf("epoch = %d, want %d", ue.Ctrl.Epoch, before+1)
	}
}

func TestUESnapshotRestore(t *testing.T) {
	ue := newTestUE(100, 200, 300)
	ue.WriteCounters(func(c *CounterState) { c.UplinkBytes = 777 })
	cs, cnt := ue.Snapshot()
	clone := &UE{}
	clone.Restore(cs, cnt)
	cs2, cnt2 := clone.Snapshot()
	if cs2.IMSI != 100 || cs2.UplinkTEID != 200 || cs2.UEAddr != 300 || cnt2.UplinkBytes != 777 {
		t.Fatalf("restore mismatch: %+v %+v", cs2, cnt2)
	}
}

func TestUEConcurrentSingleWriterDiscipline(t *testing.T) {
	// Control writes control state while data writes counters; under the
	// race detector this validates the lock split.
	ue := newTestUE(1, 2, 3)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			ue.WriteCtrl(func(c *ControlState) { c.ECGI = uint32(i) })
			ue.ReadCounters(func(c *CounterState) { _ = c.UplinkBytes })
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			ue.ReadCtrl(func(c *ControlState) { _ = c.ECGI })
			ue.WriteCounters(func(c *CounterState) { c.UplinkBytes++ })
		}
	}()
	wg.Wait()
	if _, cnt := ue.Snapshot(); cnt.UplinkBytes != 1000 {
		t.Fatalf("uplink bytes = %d", cnt.UplinkBytes)
	}
}

func TestBearerLimits(t *testing.T) {
	var c ControlState
	for i := 0; i < MaxBearers; i++ {
		if !c.AddBearer(Bearer{EBI: uint8(5 + i)}) {
			t.Fatalf("AddBearer %d failed", i)
		}
	}
	if c.AddBearer(Bearer{EBI: 16}) {
		t.Fatal("AddBearer beyond MaxBearers succeeded")
	}
	if c.DefaultBearer().EBI != 5 {
		t.Fatalf("default bearer EBI = %d", c.DefaultBearer().EBI)
	}
	var empty ControlState
	if empty.DefaultBearer() != nil {
		t.Fatal("empty context has a default bearer")
	}
}

// --- U32Map / U64Map ---

func TestU32MapBasic(t *testing.T) {
	m := NewU32Map(4)
	ue1, ue2 := &UE{}, &UE{}
	if !m.Put(1, ue1) || !m.Put(2, ue2) {
		t.Fatal("put failed")
	}
	if m.Get(1) != ue1 || m.Get(2) != ue2 || m.Get(3) != nil {
		t.Fatal("get mismatch")
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	if m.Delete(1) != ue1 || m.Get(1) != nil || m.Len() != 1 {
		t.Fatal("delete mismatch")
	}
	if m.Delete(1) != nil {
		t.Fatal("double delete returned value")
	}
	// Replace
	m.Put(2, ue1)
	if m.Get(2) != ue1 || m.Len() != 1 {
		t.Fatal("replace mismatch")
	}
}

func TestU32MapRejectsReservedKeys(t *testing.T) {
	m := NewU32Map(4)
	if m.Put(0, &UE{}) || m.Put(tombstone, &UE{}) || m.Put(5, nil) {
		t.Fatal("reserved put accepted")
	}
	if m.Get(0) != nil || m.Delete(0) != nil {
		t.Fatal("reserved key lookup returned value")
	}
}

func TestU32MapGrowth(t *testing.T) {
	m := NewU32Map(4)
	ues := make([]*UE, 10000)
	for i := range ues {
		ues[i] = &UE{}
		if !m.Put(uint32(i+1), ues[i]) {
			t.Fatalf("put %d failed", i)
		}
	}
	if m.Len() != 10000 {
		t.Fatalf("len = %d", m.Len())
	}
	for i := range ues {
		if m.Get(uint32(i+1)) != ues[i] {
			t.Fatalf("get %d mismatch after growth", i)
		}
	}
}

func TestU32MapTombstoneReuse(t *testing.T) {
	m := NewU32Map(16)
	ue := &UE{}
	// Insert/delete churn at the same population must not grow the table
	// unboundedly: tombstones are compacted on grow and reused on insert.
	for i := 0; i < 100000; i++ {
		k := uint32(i%8 + 1)
		m.Put(k, ue)
		m.Delete(k)
	}
	if m.Cap() > 64 {
		t.Fatalf("cap grew to %d under churn", m.Cap())
	}
}

func TestU32MapRange(t *testing.T) {
	m := NewU32Map(8)
	for i := uint32(1); i <= 5; i++ {
		m.Put(i, &UE{})
	}
	seen := map[uint32]bool{}
	m.Range(func(k uint32, v *UE) bool {
		seen[k] = true
		return true
	})
	if len(seen) != 5 {
		t.Fatalf("range saw %d keys", len(seen))
	}
	// Early termination.
	count := 0
	m.Range(func(k uint32, v *UE) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early-stop range visited %d", count)
	}
}

// Property: U32Map agrees with a builtin map under random operations.
func TestU32MapModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewU32Map(4)
	model := map[uint32]*UE{}
	for i := 0; i < 50000; i++ {
		k := uint32(rng.Intn(500) + 1)
		switch rng.Intn(3) {
		case 0:
			v := &UE{}
			m.Put(k, v)
			model[k] = v
		case 1:
			got := m.Delete(k)
			want := model[k]
			delete(model, k)
			if got != want {
				t.Fatalf("delete(%d): got %p want %p", k, got, want)
			}
		default:
			if got, want := m.Get(k), model[k]; got != want {
				t.Fatalf("get(%d): got %p want %p", k, got, want)
			}
		}
	}
	if m.Len() != len(model) {
		t.Fatalf("len: %d vs model %d", m.Len(), len(model))
	}
}

func TestU64MapModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewU64Map(4)
	model := map[uint64]*UE{}
	for i := 0; i < 50000; i++ {
		k := uint64(rng.Intn(500) + 1)
		switch rng.Intn(3) {
		case 0:
			v := &UE{}
			m.Put(k, v)
			model[k] = v
		case 1:
			got := m.Delete(k)
			want := model[k]
			delete(model, k)
			if got != want {
				t.Fatalf("delete(%d): got %p want %p", k, got, want)
			}
		default:
			if got, want := m.Get(k), model[k]; got != want {
				t.Fatalf("get(%d): got %p want %p", k, got, want)
			}
		}
	}
	if m.Len() != len(model) {
		t.Fatalf("len: %d vs model %d", m.Len(), len(model))
	}
}

// BenchmarkU32MapLookupScaling quantifies how lookup cost grows with
// table size under two access patterns. It backs the Figure 14 finding
// in EXPERIMENTS.md: with this open-address per-domain index, even a
// 1M-entry table costs only a couple of cache lines per probe when the
// accessed subset is hot, which is why the two-level table's benefit is
// small in this implementation compared to the paper's.
func BenchmarkU32MapLookupScaling(b *testing.B) {
	for _, size := range []int{10_000, 100_000, 1_000_000} {
		m := NewU32Map(size)
		ues := make([]*UE, size)
		for i := 0; i < size; i++ {
			ues[i] = &UE{}
			m.Put(uint32(i+1), ues[i])
		}
		b.Run("uniform/"+itoa(size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if m.Get(uint32(i%size+1)) == nil {
					b.Fatal("miss")
				}
			}
		})
		b.Run("hot1pct/"+itoa(size), func(b *testing.B) {
			hot := size / 100
			if hot < 1 {
				hot = 1
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if m.Get(uint32(i%hot+1)) == nil {
					b.Fatal("miss")
				}
			}
		})
	}
}

func itoa(n int) string {
	switch n {
	case 10_000:
		return "10K"
	case 100_000:
		return "100K"
	case 1_000_000:
		return "1M"
	}
	return "?"
}

func TestSelectBearerTFTOrder(t *testing.T) {
	var c ControlState
	if c.SelectBearer(pktFlow(80)) != -1 {
		t.Fatal("bearerless context must select -1")
	}
	c.AddBearer(Bearer{EBI: 5, QCI: QCIBestEffort}) // default: wildcard
	c.AddBearer(Bearer{EBI: 6, QCI: QCIConversationalVoice,
		TFT: bearerFilter(4000, 4010)})
	c.AddBearer(Bearer{EBI: 7, QCI: QCIConversationalVideo,
		TFT: bearerFilter(4005, 4020)}) // overlaps; lower index wins
	if got := c.SelectBearer(pktFlow(80)); got != 0 {
		t.Fatalf("web flow -> bearer %d, want default 0", got)
	}
	if got := c.SelectBearer(pktFlow(4005)); got != 1 {
		t.Fatalf("voice flow -> bearer %d, want 1 (first matching TFT)", got)
	}
	if got := c.SelectBearer(pktFlow(4015)); got != 2 {
		t.Fatalf("video flow -> bearer %d, want 2", got)
	}
}

func pktFlow(dport uint16) pkt.Flow {
	return pkt.Flow{Src: 1, Dst: 2, SrcPort: 999, DstPort: dport, Proto: pkt.ProtoUDP}
}

func bearerFilter(lo, hi uint16) bpf.FilterSpec {
	return bpf.FilterSpec{Proto: pkt.ProtoUDP, DstPortLo: lo, DstPortHi: hi}
}
