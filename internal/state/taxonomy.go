package state

import "fmt"

// This file reproduces the paper's Table 1: which EPC component reads and
// writes each group of per-user state, and how often that state is
// updated. The table is encoded as data so tests can assert the PEPC
// single-writer invariant (each state group has exactly one writer among
// the PEPC threads) and so `pepcbench -table 1` can print it.

// Group identifies a category of per-user state.
type Group uint8

// State groups, in the paper's row order.
const (
	GroupUserLocation Group = iota
	GroupUserID
	GroupQoSPolicy
	GroupControlTunnel
	GroupDataTunnel
	GroupBandwidthCounters
	numGroups
)

var groupNames = [...]string{
	"User location",
	"User id",
	"Per-user QoS/policy state",
	"Per-user control tunnel state",
	"Per-user data tunnel state",
	"Per-user bandwidth counters",
}

// String implements fmt.Stringer.
func (g Group) String() string {
	if int(g) < len(groupNames) {
		return groupNames[g]
	}
	return fmt.Sprintf("Group(%d)", g)
}

// Component identifies an EPC function that accesses state.
type Component uint8

// Components, in the paper's column order.
const (
	CompMME Component = iota
	CompSGW
	CompPGW
	CompPEPCControl
	CompPEPCData
	numComponents
)

var componentNames = [...]string{"MME", "S-GW", "P-GW", "PEPC control thread", "PEPC data thread"}

// String implements fmt.Stringer.
func (c Component) String() string {
	if int(c) < len(componentNames) {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", c)
}

// Access describes how a component touches a state group.
type Access uint8

// Access modes.
const (
	AccessNA Access = iota // component does not hold this state
	AccessR                // read only
	AccessRW               // read and write
)

// String implements fmt.Stringer.
func (a Access) String() string {
	switch a {
	case AccessNA:
		return "NA"
	case AccessR:
		return "r"
	case AccessRW:
		return "w+r"
	}
	return "?"
}

// Freq is how often a state group is updated.
type Freq uint8

// Update frequencies.
const (
	PerEvent Freq = iota
	PerPacket
)

// String implements fmt.Stringer.
func (f Freq) String() string {
	if f == PerPacket {
		return "per-packet"
	}
	return "per-event"
}

// Row is one row of Table 1.
type Row struct {
	Group   Group
	Access  [numComponents]Access
	Updates Freq
}

// Taxonomy is the paper's Table 1, verbatim.
var Taxonomy = [numGroups]Row{
	{GroupUserLocation, [numComponents]Access{AccessRW, AccessRW, AccessNA, AccessRW, AccessR}, PerEvent},
	{GroupUserID, [numComponents]Access{AccessRW, AccessRW, AccessRW, AccessRW, AccessR}, PerEvent},
	{GroupQoSPolicy, [numComponents]Access{AccessRW, AccessRW, AccessRW, AccessRW, AccessR}, PerEvent},
	{GroupControlTunnel, [numComponents]Access{AccessRW, AccessRW, AccessRW, AccessNA, AccessNA}, PerEvent},
	{GroupDataTunnel, [numComponents]Access{AccessRW, AccessRW, AccessRW, AccessRW, AccessR}, PerEvent},
	{GroupBandwidthCounters, [numComponents]Access{AccessNA, AccessRW, AccessRW, AccessR, AccessRW}, PerPacket},
}

// PEPCWriter returns which PEPC thread writes the group, or (0,false) for
// state PEPC does not keep (control tunnel state disappears: there are no
// inter-component tunnels to manage once MME/S-GW/P-GW are consolidated).
func PEPCWriter(g Group) (Component, bool) {
	r := Taxonomy[g]
	ctl := r.Access[CompPEPCControl] == AccessRW
	dat := r.Access[CompPEPCData] == AccessRW
	switch {
	case ctl && !dat:
		return CompPEPCControl, true
	case dat && !ctl:
		return CompPEPCData, true
	default:
		return 0, false
	}
}

// LegacyWriters counts how many legacy components (MME, S-GW, P-GW) hold a
// writable copy of the group — the duplication that forces cross-component
// synchronization on every signaling event (§2.3).
func LegacyWriters(g Group) int {
	n := 0
	for _, c := range []Component{CompMME, CompSGW, CompPGW} {
		if Taxonomy[g].Access[c] == AccessRW {
			n++
		}
	}
	return n
}

// FormatTaxonomy renders Table 1 as aligned text rows.
func FormatTaxonomy() []string {
	out := make([]string, 0, numGroups+1)
	out = append(out, fmt.Sprintf("%-32s %-5s %-5s %-5s %-20s %-17s %s",
		"State type", "MME", "S-GW", "P-GW", "PEPC control thread", "PEPC data thread", "Update frequency"))
	for _, r := range Taxonomy {
		out = append(out, fmt.Sprintf("%-32s %-5s %-5s %-5s %-20s %-17s %s",
			r.Group, r.Access[CompMME], r.Access[CompSGW], r.Access[CompPGW],
			r.Access[CompPEPCControl], r.Access[CompPEPCData], r.Updates))
	}
	return out
}
