package state

import (
	"encoding/binary"
	"errors"

	"pepc/internal/qos"
)

// Binary serialization of a UE snapshot for state migration (§4.3's
// StateTransferMessage payload). Fixed-layout little-endian encoding: the
// transfer stays inside one operator's cluster, so there is no
// cross-version concern beyond the embedded version byte.

const snapshotVersion = 2

// ErrBadSnapshot reports a truncated or version-mismatched snapshot.
var ErrBadSnapshot = errors.New("state: bad snapshot encoding")

const bearerWireLen = 3 + 8*4 + filterWireLen
const filterWireLen = 4 + 1 + 4 + 1 + 1 + 2*4 + 4
const ctrlFixedLen = 8 + 8 + 4 + 4 + 2 + 16 + 1 + 4 + 4 + 4 + 1 + 8 + 8 + 4*4 + 1 + 1 + 1 + 8 + 32 + 8 + 4
const counterWireLen = 8*5 + 8*4
const levelsWireLen = 1 + 8*2 + 8*int(MaxBearers)*2

// SnapshotSize is the exact encoded size of a UE snapshot.
const SnapshotSize = 1 + ctrlFixedLen + int(MaxBearers)*bearerWireLen + counterWireLen + levelsWireLen

// QoSLevels carries a migrating user's token-bucket fill levels (format
// v2's trailing section). Valid marks levels actually captured from a
// live limiter: migration extract sets it after the data-plane fence;
// checkpoints leave it false because the control thread cannot read the
// data-private limiter of a running slice, so crash recovery restarts
// policed users with full buckets (documented in DESIGN.md §4.15).
type QoSLevels struct {
	Valid bool
	qos.Levels
}

// MarshalSnapshot encodes a UE snapshot into dst, which must have at least
// SnapshotSize bytes; it returns the bytes written. Token levels are
// encoded as not-captured; migration uses MarshalSnapshotLevels.
func MarshalSnapshot(dst []byte, cs *ControlState, cnt *CounterState) (int, error) {
	return MarshalSnapshotLevels(dst, cs, cnt, &QoSLevels{})
}

// MarshalSnapshotLevels is MarshalSnapshot carrying captured QoS token
// levels, so policing budget is conserved across a migration.
func MarshalSnapshotLevels(dst []byte, cs *ControlState, cnt *CounterState, lv *QoSLevels) (int, error) {
	if len(dst) < SnapshotSize {
		return 0, ErrBadSnapshot
	}
	o := 0
	dst[o] = snapshotVersion
	o++
	le := binary.LittleEndian
	le.PutUint64(dst[o:], cs.IMSI)
	o += 8
	le.PutUint64(dst[o:], cs.GUTI)
	o += 8
	le.PutUint32(dst[o:], cs.UEAddr)
	o += 4
	le.PutUint32(dst[o:], cs.ECGI)
	o += 4
	le.PutUint16(dst[o:], cs.TAI)
	o += 2
	for _, tai := range cs.TAIList {
		le.PutUint16(dst[o:], tai)
		o += 2
	}
	dst[o] = cs.TAICount
	o++
	le.PutUint32(dst[o:], cs.UplinkTEID)
	o += 4
	le.PutUint32(dst[o:], cs.DownlinkTEID)
	o += 4
	le.PutUint32(dst[o:], cs.ENBAddr)
	o += 4
	dst[o] = cs.BearerCount
	o++
	le.PutUint64(dst[o:], cs.AMBRUplink)
	o += 8
	le.PutUint64(dst[o:], cs.AMBRDownlink)
	o += 8
	for _, r := range cs.RuleIDs {
		le.PutUint32(dst[o:], r)
		o += 4
	}
	dst[o] = cs.RuleCount
	o++
	dst[o] = boolByte(cs.Attached)
	o++
	dst[o] = boolByte(cs.IoT)
	o++
	le.PutUint64(dst[o:], uint64(cs.LastActive))
	o += 8
	copy(dst[o:], cs.KASME[:])
	o += 32
	le.PutUint64(dst[o:], cs.NextSQN)
	o += 8
	le.PutUint32(dst[o:], cs.Epoch)
	o += 4
	for i := 0; i < MaxBearers; i++ {
		b := &cs.Bearers[i]
		dst[o] = b.EBI
		dst[o+1] = uint8(b.QCI)
		dst[o+2] = b.ARP
		o += 3
		le.PutUint64(dst[o:], b.MBRUplink)
		le.PutUint64(dst[o+8:], b.MBRDownlink)
		le.PutUint64(dst[o+16:], b.GBRUplink)
		le.PutUint64(dst[o+24:], b.GBRDownlink)
		o += 32
		f := &b.TFT
		le.PutUint32(dst[o:], f.SrcAddr)
		dst[o+4] = f.SrcPrefix
		le.PutUint32(dst[o+5:], f.DstAddr)
		dst[o+9] = f.DstPrefix
		dst[o+10] = f.Proto
		le.PutUint16(dst[o+11:], f.SrcPortLo)
		le.PutUint16(dst[o+13:], f.SrcPortHi)
		le.PutUint16(dst[o+15:], f.DstPortLo)
		le.PutUint16(dst[o+17:], f.DstPortHi)
		le.PutUint32(dst[o+19:], f.Ret)
		o += filterWireLen
	}
	le.PutUint64(dst[o:], cnt.UplinkBytes)
	le.PutUint64(dst[o+8:], cnt.DownlinkBytes)
	le.PutUint64(dst[o+16:], cnt.UplinkPackets)
	le.PutUint64(dst[o+24:], cnt.DownlinkPackets)
	le.PutUint64(dst[o+32:], cnt.DroppedPackets)
	o += 40
	for _, rb := range cnt.RuleBytes {
		le.PutUint64(dst[o:], rb)
		o += 8
	}
	dst[o] = boolByte(lv.Valid)
	o++
	le.PutUint64(dst[o:], lv.AMBRUp)
	le.PutUint64(dst[o+8:], lv.AMBRDown)
	o += 16
	for i := 0; i < int(MaxBearers); i++ {
		le.PutUint64(dst[o:], lv.BearerUp[i])
		le.PutUint64(dst[o+8:], lv.BearerDown[i])
		o += 16
	}
	return o, nil
}

// UnmarshalSnapshot decodes a snapshot produced by MarshalSnapshot,
// discarding any captured token levels.
func UnmarshalSnapshot(src []byte, cs *ControlState, cnt *CounterState) error {
	var lv QoSLevels
	return UnmarshalSnapshotLevels(src, cs, cnt, &lv)
}

// UnmarshalSnapshotLevels decodes a snapshot including its QoS token
// levels section.
func UnmarshalSnapshotLevels(src []byte, cs *ControlState, cnt *CounterState, lv *QoSLevels) error {
	if len(src) < SnapshotSize || src[0] != snapshotVersion {
		return ErrBadSnapshot
	}
	o := 1
	le := binary.LittleEndian
	cs.IMSI = le.Uint64(src[o:])
	o += 8
	cs.GUTI = le.Uint64(src[o:])
	o += 8
	cs.UEAddr = le.Uint32(src[o:])
	o += 4
	cs.ECGI = le.Uint32(src[o:])
	o += 4
	cs.TAI = le.Uint16(src[o:])
	o += 2
	for i := range cs.TAIList {
		cs.TAIList[i] = le.Uint16(src[o:])
		o += 2
	}
	cs.TAICount = src[o]
	o++
	cs.UplinkTEID = le.Uint32(src[o:])
	o += 4
	cs.DownlinkTEID = le.Uint32(src[o:])
	o += 4
	cs.ENBAddr = le.Uint32(src[o:])
	o += 4
	cs.BearerCount = src[o]
	o++
	cs.AMBRUplink = le.Uint64(src[o:])
	o += 8
	cs.AMBRDownlink = le.Uint64(src[o:])
	o += 8
	for i := range cs.RuleIDs {
		cs.RuleIDs[i] = le.Uint32(src[o:])
		o += 4
	}
	cs.RuleCount = src[o]
	o++
	cs.Attached = src[o] != 0
	o++
	cs.IoT = src[o] != 0
	o++
	cs.LastActive = int64(le.Uint64(src[o:]))
	o += 8
	copy(cs.KASME[:], src[o:o+32])
	o += 32
	cs.NextSQN = le.Uint64(src[o:])
	o += 8
	cs.Epoch = le.Uint32(src[o:])
	o += 4
	for i := 0; i < MaxBearers; i++ {
		b := &cs.Bearers[i]
		b.EBI = src[o]
		b.QCI = QCI(src[o+1])
		b.ARP = src[o+2]
		o += 3
		b.MBRUplink = le.Uint64(src[o:])
		b.MBRDownlink = le.Uint64(src[o+8:])
		b.GBRUplink = le.Uint64(src[o+16:])
		b.GBRDownlink = le.Uint64(src[o+24:])
		o += 32
		f := &b.TFT
		f.SrcAddr = le.Uint32(src[o:])
		f.SrcPrefix = src[o+4]
		f.DstAddr = le.Uint32(src[o+5:])
		f.DstPrefix = src[o+9]
		f.Proto = src[o+10]
		f.SrcPortLo = le.Uint16(src[o+11:])
		f.SrcPortHi = le.Uint16(src[o+13:])
		f.DstPortLo = le.Uint16(src[o+15:])
		f.DstPortHi = le.Uint16(src[o+17:])
		f.Ret = le.Uint32(src[o+19:])
		o += filterWireLen
	}
	cnt.UplinkBytes = le.Uint64(src[o:])
	cnt.DownlinkBytes = le.Uint64(src[o+8:])
	cnt.UplinkPackets = le.Uint64(src[o+16:])
	cnt.DownlinkPackets = le.Uint64(src[o+24:])
	cnt.DroppedPackets = le.Uint64(src[o+32:])
	o += 40
	for i := range cnt.RuleBytes {
		cnt.RuleBytes[i] = le.Uint64(src[o:])
		o += 8
	}
	lv.Valid = src[o] != 0
	o++
	lv.AMBRUp = le.Uint64(src[o:])
	lv.AMBRDown = le.Uint64(src[o+8:])
	o += 16
	for i := 0; i < int(MaxBearers); i++ {
		lv.BearerUp[i] = le.Uint64(src[o:])
		lv.BearerDown[i] = le.Uint64(src[o+8:])
		o += 16
	}
	return nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
