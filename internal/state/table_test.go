package state

import (
	"math/rand"
	"pepc/internal/bpf"
	"sync"
	"testing"
	"time"
)

func TestTableInsertLookupRemove(t *testing.T) {
	for _, mode := range []LockMode{LockModePEPC, LockModeDatapathWriter, LockModeGiant} {
		t.Run(mode.String(), func(t *testing.T) {
			tb := NewTable(mode, 16)
			ue := newTestUE(1000, 2000, 3000)
			if err := tb.Insert(ue); err != nil {
				t.Fatal(err)
			}
			if err := tb.Insert(ue); err != ErrDuplicate {
				t.Fatalf("duplicate insert: %v", err)
			}
			if tb.Len() != 1 {
				t.Fatalf("len = %d", tb.Len())
			}
			if tb.LookupIMSI(1000) != ue || tb.LookupTEID(2000) != ue {
				t.Fatal("lookup mismatch")
			}
			got, err := tb.Remove(1000)
			if err != nil || got != ue {
				t.Fatalf("remove: %v %v", got, err)
			}
			if _, err := tb.Remove(1000); err != ErrNotFound {
				t.Fatalf("double remove: %v", err)
			}
			if tb.LookupTEID(2000) != nil || tb.LookupIMSI(1000) != nil {
				t.Fatal("indexes not cleaned on remove")
			}
		})
	}
}

func TestTableDataPathAllModes(t *testing.T) {
	for _, mode := range []LockMode{LockModePEPC, LockModeDatapathWriter, LockModeGiant} {
		t.Run(mode.String(), func(t *testing.T) {
			tb := NewTable(mode, 16)
			ue := newTestUE(1, 2, 3)
			tb.Insert(ue)
			ok := tb.DataPathTEID(2, func(c *ControlState, ctr *CounterState) {
				if c.IMSI != 1 {
					t.Errorf("ctrl state wrong: %d", c.IMSI)
				}
				ctr.UplinkPackets++
				ctr.UplinkBytes += 64
			})
			if !ok {
				t.Fatal("data path lookup failed")
			}
			ok = tb.DataPathIP(3, func(c *ControlState, ctr *CounterState) {
				ctr.DownlinkPackets++
			})
			if !ok {
				t.Fatal("downlink lookup failed")
			}
			if tb.DataPathTEID(99, func(*ControlState, *CounterState) {}) {
				t.Fatal("lookup of absent TEID succeeded")
			}
			var up, down uint64
			tb.CtrlReadCounters(ue, func(c *CounterState) { up, down = c.UplinkPackets, c.DownlinkPackets })
			if up != 1 || down != 1 {
				t.Fatalf("counters: up=%d down=%d", up, down)
			}
		})
	}
}

func TestTableCtrlWriteVisibleToDataPath(t *testing.T) {
	for _, mode := range []LockMode{LockModePEPC, LockModeDatapathWriter, LockModeGiant} {
		t.Run(mode.String(), func(t *testing.T) {
			tb := NewTable(mode, 16)
			ue := newTestUE(1, 2, 3)
			tb.Insert(ue)
			tb.CtrlWrite(ue, func(c *ControlState) { c.DownlinkTEID = 555 })
			var got uint32
			tb.DataPathTEID(2, func(c *ControlState, _ *CounterState) { got = c.DownlinkTEID })
			if got != 555 {
				t.Fatalf("data path read %d after ctrl write", got)
			}
		})
	}
}

func TestTableRekey(t *testing.T) {
	tb := NewTable(LockModePEPC, 16)
	ue := newTestUE(1, 2, 3)
	tb.Insert(ue)
	tb.CtrlWrite(ue, func(c *ControlState) { c.UplinkTEID = 20 })
	tb.Rekey(2, 20, ue)
	if tb.LookupTEID(2) != nil {
		t.Fatal("old TEID still mapped")
	}
	if tb.LookupTEID(20) != ue {
		t.Fatal("new TEID not mapped")
	}
}

func TestTableConcurrentDataAndControl(t *testing.T) {
	// Control ops and data-path accesses race across all modes without
	// data races (validated under -race) or lost counter updates.
	for _, mode := range []LockMode{LockModePEPC, LockModeDatapathWriter, LockModeGiant} {
		t.Run(mode.String(), func(t *testing.T) {
			tb := NewTable(mode, 1024)
			const users = 64
			ues := make([]*UE, users)
			for i := range ues {
				ues[i] = newTestUE(uint64(i+1), uint32(i+1), uint32(0x0a000000+i+1))
				tb.Insert(ues[i])
			}
			const pktsPerUser = 500
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // data thread
				defer wg.Done()
				for p := 0; p < pktsPerUser; p++ {
					for i := 0; i < users; i++ {
						tb.DataPathTEID(uint32(i+1), func(_ *ControlState, c *CounterState) {
							c.UplinkPackets++
						})
					}
				}
			}()
			go func() { // control thread
				defer wg.Done()
				for e := 0; e < 2000; e++ {
					ue := ues[e%users]
					tb.CtrlWrite(ue, func(c *ControlState) { c.ECGI = uint32(e) })
					tb.CtrlReadCounters(ue, func(c *CounterState) { _ = c.UplinkPackets })
				}
			}()
			wg.Wait()
			for i, ue := range ues {
				var got uint64
				tb.CtrlReadCounters(ue, func(c *CounterState) { got = c.UplinkPackets })
				if got != pktsPerUser {
					t.Fatalf("user %d: %d packets counted, want %d", i, got, pktsPerUser)
				}
			}
		})
	}
}

func TestTwoLevelPromoteEvict(t *testing.T) {
	tl := NewTwoLevel(16, 1024)
	ue := newTestUE(1, 100, 200)
	tl.InsertSecondary(100, 200, ue)
	got, fromSec := tl.Lookup(100, true)
	if got != ue || !fromSec {
		t.Fatalf("first lookup: %v fromSec=%v", got, fromSec)
	}
	if tl.Misses() != 1 {
		t.Fatalf("misses = %d", tl.Misses())
	}
	// Downlink domain resolves by UE address.
	if got, _ := tl.Lookup(200, false); got != ue {
		t.Fatal("downlink lookup failed")
	}
	// Domains are separate: the TEID does not resolve as an address.
	if got, _ := tl.Lookup(100, false); got != nil {
		t.Fatal("TEID leaked into the address domain")
	}
	tl.Promote(100, 200, ue)
	got, fromSec = tl.Lookup(100, true)
	if got != ue || fromSec {
		t.Fatalf("post-promote lookup: fromSec=%v", fromSec)
	}
	tl.Evict(100, 200)
	if tl.LookupPrimaryOnly(100) != nil {
		t.Fatal("evicted key still in primary")
	}
	got, fromSec = tl.Lookup(100, true)
	if got != ue || !fromSec {
		t.Fatal("evicted key lost from secondary")
	}
	tl.RemoveSecondary(100, 200)
	if got, _ := tl.Lookup(100, true); got != nil {
		t.Fatal("fully removed key still found")
	}
	if got, _ := tl.Lookup(200, false); got != nil {
		t.Fatal("fully removed address still found")
	}
}

func TestTwoLevelEvictIdle(t *testing.T) {
	tl := NewTwoLevel(64, 64)
	now := int64(1_000_000_000)
	for i := uint32(1); i <= 10; i++ {
		ue := newTestUE(uint64(i), i, 1000+i)
		ue.WriteCtrl(func(c *ControlState) {
			if i <= 5 {
				c.LastActive = now // active
			} else {
				c.LastActive = 0 // long idle
			}
		})
		tl.InsertSecondary(i, 1000+i, ue)
		tl.Promote(i, 1000+i, ue)
	}
	evicted := 0
	n := tl.EvictIdle(now, 500_000_000, func(teid, ip uint32) {
		tl.Evict(teid, ip)
		evicted++
	})
	if n != 5 || evicted != 5 {
		t.Fatalf("evicted %d/%d, want 5", evicted, n)
	}
	if tl.PrimaryLen() != 5 || tl.SecondaryLen() != 10 {
		t.Fatalf("primary=%d secondary=%d", tl.PrimaryLen(), tl.SecondaryLen())
	}
}

func TestUpdateQueueDrainApplies(t *testing.T) {
	ix := NewIndexes(16)
	q := NewUpdateQueue(64)
	ue := newTestUE(1, 10, 20)
	q.Push(Update{Op: OpInsert, TEID: 10, UEIP: 20, UE: ue})
	if n := q.Drain(ix); n != 1 {
		t.Fatalf("drained %d", n)
	}
	if ix.ByTEID.Get(10) != ue || ix.ByIP.Get(20) != ue {
		t.Fatal("insert not applied")
	}
	q.Push(Update{Op: OpRekey, OldTEID: 10, TEID: 11, UE: ue})
	q.Drain(ix)
	if ix.ByTEID.Get(10) != nil || ix.ByTEID.Get(11) != ue {
		t.Fatal("rekey not applied")
	}
	q.Push(Update{Op: OpDelete, TEID: 11, UEIP: 20})
	q.Drain(ix)
	if ix.ByTEID.Get(11) != nil || ix.ByIP.Get(20) != nil {
		t.Fatal("delete not applied")
	}
}

func TestUpdateQueueBackpressure(t *testing.T) {
	q := NewUpdateQueue(2)
	if !q.Push(Update{Op: OpInsert, TEID: 1, UE: &UE{}}) {
		t.Fatal("first push failed")
	}
	if !q.Push(Update{Op: OpInsert, TEID: 2, UE: &UE{}}) {
		t.Fatal("second push failed")
	}
	if q.Push(Update{Op: OpInsert, TEID: 3, UE: &UE{}}) {
		t.Fatal("push into full queue succeeded")
	}
}

func TestDrainTwoLevel(t *testing.T) {
	tl := NewTwoLevel(16, 64)
	q := NewUpdateQueue(64)
	ue := newTestUE(1, 5, 50)
	tl.InsertSecondary(5, 50, ue)
	q.Push(Update{Op: OpInsert, TEID: 5, UEIP: 50, UE: ue})
	q.DrainTwoLevel(tl)
	if tl.LookupPrimaryOnly(5) != ue {
		t.Fatal("promote via queue failed")
	}
	if got, _ := tl.Lookup(50, false); got != ue {
		t.Fatal("address not promoted")
	}
	q.Push(Update{Op: OpDelete, TEID: 5, UEIP: 50})
	q.DrainTwoLevel(tl)
	if tl.LookupPrimaryOnly(5) != nil {
		t.Fatal("evict via queue failed")
	}
	if got, _ := tl.Lookup(50, false); got == nil || got != ue {
		t.Fatal("secondary must still hold the device after eviction")
	}
}

func TestSnapshotMarshalRoundTrip(t *testing.T) {
	ue := newTestUE(123456789012345, 0xabcd, 0x0a0a0a0a)
	ue.WriteCtrl(func(c *ControlState) {
		c.GUTI = 999
		c.ECGI = 77
		c.TAI = 5
		c.TAIList = [8]uint16{1, 2, 3}
		c.TAICount = 3
		c.DownlinkTEID = 0x1111
		c.ENBAddr = 0x0b0b0b0b
		c.AMBRUplink = 100e6
		c.AMBRDownlink = 200e6
		c.RuleIDs = [4]uint32{9, 8, 7, 6}
		c.RuleCount = 4
		c.IoT = true
		c.LastActive = 424242
		c.KASME = [32]byte{1, 2, 3}
		c.NextSQN = 17
		c.Bearers[0].TFT = bpfFilter()
	})
	ue.WriteCounters(func(c *CounterState) {
		c.UplinkBytes = 1
		c.DownlinkBytes = 2
		c.UplinkPackets = 3
		c.DownlinkPackets = 4
		c.DroppedPackets = 5
		c.RuleBytes = [4]uint64{10, 20, 30, 40}
	})
	cs, cnt := ue.Snapshot()
	buf := make([]byte, SnapshotSize)
	n, err := MarshalSnapshot(buf, &cs, &cnt)
	if err != nil {
		t.Fatal(err)
	}
	if n != SnapshotSize {
		t.Fatalf("marshal wrote %d bytes, SnapshotSize=%d", n, SnapshotSize)
	}
	var cs2 ControlState
	var cnt2 CounterState
	if err := UnmarshalSnapshot(buf, &cs2, &cnt2); err != nil {
		t.Fatal(err)
	}
	if cs2 != cs {
		t.Fatalf("control state mismatch:\n got %+v\nwant %+v", cs2, cs)
	}
	if cnt2 != cnt {
		t.Fatalf("counter state mismatch: %+v vs %+v", cnt2, cnt)
	}
}

func TestSnapshotRejectsBadInput(t *testing.T) {
	var cs ControlState
	var cnt CounterState
	if err := UnmarshalSnapshot(make([]byte, 10), &cs, &cnt); err != ErrBadSnapshot {
		t.Fatalf("short: %v", err)
	}
	buf := make([]byte, SnapshotSize)
	buf[0] = 99 // wrong version
	if err := UnmarshalSnapshot(buf, &cs, &cnt); err != ErrBadSnapshot {
		t.Fatalf("version: %v", err)
	}
	if _, err := MarshalSnapshot(make([]byte, 10), &cs, &cnt); err != ErrBadSnapshot {
		t.Fatalf("small dst: %v", err)
	}
}

func bpfFilter() bpf.FilterSpec {
	return bpf.FilterSpec{
		DstAddr:   0x0a000000,
		DstPrefix: 8,
		Proto:     6,
		DstPortLo: 80, DstPortHi: 80,
		Ret: 1,
	}
}

func BenchmarkDataPathLookup(b *testing.B) {
	for _, mode := range []LockMode{LockModePEPC, LockModeDatapathWriter, LockModeGiant} {
		b.Run(mode.String(), func(b *testing.B) {
			tb := NewTable(mode, 1<<16)
			for i := uint32(1); i <= 1<<16; i++ {
				tb.Insert(newTestUE(uint64(i), i, 0x0a000000+i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				teid := uint32(i)&0xffff + 1
				tb.DataPathTEID(teid, func(_ *ControlState, c *CounterState) {
					c.UplinkPackets++
				})
			}
		})
	}
}

// TestGiantLockWriterExcludesAllReaders verifies the mechanism behind the
// paper's Figure 12 deterministically (the throughput collapse itself is
// a parallel effect a single-CPU host cannot exhibit): while a control
// write on user A is in progress, the giant-lock design blocks data-path
// access to EVERY user, whereas PEPC's per-user locks only block user A.
func TestGiantLockWriterExcludesAllReaders(t *testing.T) {
	for _, mode := range []LockMode{LockModeGiant, LockModePEPC} {
		t.Run(mode.String(), func(t *testing.T) {
			tb := NewTable(mode, 16)
			ueA := newTestUE(1, 1, 101)
			ueB := newTestUE(2, 2, 102)
			tb.Insert(ueA)
			tb.Insert(ueB)

			writerIn := make(chan struct{})
			writerRelease := make(chan struct{})
			writerOut := make(chan struct{})
			go func() {
				tb.CtrlWrite(ueA, func(c *ControlState) {
					close(writerIn)
					<-writerRelease
				})
				close(writerOut)
			}()
			<-writerIn // the write lock on A (or the table) is now held

			// A data-path access to user B must complete while the write
			// is still in progress under PEPC, and must NOT complete under
			// the giant lock.
			readDone := make(chan struct{})
			go func() {
				tb.DataPathTEID(2, func(_ *ControlState, c *CounterState) {
					c.UplinkPackets++
				})
				close(readDone)
			}()

			select {
			case <-readDone:
				if mode == LockModeGiant {
					t.Fatal("giant lock: reader of user B proceeded during a write to user A")
				}
			case <-time.After(100 * time.Millisecond):
				if mode == LockModePEPC {
					t.Fatal("PEPC: reader of user B blocked by a write to user A")
				}
			}
			close(writerRelease)
			<-writerOut
			select {
			case <-readDone:
			case <-time.After(time.Second):
				t.Fatal("reader never completed after write finished")
			}
		})
	}
}

// TestTableModelProperty runs randomized Insert/Remove/Rekey/DataPath/
// CtrlWrite sequences against every lock mode and checks the table agrees
// with a plain reference model at every step.
func TestTableModelProperty(t *testing.T) {
	for _, mode := range []LockMode{LockModePEPC, LockModeDatapathWriter, LockModeGiant} {
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			tb := NewTable(mode, 64)
			type entry struct {
				ue   *UE
				teid uint32
				ip   uint32
			}
			model := map[uint64]*entry{}
			teidOf := map[uint32]uint64{}
			nextTEID := uint32(1)
			for step := 0; step < 20000; step++ {
				switch rng.Intn(5) {
				case 0: // insert
					imsi := uint64(rng.Intn(200) + 1)
					ue := newTestUE(imsi, nextTEID, 0x0a000000+nextTEID)
					err := tb.Insert(ue)
					if _, dup := model[imsi]; dup {
						if err != ErrDuplicate {
							t.Fatalf("step %d: duplicate insert err=%v", step, err)
						}
					} else {
						if err != nil {
							t.Fatalf("step %d: insert: %v", step, err)
						}
						model[imsi] = &entry{ue: ue, teid: nextTEID, ip: 0x0a000000 + nextTEID}
						teidOf[nextTEID] = imsi
						nextTEID++
					}
				case 1: // remove
					imsi := uint64(rng.Intn(200) + 1)
					ue, err := tb.Remove(imsi)
					if e, ok := model[imsi]; ok {
						if err != nil || ue != e.ue {
							t.Fatalf("step %d: remove: %v %p", step, err, ue)
						}
						delete(teidOf, e.teid)
						delete(model, imsi)
					} else if err != ErrNotFound {
						t.Fatalf("step %d: remove absent: %v", step, err)
					}
				case 2: // rekey
					imsi := uint64(rng.Intn(200) + 1)
					if e, ok := model[imsi]; ok {
						old := e.teid
						e.teid = nextTEID
						nextTEID++
						tb.CtrlWrite(e.ue, func(c *ControlState) { c.UplinkTEID = e.teid })
						tb.Rekey(old, e.teid, e.ue)
						delete(teidOf, old)
						teidOf[e.teid] = imsi
					}
				case 3: // data path by TEID
					teid := uint32(rng.Intn(int(nextTEID)) + 1)
					found := tb.DataPathTEID(teid, func(_ *ControlState, c *CounterState) {
						c.UplinkPackets++
					})
					_, want := teidOf[teid]
					if found != want {
						t.Fatalf("step %d: lookup teid %d: found=%v want=%v", step, teid, found, want)
					}
				default: // control lookup by IMSI
					imsi := uint64(rng.Intn(200) + 1)
					got := tb.LookupIMSI(imsi)
					if e, ok := model[imsi]; ok {
						if got != e.ue {
							t.Fatalf("step %d: lookup imsi: %p want %p", step, got, e.ue)
						}
					} else if got != nil {
						t.Fatalf("step %d: lookup absent imsi returned %p", step, got)
					}
				}
				if tb.Len() != len(model) {
					t.Fatalf("step %d: len %d vs model %d", step, tb.Len(), len(model))
				}
			}
		})
	}
}
