package state

import "pepc/internal/ring"

// This file implements the control→data update channel of a PEPC slice
// (Listing 1's notification path, §7.2 "PEPC batches updates to the data
// plane, related to the insertion or deletion of a specific user state").
// The control thread enqueues index operations; the data thread owns its
// index maps and applies queued operations between packet batches — by
// default every SyncEvery packets (the paper syncs every 32).

// DefaultSyncEvery is the paper's batching interval: the data plane syncs
// updates from the control plane every 32 packets.
const DefaultSyncEvery = 32

// UpdateOp is the kind of index change.
type UpdateOp uint8

// Update operations.
const (
	// OpInsert adds the user to the data-path indexes (attach, or
	// promotion from the secondary table).
	OpInsert UpdateOp = iota
	// OpDelete removes the user from the data-path indexes (detach,
	// eviction to the secondary table, or migration away).
	OpDelete
	// OpRekey retargets the TEID index after a handover changed the
	// user's uplink TEID.
	OpRekey
)

// Update is one control→data index operation.
type Update struct {
	Op      UpdateOp
	TEID    uint32 // uplink TEID index key (OpInsert/OpDelete), new TEID (OpRekey)
	OldTEID uint32 // previous TEID (OpRekey)
	UEIP    uint32 // UE address index key, 0 to skip the IP index
	UE      *UE
}

// Indexes are the data-thread-owned lookup structures (Listing 1's
// dp_state): uplink traffic resolves by TEID, downlink by UE IP. Only the
// data thread touches them; no locks.
//
// Two storage layouts exist behind the same operations. The pointer
// layout (NewIndexes) maps key→*UE. The handle layout
// (NewHandleIndexes) maps key→Arena handle in pointer-free maps, with
// the hot state resolved out of the arena's slabs — the cache- and
// GC-friendly form (DESIGN.md §4.10). Updates carry *UE either way;
// the handle is derived from the context's arena binding at apply time.
type Indexes struct {
	ByTEID *U32Map
	ByIP   *U32Map

	// Handle layout (nil in the pointer layout).
	A       *Arena
	HByTEID *H32Map
	HByIP   *H32Map
}

// NewIndexes returns pointer-layout data-path indexes sized for
// sizeHint users.
func NewIndexes(sizeHint int) *Indexes {
	return &Indexes{ByTEID: NewU32Map(sizeHint), ByIP: NewU32Map(sizeHint)}
}

// NewHandleIndexes returns handle-layout indexes resolving into a.
func NewHandleIndexes(sizeHint int, a *Arena) *Indexes {
	return &Indexes{A: a, HByTEID: NewH32Map(sizeHint), HByIP: NewH32Map(sizeHint)}
}

// Handles reports whether the indexes use the handle layout.
func (ix *Indexes) Handles() bool { return ix.A != nil }

// put registers ue under both keys (0 skips a domain).
func (ix *Indexes) put(teid, ip uint32, ue *UE) {
	if ix.A != nil {
		h := ue.Handle()
		if teid != 0 {
			ix.HByTEID.Put(teid, h)
		}
		if ip != 0 {
			ix.HByIP.Put(ip, h)
		}
		return
	}
	if teid != 0 {
		ix.ByTEID.Put(teid, ue)
	}
	if ip != 0 {
		ix.ByIP.Put(ip, ue)
	}
}

// del removes both keys (0 skips a domain).
func (ix *Indexes) del(teid, ip uint32) {
	if ix.A != nil {
		if teid != 0 {
			ix.HByTEID.Delete(teid)
		}
		if ip != 0 {
			ix.HByIP.Delete(ip)
		}
		return
	}
	if teid != 0 {
		ix.ByTEID.Delete(teid)
	}
	if ip != 0 {
		ix.ByIP.Delete(ip)
	}
}

// lenTEID returns the TEID-domain population.
func (ix *Indexes) lenTEID() int {
	if ix.A != nil {
		return ix.HByTEID.Len()
	}
	return ix.ByTEID.Len()
}

// GetUE resolves one key to the cold context (nil on miss) in either
// layout.
func (ix *Indexes) GetUE(key uint32, uplink bool) *UE {
	if ix.A != nil {
		var h Handle
		if uplink {
			h = ix.HByTEID.Get(key)
		} else {
			h = ix.HByIP.Get(key)
		}
		if e := ix.A.At(h); e != nil {
			return e.U
		}
		return nil
	}
	if uplink {
		return ix.ByTEID.Get(key)
	}
	return ix.ByIP.Get(key)
}

// GetHotBatch resolves keys[i] into hot slots out[i] (nil on miss) in
// either layout, using the maps' software-pipelined batch probes. Data
// thread; zero allocations.
func (ix *Indexes) GetHotBatch(keys []uint32, uplink bool, out []*HotUE) {
	if ix.A != nil {
		m := ix.HByTEID
		if !uplink {
			m = ix.HByIP
		}
		m.GetHotBatch(keys, out, ix.A)
		return
	}
	m := ix.ByTEID
	if !uplink {
		m = ix.ByIP
	}
	m.GetHotBatch(keys, out)
}

// rangeUE iterates the TEID domain as cold contexts in either layout.
// Handle entries that went stale mid-scan are skipped.
func (ix *Indexes) rangeUE(fn func(teid uint32, ue *UE) bool) {
	if ix.A != nil {
		ix.HByTEID.Range(func(teid uint32, h Handle) bool {
			if e := ix.A.At(h); e != nil && e.U != nil {
				return fn(teid, e.U)
			}
			return true
		})
		return
	}
	ix.ByTEID.Range(fn)
}

// Apply executes one update against the indexes.
func (ix *Indexes) Apply(u Update) {
	switch u.Op {
	case OpInsert:
		ix.put(u.TEID, u.UEIP, u.UE)
	case OpDelete:
		ix.del(u.TEID, u.UEIP)
	case OpRekey:
		ix.del(u.OldTEID, 0)
		if u.TEID != 0 && u.UE != nil {
			ix.put(u.TEID, 0, u.UE)
		}
	}
}

// UpdateQueue carries updates from the control thread to the data thread.
// MPSC because the node scheduler (migrations) and the control thread both
// produce.
type UpdateQueue struct {
	q *ring.MPSC[Update]
}

// NewUpdateQueue returns a queue with the given capacity (power of two).
func NewUpdateQueue(capacity int) *UpdateQueue {
	return &UpdateQueue{q: ring.MustMPSC[Update](capacity)}
}

// Push enqueues an update, reporting false when the queue is full (the
// control plane then applies backpressure to signaling).
func (uq *UpdateQueue) Push(u Update) bool { return uq.q.Enqueue(u) }

// PushBatch enqueues a batch of updates accumulated by one signaling
// drain, returning how many fit. The batched control path stages its
// index operations in a scratch slice and hands them over in one call,
// amortizing the per-update call overhead the same way the data plane
// batches packets.
func (uq *UpdateQueue) PushBatch(us []Update) int { return uq.q.EnqueueBatch(us) }

// Drain applies every queued update to ix, returning the count. Data
// thread only; called between packet batches.
func (uq *UpdateQueue) Drain(ix *Indexes) int {
	n := 0
	for {
		u, ok := uq.q.Dequeue()
		if !ok {
			return n
		}
		ix.Apply(u)
		n++
	}
}

// DrainFunc dequeues every queued update into fn without applying it,
// returning the count. This is the raw drain crash recovery uses: the
// surviving queue of a failed slice is replayed against the restored
// checkpoint by snapshotting the referenced contexts, never by aliasing
// them into the new slice's indexes. Single consumer only.
func (uq *UpdateQueue) DrainFunc(fn func(Update)) int {
	n := 0
	for {
		u, ok := uq.q.Dequeue()
		if !ok {
			return n
		}
		fn(u)
		n++
	}
}

// DrainTwoLevel applies queued updates to a two-level store's primary
// table (promotions and evictions). Data thread only.
func (uq *UpdateQueue) DrainTwoLevel(t *TwoLevel) int {
	n := 0
	for {
		u, ok := uq.q.Dequeue()
		if !ok {
			return n
		}
		switch u.Op {
		case OpInsert:
			t.Promote(u.TEID, u.UEIP, u.UE)
		case OpDelete:
			t.Evict(u.TEID, u.UEIP)
		case OpRekey:
			t.Evict(u.OldTEID, 0)
			if u.UE != nil {
				t.Promote(u.TEID, 0, u.UE)
			}
		}
		n++
	}
}

// Len returns the approximate queue depth.
func (uq *UpdateQueue) Len() int { return uq.q.Len() }
