package state

import "pepc/internal/pkt"

// U32Map is an open-addressing hash table from uint32 keys (TEIDs, IPv4
// addresses) to *UE, tuned for the data path: no allocation on lookup,
// linear probing for cache locality, and a load factor capped at 3/4.
// Key 0 is reserved (never a valid TEID or UE address in this system).
//
// A U32Map is not internally synchronized: in PEPC each thread owns its
// own index map (Listing 1's dp_state / cp_state) and cross-thread changes
// arrive through the update queue. The giant-lock baseline wraps one map
// in a table-level lock instead.
type U32Map struct {
	keys  []uint32
	vals  []*UE
	mask  uint64
	n     int
	grave int // tombstone count
}

const u32MapMinCap = 16

// NewU32Map returns a map pre-sized for sizeHint entries.
func NewU32Map(sizeHint int) *U32Map {
	capacity := u32MapMinCap
	for capacity*3/4 < sizeHint {
		capacity <<= 1
	}
	return &U32Map{
		keys: make([]uint32, capacity),
		vals: make([]*UE, capacity),
		mask: uint64(capacity - 1),
	}
}

// tombstone marks a deleted slot; probes continue past it.
const tombstone = ^uint32(0)

// Len returns the number of live entries.
func (m *U32Map) Len() int { return m.n }

// Cap returns the current slot count (diagnostics; tracks table size for
// the cache-behaviour experiments).
func (m *U32Map) Cap() int { return len(m.keys) }

// Get returns the value for key, or nil.
func (m *U32Map) Get(key uint32) *UE {
	if key == 0 || key == tombstone {
		return nil
	}
	i := pkt.HashUint32(key) & m.mask
	for {
		k := m.keys[i]
		if k == key {
			return m.vals[i]
		}
		if k == 0 {
			return nil
		}
		i = (i + 1) & m.mask
	}
}

// GetBatch resolves keys[i] into out[i] for all i (nil on miss). One
// call for a whole batch keeps the probe loop hot in the instruction
// cache and amortizes the per-call overhead across the batch — the
// stage-oriented data plane resolves all of a batch's distinct keys
// through it.
func (m *U32Map) GetBatch(keys []uint32, out []*UE) {
	if len(keys) == 0 {
		return
	}
	_ = out[len(keys)-1]
	for i, k := range keys {
		out[i] = m.Get(k)
	}
}

// Put inserts or replaces the value for key. Returns false for reserved
// keys.
func (m *U32Map) Put(key uint32, v *UE) bool {
	if key == 0 || key == tombstone || v == nil {
		return false
	}
	if (m.n+m.grave+1)*4 >= len(m.keys)*3 {
		m.grow()
	}
	i := pkt.HashUint32(key) & m.mask
	firstTomb := -1
	for {
		k := m.keys[i]
		if k == key {
			m.vals[i] = v
			return true
		}
		if k == tombstone && firstTomb < 0 {
			firstTomb = int(i)
		}
		if k == 0 {
			if firstTomb >= 0 {
				i = uint64(firstTomb)
				m.grave--
			}
			m.keys[i] = key
			m.vals[i] = v
			m.n++
			return true
		}
		i = (i + 1) & m.mask
	}
}

// Delete removes key, returning the previous value.
func (m *U32Map) Delete(key uint32) *UE {
	if key == 0 || key == tombstone {
		return nil
	}
	i := pkt.HashUint32(key) & m.mask
	for {
		k := m.keys[i]
		if k == key {
			v := m.vals[i]
			m.keys[i] = tombstone
			m.vals[i] = nil
			m.n--
			m.grave++
			return v
		}
		if k == 0 {
			return nil
		}
		i = (i + 1) & m.mask
	}
}

// Range calls fn for each entry until fn returns false.
func (m *U32Map) Range(fn func(key uint32, v *UE) bool) {
	for i, k := range m.keys {
		if k != 0 && k != tombstone {
			if !fn(k, m.vals[i]) {
				return
			}
		}
	}
}

func (m *U32Map) grow() {
	newCap := len(m.keys)
	if m.n*2 >= newCap { // genuine growth, not just tombstone cleanup
		newCap <<= 1
	}
	keys := m.keys
	vals := m.vals
	m.keys = make([]uint32, newCap)
	m.vals = make([]*UE, newCap)
	m.mask = uint64(newCap - 1)
	m.n = 0
	m.grave = 0
	for i, k := range keys {
		if k != 0 && k != tombstone {
			m.Put(k, vals[i])
		}
	}
}

// U64Map is the 64-bit-keyed variant for IMSI/GUTI indexes on the control
// path. Key 0 is reserved.
type U64Map struct {
	keys  []uint64
	vals  []*UE
	mask  uint64
	n     int
	grave int
}

const tombstone64 = ^uint64(0)

// NewU64Map returns a map pre-sized for sizeHint entries.
func NewU64Map(sizeHint int) *U64Map {
	capacity := u32MapMinCap
	for capacity*3/4 < sizeHint {
		capacity <<= 1
	}
	return &U64Map{
		keys: make([]uint64, capacity),
		vals: make([]*UE, capacity),
		mask: uint64(capacity - 1),
	}
}

// Len returns the number of live entries.
func (m *U64Map) Len() int { return m.n }

// Get returns the value for key, or nil.
func (m *U64Map) Get(key uint64) *UE {
	if key == 0 || key == tombstone64 {
		return nil
	}
	i := pkt.HashUint64(key) & m.mask
	for {
		k := m.keys[i]
		if k == key {
			return m.vals[i]
		}
		if k == 0 {
			return nil
		}
		i = (i + 1) & m.mask
	}
}

// Put inserts or replaces the value for key.
func (m *U64Map) Put(key uint64, v *UE) bool {
	if key == 0 || key == tombstone64 || v == nil {
		return false
	}
	if (m.n+m.grave+1)*4 >= len(m.keys)*3 {
		m.grow()
	}
	i := pkt.HashUint64(key) & m.mask
	firstTomb := -1
	for {
		k := m.keys[i]
		if k == key {
			m.vals[i] = v
			return true
		}
		if k == tombstone64 && firstTomb < 0 {
			firstTomb = int(i)
		}
		if k == 0 {
			if firstTomb >= 0 {
				i = uint64(firstTomb)
				m.grave--
			}
			m.keys[i] = key
			m.vals[i] = v
			m.n++
			return true
		}
		i = (i + 1) & m.mask
	}
}

// Delete removes key, returning the previous value.
func (m *U64Map) Delete(key uint64) *UE {
	if key == 0 || key == tombstone64 {
		return nil
	}
	i := pkt.HashUint64(key) & m.mask
	for {
		k := m.keys[i]
		if k == key {
			v := m.vals[i]
			m.keys[i] = tombstone64
			m.vals[i] = nil
			m.n--
			m.grave++
			return v
		}
		if k == 0 {
			return nil
		}
		i = (i + 1) & m.mask
	}
}

// Range calls fn for each entry until fn returns false.
func (m *U64Map) Range(fn func(key uint64, v *UE) bool) {
	for i, k := range m.keys {
		if k != 0 && k != tombstone64 {
			if !fn(k, m.vals[i]) {
				return
			}
		}
	}
}

func (m *U64Map) grow() {
	newCap := len(m.keys)
	if m.n*2 >= newCap {
		newCap <<= 1
	}
	keys := m.keys
	vals := m.vals
	m.keys = make([]uint64, newCap)
	m.vals = make([]*UE, newCap)
	m.mask = uint64(newCap - 1)
	m.n = 0
	m.grave = 0
	for i, k := range keys {
		if k != 0 && k != tombstone64 {
			m.Put(k, vals[i])
		}
	}
}
