package state

// U32Map is a hash table from uint32 keys (TEIDs, IPv4 addresses) to
// *UE, tuned for the data path: no allocation on lookup, fingerprinted
// group probing (see group.go) so a probe usually costs one control-word
// load plus one key compare, and a load factor capped at 3/4. Key 0 is
// reserved (never a valid TEID or UE address in this system), as is
// ^uint32(0) (the historical tombstone sentinel, kept reserved for
// compatibility).
//
// A U32Map is not internally synchronized: in PEPC each thread owns its
// own index map (Listing 1's dp_state / cp_state) and cross-thread changes
// arrive through the update queue. The giant-lock baseline wraps one map
// in a table-level lock instead.
type U32Map struct {
	g *g32[*UE]
}

const u32MapMinCap = 16

// tombstone is the reserved all-ones key (kept from the linear-probe
// implementation's sentinel; still rejected at the API).
const tombstone = ^uint32(0)

const tombstone64 = ^uint64(0)

// NewU32Map returns a map pre-sized for sizeHint entries.
func NewU32Map(sizeHint int) *U32Map {
	return &U32Map{g: newG32[*UE](sizeHint)}
}

// Len returns the number of live entries.
func (m *U32Map) Len() int { return m.g.n }

// Cap returns the current slot count (diagnostics; tracks table size for
// the cache-behaviour experiments).
func (m *U32Map) Cap() int { return m.g.slots() }

// Get returns the value for key, or nil.
func (m *U32Map) Get(key uint32) *UE {
	if key == 0 || key == tombstone {
		return nil
	}
	v, _ := m.g.get(key)
	return v
}

// GetBatch resolves keys[i] into out[i] for all i (nil on miss). The
// batch is processed in two passes per chunk — hash and home-group
// control word for every key first, then the probes — so the group
// loads are software-pipelined instead of serializing behind each
// probe's cache miss.
func (m *U32Map) GetBatch(keys []uint32, out []*UE) {
	if len(keys) == 0 {
		return
	}
	_ = out[len(keys)-1]
	for len(keys) > batchChunk {
		m.g.getChunk(keys[:batchChunk], out[:batchChunk])
		keys, out = keys[batchChunk:], out[batchChunk:]
	}
	m.g.getChunk(keys, out)
}

// GetHotBatch resolves keys[i] into the users' hot halves (nil on
// miss). Same pipelining as GetBatch; the *UE→*HotUE hop happens while
// the chunk's map lines are still warm.
func (m *U32Map) GetHotBatch(keys []uint32, out []*HotUE) {
	if len(keys) == 0 {
		return
	}
	_ = out[len(keys)-1]
	var ues [batchChunk]*UE
	for len(keys) > 0 {
		c := len(keys)
		if c > batchChunk {
			c = batchChunk
		}
		m.g.getChunk(keys[:c], ues[:c])
		for i, ue := range ues[:c] {
			if ue != nil {
				out[i] = ue.Hot()
			} else {
				out[i] = nil
			}
		}
		keys, out = keys[c:], out[c:]
	}
}

// Put inserts or replaces the value for key. Returns false for reserved
// keys.
func (m *U32Map) Put(key uint32, v *UE) bool {
	if key == 0 || key == tombstone || v == nil {
		return false
	}
	m.g.put(key, v)
	return true
}

// Delete removes key, returning the previous value.
func (m *U32Map) Delete(key uint32) *UE {
	if key == 0 || key == tombstone {
		return nil
	}
	v, _ := m.g.del(key)
	return v
}

// Range calls fn for each entry until fn returns false.
func (m *U32Map) Range(fn func(key uint32, v *UE) bool) { m.g.rng(fn) }

// U64Map is the 64-bit-keyed variant for IMSI/GUTI indexes on the control
// path. Key 0 is reserved.
type U64Map struct {
	g *g64[*UE]
}

// NewU64Map returns a map pre-sized for sizeHint entries.
func NewU64Map(sizeHint int) *U64Map {
	return &U64Map{g: newG64[*UE](sizeHint)}
}

// Len returns the number of live entries.
func (m *U64Map) Len() int { return m.g.n }

// Cap returns the current slot count.
func (m *U64Map) Cap() int { return m.g.slots() }

// Get returns the value for key, or nil.
func (m *U64Map) Get(key uint64) *UE {
	if key == 0 || key == tombstone64 {
		return nil
	}
	v, _ := m.g.get(key)
	return v
}

// GetBatch resolves keys[i] into out[i] for all i (nil on miss),
// software-pipelined like U32Map.GetBatch.
func (m *U64Map) GetBatch(keys []uint64, out []*UE) {
	if len(keys) == 0 {
		return
	}
	_ = out[len(keys)-1]
	for len(keys) > batchChunk {
		m.g.getChunk(keys[:batchChunk], out[:batchChunk])
		keys, out = keys[batchChunk:], out[batchChunk:]
	}
	m.g.getChunk(keys, out)
}

// Put inserts or replaces the value for key.
func (m *U64Map) Put(key uint64, v *UE) bool {
	if key == 0 || key == tombstone64 || v == nil {
		return false
	}
	m.g.put(key, v)
	return true
}

// Delete removes key, returning the previous value.
func (m *U64Map) Delete(key uint64) *UE {
	if key == 0 || key == tombstone64 {
		return nil
	}
	v, _ := m.g.del(key)
	return v
}

// Range calls fn for each entry until fn returns false.
func (m *U64Map) Range(fn func(key uint64, v *UE) bool) { m.g.rng(fn) }

// H32Map maps uint32 keys to Arena handles. It is the pointer-free
// index used by the handle state layout: the key, value and control
// arrays contain no pointers at all, so a multi-million-entry secondary
// index is invisible to the garbage collector's mark phase. Handle 0
// (invalid) plays the role nil plays in U32Map.
type H32Map struct {
	g *g32[Handle]
}

// NewH32Map returns a handle map pre-sized for sizeHint entries.
func NewH32Map(sizeHint int) *H32Map {
	return &H32Map{g: newG32[Handle](sizeHint)}
}

// Len returns the number of live entries.
func (m *H32Map) Len() int { return m.g.n }

// Cap returns the current slot count.
func (m *H32Map) Cap() int { return m.g.slots() }

// Get returns the handle for key, or 0.
func (m *H32Map) Get(key uint32) Handle {
	if key == 0 || key == tombstone {
		return 0
	}
	h, _ := m.g.get(key)
	return h
}

// GetBatch resolves keys[i] into out[i] for all i (0 on miss),
// software-pipelined like U32Map.GetBatch.
func (m *H32Map) GetBatch(keys []uint32, out []Handle) {
	if len(keys) == 0 {
		return
	}
	_ = out[len(keys)-1]
	for len(keys) > batchChunk {
		m.g.getChunk(keys[:batchChunk], out[:batchChunk])
		keys, out = keys[batchChunk:], out[batchChunk:]
	}
	m.g.getChunk(keys, out)
}

// GetHotBatch resolves keys[i] through a into hot slots (nil on miss or
// stale generation). The handle probe touches only pointer-free arrays;
// the slab access is the batch's single dependent load.
func (m *H32Map) GetHotBatch(keys []uint32, out []*HotUE, a *Arena) {
	if len(keys) == 0 {
		return
	}
	_ = out[len(keys)-1]
	var hs [batchChunk]Handle
	for len(keys) > 0 {
		c := len(keys)
		if c > batchChunk {
			c = batchChunk
		}
		m.g.getChunk(keys[:c], hs[:c])
		for i, h := range hs[:c] {
			out[i] = a.At(h)
		}
		keys, out = keys[c:], out[c:]
	}
}

// Put inserts or replaces the handle for key. Returns false for
// reserved keys or the invalid handle.
func (m *H32Map) Put(key uint32, h Handle) bool {
	if key == 0 || key == tombstone || h == 0 {
		return false
	}
	m.g.put(key, h)
	return true
}

// Delete removes key, returning the previous handle (0 if absent).
func (m *H32Map) Delete(key uint32) Handle {
	if key == 0 || key == tombstone {
		return 0
	}
	h, _ := m.g.del(key)
	return h
}

// Range calls fn for each entry until fn returns false.
func (m *H32Map) Range(fn func(key uint32, h Handle) bool) { m.g.rng(fn) }
