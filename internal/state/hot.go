package state

import (
	"sync"
	"sync/atomic"
)

// FastCtrl is the per-packet subset of ControlState: the handful of
// fields the data plane's verdict stage actually reads for every run.
// It is pointer-free and about half a cache line, so the forwarding
// path can snapshot it with one short seqlock copy instead of copying
// the ~300-byte full control state. It is derived (published) from
// ControlState on every control write; the full state stays on the
// cold UE for signaling, migration and policed-user rebuilds.
type FastCtrl struct {
	UEAddr       uint32
	DownlinkTEID uint32
	ENBAddr      uint32
	Epoch        uint32
	RuleIDs      [4]uint32
	RuleCount    uint8
	BearerCount  uint8
	Attached     bool
	IoT          bool
	// Policed is precomputed from AMBR/MBR configuration so the data
	// thread can skip the limiter rebuild's cold-state read entirely for
	// unpoliced users (the common case at population scale).
	Policed bool
}

// fastView derives the published fast-path view. Caller holds the
// control write lock.
func (c *ControlState) fastView(f *FastCtrl) {
	f.UEAddr = c.UEAddr
	f.DownlinkTEID = c.DownlinkTEID
	f.ENBAddr = c.ENBAddr
	f.Epoch = c.Epoch
	f.RuleIDs = c.RuleIDs
	f.RuleCount = c.RuleCount
	f.BearerCount = c.BearerCount
	f.Attached = c.Attached
	f.IoT = c.IoT
	f.Policed = c.policed()
}

// policed reports whether any rate bound is configured; mirrors the
// limiter-rebuild condition in the data plane.
func (c *ControlState) policed() bool {
	if c.AMBRUplink != 0 || c.AMBRDownlink != 0 {
		return true
	}
	for i := 0; i < int(c.BearerCount); i++ {
		b := &c.Bearers[i]
		if b.MBRUplink != 0 || b.MBRDownlink != 0 {
			return true
		}
	}
	return false
}

// HotUE is the per-user state the data plane touches per packet: the
// fast-path control view behind its own small seqlock, the data-written
// counters, and the data-thread-private derived state. In the handle
// layout these live contiguously in Arena slabs (dense, pointer-light
// memory the index resolves into); in the pointer layout every UE
// embeds one inline.
//
// Single-writer split, as on the cold half: the control thread writes
// Fast (via publish) and reads Counters; the data thread reads Fast
// (ReadFast) and writes Counters; Priv is data-thread-private.
type HotUE struct {
	// seq is the fast-view sequence counter: odd while a publish is in
	// progress, even otherwise (same protocol as UE.seq).
	seq  atomic.Uint32
	Fast FastCtrl

	// fmu serializes publishers and backs the race-build fallback for
	// ReadFast (the optimistic copy is a deliberate validated race).
	fmu sync.RWMutex

	cmu      sync.RWMutex
	Counters CounterState

	// Priv is data-thread-private derived state (see DataPriv): no lock.
	Priv DataPriv

	// U points back at the owning cold context, for the rare fast-path
	// escapes (policed-user rebuilds, promotion requests, paging parks).
	// Set when the slot is bound; left in place on retire so in-flight
	// data-path references never observe nil.
	U *UE

	// self is the handle this slot was last bound under (0 for inline
	// hot state, which is never handle-addressed).
	self Handle

	// gen is the slot's current generation (1..255, 8 bits significant).
	// Arena.At validates a handle's generation against it, so handles
	// retired before a recycle miss instead of aliasing the new
	// occupant. Atomic because the control thread bumps it while the
	// data thread resolves handles.
	gen atomic.Uint32
}

// ReadFast copies the fast-path control view into dst without blocking
// the publisher: optimistic copy-and-validate with a bounded retry,
// then a locked fallback — the same protocol as UE.ReadCtrlSnapshot
// but over ~44 bytes instead of the whole control state.
func (h *HotUE) ReadFast(dst *FastCtrl) {
	if !raceEnabled {
		for try := 0; try < seqlockRetries; try++ {
			s1 := h.seq.Load()
			if s1&1 == 0 {
				*dst = h.Fast
				if h.seq.Load() == s1 {
					return
				}
			}
		}
	}
	h.fmu.RLock()
	*dst = h.Fast
	h.fmu.RUnlock()
}

// publish installs a new fast view under the seqlock protocol. Control
// thread only (called from the UE control-write path).
func (h *HotUE) publish(f *FastCtrl) {
	h.fmu.Lock()
	h.seq.Add(1)
	h.Fast = *f
	h.seq.Add(1)
	h.fmu.Unlock()
}

// WriteCounters runs fn with exclusive access to the counters (data
// thread only).
func (h *HotUE) WriteCounters(fn func(*CounterState)) {
	h.cmu.Lock()
	fn(&h.Counters)
	h.cmu.Unlock()
}

// ReadCounters runs fn with shared access to the counters (control
// thread, usage reporting).
func (h *HotUE) ReadCounters(fn func(*CounterState)) {
	h.cmu.RLock()
	fn(&h.Counters)
	h.cmu.RUnlock()
}

// Handle returns the handle this hot slot is addressed by (0 when the
// user lives in the pointer layout).
func (h *HotUE) Handle() Handle { return h.self }

// reset clears the occupant-specific hot state for reuse. Same caller
// contract as UE.Recycle: the retire fence guarantees no data-thread
// reference is live.
func (h *HotUE) reset() {
	h.Fast = FastCtrl{}
	h.Counters = CounterState{}
	h.Priv = DataPriv{}
	h.seq.Store(0)
}
