package state

import "testing"

func TestU32MapGetBatch(t *testing.T) {
	m := NewU32Map(16)
	ues := make([]*UE, 4)
	for i := range ues {
		ues[i] = &UE{}
		m.Put(uint32(i+1), ues[i])
	}
	keys := []uint32{2, 99, 1, 1, 4}
	out := make([]*UE, len(keys))
	m.GetBatch(keys, out)
	want := []*UE{ues[1], nil, ues[0], ues[0], ues[3]}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %p, want %p", i, out[i], want[i])
		}
	}
	// Empty batch is a no-op, not a panic.
	m.GetBatch(nil, nil)
}

// TestDataPathBatchAllModes checks the batched data-path entry against
// its per-key equivalent for every lock mode: same visit counts, same
// found totals, repeated keys served (the fine-grained modes reuse the
// previous lookup), misses skipped.
func TestDataPathBatchAllModes(t *testing.T) {
	for _, mode := range []LockMode{LockModePEPC, LockModeDatapathWriter, LockModeGiant} {
		t.Run(mode.String(), func(t *testing.T) {
			tb := NewTable(mode, 16)
			for i := 1; i <= 3; i++ {
				ue := &UE{}
				ue.WriteCtrl(func(c *ControlState) {
					c.IMSI = uint64(i)
					c.UplinkTEID = uint32(i)
					c.UEAddr = 0x0a000000 + uint32(i)
				})
				if err := tb.Insert(ue); err != nil {
					t.Fatal(err)
				}
			}
			// Runs with repeats, a miss in the middle, and an IMSI check to
			// prove fn sees the right user for each index.
			keys := []uint32{1, 1, 1, 404, 2, 3, 3}
			visited := make([]uint64, len(keys))
			found := tb.DataPathTEIDBatch(keys, func(i int, c *ControlState, cnt *CounterState) {
				visited[i] = c.IMSI
				cnt.UplinkPackets++
			})
			if found != 6 {
				t.Fatalf("found = %d, want 6", found)
			}
			wantIMSI := []uint64{1, 1, 1, 0, 2, 3, 3}
			for i, want := range wantIMSI {
				if visited[i] != want {
					t.Fatalf("visited[%d] = %d, want %d", i, visited[i], want)
				}
			}
			// Per-user counter totals match what per-key calls would give.
			counts := map[uint32]uint64{1: 3, 2: 1, 3: 2}
			for teid, want := range counts {
				var got uint64
				if !tb.DataPathTEID(teid, func(_ *ControlState, cnt *CounterState) { got = cnt.UplinkPackets }) {
					t.Fatalf("teid %d vanished", teid)
				}
				// The verification read itself did not bump anything.
				if got != want {
					t.Fatalf("teid %d counted %d, want %d", teid, got, want)
				}
			}
			// The IP-keyed variant resolves through the other index.
			ipKeys := []uint32{0x0a000002, 0x0a000002}
			n := tb.DataPathIPBatch(ipKeys, func(i int, c *ControlState, _ *CounterState) {
				if c.IMSI != 2 {
					t.Fatalf("ip batch visited imsi %d", c.IMSI)
				}
			})
			if n != 2 {
				t.Fatalf("ip batch found = %d", n)
			}
			// Empty batch.
			if got := tb.DataPathTEIDBatch(nil, nil); got != 0 {
				t.Fatalf("empty batch found %d", got)
			}
		})
	}
}

// TestTwoLevelLookupBatch covers the batched two-level probe: primary
// hits stay lock-free, all primary misses share one secondary read lock,
// fromSecondary marks exactly the secondary-served entries, and the miss
// counter advances per secondary hit.
func TestTwoLevelLookupBatch(t *testing.T) {
	tl := NewTwoLevel(8, 64)
	prim, sec := &UE{}, &UE{}
	tl.InsertSecondary(1, 0x0a000001, prim)
	tl.InsertSecondary(2, 0x0a000002, sec)
	tl.Promote(1, 0x0a000001, prim) // only user 1 is active

	keys := []uint32{1, 2, 404, 1}
	out := make([]*UE, len(keys))
	fromSec := make([]bool, len(keys))
	tl.LookupBatch(keys, true, out, fromSec)

	if out[0] != prim || fromSec[0] {
		t.Fatalf("primary hit: %p fromSec=%v", out[0], fromSec[0])
	}
	if out[1] != sec || !fromSec[1] {
		t.Fatalf("secondary hit: %p fromSec=%v", out[1], fromSec[1])
	}
	if out[2] != nil || fromSec[2] {
		t.Fatalf("miss resolved: %p fromSec=%v", out[2], fromSec[2])
	}
	if out[3] != prim || fromSec[3] {
		t.Fatalf("repeated primary hit: %p fromSec=%v", out[3], fromSec[3])
	}
	if tl.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", tl.Misses())
	}
	// Downlink domain goes through the IP indexes.
	ipKeys := []uint32{0x0a000002}
	tl.LookupBatch(ipKeys, false, out[:1], fromSec[:1])
	if out[0] != sec || !fromSec[0] {
		t.Fatalf("ip-domain secondary hit: %p fromSec=%v", out[0], fromSec[0])
	}
	// All-primary batch takes the early return (no secondary lock).
	tl.LookupBatch([]uint32{1, 1}, true, out[:2], fromSec[:2])
	if out[0] != prim || out[1] != prim {
		t.Fatal("all-primary batch failed")
	}
	// Empty batch is a no-op.
	tl.LookupBatch(nil, true, nil, nil)
}
