package state

import (
	"errors"
	"sync"
)

// LockMode selects one of the three shared-state designs the paper
// compares in §7.1 / Figure 12.
type LockMode uint8

const (
	// LockModePEPC: fine-grained per-user locks with the single-writer
	// split — the data thread takes a read lock on control state and a
	// write lock on its own counter state; the control thread the
	// reverse. This is PEPC's design.
	LockModePEPC LockMode = iota
	// LockModeDatapathWriter: fine-grained per-user lock, but a single
	// combined state record that both the data and control threads write,
	// so the data thread must take the exclusive lock per packet.
	LockModeDatapathWriter
	// LockModeGiant: one table-level lock protects the entire state
	// table; control updates exclude all data-path readers.
	LockModeGiant
)

// String implements fmt.Stringer.
func (m LockMode) String() string {
	switch m {
	case LockModePEPC:
		return "PEPC"
	case LockModeDatapathWriter:
		return "DatapathWriter"
	case LockModeGiant:
		return "GiantLock"
	}
	return "LockMode(?)"
}

// Table errors.
var (
	ErrDuplicate = errors.New("state: key already present")
	ErrNotFound  = errors.New("state: user not found")
)

// Table is a shared per-user state table indexed by uplink TEID, UE IP
// address and IMSI, with its concurrency discipline selected by LockMode.
// It is the single-table design of current EPCs (§3.2 "many current EPC
// implementations store all user state in a single table") and also serves
// as PEPC's control-plane-side store; PEPC's data thread normally owns its
// own Indexes fed by the update queue (see core).
type Table struct {
	mode LockMode

	// giantMu is the table-level lock in LockModeGiant; in the other
	// modes it is unused and idxMu alone protects the index structures
	// for the brief lookup/insert windows.
	giantMu sync.RWMutex
	idxMu   sync.RWMutex

	byTEID *U32Map
	byIP   *U32Map
	byIMSI *U64Map

	// dpCtrl is the data thread's control-state scratch: in PEPC mode the
	// per-packet control read is a seqlock snapshot into this buffer
	// rather than a locked read of ue.Ctrl, so a control write in flight
	// never stalls a packet. Only the data thread touches it (one data
	// thread per table), so it needs no lock.
	dpCtrl ControlState
}

// NewTable returns a table pre-sized for sizeHint users.
func NewTable(mode LockMode, sizeHint int) *Table {
	return &Table{
		mode:   mode,
		byTEID: NewU32Map(sizeHint),
		byIP:   NewU32Map(sizeHint),
		byIMSI: NewU64Map(sizeHint),
	}
}

// Mode returns the table's lock mode.
func (t *Table) Mode() LockMode { return t.mode }

// Len returns the number of users in the table.
func (t *Table) Len() int {
	t.lockIdxR()
	n := t.byIMSI.Len()
	t.unlockIdxR()
	return n
}

func (t *Table) lockIdxR() {
	if t.mode == LockModeGiant {
		t.giantMu.RLock()
	} else {
		t.idxMu.RLock()
	}
}

func (t *Table) unlockIdxR() {
	if t.mode == LockModeGiant {
		t.giantMu.RUnlock()
	} else {
		t.idxMu.RUnlock()
	}
}

func (t *Table) lockIdxW() {
	if t.mode == LockModeGiant {
		t.giantMu.Lock()
	} else {
		t.idxMu.Lock()
	}
}

func (t *Table) unlockIdxW() {
	if t.mode == LockModeGiant {
		t.giantMu.Unlock()
	} else {
		t.idxMu.Unlock()
	}
}

// Insert adds a user under all three indexes (control thread).
func (t *Table) Insert(ue *UE) error {
	cs, _ := ue.Snapshot()
	t.lockIdxW()
	defer t.unlockIdxW()
	if t.byIMSI.Get(cs.IMSI) != nil {
		return ErrDuplicate
	}
	t.byIMSI.Put(cs.IMSI, ue)
	if cs.UplinkTEID != 0 {
		t.byTEID.Put(cs.UplinkTEID, ue)
	}
	if cs.UEAddr != 0 {
		t.byIP.Put(cs.UEAddr, ue)
	}
	return nil
}

// Remove deletes a user from all indexes and returns it (control thread).
func (t *Table) Remove(imsi uint64) (*UE, error) {
	t.lockIdxW()
	defer t.unlockIdxW()
	ue := t.byIMSI.Delete(imsi)
	if ue == nil {
		return nil, ErrNotFound
	}
	// The control fields are stable here: only the control thread, the
	// caller, mutates them.
	if ue.Ctrl.UplinkTEID != 0 {
		t.byTEID.Delete(ue.Ctrl.UplinkTEID)
	}
	if ue.Ctrl.UEAddr != 0 {
		t.byIP.Delete(ue.Ctrl.UEAddr)
	}
	return ue, nil
}

// Rekey updates the TEID index after a handover changed a user's uplink
// TEID (control thread).
func (t *Table) Rekey(oldTEID, newTEID uint32, ue *UE) {
	t.lockIdxW()
	if oldTEID != 0 {
		t.byTEID.Delete(oldTEID)
	}
	if newTEID != 0 {
		t.byTEID.Put(newTEID, ue)
	}
	t.unlockIdxW()
}

// LookupIMSI finds a user by IMSI (control path).
func (t *Table) LookupIMSI(imsi uint64) *UE {
	t.lockIdxR()
	ue := t.byIMSI.Get(imsi)
	t.unlockIdxR()
	return ue
}

// LookupIMSIBatch resolves a batch of IMSIs under a single index-lock
// acquisition, storing the result (nil where absent) in out[i] and
// returning the found count. The batched signaling path uses it to
// amortize index locking across a drain of procedures, mirroring what
// DataPathTEIDBatch does for packets.
func (t *Table) LookupIMSIBatch(imsis []uint64, out []*UE) int {
	found := 0
	t.lockIdxR()
	for i, imsi := range imsis {
		out[i] = t.byIMSI.Get(imsi)
		if out[i] != nil {
			found++
		}
	}
	t.unlockIdxR()
	return found
}

// RemoveBatch deletes a batch of users from all indexes under a single
// index-lock acquisition, storing each removed context (nil where
// absent) in out[i] and returning the removed count.
func (t *Table) RemoveBatch(imsis []uint64, out []*UE) int {
	removed := 0
	t.lockIdxW()
	for i, imsi := range imsis {
		ue := t.byIMSI.Delete(imsi)
		out[i] = ue
		if ue == nil {
			continue
		}
		if ue.Ctrl.UplinkTEID != 0 {
			t.byTEID.Delete(ue.Ctrl.UplinkTEID)
		}
		if ue.Ctrl.UEAddr != 0 {
			t.byIP.Delete(ue.Ctrl.UEAddr)
		}
		removed++
	}
	t.unlockIdxW()
	return removed
}

// LookupTEID finds a user by uplink TEID without entering the data-path
// locking discipline (control path, migration).
func (t *Table) LookupTEID(teid uint32) *UE {
	t.lockIdxR()
	ue := t.byTEID.Get(teid)
	t.unlockIdxR()
	return ue
}

// DataPathTEID performs one data-path access keyed by uplink TEID: it
// locates the user and runs fn with read access to control state and
// write access to counter state, under the table's locking discipline.
// It reports whether the user was found. This is the per-packet operation
// Figure 12 measures.
func (t *Table) DataPathTEID(teid uint32, fn func(*ControlState, *CounterState)) bool {
	return t.dataPath(teid, t.byTEID, fn)
}

// DataPathIP is DataPathTEID keyed by UE IP address (downlink).
func (t *Table) DataPathIP(ip uint32, fn func(*ControlState, *CounterState)) bool {
	return t.dataPath(ip, t.byIP, fn)
}

func (t *Table) dataPath(key uint32, idx *U32Map, fn func(*ControlState, *CounterState)) bool {
	switch t.mode {
	case LockModeGiant:
		// The whole access — lookup, control read, counter write —
		// happens under the table-level read lock. A concurrent control
		// update takes the write lock and stalls every packet.
		t.giantMu.RLock()
		ue := idx.Get(key)
		if ue == nil {
			t.giantMu.RUnlock()
			return false
		}
		fn(&ue.Ctrl, &ue.Hot().Counters)
		t.giantMu.RUnlock()
		return true
	case LockModeDatapathWriter:
		// Index reads are lock-free in both fine-grained designs: the
		// data thread owns its index maps and structural changes arrive
		// through the update queue (Listing 1); this ablation varies
		// only the per-user state locking. Callers must not mutate the
		// index concurrently with data-path reads.
		ue := idx.Get(key)
		if ue == nil {
			return false
		}
		// One combined record: the data thread writes it, so it must
		// take the exclusive per-user lock for every packet.
		ue.ctrlMu.Lock()
		fn(&ue.Ctrl, &ue.Hot().Counters)
		ue.ctrlMu.Unlock()
		return true
	default: // LockModePEPC
		ue := idx.Get(key)
		if ue == nil {
			return false
		}
		// Wait-free control read: seqlock snapshot into the table's
		// data-thread scratch. The counter half still takes its own
		// lock — the data thread is its only writer, so it never blocks
		// on control activity.
		ue.ReadCtrlSnapshot(&t.dpCtrl)
		h := ue.Hot()
		h.cmu.Lock()
		fn(&t.dpCtrl, &h.Counters)
		h.cmu.Unlock()
		return true
	}
}

// DataPathTEIDBatch performs one data-path access per key over a whole
// batch, calling fn(i, ctrl, counters) for each key found and returning
// the found count. It is the batched analogue of DataPathTEID: in
// giant-lock mode the entire batch — lookups, control reads, counter
// writes — runs under a single table-level read-lock acquisition, so the
// lock cost amortizes over the batch exactly as the per-user lock cost
// does in the fine-grained modes; the relative ordering of the three
// designs (Figure 12) is preserved while every mode gets the batching
// benefit.
func (t *Table) DataPathTEIDBatch(keys []uint32, fn func(i int, c *ControlState, cnt *CounterState)) int {
	return t.dataPathBatch(keys, t.byTEID, fn)
}

// DataPathIPBatch is DataPathTEIDBatch keyed by UE IP address (downlink).
func (t *Table) DataPathIPBatch(keys []uint32, fn func(i int, c *ControlState, cnt *CounterState)) int {
	return t.dataPathBatch(keys, t.byIP, fn)
}

func (t *Table) dataPathBatch(keys []uint32, idx *U32Map, fn func(i int, c *ControlState, cnt *CounterState)) int {
	found := 0
	switch t.mode {
	case LockModeGiant:
		t.giantMu.RLock()
		for i, key := range keys {
			ue := idx.Get(key)
			if ue == nil {
				continue
			}
			fn(i, &ue.Ctrl, &ue.Hot().Counters)
			found++
		}
		t.giantMu.RUnlock()
	case LockModeDatapathWriter:
		var prev *UE
		prevKey := uint32(0)
		for i, key := range keys {
			ue := prev
			if ue == nil || key != prevKey {
				ue = idx.Get(key)
				prev, prevKey = ue, key
			}
			if ue == nil {
				continue
			}
			ue.ctrlMu.Lock()
			fn(i, &ue.Ctrl, &ue.Hot().Counters)
			ue.ctrlMu.Unlock()
			found++
		}
	default: // LockModePEPC
		var prev *UE
		prevKey := uint32(0)
		for i, key := range keys {
			ue := prev
			reuse := ue != nil && key == prevKey
			if !reuse {
				ue = idx.Get(key)
				prev, prevKey = ue, key
			}
			if ue == nil {
				continue
			}
			// Snapshot once per run of identical keys: a repeated key
			// reuses the previous seqlock copy, amortizing the read the
			// same way the lock acquisitions amortize in the other modes.
			if !reuse {
				ue.ReadCtrlSnapshot(&t.dpCtrl)
			}
			h := ue.Hot()
			h.cmu.Lock()
			fn(i, &t.dpCtrl, &h.Counters)
			h.cmu.Unlock()
			found++
		}
	}
	return found
}

// CtrlWrite performs a control-plane write to a user's control state under
// the table's locking discipline (signaling events: attach updates,
// handovers, PCRF rule pushes).
func (t *Table) CtrlWrite(ue *UE, fn func(*ControlState)) {
	switch t.mode {
	case LockModeGiant:
		t.giantMu.Lock()
		fn(&ue.Ctrl)
		ue.Ctrl.Epoch++
		t.giantMu.Unlock()
	case LockModeDatapathWriter:
		ue.ctrlMu.Lock()
		fn(&ue.Ctrl)
		ue.Ctrl.Epoch++
		ue.ctrlMu.Unlock()
	default:
		ue.WriteCtrl(fn)
	}
}

// CtrlReadCounters reads a user's counters from the control plane (usage
// reporting to the PCRF) under the table's locking discipline.
func (t *Table) CtrlReadCounters(ue *UE, fn func(*CounterState)) {
	switch t.mode {
	case LockModeGiant:
		// The data thread writes counters while holding the shared lock
		// (it is the only writer), so a control-side read must take the
		// exclusive lock to avoid tearing — stalling the whole data
		// plane, which is exactly the giant-lock pathology.
		t.giantMu.Lock()
		fn(&ue.Hot().Counters)
		t.giantMu.Unlock()
	case LockModeDatapathWriter:
		ue.ctrlMu.Lock()
		fn(&ue.Hot().Counters)
		ue.ctrlMu.Unlock()
	default:
		ue.ReadCounters(fn)
	}
}

// Range iterates users (control path; index lock held throughout).
func (t *Table) Range(fn func(*UE) bool) {
	t.lockIdxR()
	defer t.unlockIdxR()
	t.byIMSI.Range(func(_ uint64, ue *UE) bool { return fn(ue) })
}
