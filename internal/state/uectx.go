// Package state implements PEPC's consolidated per-user state: the state
// taxonomy of the paper's Table 1, the UE context split into control-
// written and data-written halves with fine-grained per-user locks
// (paper §3.2), the single-table and two-level (primary/secondary) state
// tables (§3.2, §7.3), and the alternative shared-state designs the paper
// ablates in §7.1 (giant lock, datapath-writer).
package state

import (
	"sync"
	"sync/atomic"

	"pepc/internal/bpf"
	"pepc/internal/gtp"
	"pepc/internal/pkt"
	"pepc/internal/qos"
)

// MaxBearers bounds the bearers per UE. LTE allows up to 11 EPS bearers
// (EBI 5..15); the in-memory context is sized for 4, covering the common
// default + dedicated-bearer sessions while keeping the per-user
// footprint small enough for the paper's 10M-device populations (a
// memory-sizing choice documented in DESIGN.md).
const MaxBearers = 4

// QCI is a QoS Class Identifier (3GPP 23.203).
type QCI uint8

// Standard QCIs used in tests and examples.
const (
	QCIConversationalVoice QCI = 1
	QCIConversationalVideo QCI = 2
	QCIIMSSignaling        QCI = 5
	QCIBestEffort          QCI = 9
)

// Bearer is the per-bearer QoS/policy state: a logical connection between
// the UE and the core with its own QoS class, rate bounds and traffic
// filter.
type Bearer struct {
	EBI uint8 // EPS bearer id, 5..15
	QCI QCI
	ARP uint8 // allocation/retention priority, 1..15

	// Rate bounds in bits/s; GBR only meaningful for GBR QCIs (1-4).
	MBRUplink   uint64
	MBRDownlink uint64
	GBRUplink   uint64
	GBRDownlink uint64

	// TFT is the traffic flow template mapping packets to this bearer.
	TFT bpf.FilterSpec
}

// ControlState is the per-user state written ONLY by the control thread
// (Table 1 rows: user location, user id, QoS/policy, data tunnel state).
// The data thread may read it (under read lock) but never writes it.
type ControlState struct {
	// User identifiers.
	IMSI   uint64
	GUTI   uint64 // temporary id used over the radio link instead of IMSI
	UEAddr uint32 // allocated UE IP (PAA)

	// User location.
	ECGI     uint32 // current cell identity
	TAI      uint16 // current tracking area
	TAIList  [8]uint16
	TAICount uint8

	// Per-user data tunnel state (S1-U).
	UplinkTEID   uint32 // TEID on which we receive from the eNodeB
	DownlinkTEID uint32 // eNodeB's TEID for downlink delivery
	ENBAddr      uint32 // eNodeB data-plane address

	// QoS/policy state.
	Bearers      [MaxBearers]Bearer
	BearerCount  uint8
	AMBRUplink   uint64 // aggregate maximum bit rate, bits/s
	AMBRDownlink uint64

	// PCEF charging rule ids installed by the PCRF via the proxy.
	RuleIDs   [4]uint32
	RuleCount uint8

	// Lifecycle.
	Attached   bool
	IoT        bool   // stateless-IoT customization eligible (§4.2)
	LastActive int64  // monotonic nanos of last data packet / event
	Epoch      uint32 // bumped on every control write; data path can detect staleness

	// Authentication context established at attach.
	KASME   [32]byte
	NextSQN uint64
}

// CounterState is the per-user state written ONLY by the data thread
// (Table 1 row: per-user bandwidth counters). The control thread reads it
// (under read lock) to report usage to the PCRF.
type CounterState struct {
	UplinkBytes     uint64
	DownlinkBytes   uint64
	UplinkPackets   uint64
	DownlinkPackets uint64
	DroppedPackets  uint64
	// Per-rule usage for charging, indexed like ControlState.RuleIDs.
	RuleBytes [4]uint64
}

// UE is the consolidated per-user state of a PEPC slice, split hot/cold
// for cache locality (DESIGN.md §4.10): the cold half — the full
// ControlState plus its locks — lives here; the hot half — the
// per-packet FastCtrl view, counters and data-private derived state —
// lives in a HotUE, either embedded inline (pointer layout) or in an
// Arena slab (handle layout). This mirrors Listing 1's
// HashMap<id, RwLock<UEContext>> with the single-writer split.
//
// Locking discipline (§3.2, extended with seqlock publication — see
// DESIGN.md §4.9):
//
//	control thread: ctrlMu.Lock + seq bump for writes to Ctrl (which
//	                republishes the hot FastCtrl view);
//	                Hot().ReadCounters to read counters
//	data thread:    Hot().ReadFast (wait-free seqlock copy, locked
//	                fallback) for per-packet control reads;
//	                ReadCtrlSnapshot for full-state reads;
//	                Hot().WriteCounters to write counters
//
// Use the accessor methods, which encode the discipline, rather than the
// locks directly.
type UE struct {
	// seq is the control-state sequence counter: odd while a control
	// write is in progress, even otherwise. Data-path readers copy Ctrl
	// optimistically and validate against it (ReadCtrlSnapshot), so a
	// control write never blocks the forwarding path.
	seq atomic.Uint32

	ctrlMu sync.RWMutex
	Ctrl   ControlState

	// hot points at the user's Arena slot in the handle layout; when
	// unset, hotInline is used. Atomic because the control plane rebinds
	// recycled contexts while stale data-side references (parked paging
	// entries) may still call Hot.
	hot       atomic.Pointer[HotUE]
	hotInline HotUE
}

// Hot returns the user's hot half: the Arena slot when bound, the
// inline hot state otherwise.
func (u *UE) Hot() *HotUE {
	if h := u.hot.Load(); h != nil {
		return h
	}
	return &u.hotInline
}

// Handle returns the user's Arena handle (0 in the pointer layout).
func (u *UE) Handle() Handle { return u.Hot().self }

// DataPriv is the data-thread-private derived state; see HotUE.Priv.
// The limiter is allocated lazily: unpoliced users (no AMBR/MBR
// configured) carry no limiter, keeping the common-case context
// compact. TFTs are cached here at rebuild so bearer classification for
// policed users stays inside the hot half.
type DataPriv struct {
	Limiter *qos.UserLimiter
	// Epoch records which control-state epoch the derived state was
	// built from; a mismatch tells the data thread to rebuild.
	Epoch uint32
	// Cached dedicated-bearer TFTs (indexes 1..NTFT-1 of Bearers; slot 0
	// unused) copied from the control state at rebuild.
	NTFT uint8
	TFTs [MaxBearers]bpf.FilterSpec
	// Encap is the precomputed downlink GTP-U envelope for the user's
	// current tunnel (DownlinkTEID/ENBAddr), rebuilt on the same epoch
	// bump: downlink encapsulation becomes one template copy plus three
	// length stores instead of field-by-field serialization.
	Encap gtp.EncapTemplate
}

// SelectBearer maps a flow to a bearer index using the cached TFTs,
// mirroring ControlState.SelectBearer without touching cold state.
func (p *DataPriv) SelectBearer(f pkt.Flow) int {
	for i := 1; i < int(p.NTFT); i++ {
		if p.TFTs[i].MatchFlow(f) {
			return i
		}
	}
	if p.NTFT == 0 {
		return -1
	}
	return 0
}

// WriteCtrl runs fn with exclusive access to the control half. Only the
// control thread may call it. The sequence counter is odd for the
// duration of the write, so concurrent ReadCtrlSnapshot callers either
// retry or fall back to the lock; the mutex still serializes against
// the locked readers (Snapshot, ReadCtrl, migration extract).
func (u *UE) WriteCtrl(fn func(*ControlState)) {
	u.ctrlMu.Lock()
	u.seq.Add(1) // odd: write in progress
	fn(&u.Ctrl)
	u.Ctrl.Epoch++
	u.seq.Add(1) // even: write published
	u.publishFast()
	u.ctrlMu.Unlock()
}

// publishFast re-derives and publishes the hot FastCtrl view. Caller
// holds the control write lock.
func (u *UE) publishFast() {
	h := u.Hot()
	var f FastCtrl
	u.Ctrl.fastView(&f)
	if h.U == nil {
		// First publish on an inline hot half: bind the back-pointer
		// (arena slots are bound by Alloc before any publish).
		h.U = u
	}
	h.publish(&f)
}

// ReadCtrl runs fn with shared access to the control half. Control-
// thread paths that need a stable view across the whole callback
// (migration, snapshots, usage reporting) use this locked form; the
// data thread uses ReadCtrlSnapshot instead.
func (u *UE) ReadCtrl(fn func(*ControlState)) {
	u.ctrlMu.RLock()
	fn(&u.Ctrl)
	u.ctrlMu.RUnlock()
}

// seqlockRetries bounds the optimistic read loop before falling back to
// the read lock: a handful of retries rides out one in-flight control
// write; a storm of back-to-back writes to the same user (rare — one
// user's signaling is serialized) degrades to the locked path.
const seqlockRetries = 8

// ReadCtrlSnapshot copies the control half into dst without blocking
// the writer: it reads the sequence counter, copies, and validates that
// no write began or completed in between, retrying a bounded number of
// times before falling back to the read lock. The copy is torn-read
// safe because ControlState is pointer-free; a torn copy fails
// validation and is discarded. Race-detector builds always take the
// lock (the optimistic copy is a deliberate validated race the detector
// cannot see past).
//
// This is the data thread's control read: wait-free in the common case,
// so a signaling burst never stalls packet verdicts the way a held
// write lock would.
func (u *UE) ReadCtrlSnapshot(dst *ControlState) {
	if !raceEnabled {
		for try := 0; try < seqlockRetries; try++ {
			s1 := u.seq.Load()
			if s1&1 == 0 {
				*dst = u.Ctrl
				if u.seq.Load() == s1 {
					return
				}
			}
		}
	}
	u.ctrlMu.RLock()
	*dst = u.Ctrl
	u.ctrlMu.RUnlock()
}

// CtrlSeq exposes the current sequence value (even = quiescent); tests
// assert the protocol's parity invariants through it.
func (u *UE) CtrlSeq() uint32 { return u.seq.Load() }

// WriteCounters runs fn with exclusive access to the counter half. Only
// the data thread may call it. (Convenience delegate to the hot half.)
func (u *UE) WriteCounters(fn func(*CounterState)) { u.Hot().WriteCounters(fn) }

// ReadCounters runs fn with shared access to the counter half (control
// thread, for usage reporting).
func (u *UE) ReadCounters(fn func(*CounterState)) { u.Hot().ReadCounters(fn) }

// Snapshot copies both halves consistently for migration or debugging.
func (u *UE) Snapshot() (ControlState, CounterState) {
	u.ctrlMu.RLock()
	cs := u.Ctrl
	u.ctrlMu.RUnlock()
	h := u.Hot()
	h.cmu.RLock()
	cnt := h.Counters
	h.cmu.RUnlock()
	return cs, cnt
}

// Restore installs a snapshot into a fresh UE (migration target side).
// The write follows the seqlock protocol: the target slice's data
// thread may already be probing the context through a stale index.
func (u *UE) Restore(cs ControlState, cnt CounterState) {
	u.ctrlMu.Lock()
	u.seq.Add(1)
	u.Ctrl = cs
	u.seq.Add(1)
	u.publishFast()
	u.ctrlMu.Unlock()
	h := u.Hot()
	h.cmu.Lock()
	h.Counters = cnt
	h.cmu.Unlock()
}

// Recycle clears the context for reuse from a free list (the control
// plane's zero-alloc attach path). Callers must guarantee the data
// thread holds no reference — in PEPC that means the detach's index
// delete has been synced through the update queue (the control plane's
// retire fence). Field-by-field reset keeps the mutexes (both unlocked
// here by contract) untouched. The hot half is reset too: for an
// arena-bound context this scrubs the retired slot (rebinding to a
// fresh slot happens at the next Alloc), for the inline layout it
// clears the half directly.
func (u *UE) Recycle() {
	u.Ctrl = ControlState{}
	u.Hot().reset()
	u.seq.Store(0)
}

// AddBearer appends a bearer, returning false when the UE already has
// MaxBearers. Caller must hold the control write lock (i.e. call inside
// WriteCtrl).
func (c *ControlState) AddBearer(b Bearer) bool {
	if c.BearerCount >= MaxBearers {
		return false
	}
	c.Bearers[c.BearerCount] = b
	c.BearerCount++
	return true
}

// DefaultBearer returns the default (first) bearer, which every attached
// UE has.
func (c *ControlState) DefaultBearer() *Bearer {
	if c.BearerCount == 0 {
		return nil
	}
	return &c.Bearers[0]
}

// SelectBearer maps a packet flow to a bearer index using the Traffic
// Flow Templates (the classifier role the per-user QoS state serves,
// §3.1: "the per user state on the data plane functions serves this
// purpose of mapping incoming traffic to a QoS class"). Dedicated
// bearers (index ≥ 1) are checked in order; the default bearer (index 0)
// is the fallback. Callers hold the control read lock.
func (c *ControlState) SelectBearer(f pkt.Flow) int {
	for i := 1; i < int(c.BearerCount); i++ {
		if c.Bearers[i].TFT.MatchFlow(f) {
			return i
		}
	}
	if c.BearerCount == 0 {
		return -1
	}
	return 0
}
