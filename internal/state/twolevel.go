package state

import (
	"sync"
	"sync/atomic"
)

// TwoLevel is PEPC's two-level state storage (§3.2, §4.2, Figure 14): a
// small primary table holding state for active devices, backed by a
// secondary table holding all devices. Both levels keep per-domain
// indexes (uplink TEID and UE address), like the flat Indexes, so a
// lookup probes a table containing only its own key type. Both levels
// share a storage layout — pointer (NewTwoLevel) or handle
// (NewTwoLevelHandles); in the handle layout a multi-million-entry
// secondary is pointer-free arrays plus dense arena slabs instead of
// millions of GC-scanned heap objects.
//
// The data thread reads the primary without any table-level locking (it
// is the primary's only reader, and structural changes arrive from the
// control thread through the slice's update queue — see core); the
// secondary is shared and protected by a short read/write lock.
//
// The performance effect is cache residency: a primary sized for the
// active population stays hot even when the total population is millions.
type TwoLevel struct {
	// primary is owned by the data thread; the control thread changes it
	// only through the update queue (DrainTwoLevel) or direct calls in
	// single-threaded setups.
	primary *Indexes

	secMu     sync.RWMutex
	secondary *Indexes

	// misses counts primary misses served from the secondary; the control
	// plane uses it to size the primary. Atomic: the data thread bumps it
	// on its lookup path while the control plane reads it concurrently.
	misses atomic.Uint64
}

// NewTwoLevel returns a pointer-layout two-level store sized for
// primaryHint active and totalHint overall devices.
func NewTwoLevel(primaryHint, totalHint int) *TwoLevel {
	return &TwoLevel{
		primary:   NewIndexes(primaryHint),
		secondary: NewIndexes(totalHint),
	}
}

// NewTwoLevelHandles returns a handle-layout two-level store resolving
// into a.
func NewTwoLevelHandles(primaryHint, totalHint int, a *Arena) *TwoLevel {
	return &TwoLevel{
		primary:   NewHandleIndexes(primaryHint, a),
		secondary: NewHandleIndexes(totalHint, a),
	}
}

// Handles reports whether the store uses the handle layout.
func (t *TwoLevel) Handles() bool { return t.primary.Handles() }

// Lookup finds a user by key in the given domain (uplink=TEID,
// downlink=UE address). It returns the user and whether it came from the
// secondary table — in which case the caller should ask the control
// thread to promote it. Data-thread only.
func (t *TwoLevel) Lookup(key uint32, uplink bool) (ue *UE, fromSecondary bool) {
	ue = t.primary.GetUE(key, uplink)
	if ue != nil {
		return ue, false
	}
	t.secMu.RLock()
	ue = t.secondary.GetUE(key, uplink)
	t.secMu.RUnlock()
	if ue != nil {
		t.misses.Add(1)
	}
	return ue, ue != nil
}

// LookupBatch resolves keys[i] into out[i] (nil on miss) and sets
// fromSecondary[i] for entries served by the secondary table. Primary
// probes are lock-free as in Lookup; all primary misses of the batch are
// then resolved under a single secondary read lock instead of one lock
// acquisition per miss. Data-thread only; callers request promotion for
// each fromSecondary hit as with Lookup.
func (t *TwoLevel) LookupBatch(keys []uint32, uplink bool, out []*UE, fromSecondary []bool) {
	if len(keys) == 0 {
		return
	}
	_ = out[len(keys)-1]
	_ = fromSecondary[len(keys)-1]
	missed := 0
	for i, k := range keys {
		out[i] = t.primary.GetUE(k, uplink)
		fromSecondary[i] = false
		if out[i] == nil {
			missed++
		}
	}
	if missed == 0 {
		return
	}
	served := uint64(0)
	t.secMu.RLock()
	for i, k := range keys {
		if out[i] != nil {
			continue
		}
		if ue := t.secondary.GetUE(k, uplink); ue != nil {
			out[i] = ue
			fromSecondary[i] = true
			served++
		}
	}
	t.secMu.RUnlock()
	if served != 0 {
		t.misses.Add(served)
	}
}

// LookupHotBatch is the data plane's batch lookup: keys[i] resolve to
// hot halves out[i] (nil on miss), secondary-served entries flagged in
// fromSecondary. The primary probe uses the layout's software-pipelined
// batch path (GetHotBatch); secondary fallbacks share one read-lock
// acquisition. Zero allocations.
func (t *TwoLevel) LookupHotBatch(keys []uint32, uplink bool, out []*HotUE, fromSecondary []bool) {
	if len(keys) == 0 {
		return
	}
	_ = out[len(keys)-1]
	_ = fromSecondary[len(keys)-1]
	t.primary.GetHotBatch(keys, uplink, out)
	missed := 0
	for i := range keys {
		fromSecondary[i] = false
		if out[i] == nil {
			missed++
		}
	}
	if missed == 0 {
		return
	}
	served := uint64(0)
	t.secMu.RLock()
	for i, k := range keys {
		if out[i] != nil {
			continue
		}
		if ue := t.secondary.GetUE(k, uplink); ue != nil {
			out[i] = ue.Hot()
			fromSecondary[i] = true
			served++
		}
	}
	t.secMu.RUnlock()
	if served != 0 {
		t.misses.Add(served)
	}
}

// LookupPrimaryOnly performs a primary-table uplink lookup without
// secondary fallback; used to measure the primary's residency benefit in
// isolation and by tests.
func (t *TwoLevel) LookupPrimaryOnly(teid uint32) *UE {
	return t.primary.GetUE(teid, true)
}

// Misses returns the number of secondary-served lookups so far.
func (t *TwoLevel) Misses() uint64 { return t.misses.Load() }

// PrimaryLen returns the primary-table population (uplink index).
func (t *TwoLevel) PrimaryLen() int { return t.primary.lenTEID() }

// SecondaryLen returns the secondary-table population (uplink index).
func (t *TwoLevel) SecondaryLen() int {
	t.secMu.RLock()
	n := t.secondary.lenTEID()
	t.secMu.RUnlock()
	return n
}

// InsertSecondary registers a device in the secondary (all-devices)
// table under both its keys (0 skips a domain). Control thread.
func (t *TwoLevel) InsertSecondary(teid, ip uint32, ue *UE) {
	t.secMu.Lock()
	t.secondary.put(teid, ip, ue)
	t.secMu.Unlock()
}

// RemoveSecondary removes a device entirely (detach). Control thread; the
// caller must also evict it from the primary via the update queue.
func (t *TwoLevel) RemoveSecondary(teid, ip uint32) {
	t.secMu.Lock()
	t.secondary.del(teid, ip)
	t.secMu.Unlock()
}

// Promote moves a device into the primary table under both keys. In a
// running slice this executes on the data thread when draining the
// update queue; in single-threaded setups (tests, Figure 14 sweeps) the
// control logic may call it directly.
func (t *TwoLevel) Promote(teid, ip uint32, ue *UE) {
	t.primary.put(teid, ip, ue)
}

// Evict removes a device from the primary table (idle timeout or explicit
// release); its state remains in the secondary. Runs on the data thread
// via the update queue, like Promote.
func (t *TwoLevel) Evict(teid, ip uint32) {
	t.primary.del(teid, ip)
}

// EvictIdle scans the primary and evicts devices idle for longer than
// idleNs at time now (monotonic nanos). Evictions are applied through
// apply (both keys), which in a running slice enqueues data-thread
// updates. Control thread.
func (t *TwoLevel) EvictIdle(now, idleNs int64, apply func(teid, ip uint32)) int {
	type pair struct{ teid, ip uint32 }
	var idle []pair
	t.primary.rangeUE(func(teid uint32, ue *UE) bool {
		ue.ReadCtrl(func(c *ControlState) {
			if now-c.LastActive > idleNs {
				idle = append(idle, pair{teid, c.UEAddr})
			}
		})
		return true
	})
	for _, p := range idle {
		apply(p.teid, p.ip)
	}
	return len(idle)
}
