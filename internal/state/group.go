package state

// Group-probing hash core (swiss-table style) shared by the per-domain
// indexes. Slots are organized into groups of 8; a parallel control-byte
// array carries a 7-bit hash fingerprint per full slot, so one 8-byte
// load answers "which of these 8 slots could hold my key" and the
// key/value arrays are only touched on a fingerprint hit. Groups are
// visited in triangular order (step 1, 2, 3, ... from the home group),
// which over a power-of-two group count covers every group exactly once
// — probes terminate at the first group containing an empty slot.
//
// Control byte encoding: 0x00 empty, 0x01 tombstone, 0x80|fp7 full.
// The fingerprint is taken from the top bits of the hash while the home
// group comes from the bottom bits, so colliding keys in one group
// still tend to have distinct fingerprints.
//
// Like the previous linear-probe implementation, the core is not
// internally synchronized: each PEPC thread owns its own index and
// cross-thread changes arrive through the update queue.

import (
	"encoding/binary"
	"math/bits"

	"pepc/internal/pkt"
)

const (
	groupSlots = 8 // slots per group; one control word per group

	ctrlEmpty = 0x00
	ctrlTomb  = 0x01
	ctrlFull  = 0x80 // OR'd with the 7-bit fingerprint

	swarLSB = 0x0101010101010101
	swarMSB = 0x8080808080808080
)

// fpOf derives the control byte for a full slot from the hash's top
// seven bits (the group index consumes the bottom bits).
func fpOf(h uint64) byte { return byte(h>>57) | ctrlFull }

// matchFull returns a bitmask with the high bit of every byte position
// whose control byte *may* equal ctrl (the classic SWAR equal-byte
// trick). False positives are possible when a borrow crosses byte
// boundaries; callers always confirm with a key compare, and deleted
// slots have their keys zeroed, so a false positive can never alias a
// live key.
func matchFull(w uint64, ctrl byte) uint64 {
	x := w ^ (swarLSB * uint64(ctrl))
	return (x - swarLSB) &^ x & swarMSB
}

// hasEmpty reports whether the group holds at least one empty slot. As
// a boolean this is exact: a borrow chain in the subtraction starts
// only at a genuinely zero byte.
func hasEmpty(w uint64) bool {
	return (w-swarLSB)&^w&swarMSB != 0
}

// matchFree returns a bitmask of insertable slots (empty or tombstone:
// any byte with the full bit clear). Exact.
func matchFree(w uint64) uint64 { return ^w & swarMSB }

// batchChunk is the software-pipelining width of GetBatch: hashes and
// home-group control words for a chunk are computed before any probe
// resolves, so the group loads overlap instead of serializing.
const batchChunk = 32

// groupCore is the key-type-independent part of the table. The generic
// wrappers below (g32/g64) add typed key/value arrays; splitting this
// way keeps the layout decisions (growth, compaction thresholds) in one
// place.
//
// Growth keeps (live + tombstones) at or below 3/4 of capacity, as
// before. Tombstone decay is handled on the delete side too: when
// tombstones outnumber both the live population and 1/8 of capacity,
// the table is rehashed in place, so a delete-heavy workload that never
// inserts enough to trigger growth cannot degrade probes into long
// chains (amortized O(1): each rehash is paid for by capacity/8
// deletes).
type groupCore struct {
	ctrl  []byte
	gmask uint64 // group count - 1
	n     int
	grave int
}

func (g *groupCore) slots() int { return len(g.ctrl) }

// word loads the control word of group gi.
func (g *groupCore) word(gi uint64) uint64 {
	return binary.LittleEndian.Uint64(g.ctrl[gi*groupSlots:])
}

func (g *groupCore) initSlots(sizeHint int) {
	capacity := u32MapMinCap
	for capacity*3/4 < sizeHint {
		capacity <<= 1
	}
	g.ctrl = make([]byte, capacity)
	g.gmask = uint64(capacity/groupSlots - 1)
	g.n = 0
	g.grave = 0
}

// needGrow reports whether one more insert would push live+tombstones
// past the 3/4 load bound.
func (g *groupCore) needGrow() bool {
	return (g.n+g.grave+1)*4 >= g.slots()*3
}

// growTarget picks the rehash size: double for genuine growth, same
// size when the pressure is tombstones.
func (g *groupCore) growTarget() int {
	newCap := g.slots()
	if g.n*2 >= newCap {
		newCap <<= 1
	}
	return newCap
}

// needDecay reports whether a delete-side in-place compaction is due.
func (g *groupCore) needDecay() bool {
	return g.grave > g.n && g.grave*8 > g.slots()
}

// g32 is the group-probing table for uint32 keys. Key 0 must be
// rejected by the wrapper: deletion zeroes the key slot, and the
// SWAR fingerprint match relies on dead slots never comparing equal to
// a probed key.
type g32[V any] struct {
	groupCore
	keys []uint32
	vals []V
}

func newG32[V any](sizeHint int) *g32[V] {
	g := &g32[V]{}
	g.initSlots(sizeHint)
	g.keys = make([]uint32, g.slots())
	g.vals = make([]V, g.slots())
	return g
}

func (g *g32[V]) get(key uint32) (V, bool) {
	h := pkt.HashUint32(key)
	return g.getHinted(key, h, g.word(h&g.gmask))
}

// getHinted finishes a probe whose hash and home-group control word
// were computed ahead of time (the two-pass GetBatch).
func (g *g32[V]) getHinted(key uint32, h, w uint64) (V, bool) {
	fp := fpOf(h)
	gi := h & g.gmask
	for step := uint64(1); ; step++ {
		for m := matchFull(w, fp); m != 0; m &= m - 1 {
			s := gi*groupSlots + uint64(bits.TrailingZeros64(m))/groupSlots
			if g.keys[s] == key {
				return g.vals[s], true
			}
		}
		if hasEmpty(w) {
			var zero V
			return zero, false
		}
		gi = (gi + step) & g.gmask
		w = g.word(gi)
	}
}

// getChunk is one software-pipelined GetBatch pass: hash + home-group
// control word for every key first, then resolve the probes.
func (g *g32[V]) getChunk(keys []uint32, out []V) {
	var hs [batchChunk]uint64
	var ws [batchChunk]uint64
	for i, k := range keys {
		h := pkt.HashUint32(k)
		hs[i] = h
		ws[i] = g.word(h & g.gmask)
	}
	for i, k := range keys {
		if k == 0 || k == tombstone {
			var zero V
			out[i] = zero
			continue
		}
		out[i], _ = g.getHinted(k, hs[i], ws[i])
	}
}

func (g *g32[V]) put(key uint32, v V) {
	if g.needGrow() {
		g.rehash(g.growTarget())
	}
	h := pkt.HashUint32(key)
	fp := fpOf(h)
	gi := h & g.gmask
	free := -1
	for step := uint64(1); ; step++ {
		w := g.word(gi)
		for m := matchFull(w, fp); m != 0; m &= m - 1 {
			s := gi*groupSlots + uint64(bits.TrailingZeros64(m))/groupSlots
			if g.keys[s] == key {
				g.vals[s] = v
				return
			}
		}
		if free < 0 {
			if f := matchFree(w); f != 0 {
				free = int(gi)*groupSlots + bits.TrailingZeros64(f)/groupSlots
			}
		}
		if hasEmpty(w) {
			if g.ctrl[free] == ctrlTomb {
				g.grave--
			}
			g.ctrl[free] = fp
			g.keys[free] = key
			g.vals[free] = v
			g.n++
			return
		}
		gi = (gi + step) & g.gmask
	}
}

func (g *g32[V]) del(key uint32) (V, bool) {
	var zero V
	h := pkt.HashUint32(key)
	fp := fpOf(h)
	gi := h & g.gmask
	for step := uint64(1); ; step++ {
		w := g.word(gi)
		for m := matchFull(w, fp); m != 0; m &= m - 1 {
			s := gi*groupSlots + uint64(bits.TrailingZeros64(m))/groupSlots
			if g.keys[s] == key {
				v := g.vals[s]
				g.keys[s] = 0
				g.vals[s] = zero
				g.n--
				// If this group still has an empty slot, no probe for any
				// other key can pass through it, so the slot can revert to
				// empty instead of a tombstone. (A group that was ever
				// completely full never regains an empty byte, which is
				// what makes this safe.)
				if hasEmpty(w) {
					g.ctrl[s] = ctrlEmpty
				} else {
					g.ctrl[s] = ctrlTomb
					g.grave++
					if g.needDecay() {
						g.rehash(g.slots())
					}
				}
				return v, true
			}
		}
		if hasEmpty(w) {
			return zero, false
		}
		gi = (gi + step) & g.gmask
	}
}

func (g *g32[V]) rehash(newSlots int) {
	oldCtrl, oldKeys, oldVals := g.ctrl, g.keys, g.vals
	g.ctrl = make([]byte, newSlots)
	g.gmask = uint64(newSlots/groupSlots - 1)
	g.keys = make([]uint32, newSlots)
	g.vals = make([]V, newSlots)
	g.n = 0
	g.grave = 0
	for i, c := range oldCtrl {
		if c&ctrlFull != 0 {
			g.put(oldKeys[i], oldVals[i])
		}
	}
}

func (g *g32[V]) rng(fn func(key uint32, v V) bool) {
	for i, c := range g.ctrl {
		if c&ctrlFull != 0 {
			if !fn(g.keys[i], g.vals[i]) {
				return
			}
		}
	}
}

// g64 mirrors g32 for uint64 keys (IMSI/GUTI indexes).
type g64[V any] struct {
	groupCore
	keys []uint64
	vals []V
}

func newG64[V any](sizeHint int) *g64[V] {
	g := &g64[V]{}
	g.initSlots(sizeHint)
	g.keys = make([]uint64, g.slots())
	g.vals = make([]V, g.slots())
	return g
}

func (g *g64[V]) get(key uint64) (V, bool) {
	h := pkt.HashUint64(key)
	return g.getHinted(key, h, g.word(h&g.gmask))
}

func (g *g64[V]) getHinted(key, h, w uint64) (V, bool) {
	fp := fpOf(h)
	gi := h & g.gmask
	for step := uint64(1); ; step++ {
		for m := matchFull(w, fp); m != 0; m &= m - 1 {
			s := gi*groupSlots + uint64(bits.TrailingZeros64(m))/groupSlots
			if g.keys[s] == key {
				return g.vals[s], true
			}
		}
		if hasEmpty(w) {
			var zero V
			return zero, false
		}
		gi = (gi + step) & g.gmask
		w = g.word(gi)
	}
}

func (g *g64[V]) getChunk(keys []uint64, out []V) {
	var hs [batchChunk]uint64
	var ws [batchChunk]uint64
	for i, k := range keys {
		h := pkt.HashUint64(k)
		hs[i] = h
		ws[i] = g.word(h & g.gmask)
	}
	for i, k := range keys {
		if k == 0 || k == tombstone64 {
			var zero V
			out[i] = zero
			continue
		}
		out[i], _ = g.getHinted(k, hs[i], ws[i])
	}
}

func (g *g64[V]) put(key uint64, v V) {
	if g.needGrow() {
		g.rehash(g.growTarget())
	}
	h := pkt.HashUint64(key)
	fp := fpOf(h)
	gi := h & g.gmask
	free := -1
	for step := uint64(1); ; step++ {
		w := g.word(gi)
		for m := matchFull(w, fp); m != 0; m &= m - 1 {
			s := gi*groupSlots + uint64(bits.TrailingZeros64(m))/groupSlots
			if g.keys[s] == key {
				g.vals[s] = v
				return
			}
		}
		if free < 0 {
			if f := matchFree(w); f != 0 {
				free = int(gi)*groupSlots + bits.TrailingZeros64(f)/groupSlots
			}
		}
		if hasEmpty(w) {
			if g.ctrl[free] == ctrlTomb {
				g.grave--
			}
			g.ctrl[free] = fp
			g.keys[free] = key
			g.vals[free] = v
			g.n++
			return
		}
		gi = (gi + step) & g.gmask
	}
}

func (g *g64[V]) del(key uint64) (V, bool) {
	var zero V
	h := pkt.HashUint64(key)
	fp := fpOf(h)
	gi := h & g.gmask
	for step := uint64(1); ; step++ {
		w := g.word(gi)
		for m := matchFull(w, fp); m != 0; m &= m - 1 {
			s := gi*groupSlots + uint64(bits.TrailingZeros64(m))/groupSlots
			if g.keys[s] == key {
				v := g.vals[s]
				g.keys[s] = 0
				g.vals[s] = zero
				g.n--
				if hasEmpty(w) {
					g.ctrl[s] = ctrlEmpty
				} else {
					g.ctrl[s] = ctrlTomb
					g.grave++
					if g.needDecay() {
						g.rehash(g.slots())
					}
				}
				return v, true
			}
		}
		if hasEmpty(w) {
			return zero, false
		}
		gi = (gi + step) & g.gmask
	}
}

func (g *g64[V]) rehash(newSlots int) {
	oldCtrl, oldKeys, oldVals := g.ctrl, g.keys, g.vals
	g.ctrl = make([]byte, newSlots)
	g.gmask = uint64(newSlots/groupSlots - 1)
	g.keys = make([]uint64, newSlots)
	g.vals = make([]V, newSlots)
	g.n = 0
	g.grave = 0
	for i, c := range oldCtrl {
		if c&ctrlFull != 0 {
			g.put(oldKeys[i], oldVals[i])
		}
	}
}

func (g *g64[V]) rng(fn func(key uint64, v V) bool) {
	for i, c := range g.ctrl {
		if c&ctrlFull != 0 {
			if !fn(g.keys[i], g.vals[i]) {
				return
			}
		}
	}
}
