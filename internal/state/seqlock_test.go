package state

import (
	"sync"
	"testing"
)

// TestSeqlockParity pins the sequence protocol: even when quiescent,
// advanced by exactly 2 per control write (WriteCtrl and Restore), and
// reset by Recycle.
func TestSeqlockParity(t *testing.T) {
	ue := &UE{}
	if got := ue.CtrlSeq(); got != 0 {
		t.Fatalf("fresh seq = %d, want 0", got)
	}
	ue.WriteCtrl(func(c *ControlState) { c.IMSI = 7 })
	if got := ue.CtrlSeq(); got != 2 {
		t.Fatalf("seq after WriteCtrl = %d, want 2", got)
	}
	ue.Restore(ControlState{IMSI: 9}, CounterState{UplinkBytes: 4})
	if got := ue.CtrlSeq(); got != 4 {
		t.Fatalf("seq after Restore = %d, want 4", got)
	}
	var cs ControlState
	ue.ReadCtrlSnapshot(&cs)
	if cs.IMSI != 9 {
		t.Fatalf("snapshot IMSI = %d, want 9", cs.IMSI)
	}
	ue.Recycle()
	if got := ue.CtrlSeq(); got != 0 {
		t.Fatalf("seq after Recycle = %d, want 0", got)
	}
	ue.ReadCtrlSnapshot(&cs)
	if cs.IMSI != 0 || cs.Epoch != 0 {
		t.Fatalf("recycled control state not zeroed: %+v", cs)
	}
	if ue.Hot().Priv.Limiter != nil || ue.Hot().Priv.Epoch != 0 {
		t.Fatalf("recycled Priv not zeroed: %+v", ue.Hot().Priv)
	}
	_, cnt := ue.Snapshot()
	if cnt != (CounterState{}) {
		t.Fatalf("recycled counters not zeroed: %+v", cnt)
	}
}

// TestReadCtrlSnapshotNeverTears hammers one UE with control writes that
// keep two fields correlated (IMSI == GUTI) while a reader snapshots
// concurrently: every snapshot must observe the invariant, i.e. torn
// copies are always detected and retried. In non-race builds this
// exercises the optimistic copy-and-validate path directly; under -race
// the locked fallback makes the same guarantee trivially.
func TestReadCtrlSnapshotNeverTears(t *testing.T) {
	ue := &UE{}
	const writes = 50_000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(1); v <= writes; v++ {
			ue.WriteCtrl(func(c *ControlState) {
				c.IMSI = v
				// Touch enough bytes that a torn copy is likely to be
				// visible if undetected.
				for i := range c.Bearers {
					c.Bearers[i].MBRUplink = v
				}
				c.GUTI = v
			})
		}
	}()
	var cs ControlState
	for {
		ue.ReadCtrlSnapshot(&cs)
		if cs.IMSI != cs.GUTI {
			t.Fatalf("torn snapshot: IMSI=%d GUTI=%d", cs.IMSI, cs.GUTI)
		}
		for i := range cs.Bearers {
			if cs.Bearers[i].MBRUplink != cs.IMSI {
				t.Fatalf("torn snapshot: bearer %d rate=%d IMSI=%d", i, cs.Bearers[i].MBRUplink, cs.IMSI)
			}
		}
		if cs.IMSI == writes {
			break
		}
	}
	wg.Wait()
}

// TestLookupIMSIBatchAndRemoveBatch covers the batched index operations
// the control drain uses: one lock acquisition resolving (and removing)
// many users, nil-filling absent keys.
func TestLookupIMSIBatchAndRemoveBatch(t *testing.T) {
	tb := NewTable(LockModePEPC, 16)
	for i := 1; i <= 4; i++ {
		ue := &UE{}
		ue.WriteCtrl(func(c *ControlState) {
			c.IMSI = uint64(i)
			c.UplinkTEID = uint32(100 + i)
			c.UEAddr = uint32(200 + i)
		})
		if err := tb.Insert(ue); err != nil {
			t.Fatal(err)
		}
	}
	keys := []uint64{2, 99, 4}
	out := make([]*UE, len(keys))
	if n := tb.LookupIMSIBatch(keys, out); n != 2 {
		t.Fatalf("LookupIMSIBatch found %d, want 2", n)
	}
	if out[0] == nil || out[1] != nil || out[2] == nil {
		t.Fatalf("LookupIMSIBatch fill wrong: %v", out)
	}
	if n := tb.RemoveBatch(keys, out); n != 2 {
		t.Fatalf("RemoveBatch removed %d, want 2", n)
	}
	if tb.Len() != 2 {
		t.Fatalf("table len after RemoveBatch = %d, want 2", tb.Len())
	}
	if tb.LookupTEID(102) != nil || tb.LookupTEID(101) == nil {
		t.Fatal("TEID index not maintained by RemoveBatch")
	}
	// Removed users are gone; removing again nil-fills.
	if n := tb.RemoveBatch(keys, out); n != 0 || out[0] != nil {
		t.Fatalf("second RemoveBatch removed %d (out[0]=%v)", n, out[0])
	}
}

// TestDataPathSeqlockSnapshot verifies the PEPC-mode data path reads a
// consistent control snapshot through the table scratch (and that the
// callback sees the values a locked read would).
func TestDataPathSeqlockSnapshot(t *testing.T) {
	tb := NewTable(LockModePEPC, 16)
	ue := &UE{}
	ue.WriteCtrl(func(c *ControlState) {
		c.IMSI = 5
		c.UplinkTEID = 42
		c.UEAddr = 77
		c.AMBRUplink = 1000
	})
	if err := tb.Insert(ue); err != nil {
		t.Fatal(err)
	}
	found := tb.DataPathTEID(42, func(c *ControlState, cnt *CounterState) {
		if c.IMSI != 5 || c.AMBRUplink != 1000 {
			t.Fatalf("snapshot mismatch: %+v", c)
		}
		cnt.UplinkPackets++
	})
	if !found {
		t.Fatal("DataPathTEID missed")
	}
	_, cnt := ue.Snapshot()
	if cnt.UplinkPackets != 1 {
		t.Fatalf("counter write lost: %+v", cnt)
	}
}
