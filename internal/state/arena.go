package state

import "sync/atomic"

// Handle addresses a HotUE slot in an Arena: 8 bits of generation over
// 24 bits of slot index. Handle 0 is invalid (generations start at 1),
// so handle maps can use 0 the way pointer maps use nil. A retired
// slot's generation is bumped before the slot is reused, so a stale
// handle left in an index (or held by a racing batch) resolves to nil
// instead of aliasing the slot's next occupant.
type Handle uint32

const (
	handleSlotBits = 24
	handleSlotMask = 1<<handleSlotBits - 1
	handleGenMask  = 0xff
)

// MakeHandle assembles a handle from generation and slot (tests).
func MakeHandle(gen, slot uint32) Handle {
	return Handle(gen&handleGenMask<<handleSlotBits | slot&handleSlotMask)
}

func (h Handle) slot() uint32 { return uint32(h) & handleSlotMask }
func (h Handle) gen() uint32  { return uint32(h) >> handleSlotBits }

const (
	slabShift = 10
	slabSize  = 1 << slabShift // HotUEs per slab (~a quarter MB)
	slabMask  = slabSize - 1
)

type hotSlab [slabSize]HotUE

// Arena is the slab allocator behind the handle state layout: UE hot
// state lives in fixed-size slabs of HotUE, addressed by handle, so
// (a) the active population's per-packet state is dense in memory
// instead of scattered across millions of heap objects, and (b) the
// indexes over it are pointer-free, which together keep both the cache
// and the garbage collector's mark phase indifferent to how large the
// total population grows.
//
// Single-writer discipline: only the control thread allocates and
// retires; the data thread resolves handles via At. The slab directory
// is copy-on-grow behind an atomic pointer so resolution never races
// growth. Slot reuse is gated by the caller-provided sync fence — the
// same update-queue fence that gates UE recycling (DESIGN.md §4.9) —
// so a data-path batch that resolved a handle before the retire can
// finish writing counters into the (dead, but intact) slot.
type Arena struct {
	dir      atomic.Pointer[[]*hotSlab]
	nextSlot uint32
	pending  []pendingSlot
	pendHead int
}

type pendingSlot struct {
	slot  uint32
	stamp uint64 // update-queue sync sequence observed at retire
}

// NewArena returns an arena pre-sized for sizeHint users.
func NewArena(sizeHint int) *Arena {
	a := &Arena{}
	nslabs := (sizeHint + slabSize - 1) / slabSize
	if nslabs < 1 {
		nslabs = 1
	}
	slabs := make([]*hotSlab, nslabs)
	for i := range slabs {
		slabs[i] = new(hotSlab)
	}
	a.dir.Store(&slabs)
	return a
}

// At resolves a handle to its hot slot, or nil when the handle is
// invalid or stale (slot retired or rebound since the handle was
// issued). Safe to call from the data thread concurrently with
// control-thread Alloc/Retire.
func (a *Arena) At(h Handle) *HotUE {
	if h == 0 {
		return nil
	}
	slot := h.slot()
	slabs := *a.dir.Load()
	si := slot >> slabShift
	if int(si) >= len(slabs) {
		return nil
	}
	e := &slabs[si][slot&slabMask]
	if e.gen.Load() != h.gen() {
		return nil
	}
	return e
}

// Alloc binds u to a hot slot and returns its handle. A retired slot is
// reused only once the data plane's sync sequence has advanced two
// steps past the retire stamp (the PR 2 recycle fence: every data-path
// reference taken before the index delete synced has drained);
// otherwise a never-used slot is taken. Control thread only.
func (a *Arena) Alloc(u *UE, syncSeq uint64) Handle {
	slot, ok := a.popPending(syncSeq)
	if !ok {
		slot = a.freshSlot()
	}
	e := a.entry(slot)
	gen := e.gen.Load()
	if gen == 0 {
		gen = 1
		e.gen.Store(1)
	}
	e.reset()
	e.U = u
	e.self = Handle(gen<<handleSlotBits | slot)
	u.hot.Store(e)
	return e.self
}

// Retire unbinds a handle: the generation is bumped so the handle (and
// any stale index entry carrying it) stops resolving, and the slot is
// queued for reuse behind the sync fence. The back-pointer is left in
// place for in-flight data-path references. Control thread only.
func (a *Arena) Retire(h Handle, syncSeq uint64) {
	if h == 0 {
		return
	}
	slot := h.slot()
	slabs := *a.dir.Load()
	if int(slot>>slabShift) >= len(slabs) {
		return
	}
	e := a.entry(slot)
	if e.gen.Load() != h.gen() {
		return // already retired or rebound
	}
	ng := (h.gen() + 1) & handleGenMask
	if ng == 0 {
		ng = 1 // generation 0 is reserved for "never bound"
	}
	e.gen.Store(ng)
	// Unbind the cold context's forward pointer (CAS: never clobber a
	// newer binding). Without this, recycling the UE later would reset a
	// slot that may already belong to another user.
	if u := e.U; u != nil {
		u.hot.CompareAndSwap(e, nil)
	}
	a.pending = append(a.pending, pendingSlot{slot: slot, stamp: syncSeq})
}

// Len returns the number of slots ever bound minus those pending reuse
// — i.e. currently live bindings.
func (a *Arena) Len() int {
	return int(a.nextSlot) - (len(a.pending) - a.pendHead)
}

// Slots returns the arena's current capacity in slots (diagnostics).
func (a *Arena) Slots() int { return len(*a.dir.Load()) * slabSize }

func (a *Arena) entry(slot uint32) *HotUE {
	slabs := *a.dir.Load()
	return &slabs[slot>>slabShift][slot&slabMask]
}

func (a *Arena) popPending(syncSeq uint64) (uint32, bool) {
	if a.pendHead < len(a.pending) {
		p := a.pending[a.pendHead]
		if syncSeq >= p.stamp+2 {
			a.pendHead++
			if a.pendHead == len(a.pending) {
				a.pending = a.pending[:0]
				a.pendHead = 0
			}
			return p.slot, true
		}
	}
	return 0, false
}

func (a *Arena) freshSlot() uint32 {
	slot := a.nextSlot
	if slot > handleSlotMask {
		panic("state: arena full (2^24 slots)")
	}
	a.nextSlot++
	slabs := *a.dir.Load()
	if int(slot>>slabShift) >= len(slabs) {
		grown := make([]*hotSlab, len(slabs)+1)
		copy(grown, slabs)
		grown[len(slabs)] = new(hotSlab)
		a.dir.Store(&grown)
	}
	return slot
}
