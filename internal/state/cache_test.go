package state

import (
	"math/rand"
	"sync"
	"testing"

	"pepc/internal/pkt"
)

// Tests for the cache-conscious store (DESIGN.md §4.10): group-probing
// index behaviour under churn, the arena's handle/generation protocol,
// and the zero-allocation guarantees the data path depends on.

// probeGroups32 counts the control-word loads a lookup of key performs
// (1 = found or missed in the home group). Mirrors getHinted.
func probeGroups32(g *g32[*UE], key uint32) int {
	h := pkt.HashUint32(key)
	fp := fpOf(h)
	gi := h & g.gmask
	loads := 0
	for step := uint64(1); ; step++ {
		w := g.word(gi)
		loads++
		for m := matchFull(w, fp); m != 0; m &= m - 1 {
			s := gi*groupSlots + uint64(trailingZeros(m))/groupSlots
			if g.keys[s] == key {
				return loads
			}
		}
		if hasEmpty(w) {
			return loads
		}
		gi = (gi + step) & g.gmask
	}
}

func trailingZeros(m uint64) int {
	n := 0
	for m&1 == 0 {
		m >>= 1
		n++
	}
	return n
}

// TestTombstoneDecayBoundsProbeLength is the delete-churn regression
// test: a population that grows dense and then shrinks by deletion must
// not leave probe chains behind. Without delete-side decay the
// tombstones of the dense phase survive (growth never triggers again),
// and absent-key probes crawl through them forever.
func TestTombstoneDecayBoundsProbeLength(t *testing.T) {
	m := NewU32Map(3000)
	ue := &UE{}
	for k := uint32(1); k <= 3000; k++ {
		m.Put(k, ue)
	}
	// Shrink to 100 live keys by deleting in an order that stresses full
	// groups, then churn the survivors.
	for k := uint32(101); k <= 3000; k++ {
		m.Delete(k)
	}
	rng := rand.New(rand.NewSource(42))
	next := uint32(10_000)
	for i := 0; i < 50_000; i++ {
		del := uint32(rng.Intn(100) + 1)
		if v := m.Get(del); v != nil {
			m.Delete(del)
			m.Put(del, ue)
		}
		next++
		m.Put(next, ue)
		m.Delete(next)
	}
	g := m.g
	if g.grave > g.n && g.grave*8 > g.slots() {
		t.Fatalf("decay did not run: grave=%d live=%d slots=%d", g.grave, g.n, g.slots())
	}
	// Probe length must stay flat for both hits and misses.
	maxProbe := 0
	m.Range(func(k uint32, _ *UE) bool {
		if p := probeGroups32(g, k); p > maxProbe {
			maxProbe = p
		}
		return true
	})
	for i := 0; i < 1000; i++ {
		if p := probeGroups32(g, uint32(1_000_000+i)); p > maxProbe {
			maxProbe = p
		}
	}
	if maxProbe > 8 {
		t.Fatalf("probe length degraded under churn: %d group loads", maxProbe)
	}
}

func TestH32MapModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewH32Map(4)
	model := map[uint32]Handle{}
	for i := 0; i < 50000; i++ {
		k := uint32(rng.Intn(500) + 1)
		switch rng.Intn(3) {
		case 0:
			h := MakeHandle(uint32(rng.Intn(255)+1), uint32(rng.Intn(1<<20)))
			m.Put(k, h)
			model[k] = h
		case 1:
			got := m.Delete(k)
			want := model[k]
			delete(model, k)
			if got != want {
				t.Fatalf("delete(%d): got %#x want %#x", k, got, want)
			}
		default:
			if got, want := m.Get(k), model[k]; got != want {
				t.Fatalf("get(%d): got %#x want %#x", k, got, want)
			}
		}
	}
	if m.Len() != len(model) {
		t.Fatalf("len: %d vs model %d", m.Len(), len(model))
	}
}

func TestArenaAllocResolveRetire(t *testing.T) {
	a := NewArena(4)
	u := &UE{}
	h := a.Alloc(u, 0)
	if h == 0 {
		t.Fatal("alloc returned the invalid handle")
	}
	e := a.At(h)
	if e == nil || e.U != u || e.Handle() != h {
		t.Fatal("handle does not resolve to its slot")
	}
	if u.Handle() != h {
		t.Fatal("UE not bound to its handle")
	}
	if a.Len() != 1 {
		t.Fatalf("len = %d", a.Len())
	}
	a.Retire(h, 10)
	if a.At(h) != nil {
		t.Fatal("retired handle still resolves")
	}
	if e.U != u {
		t.Fatal("back-pointer cleared at retire (in-flight refs need it)")
	}
	if u.Hot() == e {
		t.Fatal("UE still bound to retired slot")
	}
	// Double retire of a stale handle is a no-op.
	a.Retire(h, 11)
	if a.Len() != 0 {
		t.Fatalf("len after retire = %d", a.Len())
	}
}

func TestArenaRecycleFence(t *testing.T) {
	a := NewArena(4)
	u1 := &UE{}
	h1 := a.Alloc(u1, 0)
	a.Retire(h1, 5)
	// Before the fence (syncSeq < stamp+2) the slot must not be reused.
	h2 := a.Alloc(&UE{}, 6)
	if h2.slot() == h1.slot() {
		t.Fatal("slot reused before the sync fence")
	}
	// At the fence it is.
	h3 := a.Alloc(&UE{}, 7)
	if h3.slot() != h1.slot() {
		t.Fatalf("slot not reused after the fence: got %d want %d", h3.slot(), h1.slot())
	}
	if h3.gen() == h1.gen() {
		t.Fatal("reused slot kept its generation")
	}
	if a.At(h1) != nil {
		t.Fatal("pre-reuse handle resolves to the new occupant")
	}
	if e := a.At(h3); e == nil {
		t.Fatal("new occupant's handle does not resolve")
	}
}

func TestArenaGenerationSkipsZero(t *testing.T) {
	a := NewArena(1)
	seq := uint64(0)
	slot := uint32(0)
	for cycle := 0; cycle < 300; cycle++ {
		h := a.Alloc(&UE{}, seq)
		if h.slot() != slot {
			t.Fatalf("cycle %d drifted to slot %d", cycle, h.slot())
		}
		if h.gen() == 0 {
			t.Fatalf("cycle %d issued generation 0", cycle)
		}
		a.Retire(h, seq)
		seq += 2
	}
}

func TestArenaGrowthConcurrentAt(t *testing.T) {
	// Slab-directory growth is copy-on-grow behind an atomic pointer;
	// data-thread At must be safe concurrently (checked under -race).
	a := NewArena(1)
	h0 := a.Alloc(&UE{}, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if a.At(h0) == nil {
					panic("live handle stopped resolving during growth")
				}
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		a.Alloc(&UE{}, 0)
	}
	close(stop)
	wg.Wait()
	if a.Slots() < 5001 {
		t.Fatalf("arena did not grow: %d slots", a.Slots())
	}
}

// FuzzHandleStoreModel drives the handle index + arena against a plain
// Go map model: interleaved insert/delete/rekey/recycle with fence
// advancement, checking that lookups (single and batched) agree with
// the model and that every retired handle misses. Inputs are capped so
// no slot can live through a full 8-bit generation wrap within one run.
func FuzzHandleStoreModel(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 3, 0, 2, 1, 0, 1, 4, 1})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 1, 3, 0, 0, 4, 2, 4, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 400 {
			data = data[:400]
		}
		a := NewArena(2)
		m := NewH32Map(2)
		model := map[uint32]*UE{}
		handleOf := map[uint32]Handle{}
		type staleRef struct{ h Handle }
		var stale []staleRef
		var syncSeq uint64
		for i := 0; i+1 < len(data); i += 2 {
			op, key := data[i]%5, uint32(data[i+1]%31+1)
			switch op {
			case 0: // insert
				if model[key] == nil {
					u := &UE{}
					h := a.Alloc(u, syncSeq)
					m.Put(key, h)
					model[key] = u
					handleOf[key] = h
				}
			case 1: // delete + retire
				if model[key] != nil {
					h := m.Delete(key)
					if h != handleOf[key] {
						t.Fatalf("delete(%d): handle %#x, want %#x", key, h, handleOf[key])
					}
					a.Retire(h, syncSeq)
					stale = append(stale, staleRef{h})
					delete(model, key)
					delete(handleOf, key)
				}
			case 2: // rekey
				to := key%31 + 1
				if model[key] != nil && model[to] == nil && to != key {
					h := m.Delete(key)
					m.Put(to, h)
					model[to], handleOf[to] = model[key], h
					delete(model, key)
					delete(handleOf, key)
				}
			case 3: // advance the data-plane fence
				syncSeq++
			default: // lookup
				e := a.At(m.Get(key))
				if model[key] == nil {
					if e != nil {
						t.Fatalf("lookup(%d): stale hit", key)
					}
				} else if e == nil || e.U != model[key] {
					t.Fatalf("lookup(%d): wrong context", key)
				}
			}
		}
		// Batched lookups agree with the model over the whole key space.
		var keys [31]uint32
		var out [31]*HotUE
		for i := range keys {
			keys[i] = uint32(i + 1)
		}
		m.GetHotBatch(keys[:], out[:], a)
		for i, k := range keys {
			want := model[k]
			if want == nil {
				if out[i] != nil {
					t.Fatalf("batch lookup(%d): stale hit", k)
				}
			} else if out[i] == nil || out[i].U != want {
				t.Fatalf("batch lookup(%d): wrong context", k)
			}
		}
		// Every retired handle must miss, regardless of slot reuse.
		for _, s := range stale {
			if a.At(s.h) != nil {
				t.Fatalf("retired handle %#x resolves", s.h)
			}
		}
	})
}

// TestTwoLevelMissesConcurrent pins the miss counter's thread model: the
// data thread bumps it on secondary-served lookups while the control
// plane polls it for primary sizing. Run under -race.
func TestTwoLevelMissesConcurrent(t *testing.T) {
	tl := NewTwoLevel(16, 1024)
	for i := uint32(1); i <= 64; i++ {
		tl.InsertSecondary(i, 0, &UE{})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tl.Misses()
			}
		}
	}()
	var out [8]*HotUE
	var fromSec [8]bool
	keys := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 5000; i++ {
		if ue, _ := tl.Lookup(keys[i%8], true); ue == nil {
			t.Fatal("secondary miss")
		}
		tl.LookupHotBatch(keys, true, out[:], fromSec[:])
	}
	close(stop)
	wg.Wait()
	if tl.Misses() == 0 {
		t.Fatal("miss counter did not move")
	}
}

// Zero-allocation guards: the per-packet paths must not allocate. These
// back the CI allocation-guard step (scripts/ci.sh).

func TestGetBatchZeroAlloc(t *testing.T) {
	m := NewU32Map(1024)
	m64 := NewU64Map(1024)
	hm := NewH32Map(1024)
	a := NewArena(1024)
	for i := uint32(1); i <= 1024; i++ {
		u := &UE{}
		m.Put(i, u)
		m64.Put(uint64(i), u)
		hm.Put(i, a.Alloc(u, 0))
	}
	keys := make([]uint32, 64)
	keys64 := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint32(i + 1)
		keys64[i] = uint64(i + 1)
	}
	out := make([]*UE, 64)
	out64 := make([]*UE, 64)
	outH := make([]Handle, 64)
	if n := testing.AllocsPerRun(100, func() { m.GetBatch(keys, out) }); n != 0 {
		t.Fatalf("U32Map.GetBatch allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { m64.GetBatch(keys64, out64) }); n != 0 {
		t.Fatalf("U64Map.GetBatch allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { hm.GetBatch(keys, outH) }); n != 0 {
		t.Fatalf("H32Map.GetBatch allocates %.1f/op", n)
	}
}

func TestGetHotBatchZeroAlloc(t *testing.T) {
	m := NewU32Map(1024)
	hm := NewH32Map(1024)
	a := NewArena(1024)
	var h0 Handle
	for i := uint32(1); i <= 1024; i++ {
		u := &UE{}
		m.Put(i, u)
		h := a.Alloc(u, 0)
		hm.Put(i, h)
		if i == 1 {
			h0 = h
		}
	}
	keys := make([]uint32, 64)
	for i := range keys {
		keys[i] = uint32(i + 1)
	}
	out := make([]*HotUE, 64)
	if n := testing.AllocsPerRun(100, func() { m.GetHotBatch(keys, out) }); n != 0 {
		t.Fatalf("U32Map.GetHotBatch allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { hm.GetHotBatch(keys, out, a) }); n != 0 {
		t.Fatalf("H32Map.GetHotBatch allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = a.At(h0) }); n != 0 {
		t.Fatalf("Arena.At allocates %.1f/op", n)
	}
}

func TestLookupHotBatchZeroAlloc(t *testing.T) {
	for _, handles := range []bool{false, true} {
		name := "pointer"
		if handles {
			name = "handle"
		}
		t.Run(name, func(t *testing.T) {
			var tl *TwoLevel
			var a *Arena
			if handles {
				a = NewArena(1024)
				tl = NewTwoLevelHandles(256, 1024, a)
			} else {
				tl = NewTwoLevel(256, 1024)
			}
			for i := uint32(1); i <= 256; i++ {
				u := &UE{}
				if a != nil {
					a.Alloc(u, 0)
				}
				tl.InsertSecondary(i, 0, u)
				tl.Promote(i, 0, u)
			}
			keys := make([]uint32, 64)
			for i := range keys {
				keys[i] = uint32(i + 1)
			}
			out := make([]*HotUE, 64)
			fromSec := make([]bool, 64)
			if n := testing.AllocsPerRun(100, func() {
				tl.LookupHotBatch(keys, true, out, fromSec)
			}); n != 0 {
				t.Fatalf("LookupHotBatch allocates %.1f/op", n)
			}
		})
	}
}

// BenchmarkGetBatch measures the two-pass batched probe against the
// one-at-a-time path at a population where the table no longer fits in
// L2 (the case pipelining exists for).
func BenchmarkGetBatch(b *testing.B) {
	const size = 1 << 20
	m := NewU32Map(size)
	for i := uint32(1); i <= size; i++ {
		m.Put(i, &UE{})
	}
	keys := make([]uint32, 256)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = uint32(rng.Intn(size) + 1)
	}
	out := make([]*UE, len(keys))
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.GetBatch(keys, out)
		}
	})
	b.Run("single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, k := range keys {
				out[j] = m.Get(k)
			}
		}
	})
}

func BenchmarkArenaAt(b *testing.B) {
	a := NewArena(1 << 16)
	handles := make([]Handle, 1<<16)
	for i := range handles {
		handles[i] = a.Alloc(&UE{}, 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if a.At(handles[i&(1<<16-1)]) == nil {
			b.Fatal("miss")
		}
	}
}
