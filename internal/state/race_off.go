//go:build !race

package state

const raceEnabled = false
