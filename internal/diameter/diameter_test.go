package diameter

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestMessageRoundTrip(t *testing.T) {
	req := NewRequest(CmdAuthenticationInformation, AppS6a, 7, 9,
		U64AVP(AVPUserName, 123456789),
		U32AVP(AVPVisitedPLMN, 310150),
	)
	got, err := Unmarshal(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != CmdAuthenticationInformation || got.AppID != AppS6a ||
		got.HopByHop != 7 || got.EndToEnd != 9 || !got.IsRequest() {
		t.Fatalf("header: %+v", got)
	}
	u, ok := got.Find(AVPUserName)
	if !ok {
		t.Fatal("missing user name")
	}
	if v, err := u.Uint64(); err != nil || v != 123456789 {
		t.Fatalf("user name: %d %v", v, err)
	}
}

func TestAnswerEchoesIdentifiers(t *testing.T) {
	req := NewRequest(CmdUpdateLocation, AppS6a, 100, 200)
	ans := req.Answer(ResultSuccess, U32AVP(AVPVisitedPLMN, 1))
	if ans.IsRequest() {
		t.Fatal("answer has request flag")
	}
	if ans.HopByHop != 100 || ans.EndToEnd != 200 || ans.Code != req.Code {
		t.Fatalf("answer header: %+v", ans)
	}
	if ans.ResultCode() != ResultSuccess {
		t.Fatalf("result: %d", ans.ResultCode())
	}
}

func TestGroupedAVPs(t *testing.T) {
	g := Grouped(AVPEUTRANVector,
		AVP{Code: AVPRand, Data: bytes.Repeat([]byte{1}, 16)},
		AVP{Code: AVPXres, Data: bytes.Repeat([]byte{2}, 8)},
		AVP{Code: AVPAutn, Data: bytes.Repeat([]byte{3}, 15)}, // odd length forces padding
	)
	subs, err := g.SubAVPs()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 {
		t.Fatalf("%d sub AVPs", len(subs))
	}
	if subs[0].Code != AVPRand || len(subs[0].Data) != 16 {
		t.Fatalf("rand: %+v", subs[0])
	}
	if subs[2].Code != AVPAutn || len(subs[2].Data) != 15 || subs[2].Data[14] != 3 {
		t.Fatalf("autn: %+v", subs[2])
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2}); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	m := NewRequest(CmdCreditControl, AppGx, 1, 1)
	wire := m.Marshal()
	wire[0] = 2
	if _, err := Unmarshal(wire); err != ErrVersion {
		t.Fatalf("version: %v", err)
	}
	// Corrupted AVP length.
	m2 := NewRequest(CmdCreditControl, AppGx, 1, 1, U32AVP(AVPResultCode, 1))
	wire2 := m2.Marshal()
	wire2[20+5] = 0xff
	wire2[20+6] = 0xff
	wire2[20+7] = 0xff
	if _, err := Unmarshal(wire2); err != ErrAVP {
		t.Fatalf("bad AVP: %v", err)
	}
}

func TestCallRunsCodecBothWays(t *testing.T) {
	h := HandlerFunc(func(req *Message) (*Message, error) {
		if !req.IsRequest() {
			t.Error("handler saw non-request")
		}
		return req.Answer(ResultSuccess), nil
	})
	ans, err := Call(h, NewRequest(CmdReAuth, AppGx, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if ans.ResultCode() != ResultSuccess || ans.HopByHop != 5 {
		t.Fatalf("answer: %+v", ans)
	}
}

func TestFindAll(t *testing.T) {
	m := NewRequest(CmdCreditControl, AppGx, 1, 1,
		U32AVP(AVPChargingRuleInstall, 1),
		U32AVP(AVPChargingRuleInstall, 2),
		U32AVP(AVPResultCode, 3),
	)
	if got := len(m.FindAll(AVPChargingRuleInstall)); got != 2 {
		t.Fatalf("FindAll = %d", got)
	}
}

// Property: marshal/unmarshal round-trips arbitrary AVP payload sets.
func TestRoundTripProperty(t *testing.T) {
	f := func(code, app, hbh, e2e uint32, payloads [][]byte) bool {
		if len(payloads) > 16 {
			payloads = payloads[:16]
		}
		m := NewRequest(code&0xffffff, app, hbh, e2e)
		for i, p := range payloads {
			if len(p) > 512 {
				p = p[:512]
			}
			m.AVPs = append(m.AVPs, AVP{Code: uint32(i + 1), Data: p})
		}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		if got.Code != code&0xffffff || len(got.AVPs) != len(m.AVPs) {
			return false
		}
		for i := range m.AVPs {
			if !bytes.Equal(got.AVPs[i].Data, m.AVPs[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCallTimeoutAnswersInTime(t *testing.T) {
	h := HandlerFunc(func(req *Message) (*Message, error) {
		return req.Answer(ResultSuccess), nil
	})
	req := NewRequest(CmdUpdateLocation, AppS6a, 1, 1, U64AVP(AVPUserName, 7))
	ans, err := CallTimeout(h, req, time.Second)
	if err != nil {
		t.Fatalf("CallTimeout: %v", err)
	}
	if ans.ResultCode() != ResultSuccess {
		t.Fatalf("result = %d, want %d", ans.ResultCode(), ResultSuccess)
	}
}

func TestCallTimeoutHungBackend(t *testing.T) {
	release := make(chan struct{})
	h := HandlerFunc(func(req *Message) (*Message, error) {
		<-release // hang until the test lets go
		return req.Answer(ResultSuccess), nil
	})
	req := NewRequest(CmdUpdateLocation, AppS6a, 2, 2, U64AVP(AVPUserName, 7))
	start := time.Now()
	_, err := CallTimeout(h, req, 10*time.Millisecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("deadline took %v, want ~10ms", el)
	}
	close(release) // unblock the abandoned goroutine
}

func TestCallTimeoutZeroMeansNoDeadline(t *testing.T) {
	h := HandlerFunc(func(req *Message) (*Message, error) {
		return req.Answer(ResultSuccess), nil
	})
	req := NewRequest(CmdCreditControl, AppGx, 3, 3)
	ans, err := CallTimeout(h, req, 0)
	if err != nil || ans.ResultCode() != ResultSuccess {
		t.Fatalf("d=0 path: ans=%v err=%v", ans, err)
	}
}
