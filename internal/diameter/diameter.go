// Package diameter implements the Diameter base-protocol codec (RFC 6733)
// plus the S6a (HSS, 3GPP 29.272) and Gx (PCRF, 3GPP 29.212) vocabulary
// the EPC control plane uses. PEPC's node proxy speaks these interfaces
// on behalf of its slices ("the interface between the HSS and Proxy is
// the same as the current interface between the MME and HSS ... referred
// to as S6A and usually runs the Diameter protocol", paper §3.3).
package diameter

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Application ids.
const (
	AppS6a uint32 = 16777251
	AppGx  uint32 = 16777238
)

// Command codes.
const (
	CmdAuthenticationInformation uint32 = 318 // AIR/AIA (S6a)
	CmdUpdateLocation            uint32 = 316 // ULR/ULA (S6a)
	CmdCreditControl             uint32 = 272 // CCR/CCA (Gx)
	CmdReAuth                    uint32 = 258 // RAR/RAA (Gx)
)

// Header flag bits.
const (
	FlagRequest   uint8 = 0x80
	FlagProxyable uint8 = 0x40
	FlagError     uint8 = 0x20
)

// AVP codes (RFC 6733 base + 3GPP).
const (
	AVPUserName        uint32 = 1 // IMSI as utf8 digits; we carry uint64
	AVPResultCode      uint32 = 268
	AVPSessionID       uint32 = 263
	AVPOriginHost      uint32 = 264
	AVPDestinationHost uint32 = 293
	AVPCCRequestType   uint32 = 416

	// 3GPP S6a authentication info AVPs.
	AVPEUTRANVector     uint32 = 1414
	AVPRand             uint32 = 1447
	AVPXres             uint32 = 1448
	AVPAutn             uint32 = 1449
	AVPKasme            uint32 = 1450
	AVPVisitedPLMN      uint32 = 1407
	AVPSubscriptionData uint32 = 1400
	AVPAMBRUplink       uint32 = 516
	AVPAMBRDownlink     uint32 = 515

	// 3GPP Gx charging-rule AVPs.
	AVPChargingRuleInstall    uint32 = 1001
	AVPChargingRuleRemove     uint32 = 1002
	AVPChargingRuleDefinition uint32 = 1003
	AVPChargingRuleName       uint32 = 1005
	AVPPrecedence             uint32 = 1010
	AVPRatingGroup            uint32 = 432
	AVPFlowDescription        uint32 = 507
	AVPMaxRequestedBWUL       uint32 = 515 // shares code with AMBR-DL in 29.212; instance disambiguates
	AVPUsedServiceUnit        uint32 = 446
)

// Result codes.
const (
	ResultSuccess        uint32 = 2001
	ResultUserUnknown    uint32 = 5001
	ResultAuthRejected   uint32 = 4001
	ResultUnableToComply uint32 = 5012
)

// Codec errors.
var (
	ErrShort   = errors.New("diameter: message too short")
	ErrVersion = errors.New("diameter: unsupported version")
	ErrAVP     = errors.New("diameter: malformed AVP")
)

const headerLen = 20

// AVP is one attribute-value pair.
type AVP struct {
	Code uint32
	Data []byte
}

// Uint32 decodes a 4-byte AVP value.
func (a AVP) Uint32() (uint32, error) {
	if len(a.Data) != 4 {
		return 0, ErrAVP
	}
	return binary.BigEndian.Uint32(a.Data), nil
}

// Uint64 decodes an 8-byte AVP value.
func (a AVP) Uint64() (uint64, error) {
	if len(a.Data) != 8 {
		return 0, ErrAVP
	}
	return binary.BigEndian.Uint64(a.Data), nil
}

// U32AVP builds a 4-byte AVP.
func U32AVP(code, v uint32) AVP {
	d := make([]byte, 4)
	binary.BigEndian.PutUint32(d, v)
	return AVP{Code: code, Data: d}
}

// U64AVP builds an 8-byte AVP.
func U64AVP(code uint32, v uint64) AVP {
	d := make([]byte, 8)
	binary.BigEndian.PutUint64(d, v)
	return AVP{Code: code, Data: d}
}

// Grouped builds a grouped AVP from sub-AVPs.
func Grouped(code uint32, sub ...AVP) AVP {
	n := 0
	for _, s := range sub {
		n += 8 + len(s.Data)
		n = (n + 3) &^ 3
	}
	d := make([]byte, n)
	o := 0
	for _, s := range sub {
		o += putAVP(d[o:], s)
	}
	return AVP{Code: code, Data: d}
}

// SubAVPs parses a grouped AVP's contents.
func (a AVP) SubAVPs() ([]AVP, error) {
	return parseAVPs(a.Data)
}

// Message is a Diameter message.
type Message struct {
	Version  uint8
	Flags    uint8
	Code     uint32
	AppID    uint32
	HopByHop uint32
	EndToEnd uint32
	AVPs     []AVP
}

// IsRequest reports the R flag.
func (m *Message) IsRequest() bool { return m.Flags&FlagRequest != 0 }

// Find returns the first AVP with the given code.
func (m *Message) Find(code uint32) (AVP, bool) {
	for _, a := range m.AVPs {
		if a.Code == code {
			return a, true
		}
	}
	return AVP{}, false
}

// FindAll returns every AVP with the given code.
func (m *Message) FindAll(code uint32) []AVP {
	var out []AVP
	for _, a := range m.AVPs {
		if a.Code == code {
			out = append(out, a)
		}
	}
	return out
}

// ResultCode extracts the Result-Code AVP, defaulting to 0.
func (m *Message) ResultCode() uint32 {
	if a, ok := m.Find(AVPResultCode); ok {
		if v, err := a.Uint32(); err == nil {
			return v
		}
	}
	return 0
}

// NewRequest builds a request skeleton.
func NewRequest(code, appID, hopByHop, endToEnd uint32, avps ...AVP) *Message {
	return &Message{Version: 1, Flags: FlagRequest | FlagProxyable, Code: code,
		AppID: appID, HopByHop: hopByHop, EndToEnd: endToEnd, AVPs: avps}
}

// Answer builds the answer skeleton for a request, echoing identifiers.
func (m *Message) Answer(result uint32, avps ...AVP) *Message {
	out := &Message{Version: 1, Flags: m.Flags &^ FlagRequest, Code: m.Code,
		AppID: m.AppID, HopByHop: m.HopByHop, EndToEnd: m.EndToEnd}
	out.AVPs = append(out.AVPs, U32AVP(AVPResultCode, result))
	out.AVPs = append(out.AVPs, avps...)
	return out
}

// Marshal encodes the message.
func (m *Message) Marshal() []byte {
	n := headerLen
	for _, a := range m.AVPs {
		n += 8 + len(a.Data)
		n = (n + 3) &^ 3
	}
	b := make([]byte, n)
	b[0] = 1 // version
	putU24(b[1:4], uint32(n))
	b[4] = m.Flags
	putU24(b[5:8], m.Code)
	binary.BigEndian.PutUint32(b[8:12], m.AppID)
	binary.BigEndian.PutUint32(b[12:16], m.HopByHop)
	binary.BigEndian.PutUint32(b[16:20], m.EndToEnd)
	o := headerLen
	for _, a := range m.AVPs {
		o += putAVP(b[o:], a)
	}
	return b
}

// Unmarshal decodes one message.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < headerLen {
		return nil, ErrShort
	}
	if b[0] != 1 {
		return nil, ErrVersion
	}
	total := int(u24(b[1:4]))
	if total < headerLen || len(b) < total {
		return nil, ErrShort
	}
	m := &Message{
		Version:  1,
		Flags:    b[4],
		Code:     u24(b[5:8]),
		AppID:    binary.BigEndian.Uint32(b[8:12]),
		HopByHop: binary.BigEndian.Uint32(b[12:16]),
		EndToEnd: binary.BigEndian.Uint32(b[16:20]),
	}
	avps, err := parseAVPs(b[headerLen:total])
	if err != nil {
		return nil, err
	}
	m.AVPs = avps
	return m, nil
}

func putAVP(dst []byte, a AVP) int {
	l := 8 + len(a.Data)
	binary.BigEndian.PutUint32(dst[0:4], a.Code)
	dst[4] = 0x40 // mandatory flag
	putU24(dst[5:8], uint32(l))
	copy(dst[8:], a.Data)
	padded := (l + 3) &^ 3
	for i := l; i < padded; i++ {
		dst[i] = 0
	}
	return padded
}

func parseAVPs(b []byte) ([]AVP, error) {
	var out []AVP
	o := 0
	for o < len(b) {
		if o+8 > len(b) {
			return nil, ErrAVP
		}
		code := binary.BigEndian.Uint32(b[o : o+4])
		l := int(u24(b[o+5 : o+8]))
		if l < 8 || o+l > len(b) {
			return nil, ErrAVP
		}
		data := append([]byte(nil), b[o+8:o+l]...)
		out = append(out, AVP{Code: code, Data: data})
		o += (l + 3) &^ 3
	}
	return out, nil
}

func putU24(dst []byte, v uint32) {
	dst[0] = byte(v >> 16)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v)
}

func u24(b []byte) uint32 {
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
}

// Handler processes a request and produces an answer; the node proxy and
// the in-process HSS/PCRF servers connect through this.
type Handler interface {
	Handle(req *Message) (*Message, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Message) (*Message, error)

// Handle implements Handler.
func (f HandlerFunc) Handle(req *Message) (*Message, error) { return f(req) }

// Call marshals req, passes the bytes through h (simulating the wire so
// the codec runs on every exchange, as it would across a socket), and
// unmarshals the answer.
func Call(h Handler, req *Message) (*Message, error) {
	wire := req.Marshal()
	decoded, err := Unmarshal(wire)
	if err != nil {
		return nil, fmt.Errorf("diameter: self-check encode: %w", err)
	}
	ans, err := h.Handle(decoded)
	if err != nil {
		return nil, err
	}
	back, err := Unmarshal(ans.Marshal())
	if err != nil {
		return nil, fmt.Errorf("diameter: answer encode: %w", err)
	}
	return back, nil
}

// ErrDeadline is returned by CallTimeout when the backend does not
// answer within the deadline. The exchange is abandoned — RFC 6733's Tc
// timer semantics: a late answer is discarded, the hop-by-hop id is
// never reused, and the caller decides whether to retry.
var ErrDeadline = errors.New("diameter: request deadline exceeded")

// CallTimeout is Call bounded by a deadline. The handler runs in its own
// goroutine so a hung backend cannot block the caller past d; its
// eventual answer (or error) is discarded after the deadline fires.
// d <= 0 means no deadline (plain Call).
func CallTimeout(h Handler, req *Message, d time.Duration) (*Message, error) {
	if d <= 0 {
		return Call(h, req)
	}
	wire := req.Marshal()
	decoded, err := Unmarshal(wire)
	if err != nil {
		return nil, fmt.Errorf("diameter: self-check encode: %w", err)
	}
	type callResult struct {
		ans *Message
		err error
	}
	ch := make(chan callResult, 1) // buffered: a late answer never leaks the goroutine
	go func() {
		ans, err := h.Handle(decoded)
		if err != nil {
			ch <- callResult{nil, err}
			return
		}
		back, err := Unmarshal(ans.Marshal())
		if err != nil {
			ch <- callResult{nil, fmt.Errorf("diameter: answer encode: %w", err)}
			return
		}
		ch <- callResult{back, nil}
	}()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.ans, r.err
	case <-t.C:
		return nil, ErrDeadline
	}
}
