// Package hdr provides the fast path's latency substrate: an HDR-style
// log-bucketed histogram whose record path is one constant-time bucket
// computation plus one uncontended atomic add — cheap enough to run
// inside the per-packet verdict stages — with lock-free merge at
// readout so per-worker unsynchronized instances aggregate into
// per-slice and per-node p50/p99/p999 surfaces without stalling a
// recorder.
//
// Design (the HdrHistogram trade-off without the dependency):
//
//   - Buckets: 64 major octaves × 16 linear sub-buckets cover 1ns to
//     ~580 years of nanoseconds with ≤1/16 (6.25%) relative error.
//     Values 0–15 land in exact unit buckets. The bucket index is a
//     pure function of the value via bits.Len64 — no loops, no
//     branches on magnitude (the old sim.Histogram walked up to 64
//     shift iterations per record; that cost lands exactly on the path
//     being measured).
//   - Record: a single atomic.AddUint64 on the value's bucket. No
//     per-record sum/min/max bookkeeping — count, mean, min, max and
//     quantiles are all derived from the buckets at readout, so the
//     recorder pays for nothing the readout can reconstruct. RecordN
//     admits a whole same-valued run with one add (one clock read per
//     run, not per packet).
//   - Concurrency: instances are meant to be single-writer (one per
//     worker), but every access is atomic, so a reader may Merge or
//     query a live recorder at any time — the race detector stays
//     quiet and readout never blocks recording. A quantile read over a
//     moving histogram is a consistent-enough snapshot: each bucket is
//     read once, so the result corresponds to some interleaving of the
//     concurrent records.
//
// Contracts:
//
//   - Count is exact: every Record(N) is visible in Count after the
//     recording goroutine's add completes (it is the sum of the bucket
//     counts, each maintained atomically).
//   - Quantile error is bounded: Percentile(p) returns the upper edge
//     of the bucket holding the rank-⌈n·p/100⌉ sample, so for a true
//     sample value v it returns r with v ≤ r ≤ v·(1+1/16)+1. Reporting
//     the upper edge makes the figure-gating direction conservative:
//     a ratcheted p99 ceiling can only be optimistic about the bucket
//     width, never about the samples.
package hdr

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

const (
	// subBits is log2 of the linear sub-buckets per octave; 4 gives the
	// 1/16 relative-error bound.
	subBits = 4
	subN    = 1 << subBits

	// NumBuckets is the bucket array length. Major octaves above
	// subBits each contribute subN buckets starting at index
	// (major-subBits+1)*subN; the largest major (63) ends at
	// 60*16+15 = 975.
	NumBuckets = 61 * subN
)

// Histogram is a fixed-size log-bucketed latency histogram. The zero
// value is ready to use. Size is ~7.6KB; embed one per worker and per
// direction rather than sharing across threads (sharing is safe but
// turns the uncontended add into a contended one).
type Histogram struct {
	counts [NumBuckets]uint64 // accessed atomically
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// BucketOf returns the bucket index for a nanosecond value: exact unit
// buckets below 16, then (octave, 4-bit mantissa). Constant time.
func BucketOf(v uint64) int {
	if v < subN {
		return int(v)
	}
	major := uint(bits.Len64(v)) - 1 // position of the highest set bit
	minor := (v >> (major - subBits)) & (subN - 1)
	return int(major-subBits+1)*subN + int(minor)
}

// BucketLow returns the smallest value mapping to bucket i (the
// inverse of BucketOf).
func BucketLow(i int) uint64 {
	if i < subN {
		return uint64(i)
	}
	major := uint(i/subN + subBits - 1)
	minor := uint64(i % subN)
	return 1<<major | minor<<(major-subBits)
}

// BucketHigh returns the largest value mapping to bucket i.
func BucketHigh(i int) uint64 {
	if i < subN {
		return uint64(i)
	}
	if i >= NumBuckets-1 {
		return math.MaxUint64
	}
	return BucketLow(i+1) - 1
}

// Record adds one duration in nanoseconds. Negative durations (a
// stamped clock read racing a coarser one) clamp to zero rather than
// wrapping into the top octave.
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	atomic.AddUint64(&h.counts[BucketOf(uint64(ns))], 1)
}

// RecordN adds count samples of the same duration with one atomic add —
// the per-run entry point: a verdict run whose packets share one
// timestamp settles its whole latency contribution in one operation.
func (h *Histogram) RecordN(ns int64, count uint64) {
	if count == 0 {
		return
	}
	if ns < 0 {
		ns = 0
	}
	atomic.AddUint64(&h.counts[BucketOf(uint64(ns))], count)
}

// Count returns the number of recorded samples (exact; see package
// contract).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += atomic.LoadUint64(&h.counts[i])
	}
	return n
}

// Empty reports whether no samples have been recorded.
func (h *Histogram) Empty() bool {
	for i := range h.counts {
		if atomic.LoadUint64(&h.counts[i]) != 0 {
			return false
		}
	}
	return true
}

// Min returns the lower edge of the lowest occupied bucket (0 when
// empty) — a lower bound on the smallest recorded value.
func (h *Histogram) Min() uint64 {
	for i := range h.counts {
		if atomic.LoadUint64(&h.counts[i]) != 0 {
			return BucketLow(i)
		}
	}
	return 0
}

// Max returns the upper edge of the highest occupied bucket (0 when
// empty) — an upper bound on the largest recorded value, within the
// 1/16 relative-error contract.
func (h *Histogram) Max() uint64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if atomic.LoadUint64(&h.counts[i]) != 0 {
			return BucketHigh(i)
		}
	}
	return 0
}

// Mean returns the average in nanoseconds, reconstructed from bucket
// midpoints (error bounded by half a bucket width, i.e. ≤1/32
// relative).
func (h *Histogram) Mean() float64 {
	var n uint64
	var sum float64
	for i := range h.counts {
		c := atomic.LoadUint64(&h.counts[i])
		if c == 0 {
			continue
		}
		n += c
		mid := float64(BucketLow(i)) + float64(BucketHigh(i)-BucketLow(i))/2
		sum += float64(c) * mid
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Percentile returns the value at or below which p percent (0–100) of
// samples fall, as the upper edge of the rank-holding bucket. Zero
// when empty.
func (h *Histogram) Percentile(p float64) uint64 {
	var n uint64
	for i := range h.counts {
		n += atomic.LoadUint64(&h.counts[i])
	}
	if n == 0 {
		return 0
	}
	target := uint64(math.Ceil(float64(n) * p / 100))
	if target == 0 {
		target = 1
	}
	if target > n {
		target = n
	}
	var cum uint64
	last := 0
	for i := range h.counts {
		c := atomic.LoadUint64(&h.counts[i])
		if c == 0 {
			continue
		}
		last = i
		cum += c
		if cum >= target {
			return BucketHigh(i)
		}
	}
	return BucketHigh(last)
}

// Merge adds other's samples into h. Lock-free on both sides: other
// may still be recording (each of its buckets is read once), and
// several mergers may fold into one readout histogram concurrently.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.counts {
		if c := atomic.LoadUint64(&other.counts[i]); c != 0 {
			atomic.AddUint64(&h.counts[i], c)
		}
	}
}

// Reset clears the histogram. Not atomic as a whole: quiesce recorders
// (end of a run) before resetting.
func (h *Histogram) Reset() {
	for i := range h.counts {
		atomic.StoreUint64(&h.counts[i], 0)
	}
}

// Summary renders n/p50/p90/p99/p99.9/max in microseconds.
func (h *Histogram) Summary() string {
	us := func(v uint64) float64 { return float64(v) / 1e3 }
	return fmt.Sprintf("n=%d p50=%.1fµs p90=%.1fµs p99=%.1fµs p99.9=%.1fµs max=%.1fµs",
		h.Count(), us(h.Percentile(50)), us(h.Percentile(90)), us(h.Percentile(99)),
		us(h.Percentile(99.9)), us(h.Max()))
}
