package hdr

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketInverse pins BucketLow/BucketHigh as the exact inverse of
// BucketOf: every bucket's edges map back to it, and neighbors do not.
func TestBucketInverse(t *testing.T) {
	for i := 0; i < NumBuckets; i++ {
		lo := BucketLow(i)
		if got := BucketOf(lo); got != i {
			t.Fatalf("BucketOf(BucketLow(%d)=%d) = %d", i, lo, got)
		}
		hi := BucketHigh(i)
		if got := BucketOf(hi); got != i {
			t.Fatalf("BucketOf(BucketHigh(%d)=%d) = %d", i, hi, got)
		}
		if i+1 < NumBuckets {
			if got := BucketOf(hi + 1); got != i+1 {
				t.Fatalf("BucketOf(BucketHigh(%d)+1) = %d, want %d", i, got, i+1)
			}
		}
	}
}

// TestExactSmallValues pins the unit buckets: values below 16 are
// recorded and reported exactly at every percentile.
func TestExactSmallValues(t *testing.T) {
	h := New()
	for v := int64(0); v < 16; v++ {
		h.Record(v)
	}
	if h.Count() != 16 {
		t.Fatalf("Count = %d, want 16", h.Count())
	}
	if h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("Min/Max = %d/%d, want 0/15", h.Min(), h.Max())
	}
	if p := h.Percentile(50); p != 7 {
		t.Fatalf("p50 = %d, want 7", p)
	}
	if p := h.Percentile(100); p != 15 {
		t.Fatalf("p100 = %d, want 15", p)
	}
}

// TestQuantileOracleBounds checks the package's quantile contract
// against a sorted-sample oracle over heavy-tailed random data: for
// the true rank sample v, Percentile returns r with v ≤ r ≤
// v·(1+1/16)+1.
func TestQuantileOracleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		h := New()
		n := 10_000
		samples := make([]uint64, n)
		for i := range samples {
			// Log-uniform over ~9 decades, the shape of a latency tail.
			v := uint64(1) << uint(rng.Intn(30))
			v += uint64(rng.Int63n(int64(v)))
			samples[i] = v
			h.Record(int64(v))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 99.9, 100} {
			rank := int(float64(n)*p/100) - 1
			if rank < 0 {
				rank = 0
			}
			want := samples[rank]
			got := h.Percentile(p)
			if got < want {
				t.Fatalf("trial %d p%.1f: got %d below oracle %d", trial, p, got, want)
			}
			if limit := want + want/16 + 1; got > limit {
				t.Fatalf("trial %d p%.1f: got %d beyond error bound %d (oracle %d)",
					trial, p, got, limit, want)
			}
		}
	}
}

// TestRecordNEquivalence pins RecordN(v, k) ≡ k×Record(v), the per-run
// recording contract.
func TestRecordNEquivalence(t *testing.T) {
	a, b := New(), New()
	vals := []int64{3, 900, 1500, 2_000_000, -5}
	for _, v := range vals {
		a.RecordN(v, 7)
		for i := 0; i < 7; i++ {
			b.Record(v)
		}
	}
	a.RecordN(99, 0) // no-op
	if a.Count() != b.Count() {
		t.Fatalf("counts diverge: %d vs %d", a.Count(), b.Count())
	}
	for _, p := range []float64{50, 99, 100} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Fatalf("p%g diverges: %d vs %d", p, a.Percentile(p), b.Percentile(p))
		}
	}
}

// TestMergeAndReset covers merge arithmetic (including nil and the
// exact-count contract) and reset.
func TestMergeAndReset(t *testing.T) {
	a, b := New(), New()
	for i := int64(1); i <= 100; i++ {
		a.Record(i * 1000)
		b.Record(i * 2000)
	}
	m := New()
	m.Merge(a)
	m.Merge(b)
	m.Merge(nil)
	if m.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", m.Count())
	}
	if m.Max() < b.Max() || m.Min() > a.Min() {
		t.Fatalf("merge lost extremes: min=%d max=%d", m.Min(), m.Max())
	}
	m.Reset()
	if !m.Empty() || m.Count() != 0 || m.Percentile(99) != 0 {
		t.Fatal("reset did not empty the histogram")
	}
}

// TestConcurrentRecordMerge is the -race guard for the lock-free
// readout contract: per-worker recorders run flat out while a reader
// repeatedly merges them into readout histograms and queries
// quantiles. Total count must be exact once recorders quiesce.
func TestConcurrentRecordMerge(t *testing.T) {
	const workers = 4
	const perWorker = 20_000
	recorders := make([]*Histogram, workers)
	for i := range recorders {
		recorders[i] = New()
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Reader: merge-and-query loop over live recorders.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			m := New()
			for _, r := range recorders {
				m.Merge(r)
			}
			_ = m.Percentile(99)
			_ = m.Summary()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var rec sync.WaitGroup
	for w := 0; w < workers; w++ {
		rec.Add(1)
		go func(w int) {
			defer rec.Done()
			for i := 0; i < perWorker; i++ {
				recorders[w].Record(int64(w*1000 + i))
			}
		}(w)
	}
	rec.Wait()
	close(stop)
	wg.Wait()
	final := New()
	for _, r := range recorders {
		final.Merge(r)
	}
	if got := final.Count(); got != workers*perWorker {
		t.Fatalf("count after quiesce = %d, want %d", got, workers*perWorker)
	}
}

// TestZeroAllocRecord guards the fast-path contract wired into ci.sh:
// Record, RecordN and Merge allocate nothing.
func TestZeroAllocRecord(t *testing.T) {
	h := New()
	if n := testing.AllocsPerRun(1000, func() {
		h.Record(1234)
	}); n != 0 {
		t.Fatalf("Record allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		h.RecordN(987654, 32)
	}); n != 0 {
		t.Fatalf("RecordN allocates %v/op, want 0", n)
	}
	dst := New()
	if n := testing.AllocsPerRun(100, func() {
		dst.Merge(h)
	}); n != 0 {
		t.Fatalf("Merge allocates %v/op, want 0", n)
	}
}

// TestSummaryRenders sanity-checks the human-readable surface.
func TestSummaryRenders(t *testing.T) {
	h := New()
	for i := 0; i < 1000; i++ {
		h.Record(int64(i) * 1000)
	}
	s := h.Summary()
	if len(s) == 0 || s[0] != 'n' {
		t.Fatalf("unexpected summary %q", s)
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i&0xffff) + 100)
	}
}
