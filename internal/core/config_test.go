package core

import (
	"strings"
	"testing"

	"pepc/internal/pkt"
	"pepc/internal/sim"
)

const sampleConfig = `{
  "slices": [
    {
      "id": 1,
      "users": 1000,
      "core_addr": "172.16.0.10",
      "rules": [
        {"id": 1, "precedence": 1, "action": "drop", "proto": "tcp",
         "dst_port_lo": 25, "dst_port_hi": 25},
        {"id": 2, "precedence": 10, "action": "rate-limit", "rate_mbps": 5,
         "dst_cidr": "10.9.0.0/16", "charging_key": 7}
      ]
    },
    {
      "id": 2,
      "users": 500,
      "two_level_table": true,
      "primary_size": 64,
      "sync_every": 16,
      "batch_size": 8,
      "encap_mode": "serialize",
      "iot_pool_size": 100
    }
  ]
}`

func TestLoadOperatorConfig(t *testing.T) {
	cfg, err := LoadOperatorConfig(strings.NewReader(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Slices) != 2 || cfg.Slices[0].ID != 1 || len(cfg.Slices[0].Rules) != 2 {
		t.Fatalf("parsed: %+v", cfg)
	}
}

func TestLoadOperatorConfigRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty slices":   `{"slices": []}`,
		"zero id":        `{"slices": [{"id": 0}]}`,
		"duplicate id":   `{"slices": [{"id": 1}, {"id": 1}]}`,
		"unknown field":  `{"slices": [{"id": 1, "bogus": true}]}`,
		"bad action":     `{"slices": [{"id": 1, "rules": [{"id": 1, "action": "explode"}]}]}`,
		"bad proto":      `{"slices": [{"id": 1, "rules": [{"id": 1, "proto": "carrier-pigeon"}]}]}`,
		"bad cidr":       `{"slices": [{"id": 1, "rules": [{"id": 1, "dst_cidr": "10.0.0.0/40"}]}]}`,
		"bad port range": `{"slices": [{"id": 1, "rules": [{"id": 1, "dst_port_lo": 10, "dst_port_hi": 5}]}]}`,
		"not json":       `slices: nope`,
	}
	for name, raw := range cases {
		if _, err := LoadOperatorConfig(strings.NewReader(raw)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestBuildNodeFromConfig(t *testing.T) {
	cfg, err := LoadOperatorConfig(strings.NewReader(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	n, err := BuildNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumSlices() != 2 {
		t.Fatalf("slices = %d", n.NumSlices())
	}
	if n.Slice(0).Config().CoreAddr != pkt.IPv4Addr(172, 16, 0, 10) {
		t.Fatalf("core addr = %s", pkt.FormatIPv4(n.Slice(0).Config().CoreAddr))
	}
	if n.Slice(0).PCEF().Len() != 2 {
		t.Fatalf("slice 0 rules = %d", n.Slice(0).PCEF().Len())
	}
	if n.Slice(1).Config().TableMode != TableTwoLevel {
		t.Fatal("slice 1 not two-level")
	}
	if n.Slice(1).Config().IoTTEIDCount != 100 {
		t.Fatalf("slice 1 IoT pool = %d", n.Slice(1).Config().IoTTEIDCount)
	}
	if n.Slice(1).Config().SyncEvery != 16 || n.Slice(1).Config().BatchSize != 8 {
		t.Fatalf("slice 1 sync_every=%d batch_size=%d",
			n.Slice(1).Config().SyncEvery, n.Slice(1).Config().BatchSize)
	}
	if n.Slice(0).Config().EncapMode != EncapTemplate || n.Slice(1).Config().EncapMode != EncapSerialize {
		t.Fatalf("encap modes: slice0=%d slice1=%d",
			n.Slice(0).Config().EncapMode, n.Slice(1).Config().EncapMode)
	}
	if bad, err := LoadOperatorConfig(strings.NewReader(`{"slices": [{"id": 1, "encap_mode": "psychic"}]}`)); err != nil {
		t.Fatal(err)
	} else if _, err := BuildNode(bad); err == nil || !strings.Contains(err.Error(), "encap_mode") {
		t.Fatalf("unknown encap_mode accepted: %v", err)
	}
	// The configured drop rule is live: SMTP is blocked on slice 0.
	res, err := n.AttachUser(0, AttachSpec{IMSI: 1, ENBAddr: 1, DownlinkTEID: 2})
	if err != nil {
		t.Fatal(err)
	}
	n.Slice(0).Data().SyncUpdates()
	pool := pkt.NewPool(2048, 128)
	blocked := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, n.Slice(0).Config().CoreAddr, 25)
	allowedPkt := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, n.Slice(0).Config().CoreAddr, 80)
	// The drop rule is TCP; our builder emits UDP — rebuild as TCP by
	// patching the inner protocol field.
	patchInnerProto(blocked, pkt.ProtoTCP)
	patchInnerProto(allowedPkt, pkt.ProtoTCP)
	n.Slice(0).Data().ProcessUplinkBatch([]*pkt.Buf{blocked, allowedPkt}, sim.Now())
	if n.Slice(0).Data().Forwarded.Load() != 1 || n.Slice(0).Data().Dropped.Load() != 1 {
		t.Fatalf("forwarded=%d dropped=%d", n.Slice(0).Data().Forwarded.Load(), n.Slice(0).Data().Dropped.Load())
	}
	drainEgress(n.Slice(0))
	// IoT pool on slice 2 hands out TEIDs.
	if _, ok := n.Slice(1).Control().AllocateIoT(); !ok {
		t.Fatal("configured IoT pool empty")
	}
}

// patchInnerProto rewrites the inner IP protocol of an encapsulated
// uplink packet (test helper; checksums are not verified by the pipeline).
func patchInnerProto(b *pkt.Buf, proto uint8) {
	off := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + 8 // outer + GTP-U
	b.Bytes()[off+9] = proto
}

func TestParseHelpers(t *testing.T) {
	if _, err := parseIPv4("999.0.0.1"); err == nil {
		t.Fatal("bad octet accepted")
	}
	if _, err := parseIPv4("junk"); err == nil {
		t.Fatal("junk accepted")
	}
	addr, bits, err := parseCIDR("10.1.0.0/16")
	if err != nil || addr != pkt.IPv4Addr(10, 1, 0, 0) || bits != 16 {
		t.Fatalf("cidr: %v %d %v", addr, bits, err)
	}
}
