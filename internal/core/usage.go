package core

import (
	"time"

	"pepc/internal/charging"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// Periodic usage reporting (§3.2: the control thread "communicat[es]
// usage statistics back to the PCRF (this involves reading the user's
// counter state)"). The reporter walks the slice's users in rounds,
// closing each user's charging interval and emitting a CDR; when a proxy
// is attached, busy intervals also produce Gx usage updates. Reading
// counters takes only the per-user read lock, so the data thread is
// never stalled — the isolation property the lock split buys.

// UsageReport couples a closed CDR with its delivery outcome.
type UsageReport struct {
	CDR charging.CDR
	// ReportedToPCRF is set when a Gx usage update was sent (requires a
	// proxy and a busy interval).
	ReportedToPCRF bool
}

// CollectAllUsage closes the current charging interval for every user of
// the slice and returns the busy CDRs (idle users produce no record).
// Control thread.
func (cp *ControlPlane) CollectAllUsage(now int64) []UsageReport {
	var out []UsageReport
	cp.s.cp.Range(func(ue *state.UE) bool {
		var imsi uint64
		ue.ReadCtrl(func(c *state.ControlState) { imsi = c.IMSI })
		cdr, busy := cp.collector.Collect(ue, imsi, now)
		if !busy {
			return true
		}
		rep := UsageReport{CDR: cdr}
		if cp.proxy != nil {
			if err := cp.proxy.ReportUsage(imsi, cdr.Delta.Total()); err == nil {
				rep.ReportedToPCRF = true
			}
		}
		out = append(out, rep)
		return true
	})
	return out
}

// RunUsageReporting runs periodic collection until stop closes, invoking
// sink with each round's busy CDRs. It is typically run alongside
// RunCtrl on the control core.
func (cp *ControlPlane) RunUsageReporting(stop <-chan struct{}, every time.Duration, sink func([]UsageReport)) {
	if every <= 0 {
		every = time.Second
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			reports := cp.CollectAllUsage(sim.Now())
			if sink != nil && len(reports) > 0 {
				sink(reports)
			}
		}
	}
}
