package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pepc/internal/gtp"
	"pepc/internal/pcef"
	"pepc/internal/pcrf"
	"pepc/internal/pkt"
	"pepc/internal/sctp"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// Node is one PEPC server (§3.3, Figure 3): a set of slices plus the
// Demux that steers packets and signaling to slices, the Scheduler that
// instantiates slices and manages migration, and the Proxy to backend
// servers.
type Node struct {
	slices []*Slice
	demux  *Demux
	sched  *Scheduler
	proxy  *Proxy
}

// NewNode instantiates a node with its slices. Use AttachBackends to wire
// HSS/PCRF after construction.
func NewNode(sliceCfgs ...SliceConfig) *Node {
	n := &Node{}
	for i, cfg := range sliceCfgs {
		if cfg.ID == 0 {
			cfg.ID = i
		}
		n.slices = append(n.slices, NewSlice(cfg))
	}
	n.demux = NewDemux(len(n.slices))
	n.sched = newScheduler(n)
	return n
}

// AttachProxy wires a proxy into every slice's control plane.
func (n *Node) AttachProxy(p *Proxy) {
	n.proxy = p
	for _, s := range n.slices {
		s.ctrl.SetProxy(p)
	}
}

// Slice returns slice i.
func (n *Node) Slice(i int) *Slice {
	if i < 0 || i >= len(n.slices) {
		return nil
	}
	return n.slices[i]
}

// NumSlices returns the slice count.
func (n *Node) NumSlices() int { return len(n.slices) }

// Demux returns the node's demux.
func (n *Node) Demux() *Demux { return n.demux }

// Scheduler returns the node's scheduler.
func (n *Node) Scheduler() *Scheduler { return n.sched }

// Proxy returns the node's proxy (nil in synthetic mode).
func (n *Node) Proxy() *Proxy { return n.proxy }

// AttachUser runs the attach procedure on slice sliceIdx and registers
// the resulting identifiers with the demux.
func (n *Node) AttachUser(sliceIdx int, spec AttachSpec) (AttachResult, error) {
	s := n.Slice(sliceIdx)
	if s == nil {
		return AttachResult{}, fmt.Errorf("core: no slice %d", sliceIdx)
	}
	res, err := s.ctrl.Attach(spec)
	if err != nil {
		return res, err
	}
	n.demux.Register(res.UplinkTEID, res.UEAddr, spec.IMSI, sliceIdx)
	return res, nil
}

// ServeS1AP binds an S1AP server to slice sliceIdx with demux
// registration wired, so users attached over the wire are steerable.
func (n *Node) ServeS1AP(sliceIdx int, assoc *sctp.Assoc) (*S1APServer, error) {
	s := n.Slice(sliceIdx)
	if s == nil {
		return nil, ErrSliceRange
	}
	srv := NewS1APServer(s.ctrl, assoc)
	srv.SetRegistrar(func(teid, ueIP uint32, imsi uint64, register bool) {
		if register {
			n.demux.Register(teid, ueIP, imsi, sliceIdx)
		} else {
			n.demux.Unregister(teid, ueIP, imsi)
		}
	})
	return srv, nil
}

// Demux steers incoming traffic to slices (§3.3: "PEPC's Demux function
// is responsible for steering incoming signaling and data traffic to its
// associated slice ... it uses the TEID (for uplink) or user device IP
// address (for downlink)"; signaling resolves by IMSI or GUTI).
//
// Lookups take a read lock; the node scheduler remaps users under the
// write lock during migration. Users marked migrating divert to a
// per-user buffer queue instead of a slice (§4.3).
type Demux struct {
	mu     sync.RWMutex
	byTEID map[uint32]int
	byIP   map[uint32]int
	byIMSI map[uint64]int
	// migrating holds per-user packet buffers keyed by demux key while a
	// migration is in flight.
	migrating map[uint32]*migBuffer

	numSlices int

	Steered  atomic.Uint64
	Unknown  atomic.Uint64
	Buffered atomic.Uint64

	// steerTestHook, when non-nil, runs between steer's read-locked
	// migration lookup and its write-locked double check. Tests use it to
	// complete a migration inside that window deterministically; nil in
	// production.
	steerTestHook func()
}

type migBuffer struct {
	pkts []*pkt.Buf
}

// NewDemux returns an empty demux for a node with numSlices slices.
func NewDemux(numSlices int) *Demux {
	return &Demux{
		byTEID:    make(map[uint32]int),
		byIP:      make(map[uint32]int),
		byIMSI:    make(map[uint64]int),
		migrating: make(map[uint32]*migBuffer),
		numSlices: numSlices,
	}
}

// Register maps a user's data and signaling keys to a slice.
func (d *Demux) Register(teid, ueIP uint32, imsi uint64, slice int) {
	d.mu.Lock()
	if teid != 0 {
		d.byTEID[teid] = slice
	}
	if ueIP != 0 {
		d.byIP[ueIP] = slice
	}
	if imsi != 0 {
		d.byIMSI[imsi] = slice
	}
	d.mu.Unlock()
}

// Unregister removes a user's mappings.
func (d *Demux) Unregister(teid, ueIP uint32, imsi uint64) {
	d.mu.Lock()
	delete(d.byTEID, teid)
	delete(d.byIP, ueIP)
	delete(d.byIMSI, imsi)
	d.mu.Unlock()
}

// LookupSlice resolves the slice for an uplink TEID (the paper's
// LookUpSlice function).
func (d *Demux) LookupSlice(teid uint32) (int, bool) {
	d.mu.RLock()
	s, ok := d.byTEID[teid]
	d.mu.RUnlock()
	return s, ok
}

// LookupSliceByIP resolves the slice for a downlink UE address.
func (d *Demux) LookupSliceByIP(ip uint32) (int, bool) {
	d.mu.RLock()
	s, ok := d.byIP[ip]
	d.mu.RUnlock()
	return s, ok
}

// LookupSliceByIMSI resolves the slice for signaling traffic.
func (d *Demux) LookupSliceByIMSI(imsi uint64) (int, bool) {
	d.mu.RLock()
	s, ok := d.byIMSI[imsi]
	d.mu.RUnlock()
	return s, ok
}

// SteerUplink routes one uplink (GTP-U) packet: into the owning slice's
// uplink ring, into a migration buffer, or dropped when unknown. The
// caller relinquishes the buffer. The outer envelope is parsed exactly
// once here and the validated result recorded in the packet metadata, so
// the slice's decap is a TrimFront rather than a second header walk.
func (n *Node) SteerUplink(b *pkt.Buf) {
	teid, hdrLen, err := gtp.ParseOuter(b.Bytes())
	if err != nil {
		n.demux.Unknown.Add(1)
		b.Free()
		return
	}
	b.Meta.TEID = teid
	b.Meta.OuterLen = uint16(hdrLen)
	b.Meta.OuterParsed = true
	n.steer(teid, b, true)
}

// SteerDownlink routes one downlink (plain IP) packet by destination UE
// address. The inner flow parsed for steering is recorded in the packet
// metadata so the slice's parse stage reuses it.
func (n *Node) SteerDownlink(b *pkt.Buf) {
	flow, _, ok := parseInner(b)
	if !ok {
		n.demux.Unknown.Add(1)
		b.Free()
		return
	}
	b.Meta.Flow = flow
	b.Meta.FlowParsed = true
	n.steer(flow.Dst, b, false)
}

func (n *Node) steer(key uint32, b *pkt.Buf, uplink bool) {
	d := n.demux
	d.mu.RLock()
	mb := d.migrating[key]
	var sliceIdx int
	var ok bool
	if uplink {
		sliceIdx, ok = d.byTEID[key]
	} else {
		sliceIdx, ok = d.byIP[key]
	}
	d.mu.RUnlock()
	if mb != nil {
		if d.steerTestHook != nil {
			d.steerTestHook()
		}
		// User is mid-migration: buffer until the transfer completes
		// (§4.3: "the PEPC scheduler buffers the packets which are
		// undergoing migration ... per-user migration queues, which are
		// drained once a user state is migrated").
		d.mu.Lock()
		if mb2 := d.migrating[key]; mb2 != nil {
			mb2.pkts = append(mb2.pkts, b)
			d.Buffered.Add(1)
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()
		// Migration finished between the two lock acquisitions; fall
		// through to normal steering with a fresh lookup.
		d.mu.RLock()
		if uplink {
			sliceIdx, ok = d.byTEID[key]
		} else {
			sliceIdx, ok = d.byIP[key]
		}
		d.mu.RUnlock()
	}
	if !ok {
		d.Unknown.Add(1)
		b.Free()
		return
	}
	s := n.slices[sliceIdx]
	var accepted bool
	if uplink {
		accepted = s.Uplink.Enqueue(b)
	} else {
		accepted = s.Downlink.Enqueue(b)
	}
	if !accepted {
		b.Free() // ring full: tail drop
		return
	}
	d.Steered.Add(1)
}

// Scheduler manages slices and migrations (§3.3: "(i) managing slices ...
// and (ii) managing migration (e.g., receiving state migration requests
// from an external controller, initiating state transfers from slices)").
type Scheduler struct {
	n *Node

	Migrations       atomic.Uint64
	MigrationsFailed atomic.Uint64
}

func newScheduler(n *Node) *Scheduler { return &Scheduler{n: n} }

// Migration errors.
var (
	ErrSameSlice     = errors.New("core: source and target slice are the same")
	ErrSliceRange    = errors.New("core: slice index out of range")
	ErrNotRegistered = errors.New("core: user not registered with demux")
)

// StateTransferMessage is the serialized user state in flight between
// slices (Listing 1's migration channel payload).
type StateTransferMessage struct {
	IMSI uint64
	Data [state.SnapshotSize]byte
}

// MigrateUser moves one user's state from slice src to slice dst within
// the node (§4.3 implements intra-node migration; inter-node adds a
// transport hop with identical logic). Packets arriving mid-transfer are
// buffered per user and drained to the new slice afterwards, so no
// packets are lost or processed against stale state.
func (sc *Scheduler) MigrateUser(imsi uint64, src, dst int) error {
	n := sc.n
	if src == dst {
		return ErrSameSlice
	}
	if n.Slice(src) == nil || n.Slice(dst) == nil {
		return ErrSliceRange
	}
	d := n.demux

	// Resolve the user's demux keys from the source slice.
	ue := n.slices[src].ctrl.Lookup(imsi)
	if ue == nil {
		sc.MigrationsFailed.Add(1)
		return ErrUserUnknown
	}
	var teid, ueIP uint32
	ue.ReadCtrl(func(c *state.ControlState) {
		teid = c.UplinkTEID
		ueIP = c.UEAddr
	})

	// 1. Start buffering: packets for this user divert to per-user
	// queues.
	d.mu.Lock()
	if _, exists := d.byTEID[teid]; !exists {
		d.mu.Unlock()
		sc.MigrationsFailed.Add(1)
		return ErrNotRegistered
	}
	d.migrating[teid] = &migBuffer{}
	d.migrating[ueIP] = &migBuffer{}
	d.mu.Unlock()

	// 2. Extract from the source slice (snapshot + delete). The request
	// executes on the source control thread when its loop is running, so
	// the single-writer rule holds.
	var cs state.ControlState
	var cnt state.CounterState
	var lv state.QoSLevels
	var err error
	n.slices[src].ctrl.exec(func() {
		cs, cnt, lv, err = n.slices[src].ctrl.extract(imsi)
	})
	if err != nil {
		sc.abortMigration(teid, ueIP)
		sc.MigrationsFailed.Add(1)
		return err
	}

	// Serialize through the state-transfer encoding: the same bytes an
	// inter-node transfer would ship.
	var msg StateTransferMessage
	msg.IMSI = imsi
	if _, err := state.MarshalSnapshotLevels(msg.Data[:], &cs, &cnt, &lv); err != nil {
		sc.abortMigration(teid, ueIP)
		sc.MigrationsFailed.Add(1)
		return err
	}
	var cs2 state.ControlState
	var cnt2 state.CounterState
	var lv2 state.QoSLevels
	if err := state.UnmarshalSnapshotLevels(msg.Data[:], &cs2, &cnt2, &lv2); err != nil {
		sc.abortMigration(teid, ueIP)
		sc.MigrationsFailed.Add(1)
		return err
	}

	// 3. Install into the target slice (on its control thread).
	var instErr error
	n.slices[dst].ctrl.exec(func() {
		instErr = n.slices[dst].ctrl.installLevels(cs2, cnt2, lv2, sim.Now())
	})
	if instErr != nil {
		sc.abortMigration(teid, ueIP)
		sc.MigrationsFailed.Add(1)
		return err
	}

	// 4. Remap the demux and drain the buffered packets to the new
	// slice.
	d.mu.Lock()
	d.byTEID[teid] = dst
	d.byIP[ueIP] = dst
	d.byIMSI[imsi] = dst
	bufUp := d.migrating[teid]
	bufDown := d.migrating[ueIP]
	delete(d.migrating, teid)
	delete(d.migrating, ueIP)
	d.mu.Unlock()

	target := n.slices[dst]
	if bufUp != nil {
		for _, b := range bufUp.pkts {
			if !target.Uplink.Enqueue(b) {
				b.Free()
			}
		}
	}
	if bufDown != nil {
		for _, b := range bufDown.pkts {
			if !target.Downlink.Enqueue(b) {
				b.Free()
			}
		}
	}
	sc.Migrations.Add(1)
	return nil
}

// abortMigration cancels buffering and replays buffered packets to the
// (unchanged) owner.
func (sc *Scheduler) abortMigration(teid, ueIP uint32) {
	d := sc.n.demux
	d.mu.Lock()
	bufUp := d.migrating[teid]
	bufDown := d.migrating[ueIP]
	delete(d.migrating, teid)
	delete(d.migrating, ueIP)
	up, upOK := d.byTEID[teid]
	down, downOK := d.byIP[ueIP]
	d.mu.Unlock()
	if bufUp != nil {
		for _, b := range bufUp.pkts {
			if upOK && sc.n.slices[up].Uplink.Enqueue(b) {
				continue
			}
			b.Free()
		}
	}
	if bufDown != nil {
		for _, b := range bufDown.pkts {
			if downOK && sc.n.slices[down].Downlink.Enqueue(b) {
				continue
			}
			b.Free()
		}
	}
}

// EnablePolicyPush subscribes the node to the PCRF's unsolicited rule
// installs (the Gx RAR path, §3.2: "accepting updates to the user's
// charging/accounting rules from the PCRF (this involves writing to the
// user's control state)"). Pushed rules land on the owning slice's
// control plane: installed into its PCEF and recorded in the user's
// control state.
func (n *Node) EnablePolicyPush(p *pcrf.PCRF) {
	p.OnPush(func(imsi uint64, rules []pcef.Rule) {
		sliceIdx, ok := n.demux.LookupSliceByIMSI(imsi)
		if !ok {
			return // user not on this node
		}
		s := n.slices[sliceIdx]
		s.ctrl.exec(func() {
			ue := s.ctrl.Lookup(imsi)
			if ue == nil {
				return
			}
			s.ctrl.installRules(ue, rules)
		})
	})
}

// ExportUser extracts a user from this node for transfer to another node
// (the paper's §3.5 "moving processing closer to the user" across
// servers; §4.3 implements the intra-node case, this is the inter-node
// extension). The user stops being served here immediately; the caller
// ships the returned message to the target node (the cluster balancer
// redirects the user's traffic once the target registers it).
func (sc *Scheduler) ExportUser(imsi uint64, src int) (StateTransferMessage, error) {
	var msg StateTransferMessage
	n := sc.n
	if n.Slice(src) == nil {
		return msg, ErrSliceRange
	}
	ue := n.slices[src].ctrl.Lookup(imsi)
	if ue == nil {
		sc.MigrationsFailed.Add(1)
		return msg, ErrUserUnknown
	}
	var teid, ueIP uint32
	ue.ReadCtrl(func(c *state.ControlState) {
		teid = c.UplinkTEID
		ueIP = c.UEAddr
	})
	var cs state.ControlState
	var cnt state.CounterState
	var lv state.QoSLevels
	var err error
	n.slices[src].ctrl.exec(func() {
		cs, cnt, lv, err = n.slices[src].ctrl.extract(imsi)
	})
	if err != nil {
		sc.MigrationsFailed.Add(1)
		return msg, err
	}
	n.demux.Unregister(teid, ueIP, imsi)
	msg.IMSI = imsi
	if _, err := state.MarshalSnapshotLevels(msg.Data[:], &cs, &cnt, &lv); err != nil {
		sc.MigrationsFailed.Add(1)
		return msg, err
	}
	sc.Migrations.Add(1)
	return msg, nil
}

// ImportUser installs a user exported from another node into slice dst
// and registers it with this node's demux.
func (sc *Scheduler) ImportUser(msg StateTransferMessage, dst int) error {
	n := sc.n
	if n.Slice(dst) == nil {
		return ErrSliceRange
	}
	var cs state.ControlState
	var cnt state.CounterState
	var lv state.QoSLevels
	if err := state.UnmarshalSnapshotLevels(msg.Data[:], &cs, &cnt, &lv); err != nil {
		return err
	}
	var instErr error
	n.slices[dst].ctrl.exec(func() {
		instErr = n.slices[dst].ctrl.installLevels(cs, cnt, lv, sim.Now())
	})
	if instErr != nil {
		return instErr
	}
	n.demux.Register(cs.UplinkTEID, cs.UEAddr, cs.IMSI, dst)
	return nil
}

// DetachUser runs the detach procedure on slice sliceIdx and removes the
// user's identifiers from the demux — the inverse of AttachUser for
// callers (the cluster layer) that route signaling per user rather than
// through an S1AP server's registrar.
func (n *Node) DetachUser(sliceIdx int, imsi uint64) error {
	s := n.Slice(sliceIdx)
	if s == nil {
		return ErrSliceRange
	}
	ue := s.ctrl.Lookup(imsi)
	if ue == nil {
		return ErrUserUnknown
	}
	var teid, ueIP uint32
	ue.ReadCtrl(func(c *state.ControlState) {
		teid = c.UplinkTEID
		ueIP = c.UEAddr
	})
	var err error
	s.ctrl.exec(func() { err = s.ctrl.Detach(imsi) })
	if err != nil {
		return err
	}
	n.demux.Unregister(teid, ueIP, imsi)
	return nil
}
