package core

import (
	"errors"
	"sync/atomic"
	"time"

	"pepc/internal/diameter"
	"pepc/internal/fault"
	"pepc/internal/hss"
	"pepc/internal/pcef"
	"pepc/internal/pcrf"
)

// Proxy is the PEPC node's backend gateway (§3.3): it speaks S6a toward
// the HSS on behalf of the slices' control threads (the role the MME
// played) and Gx toward the PCRF (the role the P-GW played). One proxy
// serves every slice on the node.
//
// Every round trip can be bounded by a CallPolicy: a per-request
// deadline, bounded retries with exponential backoff plus deterministic
// jitter, and a per-backend circuit breaker that short-circuits calls
// while the backend is dark so control threads shed load in microseconds
// instead of stacking deadlines. Without a policy (the default) the
// legacy unbounded path is used, byte-for-byte and allocation-for-
// allocation identical to before.
type Proxy struct {
	hssHandler  diameter.Handler
	pcrfHandler diameter.Handler

	hopByHop atomic.Uint32
	endToEnd atomic.Uint32

	// policy is the active call policy; nil selects the legacy
	// no-deadline path. Swappable at runtime (tests flip it mid-storm).
	policy atomic.Pointer[CallPolicy]

	// s6aFaults/gxFaults optionally wrap the respective backend with a
	// fault injector (drop/delay/error-answer per request).
	s6aFaults atomic.Pointer[fault.Injector]
	gxFaults  atomic.Pointer[fault.Injector]

	// Per-backend breaker state.
	s6aBreaker breaker
	gxBreaker  breaker

	// jitterSeq drives the deterministic backoff jitter.
	jitterSeq atomic.Uint64

	// Requests counts backend exchanges, for control-plane accounting.
	Requests atomic.Uint64
	// Retries counts re-sent requests after a timeout or transport error.
	Retries atomic.Uint64
	// Timeouts counts exchanges abandoned at the deadline.
	Timeouts atomic.Uint64
	// BreakerOpens counts breaker transitions to open.
	BreakerOpens atomic.Uint64
	// ShortCircuits counts calls rejected instantly by an open breaker.
	ShortCircuits atomic.Uint64
}

// Proxy errors.
var (
	ErrNoBackend   = errors.New("core: proxy backend not configured")
	ErrBackendFail = errors.New("core: backend returned failure")
	// ErrBackendDown is returned without a wire exchange while a
	// backend's circuit breaker is open.
	ErrBackendDown = errors.New("core: backend circuit open")
)

// CallPolicy bounds a Diameter round trip. The zero Deadline disables
// the deadline (but retries/breaker still apply); a nil policy on the
// proxy disables everything.
type CallPolicy struct {
	// Deadline bounds one request-answer exchange.
	Deadline time.Duration
	// MaxRetries is the number of re-sends after the first attempt.
	MaxRetries int
	// Backoff is the base delay before the first retry; it doubles per
	// attempt up to BackoffMax, with deterministic jitter of up to half
	// the step added.
	Backoff    time.Duration
	BackoffMax time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// failed calls (each call = all its retries). 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker short-circuits calls
	// before admitting a half-open probe.
	BreakerCooldown time.Duration
}

// DefaultCallPolicy returns the tuned production policy: tight deadline
// (in-process backends answer in microseconds; a dark backend should
// cost milliseconds, not seconds), two retries, breaker after four
// consecutive failures.
func DefaultCallPolicy() CallPolicy {
	return CallPolicy{
		Deadline:         20 * time.Millisecond,
		MaxRetries:       2,
		Backoff:          500 * time.Microsecond,
		BackoffMax:       8 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  25 * time.Millisecond,
	}
}

// breaker is a consecutive-failure circuit breaker. Failures below the
// threshold pass through; at the threshold the circuit opens for the
// cooldown, during which calls short-circuit. The first call after the
// cooldown is the half-open probe: success closes the circuit, failure
// reopens it immediately.
type breaker struct {
	fails     atomic.Uint32
	openUntil atomic.Int64 // unix nanos; 0 = closed
}

func (b *breaker) allow(pol *CallPolicy) bool {
	if pol.BreakerThreshold <= 0 {
		return true
	}
	until := b.openUntil.Load()
	return until == 0 || time.Now().UnixNano() >= until
}

// open reports whether the breaker currently short-circuits.
func (b *breaker) open() bool {
	until := b.openUntil.Load()
	return until != 0 && time.Now().UnixNano() < until
}

func (b *breaker) success() {
	b.fails.Store(0)
	b.openUntil.Store(0)
}

// fail records a failed call; it reports whether the circuit (re)opened.
func (b *breaker) fail(pol *CallPolicy) bool {
	if pol.BreakerThreshold <= 0 {
		return false
	}
	now := time.Now().UnixNano()
	if until := b.openUntil.Load(); until != 0 && now >= until {
		// Half-open probe failed: reopen for another cooldown.
		b.openUntil.Store(now + int64(pol.BreakerCooldown))
		return true
	}
	if int(b.fails.Add(1)) >= pol.BreakerThreshold {
		b.fails.Store(0)
		b.openUntil.Store(now + int64(pol.BreakerCooldown))
		return true
	}
	return false
}

// NewProxy wires the proxy to its backends. Handlers are typically
// *hss.HSS and *pcrf.PCRF in process; over a socket they would be
// diameter transports — the message path is identical either way because
// diameter.Call round-trips the wire encoding.
func NewProxy(hssHandler, pcrfHandler diameter.Handler) *Proxy {
	return &Proxy{hssHandler: hssHandler, pcrfHandler: pcrfHandler}
}

// SetPolicy installs (or, with a zero policy, keeps) the call policy.
// Safe to call concurrently with in-flight requests; they finish under
// the policy they started with.
func (p *Proxy) SetPolicy(pol CallPolicy) {
	p.policy.Store(&pol)
}

// ClearPolicy reverts to the legacy unbounded path.
func (p *Proxy) ClearPolicy() { p.policy.Store(nil) }

// Policy returns the active policy (zero value when none).
func (p *Proxy) Policy() CallPolicy {
	if pol := p.policy.Load(); pol != nil {
		return *pol
	}
	return CallPolicy{}
}

// SetS6aFaults installs a fault injector on the HSS path (nil removes).
func (p *Proxy) SetS6aFaults(inj *fault.Injector) { p.s6aFaults.Store(inj) }

// SetGxFaults installs a fault injector on the PCRF path (nil removes).
func (p *Proxy) SetGxFaults(inj *fault.Injector) { p.gxFaults.Store(inj) }

// GxAvailable reports whether the Gx breaker admits calls — the control
// thread's gate for repairing degraded attaches after a PCRF outage.
func (p *Proxy) GxAvailable() bool { return !p.gxBreaker.open() }

// S6aAvailable reports whether the S6a breaker admits calls.
func (p *Proxy) S6aAvailable() bool { return !p.s6aBreaker.open() }

// ProxyStats is a snapshot of the proxy's robustness counters.
type ProxyStats struct {
	Requests      uint64
	Retries       uint64
	Timeouts      uint64
	BreakerOpens  uint64
	ShortCircuits uint64
}

// Stats snapshots the proxy counters (any thread).
func (p *Proxy) Stats() ProxyStats {
	return ProxyStats{
		Requests:      p.Requests.Load(),
		Retries:       p.Retries.Load(),
		Timeouts:      p.Timeouts.Load(),
		BreakerOpens:  p.BreakerOpens.Load(),
		ShortCircuits: p.ShortCircuits.Load(),
	}
}

func (p *Proxy) ids() (uint32, uint32) {
	return p.hopByHop.Add(1), p.endToEnd.Add(1)
}

// faultedHandler interposes an injector between the proxy and a backend:
// a drop holds the request past the caller's deadline (or fails outright
// with no policy), a delay answers late, an error answers
// DIAMETER_UNABLE_TO_COMPLY without touching the backend.
type faultedHandler struct {
	h    diameter.Handler
	inj  *fault.Injector
	hold time.Duration // how long a dropped request blocks; 0 = fail fast
}

func (f *faultedHandler) Handle(req *diameter.Message) (*diameter.Message, error) {
	if f.inj.Fire(fault.DiameterDrop) {
		if f.hold > 0 {
			time.Sleep(f.hold)
		}
		return nil, fault.ErrInjected
	}
	if d := f.inj.FireDelay(fault.DiameterDelay); d > 0 {
		time.Sleep(d)
	}
	if f.inj.Fire(fault.DiameterError) {
		return req.Answer(diameter.ResultUnableToComply), nil
	}
	return f.h.Handle(req)
}

// backoff returns the delay before retry attempt (0-based): exponential
// from the base, capped, plus deterministic jitter of up to half the
// step derived from the proxy-wide jitter sequence — decorrelating
// retry storms without a global RNG.
func (p *Proxy) backoff(pol *CallPolicy, attempt int) time.Duration {
	d := pol.Backoff
	if d <= 0 {
		return 0
	}
	for i := 0; i < attempt && d < pol.BackoffMax; i++ {
		d *= 2
	}
	if pol.BackoffMax > 0 && d > pol.BackoffMax {
		d = pol.BackoffMax
	}
	j := fault.Hash64(p.jitterSeq.Add(1))
	return d + time.Duration(j%uint64(d/2+1))
}

// roundTrip performs one policy-governed Diameter exchange against a
// backend: breaker admission, deadline-bounded attempts with backoff
// between them, and breaker accounting. A non-nil error never carries an
// answer. With no policy installed it degenerates to diameter.Call.
func (p *Proxy) roundTrip(h diameter.Handler, br *breaker, inj *fault.Injector, req *diameter.Message) (*diameter.Message, error) {
	pol := p.policy.Load()
	if inj != nil {
		var hold time.Duration
		if pol != nil && pol.Deadline > 0 {
			hold = 2 * pol.Deadline // ensure a drop trips the deadline
		}
		h = &faultedHandler{h: h, inj: inj, hold: hold}
	}
	if pol == nil {
		return diameter.Call(h, req)
	}
	if !br.allow(pol) {
		p.ShortCircuits.Add(1)
		return nil, ErrBackendDown
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		ans, err := diameter.CallTimeout(h, req, pol.Deadline)
		if err == nil {
			// Any decoded answer — including an explicit rejection the
			// caller will map to ErrBackendFail — proves the backend
			// alive: close the breaker.
			br.success()
			return ans, nil
		}
		if errors.Is(err, diameter.ErrDeadline) {
			p.Timeouts.Add(1)
		}
		lastErr = err
		if attempt >= pol.MaxRetries {
			break
		}
		p.Retries.Add(1)
		if d := p.backoff(pol, attempt); d > 0 {
			time.Sleep(d)
		}
	}
	if br.fail(pol) {
		p.BreakerOpens.Add(1)
	}
	return nil, lastErr
}

// callS6a runs one exchange against the HSS under the active policy.
func (p *Proxy) callS6a(req *diameter.Message) (*diameter.Message, error) {
	return p.roundTrip(p.hssHandler, &p.s6aBreaker, p.s6aFaults.Load(), req)
}

// callGx runs one exchange against the PCRF under the active policy.
func (p *Proxy) callGx(req *diameter.Message) (*diameter.Message, error) {
	return p.roundTrip(p.pcrfHandler, &p.gxBreaker, p.gxFaults.Load(), req)
}

// Authenticate runs the S6a Authentication-Information exchange and
// returns the vector for the attach challenge.
func (p *Proxy) Authenticate(imsi uint64) (hss.Vector, error) {
	if p.hssHandler == nil {
		return hss.Vector{}, ErrNoBackend
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	req := diameter.NewRequest(diameter.CmdAuthenticationInformation, diameter.AppS6a, hbh, e2e,
		diameter.U64AVP(diameter.AVPUserName, imsi))
	ans, err := p.callS6a(req)
	if err != nil {
		return hss.Vector{}, err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return hss.Vector{}, ErrBackendFail
	}
	return hss.ParseVectorAVP(ans)
}

// AuthenticateBatch coalesces the Authentication-Information exchange
// for several users into a single S6a round-trip: one AIR carrying one
// User-Name AVP per IMSI, one AIA carrying the vectors in order (filled
// into out, which must be len(imsis)). This is the control-plane batch
// drain's amortization of backend latency — one proxy request per
// coalesced procedure run instead of one per procedure.
func (p *Proxy) AuthenticateBatch(imsis []uint64, out []hss.Vector) error {
	if p.hssHandler == nil {
		return ErrNoBackend
	}
	if len(imsis) != len(out) {
		return errors.New("core: AuthenticateBatch length mismatch")
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	avps := make([]diameter.AVP, len(imsis))
	for i, imsi := range imsis {
		avps[i] = diameter.U64AVP(diameter.AVPUserName, imsi)
	}
	req := diameter.NewRequest(diameter.CmdAuthenticationInformation, diameter.AppS6a, hbh, e2e, avps...)
	ans, err := p.callS6a(req)
	if err != nil {
		return err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return ErrBackendFail
	}
	return hss.ParseVectorAVPsInto(ans, out)
}

// UpdateLocation runs the S6a Update-Location exchange and returns the
// subscribed AMBR profile.
func (p *Proxy) UpdateLocation(imsi uint64) (ambrUp, ambrDown uint64, err error) {
	if p.hssHandler == nil {
		return 0, 0, ErrNoBackend
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	req := diameter.NewRequest(diameter.CmdUpdateLocation, diameter.AppS6a, hbh, e2e,
		diameter.U64AVP(diameter.AVPUserName, imsi))
	ans, err := p.callS6a(req)
	if err != nil {
		return 0, 0, err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return 0, 0, ErrBackendFail
	}
	sd, ok := ans.Find(diameter.AVPSubscriptionData)
	if !ok {
		return 0, 0, nil
	}
	subs, err := sd.SubAVPs()
	if err != nil {
		return 0, 0, err
	}
	for _, a := range subs {
		switch a.Code {
		case diameter.AVPAMBRUplink:
			if v, err := a.Uint64(); err == nil {
				ambrUp = v
			}
		case diameter.AVPAMBRDownlink:
			if v, err := a.Uint64(); err == nil {
				ambrDown = v
			}
		}
	}
	return ambrUp, ambrDown, nil
}

// EstablishGxSession opens the Gx session for a user and returns the PCC
// rules the PCRF wants installed.
func (p *Proxy) EstablishGxSession(imsi uint64) ([]pcef.Rule, error) {
	return p.EstablishGxSessionInto(imsi, nil)
}

// EstablishGxSessionInto is EstablishGxSession appending the installed
// rules into a caller-provided scratch slice (typically the control
// plane's preallocated rule buffer), avoiding a per-attach allocation.
func (p *Proxy) EstablishGxSessionInto(imsi uint64, buf []pcef.Rule) ([]pcef.Rule, error) {
	if p.pcrfHandler == nil {
		return nil, nil // no PCRF: attach proceeds with default policy
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	req := diameter.NewRequest(diameter.CmdCreditControl, diameter.AppGx, hbh, e2e,
		diameter.U64AVP(diameter.AVPUserName, imsi),
		diameter.U32AVP(diameter.AVPCCRequestType, pcrf.CCRInitial))
	ans, err := p.callGx(req)
	if err != nil {
		return nil, err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return nil, ErrBackendFail
	}
	return pcrf.ParseRuleInstallsAppend(ans, buf)
}

// ReportUsage sends a Gx usage update.
func (p *Proxy) ReportUsage(imsi uint64, totalBytes uint64) error {
	if p.pcrfHandler == nil {
		return nil
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	req := diameter.NewRequest(diameter.CmdCreditControl, diameter.AppGx, hbh, e2e,
		diameter.U64AVP(diameter.AVPUserName, imsi),
		diameter.U32AVP(diameter.AVPCCRequestType, pcrf.CCRUpdate),
		diameter.U64AVP(diameter.AVPUsedServiceUnit, totalBytes))
	ans, err := p.callGx(req)
	if err != nil {
		return err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return ErrBackendFail
	}
	return nil
}

// TerminateGxSession closes a user's Gx session at detach.
func (p *Proxy) TerminateGxSession(imsi uint64) error {
	if p.pcrfHandler == nil {
		return nil
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	req := diameter.NewRequest(diameter.CmdCreditControl, diameter.AppGx, hbh, e2e,
		diameter.U64AVP(diameter.AVPUserName, imsi),
		diameter.U32AVP(diameter.AVPCCRequestType, pcrf.CCRTermination))
	ans, err := p.callGx(req)
	if err != nil {
		return err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return ErrBackendFail
	}
	return nil
}

// TerminateGxSessionBatch closes the Gx sessions of a detach batch in
// one CCR-T round-trip carrying one User-Name AVP per user.
func (p *Proxy) TerminateGxSessionBatch(imsis []uint64) error {
	if p.pcrfHandler == nil || len(imsis) == 0 {
		return nil
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	avps := make([]diameter.AVP, 0, len(imsis)+1)
	for _, imsi := range imsis {
		avps = append(avps, diameter.U64AVP(diameter.AVPUserName, imsi))
	}
	avps = append(avps, diameter.U32AVP(diameter.AVPCCRequestType, pcrf.CCRTermination))
	req := diameter.NewRequest(diameter.CmdCreditControl, diameter.AppGx, hbh, e2e, avps...)
	ans, err := p.callGx(req)
	if err != nil {
		return err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return ErrBackendFail
	}
	return nil
}
