package core

import (
	"errors"
	"sync/atomic"

	"pepc/internal/diameter"
	"pepc/internal/hss"
	"pepc/internal/pcef"
	"pepc/internal/pcrf"
)

// Proxy is the PEPC node's backend gateway (§3.3): it speaks S6a toward
// the HSS on behalf of the slices' control threads (the role the MME
// played) and Gx toward the PCRF (the role the P-GW played). One proxy
// serves every slice on the node.
type Proxy struct {
	hssHandler  diameter.Handler
	pcrfHandler diameter.Handler

	hopByHop atomic.Uint32
	endToEnd atomic.Uint32

	// Requests counts backend exchanges, for control-plane accounting.
	Requests atomic.Uint64
}

// Proxy errors.
var (
	ErrNoBackend   = errors.New("core: proxy backend not configured")
	ErrBackendFail = errors.New("core: backend returned failure")
)

// NewProxy wires the proxy to its backends. Handlers are typically
// *hss.HSS and *pcrf.PCRF in process; over a socket they would be
// diameter transports — the message path is identical either way because
// diameter.Call round-trips the wire encoding.
func NewProxy(hssHandler, pcrfHandler diameter.Handler) *Proxy {
	return &Proxy{hssHandler: hssHandler, pcrfHandler: pcrfHandler}
}

func (p *Proxy) ids() (uint32, uint32) {
	return p.hopByHop.Add(1), p.endToEnd.Add(1)
}

// Authenticate runs the S6a Authentication-Information exchange and
// returns the vector for the attach challenge.
func (p *Proxy) Authenticate(imsi uint64) (hss.Vector, error) {
	if p.hssHandler == nil {
		return hss.Vector{}, ErrNoBackend
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	req := diameter.NewRequest(diameter.CmdAuthenticationInformation, diameter.AppS6a, hbh, e2e,
		diameter.U64AVP(diameter.AVPUserName, imsi))
	ans, err := diameter.Call(p.hssHandler, req)
	if err != nil {
		return hss.Vector{}, err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return hss.Vector{}, ErrBackendFail
	}
	return hss.ParseVectorAVP(ans)
}

// AuthenticateBatch coalesces the Authentication-Information exchange
// for several users into a single S6a round-trip: one AIR carrying one
// User-Name AVP per IMSI, one AIA carrying the vectors in order (filled
// into out, which must be len(imsis)). This is the control-plane batch
// drain's amortization of backend latency — one proxy request per
// coalesced procedure run instead of one per procedure.
func (p *Proxy) AuthenticateBatch(imsis []uint64, out []hss.Vector) error {
	if p.hssHandler == nil {
		return ErrNoBackend
	}
	if len(imsis) != len(out) {
		return errors.New("core: AuthenticateBatch length mismatch")
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	avps := make([]diameter.AVP, len(imsis))
	for i, imsi := range imsis {
		avps[i] = diameter.U64AVP(diameter.AVPUserName, imsi)
	}
	req := diameter.NewRequest(diameter.CmdAuthenticationInformation, diameter.AppS6a, hbh, e2e, avps...)
	ans, err := diameter.Call(p.hssHandler, req)
	if err != nil {
		return err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return ErrBackendFail
	}
	return hss.ParseVectorAVPsInto(ans, out)
}

// UpdateLocation runs the S6a Update-Location exchange and returns the
// subscribed AMBR profile.
func (p *Proxy) UpdateLocation(imsi uint64) (ambrUp, ambrDown uint64, err error) {
	if p.hssHandler == nil {
		return 0, 0, ErrNoBackend
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	req := diameter.NewRequest(diameter.CmdUpdateLocation, diameter.AppS6a, hbh, e2e,
		diameter.U64AVP(diameter.AVPUserName, imsi))
	ans, err := diameter.Call(p.hssHandler, req)
	if err != nil {
		return 0, 0, err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return 0, 0, ErrBackendFail
	}
	sd, ok := ans.Find(diameter.AVPSubscriptionData)
	if !ok {
		return 0, 0, nil
	}
	subs, err := sd.SubAVPs()
	if err != nil {
		return 0, 0, err
	}
	for _, a := range subs {
		switch a.Code {
		case diameter.AVPAMBRUplink:
			if v, err := a.Uint64(); err == nil {
				ambrUp = v
			}
		case diameter.AVPAMBRDownlink:
			if v, err := a.Uint64(); err == nil {
				ambrDown = v
			}
		}
	}
	return ambrUp, ambrDown, nil
}

// EstablishGxSession opens the Gx session for a user and returns the PCC
// rules the PCRF wants installed.
func (p *Proxy) EstablishGxSession(imsi uint64) ([]pcef.Rule, error) {
	return p.EstablishGxSessionInto(imsi, nil)
}

// EstablishGxSessionInto is EstablishGxSession appending the installed
// rules into a caller-provided scratch slice (typically the control
// plane's preallocated rule buffer), avoiding a per-attach allocation.
func (p *Proxy) EstablishGxSessionInto(imsi uint64, buf []pcef.Rule) ([]pcef.Rule, error) {
	if p.pcrfHandler == nil {
		return nil, nil // no PCRF: attach proceeds with default policy
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	req := diameter.NewRequest(diameter.CmdCreditControl, diameter.AppGx, hbh, e2e,
		diameter.U64AVP(diameter.AVPUserName, imsi),
		diameter.U32AVP(diameter.AVPCCRequestType, pcrf.CCRInitial))
	ans, err := diameter.Call(p.pcrfHandler, req)
	if err != nil {
		return nil, err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return nil, ErrBackendFail
	}
	return pcrf.ParseRuleInstallsAppend(ans, buf)
}

// ReportUsage sends a Gx usage update.
func (p *Proxy) ReportUsage(imsi uint64, totalBytes uint64) error {
	if p.pcrfHandler == nil {
		return nil
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	req := diameter.NewRequest(diameter.CmdCreditControl, diameter.AppGx, hbh, e2e,
		diameter.U64AVP(diameter.AVPUserName, imsi),
		diameter.U32AVP(diameter.AVPCCRequestType, pcrf.CCRUpdate),
		diameter.U64AVP(diameter.AVPUsedServiceUnit, totalBytes))
	ans, err := diameter.Call(p.pcrfHandler, req)
	if err != nil {
		return err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return ErrBackendFail
	}
	return nil
}

// TerminateGxSession closes a user's Gx session at detach.
func (p *Proxy) TerminateGxSession(imsi uint64) error {
	if p.pcrfHandler == nil {
		return nil
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	req := diameter.NewRequest(diameter.CmdCreditControl, diameter.AppGx, hbh, e2e,
		diameter.U64AVP(diameter.AVPUserName, imsi),
		diameter.U32AVP(diameter.AVPCCRequestType, pcrf.CCRTermination))
	ans, err := diameter.Call(p.pcrfHandler, req)
	if err != nil {
		return err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return ErrBackendFail
	}
	return nil
}

// TerminateGxSessionBatch closes the Gx sessions of a detach batch in
// one CCR-T round-trip carrying one User-Name AVP per user.
func (p *Proxy) TerminateGxSessionBatch(imsis []uint64) error {
	if p.pcrfHandler == nil || len(imsis) == 0 {
		return nil
	}
	p.Requests.Add(1)
	hbh, e2e := p.ids()
	avps := make([]diameter.AVP, 0, len(imsis)+1)
	for _, imsi := range imsis {
		avps = append(avps, diameter.U64AVP(diameter.AVPUserName, imsi))
	}
	avps = append(avps, diameter.U32AVP(diameter.AVPCCRequestType, pcrf.CCRTermination))
	req := diameter.NewRequest(diameter.CmdCreditControl, diameter.AppGx, hbh, e2e, avps...)
	ans, err := diameter.Call(p.pcrfHandler, req)
	if err != nil {
		return err
	}
	if ans.ResultCode() != diameter.ResultSuccess {
		return ErrBackendFail
	}
	return nil
}
