package core

import (
	"runtime"
	"testing"
	"time"

	"pepc/internal/pkt"
	"pepc/internal/workload"
)

// shardedHarness builds k slices with n users each behind a ShardedData
// runner and returns per-shard generator coordinates.
func shardedHarness(t *testing.T, k, n int) (*ShardedData, [][]workload.User) {
	t.Helper()
	slices := make([]*Slice, k)
	users := make([][]workload.User, k)
	for i := range slices {
		s := NewSlice(SliceConfig{ID: i + 1, UserHint: 1 << 10, RingCapacity: 1 << 12})
		for j := 0; j < n; j++ {
			res, err := s.Control().Attach(AttachSpec{
				IMSI: uint64((i+1)*1_000_000 + j), ENBAddr: 1, DownlinkTEID: uint32(j + 1),
			})
			if err != nil {
				t.Fatal(err)
			}
			users[i] = append(users[i], workload.User{
				IMSI: uint64((i+1)*1_000_000 + j), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr,
			})
		}
		s.Data().SyncUpdates()
		slices[i] = s
	}
	sd, err := NewShardedData(slices, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	return sd, users
}

func TestShardedDataSteering(t *testing.T) {
	sd, users := shardedHarness(t, 3, 4)
	pool := pkt.NewPool(2048, 128)
	for i, pop := range users {
		for _, u := range pop {
			up := buildUplink(pool, u.UplinkTEID, u.UEAddr, 1, sd.Slice(i).Config().CoreAddr, 80)
			if got := sd.SteerUplink(up); got != i {
				t.Fatalf("teid %#x steered to shard %d, want %d", u.UplinkTEID, got, i)
			}
			up.Free()
			down := buildDownlink(pool, u.UEAddr, 443)
			if got := sd.SteerDownlink(down); got != i {
				t.Fatalf("ueaddr %#x steered to shard %d, want %d", u.UEAddr, got, i)
			}
			down.Free()
		}
	}
	// Unparseable input and unknown prefixes fall back to shard 0.
	g := pool.Get()
	g.SetBytes([]byte{0xff})
	if got := sd.SteerUplink(g); got != 0 {
		t.Fatalf("garbage steered to %d", got)
	}
	g.Free()
	alien := buildUplink(pool, 0xFE00_0001, 1, 2, 3, 80)
	if got := sd.SteerUplink(alien); got != 0 {
		t.Fatalf("unknown prefix steered to %d", got)
	}
	alien.Free()

	if _, err := NewShardedData(nil, 0); err != ErrNoShards {
		t.Fatalf("empty shard set: %v", err)
	}
}

// TestShardedDataParallelRun drives concurrent shard workers from a
// single spray goroutine — the Fig 7 parallel topology — and checks that
// every sprayed packet reaches a terminal state on the shard owning its
// user. Run under -race this validates the spray/worker/egress
// single-producer single-consumer contracts.
func TestShardedDataParallelRun(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	sd, users := shardedHarness(t, 2, 8)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		sd.Run(stop)
	}()

	pool := pkt.NewPool(1<<14, 128)
	const perShard = 500
	base := sd.Terminal()
	for j := 0; j < perShard; j++ {
		for i, pop := range users {
			u := pop[j%len(pop)]
			up := buildUplink(pool, u.UplinkTEID, u.UEAddr, 1, sd.Slice(i).Config().CoreAddr, 80)
			for !sd.SprayUplink(up) {
				sd.DrainEgress()
				runtime.Gosched()
			}
			down := buildDownlink(pool, u.UEAddr, 443)
			for !sd.SprayDownlink(down) {
				sd.DrainEgress()
				runtime.Gosched()
			}
		}
	}
	total := uint64(perShard * len(users) * 2)
	deadline := time.After(10 * time.Second)
	for sd.Terminal()-base < total {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d packets terminal", sd.Terminal()-base, total)
		default:
			sd.DrainEgress()
			runtime.Gosched()
		}
	}
	close(stop)
	<-done
	sd.DrainEgress()

	for i := 0; i < sd.Shards(); i++ {
		dp := sd.Slice(i).Data()
		if dp.Missed.Load() != 0 {
			t.Fatalf("shard %d missed %d packets — spray steered to wrong owner", i, dp.Missed.Load())
		}
		if dp.Forwarded.Load() != perShard*2 {
			t.Fatalf("shard %d forwarded %d, want %d", i, dp.Forwarded.Load(), perShard*2)
		}
	}
}
