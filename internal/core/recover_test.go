package core

import (
	"bytes"
	"testing"

	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// crashScenario builds a slice, attaches users [1..n], syncs and
// checkpoints it — the common prologue of the recovery tests. The
// returned buffer is the last checkpoint; everything the test does to
// the slice afterwards is "post-checkpoint" work that must be recovered
// from the surviving in-memory queues.
func crashScenario(t *testing.T, cfg SliceConfig, n int) (*Slice, *bytes.Buffer) {
	t.Helper()
	s := NewSlice(cfg)
	for i := 1; i <= n; i++ {
		if _, err := s.Control().Attach(AttachSpec{
			IMSI: uint64(i), ENBAddr: uint32(i), DownlinkTEID: uint32(0x100 + i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Data().SyncUpdates()
	var buf bytes.Buffer
	if got, err := s.Checkpoint(&buf); err != nil || got != n {
		t.Fatalf("checkpoint: %d %v", got, err)
	}
	return s, &buf
}

// The tentpole recovery invariant: a slice rebuilt from its checkpoint
// plus the surviving update queue loses no post-checkpoint attach, no
// completed detach, and no counter written to a queue-referenced user —
// and, in the handle layout, leaks no arena slot (live hot slots ==
// attached users).
func TestRecoverFromCheckpointPlusQueue(t *testing.T) {
	src, ckp := crashScenario(t, SliceConfig{
		ID: 1, UserHint: 256, StateLayout: LayoutHandle,
	}, 50)

	// Post-checkpoint churn, never synced to the data plane: the update
	// queue still holds all of it when the slice "crashes".
	for i := 51; i <= 60; i++ {
		if _, err := src.Control().Attach(AttachSpec{
			IMSI: uint64(i), ENBAddr: uint32(i), DownlinkTEID: uint32(0x100 + i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 5; i++ {
		if err := src.Control().Detach(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// An attach event on user 20 puts its context back in the queue, so
	// counters written after the checkpoint must survive exactly.
	src.Control().Lookup(20).WriteCounters(func(c *state.CounterState) {
		c.UplinkBytes = 987654
	})
	if err := src.Control().AttachEvent(20); err != nil {
		t.Fatal(err)
	}

	// Crash: the slice stops being driven; its heap survives.
	dst := NewSlice(SliceConfig{ID: 1, UserHint: 256, StateLayout: LayoutHandle})
	rep, err := dst.RecoverFrom(bytes.NewReader(ckp.Bytes()), src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 50 || rep.Replayed != 10 || rep.CompletedDetaches != 5 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Refreshed < 1 {
		t.Fatalf("user 20 refresh not replayed: %+v", rep)
	}
	if dst.Users() != 55 {
		t.Fatalf("users = %d, want 55", dst.Users())
	}
	for i := 1; i <= 5; i++ {
		if dst.Control().Lookup(uint64(i)) != nil {
			t.Fatalf("detached user %d resurrected", i)
		}
	}

	// No leaked arena handles: every live hot slot belongs to an
	// attached user.
	if live := dst.ArenaLive(); live != dst.Users() {
		t.Fatalf("arena live = %d, users = %d", live, dst.Users())
	}

	// No aliasing: the recovered context is a fresh snapshot install,
	// not the crashed slice's pointer.
	if dst.Control().Lookup(55) == src.Control().Lookup(55) {
		t.Fatal("recovered slice aliases a crashed-slice context")
	}

	// Counter loss is bounded by the sync window: user 20 appeared in
	// the surviving queue, so its post-checkpoint counters are exact.
	var cnt state.CounterState
	dst.Control().Lookup(20).ReadCounters(func(c *state.CounterState) { cnt = *c })
	if cnt.UplinkBytes != 987654 {
		t.Fatalf("refreshed counters lost: %d", cnt.UplinkBytes)
	}

	// A post-checkpoint attach is immediately forwardable.
	var cs state.ControlState
	dst.Control().Lookup(57).ReadCtrl(func(c *state.ControlState) { cs = *c })
	pool := pkt.NewPool(2048, 128)
	b := buildUplink(pool, cs.UplinkTEID, cs.UEAddr, 1, dst.Config().CoreAddr, 80)
	dst.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if dst.Data().Forwarded.Load() != 1 {
		t.Fatalf("replayed attach not forwardable: missed=%d", dst.Data().Missed.Load())
	}
	drainEgress(dst)
}

// A surviving handover rekey outruns the checkpoint copy: the restored
// slice must serve the new TEID and must not leave the stale one
// resolvable.
func TestRecoverReplaysRekey(t *testing.T) {
	src, ckp := crashScenario(t, SliceConfig{ID: 1, UserHint: 64}, 10)

	// Simulate a post-checkpoint TEID change the way migration installs
	// do: extract + reinstall under new identifiers would do it, but the
	// queue-visible form is an OpRekey — produce one directly through a
	// control write plus a queued rekey, as the S1 path does for uplink
	// rekeys.
	ue := src.Control().Lookup(4)
	var oldTEID uint32
	ue.ReadCtrl(func(c *state.ControlState) { oldTEID = c.UplinkTEID })
	newTEID := oldTEID + 0x5000
	ue.WriteCtrl(func(c *state.ControlState) { c.UplinkTEID = newTEID })
	src.cp.Rekey(oldTEID, newTEID, ue)
	src.updates.Push(state.Update{Op: state.OpRekey, TEID: newTEID, OldTEID: oldTEID, UE: ue})

	dst := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	rep, err := dst.RecoverFrom(bytes.NewReader(ckp.Bytes()), src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Refreshed != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if dst.Users() != 10 {
		t.Fatalf("users = %d", dst.Users())
	}
	if dst.cp.LookupTEID(newTEID) == nil {
		t.Fatal("rekeyed TEID not resolvable after recovery")
	}
	if dst.cp.LookupTEID(oldTEID) != nil {
		t.Fatal("stale pre-rekey TEID still resolvable")
	}
}

// Two-level mode: a queued primary eviction of a still-attached user is
// replayed as an eviction, never as a detach.
func TestRecoverReplaysEviction(t *testing.T) {
	src, ckp := crashScenario(t, SliceConfig{
		ID: 1, UserHint: 64, TableMode: TableTwoLevel, PrimaryHint: 1024,
	}, 10)
	if err := src.Control().Demote(3); err != nil {
		t.Fatal(err)
	}

	dst := NewSlice(SliceConfig{
		ID: 1, UserHint: 64, TableMode: TableTwoLevel, PrimaryHint: 1024,
	})
	rep, err := dst.RecoverFrom(bytes.NewReader(ckp.Bytes()), src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EvictionsReplayed != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if dst.Users() != 10 {
		t.Fatalf("demoted user lost: users = %d", dst.Users())
	}
	if dst.Control().Lookup(3) == nil {
		t.Fatal("demoted user detached by recovery")
	}
}

// Satellite: crash mid-DrainSignaling with a non-empty signaling ring.
// The event the crashed control thread already executed (detach of user
// 7, sitting in the update queue as a delete) must complete exactly
// once; the events still queued (detach of user 9, attach event on user
// 8) are adopted and run by the new control thread — no double replay,
// no lost detach.
func TestRecoverAdoptsQueuedSignals(t *testing.T) {
	src, ckp := crashScenario(t, SliceConfig{ID: 1, UserHint: 64}, 20)

	src.Control().EnqueueSignal(SigEvent{Kind: SigDetach, IMSI: 7})
	src.Control().EnqueueSignal(SigEvent{Kind: SigDetach, IMSI: 9})
	src.Control().EnqueueSignal(SigEvent{Kind: SigAttachEvent, IMSI: 8})
	// The control thread gets through exactly one event, then crashes:
	// user 7's detach has executed (its delete is in the update queue),
	// the other two events are still in the ring.
	if n := src.Control().DrainSignaling(1); n != 1 {
		t.Fatalf("drained %d", n)
	}
	if src.Control().Lookup(7) != nil {
		t.Fatal("precondition: detach 7 should have executed")
	}

	dst := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	rep, err := dst.RecoverFrom(bytes.NewReader(ckp.Bytes()), src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompletedDetaches != 1 {
		t.Fatalf("completed detach not applied once: %+v", rep)
	}
	if rep.SignalsAdopted != 2 {
		t.Fatalf("adopted = %d, want 2", rep.SignalsAdopted)
	}
	if dst.Control().Lookup(7) != nil {
		t.Fatal("completed detach replayed as attach (user 7 resurrected)")
	}
	// Users: 20 restored - 1 completed detach; the queued detach has not
	// run yet.
	if dst.Users() != 19 {
		t.Fatalf("users before drain = %d", dst.Users())
	}

	// The new control thread drains the adopted ring: the queued detach
	// executes once, the attach event re-arms user 8 without creating a
	// second instance.
	attachesBefore := dst.Control().Stats().Attaches
	for dst.Control().DrainSignaling(0) > 0 {
	}
	dst.Data().SyncUpdates()
	if dst.Control().Lookup(9) != nil {
		t.Fatal("queued detach lost")
	}
	if dst.Users() != 18 {
		t.Fatalf("users after drain = %d", dst.Users())
	}
	if got := dst.Control().Stats().Attaches - attachesBefore; got != 1 {
		t.Fatalf("attach event replayed %d times", got)
	}
}

// Recovery with no surviving slice (cold standby) degrades to a plain
// checkpoint restore.
func TestRecoverWithoutSurvivor(t *testing.T) {
	_, ckp := crashScenario(t, SliceConfig{ID: 1, UserHint: 64}, 15)
	dst := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	rep, err := dst.RecoverFrom(bytes.NewReader(ckp.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 15 || rep.Replayed != 0 || rep.SignalsAdopted != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if dst.Users() != 15 {
		t.Fatalf("users = %d", dst.Users())
	}
}
