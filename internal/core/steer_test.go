package core

import (
	"testing"

	"pepc/internal/pkt"
)

func TestWireSteerMixedBurst(t *testing.T) {
	n := newTestNode(t, 2)
	res0, err := n.AttachUser(0, AttachSpec{IMSI: 100, ENBAddr: 1, DownlinkTEID: 11})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := n.AttachUser(1, AttachSpec{IMSI: 200, ENBAddr: 1, DownlinkTEID: 22})
	if err != nil {
		t.Fatal(err)
	}
	n.Slice(0).Data().SyncUpdates()
	n.Slice(1).Data().SyncUpdates()

	pool := pkt.NewPool(2048, 128)
	ws := n.NewWireSteer(8, nil)

	// A wire burst interleaving: uplink for slice 0 (x2), downlink for
	// slice 1, uplink for slice 0 again, garbage, downlink for an unknown
	// UE. Runs of equal (slice, direction) enqueue with one ring op.
	garbage := pool.Get()
	garbage.SetBytes([]byte{0xde, 0xad})
	burst := []*pkt.Buf{
		buildUplink(pool, res0.UplinkTEID, res0.UEAddr, 1, n.Slice(0).Config().CoreAddr, 80),
		buildUplink(pool, res0.UplinkTEID, res0.UEAddr, 1, n.Slice(0).Config().CoreAddr, 81),
		buildDownlink(pool, res1.UEAddr, 80),
		buildUplink(pool, res0.UplinkTEID, res0.UEAddr, 1, n.Slice(0).Config().CoreAddr, 82),
		garbage,
		buildDownlink(pool, pkt.IPv4Addr(1, 2, 3, 4), 80),
	}
	ws.Steer(burst)

	if got := n.Slice(0).Uplink.Len(); got != 3 {
		t.Fatalf("slice 0 uplink ring has %d packets, want 3", got)
	}
	if got := n.Slice(1).Downlink.Len(); got != 1 {
		t.Fatalf("slice 1 downlink ring has %d packets, want 1", got)
	}
	if got := n.Demux().Steered.Load(); got != 4 {
		t.Fatalf("Steered = %d, want 4", got)
	}
	if got := n.Demux().Unknown.Load(); got != 2 {
		t.Fatalf("Unknown = %d, want 2 (garbage + unknown UE)", got)
	}

	// The batch path must leave the same metadata the per-packet steer
	// records, so the slice's decap/parse stages reuse the wire parse.
	batch := make([]*pkt.Buf, 4)
	got := n.Slice(0).Uplink.DequeueBatch(batch)
	for i := 0; i < got; i++ {
		b := batch[i]
		if !b.Meta.OuterParsed || b.Meta.TEID != res0.UplinkTEID || b.Meta.OuterLen == 0 {
			t.Fatalf("uplink packet %d metadata not recorded: %+v", i, b.Meta)
		}
		b.Free()
	}
	dbatch := make([]*pkt.Buf, 1)
	n.Slice(1).Downlink.DequeueBatch(dbatch)
	if !dbatch[0].Meta.FlowParsed || dbatch[0].Meta.Flow.Dst != res1.UEAddr {
		t.Fatalf("downlink metadata not recorded: %+v", dbatch[0].Meta)
	}
	dbatch[0].Free()
}

func TestWireSteerDropsIntoCache(t *testing.T) {
	n := newTestNode(t, 1)
	pool := pkt.NewPool(2048, 128)
	cache := pool.NewCache(16)
	ws := n.NewWireSteer(4, cache)

	b := pool.Get()
	b.SetBytes([]byte{1, 2, 3})
	ws.Steer([]*pkt.Buf{b})

	if n.Demux().Unknown.Load() != 1 {
		t.Fatalf("Unknown = %d, want 1", n.Demux().Unknown.Load())
	}
	// The drop went into the wire loop's cache, not the shared pool.
	if got := cache.Get(); got != b {
		t.Fatal("dropped buffer did not land in the steerer's cache")
	}
	b.Free()
}

func TestWireSteerMigratingFallsBackToBuffering(t *testing.T) {
	n := newTestNode(t, 2)
	res, err := n.AttachUser(0, AttachSpec{IMSI: 100, ENBAddr: 1, DownlinkTEID: 11})
	if err != nil {
		t.Fatal(err)
	}
	n.Slice(0).Data().SyncUpdates()

	// Mark the user mid-migration by hand, as MigrateUser's first phase
	// does, so the burst hits the buffering window deterministically.
	d := n.Demux()
	d.mu.Lock()
	d.migrating[res.UplinkTEID] = &migBuffer{}
	d.mu.Unlock()

	pool := pkt.NewPool(2048, 128)
	ws := n.NewWireSteer(4, nil)
	ws.Steer([]*pkt.Buf{
		buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, n.Slice(0).Config().CoreAddr, 80),
		buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, n.Slice(0).Config().CoreAddr, 81),
	})

	if got := d.Buffered.Load(); got != 2 {
		t.Fatalf("Buffered = %d, want 2", got)
	}
	if got := n.Slice(0).Uplink.Len(); got != 0 {
		t.Fatalf("uplink ring has %d packets during migration, want 0", got)
	}
	d.mu.Lock()
	mb := d.migrating[res.UplinkTEID]
	for _, b := range mb.pkts {
		b.Free()
	}
	delete(d.migrating, res.UplinkTEID)
	d.mu.Unlock()
}

func TestWireSteerRingFullTailDrop(t *testing.T) {
	n := newTestNode(t, 1)
	res, err := n.AttachUser(0, AttachSpec{IMSI: 100, ENBAddr: 1, DownlinkTEID: 11})
	if err != nil {
		t.Fatal(err)
	}
	n.Slice(0).Data().SyncUpdates()

	pool := pkt.NewPool(2048, 128)
	s := n.Slice(0)
	// Fill the uplink ring to the brim.
	filled := 0
	for {
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
		if !s.Uplink.Enqueue(b) {
			b.Free()
			break
		}
		filled++
	}

	ws := n.NewWireSteer(4, nil)
	before := n.Demux().Steered.Load()
	ws.Steer([]*pkt.Buf{
		buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80),
		buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 81),
	})
	if got := n.Demux().Steered.Load(); got != before {
		t.Fatalf("Steered advanced by %d on a full ring, want 0", got-before)
	}
	if got := s.Uplink.Len(); got != filled {
		t.Fatalf("ring length %d after tail drop, want %d", got, filled)
	}
	// Drain so buffers return to the pool.
	batch := make([]*pkt.Buf, 64)
	for {
		k := s.Uplink.DequeueBatch(batch)
		if k == 0 {
			break
		}
		for i := 0; i < k; i++ {
			batch[i].Free()
		}
	}
}

// TestWireSteerZeroAlloc guards the rx fast path: steering a warm burst
// performs no allocations.
func TestWireSteerZeroAlloc(t *testing.T) {
	n := newTestNode(t, 1)
	res, err := n.AttachUser(0, AttachSpec{IMSI: 100, ENBAddr: 1, DownlinkTEID: 11})
	if err != nil {
		t.Fatal(err)
	}
	n.Slice(0).Data().SyncUpdates()

	pool := pkt.NewPool(2048, 128)
	const batch = 8
	ws := n.NewWireSteer(batch, nil)
	s := n.Slice(0)

	bufs := make([]*pkt.Buf, batch)
	for i := range bufs {
		bufs[i] = buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
	}
	scratch := make([]*pkt.Buf, batch)

	round := func() {
		ws.Steer(bufs)
		got := 0
		for got < batch {
			k := s.Uplink.DequeueBatch(scratch[got:])
			got += k
		}
		copy(bufs, scratch[:batch])
	}
	round() // warm scratch
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Fatalf("WireSteer steady state allocates %.1f allocs/burst, want 0", allocs)
	}
}
