package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"pepc/internal/state"
)

// This file implements the failure-handling direction the paper sketches
// in §8: "if a PEPC node fails, both the user's data and control traffic
// cannot be processed until the necessary user state is recovered. To
// handle failures in PEPC, we can borrow from recent work on providing
// fault tolerance for middleboxes." The consolidated by-user state makes
// that borrowing trivial: a slice checkpoint is just the stream of the
// same per-user snapshots migration already uses, and recovery is a bulk
// install. Checkpoints can be written periodically to stable storage or
// streamed to a standby node.

// Checkpoint stream format: magic, version, user count, then one
// fixed-size snapshot per user, then a CRC32C trailer over everything
// prior.
var checkpointMagic = [8]byte{'P', 'E', 'P', 'C', 'C', 'K', 'P', '1'}

// Checkpoint errors.
var (
	ErrBadCheckpoint = errors.New("core: bad checkpoint stream")
)

// Checkpoint serializes every user of the slice to w. It runs on the
// control side (snapshots take the per-user read locks briefly); the
// data plane keeps running — the checkpoint is crash-consistent per
// user, like the rollback-recovery systems the paper cites.
func (s *Slice) Checkpoint(w io.Writer) (users int, err error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	out := io.MultiWriter(bw, crc)

	if _, err := out.Write(checkpointMagic[:]); err != nil {
		return 0, err
	}
	// Collect snapshots first so the count prefix is exact even if users
	// churn while we write.
	var snaps [][state.SnapshotSize]byte
	s.cp.Range(func(ue *state.UE) bool {
		cs, cnt := ue.Snapshot()
		var buf [state.SnapshotSize]byte
		if _, e := state.MarshalSnapshot(buf[:], &cs, &cnt); e != nil {
			err = e
			return false
		}
		snaps = append(snaps, buf)
		return true
	})
	if err != nil {
		return 0, err
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(snaps)))
	if _, err := out.Write(cnt[:]); err != nil {
		return 0, err
	}
	for i := range snaps {
		if _, err := out.Write(snaps[i][:]); err != nil {
			return 0, err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := bw.Write(trailer[:]); err != nil {
		return 0, err
	}
	return len(snaps), bw.Flush()
}

// RestoreCheckpoint loads a checkpoint produced by Checkpoint into the
// slice (a fresh slice on the recovery node), installing each user into
// the control store and notifying the data plane. Users already present
// are skipped (idempotent replay). It returns the number installed.
func (s *Slice) RestoreCheckpoint(r io.Reader) (users int, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	tr := io.TeeReader(br, crc)

	var magic [8]byte
	if _, err := io.ReadFull(tr, magic[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if magic != checkpointMagic {
		return 0, fmt.Errorf("%w: magic mismatch", ErrBadCheckpoint)
	}
	var cntBuf [4]byte
	if _, err := io.ReadFull(tr, cntBuf[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	n := binary.LittleEndian.Uint32(cntBuf[:])

	installed := 0
	var snap [state.SnapshotSize]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(tr, snap[:]); err != nil {
			return installed, fmt.Errorf("%w: truncated at user %d: %v", ErrBadCheckpoint, i, err)
		}
		var cs state.ControlState
		var cnt state.CounterState
		if err := state.UnmarshalSnapshot(snap[:], &cs, &cnt); err != nil {
			return installed, fmt.Errorf("%w: user %d: %v", ErrBadCheckpoint, i, err)
		}
		if s.cp.LookupIMSI(cs.IMSI) != nil {
			continue // idempotent replay
		}
		if err := s.ctrl.install(cs, cnt, cs.LastActive); err != nil {
			return installed, err
		}
		installed++
	}
	wantCRC := crc.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return installed, fmt.Errorf("%w: missing trailer: %v", ErrBadCheckpoint, err)
	}
	if binary.LittleEndian.Uint32(trailer[:]) != wantCRC {
		return installed, fmt.Errorf("%w: checksum mismatch", ErrBadCheckpoint)
	}
	return installed, nil
}

// RegisterRestored re-registers every user of a restored slice with the
// node demux (recovery node side: the balancer has redirected the failed
// node's virtual-IP share here).
func (n *Node) RegisterRestored(sliceIdx int) (int, error) {
	s := n.Slice(sliceIdx)
	if s == nil {
		return 0, ErrSliceRange
	}
	count := 0
	s.cp.Range(func(ue *state.UE) bool {
		var teid, ueIP uint32
		var imsi uint64
		ue.ReadCtrl(func(c *state.ControlState) {
			teid = c.UplinkTEID
			ueIP = c.UEAddr
			imsi = c.IMSI
		})
		n.demux.Register(teid, ueIP, imsi, sliceIdx)
		count++
		return true
	})
	return count, nil
}
