package core

import (
	"bytes"
	"testing"

	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
)

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	src := NewSlice(SliceConfig{ID: 1, UserHint: 256})
	const users = 100
	for i := 1; i <= users; i++ {
		if _, err := src.Control().Attach(AttachSpec{
			IMSI: uint64(i), ENBAddr: uint32(i), DownlinkTEID: uint32(0x100 + i),
			AMBRUplink: 10e6,
		}); err != nil {
			t.Fatal(err)
		}
	}
	src.Data().SyncUpdates()
	// Put some counters on one user so restore provably carries them.
	ue := src.Control().Lookup(50)
	ue.WriteCounters(func(c *state.CounterState) { c.UplinkBytes = 4242 })

	var buf bytes.Buffer
	n, err := src.Checkpoint(&buf)
	if err != nil || n != users {
		t.Fatalf("checkpoint: n=%d err=%v", n, err)
	}

	// Recovery node: fresh slice, bulk restore, demux re-registration.
	recovery := NewNode(SliceConfig{ID: 1, UserHint: 256})
	dst := recovery.Slice(0)
	got, err := dst.RestoreCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil || got != users {
		t.Fatalf("restore: n=%d err=%v", got, err)
	}
	if dst.Users() != users {
		t.Fatalf("restored users = %d", dst.Users())
	}
	reg, err := recovery.RegisterRestored(0)
	if err != nil || reg != users {
		t.Fatalf("register: %d %v", reg, err)
	}

	// The restored user keeps identifiers, QoS and counters.
	rue := dst.Control().Lookup(50)
	if rue == nil {
		t.Fatal("user 50 missing")
	}
	var cs state.ControlState
	var cnt state.CounterState
	rue.ReadCtrl(func(c *state.ControlState) { cs = *c })
	rue.ReadCounters(func(c *state.CounterState) { cnt = *c })
	if cs.DownlinkTEID != 0x100+50 || cs.AMBRUplink != 10e6 || cnt.UplinkBytes != 4242 {
		t.Fatalf("restored state: %+v %+v", cs, cnt)
	}

	// Traffic flows immediately after restore + sync.
	dst.Data().SyncUpdates()
	pool := pkt.NewPool(2048, 128)
	b := buildUplink(pool, cs.UplinkTEID, cs.UEAddr, 1, dst.Config().CoreAddr, 80)
	dst.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if dst.Data().Forwarded.Load() != 1 {
		t.Fatalf("post-restore traffic: forwarded=%d missed=%d",
			dst.Data().Forwarded.Load(), dst.Data().Missed.Load())
	}
	drainEgress(dst)
}

func TestRestoreIsIdempotent(t *testing.T) {
	src := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	for i := 1; i <= 10; i++ {
		src.Control().Attach(AttachSpec{IMSI: uint64(i)})
	}
	var buf bytes.Buffer
	src.Checkpoint(&buf)
	dst := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	if n, err := dst.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil || n != 10 {
		t.Fatalf("first restore: %d %v", n, err)
	}
	// Replaying the same checkpoint installs nothing new.
	if n, err := dst.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("replay: %d %v", n, err)
	}
	if dst.Users() != 10 {
		t.Fatalf("users after replay = %d", dst.Users())
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	src := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	for i := 1; i <= 5; i++ {
		src.Control().Attach(AttachSpec{IMSI: uint64(i)})
	}
	var buf bytes.Buffer
	src.Checkpoint(&buf)

	// Bad magic.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] ^= 0xff
	dst := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	if _, err := dst.RestoreCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Flipped byte in a snapshot body -> CRC failure.
	bad2 := append([]byte(nil), buf.Bytes()...)
	bad2[len(bad2)-100] ^= 0x01
	dst2 := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	if _, err := dst2.RestoreCheckpoint(bytes.NewReader(bad2)); err == nil {
		t.Fatal("corrupted stream accepted")
	}

	// Truncation.
	dst3 := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	if _, err := dst3.RestoreCheckpoint(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestCheckpointEmptySlice(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 1, UserHint: 16})
	var buf bytes.Buffer
	n, err := s.Checkpoint(&buf)
	if err != nil || n != 0 {
		t.Fatalf("empty checkpoint: %d %v", n, err)
	}
	dst := NewSlice(SliceConfig{ID: 1, UserHint: 16})
	if n, err := dst.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("empty restore: %d %v", n, err)
	}
}
