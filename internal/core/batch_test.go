package core

import (
	"sync"
	"testing"

	"pepc/internal/gtp"
	"pepc/internal/nf"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
	"pepc/internal/workload"
)

// TestBatchEquivalentToPacketAtATime feeds the same bursty, QoS-policed
// packet sequence through one slice as whole batches and through another
// one packet at a time. Flow-run coalescing must be an optimization, not
// a semantic change: forwarded/dropped totals and the per-user counters
// must match exactly, including the partial-run fallback where the
// aggregate token-bucket check fails mid-burst.
func TestBatchEquivalentToPacketAtATime(t *testing.T) {
	build := func() (*Slice, AttachResult) {
		s := NewSlice(SliceConfig{ID: 21, UserHint: 64})
		res, err := s.Control().Attach(AttachSpec{
			IMSI: 21, ENBAddr: 1, DownlinkTEID: 2,
			AMBRUplink: 8 * 3000, // tiny: the burst admits ~50 packets, then partial runs
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Data().SyncUpdates()
		return s, res
	}
	sBatch, resBatch := build()
	sSingle, resSingle := build()
	pool := pkt.NewPool(4096, 128)
	now := sim.Now()

	// 8-packet bursts per "user instant", 128 packets total: well past the
	// policing burst so runs start failing the aggregate check.
	const runLen, total = 8, 128
	var batch []*pkt.Buf
	for i := 0; i < total; i += runLen {
		batch = batch[:0]
		for k := 0; k < runLen; k++ {
			batch = append(batch, buildUplink(pool, resBatch.UplinkTEID, resBatch.UEAddr, 1, sBatch.Config().CoreAddr, 80))
		}
		sBatch.Data().ProcessUplinkBatch(batch, now)
		drainEgress(sBatch)
		for k := 0; k < runLen; k++ {
			b := buildUplink(pool, resSingle.UplinkTEID, resSingle.UEAddr, 1, sSingle.Config().CoreAddr, 80)
			sSingle.Data().ProcessUplinkBatch([]*pkt.Buf{b}, now)
		}
		drainEgress(sSingle)
	}

	if f1, f2 := sBatch.Data().Forwarded.Load(), sSingle.Data().Forwarded.Load(); f1 != f2 {
		t.Fatalf("forwarded: batch=%d single=%d", f1, f2)
	}
	if d1, d2 := sBatch.Data().Dropped.Load(), sSingle.Data().Dropped.Load(); d1 != d2 {
		t.Fatalf("dropped: batch=%d single=%d", d1, d2)
	}
	var c1, c2 state.CounterState
	sBatch.Control().Lookup(21).ReadCounters(func(c *state.CounterState) { c1 = *c })
	sSingle.Control().Lookup(21).ReadCounters(func(c *state.CounterState) { c2 = *c })
	if c1 != c2 {
		t.Fatalf("counters diverge:\nbatch:  %+v\nsingle: %+v", c1, c2)
	}
	if c1.DroppedPackets == 0 || c1.UplinkPackets == 0 {
		t.Fatalf("test exercised no policing boundary: %+v", c1)
	}
}

// TestEchoInBatchMix verifies the parse stage's fast paths inside a mixed
// batch: an echo request and a garbage packet between data packets must
// not disturb the surrounding runs.
func TestEchoInBatchMix(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 22, UserHint: 64})
	res := attachOne(t, s, 22)
	pool := pkt.NewPool(2048, 128)

	echo := pool.Get()
	totalLen := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + gtp.HeaderLen
	data, _ := echo.Append(totalLen)
	ip := pkt.IPv4{Length: uint16(totalLen), TTL: 64, Protocol: pkt.ProtoUDP,
		Src: pkt.IPv4Addr(192, 168, 0, 1), Dst: s.Config().CoreAddr}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: gtp.PortGTPU, DstPort: gtp.PortGTPU, Length: uint16(pkt.UDPHeaderLen + gtp.HeaderLen)}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	h := gtp.Header{Type: gtp.MsgEchoRequest}
	h.SerializeTo(data[pkt.IPv4HeaderLen+pkt.UDPHeaderLen:])

	garbage := pool.Get()
	garbage.SetBytes([]byte{0xde, 0xad})

	batch := []*pkt.Buf{
		buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80),
		echo,
		buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80),
		garbage,
		buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80),
	}
	s.Data().ProcessUplinkBatch(batch, sim.Now())
	if s.Data().EchoReplies.Load() != 1 {
		t.Fatalf("echo replies = %d", s.Data().EchoReplies.Load())
	}
	// 3 data packets + 1 echo response forwarded, 1 garbage dropped.
	if f := s.Data().Forwarded.Load(); f != 4 {
		t.Fatalf("forwarded = %d (dropped=%d)", f, s.Data().Dropped.Load())
	}
	if d := s.Data().Dropped.Load(); d != 1 {
		t.Fatalf("dropped = %d", d)
	}
	var up uint64
	s.Control().Lookup(22).ReadCounters(func(c *state.CounterState) { up = c.UplinkPackets })
	if up != 3 {
		t.Fatalf("uplink packets counted = %d", up)
	}
	drainEgress(s)
}

// TestBatchKnobsIndependent checks that SliceConfig.BatchSize (worker
// dequeue budget) and SliceConfig.SyncEvery (update-sync granularity) are
// genuinely independent: defaults resolve separately, and a sync interval
// smaller than a processed batch still applies updates mid-batch.
func TestBatchKnobsIndependent(t *testing.T) {
	def := SliceConfig{}.withDefaults()
	if def.SyncEvery != state.DefaultSyncEvery {
		t.Fatalf("default SyncEvery = %d", def.SyncEvery)
	}
	if def.BatchSize != nf.DefaultBatchSize {
		t.Fatalf("default BatchSize = %d", def.BatchSize)
	}
	got := SliceConfig{SyncEvery: 4}.withDefaults()
	if got.BatchSize != nf.DefaultBatchSize || got.SyncEvery != 4 {
		t.Fatalf("SyncEvery override leaked into BatchSize: %+v", got)
	}
	got = SliceConfig{BatchSize: 128}.withDefaults()
	if got.SyncEvery != state.DefaultSyncEvery || got.BatchSize != 128 {
		t.Fatalf("BatchSize override leaked into SyncEvery: %+v", got)
	}

	// SyncEvery=4 with an 8-packet batch: the attach update queued before
	// processing must become visible at the first 4-packet boundary, so
	// packets 1-4 miss and packets 5-8 hit — inside one batch call.
	s := NewSlice(SliceConfig{ID: 23, UserHint: 64, SyncEvery: 4, BatchSize: 32})
	res, err := s.Control().Attach(AttachSpec{IMSI: 23, ENBAddr: 1, DownlinkTEID: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(2048, 128)
	batch := make([]*pkt.Buf, 8)
	for i := range batch {
		batch[i] = buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
	}
	s.Data().ProcessUplinkBatch(batch, sim.Now())
	if m := s.Data().Missed.Load(); m != 4 {
		t.Fatalf("missed = %d, want 4 (sync at the SyncEvery boundary)", m)
	}
	if f := s.Data().Forwarded.Load(); f != 4 {
		t.Fatalf("forwarded = %d, want 4", f)
	}
	drainEgress(s)
}

// newSteadySlice builds a warmed slice with a policed population and a
// bursty generator for the allocation guards.
func newSteadySlice(t testing.TB) (*Slice, *workload.TrafficGen) {
	t.Helper()
	s := NewSlice(SliceConfig{ID: 24, UserHint: 1 << 10})
	users := make([]workload.User, 256)
	for i := range users {
		res, err := s.Control().Attach(AttachSpec{
			IMSI: uint64(i + 1), ENBAddr: 1, DownlinkTEID: uint32(i + 1),
			AMBRUplink: 100e6, AMBRDownlink: 100e6,
		})
		if err != nil {
			t.Fatal(err)
		}
		users[i] = workload.User{IMSI: uint64(i + 1), UplinkTEID: res.UplinkTEID, UEAddr: res.UEAddr}
	}
	s.Data().SyncUpdates()
	gen := workload.NewTrafficGen(workload.TrafficConfig{CoreAddr: s.Config().CoreAddr, Burst: 8}, users)
	return s, gen
}

// TestUplinkSteadyStateZeroAlloc enforces DESIGN.md's "allocation-free at
// steady state" claim on the staged uplink fast path.
func TestUplinkSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only meaningful without -race")
	}
	s, gen := newSteadySlice(t)
	batch := make([]*pkt.Buf, 32)
	run := func() {
		for i := range batch {
			batch[i] = gen.NextUplink()
		}
		s.Data().ProcessUplinkBatch(batch, sim.Now())
		drainEgress(s)
	}
	for i := 0; i < 64; i++ { // warm pools, scratch, limiter rebuilds
		run()
	}
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("uplink fast path allocates %.2f allocs/op at steady state", avg)
	}
}

// TestDownlinkSteadyStateZeroAlloc is the downlink direction's guard.
func TestDownlinkSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts only meaningful without -race")
	}
	s, gen := newSteadySlice(t)
	batch := make([]*pkt.Buf, 32)
	run := func() {
		for i := range batch {
			batch[i] = gen.NextDownlink()
		}
		s.Data().ProcessDownlinkBatch(batch, sim.Now())
		drainEgress(s)
	}
	for i := 0; i < 64; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("downlink fast path allocates %.2f allocs/op at steady state", avg)
	}
}

// TestSteerMigrationCompletesInWindow pins the steer double-check race
// window: the read-locked lookup sees the user migrating, the migration
// completes before the write lock is taken, and the packet must then be
// steered to the NEW owner by a fresh lookup instead of being buffered
// against a dead migration entry.
func TestSteerMigrationCompletesInWindow(t *testing.T) {
	node := NewNode(SliceConfig{ID: 1, UserHint: 64}, SliceConfig{ID: 2, UserHint: 64})
	res, err := node.AttachUser(0, AttachSpec{IMSI: 42, ENBAddr: 1, DownlinkTEID: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := node.Demux()
	// Put the user mid-migration, as MigrateUser's step 1 does.
	d.mu.Lock()
	d.migrating[res.UplinkTEID] = &migBuffer{}
	d.mu.Unlock()
	// Complete the "migration" inside the window: remap to slice 1 and
	// clear the migration entry between steer's RLock and Lock.
	fired := false
	d.steerTestHook = func() {
		fired = true
		d.mu.Lock()
		delete(d.migrating, res.UplinkTEID)
		d.byTEID[res.UplinkTEID] = 1
		d.mu.Unlock()
	}
	pool := pkt.NewPool(2048, 128)
	b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, node.Slice(1).Config().CoreAddr, 80)
	node.SteerUplink(b)
	d.steerTestHook = nil
	if !fired {
		t.Fatal("window hook never ran — steer did not see the migration entry")
	}
	if got := d.Buffered.Load(); got != 0 {
		t.Fatalf("packet buffered against completed migration (buffered=%d)", got)
	}
	if got := d.Unknown.Load(); got != 0 {
		t.Fatalf("packet dropped as unknown (unknown=%d)", got)
	}
	out := make([]*pkt.Buf, 4)
	if n := node.Slice(1).Uplink.DequeueBatch(out); n != 1 {
		t.Fatalf("new owner received %d packets, want 1", n)
	}
	out[0].Free()
	if n := node.Slice(0).Uplink.DequeueBatch(out); n != 0 {
		t.Fatalf("old owner received %d packets", n)
	}
}

// TestSteerDuringConcurrentMigration hammers steer against real
// back-and-forth migrations so the race detector can check the
// double-check path, and verifies no packet is lost: every steered
// packet is accounted for on a ring, in a migration buffer drain, or in
// the unknown counter.
func TestSteerDuringConcurrentMigration(t *testing.T) {
	node := NewNode(SliceConfig{ID: 1, UserHint: 64, RingCapacity: 1 << 14},
		SliceConfig{ID: 2, UserHint: 64, RingCapacity: 1 << 14})
	res, err := node.AttachUser(0, AttachSpec{IMSI: 77, ENBAddr: 1, DownlinkTEID: 2})
	if err != nil {
		t.Fatal(err)
	}
	const total = 2000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		src, dst := 0, 1
		for i := 0; i < 40; i++ {
			if err := node.Scheduler().MigrateUser(77, src, dst); err != nil {
				t.Errorf("migration %d: %v", i, err)
				return
			}
			src, dst = dst, src
		}
	}()
	pool := pkt.NewPool(1<<15, 128)
	for i := 0; i < total; i++ {
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, node.Slice(0).Config().CoreAddr, 80)
		node.SteerUplink(b)
	}
	wg.Wait()
	d := node.Demux()
	out := make([]*pkt.Buf, 256)
	ringed := 0
	for _, s := range []*Slice{node.Slice(0), node.Slice(1)} {
		for {
			n := s.Uplink.DequeueBatch(out)
			if n == 0 {
				break
			}
			for _, b := range out[:n] {
				b.Free()
			}
			ringed += n
		}
	}
	if got := uint64(ringed) + d.Unknown.Load(); got != total {
		t.Fatalf("packets accounted = %d (ringed=%d unknown=%d), want %d",
			got, ringed, d.Unknown.Load(), total)
	}
}
