package core

import (
	"testing"

	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// TestTransferConservesQoSAndCharging is the migration conservation
// round-trip: a user with a tight AMBR spends most of its token budget
// on the source node, moves through ExportUser/ImportUser, and must
// arrive with exact counters, intact QoS configuration, a token level no
// higher than it left with (plus refill), and a closed charging interval
// — migrating must not be a way to reset a policing budget or double-
// bill an interval. Handle-layout slices on both sides additionally
// check arena-slot accounting across the move.
func TestTransferConservesQoSAndCharging(t *testing.T) {
	nodeA := NewNode(SliceConfig{ID: 1, UserHint: 64, StateLayout: LayoutHandle})
	nodeB := NewNode(SliceConfig{ID: 1, UserHint: 64, StateLayout: LayoutHandle})
	// 8000 bits/s → 1000 B/s refill, default burst 3000 bytes.
	const ambr = 8000
	const burst = 3000
	res, err := nodeA.AttachUser(0, AttachSpec{IMSI: 7, ENBAddr: 5, DownlinkTEID: 0x700,
		AMBRUplink: ambr, AMBRDownlink: ambr})
	if err != nil {
		t.Fatal(err)
	}
	sA := nodeA.Slice(0)
	sA.Data().SyncUpdates()

	// Spend 34 × 60 = 2040 of the 3000-byte uplink burst. All admitted:
	// the budget never goes negative.
	pool := pkt.NewPool(2048, 128)
	const pkts = 34
	const innerLen = 60
	for i := 0; i < pkts; i++ {
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 5, sA.Config().CoreAddr, 80)
		sA.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	}
	drainEgress(sA)
	if got := sA.Data().Forwarded.Load(); got != pkts {
		t.Fatalf("forwarded %d of %d on source", got, pkts)
	}

	// Source-side level before export. Inline mode: no data worker runs,
	// the test is the only driver of both planes, so reading the
	// data-private limiter is safe here.
	ueA := sA.Control().Lookup(7)
	srcLv := ueA.Hot().Priv.Limiter.ExportLevels(sim.Now())
	if want := uint64(burst - pkts*innerLen); srcLv.AMBRUp < want || srcLv.AMBRUp > want+500 {
		t.Fatalf("source uplink level = %d, want ≈%d", srcLv.AMBRUp, want)
	}
	var cntA state.CounterState
	ueA.ReadCounters(func(c *state.CounterState) { cntA = *c })
	if cntA.UplinkPackets != pkts || cntA.UplinkBytes == 0 {
		t.Fatalf("source counters: %+v", cntA)
	}

	msg, err := nodeA.Scheduler().ExportUser(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sA.Users() != 0 {
		t.Fatalf("source still holds %d users", sA.Users())
	}
	if live := sA.ArenaLive(); live != 0 {
		t.Fatalf("source arena leaks %d slots after export", live)
	}

	if err := nodeB.Scheduler().ImportUser(msg, 0); err != nil {
		t.Fatal(err)
	}
	sB := nodeB.Slice(0)
	if sB.Users() != 1 {
		t.Fatalf("target holds %d users", sB.Users())
	}
	if live := sB.ArenaLive(); live != 1 {
		t.Fatalf("target arena live = %d, want 1", live)
	}

	// Counters are exact, QoS configuration survived byte-for-byte.
	ueB := sB.Control().Lookup(7)
	var cntB state.CounterState
	ueB.ReadCounters(func(c *state.CounterState) { cntB = *c })
	if cntB != cntA {
		t.Fatalf("counters changed in transfer:\n src %+v\n dst %+v", cntA, cntB)
	}
	var csB state.ControlState
	ueB.ReadCtrl(func(c *state.ControlState) { csB = *c })
	if csB.AMBRUplink != ambr || csB.AMBRDownlink != ambr {
		t.Fatalf("AMBR changed in transfer: %d/%d", csB.AMBRUplink, csB.AMBRDownlink)
	}

	// Token conservation: the seeded level can only exceed the exported
	// one by refill (1000 B/s; 500 bytes ≈ half a second of slack), and
	// must stay far from the full burst a reset would produce.
	dstLv := ueB.Hot().Priv.Limiter.ExportLevels(sim.Now())
	if dstLv.AMBRUp < srcLv.AMBRUp {
		t.Fatalf("uplink budget shrank: src %d → dst %d", srcLv.AMBRUp, dstLv.AMBRUp)
	}
	if dstLv.AMBRUp > srcLv.AMBRUp+500 {
		t.Fatalf("uplink budget reset on migration: src %d → dst %d (burst %d)",
			srcLv.AMBRUp, dstLv.AMBRUp, burst)
	}
	if dstLv.AMBRDown < srcLv.AMBRDown || dstLv.AMBRDown > srcLv.AMBRDown+500 {
		t.Fatalf("downlink budget not conserved: src %d → dst %d", srcLv.AMBRDown, dstLv.AMBRDown)
	}

	// Charging: import re-seeds the collector baseline from the carried
	// counters, so the first interval on the target bills nothing — the
	// source's usage is not double-counted.
	cdr, err := sB.Control().CollectUsage(7, sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if cdr.Delta.Total() != 0 || cdr.Delta.UplinkPackets != 0 {
		t.Fatalf("import double-bills: delta %+v", cdr.Delta)
	}

	// First packet on the target triggers rebuildPriv (fast-view epoch
	// mismatch); configurePreserving must keep the seeded tokens rather
	// than rebuilding a full bucket.
	sB.Data().SyncUpdates()
	b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 5, sB.Config().CoreAddr, 80)
	sB.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	drainEgress(sB)
	if sB.Data().Forwarded.Load() != 1 {
		t.Fatal("post-import traffic failed on target")
	}
	afterLv := ueB.Hot().Priv.Limiter.ExportLevels(sim.Now())
	if afterLv.AMBRUp > dstLv.AMBRUp+400 {
		t.Fatalf("rebuild reset seeded tokens: %d → %d", dstLv.AMBRUp, afterLv.AMBRUp)
	}
}

// TestTransferWithoutLevelsStartsFull covers the compatibility path: a
// snapshot whose levels section is absent (Valid=false — an old-format
// message or a fence timeout) installs with no pre-seeded limiter, and
// the data plane's first rebuild grants the configured full burst.
func TestTransferWithoutLevelsStartsFull(t *testing.T) {
	nodeB := NewNode(SliceConfig{ID: 1, UserHint: 64})
	cs := state.ControlState{
		IMSI: 9, UplinkTEID: 0x1234, UEAddr: 0x0a000009,
		ENBAddr: 5, DownlinkTEID: 0x900,
		AMBRUplink: 8000, AMBRDownlink: 8000,
	}
	cs.AddBearer(state.Bearer{EBI: 5, QCI: 9})
	var msg StateTransferMessage
	msg.IMSI = 9
	if _, err := state.MarshalSnapshot(msg.Data[:], &cs, &state.CounterState{}); err != nil {
		t.Fatal(err)
	}
	if err := nodeB.Scheduler().ImportUser(msg, 0); err != nil {
		t.Fatal(err)
	}
	ueB := nodeB.Slice(0).Control().Lookup(9)
	if ueB == nil {
		t.Fatal("user not installed")
	}
	if ueB.Hot().Priv.Limiter != nil {
		t.Fatal("limiter pre-seeded from an invalid levels section")
	}
	// Data path builds the limiter lazily with a full bucket.
	nodeB.Slice(0).Data().SyncUpdates()
	pool := pkt.NewPool(2048, 128)
	b := buildUplink(pool, cs.UplinkTEID, cs.UEAddr, 5, nodeB.Slice(0).Config().CoreAddr, 80)
	nodeB.Slice(0).Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	drainEgress(nodeB.Slice(0))
	if nodeB.Slice(0).Data().Forwarded.Load() != 1 {
		t.Fatal("traffic failed after levels-less import")
	}
}
