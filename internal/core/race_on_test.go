//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// its allocations distort testing.AllocsPerRun.
const raceEnabled = true
