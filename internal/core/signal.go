package core

import (
	"runtime"

	"pepc/internal/sim"
	"pepc/internal/state"
)

// This file implements the control plane's batched procedure execution:
// signaling events arrive on a ring (EnqueueSignal) and the control
// thread drains them in batches (DrainSignaling), grouping consecutive
// events of one procedure type so the table index lock, the data-plane
// update push and the HSS/PCRF proxy round-trip each amortize across
// the group — the control-plane mirror of the data plane's staged batch
// pipeline. Grouping only coalesces *consecutive* runs of one kind, so
// the per-user ordering of mixed procedures (attach before handover
// before detach) is preserved exactly as submitted.

// SigKind identifies a batched signaling procedure.
type SigKind uint8

// Signaling procedure kinds.
const (
	// SigAttachEvent is the at-scale attach state operation on an
	// existing user (ControlPlane.AttachEvent).
	SigAttachEvent SigKind = iota
	// SigS1Handover rewrites the user's serving-eNodeB tunnel state
	// (ControlPlane.S1Handover).
	SigS1Handover
	// SigDetach removes the user (ControlPlane.Detach).
	SigDetach
	// SigQoSUpdate rewrites the user's aggregate rate bounds (the N4
	// Update QER procedure; the data plane reconfigures the token
	// buckets from the new AMBR at its next packet via the epoch bump).
	SigQoSUpdate
)

// SigEvent is one signaling procedure request. Fields beyond IMSI are
// interpreted per kind (handover: the new tunnel endpoint; QoS update:
// the new aggregate rate bounds in bits/s).
type SigEvent struct {
	Kind         SigKind
	IMSI         uint64
	ENBAddr      uint32
	DownlinkTEID uint32
	ECGI         uint32
	AMBRUplink   uint64
	AMBRDownlink uint64
}

// EnqueueSignal submits a signaling event to the control thread's ring,
// waking the control loop. Any thread may call it. Returns false (and
// counts the drop) when the ring is full — backpressure toward the RAN.
func (cp *ControlPlane) EnqueueSignal(ev SigEvent) bool {
	if !cp.sigQ.Enqueue(ev) {
		cp.SigDrops.Add(1)
		return false
	}
	select {
	case cp.sigNotify <- struct{}{}:
	default:
	}
	return true
}

// SignalBacklog returns the approximate number of queued signaling
// events.
func (cp *ControlPlane) SignalBacklog() int { return cp.sigQ.Len() }

// DrainSignaling dequeues up to max events (capped at the drain batch
// size) and executes them as grouped procedures. Control thread only.
// Returns the number of events processed.
func (cp *ControlPlane) DrainSignaling(max int) int {
	if max <= 0 || max > len(cp.sigScratch) {
		max = len(cp.sigScratch)
	}
	evs := cp.sigScratch[:max]
	n := cp.sigQ.DequeueBatch(evs)
	if n == 0 {
		return 0
	}
	evs = evs[:n]
	for i := 0; i < n; {
		j := i + 1
		for j < n && evs[j].Kind == evs[i].Kind {
			j++
		}
		run := evs[i:j]
		switch evs[i].Kind {
		case SigAttachEvent:
			cp.attachEventBatch(run)
		case SigS1Handover:
			cp.s1HandoverBatch(run)
		case SigDetach:
			cp.detachBatch(run)
		case SigQoSUpdate:
			cp.qosUpdateBatch(run)
		}
		i = j
	}
	return n
}

// pushUpdates hands a drain's accumulated index operations to the data
// plane in one call. When the queue is full and a data worker is
// running, it yields until the worker syncs; without a worker the
// remainder is dropped, matching the single-push best-effort semantics.
func (cp *ControlPlane) pushUpdates(us []state.Update) {
	pushed := cp.s.updates.PushBatch(us)
	for pushed < len(us) && cp.s.data.running.Load() {
		runtime.Gosched()
		pushed += cp.s.updates.PushBatch(us[pushed:])
	}
}

// attachEventBatch executes a run of attach events: one batched IMSI
// lookup, per-user control writes, one batched update push.
func (cp *ControlPlane) attachEventBatch(run []SigEvent) {
	for i := range run {
		cp.sigIMSIs[i] = run[i].IMSI
	}
	cp.s.cp.LookupIMSIBatch(cp.sigIMSIs[:len(run)], cp.sigUEs[:len(run)])
	now := sim.Now()
	upd := cp.updScratch[:0]
	done := 0
	for i := range run {
		ue := cp.sigUEs[i]
		if ue == nil {
			continue
		}
		var teid, ueAddr uint32
		ue.WriteCtrl(func(c *state.ControlState) {
			c.Attached = true
			c.LastActive = now
			c.Bearers[0].QCI = 9
			c.TAIList[0] = c.TAI
			c.TAICount = 1
			teid = c.UplinkTEID
			ueAddr = c.UEAddr
		})
		if cp.s.tl != nil {
			cp.s.tl.InsertSecondary(teid, ueAddr, ue)
		}
		upd = append(upd, state.Update{Op: state.OpInsert, TEID: teid, UEIP: ueAddr, UE: ue})
		done++
	}
	cp.pushUpdates(upd)
	cp.updScratch = upd[:0]
	cp.Attaches.Add(uint64(done))
}

// s1HandoverBatch executes a run of S1 handovers: one batched IMSI
// lookup, then per-user tunnel rewrites. Handovers touch no index, so
// there is nothing to push.
func (cp *ControlPlane) s1HandoverBatch(run []SigEvent) {
	for i := range run {
		cp.sigIMSIs[i] = run[i].IMSI
	}
	cp.s.cp.LookupIMSIBatch(cp.sigIMSIs[:len(run)], cp.sigUEs[:len(run)])
	now := sim.Now()
	done := 0
	for i := range run {
		ue := cp.sigUEs[i]
		if ue == nil {
			continue
		}
		ev := &run[i]
		ue.WriteCtrl(func(c *state.ControlState) {
			c.ENBAddr = ev.ENBAddr
			c.DownlinkTEID = ev.DownlinkTEID
			c.ECGI = ev.ECGI
			c.LastActive = now
		})
		done++
	}
	cp.Handovers.Add(uint64(done))
}

// qosUpdateBatch executes a run of QoS updates: one batched IMSI
// lookup, then per-user AMBR rewrites. Like handovers these touch no
// index; the control-write epoch bump makes the data plane rebuild the
// user's token buckets from the new bounds at its next packet.
func (cp *ControlPlane) qosUpdateBatch(run []SigEvent) {
	for i := range run {
		cp.sigIMSIs[i] = run[i].IMSI
	}
	cp.s.cp.LookupIMSIBatch(cp.sigIMSIs[:len(run)], cp.sigUEs[:len(run)])
	now := sim.Now()
	done := 0
	for i := range run {
		ue := cp.sigUEs[i]
		if ue == nil {
			continue
		}
		ev := &run[i]
		ue.WriteCtrl(func(c *state.ControlState) {
			c.AMBRUplink = ev.AMBRUplink
			c.AMBRDownlink = ev.AMBRDownlink
			c.LastActive = now
		})
		done++
	}
	cp.QoSUpdates.Add(uint64(done))
}

// detachBatch executes a run of detaches: one batched index removal,
// one batched update push, one batched Gx termination toward the PCRF,
// and the contexts parked on the free list for recycling.
func (cp *ControlPlane) detachBatch(run []SigEvent) {
	for i := range run {
		cp.sigIMSIs[i] = run[i].IMSI
	}
	cp.s.cp.RemoveBatch(cp.sigIMSIs[:len(run)], cp.sigUEs[:len(run)])
	upd := cp.updScratch[:0]
	term := 0
	for i := range run {
		ue := cp.sigUEs[i]
		if ue == nil {
			continue
		}
		var teid, ueAddr uint32
		ue.ReadCtrl(func(c *state.ControlState) {
			teid = c.UplinkTEID
			ueAddr = c.UEAddr
		})
		if cp.s.tl != nil {
			cp.s.tl.RemoveSecondary(teid, ueAddr)
		}
		upd = append(upd, state.Update{Op: state.OpDelete, TEID: teid, UEIP: ueAddr})
		cp.collector.Forget(run[i].IMSI)
		// Unbind the hot slot before parking the context (the inline
		// Detach path does the same): without this the batched path
		// leaked one arena slot per detach in the handle layout.
		if cp.s.arena != nil {
			cp.s.arena.Retire(ue.Handle(), cp.s.data.syncSeq.Load())
		}
		cp.retire(ue, teid, ueAddr)
		// Compact the surviving IMSIs for the batched Gx termination.
		cp.sigIMSIs[term] = run[i].IMSI
		term++
	}
	cp.pushUpdates(upd)
	cp.updScratch = upd[:0]
	if cp.proxy != nil && term > 0 {
		_ = cp.proxy.TerminateGxSessionBatch(cp.sigIMSIs[:term])
	}
	cp.Detaches.Add(uint64(term))
}
