package core

import (
	"testing"

	"pepc/internal/bpf"
	"pepc/internal/gtp"
	"pepc/internal/pcef"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// buildUplink constructs a GTP-U encapsulated uplink packet from a UE
// toward the internet.
func buildUplink(pool *pkt.Pool, teid, ueAddr, enbAddr, coreAddr uint32, dstPort uint16) *pkt.Buf {
	b := pool.Get()
	inner := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + 32
	data, _ := b.Append(inner)
	ip := pkt.IPv4{Length: uint16(inner), TTL: 64, Protocol: pkt.ProtoUDP,
		Src: ueAddr, Dst: pkt.IPv4Addr(8, 8, 8, 8)}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: 5555, DstPort: dstPort, Length: uint16(pkt.UDPHeaderLen + 32)}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	if err := gtp.EncapGPDU(b, teid, enbAddr, coreAddr); err != nil {
		panic(err)
	}
	return b
}

// buildDownlink constructs a plain IP downlink packet toward a UE.
func buildDownlink(pool *pkt.Pool, ueAddr uint32, dstPort uint16) *pkt.Buf {
	b := pool.Get()
	inner := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + 32
	data, _ := b.Append(inner)
	ip := pkt.IPv4{Length: uint16(inner), TTL: 64, Protocol: pkt.ProtoUDP,
		Src: pkt.IPv4Addr(8, 8, 8, 8), Dst: ueAddr}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: 53, DstPort: dstPort, Length: uint16(pkt.UDPHeaderLen + 32)}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	return b
}

func attachOne(t *testing.T, s *Slice, imsi uint64) AttachResult {
	t.Helper()
	res, err := s.Control().Attach(AttachSpec{
		IMSI: imsi, ENBAddr: pkt.IPv4Addr(192, 168, 0, 1), DownlinkTEID: 0x100 + uint32(imsi),
		ECGI: 7, TAI: 3,
	})
	if err != nil {
		t.Fatalf("attach %d: %v", imsi, err)
	}
	s.Data().SyncUpdates()
	return res
}

func drainEgress(s *Slice) int {
	n := 0
	for {
		b, ok := s.Egress.Dequeue()
		if !ok {
			return n
		}
		b.Free()
		n++
	}
}

func TestSliceUplinkEndToEnd(t *testing.T) {
	for _, mode := range []TableMode{TableSingle, TableTwoLevel} {
		name := "single"
		if mode == TableTwoLevel {
			name = "twolevel"
		}
		t.Run(name, func(t *testing.T) {
			s := NewSlice(SliceConfig{ID: 1, TableMode: mode, UserHint: 64})
			res := attachOne(t, s, 1001)
			pool := pkt.NewPool(2048, 128)
			b := buildUplink(pool, res.UplinkTEID, res.UEAddr, pkt.IPv4Addr(192, 168, 0, 1), s.Config().CoreAddr, 80)
			s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
			if got := s.Data().Forwarded.Load(); got != 1 {
				t.Fatalf("forwarded = %d (missed=%d dropped=%d)", got,
					s.Data().Missed.Load(), s.Data().Dropped.Load())
			}
			// The forwarded packet is the decapsulated inner packet.
			out, ok := s.Egress.Dequeue()
			if !ok {
				t.Fatal("no egress packet")
			}
			var ip pkt.IPv4
			if err := ip.DecodeFromBytes(out.Bytes()); err != nil {
				t.Fatal(err)
			}
			if ip.Src != res.UEAddr || ip.Dst != pkt.IPv4Addr(8, 8, 8, 8) {
				t.Fatalf("inner packet: %s -> %s", pkt.FormatIPv4(ip.Src), pkt.FormatIPv4(ip.Dst))
			}
			out.Free()
			// Counters recorded.
			ue := s.Control().Lookup(1001)
			var up uint64
			ue.ReadCounters(func(c *state.CounterState) { up = c.UplinkPackets })
			if up != 1 {
				t.Fatalf("uplink packets counted = %d", up)
			}
		})
	}
}

func TestSliceDownlinkEncapsulates(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 2, UserHint: 64})
	res := attachOne(t, s, 2002)
	pool := pkt.NewPool(2048, 128)
	b := buildDownlink(pool, res.UEAddr, 443)
	s.Data().ProcessDownlinkBatch([]*pkt.Buf{b}, sim.Now())
	out, ok := s.Egress.Dequeue()
	if !ok {
		t.Fatalf("no egress (missed=%d dropped=%d)", s.Data().Missed.Load(), s.Data().Dropped.Load())
	}
	// Must be GTP-U encapsulated toward the eNodeB.
	teid, err := gtp.DecapGPDU(out)
	if err != nil {
		t.Fatalf("egress not GTP-U: %v", err)
	}
	if teid != 0x100+2002 {
		t.Fatalf("downlink teid = %#x", teid)
	}
	var ip pkt.IPv4
	if err := ip.DecodeFromBytes(out.Bytes()); err != nil {
		t.Fatal(err)
	}
	if ip.Dst != res.UEAddr {
		t.Fatalf("inner dst = %s", pkt.FormatIPv4(ip.Dst))
	}
	out.Free()
}

func TestSliceUnknownUserDropped(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 3, UserHint: 64})
	pool := pkt.NewPool(2048, 128)
	b := buildUplink(pool, 0xdeadbeef, 1, 2, 3, 80)
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if s.Data().Missed.Load() != 1 || s.Data().Forwarded.Load() != 0 {
		t.Fatalf("missed=%d forwarded=%d", s.Data().Missed.Load(), s.Data().Forwarded.Load())
	}
}

func TestSliceBatchedUpdatesVisibleAfterSync(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 4, UserHint: 64, SyncEvery: 32})
	res, err := s.Control().Attach(AttachSpec{IMSI: 9, ENBAddr: 1, DownlinkTEID: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(2048, 128)
	// Batching delays visibility by up to SyncEvery packets (§7.2): the
	// first 32 packets all miss (the update sits in the queue), and the
	// sync after them makes packet 33 hit.
	batch := make([]*pkt.Buf, 32)
	for i := range batch {
		batch[i] = buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
	}
	s.Data().ProcessUplinkBatch(batch, sim.Now())
	if s.Data().Missed.Load() != 32 {
		t.Fatalf("pre-sync packets should miss, missed=%d", s.Data().Missed.Load())
	}
	b2 := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b2}, sim.Now())
	if s.Data().Forwarded.Load() != 1 {
		t.Fatal("post-sync packet should hit")
	}
	drainEgress(s)
}

func TestSlicePCEFDropRule(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 5, UserHint: 64})
	res := attachOne(t, s, 5005)
	// Block DNS.
	err := s.PCEF().Install(pcef.Rule{
		ID: 1, Precedence: 1, Action: pcef.ActionDrop,
		Filter: bpf.FilterSpec{Proto: pkt.ProtoUDP, DstPortLo: 53, DstPortHi: 53},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(2048, 128)
	blocked := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 53)
	allowed := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
	s.Data().ProcessUplinkBatch([]*pkt.Buf{blocked, allowed}, sim.Now())
	if s.Data().Forwarded.Load() != 1 || s.Data().Dropped.Load() != 1 {
		t.Fatalf("forwarded=%d dropped=%d", s.Data().Forwarded.Load(), s.Data().Dropped.Load())
	}
	ue := s.Control().Lookup(5005)
	var dropped uint64
	ue.ReadCounters(func(c *state.CounterState) { dropped = c.DroppedPackets })
	if dropped != 1 {
		t.Fatalf("per-user drop counter = %d", dropped)
	}
	drainEgress(s)
}

func TestSliceQoSPolicing(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 6, UserHint: 64})
	res, err := s.Control().Attach(AttachSpec{
		IMSI: 6006, ENBAddr: 1, DownlinkTEID: 2,
		AMBRUplink: 8 * 3000, // 3000 B/s => burst 3000 B minimum
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Data().SyncUpdates()
	pool := pkt.NewPool(2048, 128)
	now := sim.Now()
	// Each inner packet is 60 bytes; the burst allows ~50 packets.
	sent, forwarded0 := 0, s.Data().Forwarded.Load()
	for i := 0; i < 200; i++ {
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
		s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, now)
		sent++
	}
	forwarded := s.Data().Forwarded.Load() - forwarded0
	if forwarded == 0 || forwarded >= uint64(sent) {
		t.Fatalf("policing ineffective: forwarded %d of %d", forwarded, sent)
	}
	drainEgress(s)
}

func TestSliceHandoverRedirectsDownlink(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 7, UserHint: 64})
	res := attachOne(t, s, 7007)
	if err := s.Control().S1Handover(7007, pkt.IPv4Addr(192, 168, 0, 99), 0x9999, 42); err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(2048, 128)
	b := buildDownlink(pool, res.UEAddr, 80)
	s.Data().ProcessDownlinkBatch([]*pkt.Buf{b}, sim.Now())
	out, ok := s.Egress.Dequeue()
	if !ok {
		t.Fatal("no egress after handover")
	}
	var oip pkt.IPv4
	oip.DecodeFromBytes(out.Bytes())
	if oip.Dst != pkt.IPv4Addr(192, 168, 0, 99) {
		t.Fatalf("outer dst = %s, want new eNodeB", pkt.FormatIPv4(oip.Dst))
	}
	teid, err := gtp.DecapGPDU(out)
	if err != nil || teid != 0x9999 {
		t.Fatalf("teid after handover = %#x, %v", teid, err)
	}
	out.Free()
}

func TestSliceIoTFastPath(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 8, UserHint: 64, IoTTEIDBase: 0xE0000000, IoTTEIDCount: 100})
	teid, ok := s.Control().AllocateIoT()
	if !ok {
		t.Fatal("IoT allocation failed")
	}
	pool := pkt.NewPool(2048, 128)
	b := buildUplink(pool, teid, pkt.IPv4Addr(10, 99, 0, 1), 1, s.Config().CoreAddr, 80)
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if s.Data().IoTFast.Load() != 1 || s.Data().Forwarded.Load() != 1 {
		t.Fatalf("iot=%d forwarded=%d", s.Data().IoTFast.Load(), s.Data().Forwarded.Load())
	}
	// Pool exhaustion.
	s2 := NewSlice(SliceConfig{ID: 9, IoTTEIDBase: 10, IoTTEIDCount: 1})
	s2.Control().AllocateIoT()
	if _, ok := s2.Control().AllocateIoT(); ok {
		t.Fatal("IoT pool over-allocated")
	}
	drainEgress(s)
}

func TestSliceDetachRemovesDataPath(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 10, UserHint: 64})
	res := attachOne(t, s, 1010)
	if err := s.Control().Detach(1010); err != nil {
		t.Fatal(err)
	}
	s.Data().SyncUpdates()
	pool := pkt.NewPool(2048, 128)
	b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if s.Data().Missed.Load() != 1 {
		t.Fatal("detached user still reachable")
	}
	if err := s.Control().Detach(1010); err != ErrUserUnknown {
		t.Fatalf("double detach: %v", err)
	}
}

func TestSliceDuplicateAttachRejected(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 11, UserHint: 64})
	attachOne(t, s, 1)
	if _, err := s.Control().Attach(AttachSpec{IMSI: 1}); err != ErrUserExists {
		t.Fatalf("duplicate attach: %v", err)
	}
}

func TestSliceTwoLevelPromotionOnMiss(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 12, TableMode: TableTwoLevel, UserHint: 1024, PrimaryHint: 16})
	res, err := s.Control().Attach(AttachSpec{IMSI: 12, ENBAddr: 1, DownlinkTEID: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Do NOT sync: the user is only in the secondary table. A lookup
	// must still succeed (served from secondary) and request promotion.
	pool := pkt.NewPool(2048, 128)
	b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if s.Data().Forwarded.Load() != 1 {
		t.Fatalf("secondary-served packet not forwarded (missed=%d)", s.Data().Missed.Load())
	}
	// Control maintenance turns the promotion request into an update;
	// sync applies it to the primary.
	if n := s.Control().Maintain(sim.Now(), 0); n == 0 {
		t.Fatal("no promotion requests processed")
	}
	s.Data().SyncUpdates()
	if s.tl.LookupPrimaryOnly(res.UplinkTEID) == nil {
		t.Fatal("user not promoted to primary")
	}
	drainEgress(s)
}

func TestSliceChargingCollection(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 13, UserHint: 64})
	res := attachOne(t, s, 13)
	pool := pkt.NewPool(2048, 128)
	for i := 0; i < 10; i++ {
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
		s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	}
	cdr, err := s.Control().CollectUsage(13, sim.Now())
	if err != nil {
		t.Fatal(err)
	}
	if cdr.Delta.UplinkPackets != 10 || cdr.Delta.UplinkBytes == 0 {
		t.Fatalf("CDR: %+v", cdr.Delta)
	}
	drainEgress(s)
}

func TestParseInnerExtractsFlow(t *testing.T) {
	pool := pkt.NewPool(2048, 128)
	b := buildDownlink(pool, pkt.IPv4Addr(10, 0, 0, 5), 8080)
	f, plen, ok := parseInner(b)
	if !ok || plen != b.Len() {
		t.Fatalf("parse: ok=%v plen=%d", ok, plen)
	}
	if f.Dst != pkt.IPv4Addr(10, 0, 0, 5) || f.DstPort != 8080 || f.Proto != pkt.ProtoUDP {
		t.Fatalf("flow: %+v", f)
	}
	b.Free()
	// Garbage does not parse.
	g := pool.Get()
	g.SetBytes([]byte{0xff, 0xff})
	if _, _, ok := parseInner(g); ok {
		t.Fatal("garbage parsed")
	}
}

func TestDedicatedBearerTFTSelection(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 14, UserHint: 64})
	// Default bearer unpoliced; dedicated voice bearer with a tight MBR
	// and a TFT matching UDP :4000-4010.
	res, err := s.Control().Attach(AttachSpec{IMSI: 14, ENBAddr: 1, DownlinkTEID: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Control().AddDedicatedBearer(14, state.Bearer{
		EBI: 6, QCI: state.QCIConversationalVoice, ARP: 2,
		MBRUplink: 8 * 3000, // tiny: burst ~3000B then blocked
		TFT:       bpf.FilterSpec{Proto: pkt.ProtoUDP, DstPortLo: 4000, DstPortHi: 4010},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Data().SyncUpdates()
	pool := pkt.NewPool(2048, 128)
	now := sim.Now()

	// Voice-bearer traffic is policed by the dedicated bearer's MBR…
	voiceForwarded := 0
	for i := 0; i < 200; i++ {
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 4005)
		before := s.Data().Forwarded.Load()
		s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, now)
		if s.Data().Forwarded.Load() > before {
			voiceForwarded++
		}
	}
	if voiceForwarded == 0 || voiceForwarded >= 200 {
		t.Fatalf("dedicated bearer policing: %d/200 forwarded", voiceForwarded)
	}
	// …while default-bearer traffic is unaffected.
	base := s.Data().Forwarded.Load()
	for i := 0; i < 50; i++ {
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
		s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, now)
	}
	if got := s.Data().Forwarded.Load() - base; got != 50 {
		t.Fatalf("default bearer traffic policed: %d/50", got)
	}
	drainEgress(s)
}

func TestAddDedicatedBearerErrors(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 15, UserHint: 16})
	if err := s.Control().AddDedicatedBearer(404, state.Bearer{EBI: 6}); err != ErrUserUnknown {
		t.Fatalf("unknown user: %v", err)
	}
	s.Control().Attach(AttachSpec{IMSI: 15})
	for i := 0; i < state.MaxBearers-1; i++ {
		if err := s.Control().AddDedicatedBearer(15, state.Bearer{EBI: uint8(6 + i)}); err != nil {
			t.Fatalf("bearer %d: %v", i, err)
		}
	}
	if err := s.Control().AddDedicatedBearer(15, state.Bearer{EBI: 15}); err != ErrPoolExhausted {
		t.Fatalf("over-limit bearer: %v", err)
	}
}

func TestIdleModePagingCycle(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 16, UserHint: 64})
	res := attachOne(t, s, 16)
	pool := pkt.NewPool(2048, 128)

	// S1 release: the user goes idle.
	if err := s.Control().ReleaseAccess(16); err != nil {
		t.Fatal(err)
	}
	// Downlink for an idle user parks instead of dropping.
	b := buildDownlink(pool, res.UEAddr, 80)
	s.Data().ProcessDownlinkBatch([]*pkt.Buf{b}, sim.Now())
	if s.Data().PagedPackets.Load() != 1 {
		t.Fatalf("paged = %d (dropped=%d)", s.Data().PagedPackets.Load(), s.Data().Dropped.Load())
	}
	if _, ok := s.Egress.Dequeue(); ok {
		t.Fatal("idle user's packet escaped to egress")
	}

	// Service request: the UE answers the page from a new eNodeB.
	if err := s.Control().ResumeAccess(16, pkt.IPv4Addr(192, 168, 0, 77), 0x7700); err != nil {
		t.Fatal(err)
	}
	// The parked packet was re-queued onto the downlink ring; process it.
	batch := make([]*pkt.Buf, 8)
	n := s.Downlink.DequeueBatch(batch)
	if n != 1 {
		t.Fatalf("requeued packets = %d", n)
	}
	s.Data().ProcessDownlinkBatch(batch[:n], sim.Now())
	out, ok := s.Egress.Dequeue()
	if !ok {
		t.Fatal("paged packet not delivered after resume")
	}
	teid, err := gtp.DecapGPDU(out)
	if err != nil || teid != 0x7700 {
		t.Fatalf("delivered to teid %#x, %v", teid, err)
	}
	out.Free()

	// Release again: a re-parked packet gets one more chance per resume
	// and is dropped on its second idle pass.
	s.Control().ReleaseAccess(16)
	b2 := buildDownlink(pool, res.UEAddr, 80)
	s.Data().ProcessDownlinkBatch([]*pkt.Buf{b2}, sim.Now())
	if s.Data().PagedPackets.Load() != 2 {
		t.Fatalf("second park: paged=%d", s.Data().PagedPackets.Load())
	}
	// A packet that is still marked Paged (no intervening resume cleared
	// it) and meets an idle user again is dropped, not re-parked.
	b3 := buildDownlink(pool, res.UEAddr, 80)
	b3.Meta.Paged = true
	dropsBefore := s.Data().Dropped.Load()
	s.Data().ProcessDownlinkBatch([]*pkt.Buf{b3}, sim.Now())
	if s.Data().Dropped.Load() != dropsBefore+1 {
		t.Fatal("twice-idle packet not dropped")
	}
	if s.Data().PagedPackets.Load() != 2 {
		t.Fatalf("paged counter moved on the drop path: %d", s.Data().PagedPackets.Load())
	}
	if err := s.Control().ReleaseAccess(404); err != ErrUserUnknown {
		t.Fatalf("release unknown: %v", err)
	}
	if err := s.Control().ResumeAccess(404, 1, 1); err != ErrUserUnknown {
		t.Fatalf("resume unknown: %v", err)
	}
}

func TestGTPUEchoAnswered(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 17, UserHint: 16})
	pool := pkt.NewPool(2048, 128)
	// Build an echo request as an eNodeB path probe.
	b := pool.Get()
	total := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + gtp.HeaderLen
	data, _ := b.Append(total)
	enb, core := pkt.IPv4Addr(192, 168, 0, 1), s.Config().CoreAddr
	ip := pkt.IPv4{Length: uint16(total), TTL: 64, Protocol: pkt.ProtoUDP, Src: enb, Dst: core}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: gtp.PortGTPU, DstPort: gtp.PortGTPU, Length: uint16(pkt.UDPHeaderLen + gtp.HeaderLen)}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	h := gtp.Header{Type: gtp.MsgEchoRequest}
	h.SerializeTo(data[pkt.IPv4HeaderLen+pkt.UDPHeaderLen:])

	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if s.Data().EchoReplies.Load() != 1 {
		t.Fatalf("echo replies = %d (dropped=%d)", s.Data().EchoReplies.Load(), s.Data().Dropped.Load())
	}
	out, ok := s.Egress.Dequeue()
	if !ok {
		t.Fatal("no echo response on egress")
	}
	var oip pkt.IPv4
	oip.DecodeFromBytes(out.Bytes())
	if oip.Dst != enb || oip.Src != core {
		t.Fatalf("echo response addressing: %s -> %s", pkt.FormatIPv4(oip.Src), pkt.FormatIPv4(oip.Dst))
	}
	if !pkt.VerifyChecksum(out.Bytes()[:pkt.IPv4HeaderLen]) {
		t.Fatal("echo response checksum invalid")
	}
	off := oip.HeaderLen() + pkt.UDPHeaderLen
	if out.Bytes()[off+1] != gtp.MsgEchoResponse {
		t.Fatalf("message type = %#x", out.Bytes()[off+1])
	}
	out.Free()

	// A non-echo, non-G-PDU GTP message still drops.
	b2 := pool.Get()
	data2, _ := b2.Append(total)
	copy(data2, data)
	// The echo turned our template into a response; flip addressing back
	// and set an unsupported type.
	ip.SerializeTo(data2)
	h2 := gtp.Header{Type: gtp.MsgErrorIndication}
	h2.SerializeTo(data2[pkt.IPv4HeaderLen+pkt.UDPHeaderLen:])
	dropsBefore := s.Data().Dropped.Load()
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b2}, sim.Now())
	if s.Data().Dropped.Load() != dropsBefore+1 {
		t.Fatal("unsupported GTP message not dropped")
	}
}
