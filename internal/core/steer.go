package core

import (
	"pepc/internal/gtp"
	"pepc/internal/pkt"
)

// WireSteer is the batched demux entry point for the real-socket data
// plane: it takes a burst of raw wire datagrams (as the vectorized rx
// path lands them), classifies each exactly once — a GTP-U outer parse
// whose validated result is recorded in the packet metadata, or the
// downlink inner-flow parse — resolves every packet's owning slice under
// a single demux read lock, and enqueues runs of consecutive packets for
// the same (slice, direction) with one ring operation per run. It
// replaces the daemon's old peek-then-steer loop, which walked the outer
// headers twice per uplink packet and took the demux lock once per
// packet.
//
// Packets caught mid-migration fall back to the per-packet steer slow
// path (which handles the buffering handshake); everything else stays on
// the batch path. Single goroutine (one rx loop per WireSteer); the
// demux lock makes concurrent WireSteers over one node safe.
//
// Rx-queue ↔ worker affinity contract: in the multi-queue wire data
// plane (sockio.Group, pepcd -rxqueues) each rx queue owns exactly one
// WireSteer and one PoolCache, and the group's flow-steering program
// pins every flow (GTP TEID, or IPv4 dst for plain downlink) to one
// queue. A WireSteer may therefore assume it never sees two queues'
// interleavings of one flow — per-flow packet order within a steer batch
// is arrival order — and its scratch and cache stay core-local. The
// slice rings absorb the cross-queue fan-in: Uplink/Downlink are MPSC,
// so several rx queues may enqueue into one slice concurrently, while
// each slice's Egress ring stays SPSC and is drained by exactly one
// queue's egress loop (slice i → queue i mod Q in pepcd).
type WireSteer struct {
	n *Node
	// cache, when non-nil, is the free path for dropped packets —
	// typically the rx loop's PoolCache, so drops recycle into the same
	// per-worker level refills come from.
	cache *pkt.PoolCache

	live  []*pkt.Buf
	keys  []uint32
	up    []bool
	slice []int32
}

// Slice indices in WireSteer.slice with special meaning.
const (
	steerUnknown   int32 = -1
	steerMigrating int32 = -2
)

// ClassifyWire classifies one raw wire datagram for steering: a GTP-U
// envelope yields its TEID (uplink), anything else parsing as IPv4
// yields the destination UE address (downlink); ok is false for
// unparsable packets. The validated parse is recorded in the packet
// metadata, and metadata already recorded by an upstream classifier
// (e.g. the cluster steerer, which classifies once before fanning a
// burst out to per-node WireSteers) is trusted without re-walking the
// headers. Zero-alloc.
func ClassifyWire(b *pkt.Buf) (key uint32, uplink, ok bool) {
	if b.Meta.OuterParsed {
		return b.Meta.TEID, true, true
	}
	if b.Meta.FlowParsed {
		return b.Meta.Flow.Dst, false, true
	}
	if teid, hdrLen, err := gtp.ParseOuter(b.Bytes()); err == nil {
		b.Meta.TEID = teid
		b.Meta.OuterLen = uint16(hdrLen)
		b.Meta.OuterParsed = true
		return teid, true, true
	}
	if flow, _, ok := parseInner(b); ok {
		b.Meta.Flow = flow
		b.Meta.FlowParsed = true
		return flow.Dst, false, true
	}
	return 0, false, false
}

// NewWireSteer returns a steerer for bursts of up to batch packets
// (scratch grows if larger bursts arrive). cache may be nil.
func (n *Node) NewWireSteer(batch int, cache *pkt.PoolCache) *WireSteer {
	if batch <= 0 {
		batch = 32
	}
	ws := &WireSteer{n: n, cache: cache}
	ws.ensure(batch)
	return ws
}

func (ws *WireSteer) ensure(n int) {
	if cap(ws.live) >= n {
		return
	}
	ws.live = make([]*pkt.Buf, 0, n)
	ws.keys = make([]uint32, n)
	ws.up = make([]bool, n)
	ws.slice = make([]int32, n)
}

func (ws *WireSteer) free(b *pkt.Buf) {
	if ws.cache != nil {
		ws.cache.Put(b)
		return
	}
	b.Free()
}

// Steer classifies and routes one rx burst. It takes ownership of every
// buffer: each is enqueued to a slice ring, diverted to a migration
// buffer, or freed (unparsable, unknown user, ring full).
func (ws *WireSteer) Steer(bufs []*pkt.Buf) {
	d := ws.n.demux
	ws.ensure(len(bufs))

	// Stage 1: parse once and compact. GTP-U envelopes steer by TEID
	// with the validated outer parse recorded for the slice's decap;
	// everything else is downlink plain IP steering by destination UE
	// address. Non-G-PDU GTP messages and unparsable packets drop here,
	// as the per-packet path did. A packet already classified upstream
	// (the cluster steerer parses once for the whole fleet) is trusted
	// via its metadata rather than re-walked.
	live := ws.live[:0]
	var unknown uint64
	for _, b := range bufs {
		key, up, ok := ClassifyWire(b)
		if !ok {
			unknown++
			ws.free(b)
			continue
		}
		ws.keys[len(live)] = key
		ws.up[len(live)] = up
		live = append(live, b)
	}

	// Stage 2: resolve owners under one demux read lock for the whole
	// burst instead of one per packet.
	d.mu.RLock()
	for i := range live {
		if d.migrating[ws.keys[i]] != nil {
			ws.slice[i] = steerMigrating
			continue
		}
		var s int
		var ok bool
		if ws.up[i] {
			s, ok = d.byTEID[ws.keys[i]]
		} else {
			s, ok = d.byIP[ws.keys[i]]
		}
		if !ok {
			ws.slice[i] = steerUnknown
			continue
		}
		ws.slice[i] = int32(s)
	}
	d.mu.RUnlock()

	// Stage 3: enqueue maximal runs of consecutive packets bound for the
	// same slice and direction with one ring operation per run — wire
	// bursts from one eNodeB are exactly such runs.
	var steered uint64
	i := 0
	for i < len(live) {
		switch ws.slice[i] {
		case steerUnknown:
			unknown++
			ws.free(live[i])
			i++
			continue
		case steerMigrating:
			// Slow path: re-resolves and buffers under the write lock.
			ws.n.steer(ws.keys[i], live[i], ws.up[i])
			i++
			continue
		}
		j := i + 1
		for j < len(live) && ws.slice[j] == ws.slice[i] && ws.up[j] == ws.up[i] {
			j++
		}
		s := ws.n.slices[ws.slice[i]]
		var acc int
		if ws.up[i] {
			acc = s.Uplink.EnqueueBatch(live[i:j])
		} else {
			acc = s.Downlink.EnqueueBatch(live[i:j])
		}
		steered += uint64(acc)
		for k := i + acc; k < j; k++ {
			ws.free(live[k]) // ring full: tail drop
		}
		i = j
	}
	if steered > 0 {
		d.Steered.Add(steered)
	}
	if unknown > 0 {
		d.Unknown.Add(unknown)
	}
	for i := range live {
		live[i] = nil
	}
	ws.live = live[:0]
}
