package core

import (
	"testing"

	"pepc/internal/gtp"
	"pepc/internal/pkt"
	"pepc/internal/sim"
)

// TestGTPUEchoWithSequenceAnswered covers the 29.281 path-management
// contract: an echo request carrying a sequence number is answered with
// the same sequence number (§7.2.2 — the response echoes the request's
// sequence), reversed addressing, and a still-valid outer checksum (the
// in-place swap relies on ones-complement commutativity).
func TestGTPUEchoWithSequenceAnswered(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 21, UserHint: 16})
	pool := pkt.NewPool(2048, 128)
	b := pool.Get()
	const seq = uint16(0xBEEF)
	gtpLen := gtp.HeaderLenOpt
	total := pkt.IPv4HeaderLen + pkt.UDPHeaderLen + gtpLen
	data, _ := b.Append(total)
	enb, coreAddr := pkt.IPv4Addr(192, 168, 0, 7), s.Config().CoreAddr
	ip := pkt.IPv4{Length: uint16(total), TTL: 64, Protocol: pkt.ProtoUDP, Src: enb, Dst: coreAddr}
	ip.SerializeTo(data)
	u := pkt.UDP{SrcPort: gtp.PortGTPU, DstPort: gtp.PortGTPU, Length: uint16(pkt.UDPHeaderLen + gtpLen)}
	u.SerializeTo(data[pkt.IPv4HeaderLen:])
	h := gtp.Header{Type: gtp.MsgEchoRequest, HasSeq: true, Seq: seq, Length: 4}
	if _, err := h.SerializeTo(data[pkt.IPv4HeaderLen+pkt.UDPHeaderLen:]); err != nil {
		t.Fatal(err)
	}

	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if s.Data().EchoReplies.Load() != 1 {
		t.Fatalf("echo replies = %d (dropped=%d)", s.Data().EchoReplies.Load(), s.Data().Dropped.Load())
	}
	out, ok := s.Egress.Dequeue()
	if !ok {
		t.Fatal("no echo response on egress")
	}
	defer out.Free()
	var oip pkt.IPv4
	if err := oip.DecodeFromBytes(out.Bytes()); err != nil {
		t.Fatal(err)
	}
	if oip.Dst != enb || oip.Src != coreAddr {
		t.Fatalf("echo response addressing: %s -> %s", pkt.FormatIPv4(oip.Src), pkt.FormatIPv4(oip.Dst))
	}
	if !pkt.VerifyChecksum(out.Bytes()[:pkt.IPv4HeaderLen]) {
		t.Fatal("echo response checksum invalid after address swap")
	}
	var g gtp.Header
	if err := g.DecodeFromBytes(out.Bytes()[oip.HeaderLen()+pkt.UDPHeaderLen:]); err != nil {
		t.Fatal(err)
	}
	if g.Type != gtp.MsgEchoResponse {
		t.Fatalf("message type = %#x", g.Type)
	}
	if !g.HasSeq || g.Seq != seq {
		t.Fatalf("sequence not echoed: HasSeq=%v Seq=%#x want %#x", g.HasSeq, g.Seq, seq)
	}
}
