package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// TestSeqlockStressConcurrentSignaling drives a control thread through
// attach/handover/detach/re-attach churn (inline procedures plus the
// batched signaling ring) while the data thread processes full-rate
// uplink batches against the same population. Under -race the seqlock
// readers fall back to the lock and the detector checks the discipline;
// in normal builds the optimistic copy-and-validate path and the
// free-list recycling fence are exercised for real — torn reads or a
// prematurely recycled context would corrupt tunnel state and break the
// accounting below.
func TestSeqlockStressConcurrentSignaling(t *testing.T) {
	const users = 128
	ctrlIters := 20_000
	if raceEnabled || testing.Short() {
		ctrlIters = 2_000
	}

	s := NewSlice(SliceConfig{ID: 1, UserHint: users * 2})
	specs := make([]AttachSpec, users)
	results := make([]AttachResult, users)
	for i := 0; i < users; i++ {
		specs[i] = AttachSpec{
			IMSI: uint64(1000 + i), ENBAddr: pkt.IPv4Addr(192, 168, 0, 1),
			DownlinkTEID: 0x100 + uint32(i), ECGI: 7, TAI: 3,
			AMBRUplink: 8 * 1_000_000_000, // policed but never the bottleneck
		}
		res, err := s.Control().Attach(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	s.Data().SyncUpdates()

	var ctrlDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer ctrlDone.Store(true)
		cp := s.Control()
		for i := 0; i < ctrlIters; i++ {
			u := i % users
			imsi := specs[u].IMSI
			switch i % 4 {
			case 0:
				_ = cp.AttachEvent(imsi)
			case 1:
				_ = cp.S1Handover(imsi, pkt.IPv4Addr(192, 168, 1, byte(i)), 0x8000+uint32(i), uint32(i))
			case 2:
				// Full detach/re-attach cycle: exercises RemoveBatch-free
				// inline path, the free list and the recycling fence while
				// the data thread may still hold the old pointer.
				if err := cp.Detach(imsi); err == nil {
					if _, err := cp.Attach(specs[u]); err != nil {
						t.Errorf("re-attach %d: %v", imsi, err)
						return
					}
				}
			case 3:
				cp.EnqueueSignal(SigEvent{Kind: SigS1Handover, IMSI: imsi,
					ENBAddr: pkt.IPv4Addr(192, 168, 2, byte(i)), DownlinkTEID: 0x9000 + uint32(i), ECGI: uint32(i)})
				if i%64 == 3 {
					for cp.DrainSignaling(0) > 0 {
					}
				}
			}
		}
		for cp.DrainSignaling(0) > 0 {
		}
	}()

	// Data thread: full-rate uplink batches round-robin over the original
	// identifiers. Re-attached users keep the same TEID (recycled) or get
	// a fresh one (fence not yet cleared) — either a forward or a clean
	// miss; never a crash or a torn read.
	pool := pkt.NewPool(2048, 256)
	const batchSize = 32
	batch := make([]*pkt.Buf, 0, batchSize)
	sent := 0
	next := 0
	// Keep going until the control thread finishes AND a minimum volume
	// has flowed, so forwarding is exercised both during and after churn.
	for sent < 4096 || !ctrlDone.Load() {
		batch = batch[:0]
		for i := 0; i < batchSize; i++ {
			r := results[next%users]
			next++
			batch = append(batch, buildUplink(pool, r.UplinkTEID, r.UEAddr,
				pkt.IPv4Addr(192, 168, 0, 1), s.Config().CoreAddr, 80))
		}
		s.Data().ProcessUplinkBatch(batch, sim.Now())
		sent += batchSize
		drainEgress(s)
	}
	wg.Wait()
	s.Data().SyncUpdates()
	drainEgress(s)

	// Deterministic recycle: with the data plane quiesced, two syncs clear
	// the fence for the oldest retiree, so this attach must reuse it.
	if err := s.Control().Detach(specs[0].IMSI); err != nil {
		t.Fatal(err)
	}
	s.Data().SyncUpdates()
	s.Data().SyncUpdates()
	if _, err := s.Control().Attach(specs[0]); err != nil {
		t.Fatal(err)
	}
	s.Data().SyncUpdates()

	fwd := s.Data().Forwarded.Load()
	drp := s.Data().Dropped.Load()
	if fwd+drp != uint64(sent) {
		t.Fatalf("packet accounting broken: forwarded=%d dropped=%d sent=%d", fwd, drp, sent)
	}
	if fwd == 0 {
		t.Fatal("no packets forwarded under signaling churn")
	}

	// Every surviving context is internally consistent.
	var cs state.ControlState
	alive := 0
	for i := 0; i < users; i++ {
		ue := s.Control().Lookup(specs[i].IMSI)
		if ue == nil {
			continue
		}
		alive++
		ue.ReadCtrlSnapshot(&cs)
		if cs.IMSI != specs[i].IMSI || !cs.Attached || cs.BearerCount == 0 {
			t.Fatalf("imsi %d: inconsistent context after churn: %+v", specs[i].IMSI, cs)
		}
		if cs.UplinkTEID == 0 || cs.UEAddr == 0 {
			t.Fatalf("imsi %d: zero identifiers after churn: %+v", specs[i].IMSI, cs)
		}
	}
	if alive != users {
		t.Fatalf("population leaked: %d of %d users alive", alive, users)
	}
	st := s.Control().Stats()
	if st.Handovers == 0 || st.Detaches == 0 {
		t.Fatalf("churn did not execute: %+v", st)
	}
	if st.Recycles == 0 {
		t.Fatalf("free list never recycled a context: %+v", st)
	}
}
