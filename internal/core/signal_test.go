package core

import (
	"testing"

	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// applyInline executes a signaling event through the per-procedure entry
// points (the pre-batching path).
func applyInline(cp *ControlPlane, ev SigEvent) {
	switch ev.Kind {
	case SigAttachEvent:
		_ = cp.AttachEvent(ev.IMSI)
	case SigS1Handover:
		_ = cp.S1Handover(ev.IMSI, ev.ENBAddr, ev.DownlinkTEID, ev.ECGI)
	case SigDetach:
		_ = cp.Detach(ev.IMSI)
	}
}

// TestDrainSignalingMatchesInline: the batched drain must be
// observationally equivalent to executing the same event sequence through
// the inline procedure calls — same surviving users, same tunnel state,
// same event counters, same data-plane behaviour.
func TestDrainSignalingMatchesInline(t *testing.T) {
	for _, mode := range []TableMode{TableSingle, TableTwoLevel} {
		name := "single"
		if mode == TableTwoLevel {
			name = "twolevel"
		}
		t.Run(name, func(t *testing.T) {
			mk := func(id int) *Slice {
				s := NewSlice(SliceConfig{ID: id, TableMode: mode, UserHint: 64})
				for imsi := uint64(1); imsi <= 16; imsi++ {
					attachOne(t, s, imsi)
				}
				return s
			}
			inline, batched := mk(1), mk(2)

			// Mixed sequence: runs of handovers and attach events with
			// detaches interleaved, including events for unknown users.
			var evs []SigEvent
			for i := uint64(0); i < 48; i++ {
				imsi := 1 + i%16
				switch i % 6 {
				case 0, 3:
					evs = append(evs, SigEvent{Kind: SigS1Handover, IMSI: imsi,
						ENBAddr: pkt.IPv4Addr(192, 168, 1, byte(i)), DownlinkTEID: 0x9000 + uint32(i), ECGI: 40 + uint32(i)})
				case 1, 4:
					evs = append(evs, SigEvent{Kind: SigAttachEvent, IMSI: imsi})
				case 2:
					evs = append(evs, SigEvent{Kind: SigAttachEvent, IMSI: 999}) // unknown
				case 5:
					if i > 24 {
						evs = append(evs, SigEvent{Kind: SigDetach, IMSI: imsi})
					}
				}
			}

			for _, ev := range evs {
				applyInline(inline.Control(), ev)
			}
			for _, ev := range evs {
				if !batched.Control().EnqueueSignal(ev) {
					t.Fatal("signal ring overflowed")
				}
			}
			for batched.Control().DrainSignaling(0) > 0 {
			}
			inline.Data().SyncUpdates()
			batched.Data().SyncUpdates()

			is, bs := inline.Control().Stats(), batched.Control().Stats()
			if is.Attaches != bs.Attaches || is.Handovers != bs.Handovers || is.Detaches != bs.Detaches {
				t.Fatalf("counters diverge: inline=%+v batched=%+v", is, bs)
			}
			var ic, bc state.ControlState
			for imsi := uint64(1); imsi <= 16; imsi++ {
				iu := inline.Control().Lookup(imsi)
				bu := batched.Control().Lookup(imsi)
				if (iu == nil) != (bu == nil) {
					t.Fatalf("imsi %d: inline present=%v batched present=%v", imsi, iu != nil, bu != nil)
				}
				if iu == nil {
					continue
				}
				iu.ReadCtrlSnapshot(&ic)
				bu.ReadCtrlSnapshot(&bc)
				if ic.ENBAddr != bc.ENBAddr || ic.DownlinkTEID != bc.DownlinkTEID ||
					ic.ECGI != bc.ECGI || ic.Attached != bc.Attached || ic.TAICount != bc.TAICount {
					t.Fatalf("imsi %d control state diverges:\ninline:  %+v\nbatched: %+v", imsi, ic, bc)
				}
			}

			// Detached users are gone from the data path too.
			pool := pkt.NewPool(2048, 64)
			bu := batched.Control().Lookup(2) // 2 was never detached (i%6==5 hits odd offsets)
			if bu == nil {
				t.Fatal("expected imsi 2 to survive")
			}
			bu.ReadCtrlSnapshot(&bc)
			b := buildUplink(pool, bc.UplinkTEID, bc.UEAddr, pkt.IPv4Addr(192, 168, 0, 1), batched.Config().CoreAddr, 80)
			batched.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
			if batched.Data().Forwarded.Load() != 1 {
				t.Fatalf("surviving user not forwarded (missed=%d)", batched.Data().Missed.Load())
			}
			drainEgress(batched)
		})
	}
}

// TestEnqueueSignalBackpressure: a full ring rejects events, counts the
// drops, and recovers after a drain.
func TestEnqueueSignalBackpressure(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 1, UserHint: 16})
	cp := s.Control()
	const extra = 10
	rejected := 0
	for i := 0; i < sigRingCap+extra; i++ {
		if !cp.EnqueueSignal(SigEvent{Kind: SigAttachEvent, IMSI: 999}) {
			rejected++
		}
	}
	if rejected != extra {
		t.Fatalf("rejected %d enqueues, want %d", rejected, extra)
	}
	if got := cp.Stats().SigDrops; got != extra {
		t.Fatalf("SigDrops = %d, want %d", got, extra)
	}
	if got := cp.SignalBacklog(); got != sigRingCap {
		t.Fatalf("backlog = %d, want %d", got, sigRingCap)
	}
	drained := 0
	for {
		n := cp.DrainSignaling(0)
		if n == 0 {
			break
		}
		drained += n
	}
	if drained != sigRingCap {
		t.Fatalf("drained %d, want %d", drained, sigRingCap)
	}
	if !cp.EnqueueSignal(SigEvent{Kind: SigAttachEvent, IMSI: 999}) {
		t.Fatal("enqueue after drain rejected")
	}
}

// TestAttachRecyclesDetachedContext: after the data-plane sync fence
// passes, an attach reuses the retired context and its identifier pair
// instead of allocating fresh ones.
func TestAttachRecyclesDetachedContext(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	res1 := attachOne(t, s, 100)
	if err := s.Control().Detach(100); err != nil {
		t.Fatal(err)
	}
	// Two sync cycles clear the fence (delete applied, no in-flight batch).
	s.Data().SyncUpdates()
	s.Data().SyncUpdates()
	res2 := attachOne(t, s, 200)
	if got := s.Control().Stats().Recycles; got != 1 {
		t.Fatalf("Recycles = %d, want 1", got)
	}
	if res2.UplinkTEID != res1.UplinkTEID || res2.UEAddr != res1.UEAddr {
		t.Fatalf("identifiers not recycled: got teid=%#x addr=%#x, want teid=%#x addr=%#x",
			res2.UplinkTEID, res2.UEAddr, res1.UplinkTEID, res1.UEAddr)
	}
	// The recycled context carries no stale state.
	var cs state.ControlState
	s.Control().Lookup(200).ReadCtrlSnapshot(&cs)
	if cs.IMSI != 200 || !cs.Attached || cs.BearerCount != 1 {
		t.Fatalf("recycled context state wrong: %+v", cs)
	}
	_, cnt := s.Control().Lookup(200).Snapshot()
	if cnt != (state.CounterState{}) {
		t.Fatalf("recycled context kept counters: %+v", cnt)
	}

	// Before the fence clears, the context must NOT be reused.
	if err := s.Control().Detach(200); err != nil {
		t.Fatal(err)
	}
	res3 := attachOne(t, s, 300) // no intervening double sync before Attach
	if res3.UplinkTEID == res2.UplinkTEID {
		t.Fatal("context recycled before the data-plane fence cleared")
	}
}

// TestPromoteDropsCounted: overflowing the promotion queue is not silent —
// requestPromotion counts discarded requests and Stats surfaces them.
func TestPromoteDropsCounted(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 1, TableMode: TableTwoLevel, UserHint: 16})
	cp := s.Control()
	ue := &state.UE{}
	const extra = 7
	for i := 0; i < (1<<12)+extra; i++ {
		cp.requestPromotion(ue)
	}
	if got := cp.Stats().PromoteDrops; got != extra {
		t.Fatalf("PromoteDrops = %d, want %d", got, extra)
	}
}
