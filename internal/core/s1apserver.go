package core

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"sync/atomic"

	"pepc/internal/hss"
	"pepc/internal/nas"
	"pepc/internal/s1ap"
	"pepc/internal/sctp"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// S1APServer terminates one eNodeB's S1-MME association on a slice's
// control thread: it parses S1AP/NAS request messages and drives the
// attach procedure (paper §4.2: "we have built support for S1AP protocol
// ... and NAS messages ... We presently only have support for handling
// the attach procedure over S1AP/NAS"), plus X2 path switch and UE
// context release, which map onto the control plane's handover and
// detach operations.
type S1APServer struct {
	cp    *ControlPlane
	assoc *sctp.Assoc

	sessions    map[uint32]*attachSession // keyed by eNB UE S1AP id
	imsiByMME   map[uint32]uint64         // MME UE id → IMSI after attach
	nextMMEUEID uint32

	// registrar, when set, is told about users entering (register=true)
	// and leaving (false) this slice so the node demux can steer their
	// traffic; Node.ServeS1AP wires it.
	registrar func(teid, ueIP uint32, imsi uint64, register bool)

	// Counters for the control-plane experiments (Figs 10, 11).
	AttachesCompleted atomic.Uint64
	AttachesFailed    atomic.Uint64
	Messages          atomic.Uint64
}

type attachState uint8

const (
	awaitingAuthResponse attachState = iota
	awaitingSecurityMode
	awaitingContextSetup
	awaitingAttachComplete
)

type attachSession struct {
	state   attachState
	imsi    uint64
	enbUEID uint32
	mmeUEID uint32
	vec     hss.Vector
	tai     uint16
	ecgi    uint32
	nasSeq  uint8
	res     AttachResult
}

// S1AP server errors.
var (
	ErrNoProxy = errors.New("core: S1AP attach requires a proxy (HSS)")
)

// NewS1APServer binds a server to a slice control plane and an
// established association.
func NewS1APServer(cp *ControlPlane, assoc *sctp.Assoc) *S1APServer {
	return &S1APServer{
		cp:        cp,
		assoc:     assoc,
		sessions:  make(map[uint32]*attachSession),
		imsiByMME: make(map[uint32]uint64),
	}
}

// SetRegistrar installs the demux registration callback.
func (srv *S1APServer) SetRegistrar(fn func(teid, ueIP uint32, imsi uint64, register bool)) {
	srv.registrar = fn
}

// Serve processes messages until the association closes or stop closes.
// It returns the association's terminal error (ErrClosed on clean
// shutdown).
func (srv *S1APServer) Serve(stop <-chan struct{}) error {
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		msg, err := srv.assoc.Recv()
		if err != nil {
			return err
		}
		srv.Messages.Add(1)
		if err := srv.handle(msg.Data); err != nil {
			// Per-message errors are protocol-level (malformed or
			// out-of-state messages); the association survives them.
			continue
		}
	}
}

// HandleOne processes a single raw S1AP message — the synchronous entry
// used by tests and by callers that multiplex associations themselves.
func (srv *S1APServer) HandleOne(data []byte) error {
	srv.Messages.Add(1)
	return srv.handle(data)
}

func (srv *S1APServer) handle(data []byte) error {
	pdu, err := s1ap.Unmarshal(data)
	if err != nil {
		return err
	}
	switch {
	case pdu.Procedure == s1ap.ProcInitialUEMessage && pdu.Type == s1ap.PDUInitiating:
		return srv.onInitialUE(pdu)
	case pdu.Procedure == s1ap.ProcUplinkNASTransport:
		return srv.onUplinkNAS(pdu)
	case pdu.Procedure == s1ap.ProcInitialContextSetup && pdu.Type == s1ap.PDUSuccessful:
		return srv.onContextSetupResponse(pdu)
	case pdu.Procedure == s1ap.ProcPathSwitchRequest && pdu.Type == s1ap.PDUInitiating:
		return srv.onPathSwitch(pdu)
	case pdu.Procedure == s1ap.ProcHandoverPreparation && pdu.Type == s1ap.PDUInitiating:
		return srv.onHandoverRequired(pdu)
	case pdu.Procedure == s1ap.ProcHandoverNotification && pdu.Type == s1ap.PDUInitiating:
		return srv.onHandoverNotify(pdu)
	case pdu.Procedure == s1ap.ProcUEContextRelease:
		return srv.onContextRelease(pdu)
	default:
		return fmt.Errorf("core: unhandled S1AP procedure %d", pdu.Procedure)
	}
}

// onInitialUE starts the attach: authenticate against the HSS and send
// the NAS challenge.
func (srv *S1APServer) onInitialUE(pdu *s1ap.PDU) error {
	m, err := s1ap.ParseInitialUEMessage(pdu)
	if err != nil {
		return err
	}
	attach, err := nas.UnmarshalAttachRequest(m.NASPDU)
	if err != nil {
		return err
	}
	if srv.cp.proxy == nil {
		return ErrNoProxy
	}
	vec, err := srv.cp.proxy.Authenticate(attach.IMSI)
	if err != nil {
		srv.AttachesFailed.Add(1)
		return err
	}
	srv.nextMMEUEID++
	sess := &attachSession{
		state:   awaitingAuthResponse,
		imsi:    attach.IMSI,
		enbUEID: m.ENBUEID,
		mmeUEID: srv.nextMMEUEID,
		vec:     vec,
		tai:     m.TAI,
		ecgi:    m.ECGI,
	}
	srv.sessions[m.ENBUEID] = sess

	challenge := &nas.AuthenticationRequest{RAND: vec.RAND, AUTN: vec.AUTN}
	dl := &s1ap.NASTransport{
		MMEUEID: sess.mmeUEID,
		ENBUEID: sess.enbUEID,
		NASPDU:  challenge.Marshal(),
	}
	return srv.assoc.Send(0, sctp.PPIDS1AP, dl.Marshal())
}

// onUplinkNAS advances the attach FSM on UE responses.
func (srv *S1APServer) onUplinkNAS(pdu *s1ap.PDU) error {
	m, err := s1ap.ParseNASTransport(pdu)
	if err != nil {
		return err
	}
	sess, ok := srv.sessions[m.ENBUEID]
	if !ok {
		return fmt.Errorf("core: NAS for unknown session %d", m.ENBUEID)
	}
	inner, _, _, _, err := nas.UnwrapProtected(m.NASPDU)
	if err != nil {
		return err
	}
	hdr, err := nas.DecodeHeader(inner)
	if err != nil {
		return err
	}
	switch {
	case hdr.Type == nas.MsgAuthenticationResponse && sess.state == awaitingAuthResponse:
		resp, err := nas.UnmarshalAuthenticationResponse(inner)
		if err != nil {
			return err
		}
		if subtle.ConstantTimeCompare(resp.RES[:], sess.vec.XRES[:]) != 1 {
			delete(srv.sessions, m.ENBUEID)
			srv.AttachesFailed.Add(1)
			return errors.New("core: authentication failed (RES mismatch)")
		}
		sess.state = awaitingSecurityMode
		smc := (&nas.SecurityModeCommand{SelectedAlgorithms: 0x12}).Marshal()
		sess.nasSeq++
		prot := nas.MarshalProtected(smc, nas.ComputeMAC(sess.vec.KASME, sess.nasSeq, smc), sess.nasSeq)
		dl := &s1ap.NASTransport{MMEUEID: sess.mmeUEID, ENBUEID: sess.enbUEID, NASPDU: prot}
		return srv.assoc.Send(0, sctp.PPIDS1AP, dl.Marshal())

	case hdr.Type == nas.MsgSecurityModeComplete && sess.state == awaitingSecurityMode:
		// Security established: create the consolidated user state and
		// set up the eNodeB context (attach accept rides inside).
		res, err := srv.cp.Attach(AttachSpec{
			IMSI: sess.imsi,
			TAI:  sess.tai,
			ECGI: sess.ecgi,
		})
		if err != nil {
			delete(srv.sessions, m.ENBUEID)
			srv.AttachesFailed.Add(1)
			return err
		}
		sess.res = res
		sess.state = awaitingContextSetup
		if srv.registrar != nil {
			srv.registrar(res.UplinkTEID, res.UEAddr, sess.imsi, true)
		}
		esm := (&nas.ActivateDefaultBearerRequest{
			EBI: 5, QCI: 9, UEAddr: res.UEAddr,
		}).Marshal()
		accept := (&nas.AttachAccept{
			GUTI: res.GUTI, TAI: sess.tai, TAIList: []uint16{sess.tai}, ESMContainer: esm,
		}).Marshal()
		sess.nasSeq++
		prot := nas.MarshalProtected(accept, nas.ComputeMAC(sess.vec.KASME, sess.nasSeq, accept), sess.nasSeq)
		ics := &s1ap.InitialContextSetupRequest{
			MMEUEID:    sess.mmeUEID,
			ENBUEID:    sess.enbUEID,
			UplinkTEID: res.UplinkTEID,
			CoreAddr:   srv.cp.s.cfg.CoreAddr,
			NASPDU:     prot,
		}
		return srv.assoc.Send(0, sctp.PPIDS1AP, ics.Marshal())

	case hdr.Type == nas.MsgAttachComplete && sess.state == awaitingAttachComplete:
		delete(srv.sessions, m.ENBUEID)
		srv.imsiByMME[sess.mmeUEID] = sess.imsi
		srv.AttachesCompleted.Add(1)
		return nil

	default:
		return fmt.Errorf("core: NAS type %#x in state %d", hdr.Type, sess.state)
	}
}

// onContextSetupResponse records the eNodeB's downlink tunnel endpoint.
func (srv *S1APServer) onContextSetupResponse(pdu *s1ap.PDU) error {
	m, err := s1ap.ParseInitialContextSetupResponse(pdu)
	if err != nil {
		return err
	}
	sess, ok := srv.sessions[m.ENBUEID]
	if !ok || sess.state != awaitingContextSetup {
		return fmt.Errorf("core: unexpected context setup response for %d", m.ENBUEID)
	}
	ue := srv.cp.Lookup(sess.imsi)
	if ue == nil {
		return ErrUserUnknown
	}
	ue.WriteCtrl(func(c *state.ControlState) {
		c.DownlinkTEID = m.DownlinkTEID
		c.ENBAddr = m.ENBAddr
		c.LastActive = sim.Now()
	})
	sess.state = awaitingAttachComplete
	return nil
}

// onPathSwitch applies an X2 handover and acknowledges it.
func (srv *S1APServer) onPathSwitch(pdu *s1ap.PDU) error {
	m, err := s1ap.ParsePathSwitchRequest(pdu)
	if err != nil {
		return err
	}
	imsi, ok := srv.imsiByMME[m.MMEUEID]
	if !ok {
		return fmt.Errorf("core: path switch for unknown MME UE id %d", m.MMEUEID)
	}
	if err := srv.cp.S1Handover(imsi, m.ENBAddr, m.DownlinkTEID, m.ECGI); err != nil {
		return err
	}
	ack := &s1ap.PathSwitchAck{MMEUEID: m.MMEUEID, ENBUEID: m.ENBUEID}
	return srv.assoc.Send(0, sctp.PPIDS1AP, ack.Marshal())
}

// onHandoverRequired starts an S1 handover (source and target eNodeBs
// not directly connected, §3.4 case b): the core validates the UE and
// answers with a handover command; the UE's tunnel state only changes
// when the target eNodeB confirms arrival via Handover Notify.
func (srv *S1APServer) onHandoverRequired(pdu *s1ap.PDU) error {
	m, err := s1ap.ParseHandoverRequired(pdu)
	if err != nil {
		return err
	}
	if _, ok := srv.imsiByMME[m.MMEUEID]; !ok {
		return fmt.Errorf("core: handover for unknown MME UE id %d", m.MMEUEID)
	}
	// Handover command back to the source eNodeB (successful outcome of
	// the preparation procedure).
	cmd := s1ap.PDU{Type: s1ap.PDUSuccessful, Procedure: s1ap.ProcHandoverPreparation}
	cmd.IEs = append(cmd.IEs,
		s1ap.IE{ID: s1ap.IEMMEUES1APID, Data: be32(m.MMEUEID)},
		s1ap.IE{ID: s1ap.IEENBUES1APID, Data: be32(m.ENBUEID)},
		s1ap.IE{ID: s1ap.IETargetENBID, Data: be32(m.TargetENB)},
	)
	return srv.assoc.Send(0, sctp.PPIDS1AP, cmd.Marshal())
}

// onHandoverNotify completes an S1 handover: the target eNodeB reports
// the UE arrived; the control thread rewrites the downlink tunnel state
// (the paper's S1-handover state operation, §4.2).
func (srv *S1APServer) onHandoverNotify(pdu *s1ap.PDU) error {
	m, err := s1ap.ParseHandoverNotify(pdu)
	if err != nil {
		return err
	}
	imsi, ok := srv.imsiByMME[m.MMEUEID]
	if !ok {
		return fmt.Errorf("core: handover notify for unknown MME UE id %d", m.MMEUEID)
	}
	return srv.cp.S1Handover(imsi, m.ENBAddr, m.DownlinkTEID, m.ECGI)
}

func be32(v uint32) []byte {
	return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// onContextRelease detaches the user.
func (srv *S1APServer) onContextRelease(pdu *s1ap.PDU) error {
	m, err := s1ap.ParseUEContextRelease(pdu)
	if err != nil {
		return err
	}
	imsi, ok := srv.imsiByMME[m.MMEUEID]
	if !ok {
		return fmt.Errorf("core: release for unknown MME UE id %d", m.MMEUEID)
	}
	delete(srv.imsiByMME, m.MMEUEID)
	if srv.registrar != nil {
		ue := srv.cp.Lookup(imsi)
		if ue != nil {
			var teid, ueIP uint32
			ue.ReadCtrl(func(c *state.ControlState) {
				teid = c.UplinkTEID
				ueIP = c.UEAddr
			})
			srv.registrar(teid, ueIP, imsi, false)
		}
	}
	return srv.cp.Detach(imsi)
}
