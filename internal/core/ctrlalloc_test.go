package core

import (
	"testing"

	"pepc/internal/pkt"
	"pepc/internal/sim"
)

// TestAttachDetachCycleZeroAlloc: once the free list is warm, a full
// attach→detach cycle (including the data-plane sync that applies both
// index updates) allocates nothing — the context, its identifiers and
// the index slots are all recycled.
func TestAttachDetachCycleZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	spec := AttachSpec{
		IMSI: 7, ENBAddr: pkt.IPv4Addr(192, 168, 0, 1), DownlinkTEID: 9,
		ECGI: 7, TAI: 3, AMBRUplink: 8 * 10_000_000,
	}
	cycle := func() {
		if _, err := s.Control().Attach(spec); err != nil {
			t.Fatal(err)
		}
		if err := s.Control().Detach(7); err != nil {
			t.Fatal(err)
		}
		s.Data().SyncUpdates()
	}
	// Warm: first cycles allocate the context, the free list backing
	// array and map growth; the fence needs two syncs before reuse kicks
	// in.
	for i := 0; i < 64; i++ {
		cycle()
	}
	if got := s.Control().Stats().Recycles; got == 0 {
		t.Fatal("free list inactive after warmup")
	}
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("attach→detach cycle allocates %.1f allocs/op, want 0", avg)
	}
}

// TestMaintainZeroAlloc: the control loop's periodic housekeeping —
// draining promotion requests into data-plane updates and applying them
// — is allocation-free in steady state.
func TestMaintainZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := NewSlice(SliceConfig{ID: 1, TableMode: TableTwoLevel, UserHint: 64})
	attachOne(t, s, 42)
	ue := s.Control().Lookup(42)
	now := sim.Now()
	round := func() {
		s.Control().requestPromotion(ue)
		s.Control().Maintain(now, 0)
		s.Data().SyncUpdates()
	}
	for i := 0; i < 64; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Fatalf("Maintain round allocates %.1f allocs/op, want 0", avg)
	}
}

// TestBatchedSignalingZeroAlloc: the enqueue→drain procedure pipeline
// (handover and attach-event batches, including the data-plane update
// push and sync) runs without allocating.
func TestBatchedSignalingZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	for imsi := uint64(1); imsi <= 8; imsi++ {
		attachOne(t, s, imsi)
	}
	cp := s.Control()
	round := func() {
		for imsi := uint64(1); imsi <= 8; imsi++ {
			cp.EnqueueSignal(SigEvent{Kind: SigS1Handover, IMSI: imsi,
				ENBAddr: pkt.IPv4Addr(192, 168, 1, 1), DownlinkTEID: 0x9000, ECGI: 40})
			cp.EnqueueSignal(SigEvent{Kind: SigAttachEvent, IMSI: imsi})
		}
		for cp.DrainSignaling(0) > 0 {
		}
		s.Data().SyncUpdates()
	}
	for i := 0; i < 64; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Fatalf("batched signaling round allocates %.1f allocs/op, want 0", avg)
	}
	// The drain actually executed procedures (not silently dropped).
	st := cp.Stats()
	if st.Handovers == 0 || st.SigDrops != 0 {
		t.Fatalf("unexpected drain stats: %+v", st)
	}
}
