package core

import (
	"testing"

	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// The handle state layout (DESIGN.md §4.10) must be behaviorally
// identical to the pointer layout: same forwarding, counters, policing
// and lifecycle semantics, with the hot state living in arena slabs
// addressed by generation+slot handles instead of heap pointers.

func TestHandleLayoutUplinkEndToEnd(t *testing.T) {
	for _, mode := range []TableMode{TableSingle, TableTwoLevel} {
		name := "single"
		if mode == TableTwoLevel {
			name = "twolevel"
		}
		t.Run(name, func(t *testing.T) {
			s := NewSlice(SliceConfig{ID: 1, TableMode: mode, StateLayout: LayoutHandle, UserHint: 64})
			if s.arena == nil {
				t.Fatal("handle layout did not build an arena")
			}
			res := attachOne(t, s, 1001)
			pool := pkt.NewPool(2048, 128)
			b := buildUplink(pool, res.UplinkTEID, res.UEAddr, pkt.IPv4Addr(192, 168, 0, 1), s.Config().CoreAddr, 80)
			s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
			if got := s.Data().Forwarded.Load(); got != 1 {
				t.Fatalf("forwarded = %d (missed=%d dropped=%d)", got,
					s.Data().Missed.Load(), s.Data().Dropped.Load())
			}
			down := buildDownlink(pool, res.UEAddr, 443)
			s.Data().ProcessDownlinkBatch([]*pkt.Buf{down}, sim.Now())
			if got := s.Data().Forwarded.Load(); got != 2 {
				t.Fatalf("downlink not forwarded (missed=%d)", s.Data().Missed.Load())
			}
			ue := s.Control().Lookup(1001)
			var up, dn uint64
			ue.ReadCounters(func(c *state.CounterState) { up, dn = c.UplinkPackets, c.DownlinkPackets })
			if up != 1 || dn != 1 {
				t.Fatalf("counters: up=%d down=%d", up, dn)
			}
			if ue.Handle() == 0 {
				t.Fatal("attached user has no arena binding")
			}
			drainEgress(s)
		})
	}
}

func TestHandleLayoutPolicing(t *testing.T) {
	// Policed users exercise the cold-read rebuild path: FastCtrl carries
	// Policed=true and the limiter is configured from a full control
	// snapshot on the first epoch change.
	s := NewSlice(SliceConfig{ID: 2, StateLayout: LayoutHandle, UserHint: 64})
	res, err := s.Control().Attach(AttachSpec{
		IMSI: 6006, ENBAddr: 1, DownlinkTEID: 2,
		AMBRUplink: 8 * 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Data().SyncUpdates()
	pool := pkt.NewPool(2048, 128)
	now := sim.Now()
	sent := 0
	for i := 0; i < 200; i++ {
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
		s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, now)
		sent++
	}
	forwarded := s.Data().Forwarded.Load()
	if forwarded == 0 || forwarded >= uint64(sent) {
		t.Fatalf("policing ineffective: forwarded %d of %d", forwarded, sent)
	}
	drainEgress(s)
}

func TestHandleLayoutDetachInvalidatesHandle(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 3, StateLayout: LayoutHandle, UserHint: 64})
	res := attachOne(t, s, 3003)
	h := s.Control().Lookup(3003).Handle()
	if s.arena.At(h) == nil {
		t.Fatal("live handle does not resolve")
	}
	if err := s.Control().Detach(3003); err != nil {
		t.Fatal(err)
	}
	s.Data().SyncUpdates()
	// The generation bump makes the retired handle miss even though the
	// slot memory is still there for in-flight references.
	if s.arena.At(h) != nil {
		t.Fatal("retired handle still resolves")
	}
	pool := pkt.NewPool(2048, 128)
	b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if s.Data().Missed.Load() != 1 {
		t.Fatal("detached user still reachable")
	}
}

func TestHandleLayoutChurnReattach(t *testing.T) {
	// Attach/detach churn drives slot recycling through the sync fence:
	// recycled users must get fresh generations and forward correctly,
	// and the arena must not grow without bound.
	s := NewSlice(SliceConfig{ID: 4, StateLayout: LayoutHandle, UserHint: 64, SyncEvery: 1})
	pool := pkt.NewPool(2048, 128)
	for round := 0; round < 50; round++ {
		imsi := uint64(100 + round)
		res, err := s.Control().Attach(AttachSpec{IMSI: imsi, ENBAddr: 1, DownlinkTEID: 2})
		if err != nil {
			t.Fatalf("round %d attach: %v", round, err)
		}
		s.Data().SyncUpdates()
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
		s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
		if err := s.Control().Detach(imsi); err != nil {
			t.Fatalf("round %d detach: %v", round, err)
		}
		s.Data().SyncUpdates()
		// Extra batches advance the sync fence so retirees recycle.
		s.Data().ProcessUplinkBatch(nil, sim.Now())
		s.Data().SyncUpdates()
	}
	if got := s.Data().Forwarded.Load(); got != 50 {
		t.Fatalf("forwarded %d of 50 across churn (missed=%d)", got, s.Data().Missed.Load())
	}
	if s.arena.Slots() > 2*slabSizeForTest {
		t.Fatalf("arena grew to %d slots under 1-live-user churn", s.arena.Slots())
	}
	drainEgress(s)
}

// slabSizeForTest mirrors state's slab size (1024) without exporting it.
const slabSizeForTest = 1024

func TestShardedDataHandleLayout(t *testing.T) {
	// The sharded runner composes slices, so the handle layout must work
	// per-shard unchanged: attach a user on each shard and spray traffic.
	slices := []*Slice{
		NewSlice(SliceConfig{ID: 1, StateLayout: LayoutHandle, UserHint: 64}),
		NewSlice(SliceConfig{ID: 2, StateLayout: LayoutHandle, UserHint: 64}),
	}
	sd, err := NewShardedData(slices, 64)
	if err != nil {
		t.Fatal(err)
	}
	pool := pkt.NewPool(2048, 128)
	for i, s := range slices {
		res := attachOne(t, s, uint64(5000+i))
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
		if shard := sd.SteerUplink(b); shard != i {
			t.Fatalf("packet for slice %d steered to shard %d", i, shard)
		}
		s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
		if s.Data().Forwarded.Load() != 1 {
			t.Fatalf("shard %d did not forward (missed=%d)", i, s.Data().Missed.Load())
		}
		drainEgress(s)
	}
}
