package core

import (
	"io"

	"pepc/internal/fault"
	"pepc/internal/state"
)

// This file implements slice crash recovery on top of the checkpoint
// stream (checkpoint.go): a replacement slice is rebuilt from the last
// checkpoint plus whatever survives the crash in memory — the
// control→data update queue and the undrained signaling ring. The
// consolidated per-user state makes the reconciliation rule simple:
// every surviving update references a context whose current snapshot is
// by construction at least as new as the checkpoint, so replay is
// "snapshot and reinstall", never a byte-level log merge.

// RecoveryReport summarizes one RecoverFrom pass.
type RecoveryReport struct {
	// Restored counts users installed from the checkpoint stream.
	Restored int
	// Replayed counts post-checkpoint attaches resurrected from the
	// surviving update queue (users absent from the checkpoint).
	Replayed int
	// Refreshed counts checkpointed users whose surviving context was
	// newer than the checkpoint copy (counters or tunnel state moved
	// after the snapshot was taken).
	Refreshed int
	// CompletedDetaches counts users removed because a queued delete
	// proved their detach completed on the control side before the
	// crash.
	CompletedDetaches int
	// EvictionsReplayed counts two-level primary evictions re-applied
	// from the queue.
	EvictionsReplayed int
	// SignalsAdopted counts signaling events moved from the crashed
	// slice's ring into the new slice's ring (still to be executed).
	SignalsAdopted int
	// Synced is the number of index updates applied by the final sync.
	Synced int
}

// RecoverFrom rebuilds this (fresh) slice from a checkpoint stream plus
// the surviving in-memory state of the crashed slice: its update queue
// is reconciled against the restored population and its undrained
// signaling ring is adopted for the new control thread to execute.
// crashed may be nil (checkpoint-only recovery, e.g. a cold standby
// node). Neither plane of the crashed slice may still be running.
//
// Invariants on return: the new slice shares no *UE with the crashed
// one (contexts are snapshotted, then reinstalled through the normal
// attach path, so arena handles cannot leak across slices); counters of
// every user referenced by the surviving queue are exact, and counters
// of untouched users are stale by at most the checkpoint age — the
// paper's per-user crash consistency (§8).
func (s *Slice) RecoverFrom(r io.Reader, crashed *Slice) (RecoveryReport, error) {
	var rep RecoveryReport
	restored, err := s.RestoreCheckpoint(r)
	rep.Restored = restored
	if err != nil {
		return rep, err
	}
	if crashed != nil {
		s.reconcileSurvivors(crashed, &rep)
		rep.SignalsAdopted = s.transferSignals(crashed)
	}
	rep.Synced = s.data.SyncUpdates()
	return rep, nil
}

// reconcileSurvivors replays the crashed slice's undrained update queue
// against the restored population, in queue order. Inserts and rekeys
// carry a context pointer: its *current* snapshot (final pre-crash
// state) is installed — resurrecting post-checkpoint attaches and
// refreshing stale checkpoint copies. Deletes carry only keys: a key
// still owned by a user in the crashed control store is an eviction
// (two-level) or a recycled key superseded by a later re-insert
// (single-level, skipped); a key with no surviving owner proves the
// detach completed before the crash, so the restored copy is removed —
// a queued detach is never lost, a completed one never resurrected.
func (s *Slice) reconcileSurvivors(crashed *Slice, rep *RecoveryReport) {
	seen := make(map[uint64]struct{})
	crashed.updates.DrainFunc(func(u state.Update) {
		switch u.Op {
		case state.OpInsert, state.OpRekey:
			if u.UE == nil {
				return
			}
			// The snapshot reads the context's final state, so every
			// queued update for one user replays identically; dedup.
			cs, cnt := u.UE.Snapshot()
			if cs.IMSI == 0 {
				return
			}
			if _, dup := seen[cs.IMSI]; dup {
				return
			}
			seen[cs.IMSI] = struct{}{}
			if existing := s.cp.LookupIMSI(cs.IMSI); existing != nil {
				var oldTEID, oldAddr uint32
				existing.ReadCtrl(func(c *state.ControlState) {
					oldTEID, oldAddr = c.UplinkTEID, c.UEAddr
				})
				if oldTEID == cs.UplinkTEID && oldAddr == cs.UEAddr {
					// Same identifiers: refresh control state and
					// counters in place, indexes stay valid.
					existing.Restore(cs, cnt)
				} else {
					// A surviving rekey outran the checkpoint copy:
					// replace it wholesale so the old keys are removed.
					s.dropUser(cs.IMSI)
					if s.ctrl.install(cs, cnt, cs.LastActive) != nil {
						return
					}
				}
				rep.Refreshed++
				return
			}
			if s.ctrl.install(cs, cnt, cs.LastActive) == nil {
				rep.Replayed++
			}
		case state.OpDelete:
			if crashed.cp.LookupTEID(u.TEID) != nil {
				// Owner still attached at crash time. Two-level: a
				// primary eviction, replay it (the user stays reachable
				// through the secondary). Single-level: a delete of a
				// recycled key, superseded by the re-insert that follows
				// it in the queue — skip.
				if s.tl != nil {
					s.updates.Push(u)
					rep.EvictionsReplayed++
				}
				return
			}
			if ue := s.cp.LookupTEID(u.TEID); ue != nil {
				var imsi uint64
				ue.ReadCtrl(func(c *state.ControlState) { imsi = c.IMSI })
				s.dropUser(imsi)
				rep.CompletedDetaches++
			}
		}
	})
}

// dropUser removes a restored user again (its detach completed before
// the crash, or its identifiers changed), unwinding everything install
// set up: control store entry, data-plane keys, arena binding, charging
// baseline.
func (s *Slice) dropUser(imsi uint64) {
	ue, err := s.cp.Remove(imsi)
	if err != nil {
		return
	}
	var teid, addr uint32
	ue.ReadCtrl(func(c *state.ControlState) {
		teid, addr = c.UplinkTEID, c.UEAddr
	})
	s.ctrl.notifyDelete(teid, addr)
	if s.arena != nil {
		s.arena.Retire(ue.Handle(), s.data.syncSeq.Load())
	}
	s.ctrl.collector.Forget(imsi)
}

// transferSignals drains the crashed slice's undrained signaling ring
// into the new slice's ring, preserving order. The adopted events are
// executed by the new control thread's next DrainSignaling — a detach
// that was queued but not yet drained at the crash is carried over, not
// lost; events the crashed thread already drained are gone from the
// ring and therefore never run twice.
func (s *Slice) transferSignals(crashed *Slice) int {
	var buf [64]SigEvent
	moved := 0
	for {
		n := crashed.ctrl.sigQ.DequeueBatch(buf[:])
		if n == 0 {
			return moved
		}
		for i := 0; i < n; i++ {
			if s.ctrl.EnqueueSignal(buf[i]) {
				moved++
			}
		}
	}
}

// DrainUsers extracts every user of the slice through the state-transfer
// encoding, invoking fn for each message; a false return stops the walk.
// On return the drained users are gone from this slice (extract removes
// them), so the caller owns their state. The cluster layer uses this to
// scatter a recovered slice's population to its Maglev-picked owners;
// neither plane of the slice may be running concurrently with the drain
// beyond the normal extract fence. Returns the number drained.
func (s *Slice) DrainUsers(fn func(StateTransferMessage) bool) (int, error) {
	// Collect IMSIs first: extract mutates the store the Range walks.
	var imsis []uint64
	s.cp.Range(func(ue *state.UE) bool {
		ue.ReadCtrl(func(c *state.ControlState) {
			imsis = append(imsis, c.IMSI)
		})
		return true
	})
	drained := 0
	for _, imsi := range imsis {
		var cs state.ControlState
		var cnt state.CounterState
		var lv state.QoSLevels
		var err error
		s.ctrl.exec(func() {
			cs, cnt, lv, err = s.ctrl.extract(imsi)
		})
		if err != nil {
			return drained, err
		}
		var msg StateTransferMessage
		msg.IMSI = imsi
		if _, err := state.MarshalSnapshotLevels(msg.Data[:], &cs, &cnt, &lv); err != nil {
			return drained, err
		}
		drained++
		if !fn(msg) {
			break
		}
	}
	return drained, nil
}

// ArenaLive returns the number of live hot-state slots in the slice's
// arena, the leak invariant crash recovery and the chaos soak assert
// against Users(). Pointer-layout slices have no arena; -1 signals
// "not applicable".
func (s *Slice) ArenaLive() int {
	if s.arena == nil {
		return -1
	}
	return s.arena.Len()
}

// SetFaults arms fault injection across the slice: the signaling ring
// consults fault.RingOverflow on every enqueue (injected backpressure,
// surfacing as SigDrops) and the data worker started by a later RunData
// consults fault.WorkerStall between batches. Call before the planes
// run; a nil injector disarms. The Diameter-side faults are armed
// separately on the Proxy (SetS6aFaults/SetGxFaults).
func (s *Slice) SetFaults(inj *fault.Injector) {
	s.faults = inj
	if inj == nil {
		s.ctrl.sigQ.FaultHook = nil
		return
	}
	s.ctrl.sigQ.FaultHook = func() bool { return inj.Fire(fault.RingOverflow) }
}

// Faults returns the slice's injector (nil when none is armed).
func (s *Slice) Faults() *fault.Injector { return s.faults }
