package core

import (
	"pepc/internal/pkt"
	"pepc/internal/ring"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// Idle mode and paging: when a UE goes idle the eNodeB releases its S1
// context and the core drops the downlink tunnel endpoint (S1 Release).
// Downlink packets arriving for an idle user cannot be delivered; the
// real EPC buffers them and sends a Downlink Data Notification to page
// the UE, which re-establishes the data path with a Service Request.
// PEPC's consolidation keeps this entirely inside the slice: the data
// thread parks the packet on the paging queue and the control thread
// releases it once the endpoint returns.

// DefaultPagingQueueCap bounds parked downlink packets per slice.
const DefaultPagingQueueCap = 1 << 10

// initPaging is called from newDataPlane.
func (dp *DataPlane) initPaging() {
	dp.paging = ring.MustMPSC[*pkt.Buf](DefaultPagingQueueCap)
}

// parkForPaging buffers a downlink packet for an idle user, once: a
// packet that comes back around still idle is dropped (its user was
// paged and did not answer before the retry).
func (dp *DataPlane) parkForPaging(b *pkt.Buf, ue *state.UE) {
	if b.Meta.Paged {
		dp.countDrop(ue.Hot())
		dp.drop(b)
		return
	}
	b.Meta.Paged = true
	if !dp.paging.Enqueue(b) {
		dp.countDrop(ue.Hot())
		dp.drop(b)
		return
	}
	dp.PagedPackets.Add(1)
}

// ReleaseAccess moves a user to idle: the radio-side tunnel endpoint is
// cleared (S1 UE Context Release on the control side). Subsequent
// downlink traffic is parked for paging. In two-level mode the user is
// also a natural eviction candidate; eviction still happens via the
// normal idle scan.
func (cp *ControlPlane) ReleaseAccess(imsi uint64) error {
	ue := cp.s.cp.LookupIMSI(imsi)
	if ue == nil {
		return ErrUserUnknown
	}
	ue.WriteCtrl(func(c *state.ControlState) {
		c.DownlinkTEID = 0
		c.ENBAddr = 0
	})
	return nil
}

// ResumeAccess completes a service request (the UE answered the page or
// has uplink to send): the new radio endpoint is installed and every
// parked downlink packet is re-queued for delivery. Packets parked for
// other, still-idle users simply park again on their next pass.
func (cp *ControlPlane) ResumeAccess(imsi uint64, enbAddr, downlinkTEID uint32) error {
	ue := cp.s.cp.LookupIMSI(imsi)
	if ue == nil {
		return ErrUserUnknown
	}
	ue.WriteCtrl(func(c *state.ControlState) {
		c.ENBAddr = enbAddr
		c.DownlinkTEID = downlinkTEID
		c.LastActive = sim.Now()
	})
	// Drain the paging queue back into the downlink ring. The resumed
	// user's packets deliver; others re-park (their Paged mark is
	// cleared so they get one more chance per resume).
	for {
		b, ok := cp.s.data.paging.Dequeue()
		if !ok {
			return nil
		}
		b.Meta.Paged = false
		if !cp.s.Downlink.Enqueue(b) {
			b.Free()
		}
	}
}
