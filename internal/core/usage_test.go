package core

import (
	"testing"
	"time"

	"pepc/internal/hss"
	"pepc/internal/pcrf"
	"pepc/internal/pkt"
	"pepc/internal/sim"
)

func TestCollectAllUsage(t *testing.T) {
	hssDB := hss.New()
	hssDB.ProvisionRange(1, 10, 10e6, 50e6)
	policy := pcrf.New()
	s := NewSlice(SliceConfig{ID: 1, UserHint: 32})
	s.Control().SetProxy(NewProxy(hssDB, policy))
	users := make([]AttachResult, 3)
	for i := range users {
		res, err := s.Control().Attach(AttachSpec{IMSI: uint64(i + 1), ENBAddr: 1, DownlinkTEID: uint32(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		users[i] = res
	}
	s.Data().SyncUpdates()
	pool := pkt.NewPool(2048, 128)
	// Traffic for users 1 and 2 only; user 3 stays idle.
	for i := 0; i < 2; i++ {
		for p := 0; p < 4; p++ {
			b := buildUplink(pool, users[i].UplinkTEID, users[i].UEAddr, 1, s.Config().CoreAddr, 80)
			s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
		}
	}
	drainEgress(s)

	reports := s.Control().CollectAllUsage(sim.Now())
	if len(reports) != 2 {
		t.Fatalf("busy CDRs = %d, want 2", len(reports))
	}
	for _, r := range reports {
		if r.CDR.Delta.UplinkPackets != 4 {
			t.Fatalf("CDR delta: %+v", r.CDR.Delta)
		}
		if !r.ReportedToPCRF {
			t.Fatal("usage not reported to PCRF")
		}
	}
	// Second round with no new traffic: nothing to report.
	if reports := s.Control().CollectAllUsage(sim.Now()); len(reports) != 0 {
		t.Fatalf("idle round produced %d reports", len(reports))
	}
}

func TestRunUsageReporting(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 2, UserHint: 16})
	res, err := s.Control().Attach(AttachSpec{IMSI: 9, ENBAddr: 1, DownlinkTEID: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Data().SyncUpdates()
	pool := pkt.NewPool(2048, 128)
	b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 1, s.Config().CoreAddr, 80)
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	drainEgress(s)

	stop := make(chan struct{})
	got := make(chan []UsageReport, 4)
	go s.Control().RunUsageReporting(stop, 5*time.Millisecond, func(r []UsageReport) {
		select {
		case got <- r:
		default:
		}
	})
	select {
	case reports := <-got:
		if reports[0].CDR.Delta.UplinkPackets != 1 {
			t.Fatalf("reported: %+v", reports[0].CDR.Delta)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no usage report emitted")
	}
	close(stop)
}
