package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"pepc/internal/charging"
	"pepc/internal/pcef"
	"pepc/internal/qos"
	"pepc/internal/ring"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// ControlPlane is the slice's control thread: it terminates signaling
// (attach, handover, detach), owns every write to per-user control state,
// manages primary/secondary table residency, talks to the HSS/PCRF
// through the node proxy, and services state-migration requests.
type ControlPlane struct {
	s *Slice

	// Identifier allocation. TEIDs carry the slice id in the top byte
	// (0xF0|id space) so they never collide with UE addresses
	// (10.0.0.0/8) in the two-level table's shared key space.
	nextSeq uint32
	iotSeq  uint32

	// proxy reaches HSS/PCRF; nil means synthetic mode (the paper's
	// at-scale control experiments generate state operations without
	// wire messages, §5.1).
	proxy *Proxy

	// promoteQ carries promotion requests from the data thread
	// (secondary-table hits) back to the control thread.
	promoteQ *ring.MPSC[promoteReq]

	collector *charging.Collector

	// loopRunning reports whether RunCtrl is active, steering exec().
	loopRunning atomic.Bool

	// retired is the UE-context free list (control-thread-only): detached
	// contexts parked until the data plane provably holds no reference,
	// then recycled by the next attach together with their TEID/address
	// pair. Recycling the identifiers matters as much as the memory: it
	// keeps the allocator's sequence space from draining under churn and
	// lets the index maps reuse tombstoned slots instead of growing.
	// Ring buffer: retHead is the oldest entry, retLen the population.
	retired []retiree
	retHead int
	retLen  int

	// sigQ is the signaling event ring: producers (workload generators,
	// the node demux) enqueue procedure requests, the control thread
	// drains them in batches (DrainSignaling). sigNotify carries a
	// wakeup token to RunCtrl; sigScratch/sigUEs/sigIMSIs/updScratch are
	// the drain's preallocated working set (control-thread-only).
	sigQ       *ring.MPSC[SigEvent]
	sigNotify  chan struct{}
	sigScratch []SigEvent
	sigUEs     []*state.UE
	sigIMSIs   []uint64
	updScratch []state.Update

	// ruleScratch receives PCRF rule installs during attach, reused
	// across procedures so rule parsing never allocates in steady state.
	ruleScratch []pcef.Rule

	// degraded is the control thread's repair backlog: users attached
	// with the default-bearer-only profile while the PCRF was dark (Gx
	// establish failed). Maintain retries their Gx session once the
	// proxy's Gx breaker reports the backend back. Control-thread-only.
	degraded []uint64

	// Event counters.
	Attaches   atomic.Uint64
	Handovers  atomic.Uint64
	Detaches   atomic.Uint64
	QoSUpdates atomic.Uint64
	Promotions atomic.Uint64
	Evictions  atomic.Uint64
	// PromoteDrops counts promotion requests discarded because promoteQ
	// was full (the device stays in the secondary until a later hit).
	PromoteDrops atomic.Uint64
	// SigDrops counts signaling events rejected because sigQ was full
	// (the control plane's backpressure toward the RAN).
	SigDrops atomic.Uint64
	// Recycles counts attaches served from the context free list.
	Recycles atomic.Uint64
	// DegradedAttaches counts attaches completed with the default-bearer
	// profile because the PCRF was unreachable.
	DegradedAttaches atomic.Uint64
	// Repairs counts degraded users whose Gx session was later
	// re-established by the control thread.
	Repairs atomic.Uint64
	// RepairDrops counts degraded users dropped from the (bounded)
	// repair backlog; they keep the default-bearer profile.
	RepairDrops atomic.Uint64
}

type promoteReq struct {
	ue *state.UE
}

// retiree is a parked UE context awaiting recycling. seq records the
// data plane's sync counter at retire time; the context is eligible for
// reuse once two further syncs completed (same fence as migration
// extract: the delete has been applied and every batch that could still
// hold the pointer has finished).
type retiree struct {
	ue     *state.UE
	teid   uint32
	ueAddr uint32
	seq    uint64
}

// freeListCap bounds the context free list; beyond it, detached
// contexts fall to the garbage collector as before.
const freeListCap = 1 << 12

// sigRingCap sizes the signaling event ring.
const sigRingCap = 1 << 12

// sigDrainBatch is DrainSignaling's default (and maximum) batch size.
const sigDrainBatch = 256

// degradedCap bounds the repair backlog; beyond it, degraded users keep
// the default-bearer profile permanently (counted in RepairDrops).
const degradedCap = 1 << 14

// repairBatch bounds how many degraded users one Maintain round repairs,
// so repair traffic never monopolizes the control thread.
const repairBatch = 64

func newControlPlane(s *Slice) *ControlPlane {
	return &ControlPlane{
		s:          s,
		promoteQ:   ring.MustMPSC[promoteReq](1 << 12),
		collector:  charging.NewCollector(),
		sigQ:       ring.MustMPSC[SigEvent](sigRingCap),
		sigNotify:  make(chan struct{}, 1),
		sigScratch: make([]SigEvent, sigDrainBatch),
		sigUEs:     make([]*state.UE, sigDrainBatch),
		sigIMSIs:   make([]uint64, sigDrainBatch),
		updScratch: make([]state.Update, 0, sigDrainBatch),
	}
}

// CtrlStats is a snapshot of the control plane's event counters.
type CtrlStats struct {
	Attaches         uint64
	Handovers        uint64
	Detaches         uint64
	QoSUpdates       uint64
	Promotions       uint64
	PromoteDrops     uint64
	Evictions        uint64
	SigDrops         uint64
	Recycles         uint64
	DegradedAttaches uint64
	Repairs          uint64
	RepairDrops      uint64
}

// Stats snapshots the control plane's counters (any thread).
func (cp *ControlPlane) Stats() CtrlStats {
	return CtrlStats{
		Attaches:         cp.Attaches.Load(),
		Handovers:        cp.Handovers.Load(),
		Detaches:         cp.Detaches.Load(),
		QoSUpdates:       cp.QoSUpdates.Load(),
		Promotions:       cp.Promotions.Load(),
		PromoteDrops:     cp.PromoteDrops.Load(),
		Evictions:        cp.Evictions.Load(),
		SigDrops:         cp.SigDrops.Load(),
		Recycles:         cp.Recycles.Load(),
		DegradedAttaches: cp.DegradedAttaches.Load(),
		Repairs:          cp.Repairs.Load(),
		RepairDrops:      cp.RepairDrops.Load(),
	}
}

// SetProxy attaches the node proxy (full signaling mode). Without a
// proxy, Attach runs the synthetic state-operation path.
func (cp *ControlPlane) SetProxy(p *Proxy) { cp.proxy = p }

// Collector returns the charging collector.
func (cp *ControlPlane) Collector() *charging.Collector { return cp.collector }

// AttachSpec carries the parameters of an attach procedure.
type AttachSpec struct {
	IMSI uint64
	// ENBAddr/DownlinkTEID identify the serving eNodeB's data endpoint.
	ENBAddr      uint32
	DownlinkTEID uint32
	ECGI         uint32
	TAI          uint16
	// QoS profile; zero values mean unpoliced.
	AMBRUplink   uint64
	AMBRDownlink uint64
	QCI          uint8
	// AssignedUplinkTEID/AssignedUEAddr, when both nonzero, bypass the
	// slice's identifier allocator: the caller owns the identifier space
	// and has derived the pair itself (the cluster layer embeds its
	// global user key in both, so the Maglev steering key is recoverable
	// from either identifier on the wire). The free-list recycle path is
	// skipped — parked contexts are bound to allocator-owned pairs —
	// and uniqueness across attaches is the caller's contract. Setting
	// only one of the two is an error (ErrBadAssignment).
	AssignedUplinkTEID uint32
	AssignedUEAddr     uint32
	// Preauthorized marks a user whose authentication and policy
	// decisions already happened on a separate control plane (the CUPS
	// split: an SMF drives this slice as a pure user-plane function over
	// N4 and is itself the authority on subscription state). The
	// HSS/PCRF proxy round-trips are skipped; QoS comes entirely from
	// the spec.
	Preauthorized bool
}

// AttachResult reports the identifiers the network assigned.
type AttachResult struct {
	UplinkTEID uint32 // where the eNodeB must send uplink GTP-U
	UEAddr     uint32 // the UE's allocated IP
	GUTI       uint64
}

// Attach executes the attach procedure for a user: authenticate (when a
// proxy is attached), allocate identifiers, build the consolidated
// control state, insert it into the control-plane store, and notify the
// data plane through the batched update queue — the PEPC flow of §3.4.
func (cp *ControlPlane) Attach(spec AttachSpec) (AttachResult, error) {
	var res AttachResult
	if cp.s.cp.LookupIMSI(spec.IMSI) != nil {
		return res, ErrUserExists
	}
	var kasme [32]byte
	if cp.proxy != nil && !spec.Preauthorized {
		vec, err := cp.proxy.Authenticate(spec.IMSI)
		if err != nil {
			return res, err
		}
		kasme = vec.KASME
		up, down, err := cp.proxy.UpdateLocation(spec.IMSI)
		if err != nil {
			return res, err
		}
		if spec.AMBRUplink == 0 {
			spec.AMBRUplink = up
		}
		if spec.AMBRDownlink == 0 {
			spec.AMBRDownlink = down
		}
	}

	var ue *state.UE
	var teid, ueAddr uint32
	var err error
	if spec.AssignedUplinkTEID != 0 || spec.AssignedUEAddr != 0 {
		if spec.AssignedUplinkTEID == 0 || spec.AssignedUEAddr == 0 {
			return res, ErrBadAssignment
		}
		teid, ueAddr = spec.AssignedUplinkTEID, spec.AssignedUEAddr
		ue = &state.UE{}
		cp.bindHot(ue)
	} else if ue, teid, ueAddr, err = cp.allocUE(); err != nil {
		return res, err
	}
	guti := spec.IMSI ^ 0x00ff_feed_0000_0000

	ue.WriteCtrl(func(c *state.ControlState) {
		c.IMSI = spec.IMSI
		c.GUTI = guti
		c.UEAddr = ueAddr
		c.ECGI = spec.ECGI
		c.TAI = spec.TAI
		c.TAIList[0] = spec.TAI
		c.TAICount = 1
		c.UplinkTEID = teid
		c.DownlinkTEID = spec.DownlinkTEID
		c.ENBAddr = spec.ENBAddr
		c.AMBRUplink = spec.AMBRUplink
		c.AMBRDownlink = spec.AMBRDownlink
		qci := spec.QCI
		if qci == 0 {
			qci = 9
		}
		c.AddBearer(state.Bearer{EBI: 5, QCI: state.QCI(qci)})
		c.Attached = true
		c.LastActive = sim.Now()
		c.KASME = kasme
	})

	if cp.proxy != nil && !spec.Preauthorized {
		rules, err := cp.proxy.EstablishGxSessionInto(spec.IMSI, cp.ruleScratch[:0])
		if err != nil {
			// Graceful degradation: a dark PCRF must not fail the attach
			// (the paper's availability argument cuts both ways — a slice
			// that refuses service during a backend outage is a worse
			// outage). The user proceeds on the default bearer installed
			// above, with no PCC rules; the control thread re-establishes
			// the Gx session from the repair backlog once the backend
			// answers again.
			cp.markDegraded(spec.IMSI)
		} else {
			cp.ruleScratch = rules[:0]
			cp.installRules(ue, rules)
		}
	}

	if err := cp.s.cp.Insert(ue); err != nil {
		return res, err
	}
	cp.notifyInsert(teid, ueAddr, ue)
	cp.Attaches.Add(1)
	res = AttachResult{UplinkTEID: teid, UEAddr: ueAddr, GUTI: guti}
	return res, nil
}

// markDegraded records a user attached without its PCC rules for later
// repair. Control thread only.
func (cp *ControlPlane) markDegraded(imsi uint64) {
	cp.DegradedAttaches.Add(1)
	if len(cp.degraded) >= degradedCap {
		cp.RepairDrops.Add(1)
		return
	}
	cp.degraded = append(cp.degraded, imsi)
}

// DegradedBacklog returns the number of users awaiting Gx repair.
func (cp *ControlPlane) DegradedBacklog() int { return len(cp.degraded) }

// RepairDegraded retries the Gx establishment of up to max degraded
// users (all of them when max <= 0). It stops early when the backend is
// still failing, leaving the remainder queued for the next round.
// Returns the number repaired. Control thread only.
func (cp *ControlPlane) RepairDegraded(max int) int {
	if cp.proxy == nil || len(cp.degraded) == 0 {
		return 0
	}
	if !cp.proxy.GxAvailable() {
		return 0 // breaker still open: don't waste a probe per user
	}
	if max <= 0 || max > len(cp.degraded) {
		max = len(cp.degraded)
	}
	repaired := 0
	i := 0
	for ; i < max; i++ {
		imsi := cp.degraded[i]
		ue := cp.s.cp.LookupIMSI(imsi)
		if ue == nil {
			continue // detached meanwhile: nothing to repair
		}
		rules, err := cp.proxy.EstablishGxSessionInto(imsi, cp.ruleScratch[:0])
		if err != nil {
			// Backend still failing: stop, keep this and the rest queued.
			break
		}
		cp.ruleScratch = rules[:0]
		cp.installRules(ue, rules)
		cp.Repairs.Add(1)
		repaired++
	}
	// Drop the processed prefix; an early break keeps the user that
	// failed (cp.degraded[i]) at the head for the next round.
	if i > 0 {
		n := copy(cp.degraded, cp.degraded[i:])
		cp.degraded = cp.degraded[:n]
	}
	return repaired
}

// allocUE produces a context plus its identifier pair for an attach:
// from the free list when the oldest retiree has cleared the data-plane
// fence (zero-alloc steady state), from the heap and the sequence
// allocator otherwise.
func (cp *ControlPlane) allocUE() (*state.UE, uint32, uint32, error) {
	if cp.retLen > 0 {
		r := cp.retired[cp.retHead]
		if cp.s.data.syncSeq.Load() >= r.seq+2 {
			cp.retired[cp.retHead] = retiree{}
			cp.retHead = (cp.retHead + 1) & (len(cp.retired) - 1)
			cp.retLen--
			r.ue.Recycle()
			cp.Recycles.Add(1)
			cp.bindHot(r.ue)
			return r.ue, r.teid, r.ueAddr, nil
		}
	}
	teid, ueAddr, err := cp.allocate()
	if err != nil {
		return nil, 0, 0, err
	}
	ue := &state.UE{}
	cp.bindHot(ue)
	return ue, teid, ueAddr, nil
}

// bindHot binds a context to an arena hot slot in the handle layout
// (no-op in the pointer layout, where the inline hot half serves).
func (cp *ControlPlane) bindHot(ue *state.UE) {
	if cp.s.arena != nil {
		cp.s.arena.Alloc(ue, cp.s.data.syncSeq.Load())
	}
}

// retire parks a detached context on the free list, stamped with the
// current data-plane sync sequence. A full list simply drops the entry
// to the garbage collector.
func (cp *ControlPlane) retire(ue *state.UE, teid, ueAddr uint32) {
	if cp.retired == nil {
		cp.retired = make([]retiree, freeListCap)
	}
	if cp.retLen == len(cp.retired) {
		return
	}
	slot := (cp.retHead + cp.retLen) & (len(cp.retired) - 1)
	cp.retired[slot] = retiree{ue: ue, teid: teid, ueAddr: ueAddr, seq: cp.s.data.syncSeq.Load()}
	cp.retLen++
}

// allocate hands out the next uplink TEID and UE address.
func (cp *ControlPlane) allocate() (teid, ueAddr uint32, err error) {
	cp.nextSeq++
	seq := cp.nextSeq
	if seq >= 1<<24 {
		return 0, 0, ErrPoolExhausted
	}
	// Per-slice prefixes keep TEIDs and UE addresses disjoint within the
	// slice (the two-level table shares one key space) and unique across
	// slices (the node demux routes on them).
	id := uint32(cp.s.cfg.ID)
	teid = (id+16)<<24 | seq
	ueAddr = (id+10)<<24 | seq
	return teid, ueAddr, nil
}

// notifyInsert pushes the data-plane index updates for a new/restored
// user: in two-level mode the user lands in the secondary table
// immediately (control-side insert) and is promoted on first use or here
// proactively for an active attach.
func (cp *ControlPlane) notifyInsert(teid, ueAddr uint32, ue *state.UE) {
	if cp.s.tl != nil {
		cp.s.tl.InsertSecondary(teid, ueAddr, ue)
		// A freshly attached device is active: promote now.
		cp.s.updates.Push(state.Update{Op: state.OpInsert, TEID: teid, UEIP: ueAddr, UE: ue})
		return
	}
	cp.s.updates.Push(state.Update{Op: state.OpInsert, TEID: teid, UEIP: ueAddr, UE: ue})
}

func (cp *ControlPlane) notifyDelete(teid, ueAddr uint32) {
	if cp.s.tl != nil {
		cp.s.tl.RemoveSecondary(teid, ueAddr)
	}
	cp.s.updates.Push(state.Update{Op: state.OpDelete, TEID: teid, UEIP: ueAddr})
}

// installRules installs PCC rules into the slice PCEF and records their
// ids in the user's control state for per-rule charging.
func (cp *ControlPlane) installRules(ue *state.UE, rules []pcef.Rule) {
	for _, r := range rules {
		// Rules are slice-scoped; re-installation of a shared rule id is
		// fine.
		_ = cp.s.pcefTable.Install(r)
	}
	ue.WriteCtrl(func(c *state.ControlState) {
		for _, r := range rules {
			if c.RuleCount < uint8(len(c.RuleIDs)) {
				c.RuleIDs[c.RuleCount] = r.ID
				c.RuleCount++
			}
		}
	})
}

// AttachEvent applies the state work of an attach signaling event to an
// already-attached user — the paper's at-scale synthetic workload ("when
// a attach event is received, the user device creates the appropriate
// user device state, and adds it to state table", §5.1, uniformly
// distributed over existing devices): the control thread rewrites the
// user's QoS/policy and tunnel state and (re)notifies the data plane.
func (cp *ControlPlane) AttachEvent(imsi uint64) error {
	ue := cp.s.cp.LookupIMSI(imsi)
	if ue == nil {
		return ErrUserUnknown
	}
	var teid, ueAddr uint32
	ue.WriteCtrl(func(c *state.ControlState) {
		c.Attached = true
		c.LastActive = sim.Now()
		// Refresh QoS/policy as the real event installs it anew.
		c.Bearers[0].QCI = 9
		c.TAIList[0] = c.TAI
		c.TAICount = 1
		teid = c.UplinkTEID
		ueAddr = c.UEAddr
	})
	cp.notifyInsert(teid, ueAddr, ue)
	cp.Attaches.Add(1)
	return nil
}

// S1Handover applies an S1-based handover (paper §4.2: "S1-based
// handovers require modification of specific elements of the user state,
// specifically eNodeB tunnel identifier ... and the IP address of the
// new base-station"). Only control state changes; the data plane reads
// the new tunnel on its next packet.
func (cp *ControlPlane) S1Handover(imsi uint64, newENBAddr, newDownlinkTEID, newECGI uint32) error {
	ue := cp.s.cp.LookupIMSI(imsi)
	if ue == nil {
		return ErrUserUnknown
	}
	ue.WriteCtrl(func(c *state.ControlState) {
		c.ENBAddr = newENBAddr
		c.DownlinkTEID = newDownlinkTEID
		c.ECGI = newECGI
		c.LastActive = sim.Now()
	})
	cp.Handovers.Add(1)
	return nil
}

// Detach removes a user entirely.
func (cp *ControlPlane) Detach(imsi uint64) error {
	ue, err := cp.s.cp.Remove(imsi)
	if err != nil {
		return ErrUserUnknown
	}
	var teid, ueAddr uint32
	ue.ReadCtrl(func(c *state.ControlState) {
		teid = c.UplinkTEID
		ueAddr = c.UEAddr
	})
	cp.notifyDelete(teid, ueAddr)
	cp.collector.Forget(imsi)
	if cp.proxy != nil {
		_ = cp.proxy.TerminateGxSession(imsi)
	}
	if cp.s.arena != nil {
		cp.s.arena.Retire(ue.Handle(), cp.s.data.syncSeq.Load())
	}
	cp.retire(ue, teid, ueAddr)
	cp.Detaches.Add(1)
	return nil
}

// AllocateIoT hands out a TEID/address pair from the stateless-IoT pool
// (§4.2): no per-user state is created; the pool membership itself
// encodes the service class.
func (cp *ControlPlane) AllocateIoT() (teid uint32, ok bool) {
	if cp.s.cfg.IoTTEIDCount == 0 || cp.iotSeq >= cp.s.cfg.IoTTEIDCount {
		return 0, false
	}
	teid = cp.s.cfg.IoTTEIDBase + cp.iotSeq
	cp.iotSeq++
	return teid, true
}

// Lookup returns a user's state by IMSI (diagnostics, migration).
func (cp *ControlPlane) Lookup(imsi uint64) *state.UE {
	return cp.s.cp.LookupIMSI(imsi)
}

// CollectUsage closes the user's charging interval and, when a proxy is
// attached, reports usage to the PCRF.
func (cp *ControlPlane) CollectUsage(imsi uint64, now int64) (charging.CDR, error) {
	ue := cp.s.cp.LookupIMSI(imsi)
	if ue == nil {
		return charging.CDR{}, ErrUserUnknown
	}
	cdr, busy := cp.collector.Collect(ue, imsi, now)
	if busy && cp.proxy != nil {
		_ = cp.proxy.ReportUsage(imsi, cdr.Delta.Total())
	}
	return cdr, nil
}

// Promote forces a device's state into the primary table (two-level
// mode): the control thread resolves the keys and queues the insert for
// the data thread. No-op in single-table mode.
func (cp *ControlPlane) Promote(imsi uint64) error {
	if cp.s.tl == nil {
		return nil
	}
	ue := cp.s.cp.LookupIMSI(imsi)
	if ue == nil {
		return ErrUserUnknown
	}
	var teid, ueAddr uint32
	ue.ReadCtrl(func(c *state.ControlState) {
		teid = c.UplinkTEID
		ueAddr = c.UEAddr
	})
	cp.s.updates.Push(state.Update{Op: state.OpInsert, TEID: teid, UEIP: ueAddr, UE: ue})
	cp.Promotions.Add(1)
	return nil
}

// Demote evicts a device's state from the primary table; it remains in
// the secondary (idle device, §3.2). No-op in single-table mode.
func (cp *ControlPlane) Demote(imsi uint64) error {
	if cp.s.tl == nil {
		return nil
	}
	ue := cp.s.cp.LookupIMSI(imsi)
	if ue == nil {
		return ErrUserUnknown
	}
	var teid, ueAddr uint32
	ue.ReadCtrl(func(c *state.ControlState) {
		teid = c.UplinkTEID
		ueAddr = c.UEAddr
	})
	cp.s.updates.Push(state.Update{Op: state.OpDelete, TEID: teid, UEIP: ueAddr})
	cp.Evictions.Add(1)
	return nil
}

// requestPromotion is called by the data thread on a secondary-table hit.
func (cp *ControlPlane) requestPromotion(ue *state.UE) {
	// Best effort: a full queue just means the promotion happens on a
	// later miss — but count the drop so a sustained promotion backlog
	// is visible in the slice stats instead of silent.
	if !cp.promoteQ.Enqueue(promoteReq{ue: ue}) {
		cp.PromoteDrops.Add(1)
	}
}

// Maintain performs one round of control-thread housekeeping: drains
// promotion requests into data-plane updates and evicts idle users from
// the primary table. Returns the number of actions taken. Call it
// periodically from the control loop.
func (cp *ControlPlane) Maintain(now, idleNs int64) int {
	actions := 0
	for {
		req, ok := cp.promoteQ.Dequeue()
		if !ok {
			break
		}
		var teid, ueAddr uint32
		req.ue.ReadCtrl(func(c *state.ControlState) {
			teid = c.UplinkTEID
			ueAddr = c.UEAddr
		})
		cp.s.updates.Push(state.Update{Op: state.OpInsert, TEID: teid, UEIP: ueAddr, UE: req.ue})
		cp.Promotions.Add(1)
		actions++
	}
	if cp.s.tl != nil && idleNs > 0 {
		n := cp.s.tl.EvictIdle(now, idleNs, func(teid, ip uint32) {
			cp.s.updates.Push(state.Update{Op: state.OpDelete, TEID: teid, UEIP: ip})
			cp.Evictions.Add(1)
		})
		actions += n
	}
	actions += cp.RepairDegraded(repairBatch)
	return actions
}

// extract snapshots a user and removes it from the slice (migration
// source side). The data plane stops finding the user after its next
// update sync; the node scheduler buffers in-flight packets meanwhile.
// The returned QoSLevels carry the policing budget (token-bucket fill)
// the user had accrued, captured from the data-private limiter once the
// fence proves the data thread is done with it.
func (cp *ControlPlane) extract(imsi uint64) (state.ControlState, state.CounterState, state.QoSLevels, error) {
	var lv state.QoSLevels
	ue, err := cp.s.cp.Remove(imsi)
	if err != nil {
		return state.ControlState{}, state.CounterState{}, lv, ErrUserUnknown
	}
	var teid, ueAddr uint32
	ue.ReadCtrl(func(c *state.ControlState) {
		teid = c.UplinkTEID
		ueAddr = c.UEAddr
	})
	cp.notifyDelete(teid, ueAddr)
	// Fence: wait until the data thread has completed two sync cycles
	// after the delete was queued. Syncs run between batches, so after
	// the second one no batch that could still write this user's
	// counters remains in flight, and the snapshot below is final. The
	// timeout covers inline setups with no data worker running, where
	// the caller is the only driver of both planes.
	fenced := true
	if cp.s.data.running.Load() {
		seq0 := cp.s.data.syncSeq.Load()
		deadline := time.Now().Add(50 * time.Millisecond)
		for cp.s.data.syncSeq.Load() < seq0+2 {
			if time.Now().After(deadline) {
				fenced = false
				break
			}
			runtime.Gosched()
		}
	}
	cs, cnt := ue.Snapshot()
	// The limiter is data-thread-private: only read it once the fence
	// proves no data batch can still touch this user (the syncSeq load
	// orders the data thread's writes before ours). On a fence timeout
	// the levels are simply not captured and the target starts the
	// limiter full — budget-conserving transfer is best effort, exact
	// whenever the fence holds (always, absent a stalled worker).
	if fenced {
		if l := ue.Hot().Priv.Limiter; l != nil {
			lv.Valid = true
			lv.Levels = l.ExportLevels(sim.Now())
		}
	}
	if cp.s.arena != nil {
		cp.s.arena.Retire(ue.Handle(), cp.s.data.syncSeq.Load())
	}
	cp.collector.Forget(imsi)
	return cs, cnt, lv, nil
}

// install restores a migrated user into this slice (target side),
// preserving identifiers.
func (cp *ControlPlane) install(cs state.ControlState, cnt state.CounterState, now int64) error {
	return cp.installLevels(cs, cnt, state.QoSLevels{}, now)
}

// installLevels is install carrying captured QoS token levels: the
// limiter is pre-built on the (not yet published) hot half with the
// migrated budget, so the data thread's first rebuild reapplies the
// identical configuration and configurePreserving keeps the seeded
// levels — a user cannot reset its policing budget by migrating.
func (cp *ControlPlane) installLevels(cs state.ControlState, cnt state.CounterState, lv state.QoSLevels, now int64) error {
	ue := &state.UE{}
	cp.bindHot(ue)
	ue.Restore(cs, cnt)
	if lv.Valid {
		cp.seedLimiter(ue, &cs, lv)
	}
	if err := cp.s.cp.Insert(ue); err != nil {
		return err
	}
	cp.notifyInsert(cs.UplinkTEID, cs.UEAddr, ue)
	cp.collector.Seed(cs.IMSI, charging.Snapshot(ue, cs.IMSI), now)
	return nil
}

// seedLimiter pre-builds the data-private limiter with the exact
// configuration rebuildPriv will derive from the control state, then
// seeds the migrated token levels. It runs before the user is published
// to the data plane (table insert + update sync), so the single-owner
// rule on Priv holds.
func (cp *ControlPlane) seedLimiter(ue *state.UE, cs *state.ControlState, lv state.QoSLevels) {
	l := &qos.UserLimiter{}
	l.ConfigureUser(cs.AMBRUplink, cs.AMBRDownlink)
	for i := 0; i < int(cs.BearerCount); i++ {
		l.ConfigureBearer(i, cs.Bearers[i].MBRUplink, cs.Bearers[i].MBRDownlink)
	}
	l.SeedLevels(lv.Levels, sim.Now())
	ue.Hot().Priv.Limiter = l
}

// exec runs fn on the control thread when the control loop is active
// (preserving the single-control-writer discipline for scheduler-
// initiated work such as state transfers); otherwise it runs fn inline,
// which is safe because all control-state mutation is lock-protected and
// callers in that mode are the only control-plane driver.
func (cp *ControlPlane) exec(fn func()) {
	if cp.loopRunning.Load() {
		done := make(chan struct{})
		select {
		case cp.s.ctrlCmds <- func() { fn(); close(done) }:
			<-done
			return
		default:
			// Command queue full: fall through to inline execution.
		}
	}
	fn()
}

// RunCtrl runs the slice control loop until stop closes: it services
// scheduler commands (state transfers) and performs periodic maintenance
// (promotions, idle eviction with the given idle threshold).
func (cp *ControlPlane) RunCtrl(stop <-chan struct{}, maintainEvery time.Duration, idleNs int64) {
	cp.loopRunning.Store(true)
	defer cp.loopRunning.Store(false)
	if maintainEvery <= 0 {
		maintainEvery = 10 * time.Millisecond
	}
	tick := time.NewTicker(maintainEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case cmd := <-cp.s.ctrlCmds:
			cmd()
		case <-cp.sigNotify:
			for cp.DrainSignaling(sigDrainBatch) > 0 {
			}
		case <-tick.C:
			cp.Maintain(sim.Now(), idleNs)
			for cp.DrainSignaling(sigDrainBatch) > 0 {
			}
		}
	}
}

// AddDedicatedBearer establishes a dedicated bearer for a user with its
// own QoS class, rate bounds and traffic flow template — the
// dedicated-bearer activation the PCRF triggers for e.g. voice. The data
// plane starts mapping matching flows to the new bearer at its next
// packet.
func (cp *ControlPlane) AddDedicatedBearer(imsi uint64, b state.Bearer) error {
	ue := cp.s.cp.LookupIMSI(imsi)
	if ue == nil {
		return ErrUserUnknown
	}
	added := false
	ue.WriteCtrl(func(c *state.ControlState) {
		added = c.AddBearer(b)
	})
	if !added {
		return ErrPoolExhausted
	}
	return nil
}
