package core

import (
	"errors"
	"sync"

	"pepc/internal/gtp"
	"pepc/internal/hdr"
	"pepc/internal/nf"
	"pepc/internal/pkt"
	"pepc/internal/ring"
	"pepc/internal/sim"
)

// ShardedData runs N share-nothing slices as genuinely concurrent data
// workers (Fig 7): an RSS-style spray steers each packet to the worker
// owning its user and enqueues it on that worker's single-producer/
// single-consumer ring, and each worker drains its own uplink and
// downlink rings on a dedicated goroutine. Nothing is shared between
// shards — per-user state, indexes, PCEF tables and egress rings are all
// per-slice — so throughput scales with cores exactly as the paper's
// share-nothing argument predicts.
//
// The steering function exploits this deployment's address plan: slice
// ID i allocates uplink TEIDs as (i+16)<<24|seq and UE addresses as
// (i+10)<<24|seq (see ControlPlane.allocate), so the top byte of the key
// identifies the owner. That is what a NIC's RSS indirection table does
// on real hardware — a deterministic pure function of the header
// mapping every flow of a user to one queue; here the indirection table
// is built from the shards' ID prefixes.
//
// The spray side is single-producer: call SprayUplink/SprayDownlink from
// one driver goroutine only. Run starts the consumer goroutines.
type ShardedData struct {
	slices []*Slice
	up     []*ring.SPSC[*pkt.Buf]
	down   []*ring.SPSC[*pkt.Buf]

	// Indirection tables: key's top byte → shard index, -1 when no shard
	// owns the prefix.
	byTEID [256]int16
	byIP   [256]int16

	// egressCache batches the driver's DrainEgress frees back to the
	// shared buffer pool (driver-owned, like the spray side).
	egressCache pkt.PoolCache
}

// ErrNoShards reports an empty shard set.
var ErrNoShards = errors.New("core: sharded data plane needs at least one slice")

// NewShardedData builds the runner over the given slices with per-shard
// spray rings of ringCap entries (power of two; 0 selects 4096).
func NewShardedData(slices []*Slice, ringCap int) (*ShardedData, error) {
	if len(slices) == 0 {
		return nil, ErrNoShards
	}
	if ringCap <= 0 {
		ringCap = 1 << 12
	}
	sd := &ShardedData{slices: slices}
	for i := range sd.byTEID {
		sd.byTEID[i] = -1
		sd.byIP[i] = -1
	}
	for i, s := range slices {
		up, err := ring.NewSPSC[*pkt.Buf](ringCap)
		if err != nil {
			return nil, err
		}
		down, err := ring.NewSPSC[*pkt.Buf](ringCap)
		if err != nil {
			return nil, err
		}
		sd.up = append(sd.up, up)
		sd.down = append(sd.down, down)
		id := uint32(s.Config().ID)
		sd.byTEID[byte(id+16)] = int16(i)
		sd.byIP[byte(id+10)] = int16(i)
	}
	return sd, nil
}

// Shards returns the number of shards.
func (sd *ShardedData) Shards() int { return len(sd.slices) }

// Slice returns shard i's slice.
func (sd *ShardedData) Slice(i int) *Slice { return sd.slices[i] }

// SteerUplink returns the shard owning an encapsulated uplink packet.
// Packets that do not parse as G-PDUs (echo requests, malformed input)
// go to shard 0, whose data plane serves the echo fast path or drops.
// Validated parses are recorded in the packet metadata so the owning
// shard's decap does not re-walk the outer headers.
func (sd *ShardedData) SteerUplink(b *pkt.Buf) int {
	teid, hdrLen, err := gtp.ParseOuter(b.Bytes())
	if err != nil {
		return 0
	}
	b.Meta.TEID = teid
	b.Meta.OuterLen = uint16(hdrLen)
	b.Meta.OuterParsed = true
	if s := sd.byTEID[byte(teid>>24)]; s >= 0 {
		return int(s)
	}
	return 0
}

// SteerDownlink returns the shard owning a plain-IP downlink packet by
// its destination (UE) address prefix.
func (sd *ShardedData) SteerDownlink(b *pkt.Buf) int {
	data := b.Bytes()
	if len(data) >= pkt.IPv4HeaderLen {
		if s := sd.byIP[data[16]]; s >= 0 {
			return int(s)
		}
	}
	return 0
}

// SprayUplink steers an uplink packet and enqueues it on its shard's
// ring, reporting false when the ring is full (caller applies
// backpressure or drops).
func (sd *ShardedData) SprayUplink(b *pkt.Buf) bool {
	return sd.up[sd.SteerUplink(b)].Enqueue(b)
}

// SprayDownlink is SprayUplink for the downlink direction.
func (sd *ShardedData) SprayDownlink(b *pkt.Buf) bool {
	return sd.down[sd.SteerDownlink(b)].Enqueue(b)
}

// DrainEgress frees every packet currently queued on the shards' egress
// rings and returns the count. The driver is the rings' only consumer;
// frees go through the driver's pool cache so a drained batch costs one
// shared-pool interaction.
func (sd *ShardedData) DrainEgress() int {
	n := 0
	for _, s := range sd.slices {
		for {
			b, ok := s.Egress.Dequeue()
			if !ok {
				break
			}
			sd.egressCache.Put(b)
			n++
		}
	}
	return n
}

// FlushCaches returns the driver-side cached buffers to the shared pool;
// call after a measurement run.
func (sd *ShardedData) FlushCaches() { sd.egressCache.Flush() }

// Latency merges every shard's per-worker, per-direction latency
// histograms into one readout snapshot. Lock-free against running
// workers: each worker records into its own slice's histograms and the
// merge reads them atomically.
func (sd *ShardedData) Latency() *hdr.Histogram {
	m := hdr.New()
	for _, s := range sd.slices {
		m.Merge(s.Data().LatencyUplink())
		m.Merge(s.Data().LatencyDownlink())
	}
	return m
}

// Terminal returns the total number of packets the shards have brought
// to a terminal state (forwarded or dropped); the driver uses the delta
// across a run to know when every sprayed packet has been consumed.
func (sd *ShardedData) Terminal() uint64 {
	var n uint64
	for _, s := range sd.slices {
		n += s.Data().Forwarded.Load() + s.Data().Dropped.Load()
	}
	return n
}

// Run starts one data goroutine per shard and blocks until stop closes
// and every worker has exited. Each worker polls its shard's uplink and
// downlink spray rings with the slice's BatchSize and syncs control
// updates every SyncEvery packets, exactly like Slice.RunData — the only
// difference is the ring type (SPSC from the spray, instead of the
// slice's multi-producer ingress rings).
func (sd *ShardedData) Run(stop <-chan struct{}) {
	var wg sync.WaitGroup
	wg.Add(len(sd.slices))
	for i, s := range sd.slices {
		go func(i int, s *Slice) {
			defer wg.Done()
			s.data.running.Store(true)
			defer s.data.running.Store(false)
			w := &nf.Worker{
				In:             sd.up[i],
				In2:            sd.down[i],
				BatchSize:      s.cfg.BatchSize,
				HousekeepEvery: s.cfg.SyncEvery,
				Handler: func(batch []*pkt.Buf) {
					s.data.ProcessUplinkBatch(batch, sim.Now())
				},
				Handler2: func(batch []*pkt.Buf) {
					s.data.ProcessDownlinkBatch(batch, sim.Now())
				},
				Housekeep: func() { s.data.SyncUpdates() },
				Cache:     &s.data.cache,
			}
			w.Run(stop)
		}(i, s)
	}
	wg.Wait()
}
