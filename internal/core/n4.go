package core

import (
	"encoding/binary"
	"sync/atomic"
	"time"

	"pepc/internal/bpf"
	"pepc/internal/pcef"
	"pepc/internal/pfcp"
	"pepc/internal/state"
)

// This file is the UPF side of N4 (PFCP, 29.244): the node terminates an
// SMF's association and maps its sessions onto the existing slice
// machinery. Nothing new is built for the 5G data path — a PFCP session
// IS a PEPC user whose identifiers the SMF assigned:
//
//   - the Access-side PDR's F-TEID becomes the user's uplink TEID (the
//     DataPath's uplink index key) and the PDI UE IP its address (the
//     downlink key), installed through Attach's assigned-identifier path;
//   - the downlink FAR's Outer Header Creation becomes the
//     DownlinkTEID/ENBAddr pair the data plane stamps into its cached
//     GTP-U encap template;
//   - QER maximum bit rates become the AMBR the per-user token buckets
//     enforce (29.244 carries kbps; the slice polices bits/s);
//   - QER gates become PCEF drop rules keyed on the UE address, and SDF
//     filters become dedicated-bearer TFTs (mirrored for uplink-side
//     PDRs) with the referenced QER's MBR as the bearer bound.
//
// Establishment runs the attach inline (the response must report the
// outcome), but modification and deletion ride the same batched
// signaling path the 4G procedures use: each request enqueues a SigEvent
// (SigS1Handover for FAR rewrites, SigQoSUpdate for QER rewrites,
// SigDetach for deletion) and a transport-driven Flush drains every
// touched slice once per datagram burst, so N consecutive 5G
// modifications cost one grouped procedure batch, not N table walks.
//
// The UPF is single-goroutine (the N4 listener); only the Stats counters
// are cross-thread.

// n4IMSIBase is the synthetic identity space for PFCP sessions. PFCP
// carries no IMSI — the SMF owns subscriber identity — but every slice
// context is keyed by one, so the UPF mints them from its session ids,
// far above any provisioned 15-digit IMSI.
const n4IMSIBase uint64 = 0x5F50 << 48

// n4RuleBase keys the PCEF rules the UPF installs for QER gates, clear
// of the PCRF's rule-id space.
const n4RuleBase uint32 = 0x5F50_0000

// n4Session is one PFCP session's binding onto a slice user.
type n4Session struct {
	localSEID uint64 // the UPF's session id (what the SMF addresses)
	smfSEID   uint64 // the SMF's session id (what responses address)
	imsi      uint64
	slice     int
	teid      uint32 // uplink F-TEID, registered with the demux
	ueAddr    uint32
	bearers   uint8 // dedicated bearers installed from SDF filters
	gateUL    bool  // PCEF drop rules currently installed
	gateDL    bool
}

// N4Stats snapshots the UPF's N4 message counters.
type N4Stats struct {
	Associations uint64
	Heartbeats   uint64
	Established  uint64
	Modified     uint64
	Deleted      uint64
	Rejected     uint64
	Malformed    uint64
}

// UPF terminates PFCP for a node, mapping SMF-driven sessions onto
// slices round-robin. Construct with NewUPF; drive with Handle (one
// datagram in, at most one response out) and Flush (once per burst).
type UPF struct {
	node     *Node
	nodeAddr uint32
	recovery uint32

	nextSEID  uint64
	nextSlice int
	sessions  map[uint64]*n4Session
	assoc     map[uint32]uint32 // SMF node id -> its recovery stamp

	// dirty marks slices with enqueued-but-undrained signaling.
	dirty    []bool
	dirtyAny bool

	live         atomic.Int64
	associations atomic.Uint64
	heartbeats   atomic.Uint64
	established  atomic.Uint64
	modified     atomic.Uint64
	deleted      atomic.Uint64
	rejected     atomic.Uint64
	malformed    atomic.Uint64
}

// NewUPF builds the node's N4 endpoint. nodeAddr is the UPF's node
// identity (IPv4, host order) reported in association responses.
func NewUPF(node *Node, nodeAddr uint32) *UPF {
	return &UPF{
		node:     node,
		nodeAddr: nodeAddr,
		recovery: uint32(time.Now().Unix()),
		sessions: make(map[uint64]*n4Session),
		assoc:    make(map[uint32]uint32),
		dirty:    make([]bool, node.NumSlices()),
	}
}

// Stats snapshots the message counters (any thread).
func (u *UPF) Stats() N4Stats {
	return N4Stats{
		Associations: u.associations.Load(),
		Heartbeats:   u.heartbeats.Load(),
		Established:  u.established.Load(),
		Modified:     u.modified.Load(),
		Deleted:      u.deleted.Load(),
		Rejected:     u.rejected.Load(),
		Malformed:    u.malformed.Load(),
	}
}

// Sessions returns the live session count (any thread).
func (u *UPF) Sessions() int { return int(u.live.Load()) }

// Handle processes one PFCP datagram and appends the response (if the
// message warrants one) to dst, returning the extended slice. A nil
// growth means nothing to send. Modification and deletion enqueue their
// state changes; call Flush after a burst of Handles to drain them as
// grouped batches before the responses hit the wire.
func (u *UPF) Handle(data, dst []byte) []byte {
	m, err := pfcp.Unmarshal(data)
	if err != nil {
		u.malformed.Add(1)
		return dst
	}
	switch m.Type {
	case pfcp.MsgHeartbeatRequest:
		u.heartbeats.Add(1)
		r := pfcp.BuildHeartbeatResponse(m.Seq, u.recovery)
		return r.Marshal(dst)
	case pfcp.MsgAssociationSetupRequest:
		return u.handleAssociation(&m, dst)
	case pfcp.MsgSessionEstablishmentRequest:
		return u.handleEstablishment(&m, dst)
	case pfcp.MsgSessionModificationRequest:
		return u.handleModification(&m, dst)
	case pfcp.MsgSessionDeletionRequest:
		return u.handleDeletion(&m, dst)
	}
	// Responses and unknown types: nothing to say.
	return dst
}

// Flush drains the batched signaling of every slice touched since the
// last flush. Call once per datagram burst, after the Handles.
func (u *UPF) Flush() {
	if !u.dirtyAny {
		return
	}
	for i, d := range u.dirty {
		if !d {
			continue
		}
		u.dirty[i] = false
		cp := u.node.Slice(i).Control()
		for cp.DrainSignaling(0) > 0 {
		}
	}
	u.dirtyAny = false
}

// enqueue submits ev to slice idx's control ring, draining inline once
// if the ring is full (backpressure cannot be surfaced mid-burst: the
// request was already validated and will be answered accepted).
func (u *UPF) enqueue(idx int, ev SigEvent) {
	cp := u.node.Slice(idx).Control()
	if !cp.EnqueueSignal(ev) {
		for cp.DrainSignaling(0) > 0 {
		}
		cp.EnqueueSignal(ev)
	}
	u.dirty[idx] = true
	u.dirtyAny = true
}

func (u *UPF) handleAssociation(m *pfcp.Message, dst []byte) []byte {
	cause := pfcp.CauseAccepted
	id := pfcp.FindIE(m.IEs, pfcp.IENodeID)
	if id == nil {
		cause = pfcp.CauseMandatoryIEMissing
	} else if addr, err := pfcp.ParseNodeID(id); err != nil {
		cause = pfcp.CauseMandatoryIEMissing
	} else {
		var rec uint32
		if r := pfcp.FindIE(m.IEs, pfcp.IERecoveryTimeStamp); r != nil && len(r.Value) >= 4 {
			rec = binary.BigEndian.Uint32(r.Value)
		}
		u.assoc[addr] = rec
		u.associations.Add(1)
	}
	if cause != pfcp.CauseAccepted {
		u.rejected.Add(1)
	}
	r := pfcp.BuildAssociationSetupResponse(m.Seq, u.nodeAddr, cause, u.recovery)
	return r.Marshal(dst)
}

// sessionReject appends a session-level rejection.
func (u *UPF) sessionReject(respType uint8, seq uint32, seid uint64, cause uint8, dst []byte) []byte {
	u.rejected.Add(1)
	r := pfcp.BuildSessionResponse(respType, seq, seid, cause, 0, 0)
	return r.Marshal(dst)
}

func (u *UPF) handleEstablishment(m *pfcp.Message, dst []byte) []byte {
	const resp = pfcp.MsgSessionEstablishmentResponse
	if len(u.assoc) == 0 {
		return u.sessionReject(resp, m.Seq, 0, pfcp.CauseNoEstablishedAssociation, dst)
	}
	req, err := pfcp.ParseSessionRequest(m)
	if err != nil {
		return u.sessionReject(resp, m.Seq, 0, pfcp.CauseMandatoryIEMissing, dst)
	}
	// The minimal viable session: the SMF's F-SEID, an Access-side PDR
	// carrying the uplink F-TEID, and a UE address from any PDI.
	var uplink *pfcp.PDR
	var ueAddr uint32
	for i := range req.CreatePDRs {
		p := &req.CreatePDRs[i]
		if uplink == nil && p.SourceInterface == pfcp.InterfaceAccess && p.TEID != 0 {
			uplink = p
		}
		if ueAddr == 0 && p.UEAddr != 0 {
			ueAddr = p.UEAddr
		}
	}
	if req.FSEID == 0 || uplink == nil || ueAddr == 0 {
		return u.sessionReject(resp, m.Seq, req.FSEID, pfcp.CauseMandatoryIEMissing, dst)
	}

	// Downlink FAR -> encap template endpoint; absent (the gNB tunnel is
	// often completed by a later modification) the tunnel stays half
	// open and downlink drops at egress until it arrives.
	var enbAddr, dlTEID uint32
	for i := range req.CreateFARs {
		f := &req.CreateFARs[i]
		if f.OuterHeaderCreation {
			enbAddr, dlTEID = f.Addr, f.TEID
			break
		}
	}

	// The uplink PDR's QER (or the first) is the session-aggregate rate.
	agg := findQER(req.CreateQERs, uplink.QERID)
	var ambrUL, ambrDL uint64
	if agg != nil {
		ambrUL = agg.MBRUplinkKbps * 1000
		ambrDL = agg.MBRDownlinkKbps * 1000
	}

	// Ordering fence: queued detaches from an earlier burst may still
	// hold this TEID's index entry; drain before re-binding identifiers.
	u.Flush()

	seid := u.nextSEID + 1
	imsi := n4IMSIBase | seid
	idx := u.nextSlice % u.node.NumSlices()
	_, err = u.node.AttachUser(idx, AttachSpec{
		IMSI:               imsi,
		ENBAddr:            enbAddr,
		DownlinkTEID:       dlTEID,
		AMBRUplink:         ambrUL,
		AMBRDownlink:       ambrDL,
		AssignedUplinkTEID: uplink.TEID,
		AssignedUEAddr:     ueAddr,
		Preauthorized:      true,
	})
	if err != nil {
		return u.sessionReject(resp, m.Seq, req.FSEID, pfcp.CauseRequestRejected, dst)
	}
	u.nextSEID = seid
	u.nextSlice++
	s := &n4Session{
		localSEID: seid, smfSEID: req.FSEID, imsi: imsi,
		slice: idx, teid: uplink.TEID, ueAddr: ueAddr,
	}

	// SDF-filtered PDRs become dedicated bearers: TFT from the flow
	// description (mirrored when the PDR detects uplink), MBR from the
	// PDR's own QER when it differs from the session aggregate.
	cp := u.node.Slice(idx).Control()
	for i := range req.CreatePDRs {
		p := &req.CreatePDRs[i]
		if p.SDF == "" {
			continue
		}
		fs, err := pfcp.ParseFlowDesc(p.SDF)
		if err != nil {
			u.teardown(s)
			return u.sessionReject(resp, m.Seq, req.FSEID, pfcp.CauseRequestRejected, dst)
		}
		b := state.Bearer{
			EBI: 6 + s.bearers,
			QCI: 7,
			TFT: filterFromFlowSpec(&fs, ueAddr, p.SourceInterface == pfcp.InterfaceAccess),
		}
		if q := findQER(req.CreateQERs, p.QERID); q != nil && q != agg {
			b.MBRUplink = q.MBRUplinkKbps * 1000
			b.MBRDownlink = q.MBRDownlinkKbps * 1000
		}
		if err := cp.AddDedicatedBearer(imsi, b); err != nil {
			u.teardown(s)
			return u.sessionReject(resp, m.Seq, req.FSEID, pfcp.CauseRequestRejected, dst)
		}
		s.bearers++
	}

	// QER gates -> PCEF drop rules on the UE address.
	if agg != nil {
		u.setGates(s, agg.GateClosedUL, agg.GateClosedDL)
	}

	u.sessions[seid] = s
	u.live.Add(1)
	u.established.Add(1)
	r := pfcp.BuildSessionResponse(resp, m.Seq, req.FSEID, pfcp.CauseAccepted, seid, u.nodeAddr)
	return r.Marshal(dst)
}

func (u *UPF) handleModification(m *pfcp.Message, dst []byte) []byte {
	const resp = pfcp.MsgSessionModificationResponse
	s, ok := u.sessions[m.SEID]
	if !ok {
		return u.sessionReject(resp, m.Seq, 0, pfcp.CauseSessionContextNotFound, dst)
	}
	req, err := pfcp.ParseSessionRequest(m)
	if err != nil {
		return u.sessionReject(resp, m.Seq, s.smfSEID, pfcp.CauseMandatoryIEMissing, dst)
	}
	// FAR rewrites ride the handover batch: same state touched (the
	// serving tunnel endpoint), same grouped procedure.
	for i := range req.UpdateFARs {
		f := &req.UpdateFARs[i]
		if !f.OuterHeaderCreation {
			continue
		}
		u.enqueue(s.slice, SigEvent{
			Kind: SigS1Handover, IMSI: s.imsi,
			ENBAddr: f.Addr, DownlinkTEID: f.TEID,
		})
	}
	for i := range req.UpdateQERs {
		q := &req.UpdateQERs[i]
		u.enqueue(s.slice, SigEvent{
			Kind: SigQoSUpdate, IMSI: s.imsi,
			AMBRUplink:   q.MBRUplinkKbps * 1000,
			AMBRDownlink: q.MBRDownlinkKbps * 1000,
		})
		u.setGates(s, q.GateClosedUL, q.GateClosedDL)
	}
	u.modified.Add(1)
	r := pfcp.BuildSessionResponse(resp, m.Seq, s.smfSEID, pfcp.CauseAccepted, 0, 0)
	return r.Marshal(dst)
}

func (u *UPF) handleDeletion(m *pfcp.Message, dst []byte) []byte {
	const resp = pfcp.MsgSessionDeletionResponse
	s, ok := u.sessions[m.SEID]
	if !ok {
		return u.sessionReject(resp, m.Seq, 0, pfcp.CauseSessionContextNotFound, dst)
	}
	delete(u.sessions, m.SEID)
	u.live.Add(-1)
	u.teardown(s)
	u.deleted.Add(1)
	r := pfcp.BuildSessionResponse(resp, m.Seq, s.smfSEID, pfcp.CauseAccepted, 0, 0)
	return r.Marshal(dst)
}

// teardown removes a session's slice state: gates out of the PCEF,
// steering out of the demux, and the user context through the batched
// detach. The demux unregisters immediately so no new wire packets
// steer to a user queued for removal.
func (u *UPF) teardown(s *n4Session) {
	u.setGates(s, false, false)
	u.node.Demux().Unregister(s.teid, s.ueAddr, s.imsi)
	u.enqueue(s.slice, SigEvent{Kind: SigDetach, IMSI: s.imsi})
}

// setGates reconciles the session's QER gate state with the slice PCEF:
// a closed gate is a drop rule on the UE's address in that direction
// (uplink inner packets source it, downlink packets are addressed to it).
func (u *UPF) setGates(s *n4Session, closeUL, closeDL bool) {
	t := u.node.Slice(s.slice).PCEF()
	ulID := n4RuleBase | uint32(s.localSEID)<<1
	dlID := ulID | 1
	if closeUL != s.gateUL {
		if closeUL {
			t.Install(pcef.Rule{
				ID: ulID, Precedence: 1, Action: pcef.ActionDrop,
				Filter: bpf.FilterSpec{SrcAddr: s.ueAddr, SrcPrefix: 32},
			})
		} else {
			t.Remove(ulID)
		}
		s.gateUL = closeUL
	}
	if closeDL != s.gateDL {
		if closeDL {
			t.Install(pcef.Rule{
				ID: dlID, Precedence: 1, Action: pcef.ActionDrop,
				Filter: bpf.FilterSpec{DstAddr: s.ueAddr, DstPrefix: 32},
			})
		} else {
			t.Remove(dlID)
		}
		s.gateDL = closeDL
	}
}

// findQER returns the QER with the given id, the first QER when id is
// zero, or nil.
func findQER(qers []pfcp.QER, id uint32) *pfcp.QER {
	if len(qers) == 0 {
		return nil
	}
	if id == 0 {
		return &qers[0]
	}
	for i := range qers {
		if qers[i].ID == id {
			return &qers[i]
		}
	}
	return nil
}

// filterFromFlowSpec converts a parsed SDF flow description to the bpf
// filter the TFT machinery compiles. The grammar is downlink-oriented
// (Src remote, Dst UE); mirror swaps the sides for uplink-detection
// PDRs, and Assigned endpoints resolve to the session's UE address.
func filterFromFlowSpec(fs *pfcp.FlowSpec, ueAddr uint32, mirror bool) bpf.FilterSpec {
	src, srcPfx := fs.SrcAddr, fs.SrcPrefix
	if fs.SrcAssigned {
		src = ueAddr
	}
	dst, dstPfx := fs.DstAddr, fs.DstPrefix
	if fs.DstAssigned {
		dst = ueAddr
	}
	f := bpf.FilterSpec{
		Proto:     fs.Proto,
		SrcAddr:   src,
		SrcPrefix: srcPfx,
		DstAddr:   dst,
		DstPrefix: dstPfx,
		SrcPortLo: fs.SrcPortLo, SrcPortHi: fs.SrcPortHi,
		DstPortLo: fs.DstPortLo, DstPortHi: fs.DstPortHi,
	}
	if mirror {
		f.SrcAddr, f.DstAddr = f.DstAddr, f.SrcAddr
		f.SrcPrefix, f.DstPrefix = f.DstPrefix, f.SrcPrefix
		f.SrcPortLo, f.DstPortLo = f.DstPortLo, f.SrcPortLo
		f.SrcPortHi, f.DstPortHi = f.DstPortHi, f.SrcPortHi
	}
	return f
}
