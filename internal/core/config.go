package core

import (
	"encoding/json"
	"fmt"
	"io"

	"pepc/internal/bpf"
	"pepc/internal/pcef"
	"pepc/internal/pkt"
)

// Operator configuration (§3.3: the scheduler "instantiates PEPC slices
// based on a given operator configuration"; Listing 1's EpcConfig). The
// JSON form is what cmd/pepcd -config loads.

// OperatorConfig describes a node: its slices and the PCC rules
// pre-installed into each slice's PCEF.
type OperatorConfig struct {
	// Slices to instantiate, in order.
	Slices []SliceSpec `json:"slices"`
}

// SliceSpec is the operator-facing slice description.
type SliceSpec struct {
	// ID must be unique within the node (>= 1).
	ID int `json:"id"`
	// Users hints the expected population for table sizing.
	Users int `json:"users,omitempty"`
	// TwoLevelTable selects the primary/secondary state storage.
	TwoLevelTable bool `json:"two_level_table,omitempty"`
	// StateLayout selects per-user state storage: "" or "pointer" for
	// key→*UE indexes, "handle" for pointer-free key→handle indexes over
	// slab-allocated hot state (DESIGN.md §4.10).
	StateLayout string `json:"state_layout,omitempty"`
	// EncapMode selects downlink GTP-U encapsulation: "" or "template"
	// stamps the per-user precomputed outer header, "serialize" builds
	// the headers field by field per packet (DESIGN.md §4.11).
	EncapMode string `json:"encap_mode,omitempty"`
	// PrimarySize hints the two-level primary table capacity.
	PrimarySize int `json:"primary_size,omitempty"`
	// SyncEvery overrides the data plane's update batching interval.
	SyncEvery int `json:"sync_every,omitempty"`
	// BatchSize overrides the data plane's I/O batch size (how many
	// packets a worker pulls from its ring per iteration), independent
	// of SyncEvery.
	BatchSize int `json:"batch_size,omitempty"`
	// IoTPoolSize reserves that many stateless-IoT TEIDs (§4.2); 0
	// disables the pool.
	IoTPoolSize int `json:"iot_pool_size,omitempty"`
	// CoreAddr is the slice's data-plane address in dotted-quad form;
	// empty picks a default derived from the slice id.
	CoreAddr string `json:"core_addr,omitempty"`
	// Rules are pre-installed PCC rules.
	Rules []RuleSpec `json:"rules,omitempty"`
}

// RuleSpec is the JSON form of a PCC rule.
type RuleSpec struct {
	ID         uint32 `json:"id"`
	Precedence uint16 `json:"precedence"`
	// Action: "allow", "drop", "rate-limit" or "mark".
	Action string `json:"action"`
	// RateMbps applies to rate-limit.
	RateMbps float64 `json:"rate_mbps,omitempty"`
	// DSCP applies to mark.
	DSCP uint8 `json:"dscp,omitempty"`
	// ChargingKey groups usage for charging.
	ChargingKey uint32 `json:"charging_key,omitempty"`
	// Filter fields; zero values are wildcards.
	Proto     string `json:"proto,omitempty"` // "tcp", "udp", "icmp"
	SrcCIDR   string `json:"src_cidr,omitempty"`
	DstCIDR   string `json:"dst_cidr,omitempty"`
	SrcPortLo uint16 `json:"src_port_lo,omitempty"`
	SrcPortHi uint16 `json:"src_port_hi,omitempty"`
	DstPortLo uint16 `json:"dst_port_lo,omitempty"`
	DstPortHi uint16 `json:"dst_port_hi,omitempty"`
}

// LoadOperatorConfig parses a JSON operator configuration.
func LoadOperatorConfig(r io.Reader) (OperatorConfig, error) {
	var cfg OperatorConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("core: parsing operator config: %w", err)
	}
	if len(cfg.Slices) == 0 {
		return cfg, fmt.Errorf("core: operator config has no slices")
	}
	seen := map[int]bool{}
	for i, sp := range cfg.Slices {
		if sp.ID <= 0 {
			return cfg, fmt.Errorf("core: slice %d: id must be >= 1", i)
		}
		if seen[sp.ID] {
			return cfg, fmt.Errorf("core: duplicate slice id %d", sp.ID)
		}
		seen[sp.ID] = true
		for _, rs := range sp.Rules {
			if _, err := rs.rule(); err != nil {
				return cfg, fmt.Errorf("core: slice %d rule %d: %w", sp.ID, rs.ID, err)
			}
		}
	}
	return cfg, nil
}

// BuildNode instantiates a node from the configuration: slices with their
// table modes and IoT pools, and each slice's PCEF populated with the
// configured rules.
func BuildNode(cfg OperatorConfig) (*Node, error) {
	sliceCfgs := make([]SliceConfig, len(cfg.Slices))
	for i, sp := range cfg.Slices {
		sc := SliceConfig{
			ID:          sp.ID,
			UserHint:    sp.Users,
			PrimaryHint: sp.PrimarySize,
			SyncEvery:   sp.SyncEvery,
			BatchSize:   sp.BatchSize,
		}
		if sp.TwoLevelTable {
			sc.TableMode = TableTwoLevel
		}
		switch sp.StateLayout {
		case "", "pointer":
		case "handle":
			sc.StateLayout = LayoutHandle
		default:
			return nil, fmt.Errorf("core: slice %d: unknown state_layout %q", sp.ID, sp.StateLayout)
		}
		switch sp.EncapMode {
		case "", "template":
			sc.EncapMode = EncapTemplate
		case "serialize":
			sc.EncapMode = EncapSerialize
		default:
			return nil, fmt.Errorf("core: slice %d: unknown encap_mode %q", sp.ID, sp.EncapMode)
		}
		if sp.IoTPoolSize > 0 {
			sc.IoTTEIDBase = 0xE000_0000 | uint32(sp.ID)<<20
			sc.IoTTEIDCount = uint32(sp.IoTPoolSize)
		}
		if sp.CoreAddr != "" {
			addr, err := parseIPv4(sp.CoreAddr)
			if err != nil {
				return nil, fmt.Errorf("core: slice %d core_addr: %w", sp.ID, err)
			}
			sc.CoreAddr = addr
		}
		sliceCfgs[i] = sc
	}
	n := NewNode(sliceCfgs...)
	for i, sp := range cfg.Slices {
		for _, rs := range sp.Rules {
			rule, err := rs.rule()
			if err != nil {
				return nil, err
			}
			if err := n.Slice(i).PCEF().Install(rule); err != nil {
				return nil, fmt.Errorf("core: slice %d: installing rule %d: %w", sp.ID, rs.ID, err)
			}
		}
	}
	return n, nil
}

// rule converts the JSON form to a pcef.Rule.
func (rs RuleSpec) rule() (pcef.Rule, error) {
	r := pcef.Rule{
		ID:             rs.ID,
		Precedence:     rs.Precedence,
		ChargingKey:    rs.ChargingKey,
		DSCP:           rs.DSCP,
		RateBitsPerSec: uint64(rs.RateMbps * 1e6),
	}
	switch rs.Action {
	case "", "allow":
		r.Action = pcef.ActionAllow
	case "drop":
		r.Action = pcef.ActionDrop
	case "rate-limit":
		r.Action = pcef.ActionRateLimit
	case "mark":
		r.Action = pcef.ActionMark
	default:
		return r, fmt.Errorf("unknown action %q", rs.Action)
	}
	var f bpf.FilterSpec
	switch rs.Proto {
	case "":
	case "tcp":
		f.Proto = pkt.ProtoTCP
	case "udp":
		f.Proto = pkt.ProtoUDP
	case "icmp":
		f.Proto = pkt.ProtoICMP
	default:
		return r, fmt.Errorf("unknown proto %q", rs.Proto)
	}
	if rs.SrcCIDR != "" {
		addr, bits, err := parseCIDR(rs.SrcCIDR)
		if err != nil {
			return r, err
		}
		f.SrcAddr, f.SrcPrefix = addr, bits
	}
	if rs.DstCIDR != "" {
		addr, bits, err := parseCIDR(rs.DstCIDR)
		if err != nil {
			return r, err
		}
		f.DstAddr, f.DstPrefix = addr, bits
	}
	f.SrcPortLo, f.SrcPortHi = rs.SrcPortLo, rs.SrcPortHi
	f.DstPortLo, f.DstPortHi = rs.DstPortLo, rs.DstPortHi
	if f.SrcPortLo > f.SrcPortHi || f.DstPortLo > f.DstPortHi {
		return r, fmt.Errorf("port range lo > hi")
	}
	r.Filter = f
	return r, nil
}

// parseIPv4 parses a dotted-quad address into host order.
func parseIPv4(s string) (uint32, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad IPv4 %q", s)
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return 0, fmt.Errorf("bad IPv4 %q", s)
		}
	}
	return pkt.IPv4Addr(byte(a), byte(b), byte(c), byte(d)), nil
}

// parseCIDR parses "a.b.c.d/len".
func parseCIDR(s string) (uint32, uint8, error) {
	var a, b, c, d, bits int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d/%d", &a, &b, &c, &d, &bits); err != nil {
		return 0, 0, fmt.Errorf("bad CIDR %q", s)
	}
	if bits < 0 || bits > 32 {
		return 0, 0, fmt.Errorf("bad prefix length in %q", s)
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return 0, 0, fmt.Errorf("bad CIDR %q", s)
		}
	}
	return pkt.IPv4Addr(byte(a), byte(b), byte(c), byte(d)), uint8(bits), nil
}
