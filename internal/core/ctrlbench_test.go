package core

import (
	"sync/atomic"
	"testing"

	"pepc/internal/pkt"
	"pepc/internal/sim"
)

// BenchmarkUplinkUnderSignalingStorm measures data-plane packet cost
// while a control goroutine saturates the slice with attach events and
// handovers against the same user population — the Figure 6 "1:1"
// regime, where every control write contends with the data thread's
// control-state reads. ns/op is per packet; events/s reports how much
// signaling the control thread pushed through meanwhile.
func BenchmarkUplinkUnderSignalingStorm(b *testing.B) {
	const users = 1024
	s := NewSlice(SliceConfig{ID: 31, UserHint: users * 2})
	res := make([]AttachResult, users)
	for i := range res {
		r, err := s.Control().Attach(AttachSpec{
			IMSI: uint64(i + 1), ENBAddr: 1, DownlinkTEID: uint32(i + 1),
			AMBRUplink: 100e6, AMBRDownlink: 100e6,
		})
		if err != nil {
			b.Fatal(err)
		}
		res[i] = r
	}
	s.Data().SyncUpdates()
	pool := pkt.NewPool(8192, 128)
	batch := make([]*pkt.Buf, 32)

	stop := make(chan struct{})
	var events atomic.Uint64
	go func() {
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			imsi := uint64(i%users + 1)
			if i%4 == 3 {
				s.Control().S1Handover(imsi, 2, uint32(i%users+100), 7)
			} else {
				s.Control().AttachEvent(imsi)
			}
			events.Add(1)
			i++
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i += len(batch) {
		for j := range batch {
			u := res[(i+j)%users]
			batch[j] = buildUplink(pool, u.UplinkTEID, u.UEAddr, 1, s.Config().CoreAddr, 80)
		}
		s.Data().ProcessUplinkBatch(batch, sim.Now())
		drainEgress(s)
	}
	b.StopTimer()
	close(stop)
	if el := b.Elapsed().Seconds(); el > 0 {
		b.ReportMetric(float64(events.Load())/el, "events/s")
	}
}

// BenchmarkAttachDetachCycle measures the signaling steady state the
// control fast path targets: one full attach procedure followed by a
// detach, with a data-plane update sync per cycle (as a running worker
// would perform). Allocations per cycle are the headline number.
func BenchmarkAttachDetachCycle(b *testing.B) {
	s := NewSlice(SliceConfig{ID: 32, UserHint: 1 << 10})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Control().Attach(AttachSpec{IMSI: 7, ENBAddr: 1, DownlinkTEID: 9, AMBRUplink: 10e6}); err != nil {
			b.Fatal(err)
		}
		if err := s.Control().Detach(7); err != nil {
			b.Fatal(err)
		}
		s.Data().SyncUpdates()
	}
}
