package core

import (
	"testing"

	"pepc/internal/gtp"
	"pepc/internal/pfcp"
	"pepc/internal/pkt"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// n4Exchange marshals a PFCP request, runs it through the UPF handler,
// and decodes the response.
func n4Exchange(t *testing.T, u *UPF, m pfcp.Message) pfcp.Message {
	t.Helper()
	resp := u.Handle(m.Marshal(nil), nil)
	if len(resp) == 0 {
		t.Fatalf("no response to message type %d", m.Type)
	}
	r, err := pfcp.Unmarshal(resp)
	if err != nil {
		t.Fatalf("bad response to message type %d: %v", m.Type, err)
	}
	return r
}

// n4Associate runs the association setup an SMF performs before any
// session work.
func n4Associate(t *testing.T, u *UPF) {
	t.Helper()
	r := n4Exchange(t, u, pfcp.BuildAssociationSetupRequest(1, pkt.IPv4Addr(10, 255, 0, 1), 42))
	if c := pfcp.FindIE(r.IEs, pfcp.IECause); c == nil || c.Value[0] != pfcp.CauseAccepted {
		t.Fatalf("association not accepted: %+v", r)
	}
}

// n4Session builds the canonical establishment request: uplink PDR by
// F-TEID with outer header removal, downlink PDR by UE address, a FAR
// wrapping downlink toward the gNB, and an aggregate-rate QER.
func n4SessionReq(smfSEID uint64, teid, ueAddr, gnbAddr, gnbTEID uint32) *pfcp.SessionRequest {
	return &pfcp.SessionRequest{
		FSEID: smfSEID, FSEIDAddr: pkt.IPv4Addr(10, 255, 0, 1),
		NodeID: pkt.IPv4Addr(10, 255, 0, 1),
		CreatePDRs: []pfcp.PDR{
			{ID: 1, Precedence: 100, SourceInterface: pfcp.InterfaceAccess,
				TEID: teid, TEIDAddr: pkt.IPv4Addr(127, 0, 0, 1),
				OuterHeaderRemoval: true, FARID: 2, QERID: 1},
			{ID: 2, Precedence: 100, SourceInterface: pfcp.InterfaceCore,
				UEAddr: ueAddr, FARID: 1, QERID: 1},
		},
		CreateFARs: []pfcp.FAR{
			{ID: 1, DestinationInterface: pfcp.InterfaceAccess,
				OuterHeaderCreation: true, TEID: gnbTEID, Addr: gnbAddr},
			{ID: 2, DestinationInterface: pfcp.InterfaceCore},
		},
		CreateQERs: []pfcp.QER{{ID: 1, MBRUplinkKbps: 50_000, MBRDownlinkKbps: 100_000}},
	}
}

// TestN4SessionLifecycle walks a PFCP session through its whole life
// against the slice machinery: establishment installs the PDR as a
// data-path TEID entry and the FAR as the encap endpoint, packets flow
// both ways, modification rewrites the tunnel and the rate bounds
// through the batched signaling path, and deletion removes every trace.
func TestN4SessionLifecycle(t *testing.T) {
	node := NewNode(SliceConfig{ID: 1, UserHint: 64})
	u := NewUPF(node, pkt.IPv4Addr(127, 0, 0, 1))
	s := node.Slice(0)
	pool := pkt.NewPool(2048, 128)

	const (
		teid    = 0x5E10_0001
		gnbTEID = 0xD000_0001
	)
	ueAddr := pkt.IPv4Addr(45, 1, 0, 1)
	gnbAddr := pkt.IPv4Addr(192, 168, 50, 1)

	// Session requests before an association must be refused.
	est := pfcp.BuildSessionEstablishment(2, n4SessionReq(7, teid, ueAddr, gnbAddr, gnbTEID))
	r := n4Exchange(t, u, est)
	if sr, _ := pfcp.ParseSessionResponse(&r); sr.Cause != pfcp.CauseNoEstablishedAssociation {
		t.Fatalf("pre-association establishment: cause %d, want %d", sr.Cause, pfcp.CauseNoEstablishedAssociation)
	}

	n4Associate(t, u)

	// Establishment: accepted, UPF session id reported, SMF SEID echoed
	// in the header.
	r = n4Exchange(t, u, est)
	sr, err := pfcp.ParseSessionResponse(&r)
	if err != nil || sr.Cause != pfcp.CauseAccepted || sr.FSEID == 0 {
		t.Fatalf("establishment: cause %d fseid %#x err %v", sr.Cause, sr.FSEID, err)
	}
	if r.SEID != 7 {
		t.Fatalf("establishment response header SEID %#x, want the SMF's 7", r.SEID)
	}
	upfSEID := sr.FSEID
	if u.Sessions() != 1 {
		t.Fatalf("sessions = %d", u.Sessions())
	}

	// The PDR became the demux steering entry and the slice user state.
	if idx, ok := node.Demux().LookupSlice(teid); !ok || idx != 0 {
		t.Fatalf("demux lookup by TEID: %d %v", idx, ok)
	}
	ue := s.Control().Lookup(n4IMSIBase | 1)
	if ue == nil {
		t.Fatal("no slice user for the session")
	}
	ue.ReadCtrl(func(c *state.ControlState) {
		if c.UplinkTEID != teid || c.UEAddr != ueAddr {
			t.Fatalf("identifiers: teid %#x addr %#x", c.UplinkTEID, c.UEAddr)
		}
		if c.DownlinkTEID != gnbTEID || c.ENBAddr != gnbAddr {
			t.Fatalf("FAR not mapped: dlteid %#x enb %#x", c.DownlinkTEID, c.ENBAddr)
		}
		if c.AMBRUplink != 50_000_000 || c.AMBRDownlink != 100_000_000 {
			t.Fatalf("QER kbps not scaled to bits/s: %d/%d", c.AMBRUplink, c.AMBRDownlink)
		}
	})

	// Uplink: a GTP-U packet to the PDR's TEID decaps and forwards.
	s.Data().SyncUpdates()
	b := buildUplink(pool, teid, ueAddr, gnbAddr, s.Config().CoreAddr, 80)
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if f := s.Data().Forwarded.Load(); f != 1 {
		t.Fatalf("uplink forwarded = %d (dropped=%d missed=%d)", f, s.Data().Dropped.Load(), s.Data().Missed.Load())
	}
	drainEgress(s)

	// Downlink: a plain IP packet to the UE encaps toward the FAR's
	// outer header endpoint.
	d := buildDownlink(pool, ueAddr, 9000)
	s.Data().ProcessDownlinkBatch([]*pkt.Buf{d}, sim.Now())
	out, ok := s.Egress.Dequeue()
	if !ok {
		t.Fatal("downlink produced no egress")
	}
	if outTEID, _, err := gtp.ParseOuter(out.Bytes()); err != nil || outTEID != gnbTEID {
		t.Fatalf("downlink encap TEID %#x err %v, want FAR's %#x", outTEID, err, gnbTEID)
	}
	out.Free()

	// Modification: FAR rewrite (the gNB moved) and a QER rate change,
	// both through the batched signaling path — visible only after the
	// flush, like any enqueued procedure.
	newGNB := pkt.IPv4Addr(192, 168, 51, 1)
	mod := pfcp.BuildSessionModification(3, &pfcp.SessionRequest{
		SEID: upfSEID,
		UpdateFARs: []pfcp.FAR{{ID: 1, DestinationInterface: pfcp.InterfaceAccess,
			OuterHeaderCreation: true, TEID: gnbTEID + 1, Addr: newGNB}},
		UpdateQERs: []pfcp.QER{{ID: 1, MBRUplinkKbps: 20_000, MBRDownlinkKbps: 40_000}},
	})
	r = n4Exchange(t, u, mod)
	if sr, _ := pfcp.ParseSessionResponse(&r); sr.Cause != pfcp.CauseAccepted {
		t.Fatalf("modification: cause %d", sr.Cause)
	}
	u.Flush()
	ue.ReadCtrl(func(c *state.ControlState) {
		if c.DownlinkTEID != gnbTEID+1 || c.ENBAddr != newGNB {
			t.Fatalf("FAR update not applied: dlteid %#x enb %#x", c.DownlinkTEID, c.ENBAddr)
		}
		if c.AMBRUplink != 20_000_000 || c.AMBRDownlink != 40_000_000 {
			t.Fatalf("QER update not applied: %d/%d", c.AMBRUplink, c.AMBRDownlink)
		}
	})
	if h := s.Control().Handovers.Load(); h != 1 {
		t.Fatalf("FAR rewrite did not ride the handover batch: %d", h)
	}
	if q := s.Control().QoSUpdates.Load(); q != 1 {
		t.Fatalf("QER rewrite did not ride the QoS batch: %d", q)
	}

	// Gate closure: an Update QER with the UL gate shut becomes a PCEF
	// drop rule; the next uplink packet dies in classification.
	gated := pfcp.BuildSessionModification(4, &pfcp.SessionRequest{
		SEID:       upfSEID,
		UpdateQERs: []pfcp.QER{{ID: 1, GateClosedUL: true, MBRUplinkKbps: 20_000, MBRDownlinkKbps: 40_000}},
	})
	n4Exchange(t, u, gated)
	u.Flush()
	b = buildUplink(pool, teid, ueAddr, gnbAddr, s.Config().CoreAddr, 80)
	dropped0 := s.Data().Dropped.Load()
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if d := s.Data().Dropped.Load() - dropped0; d != 1 {
		t.Fatalf("gated uplink not dropped (delta %d)", d)
	}

	// Unknown session id: context not found.
	bogus := pfcp.BuildSessionModification(5, &pfcp.SessionRequest{SEID: 0xdead})
	r = n4Exchange(t, u, bogus)
	if sr, _ := pfcp.ParseSessionResponse(&r); sr.Cause != pfcp.CauseSessionContextNotFound {
		t.Fatalf("bogus modification: cause %d", sr.Cause)
	}

	// Deletion: accepted, and after the flush the user, its steering
	// entry and its gate rules are all gone.
	r = n4Exchange(t, u, pfcp.BuildSessionDeletion(6, upfSEID))
	if sr, _ := pfcp.ParseSessionResponse(&r); sr.Cause != pfcp.CauseAccepted {
		t.Fatalf("deletion: cause %d", sr.Cause)
	}
	u.Flush()
	s.Data().SyncUpdates()
	if u.Sessions() != 0 || s.Users() != 0 {
		t.Fatalf("after deletion: %d sessions, %d users", u.Sessions(), s.Users())
	}
	if _, ok := node.Demux().LookupSlice(teid); ok {
		t.Fatal("TEID still steerable after deletion")
	}
	if s.PCEF().Len() != 0 {
		t.Fatalf("gate rules leaked: PCEF has %d rules", s.PCEF().Len())
	}
	b = buildUplink(pool, teid, ueAddr, gnbAddr, s.Config().CoreAddr, 80)
	missed0 := s.Data().Missed.Load()
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if m := s.Data().Missed.Load() - missed0; m != 1 {
		t.Fatalf("post-deletion uplink not missed (delta %d)", m)
	}

	// Deleting again: the context is gone.
	r = n4Exchange(t, u, pfcp.BuildSessionDeletion(7, upfSEID))
	if sr, _ := pfcp.ParseSessionResponse(&r); sr.Cause != pfcp.CauseSessionContextNotFound {
		t.Fatalf("double deletion: cause %d", sr.Cause)
	}
}

// TestN4EstablishmentValidation pins the rejection causes: a session
// without the SMF's F-SEID, without an Access-side F-TEID PDR, or
// without a UE address is refused with Mandatory IE Missing and leaves
// no state behind.
func TestN4EstablishmentValidation(t *testing.T) {
	node := NewNode(SliceConfig{ID: 1, UserHint: 16})
	u := NewUPF(node, pkt.IPv4Addr(127, 0, 0, 1))
	n4Associate(t, u)

	ueAddr := pkt.IPv4Addr(45, 1, 0, 9)
	cases := []struct {
		name string
		req  *pfcp.SessionRequest
	}{
		{"no F-SEID", &pfcp.SessionRequest{
			CreatePDRs: []pfcp.PDR{{ID: 1, SourceInterface: pfcp.InterfaceAccess, TEID: 9, UEAddr: ueAddr}},
		}},
		{"no uplink PDR", &pfcp.SessionRequest{
			FSEID:      3,
			CreatePDRs: []pfcp.PDR{{ID: 2, SourceInterface: pfcp.InterfaceCore, UEAddr: ueAddr}},
		}},
		{"no UE address", &pfcp.SessionRequest{
			FSEID:      4,
			CreatePDRs: []pfcp.PDR{{ID: 1, SourceInterface: pfcp.InterfaceAccess, TEID: 9}},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := n4Exchange(t, u, pfcp.BuildSessionEstablishment(2, c.req))
			if sr, _ := pfcp.ParseSessionResponse(&r); sr.Cause != pfcp.CauseMandatoryIEMissing {
				t.Fatalf("cause %d, want %d", sr.Cause, pfcp.CauseMandatoryIEMissing)
			}
		})
	}
	if u.Sessions() != 0 || node.Slice(0).Users() != 0 {
		t.Fatal("rejected establishments leaked state")
	}
}

// TestN4SDFDedicatedBearer maps an SDF-filtered PDR pair onto the TFT
// machinery: the Core-side filter keeps its downlink orientation, the
// Access-side filter is mirrored, and the PDR's own QER becomes the
// bearer's rate bound.
func TestN4SDFDedicatedBearer(t *testing.T) {
	node := NewNode(SliceConfig{ID: 1, UserHint: 16})
	u := NewUPF(node, pkt.IPv4Addr(127, 0, 0, 1))
	n4Associate(t, u)

	ueAddr := pkt.IPv4Addr(45, 1, 0, 2)
	remote := pkt.IPv4Addr(8, 8, 8, 8)
	req := n4SessionReq(11, 0x5E10_0002, ueAddr, pkt.IPv4Addr(192, 168, 50, 1), 0xD000_0002)
	// A voice-like flow pinned by SDF on both directions' PDRs, with a
	// dedicated QER distinct from the session aggregate.
	req.CreatePDRs = append(req.CreatePDRs,
		pfcp.PDR{ID: 3, Precedence: 50, SourceInterface: pfcp.InterfaceCore,
			UEAddr: ueAddr, SDF: "permit out 17 from 8.8.8.8/32 5060 to assigned", FARID: 1, QERID: 2},
		pfcp.PDR{ID: 4, Precedence: 50, SourceInterface: pfcp.InterfaceAccess,
			TEID: 0x5E10_0002, TEIDAddr: pkt.IPv4Addr(127, 0, 0, 1),
			SDF: "permit out 17 from 8.8.8.8/32 5060 to assigned", OuterHeaderRemoval: true, FARID: 2, QERID: 2},
	)
	req.CreateQERs = append(req.CreateQERs, pfcp.QER{ID: 2, MBRUplinkKbps: 1_000, MBRDownlinkKbps: 1_000})

	r := n4Exchange(t, u, pfcp.BuildSessionEstablishment(2, req))
	if sr, _ := pfcp.ParseSessionResponse(&r); sr.Cause != pfcp.CauseAccepted {
		t.Fatalf("establishment: cause %d", sr.Cause)
	}

	ue := node.Slice(0).Control().Lookup(n4IMSIBase | 1)
	ue.ReadCtrl(func(c *state.ControlState) {
		if c.BearerCount != 3 {
			t.Fatalf("bearer count %d, want default + 2 dedicated", c.BearerCount)
		}
		// Core-side PDR: downlink orientation preserved (Src remote, Dst UE).
		dl := c.Bearers[1]
		if dl.TFT.SrcAddr != remote || dl.TFT.DstAddr != ueAddr || dl.TFT.SrcPortLo != 5060 {
			t.Fatalf("downlink TFT wrong: %+v", dl.TFT)
		}
		// Access-side PDR: mirrored for uplink (Src UE, Dst remote).
		ul := c.Bearers[2]
		if ul.TFT.SrcAddr != ueAddr || ul.TFT.DstAddr != remote || ul.TFT.DstPortLo != 5060 {
			t.Fatalf("uplink TFT not mirrored: %+v", ul.TFT)
		}
		if dl.MBRUplink != 1_000_000 || ul.MBRDownlink != 1_000_000 {
			t.Fatalf("bearer MBR not taken from the PDR's QER: %d/%d", dl.MBRUplink, ul.MBRDownlink)
		}
	})
}

// TestN4BatchedModifications pins the batching contract: a burst of
// modifications across many sessions drains as grouped procedures on
// one Flush, not one table walk per request.
func TestN4BatchedModifications(t *testing.T) {
	node := NewNode(SliceConfig{ID: 1, UserHint: 64})
	u := NewUPF(node, pkt.IPv4Addr(127, 0, 0, 1))
	s := node.Slice(0)
	n4Associate(t, u)

	const sessions = 16
	seids := make([]uint64, sessions)
	for i := 0; i < sessions; i++ {
		req := n4SessionReq(uint64(100+i), 0x5E20_0000+uint32(i), pkt.IPv4Addr(45, 2, 0, uint8(i+1)),
			pkt.IPv4Addr(192, 168, 50, 1), 0xD000_0000+uint32(i))
		r := n4Exchange(t, u, pfcp.BuildSessionEstablishment(uint32(2+i), req))
		sr, _ := pfcp.ParseSessionResponse(&r)
		if sr.Cause != pfcp.CauseAccepted {
			t.Fatalf("establishment %d: cause %d", i, sr.Cause)
		}
		seids[i] = sr.FSEID
	}

	// A whole burst of FAR rewrites, then one flush: the backlog drains
	// as one run-grouped batch.
	for i, seid := range seids {
		m := pfcp.BuildSessionModification(uint32(50+i), &pfcp.SessionRequest{
			SEID: seid,
			UpdateFARs: []pfcp.FAR{{ID: 1, DestinationInterface: pfcp.InterfaceAccess,
				OuterHeaderCreation: true, TEID: 0xD100_0000 + uint32(i), Addr: pkt.IPv4Addr(192, 168, 51, 1)}},
		})
		n4Exchange(t, u, m)
	}
	if got := s.Control().SignalBacklog(); got != sessions {
		t.Fatalf("backlog before flush = %d, want %d", got, sessions)
	}
	u.Flush()
	if got := s.Control().Handovers.Load(); got != sessions {
		t.Fatalf("handovers after flush = %d, want %d", got, sessions)
	}
	for i := range seids {
		ue := s.Control().Lookup(n4IMSIBase | uint64(i+1))
		ue.ReadCtrl(func(c *state.ControlState) {
			if c.DownlinkTEID != 0xD100_0000+uint32(i) {
				t.Fatalf("session %d tunnel not rewritten: %#x", i, c.DownlinkTEID)
			}
		})
	}
}
