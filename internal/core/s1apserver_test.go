package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pepc/internal/hss"
	"pepc/internal/nas"
	"pepc/internal/pcrf"
	"pepc/internal/s1ap"
	"pepc/internal/sctp"
)

// newLoopServer builds an S1AP server whose association discards sends —
// enough to exercise HandleOne against hostile input without a peer.
func newLoopServer(t *testing.T) *S1APServer {
	t.Helper()
	hssDB := hss.New()
	hssDB.ProvisionRange(1, 100, 10e6, 50e6)
	n := NewNode(SliceConfig{ID: 1, UserHint: 128})
	n.AttachProxy(NewProxy(hssDB, pcrf.New()))
	cw, sw := sctp.Pipe(256)
	acceptDone := make(chan *sctp.Assoc, 1)
	go func() {
		a, _ := sctp.Accept(sw, sctp.Config{Tag: 2})
		acceptDone <- a
	}()
	client, err := sctp.Dial(cw, sctp.Config{Tag: 1})
	if err != nil {
		t.Fatal(err)
	}
	server := <-acceptDone
	t.Cleanup(func() { client.Close() })
	// Drain whatever the server sends so its Send never blocks.
	go func() {
		for {
			if _, err := client.Recv(); err != nil {
				return
			}
		}
	}()
	return NewS1APServer(n.Slice(0).Control(), server)
}

// The server must survive arbitrary bytes: errors, never panics, never
// corrupts its session table into an unusable state.
func TestS1APServerSurvivesGarbage(t *testing.T) {
	srv := newLoopServer(t)
	f := func(data []byte) bool {
		srv.HandleOne(data) // error is fine; panic is not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// After the garbage, a legitimate attach still works end to end.
	attach := (&nas.AttachRequest{IMSI: 5}).Marshal()
	init := &s1ap.InitialUEMessage{ENBUEID: 1, NASPDU: attach, TAI: 1, ECGI: 1}
	if err := srv.HandleOne(init.Marshal()); err != nil {
		t.Fatalf("valid message after garbage: %v", err)
	}
	if len(srv.sessions) != 1 {
		t.Fatalf("sessions = %d", len(srv.sessions))
	}
}

// Structured adversarial input: valid S1AP PDUs with random procedures,
// types and IE contents — the parser boundary the paper's S1AP support
// must hold.
func TestS1APServerSurvivesStructuredFuzz(t *testing.T) {
	srv := newLoopServer(t)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		pdu := s1ap.PDU{
			Type:      uint8(rng.Intn(3)),
			Procedure: uint8(rng.Intn(30)),
		}
		nIEs := rng.Intn(6)
		for j := 0; j < nIEs; j++ {
			data := make([]byte, rng.Intn(24))
			rng.Read(data)
			pdu.IEs = append(pdu.IEs, s1ap.IE{ID: uint16(rng.Intn(120)), Data: data})
		}
		srv.HandleOne(pdu.Marshal())
	}
	if srv.Messages.Load() != 5000 {
		t.Fatalf("messages = %d", srv.Messages.Load())
	}
}

// Out-of-order procedure messages (responses without requests, NAS for
// unknown sessions) are rejected without state damage.
func TestS1APServerRejectsOutOfStateMessages(t *testing.T) {
	srv := newLoopServer(t)
	// NAS for a session that never started.
	ul := &s1ap.NASTransport{MMEUEID: 9, ENBUEID: 9, NASPDU: (&nas.AttachComplete{}).Marshal(), Uplink: true}
	if err := srv.HandleOne(ul.Marshal()); err == nil {
		t.Fatal("NAS for unknown session accepted")
	}
	// Context setup response without a pending attach.
	icsr := &s1ap.InitialContextSetupResponse{MMEUEID: 1, ENBUEID: 1, DownlinkTEID: 5, ENBAddr: 6}
	if err := srv.HandleOne(icsr.Marshal()); err == nil {
		t.Fatal("unsolicited context setup response accepted")
	}
	// Path switch for an unknown MME UE id.
	psr := &s1ap.PathSwitchRequest{MMEUEID: 77, ENBUEID: 1, DownlinkTEID: 1, ENBAddr: 1}
	if err := srv.HandleOne(psr.Marshal()); err == nil {
		t.Fatal("path switch for unknown user accepted")
	}
	// Release for an unknown MME UE id.
	rel := &s1ap.UEContextRelease{MMEUEID: 77, ENBUEID: 1}
	if err := srv.HandleOne(rel.Marshal()); err == nil {
		t.Fatal("release for unknown user accepted")
	}
	if srv.AttachesCompleted.Load() != 0 {
		t.Fatal("phantom attach recorded")
	}
}
