// Package core implements PEPC itself: the slice (paper §3.2, Listing 1)
// — a control thread and a data thread sharing consolidated per-user
// state under the single-writer lock split — and the node (§3.3) with its
// Demux, Scheduler (including per-user state migration, §4.3) and Proxy
// to the HSS and PCRF backends.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pepc/internal/gtp"
	"pepc/internal/nf"
	"pepc/internal/pcef"
	"pepc/internal/pkt"
	"pepc/internal/qos"
	"pepc/internal/ring"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// TableMode selects the data-plane state storage layout.
type TableMode uint8

const (
	// TableSingle keeps one flat TEID/IP index, the baseline layout.
	TableSingle TableMode = iota
	// TableTwoLevel uses the primary/secondary split of §7.3.
	TableTwoLevel
)

// SliceConfig parameterizes a PEPC slice.
type SliceConfig struct {
	// ID distinguishes slices within a node and seeds identifier
	// allocation (TEIDs, UE addresses).
	ID int
	// TableMode selects single vs two-level state storage.
	TableMode TableMode
	// PrimaryHint sizes the two-level primary table (active devices).
	PrimaryHint int
	// UserHint pre-sizes tables for the expected population.
	UserHint int
	// SyncEvery is the data thread's update-sync interval in packets
	// (§7.2; the paper uses 32). 1 disables batching.
	SyncEvery int
	// RingCapacity sizes the slice's packet rings (power of two).
	RingCapacity int
	// IoTTEIDBase/IoTTEIDCount reserve a TEID pool for Stateless IoT
	// devices (§4.2): traffic in this range bypasses per-user state.
	IoTTEIDBase  uint32
	IoTTEIDCount uint32
	// RecordLatency enables per-packet latency recording into the data
	// plane's histogram (packets must carry Meta.TSNanos).
	RecordLatency bool
	// CoreAddr is the slice's data-plane IP used as the outer source for
	// downlink GTP-U encapsulation.
	CoreAddr uint32
}

func (c SliceConfig) withDefaults() SliceConfig {
	if c.UserHint <= 0 {
		c.UserHint = 1 << 16
	}
	if c.PrimaryHint <= 0 {
		c.PrimaryHint = c.UserHint / 64
		if c.PrimaryHint < 1024 {
			c.PrimaryHint = 1024
		}
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = state.DefaultSyncEvery
	}
	if c.RingCapacity <= 0 {
		c.RingCapacity = 1 << 12
	}
	if c.CoreAddr == 0 {
		c.CoreAddr = pkt.IPv4Addr(172, 16, byte(c.ID>>8), byte(c.ID))
	}
	return c
}

// Slice is one PEPC slice: consolidated state for a set of users plus the
// control and data planes that operate on it (Listing 1).
type Slice struct {
	cfg SliceConfig

	// cp is the control-plane store (Listing 1's cp_state): every user
	// of the slice indexed by IMSI/TEID/IP, PEPC lock discipline.
	cp *state.Table

	// updates carries index changes from control to data (batched sync,
	// §7.2).
	updates *state.UpdateQueue

	// Data-plane state (Listing 1's dp_state): exactly one of ix/tl is
	// used depending on TableMode; both are data-thread-owned.
	ix *state.Indexes
	tl *state.TwoLevel

	// pcefTable is the slice's match-action table (shared, internally
	// synchronized; installs are control-side, classification data-side).
	pcefTable *pcef.Table

	// Packet rings: uplink carries GTP-U encapsulated traffic from
	// eNodeBs, downlink plain IP toward users, egress everything the
	// slice forwards. Uplink and Downlink are multi-producer (demux
	// thread, migration drain, paging resume) with the data thread as
	// sole consumer; Egress is written only by the data thread.
	Uplink   *ring.MPSC[*pkt.Buf]
	Downlink *ring.MPSC[*pkt.Buf]
	Egress   *ring.SPSC[*pkt.Buf]

	ctrl *ControlPlane
	data *DataPlane

	// ctrlCmds is the migration/command channel between the node
	// scheduler and the slice control thread (Listing 1's
	// from_node_sched/to_node_sched pair): when the control loop runs,
	// scheduler-initiated work (state transfers) executes on the control
	// thread through it.
	ctrlCmds chan func()
}

// NewSlice builds a slice. The returned slice is passive: drive the data
// plane with ProcessUplink/ProcessDownlink (inline mode) or RunData
// (worker mode), and the control plane through its methods.
func NewSlice(cfg SliceConfig) *Slice {
	cfg = cfg.withDefaults()
	s := &Slice{
		cfg:       cfg,
		cp:        state.NewTable(state.LockModePEPC, cfg.UserHint),
		updates:   state.NewUpdateQueue(1 << 14),
		pcefTable: pcef.NewTable(),
		Uplink:    ring.MustMPSC[*pkt.Buf](cfg.RingCapacity),
		Downlink:  ring.MustMPSC[*pkt.Buf](cfg.RingCapacity),
		Egress:    ring.MustSPSC[*pkt.Buf](cfg.RingCapacity),
		ctrlCmds:  make(chan func(), 256),
	}
	switch cfg.TableMode {
	case TableTwoLevel:
		s.tl = state.NewTwoLevel(cfg.PrimaryHint, cfg.UserHint)
	default:
		s.ix = state.NewIndexes(cfg.UserHint)
	}
	s.ctrl = newControlPlane(s)
	s.data = newDataPlane(s)
	return s
}

// Config returns the slice configuration.
func (s *Slice) Config() SliceConfig { return s.cfg }

// Control returns the slice's control plane.
func (s *Slice) Control() *ControlPlane { return s.ctrl }

// Data returns the slice's data plane.
func (s *Slice) Data() *DataPlane { return s.data }

// PCEF returns the slice's match-action table.
func (s *Slice) PCEF() *pcef.Table { return s.pcefTable }

// Users returns the number of users owned by the slice.
func (s *Slice) Users() int { return s.cp.Len() }

// DataPlane is the slice's data thread: the GTP-U decap → state lookup →
// PCEF → QoS → counters → encap pipeline of §4.2, run to completion per
// batch.
type DataPlane struct {
	s *Slice

	// Stats (data-thread written; atomic so other threads may read).
	Forwarded atomic.Uint64
	Dropped   atomic.Uint64
	Missed    atomic.Uint64 // no user state found
	IoTFast   atomic.Uint64 // packets taking the stateless-IoT path
	IoTBytes  atomic.Uint64 // aggregate charging for the stateless pool
	// PagedPackets counts downlink packets parked for idle users.
	PagedPackets atomic.Uint64
	// EchoReplies counts GTP-U echo requests answered on the fast path.
	EchoReplies atomic.Uint64

	// paging parks downlink packets for idle users (data thread
	// produces, control thread drains on resume).
	paging *ring.MPSC[*pkt.Buf]

	// syncSeq counts completed SyncUpdates calls; the migration fence
	// uses it to know when the data thread can no longer touch an
	// extracted user's counters.
	syncSeq atomic.Uint64
	// running reports whether a data worker loop is active; when it is
	// not, the migration fence is unnecessary (the caller drives both
	// planes) and is skipped.
	running atomic.Bool

	// Latency histogram (single-writer: data thread).
	lat *sim.Histogram

	sinceSync int
}

func newDataPlane(s *Slice) *DataPlane {
	dp := &DataPlane{
		s:   s,
		lat: sim.NewHistogram(),
	}
	dp.initPaging()
	return dp
}

// Latency returns the data plane's latency histogram (valid when
// RecordLatency is set; single-writer, read between runs).
func (dp *DataPlane) Latency() *sim.Histogram { return dp.lat }

// SyncUpdates drains the control→data update queue into the data-plane
// indexes. Called automatically every SyncEvery packets; exposed for
// worker housekeeping and tests.
func (dp *DataPlane) SyncUpdates() int {
	var n int
	if dp.s.ix != nil {
		n = dp.s.updates.Drain(dp.s.ix)
	} else {
		n = dp.s.updates.DrainTwoLevel(dp.s.tl)
	}
	dp.syncSeq.Add(1)
	return n
}

// lookup resolves a user by data-path key. For two-level mode a
// secondary hit requests promotion through the control plane.
func (dp *DataPlane) lookup(key uint32, uplink bool) *state.UE {
	if dp.s.ix != nil {
		if uplink {
			return dp.s.ix.ByTEID.Get(key)
		}
		return dp.s.ix.ByIP.Get(key)
	}
	ue, fromSecondary := dp.s.tl.Lookup(key, uplink)
	if fromSecondary {
		dp.s.ctrl.requestPromotion(ue)
	}
	return ue
}

// tickSync advances the per-packet sync counter and applies pending
// control updates every SyncEvery packets — the paper's batching knob
// (§7.2): SyncEvery=1 checks the queue on every packet, SyncEvery=32
// amortizes the check and the cache traffic over a batch.
func (dp *DataPlane) tickSync() {
	dp.sinceSync++
	if dp.sinceSync >= dp.s.cfg.SyncEvery {
		dp.SyncUpdates()
		dp.sinceSync = 0
	}
}

// ProcessUplinkBatch runs the uplink pipeline over a batch in place:
// GTP-U decapsulation, per-user state lookup by TEID, PCEF
// classification, QoS policing, counter updates, then forwards the inner
// packet to Egress. Inline mode for benchmarks; RunData wraps it for
// worker mode.
func (dp *DataPlane) ProcessUplinkBatch(batch []*pkt.Buf, now int64) {
	for _, b := range batch {
		dp.processUplink(b, now)
		dp.tickSync()
	}
}

func (dp *DataPlane) processUplink(b *pkt.Buf, now int64) {
	teid, err := gtp.DecapGPDU(b)
	if err != nil {
		if err == gtp.ErrNotGPDU && dp.answerEcho(b, now) {
			return
		}
		dp.drop(b)
		return
	}
	b.Meta.TEID = teid
	b.Meta.Uplink = true

	// Stateless IoT fast path (§4.2): TEIDs from the reserved pool skip
	// the per-user state lookup, per-user locks and QoS state; the
	// slice-level policy and charging rules still apply ("the data plane
	// avoids the state lookups, only applies policy and charging rules").
	if dp.isIoT(teid) {
		dp.IoTFast.Add(1)
		flow, plen, ok := parseInner(b)
		if !ok {
			dp.drop(b)
			return
		}
		verdict := dp.s.pcefTable.ClassifyFlow(flow)
		if verdict.Action == pcef.ActionDrop {
			dp.drop(b)
			return
		}
		dp.IoTBytes.Add(uint64(plen))
		dp.forward(b, now)
		return
	}

	ue := dp.lookup(teid, true)
	if ue == nil {
		dp.Missed.Add(1)
		dp.drop(b)
		return
	}

	// Parse the inner packet for classification.
	flow, plen, ok := parseInner(b)
	if !ok {
		dp.drop(b)
		return
	}
	b.Meta.Flow = flow

	verdict := dp.s.pcefTable.ClassifyFlow(flow)
	if verdict.Action == pcef.ActionDrop {
		dp.countDrop(ue)
		dp.drop(b)
		return
	}

	// Read control state (shared lock): map the flow to its bearer via
	// the TFTs, resolve the charging slot, and police; rebuild the
	// data-private limiter when the control epoch advanced.
	allowed := true
	var ruleSlot = -1
	ue.ReadCtrl(func(c *state.ControlState) {
		if c.Epoch != ue.Priv.Epoch {
			rebuildPriv(ue, c)
		}
		for i := 0; i < int(c.RuleCount); i++ {
			if c.RuleIDs[i] == verdict.RuleID {
				ruleSlot = i
				break
			}
		}
		if ue.Priv.Limiter != nil {
			bearer := c.SelectBearer(flow)
			allowed = ue.Priv.Limiter.AllowUplink(now, bearer, uint64(plen))
		}
	})
	if !allowed {
		dp.countDrop(ue)
		dp.drop(b)
		return
	}

	// Counter state: data thread is the single writer.
	ue.WriteCounters(func(c *state.CounterState) {
		c.UplinkPackets++
		c.UplinkBytes += uint64(plen)
		if ruleSlot >= 0 {
			c.RuleBytes[ruleSlot] += uint64(plen)
		}
	})
	dp.forward(b, now)
}

// ProcessDownlinkBatch runs the downlink pipeline: user lookup by UE
// address, classification, policing, GTP-U encapsulation toward the
// user's current eNodeB, counters, forward.
func (dp *DataPlane) ProcessDownlinkBatch(batch []*pkt.Buf, now int64) {
	for _, b := range batch {
		dp.processDownlink(b, now)
		dp.tickSync()
	}
}

func (dp *DataPlane) processDownlink(b *pkt.Buf, now int64) {
	flow, plen, ok := parseInner(b)
	if !ok {
		dp.drop(b)
		return
	}
	b.Meta.Flow = flow
	b.Meta.UEIP = flow.Dst
	b.Meta.Uplink = false

	ue := dp.lookup(flow.Dst, false)
	if ue == nil {
		dp.Missed.Add(1)
		dp.drop(b)
		return
	}

	verdict := dp.s.pcefTable.ClassifyFlow(flow)
	if verdict.Action == pcef.ActionDrop {
		dp.countDrop(ue)
		dp.drop(b)
		return
	}

	var teid, enbAddr uint32
	allowed := true
	ruleSlot := -1
	ue.ReadCtrl(func(c *state.ControlState) {
		if c.Epoch != ue.Priv.Epoch {
			rebuildPriv(ue, c)
		}
		teid = c.DownlinkTEID
		enbAddr = c.ENBAddr
		for i := 0; i < int(c.RuleCount); i++ {
			if c.RuleIDs[i] == verdict.RuleID {
				ruleSlot = i
				break
			}
		}
		if ue.Priv.Limiter != nil {
			bearer := c.SelectBearer(flow)
			allowed = ue.Priv.Limiter.AllowDownlink(now, bearer, uint64(plen))
		}
	})
	if teid == 0 {
		// Idle user (S1 released): park for paging rather than drop.
		dp.parkForPaging(b, ue)
		return
	}
	if !allowed {
		dp.countDrop(ue)
		dp.drop(b)
		return
	}

	if err := gtp.EncapGPDU(b, teid, dp.s.cfg.CoreAddr, enbAddr); err != nil {
		dp.countDrop(ue)
		dp.drop(b)
		return
	}
	ue.WriteCounters(func(c *state.CounterState) {
		c.DownlinkPackets++
		c.DownlinkBytes += uint64(plen)
		if ruleSlot >= 0 {
			c.RuleBytes[ruleSlot] += uint64(plen)
		}
	})
	dp.forward(b, now)
}

func (dp *DataPlane) isIoT(teid uint32) bool {
	base, n := dp.s.cfg.IoTTEIDBase, dp.s.cfg.IoTTEIDCount
	return n > 0 && teid >= base && teid < base+n
}

func (dp *DataPlane) forward(b *pkt.Buf, now int64) {
	dp.Forwarded.Add(1)
	if dp.s.cfg.RecordLatency && b.Meta.TSNanos != 0 {
		dp.lat.Record(now - b.Meta.TSNanos)
	}
	if !dp.s.Egress.Enqueue(b) {
		// Egress backpressure: account and release, like a NIC tail
		// drop.
		dp.Dropped.Add(1)
		b.Free()
	}
}

func (dp *DataPlane) drop(b *pkt.Buf) {
	dp.Dropped.Add(1)
	b.Free()
}

func (dp *DataPlane) countDrop(ue *state.UE) {
	ue.WriteCounters(func(c *state.CounterState) { c.DroppedPackets++ })
}

// rebuildPriv refreshes data-thread-private derived state from the
// control half. Runs with the control read lock held.
func rebuildPriv(ue *state.UE, c *state.ControlState) {
	policed := c.AMBRUplink > 0 || c.AMBRDownlink > 0
	for i := 0; i < int(c.BearerCount); i++ {
		if c.Bearers[i].MBRUplink > 0 || c.Bearers[i].MBRDownlink > 0 {
			policed = true
		}
	}
	if !policed {
		ue.Priv.Limiter = nil
		ue.Priv.Epoch = c.Epoch
		return
	}
	if ue.Priv.Limiter == nil {
		ue.Priv.Limiter = &qos.UserLimiter{}
	}
	ue.Priv.Limiter.ConfigureUser(c.AMBRUplink, c.AMBRDownlink)
	for i := 0; i < int(c.BearerCount); i++ {
		ue.Priv.Limiter.ConfigureBearer(i, c.Bearers[i].MBRUplink, c.Bearers[i].MBRDownlink)
	}
	ue.Priv.Epoch = c.Epoch
}

// parseInner extracts the 5-tuple from the (decapsulated) inner IPv4
// packet; plen is the inner packet length used for byte accounting.
func parseInner(b *pkt.Buf) (pkt.Flow, int, bool) {
	data := b.Bytes()
	var ip pkt.IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		return pkt.Flow{}, 0, false
	}
	f := pkt.Flow{Src: ip.Src, Dst: ip.Dst, Proto: ip.Protocol}
	off := ip.HeaderLen()
	if (ip.Protocol == pkt.ProtoTCP || ip.Protocol == pkt.ProtoUDP) && len(data) >= off+4 {
		f.SrcPort = uint16(data[off])<<8 | uint16(data[off+1])
		f.DstPort = uint16(data[off+2])<<8 | uint16(data[off+3])
	}
	return f, b.Len(), true
}

// RunData runs the data plane as two workers (uplink and downlink) until
// stop closes — worker mode for end-to-end and latency experiments. The
// two directions share the data thread in the paper's single-data-core
// configuration, so both rings are polled from one goroutine here.
func (s *Slice) RunData(stop <-chan struct{}) {
	s.data.running.Store(true)
	defer s.data.running.Store(false)
	up := &nf.Worker{
		In:             s.Uplink,
		BatchSize:      s.cfg.SyncEvery,
		HousekeepEvery: s.cfg.SyncEvery,
		Handler: func(batch []*pkt.Buf) {
			s.data.ProcessUplinkBatch(batch, sim.Now())
		},
		Housekeep: func() { s.data.SyncUpdates() },
	}
	down := &nf.Worker{
		In:             s.Downlink,
		BatchSize:      s.cfg.SyncEvery,
		HousekeepEvery: s.cfg.SyncEvery,
		Handler: func(batch []*pkt.Buf) {
			s.data.ProcessDownlinkBatch(batch, sim.Now())
		},
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); up.Run(stop) }()
	go func() { defer wg.Done(); down.Run(stop) }()
	wg.Wait()
}

// Errors.
var (
	ErrUserExists    = errors.New("core: user already attached")
	ErrUserUnknown   = errors.New("core: user not found")
	ErrPoolExhausted = errors.New("core: identifier pool exhausted")
)

// String implements fmt.Stringer.
func (s *Slice) String() string {
	return fmt.Sprintf("Slice{id=%d users=%d}", s.cfg.ID, s.Users())
}

// answerEcho handles a GTP-U Echo Request on the fast path: the response
// swaps the outer addressing and flips the message type, as S-GWs answer
// eNodeB path-management probes. Returns false when the packet is not an
// echo request (caller drops it).
func (dp *DataPlane) answerEcho(b *pkt.Buf, now int64) bool {
	data := b.Bytes()
	var ip pkt.IPv4
	if ip.DecodeFromBytes(data) != nil || ip.Protocol != pkt.ProtoUDP {
		return false
	}
	off := ip.HeaderLen() + pkt.UDPHeaderLen
	if len(data) < off+gtp.HeaderLen || data[off+1] != gtp.MsgEchoRequest {
		return false
	}
	// Swap outer src/dst and rewrite the type in place; recompute the
	// header checksum.
	ip.Src, ip.Dst = ip.Dst, ip.Src
	if ip.SerializeTo(data) != nil {
		return false
	}
	data[off+1] = gtp.MsgEchoResponse
	dp.EchoReplies.Add(1)
	dp.forward(b, now)
	return true
}
