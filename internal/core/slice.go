// Package core implements PEPC itself: the slice (paper §3.2, Listing 1)
// — a control thread and a data thread sharing consolidated per-user
// state under the single-writer lock split — and the node (§3.3) with its
// Demux, Scheduler (including per-user state migration, §4.3) and Proxy
// to the HSS and PCRF backends.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"pepc/internal/fault"
	"pepc/internal/gtp"
	"pepc/internal/hdr"
	"pepc/internal/nf"
	"pepc/internal/pcef"
	"pepc/internal/pkt"
	"pepc/internal/qos"
	"pepc/internal/ring"
	"pepc/internal/sim"
	"pepc/internal/state"
)

// TableMode selects the data-plane state storage layout.
type TableMode uint8

const (
	// TableSingle keeps one flat TEID/IP index, the baseline layout.
	TableSingle TableMode = iota
	// TableTwoLevel uses the primary/secondary split of §7.3.
	TableTwoLevel
)

// StateLayout selects how the data-plane indexes store per-user state
// (DESIGN.md §4.10).
type StateLayout uint8

const (
	// LayoutPointer maps key→*UE; each user's hot state is embedded in
	// its heap-allocated context. The baseline layout.
	LayoutPointer StateLayout = iota
	// LayoutHandle maps key→generation+slot handle in pointer-free
	// indexes, with hot state packed into state.Arena slabs: denser in
	// cache and invisible to the GC mark phase at large populations.
	LayoutHandle
)

// EncapMode selects how downlink GTP-U envelopes are emitted
// (DESIGN.md §4.11).
type EncapMode uint8

const (
	// EncapTemplate stamps the per-user precomputed outer header cached
	// in hot state and patches the length fields with an incremental
	// checksum update. The default.
	EncapTemplate EncapMode = iota
	// EncapSerialize builds the outer headers field by field with a full
	// header checksum per packet — the pre-template path, kept as the
	// comparison mode of the fig8 sweep.
	EncapSerialize
)

// SliceConfig parameterizes a PEPC slice.
type SliceConfig struct {
	// ID distinguishes slices within a node and seeds identifier
	// allocation (TEIDs, UE addresses).
	ID int
	// TableMode selects single vs two-level state storage.
	TableMode TableMode
	// StateLayout selects pointer vs handle state storage for the
	// data-plane indexes.
	StateLayout StateLayout
	// PrimaryHint sizes the two-level primary table (active devices).
	PrimaryHint int
	// UserHint pre-sizes tables for the expected population.
	UserHint int
	// SyncEvery is the data thread's update-sync interval in packets
	// (§7.2; the paper uses 32). 1 disables batching.
	SyncEvery int
	// BatchSize is the data worker's per-poll dequeue budget in worker
	// mode (RunData). It is independent of SyncEvery: dequeue batch size
	// trades latency for poll amortization, while SyncEvery fixes how
	// stale the data-plane indexes may get.
	BatchSize int
	// RingCapacity sizes the slice's packet rings (power of two).
	RingCapacity int
	// IoTTEIDBase/IoTTEIDCount reserve a TEID pool for Stateless IoT
	// devices (§4.2): traffic in this range bypasses per-user state.
	IoTTEIDBase  uint32
	IoTTEIDCount uint32
	// RecordLatency enables per-packet latency recording into the data
	// plane's histogram (packets must carry Meta.TSNanos).
	RecordLatency bool
	// CoreAddr is the slice's data-plane IP used as the outer source for
	// downlink GTP-U encapsulation.
	CoreAddr uint32
	// EncapMode selects template-stamped vs field-serialized downlink
	// encapsulation.
	EncapMode EncapMode
}

func (c SliceConfig) withDefaults() SliceConfig {
	if c.UserHint <= 0 {
		c.UserHint = 1 << 16
	}
	if c.PrimaryHint <= 0 {
		c.PrimaryHint = c.UserHint / 64
		if c.PrimaryHint < 1024 {
			c.PrimaryHint = 1024
		}
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = state.DefaultSyncEvery
	}
	if c.BatchSize <= 0 {
		c.BatchSize = nf.DefaultBatchSize
	}
	if c.RingCapacity <= 0 {
		c.RingCapacity = 1 << 12
	}
	if c.CoreAddr == 0 {
		c.CoreAddr = pkt.IPv4Addr(172, 16, byte(c.ID>>8), byte(c.ID))
	}
	return c
}

// Slice is one PEPC slice: consolidated state for a set of users plus the
// control and data planes that operate on it (Listing 1).
type Slice struct {
	cfg SliceConfig

	// cp is the control-plane store (Listing 1's cp_state): every user
	// of the slice indexed by IMSI/TEID/IP, PEPC lock discipline.
	cp *state.Table

	// updates carries index changes from control to data (batched sync,
	// §7.2).
	updates *state.UpdateQueue

	// Data-plane state (Listing 1's dp_state): exactly one of ix/tl is
	// used depending on TableMode; both are data-thread-owned.
	ix *state.Indexes
	tl *state.TwoLevel

	// arena backs the handle state layout (nil in pointer layout): UE
	// hot state in slabs, resolved from the indexes by handle.
	arena *state.Arena

	// pcefTable is the slice's match-action table (shared, internally
	// synchronized; installs are control-side, classification data-side).
	pcefTable *pcef.Table

	// Packet rings: uplink carries GTP-U encapsulated traffic from
	// eNodeBs, downlink plain IP toward users, egress everything the
	// slice forwards. Uplink and Downlink are multi-producer (demux
	// thread, migration drain, paging resume) with the data thread as
	// sole consumer; Egress is written only by the data thread.
	Uplink   *ring.MPSC[*pkt.Buf]
	Downlink *ring.MPSC[*pkt.Buf]
	Egress   *ring.SPSC[*pkt.Buf]

	ctrl *ControlPlane
	data *DataPlane

	// faults is the slice's fault injector (nil when none armed); see
	// SetFaults for what it reaches.
	faults *fault.Injector

	// ctrlCmds is the migration/command channel between the node
	// scheduler and the slice control thread (Listing 1's
	// from_node_sched/to_node_sched pair): when the control loop runs,
	// scheduler-initiated work (state transfers) executes on the control
	// thread through it.
	ctrlCmds chan func()
}

// NewSlice builds a slice. The returned slice is passive: drive the data
// plane with ProcessUplink/ProcessDownlink (inline mode) or RunData
// (worker mode), and the control plane through its methods.
func NewSlice(cfg SliceConfig) *Slice {
	cfg = cfg.withDefaults()
	s := &Slice{
		cfg:       cfg,
		cp:        state.NewTable(state.LockModePEPC, cfg.UserHint),
		updates:   state.NewUpdateQueue(1 << 14),
		pcefTable: pcef.NewTable(),
		Uplink:    ring.MustMPSC[*pkt.Buf](cfg.RingCapacity),
		Downlink:  ring.MustMPSC[*pkt.Buf](cfg.RingCapacity),
		Egress:    ring.MustSPSC[*pkt.Buf](cfg.RingCapacity),
		ctrlCmds:  make(chan func(), 256),
	}
	if cfg.StateLayout == LayoutHandle {
		s.arena = state.NewArena(cfg.UserHint)
	}
	switch cfg.TableMode {
	case TableTwoLevel:
		if s.arena != nil {
			s.tl = state.NewTwoLevelHandles(cfg.PrimaryHint, cfg.UserHint, s.arena)
		} else {
			s.tl = state.NewTwoLevel(cfg.PrimaryHint, cfg.UserHint)
		}
	default:
		if s.arena != nil {
			s.ix = state.NewHandleIndexes(cfg.UserHint, s.arena)
		} else {
			s.ix = state.NewIndexes(cfg.UserHint)
		}
	}
	s.ctrl = newControlPlane(s)
	s.data = newDataPlane(s)
	return s
}

// Config returns the slice configuration.
func (s *Slice) Config() SliceConfig { return s.cfg }

// Control returns the slice's control plane.
func (s *Slice) Control() *ControlPlane { return s.ctrl }

// Data returns the slice's data plane.
func (s *Slice) Data() *DataPlane { return s.data }

// PCEF returns the slice's match-action table.
func (s *Slice) PCEF() *pcef.Table { return s.pcefTable }

// Users returns the number of users owned by the slice.
func (s *Slice) Users() int { return s.cp.Len() }

// DataPlane is the slice's data thread: the GTP-U decap → state lookup →
// PCEF → QoS → counters → encap pipeline of §4.2, run to completion per
// batch.
type DataPlane struct {
	s *Slice

	// Stats (data-thread written; atomic so other threads may read).
	Forwarded atomic.Uint64
	Dropped   atomic.Uint64
	Missed    atomic.Uint64 // no user state found
	IoTFast   atomic.Uint64 // packets taking the stateless-IoT path
	IoTBytes  atomic.Uint64 // aggregate charging for the stateless pool
	// PagedPackets counts downlink packets parked for idle users.
	PagedPackets atomic.Uint64
	// EchoReplies counts GTP-U echo requests answered on the fast path.
	EchoReplies atomic.Uint64

	// paging parks downlink packets for idle users (data thread
	// produces, control thread drains on resume).
	paging *ring.MPSC[*pkt.Buf]

	// syncSeq counts completed SyncUpdates calls; the migration fence
	// uses it to know when the data thread can no longer touch an
	// extracted user's counters.
	syncSeq atomic.Uint64
	// running reports whether a data worker loop is active; when it is
	// not, the migration fence is unnecessary (the caller drives both
	// planes) and is skipped.
	running atomic.Bool

	// Per-direction latency histograms (data-thread written; any thread
	// may merge or query them live — hdr records are atomic). Recording
	// is gated by cfg.RecordLatency and a packet carrying Meta.TSNanos;
	// the clock is read once per batch by the caller, not per packet.
	latUp hdr.Histogram
	latDn hdr.Histogram

	// latPend accumulates the current same-valued latency run per
	// direction (0 = downlink, 1 = uplink): packets of one batch share
	// one ingress stamp and one processing clock read, so their
	// latencies are identical and the whole run settles in one atomic
	// RecordN at the batch boundary instead of one atomic add per
	// packet — the difference between ~4% and well under 1% of the
	// per-packet budget. Data-thread private (unsynchronized by design);
	// flushed at the end of every Process*Batch, so a quiesced readout
	// sees exact counts.
	latPend [2]struct {
		v int64
		n uint64
	}

	// cache is the data thread's level of the two-level buffer pool:
	// drops and tail-drops release into it so a batch of frees costs one
	// shared-pool interaction. It lazily binds to the ingress pool of the
	// first freed buffer; the worker flushes it on exit.
	cache pkt.PoolCache

	sinceSync int

	// scratch holds the staged pipeline's preallocated per-stage arrays.
	// Batch processing is single-threaded: ProcessUplinkBatch and
	// ProcessDownlinkBatch share the scratch and must be called from one
	// goroutine (the data thread), as RunData and the paper's
	// run-to-completion model already require.
	scratch dpScratch
}

// dpScratch is the per-DataPlane working set of the stage-oriented batch
// pipeline. Arrays grow to the largest batch seen and are then reused,
// keeping the steady-state fast path allocation free.
type dpScratch struct {
	live    []bool         // packet survived the parse stage
	keys    []uint32       // lookup key (uplink TEID / downlink UE address)
	flows   []pkt.Flow     // parsed inner 5-tuple
	plens   []int          // inner byte length for accounting
	runOf   []int32        // packet index → key-run index
	allowed []bool         // per-packet policing verdict (fallback path)
	runKeys []uint32       // distinct consecutive keys of the batch
	runHot  []*state.HotUE // resolved hot state, one per key run
	runSec  []bool         // two-level: run resolved from the secondary
	rules   pcef.RuleSet

	// fast receives the seqlock snapshot of the current run's fast-path
	// control view (see state.HotUE.ReadFast): the verdict stage works
	// on this stable ~44-byte copy instead of holding a per-user lock or
	// copying the whole control state, so a concurrent control write
	// never stalls the run and the copy stays within a cache line.
	fast state.FastCtrl

	// cold receives the full control snapshot on the rare rebuild path
	// (policed users whose control epoch advanced).
	cold state.ControlState
}

func (sc *dpScratch) ensure(n int) {
	if cap(sc.live) >= n {
		return
	}
	sc.live = make([]bool, n)
	sc.keys = make([]uint32, n)
	sc.flows = make([]pkt.Flow, n)
	sc.plens = make([]int, n)
	sc.runOf = make([]int32, n)
	sc.allowed = make([]bool, n)
	sc.runKeys = make([]uint32, n)
	sc.runHot = make([]*state.HotUE, n)
	sc.runSec = make([]bool, n)
}

func newDataPlane(s *Slice) *DataPlane {
	dp := &DataPlane{s: s}
	dp.initPaging()
	return dp
}

// Latency returns a merged snapshot of both directions' latency
// histograms. Safe while the data thread is recording (lock-free
// merge); allocates the snapshot, so it is a readout call, not a
// fast-path one.
func (dp *DataPlane) Latency() *hdr.Histogram {
	m := hdr.New()
	m.Merge(&dp.latUp)
	m.Merge(&dp.latDn)
	return m
}

// LatencyUplink returns the live uplink latency histogram (valid when
// RecordLatency is set). Merge it elsewhere rather than mutating it.
func (dp *DataPlane) LatencyUplink() *hdr.Histogram { return &dp.latUp }

// LatencyDownlink is LatencyUplink for the downlink direction.
func (dp *DataPlane) LatencyDownlink() *hdr.Histogram { return &dp.latDn }

// ResetLatency clears both directions' histograms; call between
// measurement runs with the data thread quiesced.
func (dp *DataPlane) ResetLatency() {
	dp.latUp.Reset()
	dp.latDn.Reset()
}

// SyncUpdates drains the control→data update queue into the data-plane
// indexes. Called automatically every SyncEvery packets; exposed for
// worker housekeeping and tests.
func (dp *DataPlane) SyncUpdates() int {
	var n int
	if dp.s.ix != nil {
		n = dp.s.updates.Drain(dp.s.ix)
	} else {
		n = dp.s.updates.DrainTwoLevel(dp.s.tl)
	}
	dp.syncSeq.Add(1)
	return n
}

// lookup resolves a user by data-path key. For two-level mode a
// secondary hit requests promotion through the control plane.
func (dp *DataPlane) lookup(key uint32, uplink bool) *state.UE {
	if dp.s.ix != nil {
		return dp.s.ix.GetUE(key, uplink)
	}
	ue, fromSecondary := dp.s.tl.Lookup(key, uplink)
	if fromSecondary {
		dp.s.ctrl.requestPromotion(ue)
	}
	return ue
}

// ProcessUplinkBatch runs the uplink pipeline over a batch stage by
// stage rather than packet by packet: (1) a parse stage decapsulates
// GTP-U, serves the echo and stateless-IoT fast paths, decodes the inner
// IPv4 header and extracts the TEID key for every packet; (2) a lookup
// stage groups the batch into key runs — maximal stretches of
// consecutive packets for the same user, as eNodeBs and traffic
// generators emit them — and resolves each run with one table probe
// through the state layer's batched lookups; (3) a verdict stage
// classifies, polices and counts each run with one PCEF match, one
// control-state read, one aggregate token-bucket operation and one
// counter write per run instead of per packet. The batch is segmented at
// SyncEvery boundaries so control-update sync keeps its exact per-packet
// granularity (§7.2, Figure 13). Inline mode for benchmarks; RunData
// wraps it for worker mode. Single data thread only (see dpScratch).
func (dp *DataPlane) ProcessUplinkBatch(batch []*pkt.Buf, now int64) {
	for len(batch) > 0 {
		chunk := dp.s.cfg.SyncEvery - dp.sinceSync
		if chunk > len(batch) {
			chunk = len(batch)
		}
		dp.uplinkChunk(batch[:chunk], now)
		dp.sinceSync += chunk
		if dp.sinceSync >= dp.s.cfg.SyncEvery {
			dp.SyncUpdates()
			dp.sinceSync = 0
		}
		batch = batch[chunk:]
	}
	if dp.s.cfg.RecordLatency {
		dp.flushLat()
	}
}

// uplinkChunk processes one sync-interval's worth of uplink packets
// through the three stages. No update sync happens inside a chunk, so
// every lookup observes the same index state the packet-at-a-time loop
// would have.
func (dp *DataPlane) uplinkChunk(batch []*pkt.Buf, now int64) {
	sc := &dp.scratch
	n := len(batch)
	sc.ensure(n)
	sc.rules = dp.s.pcefTable.Snapshot()

	// Stage 1: decap, fast paths, inner parse, key extraction.
	for i, b := range batch {
		sc.live[i] = false
		teid, err := gtp.DecapGPDU(b)
		if err != nil {
			if err == gtp.ErrNotGPDU && dp.answerEcho(b, now) {
				continue
			}
			dp.drop(b)
			continue
		}
		b.Meta.TEID = teid
		b.Meta.Uplink = true

		// Stateless IoT fast path (§4.2): TEIDs from the reserved pool
		// skip the per-user state lookup, per-user locks and QoS state;
		// the slice-level policy and charging rules still apply.
		if dp.isIoT(teid) {
			dp.IoTFast.Add(1)
			flow, plen, ok := parseInner(b)
			if !ok {
				dp.drop(b)
				continue
			}
			if sc.rules.ClassifyFlow(flow).Action == pcef.ActionDrop {
				dp.drop(b)
				continue
			}
			dp.IoTBytes.Add(uint64(plen))
			dp.forward(b, now)
			continue
		}

		flow, plen, ok := parseInner(b)
		if !ok {
			dp.drop(b)
			continue
		}
		b.Meta.Flow = flow
		sc.live[i] = true
		sc.keys[i] = teid
		sc.flows[i] = flow
		sc.plens[i] = plen
	}

	// Stage 2: one state lookup per key run.
	dp.lookupRuns(batch, true)

	// Stage 3: verdict/forward, one run at a time. A run extends while
	// the key run and the 5-tuple both repeat, so classification, bearer
	// selection and policing are provably identical for every packet in
	// it.
	for i := 0; i < n; {
		if !sc.live[i] {
			i++
			continue
		}
		hot := sc.runHot[sc.runOf[i]]
		if hot == nil {
			dp.Missed.Add(1)
			dp.drop(batch[i])
			i++
			continue
		}
		j := i + 1
		for j < n && sc.live[j] && sc.runOf[j] == sc.runOf[i] && sc.flows[j] == sc.flows[i] {
			j++
		}
		dp.uplinkRun(batch, i, j, hot, now)
		i = j
	}
}

// lookupRuns groups the chunk's live packets into runs of consecutive
// equal keys and resolves each distinct run with a single probe via the
// state layer's batched lookup (uplink: TEID index, downlink: IP index).
// For two-level tables all secondary probes of the chunk share one read
// lock, and each secondary hit requests promotion once per run.
func (dp *DataPlane) lookupRuns(batch []*pkt.Buf, uplink bool) {
	sc := &dp.scratch
	nruns := 0
	var prevKey uint32
	for i := range batch {
		if !sc.live[i] {
			continue
		}
		if nruns == 0 || sc.keys[i] != prevKey {
			sc.runKeys[nruns] = sc.keys[i]
			prevKey = sc.keys[i]
			nruns++
		}
		sc.runOf[i] = int32(nruns - 1)
	}
	if nruns == 0 {
		return
	}
	if dp.s.ix != nil {
		dp.s.ix.GetHotBatch(sc.runKeys[:nruns], uplink, sc.runHot[:nruns])
		return
	}
	dp.s.tl.LookupHotBatch(sc.runKeys[:nruns], uplink, sc.runHot[:nruns], sc.runSec[:nruns])
	for r := 0; r < nruns; r++ {
		if sc.runSec[r] {
			dp.s.ctrl.requestPromotion(sc.runHot[r].U)
		}
	}
}

// uplinkRun applies classification, policing, charging and forwarding to
// batch[lo:hi], a run of packets from one user sharing one 5-tuple. The
// run costs one PCEF match, one seqlock fast-view snapshot (~44 bytes,
// not the whole control state), one aggregate token-bucket call and one
// WriteCounters; when the aggregate bucket check cannot admit the whole
// run it consumes nothing and the run falls back to per-packet policing
// against the same snapshot, reproducing the packet-at-a-time semantics
// exactly.
func (dp *DataPlane) uplinkRun(batch []*pkt.Buf, lo, hi int, hot *state.HotUE, now int64) {
	sc := &dp.scratch
	flow := sc.flows[lo]
	count := uint64(hi - lo)
	verdict := sc.rules.ClassifyFlow(flow)
	if verdict.Action == pcef.ActionDrop {
		hot.WriteCounters(func(c *state.CounterState) { c.DroppedPackets += count })
		for k := lo; k < hi; k++ {
			dp.drop(batch[k])
		}
		return
	}

	var total uint64
	for k := lo; k < hi; k++ {
		total += uint64(sc.plens[k])
	}
	ruleSlot := -1
	allowedAll := true
	partial := false
	f := &sc.fast
	hot.ReadFast(f)
	if f.Epoch != hot.Priv.Epoch {
		dp.rebuildPriv(hot, f)
	}
	for i := 0; i < int(f.RuleCount); i++ {
		if f.RuleIDs[i] == verdict.RuleID {
			ruleSlot = i
			break
		}
	}
	if hot.Priv.Limiter != nil {
		bearer := hot.Priv.SelectBearer(flow)
		if count == 1 {
			allowedAll = hot.Priv.Limiter.AllowUplink(now, bearer, total)
		} else if !hot.Priv.Limiter.AllowUplinkRun(now, bearer, total) {
			allowedAll = false
			partial = true
			for k := lo; k < hi; k++ {
				sc.allowed[k] = hot.Priv.Limiter.AllowUplink(now, bearer, uint64(sc.plens[k]))
			}
		}
	}

	if !partial {
		if !allowedAll { // single-packet run, denied
			dp.countDrop(hot)
			dp.drop(batch[lo])
			return
		}
		hot.WriteCounters(func(c *state.CounterState) {
			c.UplinkPackets += count
			c.UplinkBytes += total
			if ruleSlot >= 0 {
				c.RuleBytes[ruleSlot] += total
			}
		})
		for k := lo; k < hi; k++ {
			dp.forward(batch[k], now)
		}
		return
	}

	// Mixed verdicts from the per-packet fallback: aggregate both sides
	// into one counter write, then forward/drop per packet.
	var nAllowed, bytesAllowed uint64
	for k := lo; k < hi; k++ {
		if sc.allowed[k] {
			nAllowed++
			bytesAllowed += uint64(sc.plens[k])
		}
	}
	hot.WriteCounters(func(c *state.CounterState) {
		c.UplinkPackets += nAllowed
		c.UplinkBytes += bytesAllowed
		if ruleSlot >= 0 {
			c.RuleBytes[ruleSlot] += bytesAllowed
		}
		c.DroppedPackets += count - nAllowed
	})
	for k := lo; k < hi; k++ {
		if sc.allowed[k] {
			dp.forward(batch[k], now)
		} else {
			dp.drop(batch[k])
		}
	}
}

// ProcessDownlinkBatch runs the downlink pipeline stage by stage: parse
// and key extraction, run-coalesced lookup by UE address, then per-run
// classification, policing, GTP-U encapsulation toward the user's
// current eNodeB, counters and forward. Segmentation and threading rules
// are as in ProcessUplinkBatch.
func (dp *DataPlane) ProcessDownlinkBatch(batch []*pkt.Buf, now int64) {
	for len(batch) > 0 {
		chunk := dp.s.cfg.SyncEvery - dp.sinceSync
		if chunk > len(batch) {
			chunk = len(batch)
		}
		dp.downlinkChunk(batch[:chunk], now)
		dp.sinceSync += chunk
		if dp.sinceSync >= dp.s.cfg.SyncEvery {
			dp.SyncUpdates()
			dp.sinceSync = 0
		}
		batch = batch[chunk:]
	}
	if dp.s.cfg.RecordLatency {
		dp.flushLat()
	}
}

func (dp *DataPlane) downlinkChunk(batch []*pkt.Buf, now int64) {
	sc := &dp.scratch
	n := len(batch)
	sc.ensure(n)
	sc.rules = dp.s.pcefTable.Snapshot()

	// Stage 1: parse, key extraction. The demux's steering parse is
	// reused when present (Meta.FlowParsed), so no inner header byte is
	// decoded twice between ingress and verdict.
	for i, b := range batch {
		sc.live[i] = false
		var flow pkt.Flow
		var plen int
		if b.Meta.FlowParsed {
			flow, plen = b.Meta.Flow, b.Len()
			b.Meta.FlowParsed = false
		} else {
			var ok bool
			flow, plen, ok = parseInner(b)
			if !ok {
				dp.drop(b)
				continue
			}
			b.Meta.Flow = flow
		}
		b.Meta.UEIP = flow.Dst
		b.Meta.Uplink = false
		sc.live[i] = true
		sc.keys[i] = flow.Dst
		sc.flows[i] = flow
		sc.plens[i] = plen
	}

	// Stage 2: one state lookup per key run.
	dp.lookupRuns(batch, false)

	// Stage 3: verdict/encap/forward per run.
	for i := 0; i < n; {
		if !sc.live[i] {
			i++
			continue
		}
		hot := sc.runHot[sc.runOf[i]]
		if hot == nil {
			dp.Missed.Add(1)
			dp.drop(batch[i])
			i++
			continue
		}
		j := i + 1
		for j < n && sc.live[j] && sc.runOf[j] == sc.runOf[i] && sc.flows[j] == sc.flows[i] {
			j++
		}
		dp.downlinkRun(batch, i, j, hot, now)
		i = j
	}
}

// downlinkRun is uplinkRun for the downlink direction, adding the
// tunnel-endpoint read (paging when the user is idle) and per-packet
// GTP-U encapsulation before the aggregated counter write.
func (dp *DataPlane) downlinkRun(batch []*pkt.Buf, lo, hi int, hot *state.HotUE, now int64) {
	sc := &dp.scratch
	flow := sc.flows[lo]
	count := uint64(hi - lo)
	verdict := sc.rules.ClassifyFlow(flow)
	if verdict.Action == pcef.ActionDrop {
		hot.WriteCounters(func(c *state.CounterState) { c.DroppedPackets += count })
		for k := lo; k < hi; k++ {
			dp.drop(batch[k])
		}
		return
	}

	var total uint64
	for k := lo; k < hi; k++ {
		total += uint64(sc.plens[k])
	}
	ruleSlot := -1
	allowedAll := true
	partial := false
	f := &sc.fast
	hot.ReadFast(f)
	if f.Epoch != hot.Priv.Epoch {
		dp.rebuildPriv(hot, f)
	}
	teid, enbAddr := f.DownlinkTEID, f.ENBAddr
	for i := 0; i < int(f.RuleCount); i++ {
		if f.RuleIDs[i] == verdict.RuleID {
			ruleSlot = i
			break
		}
	}
	if hot.Priv.Limiter != nil {
		bearer := hot.Priv.SelectBearer(flow)
		if count == 1 {
			allowedAll = hot.Priv.Limiter.AllowDownlink(now, bearer, total)
		} else if !hot.Priv.Limiter.AllowDownlinkRun(now, bearer, total) {
			allowedAll = false
			partial = true
			for k := lo; k < hi; k++ {
				sc.allowed[k] = hot.Priv.Limiter.AllowDownlink(now, bearer, uint64(sc.plens[k]))
			}
		}
	}
	if teid == 0 {
		// Idle user (S1 released): park the whole run for paging rather
		// than drop.
		for k := lo; k < hi; k++ {
			dp.parkForPaging(batch[k], hot.U)
		}
		return
	}
	if !partial && !allowedAll { // single-packet run, denied
		dp.countDrop(hot)
		dp.drop(batch[lo])
		return
	}

	// Encap each admitted packet, then settle the run's counters in one
	// write and forward. sc.allowed doubles as the forward mask here.
	// Template mode stamps the envelope cached in hot state (rebuilt
	// above if the epoch moved, so it matches this run's teid/enbAddr
	// snapshot); serialize mode keeps the field-by-field path for
	// comparison.
	tmpl := &hot.Priv.Encap
	useTmpl := dp.s.cfg.EncapMode == EncapTemplate && tmpl.Valid() && tmpl.TEID() == teid
	var nFwd, bytesFwd, nDrop uint64
	for k := lo; k < hi; k++ {
		if partial && !sc.allowed[k] {
			nDrop++
			dp.drop(batch[k])
			continue
		}
		var err error
		if useTmpl {
			err = tmpl.Apply(batch[k])
		} else {
			err = gtp.EncapGPDU(batch[k], teid, dp.s.cfg.CoreAddr, enbAddr)
		}
		if err != nil {
			sc.allowed[k] = false
			nDrop++
			dp.drop(batch[k])
			continue
		}
		sc.allowed[k] = true
		nFwd++
		bytesFwd += uint64(sc.plens[k])
	}
	hot.WriteCounters(func(c *state.CounterState) {
		c.DownlinkPackets += nFwd
		c.DownlinkBytes += bytesFwd
		if ruleSlot >= 0 {
			c.RuleBytes[ruleSlot] += bytesFwd
		}
		c.DroppedPackets += nDrop
	})
	for k := lo; k < hi; k++ {
		if sc.allowed[k] {
			dp.forward(batch[k], now)
		}
	}
}

func (dp *DataPlane) isIoT(teid uint32) bool {
	base, n := dp.s.cfg.IoTTEIDBase, dp.s.cfg.IoTTEIDCount
	return n > 0 && teid >= base && teid < base+n
}

func (dp *DataPlane) forward(b *pkt.Buf, now int64) {
	dp.Forwarded.Add(1)
	if dp.s.cfg.RecordLatency && b.Meta.TSNanos != 0 {
		dp.recordLat(b.Meta.Uplink, now-b.Meta.TSNanos)
	}
	if !dp.s.Egress.Enqueue(b) {
		// Egress backpressure: account and release, like a NIC tail
		// drop.
		dp.Dropped.Add(1)
		dp.cache.Put(b)
	}
}

// recordLat extends or flushes the direction's pending same-valued run.
// The common case — another packet of the batch with the same stamp —
// is a compare and a non-atomic increment.
func (dp *DataPlane) recordLat(uplink bool, v int64) {
	idx := 0
	if uplink {
		idx = 1
	}
	p := &dp.latPend[idx]
	if p.n > 0 && p.v == v {
		p.n++
		return
	}
	if p.n > 0 {
		dp.histFor(idx).RecordN(p.v, p.n)
	}
	p.v, p.n = v, 1
}

func (dp *DataPlane) histFor(idx int) *hdr.Histogram {
	if idx == 1 {
		return &dp.latUp
	}
	return &dp.latDn
}

// flushLat settles both directions' pending latency runs into the
// histograms; called at every Process*Batch boundary (and is a no-op
// when recording is off or nothing is pending).
func (dp *DataPlane) flushLat() {
	for idx := range dp.latPend {
		if p := &dp.latPend[idx]; p.n > 0 {
			dp.histFor(idx).RecordN(p.v, p.n)
			p.n = 0
		}
	}
}

func (dp *DataPlane) drop(b *pkt.Buf) {
	dp.Dropped.Add(1)
	dp.cache.Put(b)
}

// FlushCache spills the data thread's buffer cache back to the shared
// pool; worker loops call it on exit so cached buffers are not stranded.
func (dp *DataPlane) FlushCache() { dp.cache.Flush() }

func (dp *DataPlane) countDrop(hot *state.HotUE) {
	hot.WriteCounters(func(c *state.CounterState) { c.DroppedPackets++ })
}

// rebuildPriv refreshes data-thread-private derived state after the hot
// view's epoch moved. Unpoliced users (the common case, precomputed into
// FastCtrl) settle without ever touching the cold half; policed users
// take one wait-free cold snapshot to reconfigure the limiter and
// refresh the cached bearer TFTs. Both branches rebuild the downlink
// encap template from the same FastCtrl snapshot the caller is acting
// on, so the cached envelope always matches the tunnel of the current
// run.
func (dp *DataPlane) rebuildPriv(hot *state.HotUE, f *state.FastCtrl) {
	if !f.Policed {
		hot.Priv.Encap.Init(f.DownlinkTEID, dp.s.cfg.CoreAddr, f.ENBAddr)
		hot.Priv.Limiter = nil
		hot.Priv.NTFT = 0
		hot.Priv.Epoch = f.Epoch
		return
	}
	// Policed: everything derived — template included — comes from one
	// cold snapshot so the recorded epoch matches what was cached (the
	// snapshot may be newer than f; downlinkRun re-checks the template's
	// TEID against its own view).
	c := &dp.scratch.cold
	hot.U.ReadCtrlSnapshot(c)
	hot.Priv.Encap.Init(c.DownlinkTEID, dp.s.cfg.CoreAddr, c.ENBAddr)
	if hot.Priv.Limiter == nil {
		hot.Priv.Limiter = &qos.UserLimiter{}
	}
	hot.Priv.Limiter.ConfigureUser(c.AMBRUplink, c.AMBRDownlink)
	for i := 0; i < int(c.BearerCount); i++ {
		hot.Priv.Limiter.ConfigureBearer(i, c.Bearers[i].MBRUplink, c.Bearers[i].MBRDownlink)
		hot.Priv.TFTs[i] = c.Bearers[i].TFT
	}
	hot.Priv.NTFT = c.BearerCount
	hot.Priv.Epoch = c.Epoch
}

// parseInner extracts the 5-tuple from the (decapsulated) inner IPv4
// packet; plen is the inner packet length used for byte accounting.
func parseInner(b *pkt.Buf) (pkt.Flow, int, bool) {
	data := b.Bytes()
	var ip pkt.IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		return pkt.Flow{}, 0, false
	}
	f := pkt.Flow{Src: ip.Src, Dst: ip.Dst, Proto: ip.Protocol}
	off := ip.HeaderLen()
	if (ip.Protocol == pkt.ProtoTCP || ip.Protocol == pkt.ProtoUDP) && len(data) >= off+4 {
		f.SrcPort = uint16(data[off])<<8 | uint16(data[off+1])
		f.DstPort = uint16(data[off+2])<<8 | uint16(data[off+3])
	}
	return f, b.Len(), true
}

// RunData runs the data plane until stop closes — worker mode for
// end-to-end and latency experiments. Both directions share one
// run-to-completion goroutine, the paper's single-data-core slice: one
// nf.Worker polls the uplink then the downlink ring each iteration, so
// the data thread really is a single thread (the update-sync counter,
// the staged-pipeline scratch and the single-producer Egress ring all
// rely on that). Dequeue batch size comes from cfg.BatchSize;
// update-sync granularity stays cfg.SyncEvery — the two knobs are
// independent.
func (s *Slice) RunData(stop <-chan struct{}) {
	s.data.running.Store(true)
	defer s.data.running.Store(false)
	w := &nf.Worker{
		In:             s.Uplink,
		In2:            s.Downlink,
		BatchSize:      s.cfg.BatchSize,
		HousekeepEvery: s.cfg.SyncEvery,
		Handler: func(batch []*pkt.Buf) {
			s.data.ProcessUplinkBatch(batch, sim.Now())
		},
		Handler2: func(batch []*pkt.Buf) {
			s.data.ProcessDownlinkBatch(batch, sim.Now())
		},
		Housekeep: func() { s.data.SyncUpdates() },
		Cache:     &s.data.cache,
		Faults:    s.faults,
	}
	w.Run(stop)
}

// Errors.
var (
	ErrUserExists    = errors.New("core: user already attached")
	ErrUserUnknown   = errors.New("core: user not found")
	ErrPoolExhausted = errors.New("core: identifier pool exhausted")
	ErrBadAssignment = errors.New("core: assigned TEID and UE address must both be set")
)

// String implements fmt.Stringer.
func (s *Slice) String() string {
	return fmt.Sprintf("Slice{id=%d users=%d}", s.cfg.ID, s.Users())
}

// answerEcho handles a GTP-U Echo Request on the fast path: the response
// swaps the outer addressing and flips the message type, as S-GWs answer
// eNodeB path-management probes. Returns false when the packet is not an
// echo request (caller drops it).
func (dp *DataPlane) answerEcho(b *pkt.Buf, now int64) bool {
	data := b.Bytes()
	var ip pkt.IPv4
	if ip.DecodeFromBytes(data) != nil || ip.Protocol != pkt.ProtoUDP {
		return false
	}
	off := ip.HeaderLen() + pkt.UDPHeaderLen
	if len(data) < off+gtp.HeaderLen || data[off+1] != gtp.MsgEchoRequest {
		return false
	}
	// Swap outer src/dst words in place and rewrite the type. The ones-
	// complement sum is commutative, so exchanging two address words
	// leaves the IPv4 checksum valid — no recompute. Optional GTP fields
	// (a 29.281 echo request carries a sequence number) ride along
	// untouched, which is exactly the echo-response contract: same
	// sequence number back.
	var src [4]byte
	copy(src[:], data[12:16])
	copy(data[12:16], data[16:20])
	copy(data[16:20], src[:])
	data[off+1] = gtp.MsgEchoResponse
	dp.EchoReplies.Add(1)
	dp.forward(b, now)
	return true
}
