package core

import (
	"errors"
	"testing"

	"pepc/internal/diameter"
	"pepc/internal/hss"
	"pepc/internal/pcrf"
	"pepc/internal/state"
)

// failingHandler injects backend failures: errors, failure result codes,
// or garbage answers, switched per call.
type failingHandler struct {
	mode  string
	inner diameter.Handler
	calls int
}

func (f *failingHandler) Handle(req *diameter.Message) (*diameter.Message, error) {
	f.calls++
	switch f.mode {
	case "error":
		return nil, errors.New("backend down")
	case "reject":
		return req.Answer(diameter.ResultUserUnknown), nil
	default:
		return f.inner.Handle(req)
	}
}

func TestProxyAuthenticate(t *testing.T) {
	h := hss.New()
	h.ProvisionRange(1, 10, 10e6, 50e6)
	p := NewProxy(h, nil)
	vec, err := p.Authenticate(5)
	if err != nil {
		t.Fatal(err)
	}
	if vec.KASME == [32]byte{} {
		t.Fatal("empty vector")
	}
	if _, err := p.Authenticate(999); err != ErrBackendFail {
		t.Fatalf("unknown subscriber: %v", err)
	}
	if p.Requests.Load() != 2 {
		t.Fatalf("requests = %d", p.Requests.Load())
	}
}

func TestProxyNoBackends(t *testing.T) {
	p := NewProxy(nil, nil)
	if _, err := p.Authenticate(1); err != ErrNoBackend {
		t.Fatalf("authenticate: %v", err)
	}
	if _, _, err := p.UpdateLocation(1); err != ErrNoBackend {
		t.Fatalf("location: %v", err)
	}
	// Gx is optional: attach proceeds without a PCRF.
	rules, err := p.EstablishGxSession(1)
	if err != nil || rules != nil {
		t.Fatalf("gx without pcrf: %v %v", rules, err)
	}
	if err := p.ReportUsage(1, 100); err != nil {
		t.Fatalf("usage without pcrf: %v", err)
	}
	if err := p.TerminateGxSession(1); err != nil {
		t.Fatalf("terminate without pcrf: %v", err)
	}
}

func TestAttachFailsCleanlyWhenHSSDown(t *testing.T) {
	fh := &failingHandler{mode: "error"}
	s := NewSlice(SliceConfig{ID: 1, UserHint: 16})
	s.Control().SetProxy(NewProxy(fh, nil))
	if _, err := s.Control().Attach(AttachSpec{IMSI: 7}); err == nil {
		t.Fatal("attach succeeded with HSS down")
	}
	// No partial state: the user is not half-attached.
	if s.Control().Lookup(7) != nil {
		t.Fatal("partial state left behind")
	}
	s.Data().SyncUpdates()
	if s.Users() != 0 {
		t.Fatalf("users = %d", s.Users())
	}
}

func TestAttachFailsCleanlyWhenHSSRejects(t *testing.T) {
	fh := &failingHandler{mode: "reject"}
	s := NewSlice(SliceConfig{ID: 1, UserHint: 16})
	s.Control().SetProxy(NewProxy(fh, nil))
	if _, err := s.Control().Attach(AttachSpec{IMSI: 8}); err != ErrBackendFail {
		t.Fatalf("attach: %v", err)
	}
	if s.Control().Lookup(8) != nil {
		t.Fatal("partial state left behind")
	}
}

// A dark PCRF no longer fails the attach: the user proceeds in degraded
// mode on the default bearer, with no PCC rules, queued for Gx repair.
func TestAttachDegradesWhenPCRFDown(t *testing.T) {
	h := hss.New()
	h.ProvisionRange(1, 10, 10e6, 50e6)
	fh := &failingHandler{mode: "error"}
	s := NewSlice(SliceConfig{ID: 1, UserHint: 16})
	s.Control().SetProxy(NewProxy(h, fh))
	if _, err := s.Control().Attach(AttachSpec{IMSI: 3}); err != nil {
		t.Fatalf("attach must degrade, not fail: %v", err)
	}
	ue := s.Control().Lookup(3)
	if ue == nil {
		t.Fatal("degraded user not attached")
	}
	ue.ReadCtrl(func(c *state.ControlState) {
		if !c.Attached || c.BearerCount != 1 || c.Bearers[0].EBI != 5 {
			t.Fatalf("degraded profile: attached=%v bearers=%d", c.Attached, c.BearerCount)
		}
		if c.RuleCount != 0 {
			t.Fatalf("degraded user has %d PCC rules, want 0", c.RuleCount)
		}
	})
	st := s.Control().Stats()
	if st.DegradedAttaches != 1 {
		t.Fatalf("DegradedAttaches = %d", st.DegradedAttaches)
	}
	if s.Control().DegradedBacklog() != 1 {
		t.Fatalf("backlog = %d", s.Control().DegradedBacklog())
	}
}

func TestProxyGxLifecycle(t *testing.T) {
	h := hss.New()
	h.ProvisionRange(1, 10, 10e6, 50e6)
	policy := pcrf.New()
	p := NewProxy(h, policy)
	if _, err := p.EstablishGxSession(2); err != nil {
		t.Fatal(err)
	}
	if policy.ActiveSessions() != 1 {
		t.Fatalf("sessions = %d", policy.ActiveSessions())
	}
	if err := p.ReportUsage(2, 12345); err != nil {
		t.Fatal(err)
	}
	if err := p.TerminateGxSession(2); err != nil {
		t.Fatal(err)
	}
	if policy.ActiveSessions() != 0 {
		t.Fatalf("sessions after terminate = %d", policy.ActiveSessions())
	}
}
