package core

import (
	"sync"
	"testing"
	"time"

	"pepc/internal/bpf"
	"pepc/internal/enb"
	"pepc/internal/hss"
	"pepc/internal/pcef"
	"pepc/internal/pcrf"
	"pepc/internal/pkt"
	"pepc/internal/sctp"
	"pepc/internal/sim"
	"pepc/internal/state"
)

func newTestNode(t *testing.T, slices int) *Node {
	t.Helper()
	cfgs := make([]SliceConfig, slices)
	for i := range cfgs {
		cfgs[i] = SliceConfig{ID: i + 1, UserHint: 256}
	}
	return NewNode(cfgs...)
}

func TestNodeAttachAndSteer(t *testing.T) {
	n := newTestNode(t, 2)
	res0, err := n.AttachUser(0, AttachSpec{IMSI: 100, ENBAddr: 1, DownlinkTEID: 11})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := n.AttachUser(1, AttachSpec{IMSI: 200, ENBAddr: 1, DownlinkTEID: 22})
	if err != nil {
		t.Fatal(err)
	}
	n.Slice(0).Data().SyncUpdates()
	n.Slice(1).Data().SyncUpdates()

	if s, ok := n.Demux().LookupSlice(res0.UplinkTEID); !ok || s != 0 {
		t.Fatalf("demux teid0: %d %v", s, ok)
	}
	if s, ok := n.Demux().LookupSliceByIP(res1.UEAddr); !ok || s != 1 {
		t.Fatalf("demux ip1: %d %v", s, ok)
	}
	if s, ok := n.Demux().LookupSliceByIMSI(200); !ok || s != 1 {
		t.Fatalf("demux imsi: %d %v", s, ok)
	}

	pool := pkt.NewPool(2048, 128)
	up := buildUplink(pool, res0.UplinkTEID, res0.UEAddr, 1, n.Slice(0).Config().CoreAddr, 80)
	n.SteerUplink(up)
	if n.Slice(0).Uplink.Len() != 1 {
		t.Fatal("uplink not steered to slice 0")
	}
	down := buildDownlink(pool, res1.UEAddr, 80)
	n.SteerDownlink(down)
	if n.Slice(1).Downlink.Len() != 1 {
		t.Fatal("downlink not steered to slice 1")
	}
	// Unknown traffic counts and frees.
	bogus := buildDownlink(pool, pkt.IPv4Addr(1, 2, 3, 4), 80)
	n.SteerDownlink(bogus)
	if n.Demux().Unknown.Load() != 1 {
		t.Fatalf("unknown = %d", n.Demux().Unknown.Load())
	}
}

func TestMigrationMovesStateAndCounters(t *testing.T) {
	n := newTestNode(t, 2)
	res, err := n.AttachUser(0, AttachSpec{IMSI: 77, ENBAddr: 5, DownlinkTEID: 55})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := n.Slice(0), n.Slice(1)
	src.Data().SyncUpdates()

	// Generate some usage on the source slice first.
	pool := pkt.NewPool(2048, 128)
	for i := 0; i < 5; i++ {
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 5, src.Config().CoreAddr, 80)
		src.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	}
	drainEgress(src)

	if err := n.Scheduler().MigrateUser(77, 0, 1); err != nil {
		t.Fatal(err)
	}
	if n.Scheduler().Migrations.Load() != 1 {
		t.Fatal("migration not counted")
	}
	// Source no longer owns the user.
	if src.Control().Lookup(77) != nil {
		t.Fatal("user still on source")
	}
	ue := dst.Control().Lookup(77)
	if ue == nil {
		t.Fatal("user not on target")
	}
	var cs state.ControlState
	var cnt state.CounterState
	ue.ReadCtrl(func(c *state.ControlState) { cs = *c })
	ue.ReadCounters(func(c *state.CounterState) { cnt = *c })
	if cs.UplinkTEID != res.UplinkTEID || cs.UEAddr != res.UEAddr || cs.DownlinkTEID != 55 {
		t.Fatalf("identifiers changed in flight: %+v", cs)
	}
	if cnt.UplinkPackets != 5 {
		t.Fatalf("counters lost: %+v", cnt)
	}
	// Demux remapped.
	if s, _ := n.Demux().LookupSlice(res.UplinkTEID); s != 1 {
		t.Fatalf("demux still points at %d", s)
	}
	// Traffic now lands on the target slice.
	src.Data().SyncUpdates()
	dst.Data().SyncUpdates()
	b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 5, dst.Config().CoreAddr, 80)
	n.SteerUplink(b)
	batch := make([]*pkt.Buf, 1)
	dst.Uplink.DequeueBatch(batch)
	dst.Data().ProcessUplinkBatch(batch, sim.Now())
	if dst.Data().Forwarded.Load() != 1 {
		t.Fatal("post-migration packet not processed by target")
	}
	drainEgress(dst)
}

func TestMigrationBuffersInFlightPackets(t *testing.T) {
	n := newTestNode(t, 2)
	res, err := n.AttachUser(0, AttachSpec{IMSI: 88, ENBAddr: 5, DownlinkTEID: 55})
	if err != nil {
		t.Fatal(err)
	}
	n.Slice(0).Data().SyncUpdates()

	// Manually enter the buffering phase, steer packets, then finish.
	d := n.Demux()
	d.mu.Lock()
	d.migrating[res.UplinkTEID] = &migBuffer{}
	d.mu.Unlock()

	pool := pkt.NewPool(2048, 128)
	for i := 0; i < 3; i++ {
		n.SteerUplink(buildUplink(pool, res.UplinkTEID, res.UEAddr, 5, n.Slice(0).Config().CoreAddr, 80))
	}
	if d.Buffered.Load() != 3 {
		t.Fatalf("buffered = %d", d.Buffered.Load())
	}
	if n.Slice(0).Uplink.Len() != 0 {
		t.Fatal("packets leaked to slice during buffering")
	}
	// Complete the buffering phase by hand: remap + drain, as
	// MigrateUser does.
	d.mu.Lock()
	buf := d.migrating[res.UplinkTEID]
	delete(d.migrating, res.UplinkTEID)
	d.byTEID[res.UplinkTEID] = 1
	d.mu.Unlock()
	for _, b := range buf.pkts {
		n.Slice(1).Uplink.Enqueue(b)
	}
	if n.Slice(1).Uplink.Len() != 3 {
		t.Fatalf("drained %d packets to target", n.Slice(1).Uplink.Len())
	}
}

func TestMigrationErrors(t *testing.T) {
	n := newTestNode(t, 2)
	if err := n.Scheduler().MigrateUser(1, 0, 0); err != ErrSameSlice {
		t.Fatalf("same slice: %v", err)
	}
	if err := n.Scheduler().MigrateUser(1, 0, 5); err != ErrSliceRange {
		t.Fatalf("range: %v", err)
	}
	if err := n.Scheduler().MigrateUser(1, 0, 1); err != ErrUserUnknown {
		t.Fatalf("unknown user: %v", err)
	}
	if n.Scheduler().MigrationsFailed.Load() != 1 {
		t.Fatalf("failed counter = %d", n.Scheduler().MigrationsFailed.Load())
	}
}

func TestMigrationUnderLiveTraffic(t *testing.T) {
	// End-to-end: data workers running on both slices, traffic flowing
	// through the node steering path, migrations firing concurrently. No
	// packet may be lost (forwarded + policed-drops == sent) and the
	// user's counters survive.
	n := newTestNode(t, 2)
	res, err := n.AttachUser(0, AttachSpec{IMSI: 42, ENBAddr: 5, DownlinkTEID: 55})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(s *Slice) {
			defer wg.Done()
			s.RunData(stop)
		}(n.Slice(i))
	}
	// Sink both egress rings.
	var sunk sync.WaitGroup
	var egressCount [2]int
	for i := 0; i < 2; i++ {
		sunk.Add(1)
		go func(i int) {
			defer sunk.Done()
			for {
				b, ok := n.Slice(i).Egress.Dequeue()
				if ok {
					egressCount[i]++
					b.Free()
					continue
				}
				select {
				case <-stop:
					// Final drain.
					for {
						b, ok := n.Slice(i).Egress.Dequeue()
						if !ok {
							return
						}
						egressCount[i]++
						b.Free()
					}
				default:
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(i)
	}

	pool := pkt.NewPool(2048, 128)
	const total = 2000
	where := 0
	for i := 0; i < total; i++ {
		n.SteerUplink(buildUplink(pool, res.UplinkTEID, res.UEAddr, 5, 0, 80))
		if i%500 == 250 {
			// Let the source ring drain before transferring, as it would
			// at line rate; only packets arriving *during* the transfer
			// exercise the migration buffers.
			drainWait := time.After(2 * time.Second)
			for n.Slice(where).Uplink.Len() > 0 {
				select {
				case <-drainWait:
					t.Fatal("source ring never drained")
				default:
					time.Sleep(100 * time.Microsecond)
				}
			}
			target := 1 - where
			if err := n.Scheduler().MigrateUser(42, where, target); err != nil {
				t.Fatalf("migration %d: %v", i, err)
			}
			where = target
		}
	}
	// Let the pipeline drain.
	deadline := time.After(5 * time.Second)
	for {
		f := n.Slice(0).Data().Forwarded.Load() + n.Slice(1).Data().Forwarded.Load()
		m := n.Slice(0).Data().Missed.Load() + n.Slice(1).Data().Missed.Load()
		if f+m >= total {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("pipeline stalled: forwarded+missed=%d of %d", f+m, total)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	sunk.Wait()

	f := n.Slice(0).Data().Forwarded.Load() + n.Slice(1).Data().Forwarded.Load()
	m := n.Slice(0).Data().Missed.Load() + n.Slice(1).Data().Missed.Load()
	if f+m != total {
		t.Fatalf("accounting: forwarded=%d missed=%d total=%d", f, m, total)
	}
	// Misses can only happen in the sync window right after a migration;
	// they must be a small fraction.
	if m > total/10 {
		t.Fatalf("too many post-migration misses: %d", m)
	}
	// Counter continuity: the final owner's counter equals forwarded+policed.
	finalSlice := n.Slice(where)
	ue := finalSlice.Control().Lookup(42)
	if ue == nil {
		t.Fatal("user lost after migrations")
	}
	var up uint64
	ue.ReadCounters(func(c *state.CounterState) { up = c.UplinkPackets })
	if up != f {
		t.Fatalf("counter %d != forwarded %d", up, f)
	}
}

func TestFullS1APAttachOverSCTP(t *testing.T) {
	// The complete signaling stack: eNodeB emulator ⇄ SCTP-lite ⇄ S1AP
	// server on a slice control plane ⇄ Diameter proxy ⇄ HSS/PCRF, then
	// user traffic through the data plane.
	hssDB := hss.New()
	hssDB.ProvisionRange(9000, 10, 10e6, 50e6)
	policy := pcrf.New()
	policy.SetDefaultRules([]pcef.Rule{{
		ID: 1, Precedence: 1, Action: pcef.ActionDrop,
		Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP, DstPortLo: 25, DstPortHi: 25},
	}})

	n := NewNode(SliceConfig{ID: 1, UserHint: 64})
	n.AttachProxy(NewProxy(hssDB, policy))

	cw, sw := sctp.Pipe(1024)
	var serverAssoc *sctp.Assoc
	acceptDone := make(chan error, 1)
	go func() {
		var err error
		serverAssoc, err = sctp.Accept(sw, sctp.Config{Tag: 2})
		acceptDone <- err
	}()
	clientAssoc, err := sctp.Dial(cw, sctp.Config{Tag: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-acceptDone; err != nil {
		t.Fatal(err)
	}
	defer clientAssoc.Close()

	srv := NewS1APServer(n.Slice(0).Control(), serverAssoc)
	stop := make(chan struct{})
	defer close(stop)
	go srv.Serve(stop)

	base := enb.New(pkt.IPv4Addr(192, 168, 1, 1), 3, 0xc0ffee, clientAssoc)
	ue := enb.NewUE(9005)
	if err := base.Attach(ue); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if !ue.Attached || ue.UplinkTEID == 0 || ue.UEAddr == 0 || ue.GUTI == 0 {
		t.Fatalf("session: %+v", ue)
	}

	// Give the server time to see the attach complete.
	deadline := time.After(2 * time.Second)
	for srv.AttachesCompleted.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("attach complete not processed")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// The PCRF's default rule must be live in the slice PCEF.
	if n.Slice(0).PCEF().Len() != 1 {
		t.Fatalf("PCEF rules = %d", n.Slice(0).PCEF().Len())
	}

	// Data now flows with the granted identifiers.
	s := n.Slice(0)
	s.Data().SyncUpdates()
	pool := pkt.NewPool(2048, 128)
	b := buildUplink(pool, ue.UplinkTEID, ue.UEAddr, ue.CoreAddr, s.Config().CoreAddr, 80)
	s.Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	if s.Data().Forwarded.Load() != 1 {
		t.Fatalf("post-attach traffic: forwarded=%d missed=%d",
			s.Data().Forwarded.Load(), s.Data().Missed.Load())
	}
	drainEgress(s)

	// Downlink lands at the eNodeB's endpoint.
	db := buildDownlink(pool, ue.UEAddr, 80)
	s.Data().ProcessDownlinkBatch([]*pkt.Buf{db}, sim.Now())
	out, ok := s.Egress.Dequeue()
	if !ok {
		t.Fatal("no downlink egress")
	}
	var oip pkt.IPv4
	oip.DecodeFromBytes(out.Bytes())
	if oip.Dst != base.Addr {
		t.Fatalf("downlink outer dst = %s", pkt.FormatIPv4(oip.Dst))
	}
	out.Free()

	// X2 handover via path switch.
	base2 := enb.New(pkt.IPv4Addr(192, 168, 1, 2), 4, 0xc0ffef, clientAssoc)
	if err := base2.PathSwitch(ue); err != nil {
		t.Fatalf("path switch: %v", err)
	}
	db2 := buildDownlink(pool, ue.UEAddr, 80)
	s.Data().ProcessDownlinkBatch([]*pkt.Buf{db2}, sim.Now())
	out2, ok := s.Egress.Dequeue()
	if !ok {
		t.Fatal("no egress after path switch")
	}
	oip.DecodeFromBytes(out2.Bytes())
	if oip.Dst != base2.Addr {
		t.Fatalf("post-handover outer dst = %s", pkt.FormatIPv4(oip.Dst))
	}
	out2.Free()

	// Release detaches the user.
	if err := base2.Release(ue); err != nil {
		t.Fatal(err)
	}
	deadline = time.After(2 * time.Second)
	for s.Control().Lookup(9005) != nil {
		select {
		case <-deadline:
			t.Fatal("release not processed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestS1APAttachRejectsUnknownSubscriber(t *testing.T) {
	hssDB := hss.New() // empty: everyone unknown
	n := NewNode(SliceConfig{ID: 1, UserHint: 64})
	n.AttachProxy(NewProxy(hssDB, nil))

	cw, sw := sctp.Pipe(256)
	acceptDone := make(chan *sctp.Assoc, 1)
	go func() {
		a, _ := sctp.Accept(sw, sctp.Config{Tag: 2})
		acceptDone <- a
	}()
	clientAssoc, err := sctp.Dial(cw, sctp.Config{Tag: 1})
	if err != nil {
		t.Fatal(err)
	}
	serverAssoc := <-acceptDone
	defer clientAssoc.Close()

	srv := NewS1APServer(n.Slice(0).Control(), serverAssoc)
	stop := make(chan struct{})
	defer close(stop)
	go srv.Serve(stop)

	base := enb.New(1, 1, 1, clientAssoc)
	base.Timeout = 200 * time.Millisecond
	ue := enb.NewUE(404)
	if err := base.Attach(ue); err == nil {
		t.Fatal("attach of unknown subscriber succeeded")
	}
	if srv.AttachesFailed.Load() != 1 {
		t.Fatalf("failed counter = %d", srv.AttachesFailed.Load())
	}
}

func TestPolicyPushReachesOwningSlice(t *testing.T) {
	hssDB := hss.New()
	hssDB.ProvisionRange(1, 10, 10e6, 50e6)
	policy := pcrf.New()
	n := NewNode(SliceConfig{ID: 1, UserHint: 64}, SliceConfig{ID: 2, UserHint: 64})
	n.AttachProxy(NewProxy(hssDB, policy))
	n.EnablePolicyPush(policy)

	if _, err := n.AttachUser(1, AttachSpec{IMSI: 5}); err != nil {
		t.Fatal(err)
	}
	rule := pcef.Rule{ID: 99, Precedence: 1, Action: pcef.ActionDrop,
		Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP, DstPortLo: 25, DstPortHi: 25}}
	if err := policy.Push(5, []pcef.Rule{rule}); err != nil {
		t.Fatal(err)
	}
	// The rule landed on slice 1's PCEF (the owner), not slice 0's.
	if n.Slice(1).PCEF().Len() != 1 {
		t.Fatalf("owner PCEF rules = %d", n.Slice(1).PCEF().Len())
	}
	if n.Slice(0).PCEF().Len() != 0 {
		t.Fatalf("non-owner PCEF rules = %d", n.Slice(0).PCEF().Len())
	}
	// And the user's control state records the rule id for charging.
	ue := n.Slice(1).Control().Lookup(5)
	var ids [4]uint32
	var cnt uint8
	ue.ReadCtrl(func(c *state.ControlState) { ids = c.RuleIDs; cnt = c.RuleCount })
	if cnt != 1 || ids[0] != 99 {
		t.Fatalf("rule ids: %v count=%d", ids, cnt)
	}
	// Pushing for a user on no node is a no-op (not an error here; the
	// PCRF returns its own error for sessionless pushes).
	if err := policy.Push(404, []pcef.Rule{rule}); err == nil {
		t.Fatal("sessionless push accepted")
	}
}

func TestInterNodeMigration(t *testing.T) {
	// Two independent nodes (servers); a user moves between them through
	// the serialized transfer message, as a cluster scheduler would ship
	// it. The balancer layer (lb) would redirect traffic; here we verify
	// state fidelity and data-path continuity on the target node.
	nodeA := NewNode(SliceConfig{ID: 1, UserHint: 64})
	nodeB := NewNode(SliceConfig{ID: 1, UserHint: 64})
	res, err := nodeA.AttachUser(0, AttachSpec{IMSI: 99, ENBAddr: 5, DownlinkTEID: 0x990})
	if err != nil {
		t.Fatal(err)
	}
	nodeA.Slice(0).Data().SyncUpdates()
	// Usage on node A.
	pool := pkt.NewPool(2048, 128)
	for i := 0; i < 7; i++ {
		b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 5, nodeA.Slice(0).Config().CoreAddr, 80)
		nodeA.Slice(0).Data().ProcessUplinkBatch([]*pkt.Buf{b}, sim.Now())
	}
	drainEgress(nodeA.Slice(0))

	msg, err := nodeA.Scheduler().ExportUser(99, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Node A no longer serves or steers the user.
	if nodeA.Slice(0).Control().Lookup(99) != nil {
		t.Fatal("user still on node A")
	}
	if _, ok := nodeA.Demux().LookupSlice(res.UplinkTEID); ok {
		t.Fatal("node A demux still maps the user")
	}

	if err := nodeB.Scheduler().ImportUser(msg, 0); err != nil {
		t.Fatal(err)
	}
	ue := nodeB.Slice(0).Control().Lookup(99)
	if ue == nil {
		t.Fatal("user not on node B")
	}
	var cnt state.CounterState
	ue.ReadCounters(func(c *state.CounterState) { cnt = *c })
	if cnt.UplinkPackets != 7 {
		t.Fatalf("counters lost in transfer: %+v", cnt)
	}
	// Data path works on node B with the same identifiers.
	nodeB.Slice(0).Data().SyncUpdates()
	b := buildUplink(pool, res.UplinkTEID, res.UEAddr, 5, nodeB.Slice(0).Config().CoreAddr, 80)
	nodeB.SteerUplink(b)
	batch := make([]*pkt.Buf, 4)
	n := nodeB.Slice(0).Uplink.DequeueBatch(batch)
	nodeB.Slice(0).Data().ProcessUplinkBatch(batch[:n], sim.Now())
	if nodeB.Slice(0).Data().Forwarded.Load() != 1 {
		t.Fatal("post-import traffic failed on node B")
	}
	drainEgress(nodeB.Slice(0))

	// Errors.
	if _, err := nodeA.Scheduler().ExportUser(99, 0); err != ErrUserUnknown {
		t.Fatalf("re-export: %v", err)
	}
	if _, err := nodeA.Scheduler().ExportUser(1, 9); err != ErrSliceRange {
		t.Fatalf("bad slice: %v", err)
	}
	if err := nodeB.Scheduler().ImportUser(msg, 9); err != ErrSliceRange {
		t.Fatalf("bad import slice: %v", err)
	}
	var corrupt StateTransferMessage
	if err := nodeB.Scheduler().ImportUser(corrupt, 0); err == nil {
		t.Fatal("corrupt message imported")
	}
}
