package core

import (
	"testing"
	"time"

	"pepc/internal/bpf"
	"pepc/internal/fault"
	"pepc/internal/hss"
	"pepc/internal/pcef"
	"pepc/internal/pcrf"
	"pepc/internal/pkt"
	"pepc/internal/state"
)

// outageRules is the PCC profile the PCRF hands out when reachable; its
// presence distinguishes a full attach from a degraded one.
func outageRules() []pcef.Rule {
	return []pcef.Rule{{
		ID: 1, Precedence: 1, Action: pcef.ActionDrop,
		Filter: bpf.FilterSpec{Proto: pkt.ProtoTCP, DstPortLo: 25, DstPortHi: 25},
	}}
}

// outagePolicy is the tight deadline/retry budget the outage tests run
// under: worst case per Gx round trip is Deadline*(MaxRetries+1) plus
// the backoff sum, ~5ms — small enough that a wall-clock bound proves
// the control thread never blocks on a dark PCRF.
var outagePolicy = CallPolicy{
	Deadline:         2 * time.Millisecond,
	MaxRetries:       1,
	Backoff:          100 * time.Microsecond,
	BackoffMax:       time.Millisecond,
	BreakerThreshold: 2,
	BreakerCooldown:  5 * time.Millisecond,
}

// outageBudget bounds one signaling procedure under the policy above:
// the per-call worst case with generous CI slack. The point is "bounded
// by the configured deadline budget, not hung"; a dark backend without
// deadlines would block indefinitely.
const outageBudget = 100 * time.Millisecond

// The acceptance scenario: with the PCRF dark (every Gx request
// dropped), attaches complete degraded on the default bearer within the
// deadline budget, no DrainSignaling call blocks past it, the breaker
// opens and short-circuits the storm, and recovery repairs the degraded
// users back to full PCC state.
func TestPCRFOutageDegradesAndRecovers(t *testing.T) {
	h := hss.New()
	h.ProvisionRange(1, 100, 10e6, 50e6)
	policy := pcrf.New()
	policy.SetDefaultRules(outageRules())
	p := NewProxy(h, policy)
	p.SetPolicy(outagePolicy)

	inj := fault.New(42)
	inj.Arm(fault.DiameterDrop, fault.RateMax) // total Gx outage
	p.SetGxFaults(inj)

	s := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	s.Control().SetProxy(p)

	// Attaches during the outage: every one must complete (degraded) and
	// each must return within the deadline budget.
	const users = 20
	for i := 1; i <= users; i++ {
		start := time.Now()
		if _, err := s.Control().Attach(AttachSpec{IMSI: uint64(i)}); err != nil {
			t.Fatalf("attach %d failed during outage: %v", i, err)
		}
		if el := time.Since(start); el > outageBudget {
			t.Fatalf("attach %d blocked %v (> %v)", i, el, outageBudget)
		}
	}
	st := s.Control().Stats()
	if st.DegradedAttaches != users {
		t.Fatalf("degraded attaches = %d", st.DegradedAttaches)
	}
	if s.Control().DegradedBacklog() != users {
		t.Fatalf("backlog = %d", s.Control().DegradedBacklog())
	}
	ps := p.Stats()
	if ps.BreakerOpens == 0 || ps.ShortCircuits == 0 {
		t.Fatalf("breaker never engaged: %+v", ps)
	}
	if p.GxAvailable() {
		t.Fatal("breaker reports Gx available mid-outage")
	}

	// Signaling keeps draining under the outage: detaches run their Gx
	// termination against the dark backend, and each drain call is
	// bounded by the deadline budget.
	s.Control().EnqueueSignal(SigEvent{Kind: SigDetach, IMSI: 19})
	s.Control().EnqueueSignal(SigEvent{Kind: SigDetach, IMSI: 20})
	start := time.Now()
	for s.Control().DrainSignaling(0) > 0 {
	}
	if el := time.Since(start); el > outageBudget {
		t.Fatalf("DrainSignaling blocked %v (> %v)", el, outageBudget)
	}
	if s.Control().Lookup(20) != nil {
		t.Fatal("detach did not execute during outage")
	}

	// Outage ends: disarm, wait out the breaker cooldown, and let
	// maintenance repair the backlog (the detached users were dropped
	// from it by the repair pass's liveness check).
	inj.DisarmAll()
	time.Sleep(outagePolicy.BreakerCooldown + time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for s.Control().DegradedBacklog() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("repair stalled, backlog = %d", s.Control().DegradedBacklog())
		}
		s.Control().Maintain(0, 0)
		time.Sleep(time.Millisecond)
	}
	if got := s.Control().Stats().Repairs; got != users-2 {
		t.Fatalf("repairs = %d, want %d", got, users-2)
	}
	// A repaired user carries full PCC state again.
	s.Control().Lookup(5).ReadCtrl(func(c *state.ControlState) {
		if c.RuleCount == 0 {
			t.Fatal("repaired user still has no PCC rules")
		}
	})
	if policy.ActiveSessions() != users-2 {
		t.Fatalf("PCRF sessions after repair = %d", policy.ActiveSessions())
	}
}

// Injected signaling-ring overflow surfaces as the existing SigDrops
// backpressure, never as a block or a crash.
func TestInjectedRingOverflowShedsBoundedly(t *testing.T) {
	s := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	inj := fault.New(7)
	inj.Arm(fault.RingOverflow, fault.RateMax)
	s.SetFaults(inj)
	if s.Control().EnqueueSignal(SigEvent{Kind: SigAttachEvent, IMSI: 1}) {
		t.Fatal("enqueue succeeded under injected overflow")
	}
	if got := s.Control().SigDrops.Load(); got != 1 {
		t.Fatalf("SigDrops = %d", got)
	}
	inj.DisarmAll()
	if !s.Control().EnqueueSignal(SigEvent{Kind: SigAttachEvent, IMSI: 1}) {
		t.Fatal("enqueue failed after disarm")
	}
}

// A flaky (not dark) backend is healed by retries: with a 25% drop rate
// and two retries, attaches succeed with full PCC state, and the retry
// counter shows the recovery work.
func TestRetriesAbsorbFlakyBackend(t *testing.T) {
	h := hss.New()
	h.ProvisionRange(1, 100, 10e6, 50e6)
	policy := pcrf.New()
	policy.SetDefaultRules(outageRules())
	p := NewProxy(h, policy)
	pol := outagePolicy
	pol.MaxRetries = 4
	pol.BreakerThreshold = 100 // keep the breaker out of this test
	p.SetPolicy(pol)

	inj := fault.New(99)
	inj.Arm(fault.DiameterDrop, fault.RateMax/4)
	p.SetGxFaults(inj)

	s := NewSlice(SliceConfig{ID: 1, UserHint: 64})
	s.Control().SetProxy(p)
	full := 0
	for i := 1; i <= 30; i++ {
		if _, err := s.Control().Attach(AttachSpec{IMSI: uint64(i)}); err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		s.Control().Lookup(uint64(i)).ReadCtrl(func(c *state.ControlState) {
			if c.RuleCount > 0 {
				full++
			}
		})
	}
	if full != 30 {
		t.Fatalf("only %d/30 attaches got full PCC state", full)
	}
	if p.Retries.Load() == 0 {
		t.Fatal("no retries recorded under 25%% drop rate")
	}
}
